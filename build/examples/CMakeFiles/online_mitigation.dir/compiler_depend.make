# Empty compiler generated dependencies file for online_mitigation.
# This may be replaced when dependencies are built.
