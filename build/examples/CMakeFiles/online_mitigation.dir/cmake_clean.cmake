file(REMOVE_RECURSE
  "CMakeFiles/online_mitigation.dir/online_mitigation.cpp.o"
  "CMakeFiles/online_mitigation.dir/online_mitigation.cpp.o.d"
  "online_mitigation"
  "online_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
