# Empty compiler generated dependencies file for thermal_testbed.
# This may be replaced when dependencies are built.
