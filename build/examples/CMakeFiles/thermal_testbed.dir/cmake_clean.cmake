file(REMOVE_RECURSE
  "CMakeFiles/thermal_testbed.dir/thermal_testbed.cpp.o"
  "CMakeFiles/thermal_testbed.dir/thermal_testbed.cpp.o.d"
  "thermal_testbed"
  "thermal_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
