# Empty dependencies file for profile_lifecycle.
# This may be replaced when dependencies are built.
