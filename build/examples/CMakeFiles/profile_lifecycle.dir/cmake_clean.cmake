file(REMOVE_RECURSE
  "CMakeFiles/profile_lifecycle.dir/profile_lifecycle.cpp.o"
  "CMakeFiles/profile_lifecycle.dir/profile_lifecycle.cpp.o.d"
  "profile_lifecycle"
  "profile_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
