file(REMOVE_RECURSE
  "CMakeFiles/system_simulation.dir/system_simulation.cpp.o"
  "CMakeFiles/system_simulation.dir/system_simulation.cpp.o.d"
  "system_simulation"
  "system_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
