# Empty compiler generated dependencies file for system_simulation.
# This may be replaced when dependencies are built.
