# Empty compiler generated dependencies file for bench_fig2_retention_distribution.
# This may be replaced when dependencies are built.
