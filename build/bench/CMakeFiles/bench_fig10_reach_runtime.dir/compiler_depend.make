# Empty compiler generated dependencies file for bench_fig10_reach_runtime.
# This may be replaced when dependencies are built.
