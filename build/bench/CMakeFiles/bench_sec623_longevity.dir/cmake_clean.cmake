file(REMOVE_RECURSE
  "CMakeFiles/bench_sec623_longevity.dir/bench_sec623_longevity.cc.o"
  "CMakeFiles/bench_sec623_longevity.dir/bench_sec623_longevity.cc.o.d"
  "bench_sec623_longevity"
  "bench_sec623_longevity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec623_longevity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
