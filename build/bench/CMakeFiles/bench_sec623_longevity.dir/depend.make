# Empty dependencies file for bench_sec623_longevity.
# This may be replaced when dependencies are built.
