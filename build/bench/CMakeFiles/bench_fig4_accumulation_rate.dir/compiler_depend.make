# Empty compiler generated dependencies file for bench_fig4_accumulation_rate.
# This may be replaced when dependencies are built.
