# Empty dependencies file for bench_fig3_vrt_accumulation.
# This may be replaced when dependencies are built.
