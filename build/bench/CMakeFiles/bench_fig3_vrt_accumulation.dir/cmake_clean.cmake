file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_vrt_accumulation.dir/bench_fig3_vrt_accumulation.cc.o"
  "CMakeFiles/bench_fig3_vrt_accumulation.dir/bench_fig3_vrt_accumulation.cc.o.d"
  "bench_fig3_vrt_accumulation"
  "bench_fig3_vrt_accumulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_vrt_accumulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
