file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_tolerable_rber.dir/bench_tab1_tolerable_rber.cc.o"
  "CMakeFiles/bench_tab1_tolerable_rber.dir/bench_tab1_tolerable_rber.cc.o.d"
  "bench_tab1_tolerable_rber"
  "bench_tab1_tolerable_rber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_tolerable_rber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
