# Empty compiler generated dependencies file for bench_tab1_tolerable_rber.
# This may be replaced when dependencies are built.
