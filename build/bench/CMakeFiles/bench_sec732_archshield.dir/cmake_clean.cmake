file(REMOVE_RECURSE
  "CMakeFiles/bench_sec732_archshield.dir/bench_sec732_archshield.cc.o"
  "CMakeFiles/bench_sec732_archshield.dir/bench_sec732_archshield.cc.o.d"
  "bench_sec732_archshield"
  "bench_sec732_archshield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec732_archshield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
