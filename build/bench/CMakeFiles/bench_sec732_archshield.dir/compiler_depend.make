# Empty compiler generated dependencies file for bench_sec732_archshield.
# This may be replaced when dependencies are built.
