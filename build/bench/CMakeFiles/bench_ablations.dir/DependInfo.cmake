
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablations.cc" "bench/CMakeFiles/bench_ablations.dir/bench_ablations.cc.o" "gcc" "bench/CMakeFiles/bench_ablations.dir/bench_ablations.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reaper/CMakeFiles/reaper_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mitigation/CMakeFiles/reaper_mitigation.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/reaper_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/reaper_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/reaper_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/reaper_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/reaper_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/reaper_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/reaper_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/reaper_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/reaper_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/reaper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
