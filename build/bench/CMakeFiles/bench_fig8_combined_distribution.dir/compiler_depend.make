# Empty compiler generated dependencies file for bench_fig8_combined_distribution.
# This may be replaced when dependencies are built.
