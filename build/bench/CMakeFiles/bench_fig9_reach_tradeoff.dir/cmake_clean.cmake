file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_reach_tradeoff.dir/bench_fig9_reach_tradeoff.cc.o"
  "CMakeFiles/bench_fig9_reach_tradeoff.dir/bench_fig9_reach_tradeoff.cc.o.d"
  "bench_fig9_reach_tradeoff"
  "bench_fig9_reach_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_reach_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
