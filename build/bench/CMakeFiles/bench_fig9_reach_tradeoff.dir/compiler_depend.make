# Empty compiler generated dependencies file for bench_fig9_reach_tradeoff.
# This may be replaced when dependencies are built.
