file(REMOVE_RECURSE
  "CMakeFiles/bench_sec612_headline.dir/bench_sec612_headline.cc.o"
  "CMakeFiles/bench_sec612_headline.dir/bench_sec612_headline.cc.o.d"
  "bench_sec612_headline"
  "bench_sec612_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec612_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
