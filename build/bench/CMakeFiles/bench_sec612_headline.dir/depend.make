# Empty dependencies file for bench_sec612_headline.
# This may be replaced when dependencies are built.
