# Empty compiler generated dependencies file for bench_ext_avatar_vs_reaper.
# This may be replaced when dependencies are built.
