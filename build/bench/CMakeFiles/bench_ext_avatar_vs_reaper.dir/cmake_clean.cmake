file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_avatar_vs_reaper.dir/bench_ext_avatar_vs_reaper.cc.o"
  "CMakeFiles/bench_ext_avatar_vs_reaper.dir/bench_ext_avatar_vs_reaper.cc.o.d"
  "bench_ext_avatar_vs_reaper"
  "bench_ext_avatar_vs_reaper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_avatar_vs_reaper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
