file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_profiling_power.dir/bench_fig12_profiling_power.cc.o"
  "CMakeFiles/bench_fig12_profiling_power.dir/bench_fig12_profiling_power.cc.o.d"
  "bench_fig12_profiling_power"
  "bench_fig12_profiling_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_profiling_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
