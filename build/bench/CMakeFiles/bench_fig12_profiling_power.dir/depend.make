# Empty dependencies file for bench_fig12_profiling_power.
# This may be replaced when dependencies are built.
