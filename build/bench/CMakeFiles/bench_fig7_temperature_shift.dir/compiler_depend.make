# Empty compiler generated dependencies file for bench_fig7_temperature_shift.
# This may be replaced when dependencies are built.
