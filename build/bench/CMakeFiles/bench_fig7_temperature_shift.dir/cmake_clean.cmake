file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_temperature_shift.dir/bench_fig7_temperature_shift.cc.o"
  "CMakeFiles/bench_fig7_temperature_shift.dir/bench_fig7_temperature_shift.cc.o.d"
  "bench_fig7_temperature_shift"
  "bench_fig7_temperature_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_temperature_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
