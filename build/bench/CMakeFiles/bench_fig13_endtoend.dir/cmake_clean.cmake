file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_endtoend.dir/bench_fig13_endtoend.cc.o"
  "CMakeFiles/bench_fig13_endtoend.dir/bench_fig13_endtoend.cc.o.d"
  "bench_fig13_endtoend"
  "bench_fig13_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
