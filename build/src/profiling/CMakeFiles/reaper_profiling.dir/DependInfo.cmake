
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiling/brute_force.cc" "src/profiling/CMakeFiles/reaper_profiling.dir/brute_force.cc.o" "gcc" "src/profiling/CMakeFiles/reaper_profiling.dir/brute_force.cc.o.d"
  "/root/repo/src/profiling/ecc_scrub.cc" "src/profiling/CMakeFiles/reaper_profiling.dir/ecc_scrub.cc.o" "gcc" "src/profiling/CMakeFiles/reaper_profiling.dir/ecc_scrub.cc.o.d"
  "/root/repo/src/profiling/profile.cc" "src/profiling/CMakeFiles/reaper_profiling.dir/profile.cc.o" "gcc" "src/profiling/CMakeFiles/reaper_profiling.dir/profile.cc.o.d"
  "/root/repo/src/profiling/profile_io.cc" "src/profiling/CMakeFiles/reaper_profiling.dir/profile_io.cc.o" "gcc" "src/profiling/CMakeFiles/reaper_profiling.dir/profile_io.cc.o.d"
  "/root/repo/src/profiling/reach.cc" "src/profiling/CMakeFiles/reaper_profiling.dir/reach.cc.o" "gcc" "src/profiling/CMakeFiles/reaper_profiling.dir/reach.cc.o.d"
  "/root/repo/src/profiling/runtime_model.cc" "src/profiling/CMakeFiles/reaper_profiling.dir/runtime_model.cc.o" "gcc" "src/profiling/CMakeFiles/reaper_profiling.dir/runtime_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/reaper_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/reaper_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/reaper_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/reaper_thermal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
