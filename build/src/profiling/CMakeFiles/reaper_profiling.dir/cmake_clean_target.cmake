file(REMOVE_RECURSE
  "libreaper_profiling.a"
)
