file(REMOVE_RECURSE
  "CMakeFiles/reaper_profiling.dir/brute_force.cc.o"
  "CMakeFiles/reaper_profiling.dir/brute_force.cc.o.d"
  "CMakeFiles/reaper_profiling.dir/ecc_scrub.cc.o"
  "CMakeFiles/reaper_profiling.dir/ecc_scrub.cc.o.d"
  "CMakeFiles/reaper_profiling.dir/profile.cc.o"
  "CMakeFiles/reaper_profiling.dir/profile.cc.o.d"
  "CMakeFiles/reaper_profiling.dir/profile_io.cc.o"
  "CMakeFiles/reaper_profiling.dir/profile_io.cc.o.d"
  "CMakeFiles/reaper_profiling.dir/reach.cc.o"
  "CMakeFiles/reaper_profiling.dir/reach.cc.o.d"
  "CMakeFiles/reaper_profiling.dir/runtime_model.cc.o"
  "CMakeFiles/reaper_profiling.dir/runtime_model.cc.o.d"
  "libreaper_profiling.a"
  "libreaper_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reaper_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
