# Empty dependencies file for reaper_profiling.
# This may be replaced when dependencies are built.
