# Empty compiler generated dependencies file for reaper_eval.
# This may be replaced when dependencies are built.
