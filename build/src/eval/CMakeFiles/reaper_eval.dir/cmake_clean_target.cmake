file(REMOVE_RECURSE
  "libreaper_eval.a"
)
