file(REMOVE_RECURSE
  "CMakeFiles/reaper_eval.dir/endtoend.cc.o"
  "CMakeFiles/reaper_eval.dir/endtoend.cc.o.d"
  "CMakeFiles/reaper_eval.dir/overhead.cc.o"
  "CMakeFiles/reaper_eval.dir/overhead.cc.o.d"
  "libreaper_eval.a"
  "libreaper_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reaper_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
