file(REMOVE_RECURSE
  "CMakeFiles/reaper_workload.dir/synthetic.cc.o"
  "CMakeFiles/reaper_workload.dir/synthetic.cc.o.d"
  "libreaper_workload.a"
  "libreaper_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reaper_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
