file(REMOVE_RECURSE
  "libreaper_workload.a"
)
