# Empty compiler generated dependencies file for reaper_workload.
# This may be replaced when dependencies are built.
