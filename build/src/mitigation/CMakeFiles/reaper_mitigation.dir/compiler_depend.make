# Empty compiler generated dependencies file for reaper_mitigation.
# This may be replaced when dependencies are built.
