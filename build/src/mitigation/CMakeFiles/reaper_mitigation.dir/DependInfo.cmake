
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mitigation/archshield.cc" "src/mitigation/CMakeFiles/reaper_mitigation.dir/archshield.cc.o" "gcc" "src/mitigation/CMakeFiles/reaper_mitigation.dir/archshield.cc.o.d"
  "/root/repo/src/mitigation/avatar.cc" "src/mitigation/CMakeFiles/reaper_mitigation.dir/avatar.cc.o" "gcc" "src/mitigation/CMakeFiles/reaper_mitigation.dir/avatar.cc.o.d"
  "/root/repo/src/mitigation/bloom.cc" "src/mitigation/CMakeFiles/reaper_mitigation.dir/bloom.cc.o" "gcc" "src/mitigation/CMakeFiles/reaper_mitigation.dir/bloom.cc.o.d"
  "/root/repo/src/mitigation/raidr.cc" "src/mitigation/CMakeFiles/reaper_mitigation.dir/raidr.cc.o" "gcc" "src/mitigation/CMakeFiles/reaper_mitigation.dir/raidr.cc.o.d"
  "/root/repo/src/mitigation/rapid.cc" "src/mitigation/CMakeFiles/reaper_mitigation.dir/rapid.cc.o" "gcc" "src/mitigation/CMakeFiles/reaper_mitigation.dir/rapid.cc.o.d"
  "/root/repo/src/mitigation/rowmap.cc" "src/mitigation/CMakeFiles/reaper_mitigation.dir/rowmap.cc.o" "gcc" "src/mitigation/CMakeFiles/reaper_mitigation.dir/rowmap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/reaper_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/reaper_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/reaper_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/reaper_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/reaper_thermal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
