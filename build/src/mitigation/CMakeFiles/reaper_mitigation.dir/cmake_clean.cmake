file(REMOVE_RECURSE
  "CMakeFiles/reaper_mitigation.dir/archshield.cc.o"
  "CMakeFiles/reaper_mitigation.dir/archshield.cc.o.d"
  "CMakeFiles/reaper_mitigation.dir/avatar.cc.o"
  "CMakeFiles/reaper_mitigation.dir/avatar.cc.o.d"
  "CMakeFiles/reaper_mitigation.dir/bloom.cc.o"
  "CMakeFiles/reaper_mitigation.dir/bloom.cc.o.d"
  "CMakeFiles/reaper_mitigation.dir/raidr.cc.o"
  "CMakeFiles/reaper_mitigation.dir/raidr.cc.o.d"
  "CMakeFiles/reaper_mitigation.dir/rapid.cc.o"
  "CMakeFiles/reaper_mitigation.dir/rapid.cc.o.d"
  "CMakeFiles/reaper_mitigation.dir/rowmap.cc.o"
  "CMakeFiles/reaper_mitigation.dir/rowmap.cc.o.d"
  "libreaper_mitigation.a"
  "libreaper_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reaper_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
