file(REMOVE_RECURSE
  "libreaper_mitigation.a"
)
