file(REMOVE_RECURSE
  "CMakeFiles/reaper_testbed.dir/softmc_host.cc.o"
  "CMakeFiles/reaper_testbed.dir/softmc_host.cc.o.d"
  "libreaper_testbed.a"
  "libreaper_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reaper_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
