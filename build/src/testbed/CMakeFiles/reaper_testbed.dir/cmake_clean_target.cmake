file(REMOVE_RECURSE
  "libreaper_testbed.a"
)
