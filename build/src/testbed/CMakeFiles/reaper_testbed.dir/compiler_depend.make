# Empty compiler generated dependencies file for reaper_testbed.
# This may be replaced when dependencies are built.
