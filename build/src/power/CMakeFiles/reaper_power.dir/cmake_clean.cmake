file(REMOVE_RECURSE
  "CMakeFiles/reaper_power.dir/drampower.cc.o"
  "CMakeFiles/reaper_power.dir/drampower.cc.o.d"
  "libreaper_power.a"
  "libreaper_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reaper_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
