file(REMOVE_RECURSE
  "libreaper_power.a"
)
