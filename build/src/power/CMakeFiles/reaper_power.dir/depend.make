# Empty dependencies file for reaper_power.
# This may be replaced when dependencies are built.
