# Empty dependencies file for reaper_common.
# This may be replaced when dependencies are built.
