file(REMOVE_RECURSE
  "CMakeFiles/reaper_common.dir/fit.cc.o"
  "CMakeFiles/reaper_common.dir/fit.cc.o.d"
  "CMakeFiles/reaper_common.dir/ks_test.cc.o"
  "CMakeFiles/reaper_common.dir/ks_test.cc.o.d"
  "CMakeFiles/reaper_common.dir/logging.cc.o"
  "CMakeFiles/reaper_common.dir/logging.cc.o.d"
  "CMakeFiles/reaper_common.dir/math_util.cc.o"
  "CMakeFiles/reaper_common.dir/math_util.cc.o.d"
  "CMakeFiles/reaper_common.dir/rng.cc.o"
  "CMakeFiles/reaper_common.dir/rng.cc.o.d"
  "CMakeFiles/reaper_common.dir/stats.cc.o"
  "CMakeFiles/reaper_common.dir/stats.cc.o.d"
  "CMakeFiles/reaper_common.dir/table.cc.o"
  "CMakeFiles/reaper_common.dir/table.cc.o.d"
  "libreaper_common.a"
  "libreaper_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reaper_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
