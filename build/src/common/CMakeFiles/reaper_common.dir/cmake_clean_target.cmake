file(REMOVE_RECURSE
  "libreaper_common.a"
)
