file(REMOVE_RECURSE
  "CMakeFiles/reaper_thermal.dir/chamber.cc.o"
  "CMakeFiles/reaper_thermal.dir/chamber.cc.o.d"
  "libreaper_thermal.a"
  "libreaper_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reaper_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
