# Empty compiler generated dependencies file for reaper_thermal.
# This may be replaced when dependencies are built.
