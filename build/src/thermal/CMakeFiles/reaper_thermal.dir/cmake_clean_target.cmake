file(REMOVE_RECURSE
  "libreaper_thermal.a"
)
