file(REMOVE_RECURSE
  "libreaper_sim.a"
)
