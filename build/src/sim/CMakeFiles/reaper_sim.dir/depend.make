# Empty dependencies file for reaper_sim.
# This may be replaced when dependencies are built.
