
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/reaper_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/reaper_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/core.cc" "src/sim/CMakeFiles/reaper_sim.dir/core.cc.o" "gcc" "src/sim/CMakeFiles/reaper_sim.dir/core.cc.o.d"
  "/root/repo/src/sim/memctrl.cc" "src/sim/CMakeFiles/reaper_sim.dir/memctrl.cc.o" "gcc" "src/sim/CMakeFiles/reaper_sim.dir/memctrl.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/sim/CMakeFiles/reaper_sim.dir/system.cc.o" "gcc" "src/sim/CMakeFiles/reaper_sim.dir/system.cc.o.d"
  "/root/repo/src/sim/timing.cc" "src/sim/CMakeFiles/reaper_sim.dir/timing.cc.o" "gcc" "src/sim/CMakeFiles/reaper_sim.dir/timing.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/reaper_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/reaper_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/trace_io.cc" "src/sim/CMakeFiles/reaper_sim.dir/trace_io.cc.o" "gcc" "src/sim/CMakeFiles/reaper_sim.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/reaper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
