file(REMOVE_RECURSE
  "CMakeFiles/reaper_sim.dir/cache.cc.o"
  "CMakeFiles/reaper_sim.dir/cache.cc.o.d"
  "CMakeFiles/reaper_sim.dir/core.cc.o"
  "CMakeFiles/reaper_sim.dir/core.cc.o.d"
  "CMakeFiles/reaper_sim.dir/memctrl.cc.o"
  "CMakeFiles/reaper_sim.dir/memctrl.cc.o.d"
  "CMakeFiles/reaper_sim.dir/system.cc.o"
  "CMakeFiles/reaper_sim.dir/system.cc.o.d"
  "CMakeFiles/reaper_sim.dir/timing.cc.o"
  "CMakeFiles/reaper_sim.dir/timing.cc.o.d"
  "CMakeFiles/reaper_sim.dir/trace.cc.o"
  "CMakeFiles/reaper_sim.dir/trace.cc.o.d"
  "CMakeFiles/reaper_sim.dir/trace_io.cc.o"
  "CMakeFiles/reaper_sim.dir/trace_io.cc.o.d"
  "libreaper_sim.a"
  "libreaper_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reaper_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
