# Empty dependencies file for reaper_core.
# This may be replaced when dependencies are built.
