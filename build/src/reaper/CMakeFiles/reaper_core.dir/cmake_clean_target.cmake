file(REMOVE_RECURSE
  "libreaper_core.a"
)
