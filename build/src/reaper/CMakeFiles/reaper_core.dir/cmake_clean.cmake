file(REMOVE_RECURSE
  "CMakeFiles/reaper_core.dir/firmware.cc.o"
  "CMakeFiles/reaper_core.dir/firmware.cc.o.d"
  "libreaper_core.a"
  "libreaper_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reaper_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
