file(REMOVE_RECURSE
  "CMakeFiles/reaper_dram.dir/data_pattern.cc.o"
  "CMakeFiles/reaper_dram.dir/data_pattern.cc.o.d"
  "CMakeFiles/reaper_dram.dir/device.cc.o"
  "CMakeFiles/reaper_dram.dir/device.cc.o.d"
  "CMakeFiles/reaper_dram.dir/geometry.cc.o"
  "CMakeFiles/reaper_dram.dir/geometry.cc.o.d"
  "CMakeFiles/reaper_dram.dir/module.cc.o"
  "CMakeFiles/reaper_dram.dir/module.cc.o.d"
  "CMakeFiles/reaper_dram.dir/retention_model.cc.o"
  "CMakeFiles/reaper_dram.dir/retention_model.cc.o.d"
  "CMakeFiles/reaper_dram.dir/vendor_model.cc.o"
  "CMakeFiles/reaper_dram.dir/vendor_model.cc.o.d"
  "libreaper_dram.a"
  "libreaper_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reaper_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
