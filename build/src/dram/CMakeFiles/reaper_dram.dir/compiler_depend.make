# Empty compiler generated dependencies file for reaper_dram.
# This may be replaced when dependencies are built.
