
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/data_pattern.cc" "src/dram/CMakeFiles/reaper_dram.dir/data_pattern.cc.o" "gcc" "src/dram/CMakeFiles/reaper_dram.dir/data_pattern.cc.o.d"
  "/root/repo/src/dram/device.cc" "src/dram/CMakeFiles/reaper_dram.dir/device.cc.o" "gcc" "src/dram/CMakeFiles/reaper_dram.dir/device.cc.o.d"
  "/root/repo/src/dram/geometry.cc" "src/dram/CMakeFiles/reaper_dram.dir/geometry.cc.o" "gcc" "src/dram/CMakeFiles/reaper_dram.dir/geometry.cc.o.d"
  "/root/repo/src/dram/module.cc" "src/dram/CMakeFiles/reaper_dram.dir/module.cc.o" "gcc" "src/dram/CMakeFiles/reaper_dram.dir/module.cc.o.d"
  "/root/repo/src/dram/retention_model.cc" "src/dram/CMakeFiles/reaper_dram.dir/retention_model.cc.o" "gcc" "src/dram/CMakeFiles/reaper_dram.dir/retention_model.cc.o.d"
  "/root/repo/src/dram/vendor_model.cc" "src/dram/CMakeFiles/reaper_dram.dir/vendor_model.cc.o" "gcc" "src/dram/CMakeFiles/reaper_dram.dir/vendor_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/reaper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
