file(REMOVE_RECURSE
  "libreaper_dram.a"
)
