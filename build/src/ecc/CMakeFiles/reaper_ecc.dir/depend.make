# Empty dependencies file for reaper_ecc.
# This may be replaced when dependencies are built.
