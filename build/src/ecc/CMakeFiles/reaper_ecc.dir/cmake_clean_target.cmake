file(REMOVE_RECURSE
  "libreaper_ecc.a"
)
