
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/hamming.cc" "src/ecc/CMakeFiles/reaper_ecc.dir/hamming.cc.o" "gcc" "src/ecc/CMakeFiles/reaper_ecc.dir/hamming.cc.o.d"
  "/root/repo/src/ecc/longevity.cc" "src/ecc/CMakeFiles/reaper_ecc.dir/longevity.cc.o" "gcc" "src/ecc/CMakeFiles/reaper_ecc.dir/longevity.cc.o.d"
  "/root/repo/src/ecc/protected_memory.cc" "src/ecc/CMakeFiles/reaper_ecc.dir/protected_memory.cc.o" "gcc" "src/ecc/CMakeFiles/reaper_ecc.dir/protected_memory.cc.o.d"
  "/root/repo/src/ecc/uber.cc" "src/ecc/CMakeFiles/reaper_ecc.dir/uber.cc.o" "gcc" "src/ecc/CMakeFiles/reaper_ecc.dir/uber.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/reaper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
