file(REMOVE_RECURSE
  "CMakeFiles/reaper_ecc.dir/hamming.cc.o"
  "CMakeFiles/reaper_ecc.dir/hamming.cc.o.d"
  "CMakeFiles/reaper_ecc.dir/longevity.cc.o"
  "CMakeFiles/reaper_ecc.dir/longevity.cc.o.d"
  "CMakeFiles/reaper_ecc.dir/protected_memory.cc.o"
  "CMakeFiles/reaper_ecc.dir/protected_memory.cc.o.d"
  "CMakeFiles/reaper_ecc.dir/uber.cc.o"
  "CMakeFiles/reaper_ecc.dir/uber.cc.o.d"
  "libreaper_ecc.a"
  "libreaper_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reaper_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
