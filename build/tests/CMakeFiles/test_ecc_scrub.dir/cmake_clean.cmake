file(REMOVE_RECURSE
  "CMakeFiles/test_ecc_scrub.dir/test_ecc_scrub.cc.o"
  "CMakeFiles/test_ecc_scrub.dir/test_ecc_scrub.cc.o.d"
  "test_ecc_scrub"
  "test_ecc_scrub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecc_scrub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
