# Empty dependencies file for test_ecc_scrub.
# This may be replaced when dependencies are built.
