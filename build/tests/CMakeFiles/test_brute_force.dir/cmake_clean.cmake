file(REMOVE_RECURSE
  "CMakeFiles/test_brute_force.dir/test_brute_force.cc.o"
  "CMakeFiles/test_brute_force.dir/test_brute_force.cc.o.d"
  "test_brute_force"
  "test_brute_force.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_brute_force.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
