file(REMOVE_RECURSE
  "CMakeFiles/test_overhead.dir/test_overhead.cc.o"
  "CMakeFiles/test_overhead.dir/test_overhead.cc.o.d"
  "test_overhead"
  "test_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
