file(REMOVE_RECURSE
  "CMakeFiles/test_device_dynamics.dir/test_device_dynamics.cc.o"
  "CMakeFiles/test_device_dynamics.dir/test_device_dynamics.cc.o.d"
  "test_device_dynamics"
  "test_device_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
