# Empty compiler generated dependencies file for test_device_dynamics.
# This may be replaced when dependencies are built.
