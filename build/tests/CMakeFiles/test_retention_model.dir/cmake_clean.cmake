file(REMOVE_RECURSE
  "CMakeFiles/test_retention_model.dir/test_retention_model.cc.o"
  "CMakeFiles/test_retention_model.dir/test_retention_model.cc.o.d"
  "test_retention_model"
  "test_retention_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retention_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
