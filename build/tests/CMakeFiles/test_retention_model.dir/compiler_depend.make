# Empty compiler generated dependencies file for test_retention_model.
# This may be replaced when dependencies are built.
