file(REMOVE_RECURSE
  "CMakeFiles/test_data_pattern.dir/test_data_pattern.cc.o"
  "CMakeFiles/test_data_pattern.dir/test_data_pattern.cc.o.d"
  "test_data_pattern"
  "test_data_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
