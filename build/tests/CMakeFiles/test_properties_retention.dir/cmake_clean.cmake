file(REMOVE_RECURSE
  "CMakeFiles/test_properties_retention.dir/test_properties_retention.cc.o"
  "CMakeFiles/test_properties_retention.dir/test_properties_retention.cc.o.d"
  "test_properties_retention"
  "test_properties_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
