# Empty compiler generated dependencies file for test_properties_retention.
# This may be replaced when dependencies are built.
