file(REMOVE_RECURSE
  "CMakeFiles/test_reach.dir/test_reach.cc.o"
  "CMakeFiles/test_reach.dir/test_reach.cc.o.d"
  "test_reach"
  "test_reach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
