file(REMOVE_RECURSE
  "CMakeFiles/test_softmc_host.dir/test_softmc_host.cc.o"
  "CMakeFiles/test_softmc_host.dir/test_softmc_host.cc.o.d"
  "test_softmc_host"
  "test_softmc_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softmc_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
