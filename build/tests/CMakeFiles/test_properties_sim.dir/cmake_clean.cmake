file(REMOVE_RECURSE
  "CMakeFiles/test_properties_sim.dir/test_properties_sim.cc.o"
  "CMakeFiles/test_properties_sim.dir/test_properties_sim.cc.o.d"
  "test_properties_sim"
  "test_properties_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
