file(REMOVE_RECURSE
  "CMakeFiles/test_properties_profiling.dir/test_properties_profiling.cc.o"
  "CMakeFiles/test_properties_profiling.dir/test_properties_profiling.cc.o.d"
  "test_properties_profiling"
  "test_properties_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
