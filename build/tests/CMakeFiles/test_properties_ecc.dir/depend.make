# Empty dependencies file for test_properties_ecc.
# This may be replaced when dependencies are built.
