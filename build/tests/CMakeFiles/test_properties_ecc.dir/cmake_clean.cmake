file(REMOVE_RECURSE
  "CMakeFiles/test_properties_ecc.dir/test_properties_ecc.cc.o"
  "CMakeFiles/test_properties_ecc.dir/test_properties_ecc.cc.o.d"
  "test_properties_ecc"
  "test_properties_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
