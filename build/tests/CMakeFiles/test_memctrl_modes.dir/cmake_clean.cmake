file(REMOVE_RECURSE
  "CMakeFiles/test_memctrl_modes.dir/test_memctrl_modes.cc.o"
  "CMakeFiles/test_memctrl_modes.dir/test_memctrl_modes.cc.o.d"
  "test_memctrl_modes"
  "test_memctrl_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memctrl_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
