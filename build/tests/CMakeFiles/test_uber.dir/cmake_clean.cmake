file(REMOVE_RECURSE
  "CMakeFiles/test_uber.dir/test_uber.cc.o"
  "CMakeFiles/test_uber.dir/test_uber.cc.o.d"
  "test_uber"
  "test_uber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
