# Empty dependencies file for test_uber.
# This may be replaced when dependencies are built.
