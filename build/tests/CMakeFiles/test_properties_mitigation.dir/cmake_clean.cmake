file(REMOVE_RECURSE
  "CMakeFiles/test_properties_mitigation.dir/test_properties_mitigation.cc.o"
  "CMakeFiles/test_properties_mitigation.dir/test_properties_mitigation.cc.o.d"
  "test_properties_mitigation"
  "test_properties_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
