# Empty dependencies file for test_properties_mitigation.
# This may be replaced when dependencies are built.
