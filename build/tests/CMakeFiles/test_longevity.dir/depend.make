# Empty dependencies file for test_longevity.
# This may be replaced when dependencies are built.
