file(REMOVE_RECURSE
  "CMakeFiles/test_longevity.dir/test_longevity.cc.o"
  "CMakeFiles/test_longevity.dir/test_longevity.cc.o.d"
  "test_longevity"
  "test_longevity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_longevity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
