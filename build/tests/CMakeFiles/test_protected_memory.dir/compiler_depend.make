# Empty compiler generated dependencies file for test_protected_memory.
# This may be replaced when dependencies are built.
