file(REMOVE_RECURSE
  "CMakeFiles/test_protected_memory.dir/test_protected_memory.cc.o"
  "CMakeFiles/test_protected_memory.dir/test_protected_memory.cc.o.d"
  "test_protected_memory"
  "test_protected_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protected_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
