file(REMOVE_RECURSE
  "CMakeFiles/test_avatar.dir/test_avatar.cc.o"
  "CMakeFiles/test_avatar.dir/test_avatar.cc.o.d"
  "test_avatar"
  "test_avatar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_avatar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
