# Empty compiler generated dependencies file for test_avatar.
# This may be replaced when dependencies are built.
