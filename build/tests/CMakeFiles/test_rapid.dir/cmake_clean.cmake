file(REMOVE_RECURSE
  "CMakeFiles/test_rapid.dir/test_rapid.cc.o"
  "CMakeFiles/test_rapid.dir/test_rapid.cc.o.d"
  "test_rapid"
  "test_rapid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rapid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
