# Empty dependencies file for test_rapid.
# This may be replaced when dependencies are built.
