/**
 * @file
 * Cross-module integration tests: the full REAPER pipeline exercised
 * end to end — device -> profiler -> (serialized) profile ->
 * mitigation mechanism -> ECC -> safety, for each mitigation
 * mechanism the library provides.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "reaper/reaper.h"

namespace reaper {
namespace {

dram::ModuleConfig
moduleConfig(uint64_t seed)
{
    dram::ModuleConfig mc;
    mc.numChips = 1;
    mc.chipCapacityBits = 2ull * 1024 * 1024 * 1024; // 256 MB
    mc.seed = seed;
    mc.envelope = {2.0, 50.0};
    mc.chipVariation = 0.0;
    return mc;
}

testbed::HostConfig
instantHost()
{
    testbed::HostConfig h;
    h.useChamber = false;
    return h;
}

profiling::RetentionProfile
reachProfileOf(dram::DramModule &module,
               profiling::Conditions target = {1.024, 45.0})
{
    testbed::SoftMcHost host(module, instantHost());
    profiling::ReachConfig cfg;
    cfg.target = target;
    cfg.deltaRefreshInterval = 0.250;
    cfg.iterations = 4;
    return profiling::ReachProfiler{}.run(host, cfg).profile;
}

TEST(Integration, FirmwareWithRaidrReducesRefreshSafely)
{
    dram::DramModule module(moduleConfig(1));
    testbed::SoftMcHost host(module, instantHost());
    mitigation::RaidrConfig rc;
    rc.totalRows = module.capacityBits() / (2048 * 8);
    rc.binIntervals = {0.064, 1.024};
    mitigation::Raidr raidr(rc);
    firmware::OnlineReaperConfig cfg;
    cfg.target = {1.024, 45.0};
    firmware::OnlineReaper reaper(host, raidr, cfg);
    reaper.runFor(hoursToSec(20.0));

    // All but the profiled rows refresh 16x slower.
    EXPECT_LT(raidr.refreshWorkRelative(), 0.10);
    EXPECT_GT(raidr.stats().protectedRows, 0u);
    auto audit = reaper.auditSafety();
    EXPECT_TRUE(audit.safe)
        << audit.uncovered << " vs " << audit.tolerable;
}

TEST(Integration, FirmwareWithBloomRaidr)
{
    dram::DramModule module(moduleConfig(2));
    testbed::SoftMcHost host(module, instantHost());
    mitigation::RaidrConfig rc;
    rc.totalRows = module.capacityBits() / (2048 * 8);
    rc.useBloomFilters = true;
    rc.bloomExpectedRows = 4096;
    mitigation::Raidr raidr(rc);
    firmware::OnlineReaperConfig cfg;
    cfg.target = {1.024, 45.0};
    firmware::OnlineReaper reaper(host, raidr, cfg);
    reaper.profileOnce();
    // Bloom filters have no false negatives: safety must still hold.
    auto audit = reaper.auditSafety();
    EXPECT_TRUE(audit.safe);
    EXPECT_GT(raidr.bloomStorageBits(), 0u);
}

TEST(Integration, FirmwareWithRowMapOut)
{
    dram::DramModule module(moduleConfig(3));
    testbed::SoftMcHost host(module, instantHost());
    mitigation::RowMapConfig rc;
    rc.totalRows = module.capacityBits() / (2048 * 8);
    rc.maxMappedFraction = 0.05;
    mitigation::RowMapOut rowmap(rc);
    firmware::OnlineReaperConfig cfg;
    cfg.target = {1.024, 45.0};
    firmware::OnlineReaper reaper(host, rowmap, cfg);
    reaper.profileOnce();
    EXPECT_FALSE(rowmap.budgetExceeded());
    EXPECT_GT(rowmap.mappedRows(), 0u);
    EXPECT_TRUE(reaper.auditSafety().safe);
}

TEST(Integration, ProfileSurvivesSerializationIntoMitigation)
{
    // Profile -> save -> (reboot) -> load -> ArchShield behaves
    // identically.
    dram::DramModule module(moduleConfig(4));
    profiling::RetentionProfile original = reachProfileOf(module);
    ASSERT_GT(original.size(), 50u);

    std::stringstream persisted;
    profiling::saveProfile(original, persisted);
    profiling::RetentionProfile restored =
        profiling::loadProfile(persisted);

    mitigation::ArchShieldConfig ac;
    ac.capacityBits = module.capacityBits();
    mitigation::ArchShield from_original(ac), from_restored(ac);
    from_original.applyProfile(original);
    from_restored.applyProfile(restored);
    for (const auto &cell : module.trueFailingSet(1.024, 45.0)) {
        EXPECT_EQ(from_original.covers(cell),
                  from_restored.covers(cell));
    }
}

TEST(Integration, EscapedFailuresFitEccBudgetInProtectedMemory)
{
    // The Section 6.2 contract, executed on real data words: inject
    // the failures that escape a reach profile into SECDED-protected
    // memory and verify a scrub corrects all of them.
    dram::DramModule module(moduleConfig(5));
    profiling::RetentionProfile profile = reachProfileOf(module);
    auto truth = module.trueFailingSet(1.024, 45.0);

    std::vector<uint64_t> escaped;
    for (const auto &cell : truth) {
        if (!profile.contains(cell))
            escaped.push_back(cell.addr);
    }
    double tolerable = ecc::tolerableBitErrors(
        ecc::kConsumerUber, ecc::EccConfig::secded(),
        module.capacityBits());
    ASSERT_LE(static_cast<double>(escaped.size()), tolerable);

    ecc::EccProtectedMemory mem(module.capacityBits());
    Rng rng(6);
    // Back the escaped cells' words with real data.
    for (uint64_t addr : escaped)
        mem.writeWord(addr / 64, rng());
    mem.injectFailures(escaped);
    auto report = mem.scrub();
    EXPECT_EQ(report.uncorrectable, 0u);
    EXPECT_EQ(report.corrected, escaped.size());
}

TEST(Integration, RapidRankedByTwoIntervalProfiles)
{
    // REAPER profiles at two target intervals feed RAPID's ranking;
    // a partial allocation then runs at the long interval.
    dram::DramModule module(moduleConfig(7));
    profiling::RetentionProfile at_256 =
        reachProfileOf(module, {0.256, 45.0});
    profiling::RetentionProfile at_1024 =
        reachProfileOf(module, {1.024, 45.0});

    mitigation::RapidConfig rc;
    rc.totalRows = module.capacityBits() / (2048 * 8);
    rc.profiledIntervals = {0.256, 1.024};
    mitigation::Rapid rapid(rc);
    rapid.applyRankedProfiles({at_256, at_1024});

    auto census = rapid.classCensus();
    ASSERT_EQ(census.size(), 3u);
    EXPECT_GT(census[1] + census[2], 0u);
    // Allocating just the clean rows supports the 1024 ms interval.
    EXPECT_DOUBLE_EQ(rapid.refreshIntervalFor(census[0]), 1.024);
    // Full occupancy cannot (some rows fail even at 256 ms... if any).
    EXPECT_LE(rapid.refreshIntervalFor(rc.totalRows), 1.024);
}

TEST(Integration, TraceFileDrivesSimulator)
{
    // Generate -> save -> load -> simulate.
    const workload::BenchmarkSpec &spec =
        workload::benchmarkByName("milc");
    sim::Trace t =
        workload::generateTrace(spec, 5000, 11, 1ull << 32);
    std::string path = ::testing::TempDir() + "reaper_itrace.txt";
    sim::saveTraceFile(t, path);
    sim::Trace loaded = sim::loadTraceFile(path);
    std::remove(path.c_str());

    sim::SystemConfig cfg;
    cfg.channels = 2;
    cfg.setDram(8, 0.064);
    sim::System sys(cfg, {loaded});
    sys.run(50000);
    EXPECT_GT(sys.stats().coreIpc.at(0), 0.0);
}

TEST(Integration, OverheadModelMatchesFirmwareMeasurement)
{
    // The analytic Eq. 8/9 overhead and the firmware's measured
    // profiling share must agree for the same scenario.
    dram::DramModule module(moduleConfig(8));
    testbed::SoftMcHost host(module, instantHost());
    mitigation::ArchShieldConfig ac;
    ac.capacityBits = module.capacityBits();
    mitigation::ArchShield shield(ac);
    firmware::OnlineReaperConfig cfg;
    cfg.target = {1.024, 45.0};
    firmware::OnlineReaper reaper(host, shield, cfg);
    Seconds interval = reaper.scheduledReprofileInterval();
    reaper.runFor(3.0 * interval);

    double measured = reaper.overheadFraction();
    // Analytic: reach round time over the reprofiling interval.
    double expected = reaper.log().front().roundTime /
                      (reaper.log().front().roundTime + interval);
    EXPECT_NEAR(measured, expected, expected * 0.5 + 0.002);
}

} // namespace
} // namespace reaper
