/**
 * @file
 * Tests for the fleet execution engine: ordered result collection,
 * bit-identical results across worker counts (including a fig9-style
 * coverage/FPR evaluation), per-task seed derivation, and exception
 * propagation (for runFleet and the underlying parallelFor).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "reaper/reaper.h"

namespace reaper {
namespace eval {
namespace {

TEST(RunFleet, CollectsResultsInTaskOrder)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        auto out = runFleet(
            100, [](size_t i) { return i * i; },
            FleetOptions{threads});
        ASSERT_EQ(out.size(), 100u);
        for (size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], i * i);
    }
}

TEST(RunFleet, EmptyFleetReturnsEmpty)
{
    auto out = runFleet(0, [](size_t) { return 1; });
    EXPECT_TRUE(out.empty());
}

TEST(RunFleet, RunsEveryTaskExactlyOnce)
{
    std::vector<std::atomic<int>> hits(257);
    runFleet(
        hits.size(),
        [&](size_t i) {
            hits[i].fetch_add(1);
            return 0;
        },
        FleetOptions{8, /*chunk=*/3});
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(RunFleet, MoveOnlyResultsSupported)
{
    auto out = runFleet(10, [](size_t i) {
        return std::make_unique<size_t>(i);
    });
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(*out[i], i);
}

TEST(RunFleet, PropagatesTaskExceptions)
{
    for (unsigned threads : {1u, 8u}) {
        EXPECT_THROW(
            runFleet(
                64,
                [](size_t i) -> int {
                    if (i == 13)
                        throw std::runtime_error("task 13 failed");
                    return 0;
                },
                FleetOptions{threads}),
            std::runtime_error);
    }
}

TEST(ParallelFor, PropagatesTaskExceptions)
{
    EXPECT_THROW(parallelFor(
                     64,
                     [](size_t i) {
                         if (i == 7)
                             throw std::runtime_error("worker died");
                     },
                     4),
                 std::runtime_error);
}

TEST(ParallelFor, StillRunsAllWhenNoException)
{
    std::atomic<size_t> sum{0};
    parallelFor(100, [&](size_t i) { sum.fetch_add(i); }, 4);
    EXPECT_EQ(sum.load(), 4950u);
}

TEST(FleetSeed, StableAndDistinctPerTask)
{
    EXPECT_EQ(fleetSeed(999, 0), fleetSeed(999, 0));
    EXPECT_NE(fleetSeed(999, 0), fleetSeed(999, 1));
    EXPECT_NE(fleetSeed(999, 0), fleetSeed(998, 0));
    // Derived chips get distinct populations.
    dram::DeviceConfig a, b;
    a.capacityBits = b.capacityBits = 512ull * 1024 * 1024;
    a.envelope = b.envelope = {2.5, 50.0};
    a.seed = fleetSeed(42, 0);
    b.seed = fleetSeed(42, 1);
    dram::DramDevice da(a), db(b);
    auto fa = da.trueFailingSet(2.0, 45.0);
    auto fb = db.trueFailingSet(2.0, 45.0);
    EXPECT_NE(fa, fb);
}

TEST(FleetThreads, EnvOverrideWins)
{
    ASSERT_EQ(setenv("REAPER_BENCH_THREADS", "3", 1), 0);
    EXPECT_EQ(fleetThreads(), 3u);
    ASSERT_EQ(unsetenv("REAPER_BENCH_THREADS"), 0);
    EXPECT_GE(fleetThreads(), 1u);
}

/**
 * The property the converted benches rely on: a fig9-style
 * coverage/FPR evaluation over a reach grid is bit-identical (exact
 * double equality) at 1, 2, and 8 worker threads.
 */
TEST(RunFleet, Fig9StyleRowBitIdenticalAcrossThreadCounts)
{
    dram::ModuleConfig mc;
    mc.numChips = 1;
    mc.chipCapacityBits = 512ull * 1024 * 1024; // 64 MB
    mc.vendor = dram::Vendor::B;
    mc.seed = 77;
    mc.envelope = {2.4, 56.0};
    mc.chipVariation = 0.0;

    profiling::Conditions target{1.024, 45.0};
    dram::DramModule truth_module(mc);
    auto truth = truth_module.trueFailingSet(target.refreshInterval,
                                             target.temperature);
    ASSERT_FALSE(truth.empty());

    std::vector<double> d_refi = {0.0, 0.25, 0.5};
    std::vector<double> d_temp = {0.0, 5.0};

    struct Score
    {
        double coverage, fpr;
    };
    auto evaluate = [&](unsigned threads) {
        return runFleet(
            d_temp.size() * d_refi.size(),
            [&](size_t i) {
                dram::DramModule module(mc);
                testbed::HostConfig hc;
                hc.useChamber = false;
                testbed::SoftMcHost host(module, hc);
                profiling::BruteForceConfig cfg;
                cfg.test = {target.refreshInterval +
                                d_refi[i % d_refi.size()],
                            target.temperature +
                                d_temp[i / d_refi.size()]};
                cfg.iterations = 2;
                profiling::ProfilingResult r =
                    profiling::BruteForceProfiler{}.run(host, cfg);
                profiling::ProfileMetrics m = profiling::scoreProfile(
                    r.profile, truth, r.runtime);
                return Score{m.coverage, m.falsePositiveRate};
            },
            FleetOptions{threads});
    };

    auto base = evaluate(1);
    for (unsigned threads : {2u, 8u}) {
        auto scores = evaluate(threads);
        ASSERT_EQ(scores.size(), base.size());
        for (size_t i = 0; i < scores.size(); ++i) {
            EXPECT_EQ(scores[i].coverage, base[i].coverage)
                << "grid cell " << i << " at " << threads
                << " threads";
            EXPECT_EQ(scores[i].fpr, base[i].fpr)
                << "grid cell " << i << " at " << threads
                << " threads";
        }
    }
    // Sanity: the (0, 0) cell profiles at the target itself and must
    // cover most of the truth set.
    EXPECT_GT(base[0].coverage, 0.5);
}

} // namespace
} // namespace eval
} // namespace reaper
