/**
 * @file
 * Tests for the UBER/RBER model (Eqs. 2-6) and the tolerable-RBER
 * solver behind Table 1.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "common/units.h"
#include "ecc/uber.h"

namespace reaper {
namespace ecc {
namespace {

TEST(Uber, NoEccEqualsRberForSmallR)
{
    // With k=0, UBER = (1/w) P[X >= 1] ~ (1/w) * w * R = R.
    for (double r : {1e-15, 1e-12, 1e-9}) {
        double u = uberForRber(r, EccConfig::none());
        EXPECT_NEAR(u / r, 1.0, 1e-6) << r;
    }
}

TEST(Uber, SecdedQuadraticInR)
{
    // With k=1, UBER ~ (1/w) C(w,2) R^2.
    double r = 1e-9;
    double expected =
        std::exp(logChoose(72, 2)) / 72.0 * r * r;
    EXPECT_NEAR(uberForRber(r, EccConfig::secded()) / expected, 1.0,
                1e-4);
}

TEST(Uber, StrongerEccLowersUber)
{
    double r = 1e-6;
    double u0 = uberForRber(r, EccConfig::none());
    double u1 = uberForRber(r, EccConfig::secded());
    double u2 = uberForRber(r, EccConfig::ecc2());
    EXPECT_GT(u0, u1);
    EXPECT_GT(u1, u2);
}

TEST(Uber, MonotoneInR)
{
    double prev = 0.0;
    for (double r : {1e-12, 1e-10, 1e-8, 1e-6, 1e-4}) {
        double u = uberForRber(r, EccConfig::secded());
        EXPECT_GT(u, prev);
        prev = u;
    }
}

TEST(Uber, EdgeCases)
{
    EXPECT_EQ(uberForRber(0.0, EccConfig::secded()), 0.0);
    // k >= w corrects everything.
    EXPECT_EQ(uberForRber(0.5, EccConfig{64, 64}), 0.0);
    EXPECT_DEATH(uberForRber(0.5, EccConfig{-1, 64}), "bad ECC");
}

TEST(TolerableRber, NoEccMatchesTable1)
{
    // Table 1: no ECC, UBER 1e-15 -> tolerable RBER 1.0e-15.
    double r = tolerableRber(kConsumerUber, EccConfig::none());
    EXPECT_NEAR(r / 1e-15, 1.0, 0.01);
}

TEST(TolerableRber, SecdedNearTable1)
{
    // Eq. 6 with w=72 gives 5.3e-9; the paper's Table 1 prints 3.8e-9
    // (consistent with a ~144-bit ECC word). We verify our solver
    // matches our closed form and stays within 2x of the paper value.
    double r = tolerableRber(kConsumerUber, EccConfig::secded());
    EXPECT_NEAR(r, 5.3e-9, 0.2e-9);
    EXPECT_GT(r, 3.8e-9 / 2.0);
    EXPECT_LT(r, 3.8e-9 * 2.0);
    // And with the wider word, the paper's value is recovered.
    double r144 = tolerableRber(kConsumerUber, EccConfig{1, 144});
    EXPECT_NEAR(r144, 3.8e-9, 0.15e-9);
}

TEST(TolerableRber, Ecc2OrderOfMagnitude)
{
    // Table 1: ECC-2 tolerable RBER 6.9e-7 (paper word size).
    double r = tolerableRber(kConsumerUber, EccConfig::ecc2());
    EXPECT_GT(r, 1e-7);
    EXPECT_LT(r, 3e-6);
}

TEST(TolerableRber, SolverInvertsUber)
{
    for (auto cfg : {EccConfig::none(), EccConfig::secded(),
                     EccConfig::ecc2()}) {
        double r = tolerableRber(1e-15, cfg);
        EXPECT_NEAR(uberForRber(r, cfg) / 1e-15, 1.0, 1e-3);
    }
}

TEST(TolerableRber, EnterpriseStricterThanConsumer)
{
    double consumer = tolerableRber(kConsumerUber, EccConfig::secded());
    double enterprise =
        tolerableRber(kEnterpriseUber, EccConfig::secded());
    EXPECT_LT(enterprise, consumer);
    // Quadratic code: 100x stricter UBER -> 10x stricter RBER.
    EXPECT_NEAR(consumer / enterprise, 10.0, 0.5);
}

TEST(TolerableRber, RejectsBadTargets)
{
    EXPECT_DEATH(tolerableRber(0.0, EccConfig::secded()), "target UBER");
    EXPECT_DEATH(tolerableRber(1.0, EccConfig::secded()), "target UBER");
}

TEST(TolerableBitErrors, ScalesWithCapacityLikeTable1)
{
    // Table 1 bottom half: tolerable errors = RBER * capacity. With our
    // w=72 RBER of 5.3e-9 a 2 GB module tolerates ~91 errors (the paper,
    // with 3.8e-9, prints 65.3); ratios across sizes are exact.
    EccConfig secded = EccConfig::secded();
    uint64_t bits_512mb = 512ull * 1024 * 1024 * 8;
    double e512 = tolerableBitErrors(kConsumerUber, secded, bits_512mb);
    double e1g = tolerableBitErrors(kConsumerUber, secded, bits_512mb * 2);
    double e8g = tolerableBitErrors(kConsumerUber, secded, bits_512mb * 16);
    EXPECT_NEAR(e1g / e512, 2.0, 1e-9);
    EXPECT_NEAR(e8g / e512, 16.0, 1e-9);
    // Paper-word-size variant reproduces Table 1's 16.3 at 512 MB.
    double paper512 =
        tolerableBitErrors(kConsumerUber, EccConfig{1, 144}, bits_512mb);
    EXPECT_NEAR(paper512, 16.3, 1.0);
}

TEST(TolerableBitErrors, NoEccTinyBudget)
{
    // Table 1: 4 GB without ECC tolerates ~3.4e-5 expected errors.
    uint64_t bits_4gb = 4ull * 1024 * 1024 * 1024 * 8;
    double e = tolerableBitErrors(kConsumerUber, EccConfig::none(),
                                  bits_4gb);
    EXPECT_NEAR(e, 3.4e-5, 0.2e-5);
}

TEST(MinimumRequiredCoverage, MatchesHeadroom)
{
    EccConfig secded = EccConfig::secded();
    double tol = tolerableRber(kConsumerUber, secded);
    double rber = tol * 100.0;
    EXPECT_NEAR(minimumRequiredCoverage(rber, kConsumerUber, secded),
                0.99, 1e-6);
}

TEST(MinimumRequiredCoverage, ZeroWhenEccSuffices)
{
    EccConfig secded = EccConfig::secded();
    double tol = tolerableRber(kConsumerUber, secded);
    EXPECT_EQ(minimumRequiredCoverage(tol / 2.0, kConsumerUber, secded),
              0.0);
    EXPECT_EQ(minimumRequiredCoverage(0.0, kConsumerUber, secded), 0.0);
}

} // namespace
} // namespace ecc
} // namespace reaper
