/**
 * @file
 * Tests for the RAPID-like retention-aware placement mechanism.
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "mitigation/rapid.h"

namespace reaper {
namespace mitigation {
namespace {

constexpr uint64_t kRowBits = 2048ull * 8;

profiling::RetentionProfile
profileOf(std::vector<dram::ChipFailure> cells)
{
    profiling::RetentionProfile p;
    p.add(cells);
    return p;
}

dram::ChipFailure
cellInRow(uint64_t row)
{
    return {0, row * kRowBits + 5};
}

RapidConfig
config(uint64_t rows = 1000)
{
    RapidConfig cfg;
    cfg.totalRows = rows;
    cfg.profiledIntervals = {0.256, 1.024};
    return cfg;
}

/** Rows 0-4 fail at 256 ms; rows 5-14 fail at 1024 ms. */
void
installRanked(Rapid &rapid)
{
    std::vector<dram::ChipFailure> at_256, at_1024;
    for (uint64_t r = 0; r < 5; ++r)
        at_256.push_back(cellInRow(r));
    for (uint64_t r = 0; r < 15; ++r)
        at_1024.push_back(cellInRow(r)); // superset (Obs. 1)
    rapid.applyRankedProfiles(
        {profileOf(at_256), profileOf(at_1024)});
}

TEST(Rapid, CensusCountsClasses)
{
    Rapid rapid(config());
    installRanked(rapid);
    auto census = rapid.classCensus();
    ASSERT_EQ(census.size(), 3u);
    EXPECT_EQ(census[0], 985u); // clean
    EXPECT_EQ(census[1], 10u);  // fail only at 1024 ms
    EXPECT_EQ(census[2], 5u);   // fail already at 256 ms
}

TEST(Rapid, CleanAllocationSupportsLongestInterval)
{
    Rapid rapid(config());
    installRanked(rapid);
    Rapid::Allocation a = rapid.allocate(985);
    ASSERT_TRUE(a.feasible);
    EXPECT_DOUBLE_EQ(a.refreshInterval, 1.024);
    EXPECT_EQ(a.rowsPerClass[0], 985u);
    EXPECT_EQ(a.rowsPerClass[1], 0u);
}

TEST(Rapid, DippingIntoWeakerRowsShortensInterval)
{
    Rapid rapid(config());
    installRanked(rapid);
    // 990 rows needs 5 class-1 rows -> safe only at 256 ms.
    EXPECT_DOUBLE_EQ(rapid.refreshIntervalFor(990), 0.256);
    // 998 rows needs class-2 rows -> JEDEC default.
    EXPECT_DOUBLE_EQ(rapid.refreshIntervalFor(998),
                     kJedecRefreshInterval);
}

TEST(Rapid, IntervalMonotoneInOccupancy)
{
    // RAPID's headline behaviour: emptier memory refreshes slower.
    Rapid rapid(config());
    installRanked(rapid);
    double prev = 1e9;
    for (uint64_t rows : {100ull, 985ull, 990ull, 1000ull}) {
        double t = rapid.refreshIntervalFor(rows);
        EXPECT_LE(t, prev);
        prev = t;
    }
}

TEST(Rapid, InfeasibleAllocation)
{
    Rapid rapid(config(10));
    Rapid::Allocation a = rapid.allocate(11);
    EXPECT_FALSE(a.feasible);
    EXPECT_EQ(rapid.refreshIntervalFor(11), 0.0);
}

TEST(Rapid, CoversUnallocatedFailingRows)
{
    Rapid rapid(config());
    installRanked(rapid);
    // Before any allocation, every profiled row is data-free.
    EXPECT_TRUE(rapid.covers(cellInRow(0)));
    rapid.allocate(985); // clean rows only
    EXPECT_TRUE(rapid.covers(cellInRow(0)));  // class 2 untouched
    EXPECT_TRUE(rapid.covers(cellInRow(10))); // class 1 untouched
    rapid.allocate(990); // dips into class 1
    EXPECT_FALSE(rapid.covers(cellInRow(10)));
    EXPECT_TRUE(rapid.covers(cellInRow(0))); // class 2 still free
    // Cells that never failed are not "covered" (nothing to cover).
    EXPECT_FALSE(rapid.covers(cellInRow(500)));
}

TEST(Rapid, SingleProfileMarksWorstClass)
{
    Rapid rapid(config());
    rapid.applyProfile(profileOf({cellInRow(3)}));
    auto census = rapid.classCensus();
    EXPECT_EQ(census[2], 1u);
    EXPECT_EQ(census[1], 0u);
    EXPECT_DOUBLE_EQ(rapid.refreshIntervalFor(1000),
                     kJedecRefreshInterval);
    EXPECT_DOUBLE_EQ(rapid.refreshIntervalFor(999), 1.024);
}

TEST(Rapid, StatsReflectAllocation)
{
    Rapid rapid(config());
    installRanked(rapid);
    rapid.allocate(985);
    MitigationStats s = rapid.stats();
    EXPECT_EQ(s.protectedRows, 15u);
    EXPECT_NEAR(s.refreshWorkRelative, 0.064 / 1.024, 1e-9);
    rapid.allocate(990);
    EXPECT_NEAR(rapid.stats().refreshWorkRelative, 0.064 / 0.256,
                1e-9);
}

TEST(Rapid, Validation)
{
    RapidConfig cfg = config();
    cfg.totalRows = 0;
    EXPECT_DEATH(Rapid r(cfg), "totalRows");
    cfg = config();
    cfg.profiledIntervals = {};
    EXPECT_DEATH(Rapid r(cfg), "interval");
    cfg = config();
    cfg.profiledIntervals = {1.0, 0.5};
    EXPECT_DEATH(Rapid r(cfg), "ascending");
    Rapid ok(config());
    EXPECT_DEATH(ok.applyRankedProfiles({}), "expected");
}

} // namespace
} // namespace mitigation
} // namespace reaper
