/**
 * @file
 * Tests for the Kolmogorov-Smirnov goodness-of-fit utilities.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/ks_test.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace reaper {
namespace {

std::vector<double>
normalSamples(double mu, double sigma, size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> v;
    for (size_t i = 0; i < n; ++i)
        v.push_back(rng.normal(mu, sigma));
    return v;
}

TEST(KsStatistic, ZeroForPerfectQuantiles)
{
    // Samples placed at the (i+0.5)/n quantiles of the reference CDF
    // minimize the statistic (~1/(2n)).
    std::vector<double> v;
    size_t n = 100;
    for (size_t i = 0; i < n; ++i)
        v.push_back(normalQuantile((i + 0.5) / static_cast<double>(n)));
    double d = ksStatistic(v, [](double x) { return normalCdf(x); });
    EXPECT_NEAR(d, 0.5 / static_cast<double>(n), 1e-9);
}

TEST(KsStatistic, OneForTotallyWrongCdf)
{
    std::vector<double> v = {1.0, 2.0, 3.0};
    // Reference CDF saturated at 1 before any sample.
    double d = ksStatistic(v, [](double) { return 1.0; });
    EXPECT_NEAR(d, 1.0, 1e-9);
}

TEST(KsStatistic, RejectsEmpty)
{
    EXPECT_DEATH(ksStatistic({}, [](double) { return 0.5; }),
                 "sample");
}

TEST(KsCritical, ShrinksWithN)
{
    EXPECT_GT(ksCriticalValue(50, 0.05), ksCriticalValue(500, 0.05));
    EXPECT_NEAR(ksCriticalValue(100, 0.05), 0.1358, 1e-4);
    EXPECT_GT(ksCriticalValue(100, 0.01), ksCriticalValue(100, 0.05));
    EXPECT_LT(ksCriticalValue(100, 0.10), ksCriticalValue(100, 0.05));
}

TEST(KsTestNormal, AcceptsTrueDistribution)
{
    auto v = normalSamples(2.0, 0.3, 500, 1);
    KsResult r = ksTestNormal(v, 2.0, 0.3);
    EXPECT_TRUE(r.accepted) << r.statistic << " vs " << r.critical;
}

TEST(KsTestNormal, RejectsShiftedMean)
{
    auto v = normalSamples(2.0, 0.3, 500, 2);
    KsResult r = ksTestNormal(v, 2.5, 0.3);
    EXPECT_FALSE(r.accepted);
}

TEST(KsTestNormal, RejectsUniformSamples)
{
    Rng rng(3);
    std::vector<double> v;
    for (int i = 0; i < 500; ++i)
        v.push_back(rng.uniform(-3.0, 3.0));
    KsResult r = ksTestNormal(v, 0.0, 1.0);
    EXPECT_FALSE(r.accepted);
}

TEST(KsTestLognormal, AcceptsTrueDistribution)
{
    Rng rng(4);
    std::vector<double> v;
    for (int i = 0; i < 500; ++i)
        v.push_back(rng.lognormal(-2.0, 0.6));
    KsResult r = ksTestLognormal(v, -2.0, 0.6);
    EXPECT_TRUE(r.accepted);
}

TEST(KsTestLognormal, RejectsNormalSamples)
{
    // Positive-shifted normal samples are not lognormal with these
    // params.
    auto v = normalSamples(5.0, 0.2, 500, 5);
    KsResult r = ksTestLognormal(v, std::log(5.0), 0.6);
    EXPECT_FALSE(r.accepted);
}

TEST(KsResult, MarginSign)
{
    auto v = normalSamples(0.0, 1.0, 300, 6);
    KsResult good = ksTestNormal(v, 0.0, 1.0);
    EXPECT_GT(good.margin(), 0.0);
    KsResult bad = ksTestNormal(v, 3.0, 1.0);
    EXPECT_LT(bad.margin(), 0.0);
}

} // namespace
} // namespace reaper
