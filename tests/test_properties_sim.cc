/**
 * @file
 * Property-style parameterized tests of the memory-system simulator:
 * conservation invariants under randomized request streams, and the
 * refresh-overhead monotonicities the end-to-end evaluation relies on.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "sim/memctrl.h"
#include "sim/system.h"
#include "workload/synthetic.h"

namespace reaper {
namespace sim {
namespace {

// ---------------------------------------------------------------
// Controller conservation fuzz: every accepted request is served
// exactly once, regardless of traffic shape or refresh pressure.
// ---------------------------------------------------------------

class MemCtrlFuzz
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>>
{
  protected:
    uint64_t seed() const { return std::get<0>(GetParam()); }
    double refreshScale() const { return std::get<1>(GetParam()); }
};

TEST_P(MemCtrlFuzz, AllAcceptedRequestsComplete)
{
    MemCtrlConfig cfg;
    cfg.timing = lpddr4_3200(16);
    cfg.rowsPerBank = 256;
    cfg.refreshWindowScale = refreshScale();
    MemoryController mc(cfg);

    Rng rng(seed());
    int reads_accepted = 0, writes_accepted = 0, reads_done = 0;
    for (int i = 0; i < 60000; ++i) {
        if (rng.bernoulli(0.3)) {
            MemRequest req;
            req.isWrite = rng.bernoulli(0.35);
            req.addr = rng.uniformInt(1 << 22) * 64;
            DramAddr d;
            d.bank = static_cast<uint32_t>(rng.uniformInt(8));
            d.row = rng.uniformInt(256);
            d.col = static_cast<uint32_t>(rng.uniformInt(32));
            bool is_write = req.isWrite;
            if (!is_write)
                req.onComplete = [&reads_done]() { ++reads_done; };
            if (mc.enqueue(req, d)) {
                if (is_write)
                    ++writes_accepted;
                else
                    ++reads_accepted;
            }
        }
        mc.tick();
    }
    // Drain, and keep ticking long enough to cover even the 16x
    // refresh interval (12500 * 16 = 200k cycles).
    for (int i = 0; i < 450000; ++i)
        mc.tick();
    EXPECT_FALSE(mc.hasPendingWork());
    EXPECT_EQ(reads_done, reads_accepted);
    EXPECT_EQ(mc.stats().commands.rd,
              static_cast<uint64_t>(reads_accepted));
    EXPECT_EQ(mc.stats().commands.wr,
              static_cast<uint64_t>(writes_accepted));
    // Every PRE closes a row an ACT opened, and read/write-drain
    // interleaving can re-open a row a bounded number of times.
    EXPECT_LE(mc.stats().commands.pre, mc.stats().commands.act);
    EXPECT_LE(mc.stats().commands.act,
              2 * (mc.stats().commands.rd + mc.stats().commands.wr));
    if (refreshScale() > 0)
        EXPECT_GT(mc.stats().commands.refab, 0u);
    else
        EXPECT_EQ(mc.stats().commands.refab, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndRefresh, MemCtrlFuzz,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(0.0, 1.0, 16.0)),
    [](const auto &info) {
        return "seed" + std::to_string(std::get<0>(info.param)) +
               "_ref" +
               std::to_string(
                   static_cast<int>(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------
// System-level refresh monotonicities per chip density.
// ---------------------------------------------------------------

class RefreshPenaltyProperty
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RefreshPenaltyProperty, ThroughputMonotoneInRefreshInterval)
{
    unsigned gbit = GetParam();
    auto ipc_at = [&](Seconds interval) {
        SystemConfig cfg;
        cfg.channels = 2;
        cfg.llc.sizeBytes = 1ull << 20;
        cfg.setDram(gbit, interval);
        workload::BenchmarkSpec spec =
            workload::benchmarkByName("mcf");
        std::vector<Trace> traces;
        for (int c = 0; c < 4; ++c) {
            traces.push_back(workload::generateTrace(
                spec, 20000, 60 + static_cast<uint64_t>(c),
                (static_cast<uint64_t>(c) + 1) << 32));
        }
        System sys(cfg, traces);
        sys.run(150000);
        return sys.stats().ipcSum();
    };
    double base = ipc_at(0.064);
    double relaxed = ipc_at(0.512);
    double none = ipc_at(0.0);
    EXPECT_GE(relaxed, base);
    EXPECT_GE(none, relaxed * 0.995); // allow sim noise at the top
    EXPECT_GT(none, base);            // refresh must cost something
}

INSTANTIATE_TEST_SUITE_P(ChipSizes, RefreshPenaltyProperty,
                         ::testing::Values(8u, 16u, 32u, 64u),
                         [](const auto &info) {
                             return std::to_string(info.param) + "Gb";
                         });

// ---------------------------------------------------------------
// Cache invariants under random access streams.
// ---------------------------------------------------------------

class CacheFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CacheFuzz, ResidencyAndAccountingInvariants)
{
    CacheConfig cfg;
    cfg.sizeBytes = 16 * 1024;
    cfg.ways = 4;
    Cache cache(cfg);
    Rng rng(GetParam());
    uint64_t accesses = 0;
    for (int i = 0; i < 20000; ++i) {
        uint64_t addr = rng.uniformInt(1 << 16) * 64;
        bool write = rng.bernoulli(0.3);
        cache.access(addr, write);
        ++accesses;
        // A just-accessed line is always resident.
        ASSERT_TRUE(cache.probe(addr));
    }
    EXPECT_EQ(cache.stats().hits + cache.stats().misses, accesses);
    EXPECT_LE(cache.stats().writebacks, cache.stats().misses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheFuzz,
                         ::testing::Values(10, 20, 30));

} // namespace
} // namespace sim
} // namespace reaper
