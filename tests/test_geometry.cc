/**
 * @file
 * Tests for DRAM geometry and cell addressing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"
#include "dram/geometry.h"

namespace reaper {
namespace dram {
namespace {

TEST(Geometry, CapacityComputation)
{
    Geometry g(8, 1024, 2048);
    EXPECT_EQ(g.capacityBits(), 8ull * 1024 * 2048 * 8);
    EXPECT_EQ(g.totalRows(), 8ull * 1024);
    EXPECT_EQ(g.rowBits(), 2048ull * 8);
}

TEST(Geometry, ForCapacityBits2GB)
{
    uint64_t bits = 16ull * 1024 * 1024 * 1024; // 2 GB
    Geometry g = Geometry::forCapacityBits(bits);
    EXPECT_EQ(g.capacityBits(), bits);
    EXPECT_EQ(g.banks(), 8u);
    EXPECT_EQ(g.rowBytes(), 2048u);
    EXPECT_EQ(g.rowsPerBank(), bits / (8ull * 2048 * 8));
}

TEST(Geometry, ForCapacityBitsRejectsNonMultiple)
{
    EXPECT_DEATH(Geometry::forCapacityBits(12345), "multiple");
    EXPECT_DEATH(Geometry::forCapacityBits(0), "multiple");
}

TEST(Geometry, RejectsZeroDimensions)
{
    EXPECT_DEATH(Geometry(0, 10, 10), "nonzero");
    EXPECT_DEATH(Geometry(8, 0, 10), "nonzero");
    EXPECT_DEATH(Geometry(8, 10, 0), "nonzero");
}

TEST(Geometry, DecodeEncodeRoundTrip)
{
    Geometry g(4, 64, 256);
    for (uint64_t bit : std::vector<uint64_t>{0, 1, 2047, 2048, 12345,
                                              g.capacityBits() - 1}) {
        CellCoord c = g.decode(bit);
        EXPECT_EQ(g.encode(c), bit) << "bit=" << bit;
    }
}

TEST(Geometry, DecodeFirstAndLast)
{
    Geometry g(2, 4, 16);
    CellCoord first = g.decode(0);
    EXPECT_EQ(first.bank, 0u);
    EXPECT_EQ(first.row, 0u);
    EXPECT_EQ(first.col, 0u);
    EXPECT_EQ(first.bit, 0u);

    CellCoord last = g.decode(g.capacityBits() - 1);
    EXPECT_EQ(last.bank, 1u);
    EXPECT_EQ(last.row, 3u);
    EXPECT_EQ(last.col, 15u);
    EXPECT_EQ(last.bit, 7u);
}

TEST(Geometry, DecodeOutOfRange)
{
    Geometry g(2, 4, 16);
    EXPECT_DEATH(g.decode(g.capacityBits()), "out of range");
}

TEST(Geometry, RowIndexOf)
{
    Geometry g(2, 4, 16);
    EXPECT_EQ(g.rowIndexOf(0), 0u);
    EXPECT_EQ(g.rowIndexOf(g.rowBits() - 1), 0u);
    EXPECT_EQ(g.rowIndexOf(g.rowBits()), 1u);
    EXPECT_EQ(g.rowIndexOf(g.capacityBits() - 1), g.totalRows() - 1);
}

TEST(Geometry, BitWithinByteOrdering)
{
    Geometry g(2, 4, 16);
    CellCoord c = g.decode(10); // second byte, bit 2
    EXPECT_EQ(c.col, 1u);
    EXPECT_EQ(c.bit, 2u);
}

} // namespace
} // namespace dram
} // namespace reaper
