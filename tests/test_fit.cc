/**
 * @file
 * Tests for the regression/fitting helpers used by the characterization
 * benches (power-law VRT fits, per-cell normal CDF fits, etc.).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/fit.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace reaper {
namespace {

TEST(LinearFit, ExactLine)
{
    std::vector<double> x = {0, 1, 2, 3, 4};
    std::vector<double> y = {1, 3, 5, 7, 9};
    LinearFit f = linearFit(x, y);
    EXPECT_NEAR(f.intercept, 1.0, 1e-12);
    EXPECT_NEAR(f.slope, 2.0, 1e-12);
    EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLine)
{
    Rng r(1);
    std::vector<double> x, y;
    for (int i = 0; i < 500; ++i) {
        double xi = i * 0.1;
        x.push_back(xi);
        y.push_back(-2.0 + 0.5 * xi + r.normal(0.0, 0.1));
    }
    LinearFit f = linearFit(x, y);
    EXPECT_NEAR(f.intercept, -2.0, 0.05);
    EXPECT_NEAR(f.slope, 0.5, 0.01);
    EXPECT_GT(f.r2, 0.95);
}

TEST(LinearFit, ConstantX)
{
    std::vector<double> x = {1, 1, 1};
    std::vector<double> y = {2, 4, 6};
    LinearFit f = linearFit(x, y);
    EXPECT_EQ(f.slope, 0.0);
    EXPECT_NEAR(f.intercept, 4.0, 1e-12);
}

TEST(LinearFit, RejectsBadInput)
{
    EXPECT_DEATH(linearFit({1.0}, {1.0}), "at least 2");
    EXPECT_DEATH(linearFit({1.0, 2.0}, {1.0}), "mismatch");
}

TEST(PowerLawFit, RecoversParameters)
{
    // The Fig. 4 use case: y = a * x^b.
    std::vector<double> x, y;
    for (double xi : {0.064, 0.128, 0.256, 0.512, 1.024, 2.048}) {
        x.push_back(xi);
        y.push_back(0.6 * std::pow(xi, 7.9));
    }
    PowerLawFit f = powerLawFit(x, y);
    EXPECT_NEAR(f.a, 0.6, 1e-9);
    EXPECT_NEAR(f.b, 7.9, 1e-9);
    EXPECT_NEAR(f.eval(1.5), 0.6 * std::pow(1.5, 7.9), 1e-6);
}

TEST(PowerLawFit, IgnoresNonPositivePoints)
{
    std::vector<double> x = {1.0, 2.0, -1.0, 4.0};
    std::vector<double> y = {2.0, 4.0, 8.0, 8.0};
    PowerLawFit f = powerLawFit(x, y); // y = 2x
    EXPECT_NEAR(f.b, 1.0, 1e-9);
}

TEST(ExponentialFit, RecoversParameters)
{
    // The Eq. 1 use case: failure rate ~ exp(k dT).
    std::vector<double> x, y;
    for (double t : {40.0, 45.0, 50.0, 55.0}) {
        x.push_back(t);
        y.push_back(3.0 * std::exp(0.22 * t));
    }
    ExponentialFit f = exponentialFit(x, y);
    EXPECT_NEAR(f.b, 0.22, 1e-9);
    EXPECT_NEAR(f.a, 3.0, 1e-6);
}

TEST(NormalCdfFit, RecoversMuSigma)
{
    // The Fig. 6a use case: fit a per-cell failure CDF.
    double mu = 2.0, sigma = 0.1;
    std::vector<double> x, p;
    for (double xi = 1.7; xi <= 2.3; xi += 0.05) {
        x.push_back(xi);
        p.push_back(normalCdf(xi, mu, sigma));
    }
    NormalCdfFit f = normalCdfFit(x, p, 1000000);
    ASSERT_TRUE(f.valid);
    EXPECT_NEAR(f.mu, mu, 1e-3);
    EXPECT_NEAR(f.sigma, sigma, 1e-3);
}

TEST(NormalCdfFit, HandlesSaturatedProbabilities)
{
    // With 16 trials, observed probabilities of exactly 0 and 1 must be
    // clamped rather than producing infinite probits.
    std::vector<double> x = {1.0, 2.0, 3.0};
    std::vector<double> p = {0.0, 0.5, 1.0};
    NormalCdfFit f = normalCdfFit(x, p, 16);
    ASSERT_TRUE(f.valid);
    EXPECT_NEAR(f.mu, 2.0, 1e-6);
    EXPECT_GT(f.sigma, 0.0);
}

TEST(NormalCdfFit, DegenerateData)
{
    NormalCdfFit f = normalCdfFit({1.0}, {0.5}, 16);
    EXPECT_FALSE(f.valid);
    // Decreasing probabilities: no valid increasing CDF.
    NormalCdfFit g = normalCdfFit({1.0, 2.0}, {0.9, 0.1}, 16);
    EXPECT_FALSE(g.valid);
}

TEST(LognormalFit, RecoversParameters)
{
    Rng r(5);
    std::vector<double> samples;
    for (int i = 0; i < 200000; ++i)
        samples.push_back(r.lognormal(-3.0, 0.5));
    LognormalFit f = lognormalFit(samples);
    EXPECT_NEAR(f.muLog, -3.0, 0.01);
    EXPECT_NEAR(f.sigmaLog, 0.5, 0.01);
    EXPECT_NEAR(f.median(), std::exp(-3.0), 0.002);
}

TEST(LognormalFit, IgnoresNonPositive)
{
    LognormalFit f = lognormalFit({std::exp(1.0), -5.0, 0.0,
                                   std::exp(1.0)});
    EXPECT_NEAR(f.muLog, 1.0, 1e-12);
    EXPECT_NEAR(f.sigmaLog, 0.0, 1e-12);
}

} // namespace
} // namespace reaper
