/**
 * @file
 * Tests for the profiling-overhead model (Eqs. 8-9 + longevity-driven
 * reprofiling), including the paper's quantitative anchors from
 * Sections 7.3.1 and Fig. 11.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "eval/overhead.h"

namespace reaper {
namespace eval {
namespace {

TEST(RuntimeAnchors, Paper301MinutesFor32x8Gb)
{
    // Section 7.3.1: 32 x 8 Gb chips, tREFI = 1024 ms, Ndp = 6,
    // Nit = 6 -> ~3.01 minutes.
    OverheadConfig cfg;
    cfg.targetRefreshInterval = 1.024;
    cfg.chipGbit = 8;
    cfg.numChips = 32;
    cfg.iterations = 6;
    cfg.numPatterns = 6;
    OverheadResult r = computeOverhead(cfg, ProfilerKind::BruteForce);
    EXPECT_NEAR(r.roundTime / 60.0, 3.01, 0.05);
}

TEST(RuntimeAnchors, Paper198MinutesFor32x64Gb)
{
    // Section 7.3.1: same settings with 64 Gb chips -> ~19.8 minutes.
    OverheadConfig cfg;
    cfg.targetRefreshInterval = 1.024;
    cfg.chipGbit = 64;
    cfg.numChips = 32;
    cfg.iterations = 6;
    cfg.numPatterns = 6;
    OverheadResult r = computeOverhead(cfg, ProfilerKind::BruteForce);
    EXPECT_NEAR(r.roundTime / 60.0, 19.8, 0.3);
}

TEST(Fig11Anchor, BruteForce64GbAt4HoursNear22Percent)
{
    // Fig. 11: 64 Gb chips, 16 iterations, 6 patterns, 1024 ms,
    // reprofiling every 4 hours -> ~22.7% of system time profiling.
    OverheadConfig cfg;
    cfg.targetRefreshInterval = 1.024;
    cfg.chipGbit = 64;
    cfg.numChips = 32;
    cfg.iterations = 16;
    cfg.numPatterns = 6;
    double ov = overheadForInterval(cfg, ProfilerKind::BruteForce,
                                    hoursToSec(4.0));
    EXPECT_NEAR(ov, 0.227, 0.04);
    // REAPER at 2.5x: ~9.1%.
    double ov_reaper =
        overheadForInterval(cfg, ProfilerKind::Reaper, hoursToSec(4.0));
    EXPECT_NEAR(ov_reaper, 0.091, 0.03);
}

TEST(Overhead, ReaperIsSpeedupTimesCheaper)
{
    OverheadConfig cfg;
    OverheadResult brute = computeOverhead(cfg, ProfilerKind::BruteForce);
    OverheadResult reaper = computeOverhead(cfg, ProfilerKind::Reaper);
    EXPECT_NEAR(brute.roundTime / reaper.roundTime, cfg.reaperSpeedup,
                1e-9);
}

TEST(Overhead, IdealHasZeroOverhead)
{
    OverheadConfig cfg;
    OverheadResult ideal = computeOverhead(cfg, ProfilerKind::Ideal);
    EXPECT_EQ(ideal.roundTime, 0.0);
    EXPECT_EQ(ideal.overheadFraction, 0.0);
}

TEST(Overhead, GrowsWithRefreshInterval)
{
    // Longer target intervals -> faster VRT accumulation -> shorter
    // longevity -> more frequent (and individually longer) rounds.
    auto overhead_at = [](Seconds t) {
        OverheadConfig cfg;
        cfg.targetRefreshInterval = t;
        cfg.chipGbit = 64;
        return computeOverhead(cfg, ProfilerKind::BruteForce)
            .overheadFraction;
    };
    EXPECT_LT(overhead_at(0.512), overhead_at(1.024));
    EXPECT_LT(overhead_at(1.024), overhead_at(1.280));
    EXPECT_LT(overhead_at(1.280), overhead_at(1.536));
}

TEST(Overhead, BruteForceCollapsesAtLongIntervals)
{
    // The Fig. 13 shape: by 1280-1536 ms, brute-force profiling costs
    // a large share of system time while REAPER keeps most benefit.
    OverheadConfig cfg;
    cfg.chipGbit = 64;
    cfg.targetRefreshInterval = 1.280;
    double brute = computeOverhead(cfg, ProfilerKind::BruteForce)
                       .overheadFraction;
    double reaper =
        computeOverhead(cfg, ProfilerKind::Reaper).overheadFraction;
    EXPECT_GT(brute, 0.15); // enough to erase typical ~15% gains
    EXPECT_LT(reaper, brute / 2.0);
}

TEST(Overhead, SmallAtModerateIntervals)
{
    OverheadConfig cfg;
    cfg.chipGbit = 64;
    cfg.targetRefreshInterval = 0.512;
    double brute = computeOverhead(cfg, ProfilerKind::BruteForce)
                       .overheadFraction;
    EXPECT_LT(brute, 0.02); // both profilers near-ideal below 512 ms
}

TEST(Overhead, LongevityMatchesEq7Inputs)
{
    OverheadConfig cfg;
    cfg.chipGbit = 8;
    cfg.numChips = 1; // 1 GB module
    cfg.coverage = 1.0;
    OverheadResult r = computeOverhead(cfg, ProfilerKind::BruteForce);
    // T = N / A (C = 0 at full coverage).
    double expect_hours = r.tolerableFailures / r.accumulationPerHour;
    EXPECT_NEAR(secToHours(r.longevity), expect_hours,
                expect_hours * 1e-6);
    EXPECT_NEAR(r.reprofileInterval * cfg.longevityGuardband,
                r.longevity, r.longevity * 1e-9);
}

TEST(Overhead, HigherTemperatureShortensLongevity)
{
    OverheadConfig cfg;
    cfg.chipGbit = 8;
    OverheadResult cool = computeOverhead(cfg, ProfilerKind::BruteForce);
    cfg.temperature = 55.0;
    OverheadResult hot = computeOverhead(cfg, ProfilerKind::BruteForce);
    EXPECT_LT(hot.longevity, cool.longevity);
}

TEST(Overhead, ApplyOverheadEq8)
{
    EXPECT_DOUBLE_EQ(applyOverhead(1.2, 0.25), 0.9);
    EXPECT_DOUBLE_EQ(applyOverhead(1.0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(applyOverhead(1.0, 2.0), 0.0); // clamped
}

TEST(Overhead, ModuleCapacity)
{
    OverheadConfig cfg;
    cfg.chipGbit = 8;
    cfg.numChips = 32;
    EXPECT_EQ(moduleCapacityBits(cfg), 32ull * gibitToBits(8));
}

TEST(Overhead, Validation)
{
    OverheadConfig cfg;
    cfg.longevityGuardband = 0.5;
    EXPECT_DEATH(computeOverhead(cfg, ProfilerKind::BruteForce),
                 "guardband");
    cfg = OverheadConfig{};
    EXPECT_DEATH(
        overheadForInterval(cfg, ProfilerKind::BruteForce, 0.0),
        "interval");
}

} // namespace
} // namespace eval
} // namespace reaper
