/**
 * @file
 * Tests for the SECDED (72,64) Hamming codec.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ecc/hamming.h"

namespace reaper {
namespace ecc {
namespace {

TEST(Secded72, CleanWordDecodesOk)
{
    Secded72 code;
    for (uint64_t data : {0ull, 1ull, 0xFFFFFFFFFFFFFFFFull,
                          0xDEADBEEFCAFEBABEull}) {
        uint8_t check = code.encode(data);
        DecodeResult r = code.decode(data, check);
        EXPECT_EQ(r.status, DecodeStatus::Ok);
        EXPECT_EQ(r.data, data);
    }
}

TEST(Secded72, CorrectsEverySingleDataBitFlip)
{
    Secded72 code;
    uint64_t data = 0x0123456789ABCDEFull;
    uint8_t check = code.encode(data);
    for (int bit = 0; bit < 64; ++bit) {
        uint64_t corrupted = data ^ (1ull << bit);
        DecodeResult r = code.decode(corrupted, check);
        EXPECT_EQ(r.status, DecodeStatus::CorrectedSingle) << bit;
        EXPECT_EQ(r.data, data) << bit;
    }
}

TEST(Secded72, CorrectsEverySingleCheckBitFlip)
{
    Secded72 code;
    uint64_t data = 0xA5A5A5A5A5A5A5A5ull;
    uint8_t check = code.encode(data);
    for (int bit = 0; bit < 8; ++bit) {
        uint8_t corrupted = check ^ static_cast<uint8_t>(1u << bit);
        DecodeResult r = code.decode(data, corrupted);
        EXPECT_EQ(r.status, DecodeStatus::CorrectedSingle) << bit;
        EXPECT_EQ(r.data, data) << bit;
    }
}

TEST(Secded72, DetectsDoubleDataBitFlips)
{
    Secded72 code;
    uint64_t data = 0x13579BDF02468ACEull;
    uint8_t check = code.encode(data);
    Rng rng(1);
    for (int trial = 0; trial < 500; ++trial) {
        int b1 = static_cast<int>(rng.uniformInt(64));
        int b2 = static_cast<int>(rng.uniformInt(64));
        if (b1 == b2)
            continue;
        uint64_t corrupted = data ^ (1ull << b1) ^ (1ull << b2);
        DecodeResult r = code.decode(corrupted, check);
        EXPECT_EQ(r.status, DecodeStatus::DetectedDouble)
            << b1 << "," << b2;
    }
}

TEST(Secded72, DetectsDataPlusCheckDoubleFlip)
{
    Secded72 code;
    uint64_t data = 0x0F0F0F0F0F0F0F0Full;
    uint8_t check = code.encode(data);
    Rng rng(2);
    for (int trial = 0; trial < 200; ++trial) {
        int db = static_cast<int>(rng.uniformInt(64));
        int cb = static_cast<int>(rng.uniformInt(8));
        uint64_t bad_data = data ^ (1ull << db);
        uint8_t bad_check = check ^ static_cast<uint8_t>(1u << cb);
        DecodeResult r = code.decode(bad_data, bad_check);
        EXPECT_EQ(r.status, DecodeStatus::DetectedDouble)
            << db << "," << cb;
    }
}

TEST(Secded72, RandomizedRoundTrips)
{
    Secded72 code;
    Rng rng(3);
    for (int trial = 0; trial < 2000; ++trial) {
        uint64_t data = rng();
        uint8_t check = code.encode(data);
        // Clean decode.
        DecodeResult clean = code.decode(data, check);
        ASSERT_EQ(clean.status, DecodeStatus::Ok);
        ASSERT_EQ(clean.data, data);
        // Single random flip always corrected.
        int bit = static_cast<int>(rng.uniformInt(72));
        uint64_t d = data;
        uint8_t c = check;
        if (bit < 64)
            d ^= 1ull << bit;
        else
            c ^= static_cast<uint8_t>(1u << (bit - 64));
        DecodeResult fixed = code.decode(d, c);
        ASSERT_EQ(fixed.status, DecodeStatus::CorrectedSingle);
        ASSERT_EQ(fixed.data, data);
    }
}

TEST(Secded72, DistinctDataGivesDistinctCheckMostly)
{
    // The code is linear; nearby words should rarely share check bits.
    Secded72 code;
    uint8_t c0 = code.encode(0);
    int same = 0;
    for (int bit = 0; bit < 64; ++bit)
        same += (code.encode(1ull << bit) == c0);
    EXPECT_EQ(same, 0); // single-bit words always alter some check bit
}

} // namespace
} // namespace ecc
} // namespace reaper
