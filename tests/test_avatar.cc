/**
 * @file
 * Tests for the AVATAR-style row-upgrade mechanism, including its
 * online behaviour against a live simulated module.
 */

#include <gtest/gtest.h>

#include "mitigation/avatar.h"
#include "profiling/brute_force.h"
#include "testbed/softmc_host.h"

namespace reaper {
namespace mitigation {
namespace {

constexpr uint64_t kRowBits = 2048ull * 8;

profiling::RetentionProfile
profileOf(std::vector<dram::ChipFailure> cells)
{
    profiling::RetentionProfile p;
    p.add(cells);
    return p;
}

AvatarConfig
config()
{
    AvatarConfig cfg;
    cfg.totalRows = 10000;
    return cfg;
}

TEST(Avatar, InitialProfileUpgradesRows)
{
    Avatar avatar(config());
    avatar.applyProfile(profileOf({{0, 5}, {0, kRowBits + 3}}));
    EXPECT_EQ(avatar.upgradedRows(), 2u);
    EXPECT_EQ(avatar.runtimeUpgrades(), 0u);
    EXPECT_TRUE(avatar.covers({0, 6}));
    EXPECT_FALSE(avatar.covers({0, 2 * kRowBits}));
    EXPECT_DOUBLE_EQ(avatar.rowInterval(0, 0), 0.064);
    EXPECT_DOUBLE_EQ(avatar.rowInterval(0, 2), 1.024);
}

TEST(Avatar, ScrubCorrectionUpgradesAtRuntime)
{
    Avatar avatar(config());
    avatar.applyProfile(profileOf({}));
    EXPECT_TRUE(avatar.observeScrubCorrection({0, 7 * kRowBits}));
    EXPECT_FALSE(avatar.observeScrubCorrection({0, 7 * kRowBits + 9}));
    EXPECT_EQ(avatar.runtimeUpgrades(), 1u);
    EXPECT_TRUE(avatar.covers({0, 7 * kRowBits + 100}));
}

TEST(Avatar, ReprofileResetsRuntimeUpgrades)
{
    Avatar avatar(config());
    avatar.observeScrubCorrection({0, 0});
    avatar.applyProfile(profileOf({{0, kRowBits}}));
    EXPECT_EQ(avatar.runtimeUpgrades(), 0u);
    EXPECT_FALSE(avatar.covers({0, 0}));
    EXPECT_TRUE(avatar.covers({0, kRowBits}));
}

TEST(Avatar, RefreshWorkGrowsWithUpgrades)
{
    Avatar avatar(config());
    avatar.applyProfile(profileOf({}));
    double clean = avatar.refreshWorkRelative();
    EXPECT_NEAR(clean, 0.064 / 1.024, 1e-9);
    for (uint64_t r = 0; r < 100; ++r)
        avatar.observeScrubCorrection({0, r * kRowBits});
    EXPECT_GT(avatar.refreshWorkRelative(), clean);
    EXPECT_LT(avatar.refreshWorkRelative(), 1.0);
}

TEST(Avatar, Validation)
{
    AvatarConfig cfg = config();
    cfg.totalRows = 0;
    EXPECT_DEATH(Avatar a(cfg), "totalRows");
    cfg = config();
    cfg.fastInterval = cfg.slowInterval;
    EXPECT_DEATH(Avatar a(cfg), "fastInterval");
}

TEST(Avatar, OnlineLoopCatchesVrtArrivals)
{
    // Live loop: initial brute-force profile, then periodic scrubs
    // over a day of operation; VRT arrivals appear as corrected
    // errors and get their rows upgraded.
    dram::ModuleConfig mc;
    mc.numChips = 1;
    mc.chipCapacityBits = 2ull * 1024 * 1024 * 1024; // 256 MB
    mc.seed = 12;
    mc.envelope = {1.6, 48.0};
    mc.chipVariation = 0.0;
    dram::DramModule module(mc);
    testbed::HostConfig hc;
    hc.useChamber = false;
    testbed::SoftMcHost host(module, hc);
    host.setAmbient(45.0);

    AvatarConfig ac;
    ac.totalRows = module.capacityBits() / kRowBits;
    Avatar avatar(ac);

    // One-time initial profile (AVATAR's assumption).
    profiling::BruteForceConfig bf;
    bf.test = {1.024, 45.0};
    bf.iterations = 8;
    bf.setTemperature = false;
    avatar.applyProfile(
        profiling::BruteForceProfiler{}.run(host, bf).profile);
    size_t initial = avatar.upgradedRows();
    ASSERT_GT(initial, 0u);

    // A day of operation with 2-hourly scrubs: each scrub is one
    // retention window at the slow interval; corrected errors in
    // non-upgraded rows trigger upgrades.
    for (int scrub = 0; scrub < 12; ++scrub) {
        host.wait(hoursToSec(2.0));
        host.writeAll(dram::DataPattern::Random);
        host.disableRefresh();
        host.wait(ac.slowInterval);
        host.enableRefresh();
        for (const auto &f : host.readAndCompareAll()) {
            if (!avatar.covers(f))
                avatar.observeScrubCorrection(f);
        }
        host.restoreAll();
    }
    EXPECT_GT(avatar.runtimeUpgrades(), 0u);
    EXPECT_GT(avatar.upgradedRows(), initial);
}

} // namespace
} // namespace mitigation
} // namespace reaper
