/**
 * @file
 * Tests for brute-force profiling (Algorithm 1): discovery behaviour,
 * runtime accounting, and early stopping.
 */

#include <gtest/gtest.h>

#include "profiling/brute_force.h"
#include "profiling/runtime_model.h"

namespace reaper {
namespace profiling {
namespace {

dram::ModuleConfig
testModule(uint64_t seed = 1)
{
    dram::ModuleConfig cfg;
    cfg.numChips = 1;
    cfg.chipCapacityBits = 4ull * 1024 * 1024 * 1024; // 512 MB
    cfg.seed = seed;
    cfg.envelope = {2.5, 50.0};
    return cfg;
}

testbed::HostConfig
instantHost()
{
    testbed::HostConfig h;
    h.useChamber = false;
    return h;
}

TEST(BruteForce, FindsMostOfTruthWithManyIterations)
{
    dram::DramModule m(testModule(1));
    testbed::SoftMcHost host(m, instantHost());
    BruteForceConfig cfg;
    cfg.test = {1.024, 45.0};
    cfg.iterations = 16;
    BruteForceProfiler bf;
    ProfilingResult r = bf.run(host, cfg);
    auto truth = m.trueFailingSet(1.024, 45.0);
    ProfileMetrics metrics = scoreProfile(r.profile, truth, r.runtime);
    EXPECT_GT(metrics.coverage, 0.80);
    // Brute force at the target conditions has few false positives.
    EXPECT_LT(metrics.falsePositiveRate, 0.30);
}

TEST(BruteForce, CoverageImprovesWithIterations)
{
    auto coverage_after = [](int iters) {
        dram::DramModule m(testModule(2));
        testbed::SoftMcHost host(m, instantHost());
        BruteForceConfig cfg;
        cfg.test = {1.024, 45.0};
        cfg.iterations = iters;
        BruteForceProfiler bf;
        ProfilingResult r = bf.run(host, cfg);
        auto truth = m.trueFailingSet(1.024, 45.0);
        return scoreProfile(r.profile, truth, r.runtime).coverage;
    };
    double c1 = coverage_after(1);
    double c8 = coverage_after(8);
    EXPECT_GT(c8, c1);
}

TEST(BruteForce, DiscoveryCurveNonDecreasing)
{
    dram::DramModule m(testModule(3));
    testbed::SoftMcHost host(m, instantHost());
    BruteForceConfig cfg;
    cfg.test = {1.024, 45.0};
    cfg.iterations = 6;
    BruteForceProfiler bf;
    ProfilingResult r = bf.run(host, cfg);
    ASSERT_EQ(r.discoveryCurve.size(), 6u);
    for (size_t i = 1; i < r.discoveryCurve.size(); ++i)
        EXPECT_GE(r.discoveryCurve[i], r.discoveryCurve[i - 1]);
    EXPECT_EQ(r.discoveryCurve.back(), r.profile.size());
}

TEST(BruteForce, RuntimeMatchesEq9)
{
    dram::DramModule m(testModule(4));
    testbed::SoftMcHost host(m, instantHost());
    BruteForceConfig cfg;
    cfg.test = {1.024, 45.0};
    cfg.iterations = 3;
    cfg.patterns = dram::basePatterns();
    cfg.setTemperature = false;
    BruteForceProfiler bf;
    ProfilingResult r = bf.run(host, cfg);

    RuntimeModelInputs in;
    in.profilingRefreshInterval = 1.024;
    in.numDataPatterns = 6;
    in.iterations = 3;
    in.moduleGB = 0.5;
    EXPECT_NEAR(r.runtime, profilingRoundTime(in), 1e-9);
}

TEST(BruteForce, EarlyStopViaCallback)
{
    dram::DramModule m(testModule(5));
    testbed::SoftMcHost host(m, instantHost());
    BruteForceConfig cfg;
    cfg.test = {1.024, 45.0};
    cfg.iterations = 50;
    cfg.onIteration = [](int it, const RetentionProfile &) {
        return it < 2; // run exactly 3 iterations
    };
    BruteForceProfiler bf;
    ProfilingResult r = bf.run(host, cfg);
    EXPECT_EQ(r.iterationsRun, 3);
}

TEST(BruteForce, ProfileTaggedWithTestConditions)
{
    dram::DramModule m(testModule(6));
    testbed::SoftMcHost host(m, instantHost());
    BruteForceConfig cfg;
    cfg.test = {0.512, 47.0};
    cfg.iterations = 1;
    BruteForceProfiler bf;
    ProfilingResult r = bf.run(host, cfg);
    EXPECT_DOUBLE_EQ(r.profile.conditions().refreshInterval, 0.512);
    EXPECT_DOUBLE_EQ(r.profile.conditions().temperature, 47.0);
}

TEST(BruteForce, RejectsBadConfig)
{
    dram::DramModule m(testModule(7));
    testbed::SoftMcHost host(m, instantHost());
    BruteForceProfiler bf;
    BruteForceConfig cfg;
    cfg.iterations = 0;
    EXPECT_DEATH(bf.run(host, cfg), "iterations");
    cfg.iterations = 1;
    cfg.patterns.clear();
    EXPECT_DEATH(bf.run(host, cfg), "pattern");
}

TEST(BruteForce, MultiplePatternsBeatSinglePattern)
{
    // Corollary 3: a robust profiler needs multiple data patterns.
    auto coverage_with = [](std::vector<dram::DataPattern> pats) {
        dram::DramModule m(testModule(8));
        testbed::SoftMcHost host(m, instantHost());
        BruteForceConfig cfg;
        cfg.test = {1.5, 45.0};
        cfg.iterations = 8;
        cfg.patterns = std::move(pats);
        BruteForceProfiler bf;
        ProfilingResult r = bf.run(host, cfg);
        auto truth = m.trueFailingSet(1.5, 45.0);
        return scoreProfile(r.profile, truth, r.runtime).coverage;
    };
    double solid_only = coverage_with({dram::DataPattern::Solid0});
    double all = coverage_with(dram::allDataPatterns());
    EXPECT_GT(all, solid_only + 0.1);
}

} // namespace
} // namespace profiling
} // namespace reaper
