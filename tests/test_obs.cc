/**
 * @file
 * Tests for the observability layer (src/obs/): metric primitives and
 * registry exporters, the REAPER_OBS mode knob and instrumentation
 * macros, scoped-span tracing (nesting, ring overflow, Chrome-trace
 * export), and the serve::Metrics shim over the registry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "serve/metrics.h"

namespace reaper {
namespace obs {
namespace {

/** Restore mode + global metric/trace state around every test. */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setMode(ObsMode::Off);
        MetricRegistry::global().resetAll();
        Tracer::global().clear();
    }
    void TearDown() override
    {
        setMode(ObsMode::Off);
        MetricRegistry::global().resetAll();
        Tracer::global().clear();
    }
};

TEST_F(ObsTest, ModeKnobAndPredicates)
{
    setMode(ObsMode::Off);
    EXPECT_FALSE(countersOn());
    EXPECT_FALSE(traceOn());
    setMode(ObsMode::Counters);
    EXPECT_TRUE(countersOn());
    EXPECT_FALSE(traceOn());
    setMode(ObsMode::Trace);
    EXPECT_TRUE(countersOn());
    EXPECT_TRUE(traceOn());

    EXPECT_STREQ(toString(ObsMode::Off), "off");
    EXPECT_STREQ(toString(ObsMode::Counters), "counters");
    EXPECT_STREQ(toString(ObsMode::Trace), "trace");
}

TEST_F(ObsTest, ConcurrentCounterIncrementsAreExact)
{
    MetricRegistry reg;
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg] {
            // Each thread resolves the same named counter — handles
            // are stable and shared.
            Counter &c = reg.counter("test.concurrent");
            for (uint64_t i = 0; i < kPerThread; ++i)
                c.add();
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(reg.counter("test.concurrent").value(),
              kThreads * kPerThread);
}

TEST_F(ObsTest, GaugeTracksSignedValues)
{
    MetricRegistry reg;
    Gauge &g = reg.gauge("test.depth");
    g.add(10);
    g.add(-3);
    EXPECT_EQ(g.value(), 7);
    g.set(-5);
    EXPECT_EQ(g.value(), -5);
    EXPECT_EQ(reg.snapshot().gaugeValue("test.depth"), -5);
}

TEST_F(ObsTest, HistogramBucketsAndPercentiles)
{
    // Bucket layout is geometric and monotonic.
    for (size_t i = 1; i < Histogram::kBuckets; ++i)
        EXPECT_GT(Histogram::bucketHi(i), Histogram::bucketHi(i - 1));
    EXPECT_EQ(Histogram::bucketOf(0.0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1e9), Histogram::kBuckets - 1);

    Histogram h;
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0); // empty
    // 90 fast samples, 10 slow ones.
    for (int i = 0; i < 90; ++i)
        h.record(1e-6);
    for (int i = 0; i < 10; ++i)
        h.record(1e-2);
    EXPECT_EQ(h.count(), 100u);
    // p50 lands in the fast bucket, p99 in the slow one; the estimate
    // is a bucket upper edge so allow one bucket of slack.
    EXPECT_LE(h.percentile(0.50), 2e-6);
    EXPECT_GE(h.percentile(0.95), 5e-3);
    HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 100u);
    EXPECT_NEAR(snap.sum, 90 * 1e-6 + 10 * 1e-2, 1e-6);
    EXPECT_GE(snap.maxEdge(), 1e-2);
}

TEST_F(ObsTest, PrometheusTextExport)
{
    MetricRegistry reg;
    reg.counter("campaign.rounds_completed").add(3);
    reg.gauge("cache.bytes").set(1024);
    reg.histogram("serve.latency_seconds").record(1e-4);
    std::string text = reg.prometheusText();

    // Dots sanitize to underscores, counters gain _total, histograms
    // emit the cumulative series.
    EXPECT_NE(text.find("reaper_campaign_rounds_completed_total 3"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("reaper_cache_bytes 1024"), std::string::npos);
    EXPECT_NE(text.find("reaper_serve_latency_seconds_bucket"),
              std::string::npos);
    EXPECT_NE(text.find("reaper_serve_latency_seconds_sum"),
              std::string::npos);
    EXPECT_NE(text.find("reaper_serve_latency_seconds_count 1"),
              std::string::npos);
    EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST_F(ObsTest, JsonExportContainsEveryMetric)
{
    MetricRegistry reg;
    reg.counter("a.count").add(7);
    reg.gauge("b.gauge").set(-2);
    reg.histogram("c.hist").record(0.5);
    std::string json = reg.json();
    EXPECT_NE(json.find("\"a.count\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"b.gauge\""), std::string::npos);
    EXPECT_NE(json.find("\"c.hist\""), std::string::npos);
}

TEST_F(ObsTest, ResetAllZeroesEverything)
{
    MetricRegistry reg;
    reg.counter("x").add(5);
    reg.gauge("y").set(9);
    reg.histogram("z").record(1.0);
    reg.resetAll();
    EXPECT_EQ(reg.counter("x").value(), 0u);
    EXPECT_EQ(reg.gauge("y").value(), 0);
    EXPECT_EQ(reg.histogram("z").count(), 0u);
}

#ifndef REAPER_OBS_COMPILE_OUT

TEST_F(ObsTest, CountMacroRespectsMode)
{
    setMode(ObsMode::Off);
    REAPER_OBS_COUNT("test.macro_gated");
    EXPECT_EQ(MetricRegistry::global()
                  .counter("test.macro_gated")
                  .value(),
              0u);

    setMode(ObsMode::Counters);
    REAPER_OBS_COUNT("test.macro_gated");
    REAPER_OBS_COUNT_N("test.macro_gated", 4);
    EXPECT_EQ(MetricRegistry::global()
                  .counter("test.macro_gated")
                  .value(),
              5u);
}

TEST_F(ObsTest, SpansAreFreeUnlessTracing)
{
    setMode(ObsMode::Counters);
    {
        REAPER_OBS_SPAN(s, "test.untraced");
    }
    EXPECT_TRUE(Tracer::global().collect().empty());
}

TEST_F(ObsTest, SpanNestingIsRecordedWithDepthAndContainment)
{
    setMode(ObsMode::Trace);
    {
        REAPER_OBS_SPAN(outer, "test.outer");
        {
            REAPER_OBS_SPAN(inner, "test.inner");
        }
        {
            REAPER_OBS_SPAN(inner2, "test.inner");
        }
    }
    std::vector<SpanEvent> events = Tracer::global().collect();
    ASSERT_EQ(events.size(), 3u);

    const SpanEvent *outer = nullptr;
    std::vector<const SpanEvent *> inner;
    for (const SpanEvent &e : events) {
        if (std::string(e.name) == "test.outer")
            outer = &e;
        else
            inner.push_back(&e);
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_EQ(inner.size(), 2u);
    EXPECT_EQ(outer->depth, 0u);
    for (const SpanEvent *e : inner) {
        EXPECT_EQ(e->depth, 1u);
        EXPECT_EQ(e->tid, outer->tid);
        // Inner spans nest inside the outer span's interval.
        EXPECT_GE(e->startNs, outer->startNs);
        EXPECT_LE(e->startNs + e->durNs,
                  outer->startNs + outer->durNs);
    }

    std::string trace = Tracer::global().chromeTraceJson();
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("test.outer"), std::string::npos);
    EXPECT_NE(trace.find("test.inner"), std::string::npos);
    EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(ObsTest, ConcurrentSpansKeepPerThreadBuffers)
{
    setMode(ObsMode::Trace);
    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 100;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                REAPER_OBS_SPAN(s, "test.worker");
            }
        });
    }
    for (auto &th : threads)
        th.join();
    std::vector<SpanEvent> events = Tracer::global().collect();
    EXPECT_EQ(events.size(),
              static_cast<size_t>(kThreads) * kSpansPerThread);
    // Events come back ordered by start time.
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].startNs, events[i - 1].startNs);
}

TEST_F(ObsTest, RingOverflowDropsOldestAndCounts)
{
    setMode(ObsMode::Trace);
    const size_t total = Tracer::kRingCapacity + 100;
    for (size_t i = 0; i < total; ++i) {
        REAPER_OBS_SPAN(s, "test.flood");
    }
    EXPECT_EQ(Tracer::global().collect().size(),
              Tracer::kRingCapacity);
    EXPECT_EQ(Tracer::global().dropped(), 100u);
}

TEST_F(ObsTest, ExportJsonlOneEventPerLine)
{
    setMode(ObsMode::Trace);
    {
        REAPER_OBS_SPAN(a, "test.a");
    }
    {
        REAPER_OBS_SPAN(b, "test.b");
    }
    std::ostringstream os;
    Tracer::global().exportJsonl(os);
    std::string text = os.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
    EXPECT_NE(text.find("test.a"), std::string::npos);
    EXPECT_NE(text.find("test.b"), std::string::npos);
}

#endif // REAPER_OBS_COMPILE_OUT

// serve::Metrics is a shim over a private registry: same API and JSON
// schema as before the migration, isolated per instance.
TEST_F(ObsTest, ServeMetricsShimMatchesRegistry)
{
    serve::Metrics a;
    serve::Metrics b;
    a.recordHit();
    a.recordMiss();
    a.recordRejected();
    a.recordLatency(1e-4);

    serve::MetricsSnapshot snap = a.snapshot();
    EXPECT_EQ(snap.completed, 1u);
    EXPECT_EQ(snap.hits, 1u);
    EXPECT_EQ(snap.misses, 1u);
    EXPECT_EQ(snap.rejected, 1u);
    EXPECT_GT(snap.p50Us, 0.0);

    // Instances are isolated metric sets.
    EXPECT_EQ(b.snapshot().completed, 0u);

    // The backing registry exports the same counts.
    RegistrySnapshot reg = a.registry().snapshot();
    EXPECT_EQ(reg.counterValue("serve.hits"), 1u);
    EXPECT_EQ(reg.counterValue("serve.completed"), 1u);
    EXPECT_NE(a.registry().prometheusText().find(
                  "reaper_serve_hits_total 1"),
              std::string::npos);

    // Legacy JSON schema is unchanged.
    std::string json = a.json();
    for (const char *key :
         {"\"completed\"", "\"hits\"", "\"misses\"",
          "\"negative_hits\"", "\"unknown\"", "\"rejected\"",
          "\"latency_us\"", "\"p50\"", "\"p95\"", "\"p99\"",
          "\"max\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;

    a.reset();
    EXPECT_EQ(a.snapshot().completed, 0u);
}

} // namespace
} // namespace obs
} // namespace reaper
