/**
 * @file
 * Tests for the end-to-end evaluation harness (Fig. 13) on a reduced
 * sweep: shape checks for performance improvement and power reduction
 * across profilers and refresh intervals.
 */

#include <gtest/gtest.h>

#include "eval/endtoend.h"

namespace reaper {
namespace eval {
namespace {

EndToEndConfig
tinySweep()
{
    EndToEndConfig cfg;
    cfg.refreshIntervals = {0.512, 1.536};
    cfg.includeNoRefresh = true;
    cfg.chipGbits = {64};
    cfg.numMixes = 4;
    cfg.accessesPerCore = 20000;
    cfg.runCycles = 300000;
    cfg.seed = 3;
    cfg.system.channels = 2;
    cfg.system.llc.sizeBytes = 1ull * 1024 * 1024;
    return cfg;
}

const SweepPoint &
pointAt(const std::vector<SweepPoint> &points, Seconds interval,
        bool no_refresh = false)
{
    for (const auto &p : points) {
        if (no_refresh && p.noRefresh)
            return p;
        if (!no_refresh && !p.noRefresh &&
            std::abs(p.interval - interval) < 1e-9)
            return p;
    }
    ADD_FAILURE() << "sweep point not found";
    static SweepPoint dummy;
    return dummy;
}

class EndToEndFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        EndToEndEvaluator eval(tinySweep());
        points_ = new std::vector<SweepPoint>(eval.run());
    }
    static void
    TearDownTestSuite()
    {
        delete points_;
        points_ = nullptr;
    }
    static std::vector<SweepPoint> *points_;
};

std::vector<SweepPoint> *EndToEndFixture::points_ = nullptr;

TEST_F(EndToEndFixture, SweepCoversAllPoints)
{
    // 2 intervals + no-refresh for one chip size.
    EXPECT_EQ(points_->size(), 3u);
    for (const auto &p : *points_)
        EXPECT_EQ(p.chipGbit, 64u);
}

TEST_F(EndToEndFixture, IdealGainsPositiveAndGrowWithInterval)
{
    const SweepPoint &mid = pointAt(*points_, 0.512);
    const SweepPoint &high = pointAt(*points_, 1.536);
    const SweepPoint &noref = pointAt(*points_, 0, true);
    double g_mid = mid.perfBox(ProfilerKind::Ideal).mean;
    double g_high = high.perfBox(ProfilerKind::Ideal).mean;
    double g_noref = noref.perfBox(ProfilerKind::Ideal).mean;
    EXPECT_GT(g_mid, 0.0);
    EXPECT_GE(g_high, g_mid);
    EXPECT_GE(g_noref, g_high - 0.01);
}

TEST_F(EndToEndFixture, ProfilersNearIdealAtModerateInterval)
{
    const SweepPoint &mid = pointAt(*points_, 0.512);
    double ideal = mid.perfBox(ProfilerKind::Ideal).mean;
    double brute = mid.perfBox(ProfilerKind::BruteForce).mean;
    double reaper = mid.perfBox(ProfilerKind::Reaper).mean;
    EXPECT_NEAR(brute, ideal, 0.02);
    EXPECT_NEAR(reaper, ideal, 0.01);
}

TEST_F(EndToEndFixture, BruteForceCollapsesAtLongInterval)
{
    // The headline Fig. 13 shape: at very long intervals brute-force
    // profiling overhead erases (and inverts) the refresh benefit
    // while REAPER retains a larger share.
    const SweepPoint &high = pointAt(*points_, 1.536);
    double ideal = high.perfBox(ProfilerKind::Ideal).mean;
    double brute = high.perfBox(ProfilerKind::BruteForce).mean;
    double reaper = high.perfBox(ProfilerKind::Reaper).mean;
    EXPECT_GT(ideal, 0.0);
    EXPECT_LT(brute, reaper);
    EXPECT_LT(brute, 0.0); // net performance loss
    EXPECT_GT(reaper, brute + 0.05);
}

TEST_F(EndToEndFixture, PowerReductionPositiveAndGrows)
{
    const SweepPoint &mid = pointAt(*points_, 0.512);
    const SweepPoint &high = pointAt(*points_, 1.536);
    for (ProfilerKind k : {ProfilerKind::BruteForce,
                           ProfilerKind::Reaper, ProfilerKind::Ideal}) {
        EXPECT_GT(mid.powerBox(k).mean, 0.05);
        EXPECT_GT(high.powerBox(k).mean, 0.05);
    }
    // Without profiling energy the saving grows with the interval;
    // at extreme intervals the near-continuous reprofiling of the
    // brute-force profiler eats into it (Section 7.3.2's caveat).
    EXPECT_GT(high.powerBox(ProfilerKind::Ideal).mean,
              mid.powerBox(ProfilerKind::Ideal).mean);
    EXPECT_GE(high.powerBox(ProfilerKind::Reaper).mean,
              high.powerBox(ProfilerKind::BruteForce).mean);
}

TEST_F(EndToEndFixture, ProfilingPowerNegligibleAtModerateInterval)
{
    // Fourth observation of Section 7.3.2: profiling itself barely
    // moves DRAM power at reasonable reprofiling frequencies.
    const SweepPoint &mid = pointAt(*points_, 0.512);
    double ideal = mid.powerBox(ProfilerKind::Ideal).mean;
    double brute = mid.powerBox(ProfilerKind::BruteForce).mean;
    EXPECT_NEAR(brute, ideal, 0.02);
}

TEST_F(EndToEndFixture, NoRefreshOnlyIdealPopulated)
{
    const SweepPoint &noref = pointAt(*points_, 0, true);
    EXPECT_FALSE(
        noref.perfImprovement[static_cast<size_t>(
                                  profilerIndex(ProfilerKind::Ideal))]
            .empty());
    EXPECT_TRUE(
        noref
            .perfImprovement[static_cast<size_t>(
                profilerIndex(ProfilerKind::BruteForce))]
            .empty());
}

TEST(EndToEnd, MixCountValidation)
{
    EndToEndConfig cfg = tinySweep();
    cfg.numMixes = 0;
    EXPECT_DEATH(EndToEndEvaluator e(cfg), "numMixes");
}

} // namespace
} // namespace eval
} // namespace reaper
