/**
 * @file
 * Tests for the statistical retention model: tail CDF, temperature
 * scaling (Eq. 1), per-cell failure CDFs (Fig. 6), DPD factors
 * (Section 5.4), and VRT arrival rates (Fig. 4 calibration).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "dram/retention_model.h"

namespace reaper {
namespace dram {
namespace {

RetentionModel
modelB()
{
    return RetentionModel(vendorParams(Vendor::B));
}

WeakCell
makeCell(double mu, double sigma_rel, uint8_t worst_class = 0)
{
    WeakCell c;
    c.addr = 42;
    c.mu = static_cast<float>(mu);
    c.sigmaRel = static_cast<float>(sigma_rel);
    c.dpdSeed = 0xDEADBEEF;
    c.worstClass = worst_class;
    return c;
}

TEST(RetentionModel, TailCdfCalibratedAt1024ms)
{
    RetentionModel m = modelB();
    EXPECT_NEAR(m.tailCdf(1.024), 1.434e-7, 1e-10);
}

TEST(RetentionModel, TailCdfMonotoneAndPowerLaw)
{
    RetentionModel m = modelB();
    double f1 = m.tailCdf(1.0);
    double f2 = m.tailCdf(2.0);
    EXPECT_GT(f2, f1);
    EXPECT_NEAR(f2 / f1, std::pow(2.0, 2.8), 1e-9);
}

TEST(RetentionModel, TailCdfInverseRoundTrip)
{
    RetentionModel m = modelB();
    for (double t : {0.064, 0.512, 1.024, 4.096})
        EXPECT_NEAR(m.inverseTailCdf(m.tailCdf(t)), t, 1e-9);
}

TEST(RetentionModel, TailCdfEdges)
{
    RetentionModel m = modelB();
    EXPECT_EQ(m.tailCdf(0.0), 0.0);
    EXPECT_EQ(m.tailCdf(-1.0), 0.0);
    EXPECT_EQ(m.inverseTailCdf(0.0), 0.0);
}

TEST(RetentionModel, PaperAnchor2464FailuresPer2GB)
{
    // Section 6.2.3: ~2464 failures at 1024 ms / 45 C in 2 GB.
    RetentionModel m = modelB();
    double expected = m.berAt(1.024, 45.0) * kBitsPer2GB;
    EXPECT_NEAR(expected, 2464.0, 2464.0 * 0.02);
}

TEST(RetentionModel, TemperatureScalingMatchesEq1)
{
    // Eq. 1: failure rate scales as exp(k dT), ~10x per 10 C.
    for (Vendor v : {Vendor::A, Vendor::B, Vendor::C}) {
        RetentionModel m{vendorParams(v)};
        double k = vendorParams(v).tempCoeff;
        double ratio = m.berAt(1.0, 55.0) / m.berAt(1.0, 45.0);
        EXPECT_NEAR(ratio, std::exp(10.0 * k), ratio * 1e-9)
            << toString(v);
        EXPECT_GT(ratio, 7.0);
        EXPECT_LT(ratio, 14.0);
    }
}

TEST(RetentionModel, ExposureScaleConsistentWithBer)
{
    // berAt(t, T) must equal tailCdf(t * equivalentExposureScale(T)).
    RetentionModel m = modelB();
    for (double temp : {40.0, 45.0, 50.0, 55.0}) {
        double lhs = m.berAt(0.8, temp);
        double rhs = m.tailCdf(0.8 * m.equivalentExposureScale(temp));
        EXPECT_NEAR(lhs, rhs, lhs * 1e-9) << temp;
    }
}

TEST(RetentionModel, SigmaNarrowsWithTemperature)
{
    RetentionModel m = modelB();
    EXPECT_LT(m.sigmaNarrowScale(55.0), 1.0);
    EXPECT_GT(m.sigmaNarrowScale(35.0), 1.0);
    EXPECT_DOUBLE_EQ(m.sigmaNarrowScale(45.0), 1.0);
}

TEST(RetentionModel, FailureProbabilityIsNormalCdf)
{
    RetentionModel m = modelB();
    WeakCell c = makeCell(2.0, 0.05);
    // At t = mu: 50%.
    EXPECT_NEAR(m.failureProbability(c, 2.0, 45.0, 1.0), 0.5, 1e-9);
    // One sigma above: ~84%.
    EXPECT_NEAR(m.failureProbability(c, 2.1, 45.0, 1.0), 0.8413, 1e-3);
    // Far below: ~0.
    EXPECT_LT(m.failureProbability(c, 1.0, 45.0, 1.0), 1e-9);
}

TEST(RetentionModel, FailureProbabilityMonotoneInExposure)
{
    RetentionModel m = modelB();
    WeakCell c = makeCell(1.5, 0.08);
    double prev = 0.0;
    for (double t = 0.5; t <= 3.0; t += 0.1) {
        double p = m.failureProbability(c, t, 45.0, 1.0);
        EXPECT_GE(p, prev);
        prev = p;
    }
}

TEST(RetentionModel, VrtStateRaisesRetention)
{
    RetentionModel m = modelB();
    WeakCell c = makeCell(1.0, 0.05);
    c.vrtFactor = 1.5f;
    c.vrtState = 0;
    double p_low = m.failureProbability(c, 1.2, 45.0, 1.0);
    c.vrtState = 1;
    double p_high = m.failureProbability(c, 1.2, 45.0, 1.0);
    EXPECT_GT(p_low, 0.99);
    EXPECT_LT(p_high, 0.01);
}

TEST(RetentionModel, WorstCaseProbabilityUsesTemperature)
{
    RetentionModel m = modelB();
    WeakCell c = makeCell(1.2, 0.05);
    double p45 = m.worstCaseFailureProbability(c, 1.0, 45.0);
    double p55 = m.worstCaseFailureProbability(c, 1.0, 55.0);
    EXPECT_GT(p55, p45);
}

TEST(RetentionModel, DpdWorstClassIsOne)
{
    RetentionModel m = modelB();
    WeakCell c = makeCell(1.0, 0.05, /*worst_class=*/3);
    EXPECT_DOUBLE_EQ(
        m.dpdFactor(c, DataPattern::CheckerboardInv, 1), 1.0);
}

TEST(RetentionModel, DpdNonWorstStaticInRange)
{
    RetentionModel m = modelB();
    double max_f = m.params().dpdMaxFactor;
    WeakCell c = makeCell(1.0, 0.05, /*worst_class=*/0);
    for (DataPattern p : allDataPatterns()) {
        if (isRandomPattern(p) || patternClass(p) == 0)
            continue;
        double f = m.dpdFactor(c, p, 7);
        EXPECT_GT(f, 1.0) << toString(p);
        EXPECT_LE(f, max_f) << toString(p);
    }
}

TEST(RetentionModel, DpdStaticFactorDeterministic)
{
    RetentionModel m = modelB();
    WeakCell c = makeCell(1.0, 0.05, 0);
    double f1 = m.dpdFactor(c, DataPattern::RowStripe, 1);
    double f2 = m.dpdFactor(c, DataPattern::RowStripe, 999);
    EXPECT_DOUBLE_EQ(f1, f2); // static factors ignore the write nonce
}

TEST(RetentionModel, DpdRandomRedrawsPerNonce)
{
    RetentionModel m = modelB();
    WeakCell c = makeCell(1.0, 0.05, 0);
    double f1 = m.dpdFactor(c, DataPattern::Random, 1);
    double f2 = m.dpdFactor(c, DataPattern::Random, 2);
    EXPECT_NE(f1, f2);
    EXPECT_GE(f1, 1.0);
    EXPECT_LE(f1, m.params().dpdMaxFactor);
}

TEST(RetentionModel, DpdRandomBiasedTowardWorstCase)
{
    // With bias exponent 2, the mean of u^2 is 1/3: random draws skew
    // toward low (more failure-prone) factors.
    RetentionModel m = modelB();
    WeakCell c = makeCell(1.0, 0.05, 0);
    RunningStats s;
    for (uint64_t nonce = 0; nonce < 20000; ++nonce)
        s.add(m.dpdFactor(c, DataPattern::Random, nonce));
    double span = m.params().dpdMaxFactor - 1.0;
    EXPECT_NEAR(s.mean(), 1.0 + span / 3.0, span * 0.02);
}

TEST(RetentionModel, SampleWeakPopulationCountMatchesTail)
{
    RetentionModel m = modelB();
    Rng rng(17);
    TestEnvelope env{2.0, 45.0};
    uint64_t bits = 8ull * 1024 * 1024 * 1024; // 1 GB
    auto cells = m.sampleWeakPopulation(bits, env, rng);
    double expected =
        m.tailCdf(m.envelopeMuCap(env)) * static_cast<double>(bits);
    EXPECT_GT(expected, 100.0); // sanity: test has statistical power
    double sd = std::sqrt(expected);
    EXPECT_NEAR(static_cast<double>(cells.size()), expected, 6.0 * sd);
}

TEST(RetentionModel, SampleWeakPopulationSortedUniqueInRange)
{
    RetentionModel m = modelB();
    Rng rng(18);
    TestEnvelope env{2.0, 45.0};
    uint64_t bits = 8ull * 1024 * 1024 * 1024;
    auto cells = m.sampleWeakPopulation(bits, env, rng);
    ASSERT_GT(cells.size(), 10u);
    double mu_cap = m.envelopeMuCap(env);
    std::set<uint64_t> addrs;
    float prev_mu = 0.f;
    for (const auto &c : cells) {
        EXPECT_GE(c.mu, prev_mu); // sorted
        prev_mu = c.mu;
        EXPECT_GT(c.mu, 0.f);
        EXPECT_LE(c.mu, mu_cap * 1.0001);
        EXPECT_LT(c.addr, bits);
        addrs.insert(c.addr);
        EXPECT_GT(c.sigmaRel, 0.f);
        EXPECT_LE(c.sigmaRel, m.params().maxSigmaRel + 1e-6);
    }
    EXPECT_EQ(addrs.size(), cells.size()); // unique addresses
}

TEST(RetentionModel, SampleWeakPopulationMuFollowsPowerLaw)
{
    // P(mu <= x) within the sampled population should be (x/cap)^p.
    RetentionModel m = modelB();
    Rng rng(19);
    TestEnvelope env{2.0, 45.0};
    auto cells = m.sampleWeakPopulation(16ull * 1024 * 1024 * 1024, env,
                                        rng);
    ASSERT_GT(cells.size(), 300u);
    double cap = m.envelopeMuCap(env);
    double below_half = 0;
    for (const auto &c : cells)
        below_half += (c.mu <= cap / 2);
    double frac = below_half / static_cast<double>(cells.size());
    double expect = std::pow(0.5, 2.8);
    EXPECT_NEAR(frac, expect, 0.05);
}

TEST(RetentionModel, WeakVrtFractionRespected)
{
    RetentionModel m = modelB();
    Rng rng(20);
    TestEnvelope env{2.0, 45.0};
    auto cells = m.sampleWeakPopulation(32ull * 1024 * 1024 * 1024, env,
                                        rng);
    ASSERT_GT(cells.size(), 500u);
    double togglers = 0;
    for (const auto &c : cells) {
        if (c.togglesVrt) {
            ++togglers;
            EXPECT_GE(c.vrtFactor, 1.05f);
        }
    }
    double frac = togglers / static_cast<double>(cells.size());
    EXPECT_NEAR(frac, m.params().weakVrtFraction, 0.02);
}

TEST(RetentionModel, VrtRateCalibratedAt1024And2048)
{
    // Section 6.2.3: 0.73 cells/hour at 1024 ms; Fig. 3: ~1 cell/20 s
    // at 2048 ms, both per 2 GB at 45 C.
    RetentionModel m = modelB();
    uint64_t bits = static_cast<uint64_t>(kBitsPer2GB);
    double rate_1024 = m.vrtCumulativeRate(1.024, bits) * 3600.0;
    EXPECT_NEAR(rate_1024, 0.73, 0.01);
    double rate_2048 = m.vrtCumulativeRate(2.048, bits) * 3600.0;
    EXPECT_NEAR(rate_2048, 180.0, 20.0);
}

TEST(RetentionModel, VrtRateSaturatesBeyondKnee)
{
    RetentionModel m = modelB();
    uint64_t bits = static_cast<uint64_t>(kBitsPer2GB);
    double knee = m.params().vrtKnee;
    double r1 = m.vrtCumulativeRate(2.0 * knee, bits);
    double r2 = m.vrtCumulativeRate(4.0 * knee, bits);
    EXPECT_NEAR(r2 / r1, 4.0, 1e-6); // ~t^2 beyond the knee
}

TEST(RetentionModel, VrtRateScalesWithCapacity)
{
    RetentionModel m = modelB();
    uint64_t bits = static_cast<uint64_t>(kBitsPer2GB);
    EXPECT_NEAR(m.vrtCumulativeRate(1.0, bits * 4) /
                    m.vrtCumulativeRate(1.0, bits),
                4.0, 1e-9);
}

TEST(RetentionModel, SampleVrtMuWithinCap)
{
    RetentionModel m = modelB();
    Rng rng(21);
    for (int i = 0; i < 2000; ++i) {
        double mu = m.sampleVrtMu(3.0, rng);
        EXPECT_GT(mu, 0.0);
        EXPECT_LE(mu, 3.0);
    }
}

TEST(RetentionModel, SampleVrtMuMatchesRateShape)
{
    // The fraction of arrivals with mu <= x must equal
    // rate(x) / rate(cap).
    RetentionModel m = modelB();
    Rng rng(22);
    uint64_t bits = 1000;
    double cap = 3.0;
    double x = 1.5;
    double expect = m.vrtCumulativeRate(x, bits) /
                    m.vrtCumulativeRate(cap, bits);
    int below = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        below += (m.sampleVrtMu(cap, rng) <= x);
    EXPECT_NEAR(static_cast<double>(below) / n, expect,
                0.02 + 3.0 * std::sqrt(expect / n));
}

TEST(RetentionModel, VrtArrivalHasNoToggling)
{
    RetentionModel m = modelB();
    Rng rng(23);
    for (int i = 0; i < 100; ++i) {
        WeakCell c = m.sampleVrtArrival(2.0, rng);
        EXPECT_FALSE(c.togglesVrt);
        EXPECT_EQ(c.vrtState, 0);
    }
}

TEST(RetentionModel, VendorsDiffer)
{
    RetentionModel a{vendorParams(Vendor::A)};
    RetentionModel b{vendorParams(Vendor::B)};
    RetentionModel c{vendorParams(Vendor::C)};
    EXPECT_LT(a.berAt(1.024, 45.0), b.berAt(1.024, 45.0));
    EXPECT_LT(b.berAt(1.024, 45.0), c.berAt(1.024, 45.0));
}

} // namespace
} // namespace dram
} // namespace reaper
