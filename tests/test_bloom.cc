/**
 * @file
 * Tests for the Bloom filter and its RAIDR integration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "mitigation/bloom.h"
#include "mitigation/raidr.h"

namespace reaper {
namespace mitigation {
namespace {

TEST(BloomFilter, NoFalseNegatives)
{
    BloomFilter f(4096, 4);
    Rng rng(1);
    std::vector<uint64_t> keys;
    for (int i = 0; i < 200; ++i)
        keys.push_back(rng());
    for (uint64_t k : keys)
        f.insert(k);
    for (uint64_t k : keys)
        EXPECT_TRUE(f.mayContain(k));
    EXPECT_EQ(f.insertedCount(), 200u);
}

TEST(BloomFilter, FalsePositiveRateNearTarget)
{
    size_t n = 2000;
    double target = 0.01;
    BloomFilter f = BloomFilter::forCapacity(n, target);
    Rng rng(2);
    for (size_t i = 0; i < n; ++i)
        f.insert(rng());
    // Probe keys that were never inserted.
    int fps = 0;
    const int probes = 50000;
    Rng probe_rng(3);
    for (int i = 0; i < probes; ++i)
        fps += f.mayContain(probe_rng());
    double rate = static_cast<double>(fps) / probes;
    EXPECT_LT(rate, target * 3.0);
    EXPECT_NEAR(rate, f.expectedFpRate(), target * 2.0);
}

TEST(BloomFilter, SizingFormulas)
{
    BloomFilter f = BloomFilter::forCapacity(1000, 0.01);
    // m ~ 9585 bits, k ~ 7 for 1% at n=1000.
    EXPECT_NEAR(static_cast<double>(f.sizeBits()), 9585.0, 100.0);
    EXPECT_EQ(f.numHashes(), 7);
}

TEST(BloomFilter, ClearResets)
{
    BloomFilter f(1024, 3);
    f.insert(42);
    ASSERT_TRUE(f.mayContain(42));
    f.clear();
    EXPECT_FALSE(f.mayContain(42));
    EXPECT_EQ(f.insertedCount(), 0u);
    EXPECT_EQ(f.fillRatio(), 0.0);
}

TEST(BloomFilter, EmptyContainsNothing)
{
    BloomFilter f(1024, 3);
    Rng rng(4);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(f.mayContain(rng()));
}

TEST(BloomFilter, FillRatioGrowsWithInserts)
{
    BloomFilter f(1024, 3);
    double prev = 0.0;
    Rng rng(5);
    for (int batch = 0; batch < 5; ++batch) {
        for (int i = 0; i < 20; ++i)
            f.insert(rng());
        EXPECT_GT(f.fillRatio(), prev);
        prev = f.fillRatio();
    }
    EXPECT_LT(f.fillRatio(), 1.0);
}

TEST(BloomFilter, SeedsGiveIndependentFamilies)
{
    // Small, loaded filters with different hash-family seeds must
    // produce (mostly) different false positives for the same
    // inserted key set.
    BloomFilter a(256, 4, /*seed=*/1), b(256, 4, /*seed=*/2);
    Rng keys(6);
    for (int i = 0; i < 30; ++i) {
        uint64_t k = keys();
        a.insert(k);
        b.insert(k);
    }
    int disagree = 0, fps = 0;
    Rng probe(7);
    for (int i = 0; i < 5000; ++i) {
        uint64_t k = probe();
        bool in_a = a.mayContain(k);
        bool in_b = b.mayContain(k);
        disagree += in_a != in_b;
        fps += in_a || in_b;
    }
    ASSERT_GT(fps, 10);      // the filters are loaded enough to err
    EXPECT_GT(disagree, 10); // ...but err on different keys
}

// Property test (serve-layer contract): across filter geometries,
// load factors, and seeded random key sets, the empirical
// false-positive rate tracks the analytic (1 - e^{-kn/m})^k estimate,
// and inserted keys are never lost. The serve::RefreshDirectory Bloom
// variant's one-sidedness rests on exactly these two properties.
TEST(BloomFilter, PropertyEmpiricalFprTracksAnalyticEstimate)
{
    struct Case
    {
        size_t bits;
        int hashes;
        size_t inserts;
    };
    const std::vector<Case> cases = {
        {1 << 12, 3, 200},  {1 << 12, 3, 800},  {1 << 14, 5, 1000},
        {1 << 14, 7, 3000}, {1 << 16, 4, 2000}, {1 << 16, 6, 12000},
    };
    const int kProbes = 40000;
    for (size_t ci = 0; ci < cases.size(); ++ci) {
        const Case &c = cases[ci];
        for (uint64_t trial = 0; trial < 3; ++trial) {
            uint64_t seed = 0xF00D + ci * 17 + trial;
            BloomFilter f(c.bits, c.hashes, seed);
            Rng insert_rng(seed * 31 + 1);
            std::vector<uint64_t> keys;
            keys.reserve(c.inserts);
            for (size_t i = 0; i < c.inserts; ++i) {
                keys.push_back(insert_rng());
                f.insert(keys.back());
            }
            // Zero false negatives, unconditionally.
            for (uint64_t k : keys)
                ASSERT_TRUE(f.mayContain(k))
                    << "lost key in case " << ci << " trial " << trial;

            // Empirical FPR over fresh random probes (the chance a
            // random probe collides with an inserted key is ~2^-51,
            // negligible against kProbes).
            Rng probe_rng(seed * 131 + 7);
            int fps = 0;
            for (int i = 0; i < kProbes; ++i)
                fps += f.mayContain(probe_rng());
            double empirical = static_cast<double>(fps) / kProbes;
            double analytic = f.expectedFpRate();
            // Tolerance: 3.5 binomial sigmas plus a small absolute
            // floor for the near-zero-rate cases.
            double sigma = std::sqrt(
                std::max(analytic * (1 - analytic), 1e-9) / kProbes);
            EXPECT_NEAR(empirical, analytic, 3.5 * sigma + 2e-3)
                << "case " << ci << " trial " << trial << " (m="
                << c.bits << " k=" << c.hashes << " n=" << c.inserts
                << ")";
        }
    }
}

TEST(BloomFilter, Validation)
{
    EXPECT_DEATH(BloomFilter(128, 0), "hash");
    EXPECT_DEATH(BloomFilter::forCapacity(10, 0.0), "fp_rate");
    EXPECT_DEATH(BloomFilter::forCapacity(10, 1.0), "fp_rate");
}

// ---------------- RAIDR with Bloom filters ----------------

constexpr uint64_t kRowBits = 2048ull * 8;

profiling::RetentionProfile
profileOf(std::vector<dram::ChipFailure> cells)
{
    profiling::RetentionProfile p;
    p.add(cells);
    return p;
}

RaidrConfig
bloomRaidr()
{
    RaidrConfig cfg;
    cfg.totalRows = 100000;
    cfg.useBloomFilters = true;
    cfg.bloomFpRate = 1e-3;
    cfg.bloomExpectedRows = 1024;
    return cfg;
}

TEST(RaidrBloom, NoFalseNegativesOnDemotedRows)
{
    Raidr raidr(bloomRaidr());
    std::vector<dram::ChipFailure> cells;
    for (uint64_t r = 0; r < 500; ++r)
        cells.push_back({0, r * 3 * kRowBits});
    raidr.applyProfile(profileOf(cells));
    for (const auto &c : cells) {
        EXPECT_TRUE(raidr.covers(c));
        EXPECT_DOUBLE_EQ(raidr.rowInterval(0, c.addr / kRowBits),
                         0.064);
    }
}

TEST(RaidrBloom, CleanRowsMostlyStayInDefaultBin)
{
    Raidr raidr(bloomRaidr());
    raidr.applyProfile(profileOf({{0, 0}}));
    int demoted = 0;
    for (uint64_t row = 1000; row < 6000; ++row)
        demoted += raidr.rowInterval(0, row) < 1.0;
    // ~0.1% false-positive demotions at most (with slack).
    EXPECT_LT(demoted, 30);
}

TEST(RaidrBloom, StorageIsCompact)
{
    Raidr raidr(bloomRaidr());
    raidr.applyProfile(profileOf({{0, 0}}));
    // RAIDR's selling point: a few KB for the bins.
    EXPECT_GT(raidr.bloomStorageBits(), 0u);
    EXPECT_LT(raidr.bloomStorageBits(), 64ull * 1024 * 8);
}

TEST(RaidrBloom, RefreshWorkAccountsForFalsePositives)
{
    RaidrConfig exact_cfg = bloomRaidr();
    exact_cfg.useBloomFilters = false;
    Raidr exact(exact_cfg);
    Raidr bloom(bloomRaidr());
    auto profile = profileOf({{0, 0}, {0, kRowBits * 7}});
    exact.applyProfile(profile);
    bloom.applyProfile(profile);
    EXPECT_GE(bloom.refreshWorkRelative(),
              exact.refreshWorkRelative());
    // But only marginally (the fp rate is tiny).
    EXPECT_LT(bloom.refreshWorkRelative(),
              exact.refreshWorkRelative() * 1.2 + 0.01);
}

TEST(RaidrBloom, BinnedProfilesUseFastestClaimingFilter)
{
    RaidrConfig cfg = bloomRaidr();
    Raidr raidr(cfg);
    profiling::RetentionProfile at_256 = profileOf({{0, 0}});
    profiling::RetentionProfile at_1024 =
        profileOf({{0, 0}, {0, kRowBits}});
    raidr.applyBinnedProfiles({at_256, at_1024});
    EXPECT_DOUBLE_EQ(raidr.rowInterval(0, 0), 0.064);
    EXPECT_DOUBLE_EQ(raidr.rowInterval(0, 1), 0.256);
}

} // namespace
} // namespace mitigation
} // namespace reaper
