/**
 * @file
 * Tests for the set-associative LRU cache model.
 */

#include <gtest/gtest.h>

#include "sim/cache.h"

namespace reaper {
namespace sim {
namespace {

CacheConfig
tinyCache()
{
    CacheConfig cfg;
    cfg.sizeBytes = 4 * 1024; // 4 KB
    cfg.ways = 4;
    cfg.lineBytes = 64;       // 16 sets
    return cfg;
}

TEST(Cache, GeometryComputed)
{
    Cache c(tinyCache());
    EXPECT_EQ(c.numSets(), 16u);
}

TEST(Cache, RejectsBadGeometry)
{
    CacheConfig cfg = tinyCache();
    cfg.sizeBytes = 1000; // not a multiple of ways * line
    EXPECT_DEATH(Cache c(cfg), "multiple");
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1010, false).hit); // same line
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, ProbeHasNoSideEffects)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_EQ(c.stats().hits + c.stats().misses, 0u);
    c.access(0x2000, false);
    EXPECT_TRUE(c.probe(0x2000));
}

TEST(Cache, LruEviction)
{
    Cache c(tinyCache());
    // Fill one set (set 0): addresses with the same set index.
    uint64_t stride = 16 * 64; // sets * line
    for (uint64_t i = 0; i < 4; ++i)
        c.access(i * stride, false);
    // Touch line 0 so line 1 is LRU.
    c.access(0, false);
    // A 5th line evicts line 1 (the LRU), not line 0.
    c.access(4 * stride, false);
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(stride));
    EXPECT_TRUE(c.probe(4 * stride));
}

TEST(Cache, DirtyEvictionProducesWriteback)
{
    Cache c(tinyCache());
    uint64_t stride = 16 * 64;
    c.access(0, true); // dirty line in set 0
    for (uint64_t i = 1; i < 4; ++i)
        c.access(i * stride, false);
    CacheAccess r = c.access(4 * stride, false); // evicts line 0
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.writebackAddr, 0u);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c(tinyCache());
    uint64_t stride = 16 * 64;
    for (uint64_t i = 0; i < 5; ++i) {
        CacheAccess r = c.access(i * stride, false);
        EXPECT_FALSE(r.writeback);
    }
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c(tinyCache());
    uint64_t stride = 16 * 64;
    c.access(0, false);       // clean
    c.access(0, true);        // now dirty
    for (uint64_t i = 1; i < 5; ++i)
        c.access(i * stride, false);
    // Line 0 was evicted at some point; a writeback must have occurred.
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, MissRate)
{
    Cache c(tinyCache());
    c.access(0, false);
    c.access(0, false);
    c.access(64, false);
    EXPECT_NEAR(c.stats().missRate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, DistinctSetsDoNotConflict)
{
    Cache c(tinyCache());
    for (uint64_t set = 0; set < 16; ++set) {
        for (uint64_t way = 0; way < 4; ++way)
            c.access(way * 16 * 64 + set * 64, false);
    }
    // Everything still resident: 64 lines in a 64-line cache.
    for (uint64_t set = 0; set < 16; ++set) {
        for (uint64_t way = 0; way < 4; ++way)
            EXPECT_TRUE(c.probe(way * 16 * 64 + set * 64));
    }
}

} // namespace
} // namespace sim
} // namespace reaper
