/**
 * @file
 * Tests for synthetic SPEC-like workload generation and the weighted
 * speedup metric.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/synthetic.h"

namespace reaper {
namespace workload {
namespace {

TEST(Benchmarks, SixteenArchetypes)
{
    EXPECT_EQ(specBenchmarks().size(), 16u);
    std::set<std::string> names;
    for (const auto &s : specBenchmarks()) {
        names.insert(s.name);
        EXPECT_GT(s.apki, 0.0) << s.name;
        EXPECT_GE(s.rowLocality, 0.0);
        EXPECT_LE(s.rowLocality, 1.0);
        EXPECT_GE(s.readFraction, 0.0);
        EXPECT_LE(s.readFraction, 1.0);
        EXPECT_GT(s.workingSetBytes, 0u);
    }
    EXPECT_EQ(names.size(), 16u);
}

TEST(Benchmarks, LookupByName)
{
    EXPECT_EQ(benchmarkByName("mcf").name, "mcf");
    EXPECT_EXIT(benchmarkByName("doom"), ::testing::ExitedWithCode(1),
                "unknown benchmark");
}

TEST(GenerateTrace, ApkiMatchesSpec)
{
    for (const char *name : {"mcf", "gcc", "hmmer"}) {
        const BenchmarkSpec &spec = benchmarkByName(name);
        sim::Trace t = generateTrace(spec, 20000, 1);
        EXPECT_NEAR(t.apki() / spec.apki, 1.0, 0.05) << name;
    }
}

TEST(GenerateTrace, Deterministic)
{
    const BenchmarkSpec &spec = benchmarkByName("milc");
    sim::Trace a = generateTrace(spec, 1000, 42);
    sim::Trace b = generateTrace(spec, 1000, 42);
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (size_t i = 0; i < a.entries.size(); ++i) {
        EXPECT_EQ(a.entries[i].addr, b.entries[i].addr);
        EXPECT_EQ(a.entries[i].bubbles, b.entries[i].bubbles);
    }
}

TEST(GenerateTrace, SeedChangesTrace)
{
    const BenchmarkSpec &spec = benchmarkByName("milc");
    sim::Trace a = generateTrace(spec, 1000, 1);
    sim::Trace b = generateTrace(spec, 1000, 2);
    int same = 0;
    for (size_t i = 0; i < a.entries.size(); ++i)
        same += a.entries[i].addr == b.entries[i].addr;
    EXPECT_LT(same, 200);
}

TEST(GenerateTrace, AddressesWithinWorkingSetPlusBase)
{
    const BenchmarkSpec &spec = benchmarkByName("bzip2");
    uint64_t base = 7ull << 32;
    sim::Trace t = generateTrace(spec, 5000, 3, base);
    for (const auto &e : t.entries) {
        EXPECT_GE(e.addr, base);
        EXPECT_LT(e.addr, base + spec.workingSetBytes);
        EXPECT_EQ(e.addr % 64, 0u); // line aligned
    }
}

TEST(GenerateTrace, ReadFractionRespected)
{
    const BenchmarkSpec &spec = benchmarkByName("libquantum");
    sim::Trace t = generateTrace(spec, 20000, 4);
    double reads = 0;
    for (const auto &e : t.entries)
        reads += !e.isWrite;
    EXPECT_NEAR(reads / 20000.0, spec.readFraction, 0.02);
}

TEST(GenerateTrace, StreamingHasHighRowLocality)
{
    // Consecutive accesses of a streaming benchmark mostly fall in the
    // same or adjacent 2 KiB row.
    const BenchmarkSpec &spec = benchmarkByName("lbm");
    sim::Trace t = generateTrace(spec, 10000, 5);
    int same_row = 0;
    for (size_t i = 1; i < t.entries.size(); ++i) {
        same_row += t.entries[i].addr / 2048 ==
                    t.entries[i - 1].addr / 2048;
    }
    EXPECT_GT(static_cast<double>(same_row) / 10000.0, 0.6);
}

TEST(GenerateTrace, RandomWorkloadHasLowRowLocality)
{
    const BenchmarkSpec &spec = benchmarkByName("mcf");
    sim::Trace t = generateTrace(spec, 10000, 6);
    int same_row = 0;
    for (size_t i = 1; i < t.entries.size(); ++i) {
        same_row += t.entries[i].addr / 2048 ==
                    t.entries[i - 1].addr / 2048;
    }
    EXPECT_LT(static_cast<double>(same_row) / 10000.0, 0.4);
}

TEST(Mixes, TwentyRandomFourCoreMixes)
{
    auto mixes = makeMixes(20, 1);
    EXPECT_EQ(mixes.size(), 20u);
    std::set<std::string> names;
    for (const auto &m : mixes) {
        EXPECT_EQ(m.benchmarks.size(), 4u);
        names.insert(m.name);
        for (int b : m.benchmarks) {
            EXPECT_GE(b, 0);
            EXPECT_LT(b, 16);
        }
    }
    EXPECT_GT(names.size(), 15u); // overwhelmingly distinct
}

TEST(Mixes, DeterministicForSeed)
{
    auto a = makeMixes(5, 9);
    auto b = makeMixes(5, 9);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].benchmarks, b[i].benchmarks);
}

TEST(Mixes, TracesHaveDisjointAddressRanges)
{
    auto mixes = makeMixes(1, 2);
    auto traces = tracesForMix(mixes[0], 1000, 3);
    ASSERT_EQ(traces.size(), 4u);
    for (size_t c = 0; c < traces.size(); ++c) {
        for (const auto &e : traces[c].entries) {
            EXPECT_EQ(e.addr >> 32, c + 1);
        }
    }
}

TEST(WeightedSpeedup, Definition)
{
    EXPECT_DOUBLE_EQ(weightedSpeedup({1.0, 2.0}, {2.0, 2.0}), 1.5);
    EXPECT_DOUBLE_EQ(weightedSpeedup({1.0}, {1.0}), 1.0);
}

TEST(WeightedSpeedup, Validation)
{
    EXPECT_DEATH(weightedSpeedup({1.0}, {1.0, 2.0}), "mismatch");
    EXPECT_DEATH(weightedSpeedup({1.0}, {0.0}), "alone IPC");
}

TEST(TraceStats, InstructionCountAndApki)
{
    sim::Trace t;
    t.entries = {{9, 0, false}, {19, 64, true}};
    EXPECT_EQ(t.instructionCount(), 30u);
    EXPECT_NEAR(t.apki(), 1000.0 * 2 / 30, 1e-9);
}

} // namespace
} // namespace workload
} // namespace reaper
