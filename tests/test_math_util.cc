/**
 * @file
 * Tests for the numeric helpers behind the retention and ECC models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"

namespace reaper {
namespace {

TEST(NormalCdf, StandardValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.959963985), 0.975, 1e-6);
    EXPECT_NEAR(normalCdf(-1.959963985), 0.025, 1e-6);
    EXPECT_NEAR(normalCdf(3.0), 0.998650, 1e-5);
}

TEST(NormalCdf, WithMeanSigma)
{
    EXPECT_NEAR(normalCdf(5.0, 5.0, 2.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(7.0, 5.0, 2.0), normalCdf(1.0), 1e-12);
}

TEST(NormalCdf, DegenerateSigma)
{
    EXPECT_EQ(normalCdf(4.9, 5.0, 0.0), 0.0);
    EXPECT_EQ(normalCdf(5.1, 5.0, 0.0), 1.0);
    EXPECT_EQ(normalCdf(5.0, 5.0, 0.0), 1.0);
}

TEST(NormalQuantile, InvertsCdf)
{
    for (double p : {1e-9, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1 - 1e-6}) {
        double x = normalQuantile(p);
        EXPECT_NEAR(normalCdf(x), p, 1e-9) << "p=" << p;
    }
}

TEST(NormalQuantile, KnownValues)
{
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(normalQuantile(0.975), 1.959963985, 1e-6);
}

TEST(NormalQuantile, RejectsOutOfDomain)
{
    EXPECT_DEATH(normalQuantile(0.0), "normalQuantile");
    EXPECT_DEATH(normalQuantile(1.0), "normalQuantile");
}

TEST(LogFactorial, SmallValues)
{
    EXPECT_NEAR(logFactorial(0), 0.0, 1e-12);
    EXPECT_NEAR(logFactorial(1), 0.0, 1e-12);
    EXPECT_NEAR(logFactorial(5), std::log(120.0), 1e-9);
}

TEST(LogChoose, KnownValues)
{
    EXPECT_NEAR(std::exp(logChoose(5, 2)), 10.0, 1e-9);
    EXPECT_NEAR(std::exp(logChoose(72, 2)), 2556.0, 1e-6);
    EXPECT_EQ(logChoose(3, 5), -INFINITY);
}

TEST(BinomialPmf, SumsToOne)
{
    double sum = 0.0;
    for (uint64_t n = 0; n <= 20; ++n)
        sum += binomialPmf(20, n, 0.3);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(BinomialPmf, EdgeProbabilities)
{
    EXPECT_EQ(binomialPmf(10, 0, 0.0), 1.0);
    EXPECT_EQ(binomialPmf(10, 3, 0.0), 0.0);
    EXPECT_EQ(binomialPmf(10, 10, 1.0), 1.0);
    EXPECT_EQ(binomialPmf(10, 9, 1.0), 0.0);
    EXPECT_EQ(binomialPmf(10, 11, 0.5), 0.0);
}

TEST(BinomialTailAbove, MatchesLeadingTerm)
{
    // For tiny r, P[X > k] ~ C(w, k+1) r^(k+1).
    double r = 1e-9;
    double tail = binomialTailAbove(72, 1, r);
    double leading = std::exp(logChoose(72, 2)) * r * r;
    EXPECT_NEAR(tail / leading, 1.0, 1e-3);
}

TEST(BinomialTailAbove, Monotone)
{
    double prev = 0.0;
    for (double r : {1e-10, 1e-8, 1e-6, 1e-4, 1e-2}) {
        double t = binomialTailAbove(64, 0, r);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(BinomialTailAbove, Edges)
{
    EXPECT_EQ(binomialTailAbove(64, 0, 0.0), 0.0);
    EXPECT_EQ(binomialTailAbove(64, 0, 1.0), 1.0);
    EXPECT_EQ(binomialTailAbove(64, 64, 0.5), 0.0);
}

TEST(BinomialTailAbove, ComplementOfPmfSum)
{
    // P[X > k] = 1 - sum_{n<=k} pmf.
    double r = 0.05;
    uint64_t w = 30, k = 2;
    double head = 0.0;
    for (uint64_t n = 0; n <= k; ++n)
        head += binomialPmf(w, n, r);
    EXPECT_NEAR(binomialTailAbove(w, k, r), 1.0 - head, 1e-10);
}

TEST(ClampTo, Basics)
{
    EXPECT_EQ(clampTo(5.0, 0.0, 1.0), 1.0);
    EXPECT_EQ(clampTo(-5.0, 0.0, 1.0), 0.0);
    EXPECT_EQ(clampTo(0.5, 0.0, 1.0), 0.5);
}

TEST(BisectIncreasing, FindsRoot)
{
    auto f = [](double x) { return x * x; };
    double x = bisectIncreasing(f, 2.0, 0.0, 10.0);
    EXPECT_NEAR(x, std::sqrt(2.0), 1e-9);
}

TEST(BisectIncreasing, TargetAtBoundary)
{
    auto f = [](double x) { return x; };
    EXPECT_NEAR(bisectIncreasing(f, 0.0, 0.0, 1.0), 0.0, 1e-9);
    EXPECT_NEAR(bisectIncreasing(f, 1.0, 0.0, 1.0), 1.0, 1e-9);
}

} // namespace
} // namespace reaper
