/**
 * @file
 * Tests for reach profiling — including the calibration tests that pin
 * the paper's headline numbers (Section 6.1.2): profiling +250 ms above
 * the target achieves > 99% coverage at < 50% false-positive rate while
 * running ~2.5x faster than brute force.
 */

#include <gtest/gtest.h>

#include "profiling/brute_force.h"
#include "profiling/reach.h"

namespace reaper {
namespace profiling {
namespace {

dram::ModuleConfig
testModule(uint64_t seed = 1)
{
    dram::ModuleConfig cfg;
    cfg.numChips = 1;
    cfg.chipCapacityBits = 4ull * 1024 * 1024 * 1024; // 512 MB
    cfg.seed = seed;
    cfg.envelope = {2.5, 52.0};
    cfg.chipVariation = 0.0; // nominal vendor-B chip for calibration
    return cfg;
}

testbed::HostConfig
instantHost()
{
    testbed::HostConfig h;
    h.useChamber = false;
    return h;
}

struct RunOutcome
{
    ProfileMetrics metrics;
    Seconds runtime;
};

RunOutcome
runReach(uint64_t seed, Seconds d_refi, Celsius d_temp, int iters)
{
    dram::DramModule m(testModule(seed));
    testbed::SoftMcHost host(m, instantHost());
    ReachConfig cfg;
    cfg.target = {1.024, 45.0};
    cfg.deltaRefreshInterval = d_refi;
    cfg.deltaTemperature = d_temp;
    cfg.iterations = iters;
    ReachProfiler reach;
    ProfilingResult r = reach.run(host, cfg);
    auto truth = m.trueFailingSet(1.024, 45.0);
    return {scoreProfile(r.profile, truth, r.runtime), r.runtime};
}

RunOutcome
runBrute(uint64_t seed, int iters)
{
    dram::DramModule m(testModule(seed));
    testbed::SoftMcHost host(m, instantHost());
    BruteForceConfig cfg;
    cfg.test = {1.024, 45.0};
    cfg.iterations = iters;
    BruteForceProfiler bf;
    ProfilingResult r = bf.run(host, cfg);
    auto truth = m.trueFailingSet(1.024, 45.0);
    return {scoreProfile(r.profile, truth, r.runtime), r.runtime};
}

TEST(ReachProfiler, ReachConditionsComputed)
{
    ReachConfig cfg;
    cfg.target = {1.024, 45.0};
    cfg.deltaRefreshInterval = 0.25;
    cfg.deltaTemperature = 5.0;
    Conditions reach = ReachProfiler::reachConditions(cfg);
    EXPECT_DOUBLE_EQ(reach.refreshInterval, 1.274);
    EXPECT_DOUBLE_EQ(reach.temperature, 50.0);
}

TEST(ReachProfiler, ProfileTaggedWithTargetConditions)
{
    dram::DramModule m(testModule(1));
    testbed::SoftMcHost host(m, instantHost());
    ReachConfig cfg;
    cfg.target = {1.024, 45.0};
    cfg.iterations = 1;
    ReachProfiler reach;
    ProfilingResult r = reach.run(host, cfg);
    EXPECT_DOUBLE_EQ(r.profile.conditions().refreshInterval, 1.024);
    EXPECT_DOUBLE_EQ(r.profile.conditions().temperature, 45.0);
}

TEST(ReachProfiler, RejectsNegativeDeltas)
{
    dram::DramModule m(testModule(2));
    testbed::SoftMcHost host(m, instantHost());
    ReachConfig cfg;
    cfg.deltaRefreshInterval = -0.1;
    ReachProfiler reach;
    EXPECT_DEATH(reach.run(host, cfg), "reach conditions");
}

TEST(ReachCalibration, HeadlineCoverageAbove99Percent)
{
    // Section 6.1.2: +250 ms reach -> > 99% coverage.
    RunOutcome reach = runReach(10, 0.250, 0.0, 4);
    EXPECT_GT(reach.metrics.coverage, 0.99);
}

TEST(ReachCalibration, HeadlineFalsePositivesBelow50Percent)
{
    // Section 6.1.2: +250 ms reach -> < 50% false positive rate.
    RunOutcome reach = runReach(11, 0.250, 0.0, 4);
    EXPECT_LT(reach.metrics.falsePositiveRate, 0.50);
    // It should still be a substantial fraction (the tradeoff is real).
    EXPECT_GT(reach.metrics.falsePositiveRate, 0.20);
}

TEST(ReachCalibration, HeadlineSpeedupNear2p5x)
{
    // Section 6.1.2: ~2.5x faster than brute-force profiling at equal
    // (>= 99%) coverage. Brute force needs ~16 iterations to reach the
    // same coverage reach profiling attains in 4.
    RunOutcome brute = runBrute(12, 16);
    RunOutcome reach = runReach(12, 0.250, 0.0, 4);
    ASSERT_GT(brute.metrics.coverage, 0.97);
    ASSERT_GT(reach.metrics.coverage, 0.99);
    double speedup = brute.runtime / reach.runtime;
    EXPECT_GT(speedup, 1.8);
    EXPECT_LT(speedup, 3.5);
}

TEST(ReachCalibration, ReachBeatsBruteAtEqualIterations)
{
    RunOutcome brute = runBrute(13, 4);
    RunOutcome reach = runReach(13, 0.250, 0.0, 4);
    EXPECT_GT(reach.metrics.coverage, brute.metrics.coverage);
}

TEST(ReachCalibration, LargerReachMoreFalsePositives)
{
    RunOutcome small = runReach(14, 0.125, 0.0, 4);
    RunOutcome large = runReach(14, 0.500, 0.0, 4);
    EXPECT_GT(large.metrics.falsePositiveRate,
              small.metrics.falsePositiveRate);
    EXPECT_GE(large.metrics.coverage, small.metrics.coverage - 0.01);
}

TEST(ReachCalibration, TemperatureReachWorksLikeIntervalReach)
{
    // Section 5.5: raising temperature and extending the interval have
    // interchangeable effects.
    RunOutcome temp_reach = runReach(15, 0.0, 5.0, 4);
    EXPECT_GT(temp_reach.metrics.coverage, 0.98);
    EXPECT_GT(temp_reach.metrics.falsePositiveRate, 0.2);
}

TEST(ReachCalibration, CombinedReachCoversEvenMore)
{
    RunOutcome combined = runReach(16, 0.25, 5.0, 4);
    RunOutcome interval_only = runReach(16, 0.25, 0.0, 4);
    EXPECT_GE(combined.metrics.coverage,
              interval_only.metrics.coverage - 1e-9);
    EXPECT_GT(combined.metrics.falsePositiveRate,
              interval_only.metrics.falsePositiveRate);
}

} // namespace
} // namespace profiling
} // namespace reaper
