/**
 * @file
 * Tests for the mitigation mechanisms REAPER enables: ArchShield-like
 * FaultMap remapping, RAIDR-like multi-rate refresh, and row map-out.
 */

#include <gtest/gtest.h>

#include "mitigation/archshield.h"
#include "mitigation/raidr.h"
#include "mitigation/rowmap.h"

namespace reaper {
namespace mitigation {
namespace {

using dram::ChipFailure;
using profiling::RetentionProfile;

constexpr uint64_t kRowBits = 2048ull * 8;

RetentionProfile
profileOf(std::vector<ChipFailure> cells)
{
    RetentionProfile p;
    p.add(cells);
    return p;
}

// ---------------- ArchShield ----------------

TEST(ArchShield, CoversProfiledCells)
{
    ArchShieldConfig cfg;
    ArchShield shield(cfg);
    shield.applyProfile(profileOf({{0, 100}, {1, 5000}}));
    EXPECT_TRUE(shield.covers({0, 100}));
    EXPECT_TRUE(shield.covers({1, 5000}));
    EXPECT_FALSE(shield.covers({0, 999999}));
    EXPECT_FALSE(shield.overflowed());
}

TEST(ArchShield, WordGranularityCoverage)
{
    ArchShieldConfig cfg;
    cfg.wordBits = 64;
    ArchShield shield(cfg);
    shield.applyProfile(profileOf({{0, 128}}));
    // Any cell in the same 64-bit word is covered by the replica.
    EXPECT_TRUE(shield.covers({0, 130}));
    EXPECT_FALSE(shield.covers({0, 192}));
}

TEST(ArchShield, FaultMapCapacity)
{
    ArchShieldConfig cfg;
    cfg.capacityBits = 1024ull * 1024; // 128 KB toy DRAM
    cfg.faultMapFraction = 0.04;
    cfg.entryBits = 160;
    ArchShield shield(cfg);
    EXPECT_EQ(shield.faultMapCapacityEntries(),
              static_cast<uint64_t>(1024.0 * 1024 * 0.04 / 160));
}

TEST(ArchShield, OverflowOnExcessiveProfile)
{
    ArchShieldConfig cfg;
    cfg.capacityBits = 1024ull * 1024;
    cfg.faultMapFraction = 0.04;
    ArchShield shield(cfg);
    uint64_t capacity = shield.faultMapCapacityEntries();
    std::vector<ChipFailure> cells;
    for (uint64_t i = 0; i <= capacity; ++i)
        cells.push_back({0, i * 64});
    shield.applyProfile(profileOf(cells));
    EXPECT_TRUE(shield.overflowed());
}

TEST(ArchShield, ReapplyReplacesProfile)
{
    ArchShield shield(ArchShieldConfig{});
    shield.applyProfile(profileOf({{0, 64}}));
    shield.applyProfile(profileOf({{0, 128}}));
    EXPECT_FALSE(shield.covers({0, 64}));
    EXPECT_TRUE(shield.covers({0, 128}));
}

TEST(ArchShield, StatsReportOverheadAndRows)
{
    ArchShield shield(ArchShieldConfig{});
    shield.applyProfile(profileOf({{0, 0}, {0, 64}, {0, kRowBits}}));
    MitigationStats s = shield.stats();
    EXPECT_EQ(s.protectedCells, 3u);
    EXPECT_EQ(s.protectedRows, 2u);
    EXPECT_DOUBLE_EQ(s.capacityOverhead, 0.04);
}

// ---------------- RAIDR ----------------

RaidrConfig
raidrConfig(uint64_t rows = 1000)
{
    RaidrConfig cfg;
    cfg.totalRows = rows;
    return cfg;
}

TEST(Raidr, DefaultAllRowsInSlowBin)
{
    Raidr raidr(raidrConfig());
    auto bins = raidr.bins();
    ASSERT_EQ(bins.size(), 3u);
    EXPECT_EQ(bins.back().rowCount, 1000u);
    EXPECT_EQ(bins.front().rowCount, 0u);
    // All rows at 1024 ms vs 64 ms: 16x fewer refreshes.
    EXPECT_NEAR(raidr.refreshWorkRelative(), 0.064 / 1.024, 1e-9);
}

TEST(Raidr, ProfiledRowsDemotedToFastBin)
{
    Raidr raidr(raidrConfig());
    raidr.applyProfile(profileOf({{0, 10}, {0, kRowBits * 5 + 3}}));
    auto bins = raidr.bins();
    EXPECT_EQ(bins[0].rowCount, 2u);
    EXPECT_EQ(bins[2].rowCount, 998u);
    EXPECT_TRUE(raidr.covers({0, 11}));       // same row as 10
    EXPECT_FALSE(raidr.covers({0, kRowBits})); // different row
    EXPECT_DOUBLE_EQ(raidr.rowInterval(0, 0), 0.064);
    EXPECT_DOUBLE_EQ(raidr.rowInterval(0, 1), 1.024);
}

TEST(Raidr, RefreshWorkIncreasesWithDemotions)
{
    Raidr raidr(raidrConfig());
    double before = raidr.refreshWorkRelative();
    raidr.applyProfile(profileOf({{0, 0}}));
    EXPECT_GT(raidr.refreshWorkRelative(), before);
    EXPECT_LT(raidr.refreshWorkRelative(), 1.0); // still beats default
}

TEST(Raidr, BinnedProfilesAssignFastestNeeded)
{
    RaidrConfig cfg = raidrConfig();
    cfg.binIntervals = {0.064, 0.256, 1.024};
    Raidr raidr(cfg);
    // Row 0 fails at 256 ms (needs 64 ms bin); row 1 fails only at
    // 1024 ms (needs 256 ms bin).
    RetentionProfile at_256 = profileOf({{0, 0}});
    RetentionProfile at_1024 = profileOf({{0, 0}, {0, kRowBits}});
    raidr.applyBinnedProfiles({at_256, at_1024});
    EXPECT_DOUBLE_EQ(raidr.rowInterval(0, 0), 0.064);
    EXPECT_DOUBLE_EQ(raidr.rowInterval(0, 1), 0.256);
    EXPECT_DOUBLE_EQ(raidr.rowInterval(0, 2), 1.024);
}

TEST(Raidr, BinnedProfilesCountValidation)
{
    Raidr raidr(raidrConfig());
    EXPECT_DEATH(raidr.applyBinnedProfiles({}), "expected");
}

TEST(Raidr, ConfigValidation)
{
    RaidrConfig cfg;
    cfg.totalRows = 0;
    EXPECT_DEATH(Raidr r(cfg), "totalRows");
    cfg.totalRows = 10;
    cfg.binIntervals = {0.064};
    EXPECT_DEATH(Raidr r(cfg), "two bins");
    cfg.binIntervals = {1.0, 0.5};
    EXPECT_DEATH(Raidr r(cfg), "sorted");
}

// ---------------- RowMapOut ----------------

RowMapConfig
rowMapConfig(uint64_t rows = 1000)
{
    RowMapConfig cfg;
    cfg.totalRows = rows;
    return cfg;
}

TEST(RowMapOut, MapsWholeRows)
{
    RowMapOut rm(rowMapConfig());
    rm.applyProfile(profileOf({{0, 5}}));
    EXPECT_TRUE(rm.covers({0, 0}));
    EXPECT_TRUE(rm.covers({0, kRowBits - 1}));
    EXPECT_FALSE(rm.covers({0, kRowBits}));
    EXPECT_EQ(rm.mappedRows(), 1u);
    EXPECT_DOUBLE_EQ(rm.capacityLoss(), 0.001);
}

TEST(RowMapOut, BudgetEnforced)
{
    RowMapConfig cfg = rowMapConfig(1000);
    cfg.maxMappedFraction = 0.002; // 2 rows
    RowMapOut rm(cfg);
    rm.applyProfile(profileOf({{0, 0}, {0, kRowBits}, {0, 2 * kRowBits}}));
    EXPECT_TRUE(rm.budgetExceeded());
    rm.applyProfile(profileOf({{0, 0}}));
    EXPECT_FALSE(rm.budgetExceeded());
}

TEST(RowMapOut, StatsReflectCapacityLoss)
{
    RowMapOut rm(rowMapConfig(100));
    rm.applyProfile(profileOf({{0, 0}, {0, kRowBits}}));
    MitigationStats s = rm.stats();
    EXPECT_EQ(s.protectedRows, 2u);
    EXPECT_DOUBLE_EQ(s.capacityOverhead, 0.02);
    EXPECT_DOUBLE_EQ(s.refreshWorkRelative, 0.98);
}

TEST(RowMapOut, FalsePositivesInflateCapacityLoss)
{
    // The paper's point: mechanisms that discard rows are the most
    // sensitive to false positives.
    RowMapOut rm(rowMapConfig(1000));
    std::vector<ChipFailure> true_fails = {{0, 0}};
    std::vector<ChipFailure> with_fps = {{0, 0},
                                         {0, kRowBits * 10},
                                         {0, kRowBits * 20}};
    rm.applyProfile(profileOf(true_fails));
    double loss_clean = rm.capacityLoss();
    rm.applyProfile(profileOf(with_fps));
    EXPECT_NEAR(rm.capacityLoss(), 3.0 * loss_clean, 1e-9);
}

} // namespace
} // namespace mitigation
} // namespace reaper
