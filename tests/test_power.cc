/**
 * @file
 * Tests for the DRAM power model: command energies, refresh power
 * scaling with density and interval, and profiling power (Fig. 12).
 */

#include <gtest/gtest.h>

#include "power/drampower.h"

namespace reaper {
namespace power {
namespace {

DramPowerModel
model(unsigned gbit, unsigned chips = 32)
{
    return DramPowerModel(EnergyParams::lpddr4(), gbit, chips);
}

TEST(DramPower, RowsPerChip)
{
    EXPECT_EQ(model(8).rowsPerChip(), gibitToBits(8) / (2048 * 8));
    EXPECT_EQ(model(64).rowsPerChip(), 8 * model(8).rowsPerChip());
}

TEST(DramPower, RefreshPowerScalesWithDensity)
{
    double p8 = model(8).refreshPower(0.064);
    double p64 = model(64).refreshPower(0.064);
    EXPECT_NEAR(p64 / p8, 8.0, 1e-9);
}

TEST(DramPower, RefreshPowerInverseInInterval)
{
    DramPowerModel m = model(64);
    EXPECT_NEAR(m.refreshPower(0.064) / m.refreshPower(1.024), 16.0,
                1e-9);
    EXPECT_EQ(m.refreshPower(0.0), 0.0);
}

TEST(DramPower, RefreshDominatesAtHighDensity)
{
    // The motivation of the paper: refresh is a large fraction of DRAM
    // power at high densities (up to ~50% [63]). For a 32-chip 64 Gb
    // module at 64 ms with a typical activity level, the refresh
    // fraction should land in the 30-55% band.
    DramPowerModel m = model(64);
    sim::CommandCounts counts;
    Seconds window = 1.0;
    counts.refab = static_cast<uint64_t>(8192 / 0.064);
    counts.act = 2000000; // moderate activity
    counts.rd = 12000000;
    counts.wr = 4000000;
    PowerBreakdown p = m.fromCounts(counts, window);
    EXPECT_GT(p.refreshFraction(), 0.30);
    EXPECT_LT(p.refreshFraction(), 0.55);
}

TEST(DramPower, RefreshSmallAtLowDensity)
{
    DramPowerModel m = model(8);
    sim::CommandCounts counts;
    counts.refab = static_cast<uint64_t>(8192 / 0.064);
    counts.act = 2000000;
    counts.rd = 12000000;
    counts.wr = 4000000;
    PowerBreakdown p = m.fromCounts(counts, 1.0);
    EXPECT_LT(p.refreshFraction(), 0.20);
}

TEST(DramPower, FromCountsMatchesAnalyticRefresh)
{
    DramPowerModel m = model(16);
    sim::CommandCounts counts;
    counts.refab = static_cast<uint64_t>(8192 / 0.064); // 1 second
    PowerBreakdown p = m.fromCounts(counts, 1.0);
    EXPECT_NEAR(p.refresh, m.refreshPower(0.064),
                m.refreshPower(0.064) * 0.001);
}

TEST(DramPower, BackgroundScalesWithChips)
{
    EXPECT_NEAR(model(8, 32).backgroundPower(),
                2.0 * model(8, 16).backgroundPower(), 1e-12);
}

TEST(DramPower, TotalSumsComponents)
{
    PowerBreakdown p;
    p.activate = 1;
    p.readWrite = 2;
    p.refresh = 3;
    p.background = 4;
    EXPECT_DOUBLE_EQ(p.total(), 10.0);
    EXPECT_DOUBLE_EQ(p.refreshFraction(), 0.3);
}

TEST(DramPower, ProfilingRoundEnergyScalesWithWork)
{
    DramPowerModel m = model(8);
    double one = m.profilingRoundEnergy(1, 1);
    EXPECT_NEAR(m.profilingRoundEnergy(16, 6) / one, 96.0, 1e-9);
    // Bigger modules cost proportionally more.
    EXPECT_NEAR(model(64).profilingRoundEnergy(1, 1) / one, 8.0, 1e-9);
}

TEST(DramPower, ProfilingPowerSmallAgainstDramPower)
{
    // Fig. 12's observation: profiling power is a small fraction of
    // DRAM power because most of a round is spent waiting for the
    // retention interval, not accessing. (The paper's printed
    // nanowatt scale is not reproducible with any plausible
    // energy-per-bit; see EXPERIMENTS.md. The *scaling* with chip
    // size and reprofiling interval is.)
    DramPowerModel m = model(64);
    double aggressive = m.profilingPower(16, 6, hoursToSec(4.0));
    EXPECT_GT(aggressive, 0.0);
    EXPECT_LT(aggressive, 0.3 * m.backgroundPower());
    double relaxed = m.profilingPower(16, 6, hoursToSec(24.0));
    EXPECT_LT(relaxed, 0.05 * m.backgroundPower());
}

TEST(DramPower, ProfilingPowerInverseInInterval)
{
    DramPowerModel m = model(8);
    EXPECT_NEAR(m.profilingPower(16, 6, hoursToSec(1.0)) /
                    m.profilingPower(16, 6, hoursToSec(4.0)),
                4.0, 1e-9);
}

TEST(DramPower, Validation)
{
    EXPECT_DEATH(DramPowerModel(EnergyParams::lpddr4(), 0, 32),
                 "must be > 0");
    DramPowerModel m = model(8);
    sim::CommandCounts counts;
    EXPECT_DEATH(m.fromCounts(counts, 0.0), "window");
    EXPECT_DEATH(m.profilingRoundEnergy(0, 1), "iterations");
    EXPECT_DEATH(m.profilingPower(1, 1, 0.0), "interval");
}

} // namespace
} // namespace power
} // namespace reaper
