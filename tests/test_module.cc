/**
 * @file
 * Tests for the multi-chip DRAM module.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "dram/module.h"

namespace reaper {
namespace dram {
namespace {

ModuleConfig
smallModule(uint32_t chips = 4, uint64_t seed = 1)
{
    ModuleConfig cfg;
    cfg.numChips = chips;
    cfg.chipCapacityBits = 512ull * 1024 * 1024; // 64 MB per chip
    cfg.seed = seed;
    cfg.envelope = {2.5, 50.0};
    return cfg;
}

TEST(DramModule, RejectsZeroChips)
{
    ModuleConfig cfg = smallModule(1);
    cfg.numChips = 0;
    EXPECT_DEATH(DramModule m(cfg), "numChips");
}

TEST(DramModule, CapacityAggregation)
{
    DramModule m(smallModule(4));
    EXPECT_EQ(m.numChips(), 4u);
    EXPECT_EQ(m.capacityBits(), 4ull * 512 * 1024 * 1024);
}

TEST(DramModule, ChipsHaveDistinctPopulations)
{
    DramModule m(smallModule(2));
    ASSERT_GT(m.chip(0).weakCellCount(), 0u);
    ASSERT_GT(m.chip(1).weakCellCount(), 0u);
    // Chip variation perturbs per-chip parameters; identical
    // populations would indicate seed reuse.
    auto t0 = m.chip(0).trueFailingSet(2.0, 45.0);
    auto t1 = m.chip(1).trueFailingSet(2.0, 45.0);
    EXPECT_NE(t0, t1);
}

TEST(DramModule, BroadcastOpsKeepChipsInLockstep)
{
    DramModule m(smallModule(3));
    m.setTemperature(48.0);
    m.writePattern(DataPattern::Checkerboard);
    m.disableRefresh();
    m.wait(1.0);
    m.enableRefresh();
    for (uint32_t i = 0; i < m.numChips(); ++i) {
        EXPECT_EQ(m.chip(i).temperature(), 48.0);
        EXPECT_EQ(m.chip(i).now(), 1.0);
        EXPECT_EQ(m.chip(i).lastPattern(), DataPattern::Checkerboard);
        EXPECT_TRUE(m.chip(i).refreshEnabled());
    }
    EXPECT_EQ(m.now(), 1.0);
}

TEST(DramModule, ReadAndCompareTagsChips)
{
    DramModule m(smallModule(4, 2));
    m.writePattern(DataPattern::Random);
    m.disableRefresh();
    m.wait(2.2);
    m.enableRefresh();
    auto fails = m.readAndCompare();
    ASSERT_GT(fails.size(), 0u);
    EXPECT_TRUE(std::is_sorted(fails.begin(), fails.end()));
    for (const auto &f : fails) {
        EXPECT_LT(f.chip, 4u);
        EXPECT_LT(f.addr, 512ull * 1024 * 1024);
    }
}

TEST(DramModule, TrueFailingSetAggregatesAllChips)
{
    DramModule m(smallModule(2, 3));
    auto truth = m.trueFailingSet(2.0, 45.0);
    size_t per_chip = m.chip(0).trueFailingSet(2.0, 45.0).size() +
                      m.chip(1).trueFailingSet(2.0, 45.0).size();
    EXPECT_EQ(truth.size(), per_chip);
    EXPECT_TRUE(std::is_sorted(truth.begin(), truth.end()));
}

TEST(DramModule, ChipVariationSpreadsFailureCounts)
{
    ModuleConfig cfg = smallModule(8, 4);
    cfg.chipCapacityBits = 2ull * 1024 * 1024 * 1024; // 256 MB
    cfg.chipVariation = 0.3;
    DramModule m(cfg);
    std::vector<double> counts;
    for (uint32_t i = 0; i < m.numChips(); ++i)
        counts.push_back(
            static_cast<double>(m.chip(i).trueFailingSet(2.0, 45.0)
                                    .size()));
    double lo = *std::min_element(counts.begin(), counts.end());
    double hi = *std::max_element(counts.begin(), counts.end());
    ASSERT_GT(lo, 0.0);
    EXPECT_GT(hi / lo, 1.2); // variation should be visible
}

TEST(DramModule, NoVariationUsesNominalParams)
{
    ModuleConfig cfg = smallModule(1, 5);
    cfg.chipVariation = 0.0;
    DramModule m(cfg);
    EXPECT_NEAR(m.chip(0).model().params().berAt1024ms,
                vendorParams(Vendor::B).berAt1024ms, 1e-12);
}

TEST(ChipFailure, Ordering)
{
    ChipFailure a{0, 5}, b{0, 9}, c{1, 1};
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
    EXPECT_EQ(a, (ChipFailure{0, 5}));
}

} // namespace
} // namespace dram
} // namespace reaper
