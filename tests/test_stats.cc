/**
 * @file
 * Tests for descriptive statistics utilities.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace reaper {
namespace {

TEST(RunningStats, Empty)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, KnownValues)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // sample variance
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(3.5);
    EXPECT_EQ(s.mean(), 3.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 3.5);
    EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential)
{
    Rng r(42);
    RunningStats all, a, b;
    for (int i = 0; i < 1000; ++i) {
        double x = r.normal(1.0, 2.0);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_EQ(b.mean(), 2.0);
}

TEST(Percentile, Empty)
{
    EXPECT_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0 / 3.0), 2.0);
}

TEST(Percentile, UnsortedInput)
{
    EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 0.5), 5.0);
}

TEST(Percentile, ClampsQ)
{
    std::vector<double> v = {1.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 2.0), 2.0);
}

TEST(BoxStats, FiveNumberSummary)
{
    std::vector<double> v;
    for (int i = 1; i <= 101; ++i)
        v.push_back(static_cast<double>(i));
    BoxStats b = BoxStats::fromSamples(v);
    EXPECT_EQ(b.lo, 1.0);
    EXPECT_EQ(b.hi, 101.0);
    EXPECT_EQ(b.median, 51.0);
    EXPECT_EQ(b.q1, 26.0);
    EXPECT_EQ(b.q3, 76.0);
    EXPECT_EQ(b.mean, 51.0);
    EXPECT_EQ(b.n, 101u);
}

TEST(BoxStats, Empty)
{
    BoxStats b = BoxStats::fromSamples({});
    EXPECT_EQ(b.n, 0u);
    EXPECT_EQ(b.median, 0.0);
}

TEST(Histogram, LinearBinning)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(9.99);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.totalCount(), 3u);
    EXPECT_DOUBLE_EQ(h.binLo(5), 5.0);
    EXPECT_DOUBLE_EQ(h.binHi(5), 6.0);
    EXPECT_DOUBLE_EQ(h.binCenter(5), 5.5);
}

TEST(Histogram, OutOfRangeClamps)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);
    h.add(100.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
}

TEST(Histogram, Weights)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.2, 5);
    EXPECT_EQ(h.binCount(0), 5u);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 1.0);
}

TEST(Histogram, LogBinning)
{
    Histogram h(1.0, 1000.0, 3, /*logarithmic=*/true);
    h.add(2.0);   // [1, 10)
    h.add(50.0);  // [10, 100)
    h.add(500.0); // [100, 1000)
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_NEAR(h.binLo(1), 10.0, 1e-9);
    EXPECT_NEAR(h.binCenter(0), std::sqrt(10.0), 1e-9);
}

TEST(Histogram, FractionEmptyIsZero)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_EQ(h.binFraction(2), 0.0);
}

TEST(Histogram, InvalidConstruction)
{
    EXPECT_DEATH(Histogram(0.0, 1.0, 0), "bins");
    EXPECT_DEATH(Histogram(1.0, 1.0, 4), "exceed");
    EXPECT_DEATH(Histogram(0.0, 1.0, 4, true), "logarithmic");
}

} // namespace
} // namespace reaper
