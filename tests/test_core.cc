/**
 * @file
 * Tests for the trace-driven core model: retirement, window blocking,
 * MSHR limits, and IPC accounting.
 */

#include <gtest/gtest.h>

#include <deque>

#include "sim/core.h"

namespace reaper {
namespace sim {
namespace {

Trace
makeTrace(std::vector<TraceEntry> entries)
{
    Trace t;
    t.name = "test";
    t.entries = std::move(entries);
    return t;
}

CoreConfig
baseCore()
{
    CoreConfig cfg;
    cfg.windowSize = 8;
    cfg.issueWidth = 2;
    cfg.mshrs = 2;
    cfg.cpuPerMemCycle = 1.0; // 1:1 clocks simplify cycle math
    return cfg;
}

/** A memory system that answers reads after a fixed latency. */
struct FakeMemory
{
    Cycle latency = 10;
    Cycle now = 0;
    std::deque<std::pair<Cycle, std::function<void()>>> pending;
    int reads = 0;
    int writes = 0;
    bool accepting = true;

    SendFn
    sender()
    {
        return [this](const MemRequest &req) {
            if (!accepting)
                return false;
            if (req.isWrite) {
                ++writes;
                return true;
            }
            ++reads;
            pending.emplace_back(now + latency, req.onComplete);
            return true;
        };
    }

    void
    tick()
    {
        ++now;
        while (!pending.empty() && pending.front().first <= now) {
            pending.front().second();
            pending.pop_front();
        }
    }
};

TEST(Core, EmptyTraceIsDone)
{
    Trace t = makeTrace({});
    Core core(baseCore(), t, false);
    EXPECT_TRUE(core.traceDone());
    EXPECT_EQ(core.retiredInstructions(), 0u);
}

TEST(Core, BubblesRetireAtIssueWidth)
{
    // One record: 10 bubbles + 1 read.
    Trace t = makeTrace({{10, 0x100, false}});
    Core core(baseCore(), t, false);
    FakeMemory mem;
    auto send = mem.sender();
    while (!core.traceDone() && mem.now < 1000) {
        core.tick(send);
        mem.tick();
    }
    EXPECT_TRUE(core.traceDone());
    EXPECT_EQ(core.retiredInstructions(), 11u);
    // 11 instructions at width 2 with a 10-cycle load: > 6 cycles.
    EXPECT_GE(core.cpuCycles(), 6u);
}

TEST(Core, LoadBlocksRetirementUntilDataReturns)
{
    Trace t = makeTrace({{0, 0x100, false}, {6, 0, false}});
    CoreConfig cfg = baseCore();
    Core core(cfg, t, false);
    FakeMemory mem;
    mem.latency = 50;
    auto send = mem.sender();
    // Run well past issue of the first load; with the load blocking
    // the window head, at most windowSize-1 bubbles can retire... in
    // fact none retire because the load is the head.
    for (int i = 0; i < 20; ++i) {
        core.tick(send);
        mem.tick();
    }
    EXPECT_EQ(core.retiredInstructions(), 0u);
    while (!core.traceDone() && mem.now < 1000) {
        core.tick(send);
        mem.tick();
    }
    EXPECT_EQ(core.retiredInstructions(), 8u);
}

TEST(Core, StoresRetireImmediately)
{
    Trace t = makeTrace({{0, 0x100, true}, {0, 0x200, true}});
    Core core(baseCore(), t, false);
    FakeMemory mem;
    auto send = mem.sender();
    core.tick(send);
    EXPECT_EQ(core.retiredInstructions(), 2u);
    EXPECT_EQ(mem.writes, 2);
    EXPECT_TRUE(core.traceDone());
}

TEST(Core, MshrLimitThrottlesOutstandingReads)
{
    std::vector<TraceEntry> entries;
    for (int i = 0; i < 6; ++i)
        entries.push_back({0, static_cast<uint64_t>(i) * 64, false});
    Trace t = makeTrace(entries);
    CoreConfig cfg = baseCore();
    cfg.mshrs = 2;
    Core core(cfg, t, false);
    FakeMemory mem;
    mem.latency = 100;
    auto send = mem.sender();
    core.tick(send);
    core.tick(send);
    EXPECT_LE(core.outstandingReads(), 2u);
    EXPECT_EQ(mem.reads, 2);
}

TEST(Core, StallsWhenMemoryRejects)
{
    Trace t = makeTrace({{0, 0x100, false}});
    Core core(baseCore(), t, false);
    FakeMemory mem;
    mem.accepting = false;
    auto send = mem.sender();
    for (int i = 0; i < 5; ++i)
        core.tick(send);
    EXPECT_EQ(mem.reads, 0);
    EXPECT_FALSE(core.traceDone());
    mem.accepting = true;
    while (!core.traceDone() && mem.now < 1000) {
        core.tick(send);
        mem.tick();
    }
    EXPECT_TRUE(core.traceDone());
}

TEST(Core, LoopingTraceNeverEnds)
{
    Trace t = makeTrace({{3, 0x100, true}});
    Core core(baseCore(), t, true);
    FakeMemory mem;
    auto send = mem.sender();
    for (int i = 0; i < 100; ++i) {
        core.tick(send);
        mem.tick();
    }
    EXPECT_FALSE(core.traceDone());
    EXPECT_GT(core.retiredInstructions(), 50u);
}

TEST(Core, CpuClockRatioScalesThroughput)
{
    auto retired_with_ratio = [](double ratio) {
        Trace t = makeTrace({{999, 0x100, true}});
        CoreConfig cfg = baseCore();
        cfg.cpuPerMemCycle = ratio;
        Core core(cfg, t, true);
        FakeMemory mem;
        auto send = mem.sender();
        for (int i = 0; i < 1000; ++i) {
            core.tick(send);
            mem.tick();
        }
        return core.retiredInstructions();
    };
    uint64_t slow = retired_with_ratio(1.0);
    uint64_t fast = retired_with_ratio(2.5);
    EXPECT_NEAR(static_cast<double>(fast) / static_cast<double>(slow),
                2.5, 0.1);
}

TEST(Core, IpcBoundedByIssueWidth)
{
    Trace t = makeTrace({{1000, 0x100, true}});
    CoreConfig cfg = baseCore();
    cfg.issueWidth = 3;
    Core core(cfg, t, true);
    FakeMemory mem;
    auto send = mem.sender();
    for (int i = 0; i < 2000; ++i) {
        core.tick(send);
        mem.tick();
    }
    EXPECT_LE(core.ipc(), 3.0 + 1e-9);
    EXPECT_GT(core.ipc(), 2.5); // pure bubbles: near-peak IPC
}

TEST(Core, ConfigValidation)
{
    Trace t = makeTrace({});
    CoreConfig cfg = baseCore();
    cfg.windowSize = 0;
    EXPECT_DEATH(Core core(cfg, t), "windowSize");
    cfg = baseCore();
    cfg.cpuPerMemCycle = 0.0;
    EXPECT_DEATH(Core core(cfg, t), "cpuPerMemCycle");
}

} // namespace
} // namespace sim
} // namespace reaper
