/**
 * @file
 * Tests for the ECC-scrubbing (AVATAR-style) profiler and the paper's
 * argument that passive profiling cannot match active profiling
 * coverage (Section 3.2).
 */

#include <gtest/gtest.h>

#include "profiling/brute_force.h"
#include "profiling/ecc_scrub.h"

namespace reaper {
namespace profiling {
namespace {

dram::ModuleConfig
testModule(uint64_t seed = 1)
{
    dram::ModuleConfig cfg;
    cfg.numChips = 1;
    cfg.chipCapacityBits = 4ull * 1024 * 1024 * 1024; // 512 MB
    cfg.seed = seed;
    cfg.envelope = {2.5, 50.0};
    return cfg;
}

testbed::HostConfig
instantHost()
{
    testbed::HostConfig h;
    h.useChamber = false;
    return h;
}

TEST(EccScrub, FindsSomeFailures)
{
    dram::DramModule m(testModule(1));
    testbed::SoftMcHost host(m, instantHost());
    EccScrubConfig cfg;
    cfg.target = {1.5, 45.0};
    cfg.scrubRounds = 8;
    EccScrubProfiler scrub;
    ProfilingResult r = scrub.run(host, cfg);
    EXPECT_GT(r.profile.size(), 0u);
    EXPECT_EQ(r.iterationsRun, 8);
}

TEST(EccScrub, AsymptoticCoverageBelowActiveProfiling)
{
    // The core Section 3.2 result: passive scrubbing only ever observes
    // the currently stored data, so even with many scrub windows its
    // coverage of all possible (worst-case-pattern) failures stays
    // below what active multi-pattern brute force achieves.
    dram::DramModule scrub_m(testModule(2));
    testbed::SoftMcHost scrub_host(scrub_m, instantHost());
    EccScrubConfig scfg;
    scfg.target = {1.5, 45.0};
    scfg.scrubRounds = 48;
    EccScrubProfiler scrub;
    ProfilingResult sr = scrub.run(scrub_host, scfg);
    auto struth = scrub_m.trueFailingSet(1.5, 45.0);
    double scrub_cov = scoreProfile(sr.profile, struth, sr.runtime)
                           .coverage;

    dram::DramModule bf_m(testModule(2));
    testbed::SoftMcHost bf_host(bf_m, instantHost());
    BruteForceConfig bcfg;
    bcfg.test = {1.5, 45.0};
    bcfg.iterations = 8;
    BruteForceProfiler bf;
    ProfilingResult br = bf.run(bf_host, bcfg);
    auto btruth = bf_m.trueFailingSet(1.5, 45.0);
    double bf_cov = scoreProfile(br.profile, btruth, br.runtime).coverage;

    EXPECT_LT(scrub_cov, bf_cov);
}

TEST(EccScrub, CannotReachHighCoverageEvenWithManyRounds)
{
    dram::DramModule m(testModule(3));
    testbed::SoftMcHost host(m, instantHost());
    EccScrubConfig cfg;
    cfg.target = {1.5, 45.0};
    cfg.scrubRounds = 64;
    EccScrubProfiler scrub;
    ProfilingResult r = scrub.run(host, cfg);
    auto truth = m.trueFailingSet(1.5, 45.0);
    ProfileMetrics metrics = scoreProfile(r.profile, truth, r.runtime);
    // Only one data environment per change window: DPD-elusive cells
    // are missed.
    EXPECT_LT(metrics.coverage, 0.98);
}

TEST(EccScrub, DataChangesImproveCoverage)
{
    auto coverage_with_changes = [](int rounds_per_change) {
        dram::DramModule m(testModule(4));
        testbed::SoftMcHost host(m, instantHost());
        EccScrubConfig cfg;
        cfg.target = {1.5, 45.0};
        cfg.scrubRounds = 32;
        cfg.roundsPerDataChange = rounds_per_change;
        EccScrubProfiler scrub;
        ProfilingResult r = scrub.run(host, cfg);
        auto truth = m.trueFailingSet(1.5, 45.0);
        return scoreProfile(r.profile, truth, r.runtime).coverage;
    };
    // Frequent data turnover exposes more patterns than a static image.
    EXPECT_GT(coverage_with_changes(1), coverage_with_changes(32));
}

TEST(EccScrub, RejectsBadConfig)
{
    dram::DramModule m(testModule(5));
    testbed::SoftMcHost host(m, instantHost());
    EccScrubProfiler scrub;
    EccScrubConfig cfg;
    cfg.scrubRounds = 0;
    EXPECT_DEATH(scrub.run(host, cfg), "scrubRounds");
    cfg.scrubRounds = 1;
    cfg.roundsPerDataChange = 0;
    EXPECT_DEATH(scrub.run(host, cfg), "roundsPerDataChange");
}

} // namespace
} // namespace profiling
} // namespace reaper
