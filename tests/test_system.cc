/**
 * @file
 * Tests for the full-system simulator: end-to-end request flow and the
 * refresh-overhead behaviour the paper's evaluation depends on.
 */

#include <gtest/gtest.h>

#include "sim/system.h"
#include "workload/synthetic.h"

namespace reaper {
namespace sim {
namespace {

SystemConfig
baseSystem(unsigned chip_gbit = 8, Seconds refresh = 0.064)
{
    SystemConfig cfg;
    cfg.channels = 2;
    cfg.llc.sizeBytes = 1ull * 1024 * 1024; // small LLC: misses matter
    cfg.setDram(chip_gbit, refresh);
    return cfg;
}

std::vector<Trace>
memoryHeavyTraces(int cores, uint64_t seed = 1)
{
    workload::BenchmarkSpec spec = workload::benchmarkByName("mcf");
    std::vector<Trace> traces;
    for (int i = 0; i < cores; ++i) {
        traces.push_back(workload::generateTrace(
            spec, 20000, seed + static_cast<uint64_t>(i),
            (static_cast<uint64_t>(i) + 1) << 32));
    }
    return traces;
}

TEST(System, SetDramConfiguresTimingAndRefresh)
{
    SystemConfig cfg;
    cfg.setDram(64, 1.024);
    EXPECT_EQ(cfg.ctrl.timing.tRFCab, 1600u);
    EXPECT_NEAR(cfg.ctrl.refreshWindowScale, 16.0, 1e-9);
    EXPECT_EQ(cfg.ctrl.rowsPerBank,
              gibitToBits(64) / (8ull * 2048 * 8));
    cfg.setDram(8, 0.0);
    EXPECT_EQ(cfg.ctrl.refreshWindowScale, 0.0);
}

TEST(System, RunsAndRetiresInstructions)
{
    System sys(baseSystem(), memoryHeavyTraces(2));
    sys.run(50000);
    SystemStats stats = sys.stats();
    ASSERT_EQ(stats.coreIpc.size(), 2u);
    for (double ipc : stats.coreIpc) {
        EXPECT_GT(ipc, 0.0);
        EXPECT_LE(ipc, 3.0);
    }
    EXPECT_GT(stats.channels.commands.rd, 0u);
    EXPECT_GT(stats.llc.misses, 0u);
    EXPECT_EQ(stats.memCycles, 50000u);
}

TEST(System, DeterministicAcrossRuns)
{
    auto run = []() {
        System sys(baseSystem(), memoryHeavyTraces(2, 7));
        sys.run(20000);
        return sys.stats();
    };
    SystemStats a = run();
    SystemStats b = run();
    EXPECT_EQ(a.coreInsts, b.coreInsts);
    EXPECT_EQ(a.channels.commands.rd, b.channels.commands.rd);
}

TEST(System, RefreshCommandsIssued)
{
    System sys(baseSystem(8, 0.064), memoryHeavyTraces(1));
    Cycle cycles = 200000;
    sys.run(cycles);
    // 2 channels x one REFab per tREFI.
    uint64_t expected = 2 * (cycles / lpddr4_3200(8).tREFI);
    EXPECT_NEAR(static_cast<double>(sys.stats().channels.commands.refab),
                static_cast<double>(expected), 4.0);
}

TEST(System, NoRefreshBeatsDefaultRefresh)
{
    // The core claim behind the paper: refresh costs performance.
    System with_ref(baseSystem(64, 0.064), memoryHeavyTraces(4));
    with_ref.run(200000);
    System no_ref(baseSystem(64, 0.0), memoryHeavyTraces(4));
    no_ref.run(200000);
    EXPECT_GT(no_ref.stats().ipcSum(), with_ref.stats().ipcSum());
}

TEST(System, LongerRefreshIntervalImprovesThroughput)
{
    System base(baseSystem(64, 0.064), memoryHeavyTraces(4));
    base.run(200000);
    System relaxed(baseSystem(64, 1.024), memoryHeavyTraces(4));
    relaxed.run(200000);
    EXPECT_GT(relaxed.stats().ipcSum(), base.stats().ipcSum());
}

TEST(System, RefreshHurtsMoreAtHigherDensity)
{
    // tRFC grows with density: 64 Gb chips lose more to refresh than
    // 8 Gb chips (why Fig. 13's gains grow with chip size).
    auto refresh_penalty = [](unsigned gbit) {
        System with_ref(baseSystem(gbit, 0.064), memoryHeavyTraces(4));
        with_ref.run(150000);
        System no_ref(baseSystem(gbit, 0.0), memoryHeavyTraces(4));
        no_ref.run(150000);
        return 1.0 - with_ref.stats().ipcSum() /
                         no_ref.stats().ipcSum();
    };
    double small = refresh_penalty(8);
    double large = refresh_penalty(64);
    EXPECT_GT(large, small);
    EXPECT_GT(large, 0.02); // the penalty is material at 64 Gb
}

TEST(System, CacheFriendlyWorkloadHasHighIpc)
{
    workload::BenchmarkSpec compute =
        workload::benchmarkByName("povray");
    std::vector<Trace> traces = {workload::generateTrace(
        compute, 5000, 1, 1ull << 32)};
    SystemConfig cfg = baseSystem();
    cfg.llc.sizeBytes = 8ull * 1024 * 1024; // large LLC
    System sys(cfg, traces);
    sys.run(100000);
    EXPECT_GT(sys.stats().coreIpc.at(0), 2.0);
}

TEST(System, MemoryBoundWorkloadHasLowIpc)
{
    System sys(baseSystem(), memoryHeavyTraces(1));
    sys.run(100000);
    EXPECT_LT(sys.stats().coreIpc.at(0), 1.5);
}

TEST(System, WritebacksReachDram)
{
    // A write-heavy random workload must generate DRAM write traffic
    // via LLC writebacks.
    workload::BenchmarkSpec spec = workload::benchmarkByName("mcf");
    spec.readFraction = 0.3;
    std::vector<Trace> traces = {workload::generateTrace(
        spec, 20000, 3, 1ull << 32)};
    System sys(baseSystem(), traces);
    sys.run(150000);
    EXPECT_GT(sys.stats().channels.commands.wr, 0u);
}

TEST(System, ChannelInterleavingUsesAllChannels)
{
    SystemConfig cfg = baseSystem();
    System sys(cfg, memoryHeavyTraces(2));
    sys.run(50000);
    // Both channels must see traffic: total reads spread (checked via
    // aggregate being substantially larger than one channel could
    // serve at the burst rate... simpler: reads > 0 and misses > 0).
    EXPECT_GT(sys.stats().channels.commands.rd, 100u);
}

TEST(System, ConfigValidation)
{
    SystemConfig cfg = baseSystem();
    EXPECT_DEATH(System(cfg, {}), "at least one trace");
    cfg.channels = 0;
    EXPECT_DEATH(System(cfg, memoryHeavyTraces(1)), "channel");
}

} // namespace
} // namespace sim
} // namespace reaper
