/**
 * @file
 * Tests for common::Expected — the unified recoverable-error return
 * type: construction from either side, checked access, the monadic
 * combinators (map/andThen/orElse), Status, and the error taxonomy.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/expected.h"

namespace reaper {
namespace common {
namespace {

Expected<int>
parseDigit(char c)
{
    if (c < '0' || c > '9')
        return Error::parse(std::string("not a digit: '") + c + "'");
    return c - '0';
}

TEST(Expected, ValueSideBasics)
{
    Expected<int> e(42);
    EXPECT_TRUE(e.hasValue());
    EXPECT_TRUE(static_cast<bool>(e));
    EXPECT_EQ(e.value(), 42);
    EXPECT_EQ(e.valueOr(-1), 42);
}

TEST(Expected, ErrorSideBasics)
{
    Expected<int> e(Error::notFound("no such key"));
    EXPECT_FALSE(e.hasValue());
    EXPECT_FALSE(static_cast<bool>(e));
    EXPECT_EQ(e.error().category, ErrorCategory::NotFound);
    EXPECT_EQ(e.error().message, "no such key");
    EXPECT_EQ(e.valueOr(-1), -1);
}

TEST(Expected, WrongSideAccessPanics)
{
    Expected<int> ok(7);
    Expected<int> bad(Error::io("boom"));
    EXPECT_DEATH((void)ok.error(), "error\\(\\) called");
    EXPECT_DEATH((void)bad.value(), "value\\(\\) called");
}

TEST(Expected, EveryCategoryHelperSetsItsCategory)
{
    EXPECT_EQ(Error::io("m").category, ErrorCategory::Io);
    EXPECT_EQ(Error::parse("m").category, ErrorCategory::Parse);
    EXPECT_EQ(Error::notFound("m").category, ErrorCategory::NotFound);
    EXPECT_EQ(Error::corrupt("m").category, ErrorCategory::Corrupt);
    EXPECT_EQ(Error::fault("m").category, ErrorCategory::Fault);
    EXPECT_EQ(Error::invalidConfig("m").category,
              ErrorCategory::InvalidConfig);
    EXPECT_EQ(Error::internal("m").category, ErrorCategory::Internal);
}

TEST(Expected, DescribePrefixesCategoryName)
{
    EXPECT_EQ(Error::io("cannot open x").describe(),
              "io: cannot open x");
    EXPECT_EQ(Error::invalidConfig("bad").describe(),
              "invalid_config: bad");
}

TEST(Expected, CategoryNamesAreDistinct)
{
    const ErrorCategory cats[] = {
        ErrorCategory::Io,      ErrorCategory::Parse,
        ErrorCategory::NotFound, ErrorCategory::Corrupt,
        ErrorCategory::Fault,   ErrorCategory::InvalidConfig,
        ErrorCategory::Internal,
    };
    std::vector<std::string> names;
    for (ErrorCategory c : cats)
        names.push_back(toString(c));
    for (size_t i = 0; i < names.size(); ++i)
        for (size_t j = i + 1; j < names.size(); ++j)
            EXPECT_NE(names[i], names[j]);
}

TEST(Expected, MapTransformsValueAndPropagatesError)
{
    Expected<int> ok(21);
    Expected<int> doubled = ok.map([](int v) { return v * 2; });
    ASSERT_TRUE(doubled.hasValue());
    EXPECT_EQ(doubled.value(), 42);

    // map can change the value type.
    Expected<std::string> str =
        ok.map([](int v) { return std::to_string(v); });
    ASSERT_TRUE(str.hasValue());
    EXPECT_EQ(str.value(), "21");

    Expected<int> bad(Error::corrupt("torn"));
    Expected<int> mapped = bad.map([](int v) { return v * 2; });
    ASSERT_FALSE(mapped.hasValue());
    EXPECT_EQ(mapped.error().category, ErrorCategory::Corrupt);
}

TEST(Expected, AndThenChainsFallibleSteps)
{
    Expected<int> a = parseDigit('7').andThen(
        [](int v) -> Expected<int> { return v + 1; });
    ASSERT_TRUE(a.hasValue());
    EXPECT_EQ(a.value(), 8);

    // First failure short-circuits the chain.
    bool second_ran = false;
    Expected<int> b =
        parseDigit('x').andThen([&](int v) -> Expected<int> {
            second_ran = true;
            return v + 1;
        });
    ASSERT_FALSE(b.hasValue());
    EXPECT_FALSE(second_ran);
    EXPECT_EQ(b.error().category, ErrorCategory::Parse);
}

TEST(Expected, OrElseRecoversOnlyOnError)
{
    Expected<int> ok(1);
    Expected<int> kept =
        ok.orElse([](const Error &) -> Expected<int> { return 99; });
    ASSERT_TRUE(kept.hasValue());
    EXPECT_EQ(kept.value(), 1);

    Expected<int> bad(Error::fault("transient"));
    Expected<int> recovered =
        bad.orElse([](const Error &e) -> Expected<int> {
            EXPECT_EQ(e.category, ErrorCategory::Fault);
            return 99;
        });
    ASSERT_TRUE(recovered.hasValue());
    EXPECT_EQ(recovered.value(), 99);

    // Recovery may itself fail with a different category.
    Expected<int> rethrown =
        bad.orElse([](const Error &) -> Expected<int> {
            return Error::internal("gave up");
        });
    ASSERT_FALSE(rethrown.hasValue());
    EXPECT_EQ(rethrown.error().category, ErrorCategory::Internal);
}

// Property-style: for a pipeline of map/andThen over many inputs, the
// result side is decided exactly by the first fallible step.
TEST(Expected, PipelinePropagationProperty)
{
    const std::string inputs = "0a5!9q3";
    for (char c : inputs) {
        Expected<int> r = parseDigit(c)
                              .map([](int v) { return v * 10; })
                              .andThen([](int v) -> Expected<int> {
                                  return v + 5;
                              });
        if (c >= '0' && c <= '9') {
            ASSERT_TRUE(r.hasValue()) << c;
            EXPECT_EQ(r.value(), (c - '0') * 10 + 5);
        } else {
            ASSERT_FALSE(r.hasValue()) << c;
            EXPECT_EQ(r.error().category, ErrorCategory::Parse);
        }
    }
}

TEST(Expected, MoveOnlyValueWorks)
{
    auto make = []() -> Expected<std::unique_ptr<int>> {
        return std::make_unique<int>(5);
    };
    std::unique_ptr<int> p = std::move(make()).value();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 5);

    Expected<std::unique_ptr<int>> bad(Error::io("x"));
    std::unique_ptr<int> fallback =
        std::move(bad).valueOr(std::make_unique<int>(9));
    ASSERT_NE(fallback, nullptr);
    EXPECT_EQ(*fallback, 9);
}

TEST(Expected, MakeUnexpectedDisambiguates)
{
    // Expected<Error-convertible, Error> style cases need the wrapper;
    // it must also work in the ordinary case.
    Expected<int> e = makeUnexpected(Error::parse("nope"));
    ASSERT_FALSE(e.hasValue());
    EXPECT_EQ(e.error().category, ErrorCategory::Parse);
}

TEST(Expected, StatusConventions)
{
    Status ok = okStatus();
    EXPECT_TRUE(ok.hasValue());
    EXPECT_EQ(ok.value(), Unit{});

    Status bad = Error::io("disk full");
    EXPECT_FALSE(bad.hasValue());
    EXPECT_EQ(bad.error().describe(), "io: disk full");
}

} // namespace
} // namespace common
} // namespace reaper
