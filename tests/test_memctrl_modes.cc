/**
 * @file
 * Tests for the memory controller's alternative operating modes:
 * FCFS scheduling (the ablation baseline against FR-FCFS) and
 * per-bank refresh (REFpb).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/memctrl.h"

namespace reaper {
namespace sim {
namespace {

MemCtrlConfig
baseConfig()
{
    MemCtrlConfig cfg;
    cfg.timing = lpddr4_3200(8);
    cfg.rowsPerBank = 1024;
    return cfg;
}

MemRequest
readReq(uint64_t addr, std::function<void()> done = nullptr)
{
    MemRequest r;
    r.addr = addr;
    r.isWrite = false;
    r.onComplete = std::move(done);
    return r;
}

Cycle
drain(MemoryController &mc, Cycle max_cycles = 1000000)
{
    Cycle start = mc.now();
    while (mc.hasPendingWork() && mc.now() - start < max_cycles)
        mc.tick();
    return mc.now() - start;
}

// ---------------- FCFS scheduler ----------------

/** Interleaved row-conflict stream; FR-FCFS reorders, FCFS cannot. */
Cycle
conflictStreamTime(SchedulerPolicy policy)
{
    MemCtrlConfig cfg = baseConfig();
    cfg.refreshWindowScale = 0;
    cfg.scheduler = policy;
    MemoryController mc(cfg);
    int done = 0;
    // Alternate rows in one bank, with row-hit pairs interleaved so a
    // reordering scheduler can batch them.
    for (uint32_t i = 0; i < 16; ++i) {
        DramAddr d{0, 0, (i % 2) ? 100u : 200u, i};
        EXPECT_TRUE(
            mc.enqueue(readReq(i * 64, [&]() { ++done; }), d));
    }
    Cycle t = drain(mc);
    EXPECT_EQ(done, 16);
    return t;
}

TEST(FcfsScheduler, FrFcfsBeatsFcfsOnConflictStreams)
{
    Cycle frfcfs = conflictStreamTime(SchedulerPolicy::FrFcfs);
    Cycle fcfs = conflictStreamTime(SchedulerPolicy::Fcfs);
    EXPECT_LT(frfcfs, fcfs);
}

TEST(FcfsScheduler, ServesAllRequests)
{
    MemCtrlConfig cfg = baseConfig();
    cfg.scheduler = SchedulerPolicy::Fcfs;
    MemoryController mc(cfg);
    Rng rng(5);
    int done = 0, accepted = 0;
    for (int i = 0; i < 20000; ++i) {
        if (rng.bernoulli(0.2)) {
            DramAddr d{0, static_cast<uint32_t>(rng.uniformInt(8)),
                       rng.uniformInt(64),
                       static_cast<uint32_t>(rng.uniformInt(32))};
            if (mc.enqueue(readReq(rng.uniformInt(1 << 20) * 64,
                                   [&]() { ++done; }),
                           d))
                ++accepted;
        }
        mc.tick();
    }
    drain(mc);
    EXPECT_EQ(done, accepted);
}

TEST(FcfsScheduler, PreservesArrivalOrderPerBank)
{
    // With FCFS, reads to the same bank complete in arrival order.
    MemCtrlConfig cfg = baseConfig();
    cfg.refreshWindowScale = 0;
    cfg.scheduler = SchedulerPolicy::Fcfs;
    MemoryController mc(cfg);
    std::vector<int> order;
    for (uint32_t i = 0; i < 6; ++i) {
        DramAddr d{0, 0, 10 + i, 0};
        ASSERT_TRUE(mc.enqueue(
            readReq(i * 64,
                    [&order, i]() {
                        order.push_back(static_cast<int>(i));
                    }),
            d));
    }
    drain(mc);
    ASSERT_EQ(order.size(), 6u);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

// ---------------- Per-bank refresh ----------------

TEST(PerBankRefresh, IssuesBanksTimesMoreCommands)
{
    MemCtrlConfig cfg = baseConfig();
    cfg.refreshGranularity = RefreshGranularity::PerBank;
    MemoryController mc(cfg);
    for (Cycle i = 0; i < cfg.timing.tREFI * 4 + 200; ++i)
        mc.tick();
    // One REFpb per tREFI/8: ~32 commands in 4 tREFI.
    EXPECT_NEAR(static_cast<double>(mc.stats().commands.refpb), 32.0,
                2.0);
    EXPECT_EQ(mc.stats().commands.refab, 0u);
}

TEST(PerBankRefresh, SameRefreshWorkAsAllBank)
{
    // Total rows refreshed per window must match REFab mode:
    // refpb * (rows/8192/banks) == refab * (rows/8192).
    MemCtrlConfig ab = baseConfig();
    MemCtrlConfig pb = baseConfig();
    pb.refreshGranularity = RefreshGranularity::PerBank;
    MemoryController mab(ab), mpb(pb);
    for (Cycle i = 0; i < ab.timing.tREFI * 64; ++i) {
        mab.tick();
        mpb.tick();
    }
    EXPECT_NEAR(static_cast<double>(mpb.stats().commands.refpb),
                static_cast<double>(mab.stats().commands.refab * 8),
                8.0);
}

TEST(PerBankRefresh, OtherBanksKeepServingDuringRefresh)
{
    // The point of REFpb: a read to bank 3 proceeds while bank 0
    // refreshes. Compare a read's latency right at a refresh against
    // the same read in all-bank mode.
    auto latency_in_mode = [](RefreshGranularity g) {
        MemCtrlConfig cfg = baseConfig();
        cfg.refreshGranularity = g;
        MemoryController mc(cfg);
        Cycle refi_cmd =
            g == RefreshGranularity::PerBank
                ? cfg.timing.tREFI / cfg.banks
                : cfg.timing.tREFI;
        for (Cycle i = 0; i < refi_cmd + 3; ++i)
            mc.tick();
        bool done = false;
        Cycle start = mc.now();
        // Target a bank that is NOT being refreshed (round-robin
        // starts at bank 0).
        EXPECT_TRUE(mc.enqueue(readReq(0, [&]() { done = true; }),
                               DramAddr{0, 3, 1, 0}));
        while (!done)
            mc.tick();
        return mc.now() - start;
    };
    Cycle ab = latency_in_mode(RefreshGranularity::AllBank);
    Cycle pb = latency_in_mode(RefreshGranularity::PerBank);
    EXPECT_LT(pb + baseConfig().timing.tRFCab / 2, ab);
}

TEST(PerBankRefresh, RefreshedBankIsBlocked)
{
    MemCtrlConfig cfg = baseConfig();
    cfg.refreshGranularity = RefreshGranularity::PerBank;
    MemoryController mc(cfg);
    Cycle refi_cmd = cfg.timing.tREFI / cfg.banks;
    for (Cycle i = 0; i < refi_cmd + 3; ++i)
        mc.tick();
    ASSERT_GE(mc.stats().commands.refpb, 1u);
    bool done = false;
    Cycle start = mc.now();
    // Bank 0 is the first bank refreshed (round-robin).
    EXPECT_TRUE(mc.enqueue(readReq(0, [&]() { done = true; }),
                           DramAddr{0, 0, 1, 0}));
    while (!done)
        mc.tick();
    EXPECT_GT(mc.now() - start, cfg.timing.tRFCpb / 2);
}

TEST(PerBankRefresh, FuzzAllRequestsComplete)
{
    MemCtrlConfig cfg = baseConfig();
    cfg.refreshGranularity = RefreshGranularity::PerBank;
    cfg.rowsPerBank = 128;
    MemoryController mc(cfg);
    Rng rng(9);
    int done = 0, accepted = 0;
    for (int i = 0; i < 50000; ++i) {
        if (rng.bernoulli(0.3)) {
            DramAddr d{0, static_cast<uint32_t>(rng.uniformInt(8)),
                       rng.uniformInt(128),
                       static_cast<uint32_t>(rng.uniformInt(32))};
            if (mc.enqueue(readReq(rng.uniformInt(1 << 20) * 64,
                                   [&]() { ++done; }),
                           d))
                ++accepted;
        }
        mc.tick();
    }
    drain(mc);
    EXPECT_EQ(done, accepted);
    EXPECT_GT(mc.stats().commands.refpb, 0u);
}

} // namespace
} // namespace sim
} // namespace reaper
