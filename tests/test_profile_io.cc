/**
 * @file
 * Tests for retention-profile serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "profiling/profile_io.h"

namespace reaper {
namespace profiling {
namespace {

RetentionProfile
sampleProfile()
{
    RetentionProfile p(Conditions{1.024, 45.0});
    p.add({{0, 12345}, {0, 99}, {3, 7}, {2, 1ull << 40}});
    return p;
}

TEST(ProfileIo, RoundTrip)
{
    RetentionProfile original = sampleProfile();
    std::stringstream ss;
    saveProfile(original, ss);
    RetentionProfile loaded = loadProfile(ss);
    EXPECT_EQ(loaded.cells(), original.cells());
    EXPECT_DOUBLE_EQ(loaded.conditions().refreshInterval,
                     original.conditions().refreshInterval);
    EXPECT_DOUBLE_EQ(loaded.conditions().temperature,
                     original.conditions().temperature);
}

TEST(ProfileIo, EmptyProfileRoundTrip)
{
    RetentionProfile original(Conditions{0.512, 50.0});
    std::stringstream ss;
    saveProfile(original, ss);
    RetentionProfile loaded = loadProfile(ss);
    EXPECT_TRUE(loaded.empty());
    EXPECT_DOUBLE_EQ(loaded.conditions().refreshInterval, 0.512);
}

TEST(ProfileIo, FormatIsHumanReadable)
{
    std::stringstream ss;
    saveProfile(sampleProfile(), ss);
    std::string text = ss.str();
    EXPECT_NE(text.find("REAPER-PROFILE v1"), std::string::npos);
    EXPECT_NE(text.find("refresh_interval_ms 1024"), std::string::npos);
    EXPECT_NE(text.find("temperature_c 45"), std::string::npos);
    EXPECT_NE(text.find("cells 4"), std::string::npos);
}

TEST(ProfileIo, FileRoundTrip)
{
    std::string path = ::testing::TempDir() + "reaper_profile_test.txt";
    RetentionProfile original = sampleProfile();
    saveProfileFile(original, path);
    RetentionProfile loaded = loadProfileFile(path);
    EXPECT_EQ(loaded.cells(), original.cells());
    std::remove(path.c_str());
}

TEST(ProfileIo, RejectsBadMagic)
{
    std::stringstream ss("NOT-A-PROFILE v1\n");
    RetentionProfile p;
    std::string error;
    EXPECT_FALSE(tryLoadProfile(ss, &p, &error));
    EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(ProfileIo, RejectsUnsupportedVersion)
{
    std::stringstream ss("REAPER-PROFILE v9\n");
    RetentionProfile p;
    std::string error;
    EXPECT_FALSE(tryLoadProfile(ss, &p, &error));
    EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(ProfileIo, RejectsTruncatedCellList)
{
    std::stringstream ss("REAPER-PROFILE v1\n"
                         "refresh_interval_ms 1024\n"
                         "temperature_c 45\n"
                         "cells 3\n"
                         "0 1\n"
                         "0 2\n");
    RetentionProfile p;
    std::string error;
    EXPECT_FALSE(tryLoadProfile(ss, &p, &error));
    EXPECT_NE(error.find("truncated"), std::string::npos);
}

TEST(ProfileIo, RejectsIncompleteHeader)
{
    std::stringstream ss("REAPER-PROFILE v1\n"
                         "temperature_c 45\n"
                         "cells 0\n");
    RetentionProfile p;
    std::string error;
    EXPECT_FALSE(tryLoadProfile(ss, &p, &error));
    EXPECT_NE(error.find("incomplete"), std::string::npos);
}

TEST(ProfileIo, RejectsUnknownKey)
{
    std::stringstream ss("REAPER-PROFILE v1\n"
                         "voltage_mv 1100\n");
    RetentionProfile p;
    std::string error;
    EXPECT_FALSE(tryLoadProfile(ss, &p, &error));
    EXPECT_NE(error.find("unknown key"), std::string::npos);
}

TEST(ProfileIo, RejectsNegativeInterval)
{
    std::stringstream ss("REAPER-PROFILE v1\n"
                         "refresh_interval_ms -5\n");
    RetentionProfile p;
    EXPECT_FALSE(tryLoadProfile(ss, &p));
}

TEST(ProfileIo, MissingFileIsFatal)
{
    EXPECT_EXIT(loadProfileFile("/nonexistent/profile.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(ProfileIo, LoadedProfileDrivesMitigation)
{
    // End to end: serialize, reload, and the reloaded profile behaves
    // identically for set queries.
    RetentionProfile original = sampleProfile();
    std::stringstream ss;
    saveProfile(original, ss);
    RetentionProfile loaded = loadProfile(ss);
    EXPECT_TRUE(loaded.contains({0, 99}));
    EXPECT_FALSE(loaded.contains({0, 100}));
    EXPECT_EQ(loaded.intersectionSize(original.cells()),
              original.size());
}

} // namespace
} // namespace profiling
} // namespace reaper
