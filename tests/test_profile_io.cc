/**
 * @file
 * Tests for retention-profile serialization: the Expected-returning
 * primary API (typed error categories), the fatal convenience
 * variants, and the v1 text parser's resource/corruption hardening.
 * The v2 binary format has its own suite in test_profile_binary.cc.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "profiling/profile_io.h"

namespace reaper {
namespace profiling {
namespace {

using common::ErrorCategory;

RetentionProfile
sampleProfile()
{
    RetentionProfile p(Conditions{1.024, 45.0});
    p.add({{0, 12345}, {0, 99}, {3, 7}, {2, 1ull << 40}});
    return p;
}

TEST(ProfileIo, RoundTrip)
{
    RetentionProfile original = sampleProfile();
    std::stringstream ss;
    saveProfile(original, ss);
    RetentionProfile loaded = loadProfile(ss);
    EXPECT_EQ(loaded.cells(), original.cells());
    EXPECT_DOUBLE_EQ(loaded.conditions().refreshInterval,
                     original.conditions().refreshInterval);
    EXPECT_DOUBLE_EQ(loaded.conditions().temperature,
                     original.conditions().temperature);
}

TEST(ProfileIo, EmptyProfileRoundTrip)
{
    RetentionProfile original(Conditions{0.512, 50.0});
    std::stringstream ss;
    saveProfile(original, ss);
    RetentionProfile loaded = loadProfile(ss);
    EXPECT_TRUE(loaded.empty());
    EXPECT_DOUBLE_EQ(loaded.conditions().refreshInterval, 0.512);
}

TEST(ProfileIo, FormatIsHumanReadable)
{
    std::stringstream ss;
    saveProfile(sampleProfile(), ss);
    std::string text = ss.str();
    EXPECT_NE(text.find("REAPER-PROFILE v1"), std::string::npos);
    EXPECT_NE(text.find("refresh_interval_ms 1024"), std::string::npos);
    EXPECT_NE(text.find("temperature_c 45"), std::string::npos);
    EXPECT_NE(text.find("cells 4"), std::string::npos);
}

TEST(ProfileIo, FileRoundTrip)
{
    std::string path = ::testing::TempDir() + "reaper_profile_test.txt";
    RetentionProfile original = sampleProfile();
    ASSERT_TRUE(writeProfileFile(original, path).hasValue());
    common::Expected<RetentionProfile> loaded = readProfileFile(path);
    ASSERT_TRUE(loaded.hasValue());
    EXPECT_EQ(loaded.value().cells(), original.cells());
    std::remove(path.c_str());
}

TEST(ProfileIo, RejectsBadMagic)
{
    std::stringstream ss("NOT-A-PROFILE v1\n");
    common::Expected<RetentionProfile> r =
        readProfile(ProfileSource::fromMemory(ss.str()));
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().category, ErrorCategory::Parse);
    EXPECT_NE(r.error().message.find("magic"), std::string::npos);
}

TEST(ProfileIo, RejectsUnsupportedVersion)
{
    std::stringstream ss("REAPER-PROFILE v9\n");
    common::Expected<RetentionProfile> r =
        readProfile(ProfileSource::fromMemory(ss.str()));
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().category, ErrorCategory::Parse);
    EXPECT_NE(r.error().message.find("version"), std::string::npos);
}

TEST(ProfileIo, RejectsTruncatedCellList)
{
    std::stringstream ss("REAPER-PROFILE v1\n"
                         "refresh_interval_ms 1024\n"
                         "temperature_c 45\n"
                         "cells 3\n"
                         "0 1\n"
                         "0 2\n");
    common::Expected<RetentionProfile> r =
        readProfile(ProfileSource::fromMemory(ss.str()));
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().category, ErrorCategory::Corrupt);
    EXPECT_NE(r.error().message.find("truncated"), std::string::npos);
}

TEST(ProfileIo, RejectsIncompleteHeader)
{
    std::stringstream ss("REAPER-PROFILE v1\n"
                         "temperature_c 45\n"
                         "cells 0\n");
    common::Expected<RetentionProfile> r =
        readProfile(ProfileSource::fromMemory(ss.str()));
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().category, ErrorCategory::Parse);
    EXPECT_NE(r.error().message.find("incomplete"), std::string::npos);
}

TEST(ProfileIo, RejectsUnknownKey)
{
    std::stringstream ss("REAPER-PROFILE v1\n"
                         "voltage_mv 1100\n");
    common::Expected<RetentionProfile> r =
        readProfile(ProfileSource::fromMemory(ss.str()));
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().category, ErrorCategory::Parse);
    EXPECT_NE(r.error().message.find("unknown key"), std::string::npos);
}

TEST(ProfileIo, RejectsNegativeInterval)
{
    std::stringstream ss("REAPER-PROFILE v1\n"
                         "refresh_interval_ms -5\n");
    common::Expected<RetentionProfile> r =
        readProfile(ProfileSource::fromMemory(ss.str()));
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().category, ErrorCategory::Parse);
}

TEST(ProfileIo, WriteProfileFileReportsIoOnUnwritablePath)
{
    common::Status st =
        writeProfileFile(sampleProfile(), "/nonexistent_dir/p.txt");
    ASSERT_FALSE(st.hasValue());
    EXPECT_EQ(st.error().category, ErrorCategory::Io);
    EXPECT_NE(st.error().message.find("cannot open"), std::string::npos);
}

TEST(ProfileIo, ReadProfileFileReportsIoOnMissingFile)
{
    common::Expected<RetentionProfile> r =
        readProfileFile("/nonexistent/profile.txt");
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().category, ErrorCategory::Io);
    // The diagnostic names the offending path.
    EXPECT_NE(r.error().message.find("/nonexistent/profile.txt"),
              std::string::npos);
}

TEST(ProfileIo, ReadProfileFileKeepsParseCategoryAndAddsPath)
{
    std::string path = ::testing::TempDir() + "reaper_bad_profile.txt";
    {
        std::ofstream os(path);
        os << "NOT-A-PROFILE v1\n";
    }
    common::Expected<RetentionProfile> r = readProfileFile(path);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().category, ErrorCategory::Parse);
    EXPECT_NE(r.error().message.find(path), std::string::npos);
    std::remove(path.c_str());
}

TEST(ProfileIo, UnwritablePathIsFatalViaSaveProfileFile)
{
    EXPECT_EXIT(
        saveProfileFile(sampleProfile(), "/nonexistent_dir/p.txt"),
        ::testing::ExitedWithCode(1), "cannot open");
}

TEST(ProfileIo, EmptyStreamFailsWithDiagnostic)
{
    std::stringstream ss("");
    common::Expected<RetentionProfile> r =
        readProfile(ProfileSource::fromStream(ss));
    ASSERT_FALSE(r.hasValue());
    EXPECT_FALSE(r.error().message.empty());
}

// Property-style: every line-level truncation of a valid profile must
// be rejected with a non-empty diagnostic — a crash-torn profile file
// can never load as a (silently smaller) valid profile.
TEST(ProfileIo, AllLineTruncationsFailWithDiagnostic)
{
    std::stringstream ss;
    saveProfile(sampleProfile(), ss);
    const std::string text = ss.str();

    std::vector<size_t> line_ends;
    for (size_t i = 0; i < text.size(); ++i)
        if (text[i] == '\n')
            line_ends.push_back(i + 1);
    ASSERT_GT(line_ends.size(), 4u);

    for (size_t keep = 0; keep + 1 < line_ends.size(); ++keep) {
        size_t len = keep == 0 ? 0 : line_ends[keep - 1];
        std::stringstream truncated(text.substr(0, len));
        common::Expected<RetentionProfile> r =
            readProfile(ProfileSource::fromMemory(truncated.str()));
        EXPECT_FALSE(r.hasValue())
            << "prefix of " << keep << " lines parsed successfully";
        if (!r.hasValue()) {
            EXPECT_FALSE(r.error().message.empty())
                << "no diagnostic for prefix of " << keep << " lines";
            EXPECT_TRUE(r.error().category == ErrorCategory::Parse ||
                        r.error().category == ErrorCategory::Corrupt)
                << "unexpected category for prefix of " << keep
                << " lines: " << toString(r.error().category);
        }
    }
}

// Property-style: single-token corruptions of a valid profile (bad
// version, non-numeric fields, out-of-range values) are all rejected
// with a non-empty diagnostic.
TEST(ProfileIo, TokenMutationsFailWithDiagnostic)
{
    struct Mutation
    {
        const char *from;
        const char *to;
    };
    const Mutation mutations[] = {
        {"v1", "v7"},                  // unsupported version
        {"REAPER-PROFILE", "REAPERx"}, // bad magic
        {"refresh_interval_ms 1024", "refresh_interval_ms never"},
        {"refresh_interval_ms 1024", "refresh_interval_ms -3"},
        {"temperature_c 45", "temperature_c warm"},
        {"cells 4", "cells many"},
        {"3 7", "99999999999 7"}, // chip index out of range
        {"3 7", "3 seven"},       // non-numeric address
    };
    for (const Mutation &m : mutations) {
        std::stringstream ss;
        saveProfile(sampleProfile(), ss);
        std::string text = ss.str();
        size_t pos = text.find(m.from);
        ASSERT_NE(pos, std::string::npos) << m.from;
        text.replace(pos, std::string(m.from).size(), m.to);

        std::stringstream mutated(text);
        common::Expected<RetentionProfile> r =
            readProfile(ProfileSource::fromMemory(mutated.str()));
        EXPECT_FALSE(r.hasValue())
            << "mutation '" << m.to << "' parsed successfully";
        if (!r.hasValue())
            EXPECT_FALSE(r.error().message.empty())
                << "no diagnostic for " << m.to;
    }
}

TEST(ProfileIo, MissingFileIsFatal)
{
    EXPECT_EXIT(loadProfileFile("/nonexistent/profile.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(ProfileIo, LoadedProfileDrivesMitigation)
{
    // End to end: serialize, reload, and the reloaded profile behaves
    // identically for set queries.
    RetentionProfile original = sampleProfile();
    std::stringstream ss;
    saveProfile(original, ss);
    RetentionProfile loaded = loadProfile(ss);
    EXPECT_TRUE(loaded.contains({0, 99}));
    EXPECT_FALSE(loaded.contains({0, 100}));
    EXPECT_EQ(loaded.intersectionSize(original.cells()),
              original.size());
}

// Regression: a corrupt v1 header claiming 10^12 cells must fail as
// Corrupt without reserving terabytes up front. Run with a sanitizer
// or a memory limit, an unclamped reserve() aborts here.
TEST(ProfileIo, HostileCellCountDoesNotPreallocate)
{
    std::stringstream ss("REAPER-PROFILE v1\n"
                         "refresh_interval_ms 1024\n"
                         "temperature_c 45\n"
                         "cells 1000000000000\n");
    common::Expected<RetentionProfile> r =
        readProfile(ProfileSource::fromMemory(ss.str()));
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().category, ErrorCategory::Corrupt);
    EXPECT_NE(r.error().message.find("truncated"), std::string::npos);
}

// The source-based API: every source kind round-trips both wire
// formats, so call sites migrating off the deprecated stream overload
// lose nothing.
TEST(ProfileIo, ProfileSourceKindsAllRoundTrip)
{
    RetentionProfile original = sampleProfile();
    for (ProfileFormat fmt :
         {ProfileFormat::TextV1, ProfileFormat::BinaryV2}) {
        std::stringstream ss;
        ASSERT_TRUE(writeProfile(original, ss, fmt).hasValue());
        const std::string bytes = ss.str();

        common::Expected<RetentionProfile> fromMem =
            readProfile(ProfileSource::fromMemory(bytes));
        ASSERT_TRUE(fromMem.hasValue()) << toString(fmt);
        EXPECT_EQ(fromMem.value().cells(), original.cells());

        std::stringstream is(bytes);
        common::Expected<RetentionProfile> fromStream =
            readProfile(ProfileSource::fromStream(is));
        ASSERT_TRUE(fromStream.hasValue()) << toString(fmt);
        EXPECT_EQ(fromStream.value().cells(), original.cells());

        std::string path =
            ::testing::TempDir() + "reaper_src_kind.profile";
        ASSERT_TRUE(writeProfileFile(original, path, fmt).hasValue());
        common::Expected<RetentionProfile> fromFile =
            readProfile(ProfileSource::fromFile(path));
        ASSERT_TRUE(fromFile.hasValue()) << toString(fmt);
        EXPECT_EQ(fromFile.value().cells(), original.cells());
        std::remove(path.c_str());
    }
}

// Files written with the default format knob are v2 binary, and the
// sniffing file reader loads them transparently.
TEST(ProfileIo, DefaultFileFormatIsBinaryAndSniffed)
{
    std::string path = ::testing::TempDir() + "reaper_profile_v2.bin";
    RetentionProfile original = sampleProfile();
    ASSERT_TRUE(writeProfileFile(original, path).hasValue());

    common::Expected<ProfileFormat> fmt = sniffProfileFormat(path);
    ASSERT_TRUE(fmt.hasValue());
    EXPECT_EQ(fmt.value(), ProfileFormat::BinaryV2);

    common::Expected<RetentionProfile> loaded = readProfileFile(path);
    ASSERT_TRUE(loaded.hasValue());
    EXPECT_EQ(loaded.value().cells(), original.cells());
    std::remove(path.c_str());
}

} // namespace
} // namespace profiling
} // namespace reaper
