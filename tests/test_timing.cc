/**
 * @file
 * Tests for LPDDR4 timing presets and cycle/time conversion.
 */

#include <gtest/gtest.h>

#include "sim/timing.h"

namespace reaper {
namespace sim {
namespace {

TEST(Timing, DensityScalesTrfc)
{
    EXPECT_EQ(lpddr4_3200(8).tRFCab, 448u);   // 280 ns
    EXPECT_EQ(lpddr4_3200(16).tRFCab, 608u);  // 380 ns
    EXPECT_EQ(lpddr4_3200(32).tRFCab, 880u);  // 550 ns
    EXPECT_EQ(lpddr4_3200(64).tRFCab, 1600u); // 1000 ns
}

TEST(Timing, UnsupportedDensityIsFatal)
{
    EXPECT_EXIT(lpddr4_3200(7), ::testing::ExitedWithCode(1),
                "unsupported");
}

TEST(Timing, TrefiIs64msOver8192)
{
    TimingParams t = lpddr4_3200(8);
    // 64 ms / 8192 = 7.8125 us; at 0.625 ns/cycle = 12500 cycles.
    EXPECT_EQ(t.tREFI, 12500u);
    EXPECT_NEAR(t.cyclesToSec(t.tREFI), 64e-3 / 8192, 1e-12);
}

TEST(Timing, CycleSecondRoundTrip)
{
    TimingParams t;
    EXPECT_EQ(t.secToCycles(t.cyclesToSec(1000)), 1000u);
    EXPECT_NEAR(t.cyclesToSec(1600000000ull), 1.0, 1e-9);
}

TEST(Timing, OrderingConstraintsSane)
{
    for (unsigned gbit : {8u, 16u, 32u, 64u}) {
        TimingParams t = lpddr4_3200(gbit);
        EXPECT_GT(t.tRC, t.tRAS);
        EXPECT_GT(t.tRAS, t.tRCD);
        EXPECT_GT(t.tRFCab, t.tRP); // refresh far costlier than PRE
        EXPECT_LT(t.tRFCab, t.tREFI); // refresh must fit its interval
    }
}

} // namespace
} // namespace sim
} // namespace reaper
