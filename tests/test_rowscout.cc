/**
 * @file
 * Tests for disturb::RowScout: estimating per-row retention times out
 * of RetentionProfile data and grouping retention-matched rows (U-TRR
 * style canary selection), including the same-bank and row-span
 * constraints, group-size filtering, and order independence.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "disturb/row_scout.h"

namespace reaper {
namespace {

dram::Geometry
testGeometry()
{
    return dram::Geometry::forCapacityBits(1ull << 24); // 8 x 128 rows
}

/** A failing cell at (chip, bank, in-bank row, bit-in-row). */
dram::ChipFailure
cellAt(const dram::Geometry &g, uint32_t chip, uint32_t bank,
       uint32_t row, uint64_t bit)
{
    return {chip, g.rowIndex(bank, row) * g.rowBits() + bit};
}

profiling::RetentionProfile
profileAt(Seconds interval,
          const std::vector<dram::ChipFailure> &cells)
{
    profiling::RetentionProfile p(
        profiling::Conditions{interval, 45.0});
    p.add(cells);
    return p;
}

TEST(RowScout, EstimatesSmallestFailingInterval)
{
    dram::Geometry g = testGeometry();
    disturb::RowScout scout(g);

    // Row 10 first fails at 1536 ms, row 20 at 1024 ms (and keeps
    // failing at longer intervals), row 30 only at 2048 ms. Multiple
    // failing cells in one row collapse into one estimate.
    std::vector<profiling::RetentionProfile> profiles = {
        profileAt(msToSec(1024.0), {cellAt(g, 0, 0, 20, 3)}),
        profileAt(msToSec(1536.0), {cellAt(g, 0, 0, 10, 0),
                                    cellAt(g, 0, 0, 10, 99),
                                    cellAt(g, 0, 0, 20, 3)}),
        profileAt(msToSec(2048.0), {cellAt(g, 0, 0, 10, 0),
                                    cellAt(g, 0, 0, 20, 3),
                                    cellAt(g, 0, 0, 30, 7)}),
    };
    std::vector<disturb::ScoutedRow> rows =
        scout.rowRetentionTimes(profiles);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].rowFlat, g.rowIndex(0, 10));
    EXPECT_DOUBLE_EQ(rows[0].retentionTime, msToSec(1536.0));
    EXPECT_EQ(rows[1].rowFlat, g.rowIndex(0, 20));
    EXPECT_DOUBLE_EQ(rows[1].retentionTime, msToSec(1024.0));
    EXPECT_EQ(rows[2].rowFlat, g.rowIndex(0, 30));
    EXPECT_DOUBLE_EQ(rows[2].retentionTime, msToSec(2048.0));
}

TEST(RowScout, GroupsRowsInTheSameRetentionBin)
{
    dram::Geometry g = testGeometry();
    disturb::RowScoutOptions opt;
    opt.binWidth = 0.5; // 1.024 -> bin 2, 1.536 -> bin 3, 2.048 -> 4
    disturb::RowScout scout(g, opt);

    std::vector<profiling::RetentionProfile> profiles = {
        profileAt(msToSec(1024.0), {cellAt(g, 0, 0, 30, 7)}),
        profileAt(msToSec(1536.0), {cellAt(g, 0, 0, 10, 0),
                                    cellAt(g, 0, 1, 20, 3),
                                    cellAt(g, 0, 0, 30, 7)}),
    };
    std::vector<disturb::RowGroup> groups = scout.scout(profiles);

    // Rows 10 (bank 0) and 20 (bank 1) share the 1536 ms bin and may
    // group across banks by default; row 30 is alone in its bin and
    // falls below the default minGroupSize of 2.
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_DOUBLE_EQ(groups[0].binStart, 3 * 0.5);
    ASSERT_EQ(groups[0].rows.size(), 2u);
    EXPECT_EQ(groups[0].rows[0].rowFlat, g.rowIndex(0, 10));
    EXPECT_EQ(groups[0].rows[1].rowFlat, g.rowIndex(1, 20));

    // minGroupSize 1 reports the singleton too, sorted by bin.
    opt.minGroupSize = 1;
    disturb::RowScout scout1(g, opt);
    groups = scout1.scout(profiles);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_DOUBLE_EQ(groups[0].binStart, 2 * 0.5);
    ASSERT_EQ(groups[0].rows.size(), 1u);
    EXPECT_EQ(groups[0].rows[0].rowFlat, g.rowIndex(0, 30));
    EXPECT_DOUBLE_EQ(groups[1].binStart, 3 * 0.5);
}

TEST(RowScout, SameBankConstraintSplitsGroups)
{
    dram::Geometry g = testGeometry();
    disturb::RowScoutOptions opt;
    opt.binWidth = 0.5;
    opt.requireSameBank = true;
    opt.minGroupSize = 2;
    disturb::RowScout scout(g, opt);

    // Two matched rows per bank, plus a cross-bank pair that must NOT
    // group once the bank constraint is on.
    std::vector<profiling::RetentionProfile> profiles = {
        profileAt(msToSec(1536.0),
                  {cellAt(g, 0, 0, 10, 0), cellAt(g, 0, 0, 40, 1),
                   cellAt(g, 0, 2, 15, 2), cellAt(g, 0, 2, 55, 3),
                   cellAt(g, 0, 4, 99, 4)}),
    };
    std::vector<disturb::RowGroup> groups = scout.scout(profiles);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].rows[0].rowFlat, g.rowIndex(0, 10));
    EXPECT_EQ(groups[0].rows[1].rowFlat, g.rowIndex(0, 40));
    EXPECT_EQ(groups[1].rows[0].rowFlat, g.rowIndex(2, 15));
    EXPECT_EQ(groups[1].rows[1].rowFlat, g.rowIndex(2, 55));
}

TEST(RowScout, SameBankKeepsChipsApart)
{
    dram::Geometry g = testGeometry();
    disturb::RowScoutOptions opt;
    opt.binWidth = 0.5;
    opt.requireSameBank = true;
    opt.minGroupSize = 1;
    disturb::RowScout scout(g, opt);

    // Same bank and row numbers, different chips: two groups.
    std::vector<profiling::RetentionProfile> profiles = {
        profileAt(msToSec(1536.0),
                  {cellAt(g, 0, 1, 10, 0), cellAt(g, 1, 1, 10, 0)}),
    };
    std::vector<disturb::RowGroup> groups = scout.scout(profiles);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].rows[0].chip, 0u);
    EXPECT_EQ(groups[1].rows[0].chip, 1u);
}

TEST(RowScout, MaxRowSpanSplitsSparseGroups)
{
    dram::Geometry g = testGeometry();
    disturb::RowScoutOptions opt;
    opt.binWidth = 0.5;
    opt.maxRowSpan = 50;
    opt.minGroupSize = 2;
    disturb::RowScout scout(g, opt);

    // Rows 10, 20 fit a 50-row span; row 120 is too far and becomes a
    // singleton, which the size filter then drops.
    std::vector<profiling::RetentionProfile> profiles = {
        profileAt(msToSec(1536.0),
                  {cellAt(g, 0, 0, 10, 0), cellAt(g, 0, 0, 20, 1),
                   cellAt(g, 0, 0, 120, 2)}),
    };
    std::vector<disturb::RowGroup> groups = scout.scout(profiles);
    ASSERT_EQ(groups.size(), 1u);
    ASSERT_EQ(groups[0].rows.size(), 2u);
    EXPECT_EQ(groups[0].rows[0].rowFlat, g.rowIndex(0, 10));
    EXPECT_EQ(groups[0].rows[1].rowFlat, g.rowIndex(0, 20));

    // Widening the span reunites all three rows.
    opt.maxRowSpan = 127;
    disturb::RowScout wide(g, opt);
    groups = wide.scout(profiles);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].rows.size(), 3u);
}

TEST(RowScout, ProfileOrderDoesNotMatter)
{
    dram::Geometry g = testGeometry();
    disturb::RowScoutOptions opt;
    opt.binWidth = 0.5;
    opt.minGroupSize = 1;
    disturb::RowScout scout(g, opt);

    std::vector<profiling::RetentionProfile> profiles;
    for (int i = 0; i < 4; ++i) {
        std::vector<dram::ChipFailure> cells;
        for (uint32_t r = 0; r < 40; r += 3 + static_cast<uint32_t>(i))
            cells.push_back(
                cellAt(g, static_cast<uint32_t>(r % 2),
                       static_cast<uint32_t>(r % 8), r, r));
        profiles.push_back(
            profileAt(msToSec(1024.0 + 256.0 * i), cells));
    }

    std::vector<disturb::RowGroup> want = scout.scout(profiles);
    EXPECT_FALSE(want.empty());
    std::mt19937 gen(3);
    for (int trial = 0; trial < 4; ++trial) {
        std::shuffle(profiles.begin(), profiles.end(), gen);
        std::vector<disturb::RowGroup> got = scout.scout(profiles);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i) {
            EXPECT_DOUBLE_EQ(got[i].binStart, want[i].binStart);
            ASSERT_EQ(got[i].rows.size(), want[i].rows.size());
            for (size_t j = 0; j < want[i].rows.size(); ++j) {
                EXPECT_EQ(got[i].rows[j].chip, want[i].rows[j].chip);
                EXPECT_EQ(got[i].rows[j].rowFlat,
                          want[i].rows[j].rowFlat);
                EXPECT_DOUBLE_EQ(got[i].rows[j].retentionTime,
                                 want[i].rows[j].retentionTime);
            }
        }
    }
}

TEST(RowScout, ValidatesOptions)
{
    dram::Geometry g = testGeometry();
    disturb::RowScoutOptions opt;
    opt.binWidth = 0.0;
    EXPECT_DEATH(disturb::RowScout(g, opt), "binWidth");
    opt = {};
    opt.minGroupSize = 0;
    EXPECT_DEATH(disturb::RowScout(g, opt), "minGroupSize");
}

TEST(RowScout, EmptyProfilesYieldNothing)
{
    dram::Geometry g = testGeometry();
    disturb::RowScout scout(g);
    EXPECT_TRUE(scout.scout({}).empty());
    EXPECT_TRUE(scout.rowRetentionTimes({}).empty());
    std::vector<profiling::RetentionProfile> empty_profile = {
        profileAt(msToSec(1024.0), {})};
    EXPECT_TRUE(scout.scout(empty_profile).empty());
}

} // namespace
} // namespace reaper
