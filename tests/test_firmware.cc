/**
 * @file
 * Integration tests for the online REAPER firmware: profiling rounds,
 * reprofiling schedule, mitigation updates, and oracle-based safety
 * audits over days of (virtual) operation.
 */

#include <gtest/gtest.h>

#include "mitigation/archshield.h"
#include "reaper/firmware.h"

namespace reaper {
namespace firmware {
namespace {

dram::ModuleConfig
testModule(uint64_t seed = 1)
{
    dram::ModuleConfig cfg;
    cfg.numChips = 1;
    cfg.chipCapacityBits = 4ull * 1024 * 1024 * 1024; // 512 MB
    cfg.seed = seed;
    cfg.envelope = {2.0, 50.0};
    cfg.chipVariation = 0.0;
    return cfg;
}

testbed::HostConfig
instantHost()
{
    testbed::HostConfig h;
    h.useChamber = false;
    return h;
}

OnlineReaperConfig
baseConfig()
{
    OnlineReaperConfig cfg;
    cfg.target = {1.024, 45.0};
    return cfg;
}

struct Rig
{
    dram::DramModule module;
    testbed::SoftMcHost host;
    mitigation::ArchShield shield;

    explicit Rig(uint64_t seed,
                 const dram::ModuleConfig &mc = testModule())
        : module([&] {
              dram::ModuleConfig m = mc;
              m.seed = seed;
              return m;
          }()),
          host(module, instantHost()),
          shield([&] {
              mitigation::ArchShieldConfig ac;
              ac.capacityBits = mc.chipCapacityBits * mc.numChips;
              return ac;
          }())
    {
    }
};

TEST(OnlineReaper, ProfileOnceInstallsProfile)
{
    Rig rig(1);
    OnlineReaper reaper(rig.host, rig.shield, baseConfig());
    ReaperEvent e = reaper.profileOnce();
    EXPECT_GT(e.profileSize, 0u);
    EXPECT_GT(e.roundTime, 0.0);
    EXPECT_GT(e.reprofileIn, 0.0);
    EXPECT_EQ(rig.shield.installedEntries() > 0, true);
    EXPECT_EQ(reaper.roundsRun(), 1u);
}

TEST(OnlineReaper, ScheduleFollowsLongevityModel)
{
    Rig rig(2);
    OnlineReaper reaper(rig.host, rig.shield, baseConfig());
    Seconds interval = reaper.scheduledReprofileInterval();
    // 512 MB at 1024 ms, SECDED, guardband 4: hours-to-days scale.
    EXPECT_GT(interval, hoursToSec(1.0));
    EXPECT_LT(interval, daysToSec(60.0));
}

TEST(OnlineReaper, RunForAlternatesProfilingAndOperation)
{
    Rig rig(3);
    OnlineReaper reaper(rig.host, rig.shield, baseConfig());
    Seconds interval = reaper.scheduledReprofileInterval();
    reaper.runFor(2.5 * interval);
    EXPECT_GE(reaper.roundsRun(), 3u); // t=0, t=I, t=2I(+)
    EXPECT_GT(reaper.totalOperatingTime(), 0.0);
    EXPECT_GT(reaper.totalProfilingTime(), 0.0);
    EXPECT_LT(reaper.overheadFraction(), 0.2);
}

TEST(OnlineReaper, SafetyAuditHoldsAfterOperation)
{
    // The end-to-end reliability claim: after profiling + operating,
    // the failures escaping the mitigation fit the ECC budget.
    Rig rig(4);
    OnlineReaper reaper(rig.host, rig.shield, baseConfig());
    reaper.runFor(hoursToSec(30.0));
    OnlineReaper::SafetyAudit audit = reaper.auditSafety();
    EXPECT_GT(audit.truthSize, 100u);
    EXPECT_TRUE(audit.safe)
        << audit.uncovered << " uncovered vs budget "
        << audit.tolerable;
}

TEST(OnlineReaper, UnprofiledSystemWouldBeUnsafe)
{
    // Sanity check that the audit has teeth: without any profiling,
    // the uncovered failing set exceeds the ECC budget by orders of
    // magnitude.
    Rig rig(5);
    OnlineReaper reaper(rig.host, rig.shield, baseConfig());
    OnlineReaper::SafetyAudit audit = reaper.auditSafety();
    EXPECT_FALSE(audit.safe);
    EXPECT_GT(static_cast<double>(audit.uncovered),
              audit.tolerable * 10.0);
}

TEST(OnlineReaper, LogRecordsEveryRound)
{
    Rig rig(6);
    OnlineReaper reaper(rig.host, rig.shield, baseConfig());
    Seconds interval = reaper.scheduledReprofileInterval();
    reaper.runFor(1.5 * interval);
    ASSERT_GE(reaper.log().size(), 2u);
    EXPECT_LT(reaper.log()[0].time, reaper.log()[1].time);
}

TEST(OnlineReaper, ImpossibleBudgetIsFatal)
{
    Rig rig(7);
    OnlineReaperConfig cfg = baseConfig();
    cfg.eccStrength = ecc::EccConfig::none();
    OnlineReaper reaper(rig.host, rig.shield, cfg);
    // Without ECC, any escaped failure breaks the UBER target: the
    // firmware must refuse to schedule relaxed-refresh operation.
    EXPECT_EXIT(reaper.scheduledReprofileInterval(),
                ::testing::ExitedWithCode(1), "ECC budget");
}

TEST(OnlineReaper, GuardbandValidation)
{
    Rig rig(8);
    OnlineReaperConfig cfg = baseConfig();
    cfg.longevityGuardband = 0.5;
    EXPECT_EXIT(OnlineReaper(rig.host, rig.shield, cfg),
                ::testing::ExitedWithCode(1), "uardband");
}

TEST(OnlineReaper, WorksWithChamberModel)
{
    // Full-realism path: thermal chamber enabled.
    dram::ModuleConfig mc = testModule(9);
    mc.chipCapacityBits = 512ull * 1024 * 1024; // 64 MB: keep it fast
    dram::DramModule module(mc);
    testbed::HostConfig hc;
    hc.useChamber = true;
    testbed::SoftMcHost host(module, hc);
    mitigation::ArchShieldConfig ac;
    ac.capacityBits = module.capacityBits();
    mitigation::ArchShield shield(ac);
    OnlineReaper reaper(host, shield, baseConfig());
    ReaperEvent e = reaper.profileOnce();
    EXPECT_GT(e.roundTime, 0.0);
}

} // namespace
} // namespace firmware
} // namespace reaper
