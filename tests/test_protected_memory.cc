/**
 * @file
 * Tests for the SECDED-protected memory with fault injection — the
 * bridge between retention-failure addresses and actual data
 * integrity.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ecc/protected_memory.h"

namespace reaper {
namespace ecc {
namespace {

TEST(ProtectedMemory, CleanRoundTrip)
{
    EccProtectedMemory mem(1024);
    mem.writeWord(3, 0xDEADBEEFCAFEBABEull);
    auto r = mem.readWord(3);
    EXPECT_EQ(r.status, DecodeStatus::Ok);
    EXPECT_EQ(r.value, 0xDEADBEEFCAFEBABEull);
}

TEST(ProtectedMemory, UnwrittenReadsZero)
{
    EccProtectedMemory mem(1024);
    auto r = mem.readWord(0);
    EXPECT_EQ(r.status, DecodeStatus::Ok);
    EXPECT_EQ(r.value, 0u);
}

TEST(ProtectedMemory, SingleFaultCorrectedOnRead)
{
    EccProtectedMemory mem(1024);
    mem.writeWord(2, 0x123456789ABCDEF0ull);
    mem.injectFailure(2 * 64 + 17);
    auto r = mem.readWord(2);
    EXPECT_EQ(r.status, DecodeStatus::CorrectedSingle);
    EXPECT_EQ(r.value, 0x123456789ABCDEF0ull);
}

TEST(ProtectedMemory, DoubleFaultDetected)
{
    EccProtectedMemory mem(1024);
    mem.writeWord(5, 0xFFFFFFFF00000000ull);
    mem.injectFailure(5 * 64 + 1);
    mem.injectFailure(5 * 64 + 60);
    auto r = mem.readWord(5);
    EXPECT_EQ(r.status, DecodeStatus::DetectedDouble);
}

TEST(ProtectedMemory, RewriteClearsFaults)
{
    EccProtectedMemory mem(1024);
    mem.writeWord(1, 7);
    mem.injectFailure(64 + 3);
    EXPECT_EQ(mem.activeFaults(), 1u);
    mem.writeWord(1, 9);
    EXPECT_EQ(mem.activeFaults(), 0u);
    auto r = mem.readWord(1);
    EXPECT_EQ(r.status, DecodeStatus::Ok);
    EXPECT_EQ(r.value, 9u);
}

TEST(ProtectedMemory, ScrubCorrectsSingles)
{
    EccProtectedMemory mem(64 * 100);
    Rng rng(1);
    for (uint64_t w = 0; w < 100; ++w)
        mem.writeWord(w, rng());
    // One fault in 20 distinct words.
    for (uint64_t w = 0; w < 20; ++w)
        mem.injectFailure(w * 64 + (w % 64));
    auto report = mem.scrub();
    EXPECT_EQ(report.scanned, 100u);
    EXPECT_EQ(report.corrected, 20u);
    EXPECT_EQ(report.clean, 80u);
    EXPECT_EQ(report.uncorrectable, 0u);
    EXPECT_EQ(mem.activeFaults(), 0u);
    // Everything reads clean after the scrub.
    auto post = mem.scrub();
    EXPECT_EQ(post.clean, 100u);
}

TEST(ProtectedMemory, ScrubLeavesUncorrectableFaults)
{
    EccProtectedMemory mem(64 * 10);
    mem.writeWord(0, 1);
    mem.injectFailure(0);
    mem.injectFailure(1);
    auto report = mem.scrub();
    EXPECT_EQ(report.uncorrectable, 1u);
    EXPECT_EQ(mem.activeFaults(), 2u);
    EXPECT_EQ(mem.readWord(0).status, DecodeStatus::DetectedDouble);
}

TEST(ProtectedMemory, FaultsInDifferentWordsAreIndependent)
{
    EccProtectedMemory mem(64 * 4);
    Rng rng(2);
    uint64_t v0 = rng(), v1 = rng();
    mem.writeWord(0, v0);
    mem.writeWord(1, v1);
    mem.injectFailure(0 * 64 + 5);
    mem.injectFailure(1 * 64 + 9);
    EXPECT_EQ(mem.readWord(0).status, DecodeStatus::CorrectedSingle);
    EXPECT_EQ(mem.readWord(0).value, v0);
    EXPECT_EQ(mem.readWord(1).status, DecodeStatus::CorrectedSingle);
    EXPECT_EQ(mem.readWord(1).value, v1);
}

TEST(ProtectedMemory, InjectFailuresBatch)
{
    EccProtectedMemory mem(64 * 4);
    mem.writeWord(0, 42);
    mem.injectFailures({1, 70, 200});
    EXPECT_EQ(mem.activeFaults(), 3u);
}

TEST(ProtectedMemory, Validation)
{
    EXPECT_DEATH(EccProtectedMemory mem(0), "multiple of 64");
    EXPECT_DEATH(EccProtectedMemory mem(65), "multiple of 64");
    EccProtectedMemory mem(128);
    EXPECT_DEATH(mem.writeWord(2, 0), "out of range");
    EXPECT_DEATH(mem.readWord(2), "out of range");
    EXPECT_DEATH(mem.injectFailure(128), "out of range");
}

TEST(ProtectedMemory, BudgetStoryEndToEnd)
{
    // The Section 6.2 story in miniature: failures within the SECDED
    // budget (<= 1 per word) are survivable; colliding failures in
    // one word are not.
    EccProtectedMemory mem(64 * 1000);
    Rng rng(3);
    for (uint64_t w = 0; w < 1000; ++w)
        mem.writeWord(w, rng());
    // Spread 50 faults across distinct words: all corrected.
    for (uint64_t i = 0; i < 50; ++i)
        mem.injectFailure(i * 20 * 64 + (i % 64));
    auto report = mem.scrub();
    EXPECT_EQ(report.corrected, 50u);
    EXPECT_EQ(report.uncorrectable, 0u);
}

} // namespace
} // namespace ecc
} // namespace reaper
