/**
 * @file
 * Tests for the functional DRAM device: exposure semantics, failure
 * sampling, determinism, temperature behaviour, VRT dynamics, and the
 * oracle interface.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/units.h"
#include "dram/device.h"

namespace reaper {
namespace dram {
namespace {

/** A small chip (64 MB) keeps populations tiny and tests fast. */
DeviceConfig
smallConfig(uint64_t seed = 1)
{
    DeviceConfig cfg;
    cfg.capacityBits = 512ull * 1024 * 1024; // 64 MB
    cfg.seed = seed;
    cfg.envelope = {2.5, 50.0};
    return cfg;
}

/** A larger chip (512 MB) for statistical assertions. */
DeviceConfig
statsConfig(uint64_t seed = 1)
{
    DeviceConfig cfg;
    cfg.capacityBits = 4ull * 1024 * 1024 * 1024; // 512 MB
    cfg.seed = seed;
    cfg.envelope = {2.5, 50.0};
    return cfg;
}

TEST(DramDevice, NoFailuresBeforeWrite)
{
    DramDevice d(smallConfig());
    EXPECT_TRUE(d.readAndCompare().empty());
}

TEST(DramDevice, NoFailuresWithRefreshEnabled)
{
    DramDevice d(smallConfig());
    d.writePattern(DataPattern::Random);
    d.wait(10.0); // refresh enabled: no exposure accumulates
    EXPECT_TRUE(d.readAndCompare().empty());
    EXPECT_EQ(d.exposureEquivalent(), 0.0);
}

TEST(DramDevice, FailuresAppearAfterExposure)
{
    DramDevice d(statsConfig());
    d.writePattern(DataPattern::Random);
    d.disableRefresh();
    d.wait(2.0);
    d.enableRefresh();
    auto fails = d.readAndCompare();
    EXPECT_GT(fails.size(), 0u);
}

TEST(DramDevice, RepeatedReadsConsistent)
{
    DramDevice d(statsConfig());
    d.writePattern(DataPattern::Checkerboard);
    d.disableRefresh();
    d.wait(2.0);
    d.enableRefresh();
    auto a = d.readAndCompare();
    auto b = d.readAndCompare();
    EXPECT_EQ(a, b);
}

TEST(DramDevice, FailuresMonotoneInExposure)
{
    DramDevice d(statsConfig());
    d.writePattern(DataPattern::Random);
    d.disableRefresh();
    d.wait(1.0);
    auto early = d.readAndCompare();
    d.wait(1.0);
    auto late = d.readAndCompare();
    EXPECT_GE(late.size(), early.size());
    // Every early failure persists (retention loss is not undone).
    EXPECT_TRUE(std::includes(late.begin(), late.end(), early.begin(),
                              early.end()));
}

TEST(DramDevice, FailuresLatchAfterRefreshReenabled)
{
    // Algorithm 1 re-enables refresh before reading: refresh restores
    // the (already wrong) value, so failures must still be visible.
    DramDevice d(statsConfig());
    d.writePattern(DataPattern::Random);
    d.disableRefresh();
    d.wait(2.0);
    d.enableRefresh();
    d.wait(5.0); // refreshed while holding the corrupted data
    auto fails = d.readAndCompare();
    EXPECT_GT(fails.size(), 0u);
}

TEST(DramDevice, WriteResetsExposure)
{
    DramDevice d(statsConfig());
    d.writePattern(DataPattern::Random);
    d.disableRefresh();
    d.wait(2.0);
    d.enableRefresh();
    ASSERT_GT(d.readAndCompare().size(), 0u);
    d.writePattern(DataPattern::Random);
    EXPECT_EQ(d.exposureEquivalent(), 0.0);
    EXPECT_TRUE(d.readAndCompare().empty());
}

TEST(DramDevice, DeterministicAcrossInstances)
{
    auto run = [](uint64_t seed) {
        DramDevice d(smallConfig(seed));
        d.writePattern(DataPattern::Random);
        d.disableRefresh();
        d.wait(2.0);
        d.enableRefresh();
        return d.readAndCompare();
    };
    EXPECT_EQ(run(5), run(5));
    // Different seeds produce different populations.
    DramDevice a(smallConfig(1)), b(smallConfig(2));
    EXPECT_NE(a.weakCellCount(), 0u);
    // Cell counts may coincide, but addresses will not.
}

TEST(DramDevice, FailureCountTracksExpectedBer)
{
    // Union over many patterns/iterations approaches the true failing
    // set; a single random-pattern read sees a large fraction of the
    // cells with mu <= t. Check the order of magnitude band.
    DramDevice d(statsConfig(3));
    double t = 2.0;
    double expected =
        d.expectedBer(t, 45.0) * static_cast<double>(
            d.config().capacityBits);
    ASSERT_GT(expected, 50.0);
    d.writePattern(DataPattern::Random);
    d.disableRefresh();
    d.wait(t);
    d.enableRefresh();
    auto fails = d.readAndCompare();
    EXPECT_GT(static_cast<double>(fails.size()), expected * 0.2);
    EXPECT_LT(static_cast<double>(fails.size()), expected * 3.0);
}

TEST(DramDevice, HigherTemperatureMoreFailures)
{
    uint64_t f45, f50;
    {
        DramDevice d(statsConfig(4));
        d.setTemperature(45.0);
        d.writePattern(DataPattern::Random);
        d.disableRefresh();
        d.wait(1.5);
        f45 = d.readAndCompare().size();
    }
    {
        DramDevice d(statsConfig(4));
        d.setTemperature(50.0);
        d.writePattern(DataPattern::Random);
        d.disableRefresh();
        d.wait(1.5);
        f50 = d.readAndCompare().size();
    }
    ASSERT_GT(f45, 0u);
    // Eq. 1: ~e (2.7x) more failures for +5 C; allow a wide band.
    EXPECT_GT(static_cast<double>(f50),
              1.5 * static_cast<double>(f45));
}

TEST(DramDevice, TemperatureAboveEnvelopeIsFatal)
{
    DramDevice d(smallConfig());
    EXPECT_EXIT(d.setTemperature(55.0),
                ::testing::ExitedWithCode(1), "envelope");
}

TEST(DramDevice, ExposureBeyondEnvelopeIsFatal)
{
    DramDevice d(smallConfig());
    d.writePattern(DataPattern::Solid0);
    d.disableRefresh();
    EXPECT_EXIT(d.wait(10.0), ::testing::ExitedWithCode(1), "envelope");
}

TEST(DramDevice, TrueFailingSetMonotoneInInterval)
{
    DramDevice d(statsConfig(5));
    auto small = d.trueFailingSet(1.0, 45.0);
    auto large = d.trueFailingSet(2.0, 45.0);
    EXPECT_GT(large.size(), small.size());
    EXPECT_TRUE(std::includes(large.begin(), large.end(), small.begin(),
                              small.end()));
}

TEST(DramDevice, TrueFailingSetMonotoneInPmin)
{
    DramDevice d(statsConfig(6));
    auto loose = d.trueFailingSet(1.5, 45.0, 0.01);
    auto strict = d.trueFailingSet(1.5, 45.0, 0.5);
    EXPECT_GE(loose.size(), strict.size());
    EXPECT_TRUE(std::includes(loose.begin(), loose.end(), strict.begin(),
                              strict.end()));
}

TEST(DramDevice, TrueFailingSetCountNearExpectedBer)
{
    DramDevice d(statsConfig(7));
    double t = 1.5;
    auto truth = d.trueFailingSet(t, 45.0, 0.5);
    double expected =
        d.expectedBer(t, 45.0) *
        static_cast<double>(d.config().capacityBits);
    // pmin=0.5 counts cells with mu <= t (the CDF median), which is the
    // closed-form BER integral; agree within sampling noise.
    EXPECT_NEAR(static_cast<double>(truth.size()), expected,
                6.0 * std::sqrt(expected) + 0.05 * expected);
}

TEST(DramDevice, VrtArrivalsAccumulateOverTime)
{
    DramDevice d(statsConfig(8));
    EXPECT_EQ(d.activeVrtCount(), 0u);
    d.wait(hoursToSec(12.0));
    EXPECT_GT(d.activeVrtCount(), 0u);
}

TEST(DramDevice, VrtPopulationReachesSteadyState)
{
    // Arrivals are balanced by expiries: the active count after 2x the
    // dwell should be within a factor band of the steady state
    // rate * dwell.
    DramDevice d(statsConfig(9));
    double dwell_h = d.model().params().vrtDwellMeanHours;
    d.wait(hoursToSec(6.0 * dwell_h));
    double steady =
        d.model().vrtCumulativeRate(
            d.model().envelopeMuCap(d.config().envelope),
            d.config().capacityBits) *
        3600.0 * dwell_h;
    ASSERT_GT(steady, 20.0);
    EXPECT_NEAR(static_cast<double>(d.activeVrtCount()), steady,
                0.5 * steady);
}

TEST(DramDevice, NewFailuresDiscoveredOverTime)
{
    // Fig. 3's mechanism: profiling rounds separated by hours discover
    // new (VRT) failures.
    DramDevice d(statsConfig(10));
    auto round = [&d]() {
        std::set<uint64_t> found;
        d.writePattern(DataPattern::Random);
        d.disableRefresh();
        d.wait(2.0);
        d.enableRefresh();
        for (uint64_t a : d.readAndCompare())
            found.insert(a);
        return found;
    };
    auto first = round();
    d.wait(hoursToSec(24.0));
    auto second = round();
    size_t new_cells = 0;
    for (uint64_t a : second)
        new_cells += first.count(a) == 0;
    EXPECT_GT(new_cells, 0u);
}

TEST(DramDevice, WeakCellCountScalesWithCapacity)
{
    DramDevice small(smallConfig(11));
    DeviceConfig big_cfg = smallConfig(11);
    big_cfg.capacityBits *= 8;
    DramDevice big(big_cfg);
    double ratio = static_cast<double>(big.weakCellCount()) /
                   static_cast<double>(small.weakCellCount());
    EXPECT_NEAR(ratio, 8.0, 2.5);
}

TEST(DramDevice, NegativeWaitPanics)
{
    DramDevice d(smallConfig());
    EXPECT_DEATH(d.wait(-1.0), "negative");
}

// ---- Optimized read path vs. the reference (seed) implementation ----
//
// readAndCompare/trueFailingSet were rewritten around a sorted
// structure-of-arrays index with a 5-sigma fast-reject sweep and
// memoized temperature factors; the *Reference() methods pin the
// original per-cell implementation. The two must agree bit-exactly.

TEST(DramDeviceReadPath, MatchesReferenceAcrossPatterns)
{
    DramDevice d(statsConfig(31));
    for (DataPattern p : allDataPatterns()) {
        d.writePattern(p);
        d.disableRefresh();
        d.wait(1.8);
        d.enableRefresh();
        EXPECT_EQ(d.readAndCompare(), d.readAndCompareReference());
    }
}

TEST(DramDeviceReadPath, MatchesReferenceAcrossTemperatures)
{
    for (Celsius temp : {40.0, 45.0, 48.0}) {
        DramDevice d(statsConfig(32));
        d.setTemperature(temp);
        d.writePattern(DataPattern::Random);
        d.disableRefresh();
        d.wait(1.5);
        d.enableRefresh();
        EXPECT_EQ(d.readAndCompare(), d.readAndCompareReference());
    }
}

TEST(DramDeviceReadPath, MatchesReferenceAcrossExposures)
{
    DramDevice d(statsConfig(33));
    d.writePattern(DataPattern::ColStripe);
    d.disableRefresh();
    for (int step = 0; step < 4; ++step) {
        d.wait(0.5);
        EXPECT_EQ(d.readAndCompare(), d.readAndCompareReference());
    }
}

TEST(DramDeviceReadPath, MatchesReferenceWithActiveVrt)
{
    DramDevice d(statsConfig(34));
    d.wait(hoursToSec(24.0)); // populate the active VRT set
    ASSERT_GT(d.activeVrtCount(), 0u);
    d.writePattern(DataPattern::Random);
    d.disableRefresh();
    d.wait(1.8);
    d.enableRefresh();
    EXPECT_EQ(d.readAndCompare(), d.readAndCompareReference());
}

TEST(DramDeviceReadPath, TrueFailingSetMatchesReference)
{
    DramDevice d(statsConfig(35));
    for (Celsius temp : {40.0, 45.0, 48.0}) {
        for (Seconds t : {0.8, 1.5, 2.2}) {
            for (double pmin : {0.01, 0.05, 0.5}) {
                EXPECT_EQ(d.trueFailingSet(t, temp, pmin),
                          d.trueFailingSetReference(t, temp, pmin));
            }
        }
    }
}

TEST(DramDeviceReadPath, TrueFailingSetMatchesReferenceWithVrt)
{
    DramDevice d(statsConfig(36));
    d.wait(hoursToSec(24.0));
    ASSERT_GT(d.activeVrtCount(), 0u);
    EXPECT_EQ(d.trueFailingSet(1.5, 45.0),
              d.trueFailingSetReference(1.5, 45.0));
}

TEST(DramDeviceReadPath, ScratchReuseIsConsistent)
{
    // The Into variants reuse a member buffer; repeated and
    // interleaved calls must keep returning the same content as the
    // copying API.
    DramDevice d(statsConfig(37));
    d.writePattern(DataPattern::Checkerboard);
    d.disableRefresh();
    d.wait(1.8);
    d.enableRefresh();
    auto copy = d.readAndCompare();
    EXPECT_EQ(d.readAndCompareInto(), copy);
    EXPECT_EQ(d.readAndCompareInto(), copy);
    auto truth_copy = d.trueFailingSet(1.5, 45.0);
    EXPECT_EQ(d.trueFailingSetInto(1.5, 45.0), truth_copy);
    EXPECT_EQ(d.readAndCompareInto(), copy); // interleaved
}

TEST(DramDevice, SolidPatternsSeeFewerFailuresThanUnion)
{
    // A single static pattern cannot see cells whose worst pattern is a
    // different class (DPD, Observation 3).
    DramDevice d(statsConfig(12));
    double t = 2.0;
    std::set<uint64_t> unions;
    size_t solid0_count = 0;
    for (DataPattern p : allDataPatterns()) {
        d.writePattern(p);
        d.disableRefresh();
        d.wait(t);
        d.enableRefresh();
        auto fails = d.readAndCompare();
        if (p == DataPattern::Solid0)
            solid0_count = fails.size();
        unions.insert(fails.begin(), fails.end());
    }
    EXPECT_LT(solid0_count, unions.size());
}

} // namespace
} // namespace dram
} // namespace reaper
