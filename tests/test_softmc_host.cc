/**
 * @file
 * Tests for the SoftMC-like host interface: I/O cost accounting,
 * chamber integration, and command tracing.
 */

#include <gtest/gtest.h>

#include "testbed/softmc_host.h"

namespace reaper {
namespace testbed {
namespace {

dram::ModuleConfig
smallModule()
{
    dram::ModuleConfig cfg;
    cfg.numChips = 2;
    cfg.chipCapacityBits = 512ull * 1024 * 1024; // 64 MB each
    cfg.seed = 1;
    cfg.envelope = {2.5, 50.0};
    return cfg;
}

HostConfig
instantHost()
{
    HostConfig h;
    h.useChamber = false;
    return h;
}

TEST(SoftMcHost, IoTimeScalesWithCapacity)
{
    dram::DramModule m(smallModule());
    SoftMcHost host(m, instantHost());
    // 2 chips x 64 MB = 128 MB = 0.125 GB -> 0.0625 * 0.125 s each way.
    EXPECT_NEAR(host.fullModuleIoTime(), 0.0625 * 0.125, 1e-12);
}

TEST(SoftMcHost, PaperIoAnchorTwoGBTakes125ms)
{
    // Section 6.1.1: read/write of 2 GB takes ~0.125 s each way.
    dram::ModuleConfig cfg = smallModule();
    cfg.numChips = 1;
    cfg.chipCapacityBits = 16ull * 1024 * 1024 * 1024; // 2 GB
    cfg.envelope = {1.2, 46.0}; // keep the population small
    dram::DramModule m(cfg);
    SoftMcHost host(m, instantHost());
    EXPECT_NEAR(host.fullModuleIoTime(), 0.125, 1e-12);
}

TEST(SoftMcHost, WriteAdvancesTimeByIoCost)
{
    dram::DramModule m(smallModule());
    SoftMcHost host(m, instantHost());
    Seconds before = host.now();
    host.writeAll(dram::DataPattern::Solid0);
    EXPECT_NEAR(host.now() - before, host.fullModuleIoTime(), 1e-12);
    EXPECT_NEAR(host.ioTime(), host.fullModuleIoTime(), 1e-12);
}

TEST(SoftMcHost, ReadAdvancesTimeAndAccounts)
{
    dram::DramModule m(smallModule());
    SoftMcHost host(m, instantHost());
    host.writeAll(dram::DataPattern::Solid0);
    host.readAndCompareAll();
    EXPECT_NEAR(host.ioTime(), 2.0 * host.fullModuleIoTime(), 1e-12);
}

TEST(SoftMcHost, WaitAdvancesExactly)
{
    dram::DramModule m(smallModule());
    SoftMcHost host(m, instantHost());
    host.wait(1.5);
    EXPECT_NEAR(host.now(), 1.5, 1e-12);
}

TEST(SoftMcHost, InstantTemperatureWithoutChamber)
{
    dram::DramModule m(smallModule());
    SoftMcHost host(m, instantHost());
    Seconds before = host.now();
    host.setAmbient(48.0);
    EXPECT_EQ(host.now(), before); // no settle time
    EXPECT_EQ(m.chip(0).temperature(), 48.0);
    EXPECT_EQ(host.ambient(), 48.0);
}

TEST(SoftMcHost, ChamberSettleTakesTimeAndTracksSetpoint)
{
    dram::DramModule m(smallModule());
    HostConfig cfg;
    cfg.useChamber = true;
    SoftMcHost host(m, cfg);
    host.setAmbient(45.0);
    EXPECT_GT(host.now(), 0.0); // settling consumed virtual time
    EXPECT_NEAR(m.chip(0).temperature(), 45.0, 0.5);
}

TEST(SoftMcHost, ChamberJittersWithinBand)
{
    dram::DramModule m(smallModule());
    HostConfig cfg;
    cfg.useChamber = true;
    SoftMcHost host(m, cfg);
    host.setAmbient(45.0);
    double lo = 100.0, hi = 0.0;
    for (int i = 0; i < 50; ++i) {
        host.wait(10.0);
        lo = std::min(lo, m.chip(0).temperature());
        hi = std::max(hi, m.chip(0).temperature());
    }
    EXPECT_GT(hi - lo, 0.0);  // some jitter exists
    EXPECT_LT(hi - lo, 1.0);  // but bounded
}

TEST(SoftMcHost, AlgorithmOneRoundFindsFailures)
{
    dram::ModuleConfig mc = smallModule();
    mc.chipCapacityBits = 4ull * 1024 * 1024 * 1024; // 512 MB
    mc.numChips = 1;
    dram::DramModule m(mc);
    SoftMcHost host(m, instantHost());
    host.setAmbient(45.0);
    host.writeAll(dram::DataPattern::Random);
    host.disableRefresh();
    host.wait(2.0);
    host.enableRefresh();
    auto fails = host.readAndCompareAll();
    EXPECT_GT(fails.size(), 0u);
}

TEST(SoftMcHost, TraceRecordsCommands)
{
    dram::DramModule m(smallModule());
    HostConfig cfg = instantHost();
    cfg.recordTrace = true;
    SoftMcHost host(m, cfg);
    host.setAmbient(45.0);
    host.writeAll(dram::DataPattern::Checkerboard);
    host.disableRefresh();
    host.wait(0.5);
    host.enableRefresh();
    host.readAndCompareAll();
    ASSERT_EQ(host.trace().size(), 6u);
    EXPECT_EQ(host.trace()[0].kind, CommandKind::SetAmbient);
    EXPECT_EQ(host.trace()[1].kind, CommandKind::WritePattern);
    EXPECT_EQ(host.trace()[2].kind, CommandKind::DisableRefresh);
    EXPECT_EQ(host.trace()[3].kind, CommandKind::Wait);
    EXPECT_DOUBLE_EQ(host.trace()[3].param, 0.5);
    EXPECT_EQ(host.trace()[4].kind, CommandKind::EnableRefresh);
    EXPECT_EQ(host.trace()[5].kind, CommandKind::ReadCompare);
    host.clearTrace();
    EXPECT_TRUE(host.trace().empty());
}

TEST(SoftMcHost, RestoreCostsOneWritePass)
{
    dram::DramModule m(smallModule());
    SoftMcHost host(m, instantHost());
    host.writeAll(dram::DataPattern::Solid0);
    Seconds before = host.now();
    host.restoreAll();
    EXPECT_NEAR(host.now() - before, host.fullModuleIoTime(), 1e-12);
    EXPECT_NEAR(host.ioTime(), 2.0 * host.fullModuleIoTime(), 1e-12);
}

TEST(SoftMcHost, RestoreClearsAccumulatedFailures)
{
    dram::ModuleConfig mc = smallModule();
    mc.chipCapacityBits = 4ull * 1024 * 1024 * 1024; // 512 MB
    mc.numChips = 1;
    dram::DramModule m(mc);
    SoftMcHost host(m, instantHost());
    host.setAmbient(45.0);
    host.writeAll(dram::DataPattern::Random);
    host.disableRefresh();
    host.wait(2.0);
    host.enableRefresh();
    ASSERT_GT(host.readAndCompareAll().size(), 0u);
    host.restoreAll();
    EXPECT_TRUE(host.readAndCompareAll().empty());
}

TEST(SoftMcHost, RestoreRecordedInTrace)
{
    dram::DramModule m(smallModule());
    HostConfig cfg = instantHost();
    cfg.recordTrace = true;
    SoftMcHost host(m, cfg);
    host.writeAll(dram::DataPattern::Solid0);
    host.restoreAll();
    ASSERT_EQ(host.trace().size(), 2u);
    EXPECT_EQ(host.trace()[1].kind, CommandKind::Restore);
}

TEST(SoftMcHost, TraceDisabledByDefault)
{
    dram::DramModule m(smallModule());
    SoftMcHost host(m, instantHost());
    host.wait(1.0);
    EXPECT_TRUE(host.trace().empty());
}

} // namespace
} // namespace testbed
} // namespace reaper
