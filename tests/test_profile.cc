/**
 * @file
 * Tests for RetentionProfile set semantics and metric scoring.
 */

#include <gtest/gtest.h>

#include "profiling/profile.h"

namespace reaper {
namespace profiling {
namespace {

using dram::ChipFailure;

TEST(RetentionProfile, StartsEmpty)
{
    RetentionProfile p;
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.size(), 0u);
}

TEST(RetentionProfile, AddDeduplicatesAndSorts)
{
    RetentionProfile p;
    p.add({{1, 10}, {0, 5}, {1, 10}, {0, 2}});
    EXPECT_EQ(p.size(), 3u);
    EXPECT_EQ(p.cells()[0], (ChipFailure{0, 2}));
    EXPECT_EQ(p.cells()[1], (ChipFailure{0, 5}));
    EXPECT_EQ(p.cells()[2], (ChipFailure{1, 10}));
}

TEST(RetentionProfile, AddAccumulatesAcrossCalls)
{
    RetentionProfile p;
    p.add({{0, 1}});
    p.add({{0, 2}, {0, 1}});
    EXPECT_EQ(p.size(), 2u);
}

TEST(RetentionProfile, AddEmptyIsNoop)
{
    RetentionProfile p;
    p.add({{0, 1}});
    p.add({});
    EXPECT_EQ(p.size(), 1u);
}

TEST(RetentionProfile, ContainsBinarySearch)
{
    RetentionProfile p;
    p.add({{0, 1}, {2, 7}, {5, 3}});
    EXPECT_TRUE(p.contains({2, 7}));
    EXPECT_FALSE(p.contains({2, 8}));
    EXPECT_FALSE(p.contains({3, 7}));
}

TEST(RetentionProfile, MergeUnions)
{
    RetentionProfile a, b;
    a.add({{0, 1}, {0, 2}});
    b.add({{0, 2}, {0, 3}});
    a.merge(b);
    EXPECT_EQ(a.size(), 3u);
}

TEST(RetentionProfile, IntersectionSize)
{
    RetentionProfile p;
    p.add({{0, 1}, {0, 3}, {0, 5}, {1, 1}});
    std::vector<ChipFailure> other = {{0, 2}, {0, 3}, {1, 1}, {1, 2}};
    EXPECT_EQ(p.intersectionSize(other), 2u);
    EXPECT_EQ(p.intersectionSize({}), 0u);
}

TEST(RetentionProfile, ConditionsRoundTrip)
{
    Conditions c{1.024, 45.0};
    RetentionProfile p(c);
    EXPECT_DOUBLE_EQ(p.conditions().refreshInterval, 1.024);
    EXPECT_DOUBLE_EQ(p.conditions().temperature, 45.0);
    p.setConditions({2.048, 55.0});
    EXPECT_DOUBLE_EQ(p.conditions().refreshInterval, 2.048);
}

TEST(ScoreProfile, PerfectProfile)
{
    RetentionProfile p;
    p.add({{0, 1}, {0, 2}});
    std::vector<ChipFailure> truth = {{0, 1}, {0, 2}};
    ProfileMetrics m = scoreProfile(p, truth, 10.0);
    EXPECT_DOUBLE_EQ(m.coverage, 1.0);
    EXPECT_DOUBLE_EQ(m.falsePositiveRate, 0.0);
    EXPECT_DOUBLE_EQ(m.runtime, 10.0);
    EXPECT_EQ(m.truePositives, 2u);
    EXPECT_EQ(m.falsePositives, 0u);
}

TEST(ScoreProfile, PartialCoverageWithFalsePositives)
{
    RetentionProfile p;
    p.add({{0, 1}, {0, 9}, {0, 8}}); // one true, two false
    std::vector<ChipFailure> truth = {{0, 1}, {0, 2}};
    ProfileMetrics m = scoreProfile(p, truth, 1.0);
    EXPECT_DOUBLE_EQ(m.coverage, 0.5);
    EXPECT_NEAR(m.falsePositiveRate, 2.0 / 3.0, 1e-12);
    EXPECT_EQ(m.truthSize, 2u);
    EXPECT_EQ(m.discovered, 3u);
}

TEST(ScoreProfile, EmptyTruthIsFullCoverage)
{
    RetentionProfile p;
    ProfileMetrics m = scoreProfile(p, {}, 0.0);
    EXPECT_DOUBLE_EQ(m.coverage, 1.0);
    EXPECT_DOUBLE_EQ(m.falsePositiveRate, 0.0);
}

TEST(ScoreProfile, EmptyProfileZeroCoverage)
{
    RetentionProfile p;
    std::vector<ChipFailure> truth = {{0, 1}};
    ProfileMetrics m = scoreProfile(p, truth, 0.0);
    EXPECT_DOUBLE_EQ(m.coverage, 0.0);
    EXPECT_DOUBLE_EQ(m.falsePositiveRate, 0.0);
}

} // namespace
} // namespace profiling
} // namespace reaper
