/**
 * @file
 * Tests for Ramulator-style trace serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "sim/trace_io.h"
#include "workload/synthetic.h"

namespace reaper {
namespace sim {
namespace {

Trace
sampleTrace()
{
    Trace t;
    t.name = "sample";
    t.entries = {{10, 0x1000, false},
                 {0, 0xdeadbeef00ull, true},
                 {999, 64, false}};
    return t;
}

TEST(TraceIo, RoundTrip)
{
    Trace original = sampleTrace();
    std::stringstream ss;
    saveTrace(original, ss);
    Trace loaded = loadTrace(ss);
    EXPECT_EQ(loaded.name, "sample");
    ASSERT_EQ(loaded.entries.size(), original.entries.size());
    for (size_t i = 0; i < original.entries.size(); ++i) {
        EXPECT_EQ(loaded.entries[i].bubbles,
                  original.entries[i].bubbles);
        EXPECT_EQ(loaded.entries[i].addr, original.entries[i].addr);
        EXPECT_EQ(loaded.entries[i].isWrite,
                  original.entries[i].isWrite);
    }
}

TEST(TraceIo, FormatExample)
{
    std::stringstream ss;
    saveTrace(sampleTrace(), ss);
    std::string text = ss.str();
    EXPECT_NE(text.find("# trace: sample"), std::string::npos);
    EXPECT_NE(text.find("10 R 0x1000"), std::string::npos);
    EXPECT_NE(text.find("0 W 0xdeadbeef00"), std::string::npos);
}

TEST(TraceIo, ParsesHandWrittenRamulatorStyle)
{
    std::stringstream ss("# a comment\n"
                         "\n"
                         "5 R 0x100\n"
                         "3 w 256\n" // decimal + lowercase op
                         "0 R 0X40\n");
    Trace t = loadTrace(ss);
    ASSERT_EQ(t.entries.size(), 3u);
    EXPECT_EQ(t.entries[0].addr, 0x100u);
    EXPECT_EQ(t.entries[1].addr, 256u);
    EXPECT_TRUE(t.entries[1].isWrite);
    EXPECT_EQ(t.entries[2].addr, 0x40u);
}

TEST(TraceIo, RejectsMalformedLines)
{
    Trace t;
    std::string error;
    std::stringstream bad_op("1 X 0x10\n");
    EXPECT_FALSE(tryLoadTrace(bad_op, &t, &error));
    EXPECT_NE(error.find("bad op"), std::string::npos);

    std::stringstream bad_addr("1 R zzz\n");
    EXPECT_FALSE(tryLoadTrace(bad_addr, &t, &error));
    EXPECT_NE(error.find("bad address"), std::string::npos);

    std::stringstream missing("42\n");
    EXPECT_FALSE(tryLoadTrace(missing, &t, &error));
    EXPECT_NE(error.find("expected"), std::string::npos);
}

TEST(TraceIo, FileRoundTripAndMissingFile)
{
    std::string path = ::testing::TempDir() + "reaper_trace_test.txt";
    saveTraceFile(sampleTrace(), path);
    Trace loaded = loadTraceFile(path);
    EXPECT_EQ(loaded.entries.size(), 3u);
    std::remove(path.c_str());
    EXPECT_EXIT(loadTraceFile("/nonexistent/trace.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIo, SyntheticTraceSurvivesRoundTrip)
{
    const workload::BenchmarkSpec &spec =
        workload::benchmarkByName("gcc");
    Trace original = workload::generateTrace(spec, 2000, 5);
    std::stringstream ss;
    saveTrace(original, ss);
    Trace loaded = loadTrace(ss);
    ASSERT_EQ(loaded.entries.size(), original.entries.size());
    EXPECT_NEAR(loaded.apki(), original.apki(), 1e-9);
    EXPECT_EQ(loaded.instructionCount(), original.instructionCount());
}

TEST(TraceIo, EmptyInputGivesEmptyTrace)
{
    std::stringstream ss("");
    Trace t = loadTrace(ss);
    EXPECT_TRUE(t.entries.empty());
}

} // namespace
} // namespace sim
} // namespace reaper
