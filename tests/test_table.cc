/**
 * @file
 * Tests for the ASCII table/series printers used by the benches.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.h"

namespace reaper {
namespace {

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t({"a", "long_header"});
    t.addRow({"xxxx", "1"});
    t.addRow({"y", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("a     long_header"), std::string::npos);
    EXPECT_NE(out.find("xxxx  1"), std::string::npos);
    EXPECT_NE(out.find("y     22"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TablePrinter, PadsShortRows)
{
    TablePrinter t({"a", "b", "c"});
    t.addRow({"1"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("1"), std::string::npos);
}

TEST(Format, FmtG)
{
    EXPECT_EQ(fmtG(1234.5678, 4), "1235");
    EXPECT_EQ(fmtG(1.5e-9, 3), "1.5e-09");
}

TEST(Format, FmtF)
{
    EXPECT_EQ(fmtF(3.14159, 2), "3.14");
    EXPECT_EQ(fmtF(-0.5, 1), "-0.5");
}

TEST(Format, FmtPct)
{
    EXPECT_EQ(fmtPct(0.123, 1), "12.3%");
    EXPECT_EQ(fmtPct(1.0, 0), "100%");
}

TEST(Format, FmtTimeUnits)
{
    EXPECT_EQ(fmtTime(5e-9), "5.0ns");
    EXPECT_EQ(fmtTime(5e-6), "5.0us");
    EXPECT_EQ(fmtTime(0.064), "64.0ms");
    EXPECT_EQ(fmtTime(2.5), "2.50s");
    EXPECT_EQ(fmtTime(600.0), "10.00min");
    EXPECT_EQ(fmtTime(7200.0), "2.00h");
    EXPECT_EQ(fmtTime(3.0 * 86400.0), "3.00days");
}

TEST(Format, Banner)
{
    std::ostringstream os;
    printBanner(os, "Figure 2");
    EXPECT_EQ(os.str(), "\n=== Figure 2 ===\n");
}

} // namespace
} // namespace reaper
