/**
 * @file
 * Tests for the FR-FCFS memory controller: command correctness, row
 * buffer behaviour, write draining, and refresh blocking.
 */

#include <gtest/gtest.h>

#include "sim/memctrl.h"

namespace reaper {
namespace sim {
namespace {

MemCtrlConfig
baseConfig()
{
    MemCtrlConfig cfg;
    cfg.timing = lpddr4_3200(8);
    cfg.rowsPerBank = 1024;
    return cfg;
}

/** Tick until the controller drains or max cycles pass. */
Cycle
runUntilIdle(MemoryController &mc, Cycle max_cycles = 1000000)
{
    Cycle start = mc.now();
    while (mc.hasPendingWork() && mc.now() - start < max_cycles)
        mc.tick();
    return mc.now() - start;
}

MemRequest
readReq(uint64_t addr, std::function<void()> done = nullptr)
{
    MemRequest r;
    r.addr = addr;
    r.isWrite = false;
    r.onComplete = std::move(done);
    return r;
}

TEST(MemCtrl, SingleReadCompletesWithActRdLatency)
{
    MemCtrlConfig cfg = baseConfig();
    cfg.refreshWindowScale = 0; // isolate request timing
    MemoryController mc(cfg);
    bool done = false;
    Cycle done_at = 0;
    ASSERT_TRUE(mc.enqueue(readReq(0, [&]() {
                               done = true;
                           }),
                           DramAddr{0, 0, 5, 0}));
    while (!done)
        mc.tick();
    done_at = mc.now();
    // ACT at ~1, RD at 1+tRCD, data at +tRL+tBURST.
    const TimingParams &t = cfg.timing;
    EXPECT_NEAR(static_cast<double>(done_at),
                static_cast<double>(1 + t.tRCD + t.tRL + t.tBURST), 3.0);
    EXPECT_EQ(mc.stats().commands.act, 1u);
    EXPECT_EQ(mc.stats().commands.rd, 1u);
}

TEST(MemCtrl, RowHitsAvoidExtraActivates)
{
    MemCtrlConfig cfg = baseConfig();
    cfg.refreshWindowScale = 0;
    MemoryController mc(cfg);
    int done = 0;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(mc.enqueue(readReq(static_cast<uint64_t>(i) * 64,
                                       [&]() { ++done; }),
                               DramAddr{0, 0, 7,
                                        static_cast<uint32_t>(i)}));
    }
    runUntilIdle(mc);
    EXPECT_EQ(done, 8);
    EXPECT_EQ(mc.stats().commands.act, 1u); // one row opening
    EXPECT_EQ(mc.stats().commands.rd, 8u);
    EXPECT_EQ(mc.stats().rowHits(), 7u);
}

TEST(MemCtrl, RowConflictPrecharges)
{
    MemCtrlConfig cfg = baseConfig();
    cfg.refreshWindowScale = 0;
    MemoryController mc(cfg);
    int done = 0;
    ASSERT_TRUE(mc.enqueue(readReq(0, [&]() { ++done; }),
                           DramAddr{0, 0, 1, 0}));
    ASSERT_TRUE(mc.enqueue(readReq(64, [&]() { ++done; }),
                           DramAddr{0, 0, 2, 0}));
    runUntilIdle(mc);
    EXPECT_EQ(done, 2);
    EXPECT_EQ(mc.stats().commands.act, 2u);
    EXPECT_GE(mc.stats().commands.pre, 1u);
}

TEST(MemCtrl, ClosedPolicyPrechargesEveryAccess)
{
    MemCtrlConfig cfg = baseConfig();
    cfg.refreshWindowScale = 0;
    cfg.rowPolicy = RowPolicy::Closed;
    MemoryController mc(cfg);
    int done = 0;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(mc.enqueue(readReq(static_cast<uint64_t>(i) * 64,
                                       [&]() { ++done; }),
                               DramAddr{0, 0, 3,
                                        static_cast<uint32_t>(i)}));
    }
    runUntilIdle(mc);
    EXPECT_EQ(done, 4);
    // Requests arrive together, so FR-FCFS may still batch row hits
    // before the auto-precharge closes the row; at minimum the last
    // access closes it.
    EXPECT_GE(mc.stats().commands.pre, 1u);
}

TEST(MemCtrl, BankParallelismFasterThanSameBank)
{
    auto run_case = [](bool same_bank) {
        MemCtrlConfig cfg = baseConfig();
        cfg.refreshWindowScale = 0;
        MemoryController mc(cfg);
        int done = 0;
        for (uint32_t i = 0; i < 4; ++i) {
            DramAddr d{0, same_bank ? 0 : i, i + 10, 0};
            EXPECT_TRUE(mc.enqueue(
                readReq(i * 4096, [&]() { ++done; }), d));
        }
        Cycle cycles = runUntilIdle(mc);
        EXPECT_EQ(done, 4);
        return cycles;
    };
    EXPECT_LT(run_case(false), run_case(true));
}

TEST(MemCtrl, WritesArePosted)
{
    MemCtrlConfig cfg = baseConfig();
    cfg.refreshWindowScale = 0;
    MemoryController mc(cfg);
    bool acked = false;
    MemRequest w;
    w.addr = 0;
    w.isWrite = true;
    w.onComplete = [&]() { acked = true; };
    ASSERT_TRUE(mc.enqueue(w, DramAddr{0, 0, 1, 0}));
    EXPECT_TRUE(acked); // ack at enqueue, before any command issues
    runUntilIdle(mc);
    EXPECT_EQ(mc.stats().commands.wr, 1u);
}

TEST(MemCtrl, QueueCapacityEnforced)
{
    MemCtrlConfig cfg = baseConfig();
    cfg.queueCapacity = 4;
    MemoryController mc(cfg);
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(mc.enqueue(readReq(static_cast<uint64_t>(i) * 64),
                               DramAddr{0, 0, 1, 0}));
    }
    EXPECT_FALSE(mc.enqueue(readReq(999), DramAddr{0, 0, 1, 0}));
}

TEST(MemCtrl, RefreshIssuesOnSchedule)
{
    MemCtrlConfig cfg = baseConfig();
    MemoryController mc(cfg);
    for (Cycle i = 0; i < cfg.timing.tREFI * 4 + 100; ++i)
        mc.tick();
    EXPECT_EQ(mc.stats().commands.refab, 4u);
}

TEST(MemCtrl, LongerRefreshIntervalFewerRefreshes)
{
    MemCtrlConfig cfg = baseConfig();
    cfg.refreshWindowScale = 16.0; // 1024 ms target
    MemoryController mc(cfg);
    for (Cycle i = 0; i < cfg.timing.tREFI * 64 + 200; ++i)
        mc.tick();
    EXPECT_EQ(mc.stats().commands.refab, 4u); // 64 / 16
}

TEST(MemCtrl, NoRefreshMode)
{
    MemCtrlConfig cfg = baseConfig();
    cfg.refreshWindowScale = 0;
    MemoryController mc(cfg);
    for (Cycle i = 0; i < cfg.timing.tREFI * 8; ++i)
        mc.tick();
    EXPECT_EQ(mc.stats().commands.refab, 0u);
}

TEST(MemCtrl, RefreshClosesOpenRow)
{
    MemCtrlConfig cfg = baseConfig();
    MemoryController mc(cfg);
    // Open a row just before the refresh deadline.
    ASSERT_TRUE(mc.enqueue(readReq(0), DramAddr{0, 0, 9, 0}));
    runUntilIdle(mc);
    ASSERT_EQ(mc.stats().commands.act, 1u);
    for (Cycle i = 0; i < cfg.timing.tREFI + cfg.timing.tRFCab + 200;
         ++i)
        mc.tick();
    EXPECT_GE(mc.stats().commands.refab, 1u);
    // The open row was precharged so refresh could proceed.
    EXPECT_GE(mc.stats().commands.pre, 1u);
}

TEST(MemCtrl, RefreshDelaysPendingReads)
{
    // A read arriving during tRFC waits; compare its latency against
    // an unobstructed read.
    auto latency_with_refresh = [](bool refresh) {
        MemCtrlConfig cfg = baseConfig();
        cfg.refreshWindowScale = refresh ? 1.0 : 0.0;
        MemoryController mc(cfg);
        // Advance to just after a refresh began.
        for (Cycle i = 0; i < cfg.timing.tREFI + 5; ++i)
            mc.tick();
        bool done = false;
        Cycle start = mc.now();
        EXPECT_TRUE(mc.enqueue(readReq(0, [&]() { done = true; }),
                               DramAddr{0, 0, 1, 0}));
        while (!done)
            mc.tick();
        return mc.now() - start;
    };
    Cycle blocked = latency_with_refresh(true);
    Cycle free_run = latency_with_refresh(false);
    EXPECT_GT(blocked, free_run + baseConfig().timing.tRFCab / 2);
}

TEST(MemCtrl, WriteDrainServesWritesUnderReadPressure)
{
    MemCtrlConfig cfg = baseConfig();
    cfg.refreshWindowScale = 0;
    cfg.queueCapacity = 64;
    cfg.writeDrainHigh = 8;
    cfg.writeDrainLow = 2;
    MemoryController mc(cfg);
    // Saturate the write queue past the high watermark.
    for (uint32_t i = 0; i < 10; ++i) {
        MemRequest w;
        w.addr = i * 64;
        w.isWrite = true;
        ASSERT_TRUE(mc.enqueue(w, DramAddr{0, i % 8, 1, 0}));
    }
    runUntilIdle(mc);
    EXPECT_EQ(mc.stats().commands.wr, 10u);
}

TEST(MemCtrl, ConfigValidation)
{
    MemCtrlConfig cfg = baseConfig();
    cfg.banks = 0;
    EXPECT_DEATH(MemoryController mc(cfg), "banks");
    cfg = baseConfig();
    cfg.writeDrainLow = cfg.writeDrainHigh;
    EXPECT_DEATH(MemoryController mc(cfg), "writeDrain");
    cfg = baseConfig();
    cfg.refreshWindowScale = -1;
    EXPECT_DEATH(MemoryController mc(cfg), "negative");
}

} // namespace
} // namespace sim
} // namespace reaper
