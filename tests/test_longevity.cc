/**
 * @file
 * Tests for the profile longevity model (Eq. 7, Section 6.2.3).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"
#include "dram/retention_model.h"
#include "ecc/longevity.h"

namespace reaper {
namespace ecc {
namespace {

TEST(ProfileLongevity, PaperExample23Days)
{
    // Section 6.2.3: N = 65, C = 25, A = 0.73 cells/hour -> T = 2.3 days.
    LongevityInputs in;
    in.tolerableFailures = 65.0;
    in.missedFailures = 25.0;
    in.accumulationPerHour = 0.73;
    Seconds t = profileLongevity(in);
    EXPECT_NEAR(secToDays(t), 2.3, 0.05);
}

TEST(ProfileLongevity, ZeroWhenProfileInsufficient)
{
    LongevityInputs in;
    in.tolerableFailures = 10.0;
    in.missedFailures = 10.0;
    in.accumulationPerHour = 1.0;
    EXPECT_EQ(profileLongevity(in), 0.0);
    in.missedFailures = 20.0;
    EXPECT_EQ(profileLongevity(in), 0.0);
}

TEST(ProfileLongevity, InfiniteWithoutAccumulation)
{
    LongevityInputs in;
    in.tolerableFailures = 10.0;
    in.missedFailures = 0.0;
    in.accumulationPerHour = 0.0;
    EXPECT_TRUE(std::isinf(profileLongevity(in)));
}

TEST(ProfileLongevity, LinearInHeadroom)
{
    LongevityInputs a{100.0, 0.0, 2.0};
    LongevityInputs b{200.0, 0.0, 2.0};
    EXPECT_NEAR(profileLongevity(b) / profileLongevity(a), 2.0, 1e-9);
}

TEST(ComputeLongevity, EndToEndScenario)
{
    // The Section 6.2.3 scenario rebuilt from first principles: 2 GB,
    // SECDED, 1024 ms at 45 C, 99% coverage, A = 0.73/hour.
    LongevityScenario s;
    s.capacityBits = 16ull * 1024 * 1024 * 1024;
    s.eccStrength = EccConfig::secded();
    s.targetUber = kConsumerUber;
    dram::RetentionModel m{dram::vendorParams(dram::Vendor::B)};
    s.berAtTarget = m.berAt(1.024, 45.0);
    s.profilingCoverage = 0.99;
    s.accumulationPerHour =
        m.vrtCumulativeRate(1.024, s.capacityBits) * 3600.0;

    LongevityResult r = computeLongevity(s);
    // ~2464 failing cells at the target (Fig. 2 anchor).
    EXPECT_NEAR(r.expectedFailures, 2464.0, 60.0);
    EXPECT_NEAR(r.missedFailures, 24.6, 1.0);
    // With the w=72 SECDED budget (~91 errors) the longevity is ~3.8
    // days; with the paper's word size (N=65.3) it is 2.3 days.
    EXPECT_GT(secToDays(r.longevity), 1.5);
    EXPECT_LT(secToDays(r.longevity), 6.0);
}

TEST(ComputeLongevity, HigherCoverageLastsLonger)
{
    LongevityScenario s;
    s.capacityBits = 16ull * 1024 * 1024 * 1024;
    s.berAtTarget = 1.4e-7;
    s.accumulationPerHour = 0.73;
    s.profilingCoverage = 0.99;
    Seconds hi = computeLongevity(s).longevity;
    s.profilingCoverage = 0.95;
    Seconds lo = computeLongevity(s).longevity;
    EXPECT_GT(hi, lo);
}

TEST(ComputeLongevity, LongerIntervalShortensLongevity)
{
    // Both the failure count and the VRT rate grow with the interval.
    dram::RetentionModel m{dram::vendorParams(dram::Vendor::B)};
    auto longevity_at = [&](double t) {
        LongevityScenario s;
        s.capacityBits = 16ull * 1024 * 1024 * 1024;
        s.berAtTarget = m.berAt(t, 45.0);
        s.profilingCoverage = 1.0; // isolate the accumulation effect
        s.accumulationPerHour =
            m.vrtCumulativeRate(t, s.capacityBits) * 3600.0;
        return computeLongevity(s).longevity;
    };
    EXPECT_GT(longevity_at(0.512), longevity_at(1.024));
    EXPECT_GT(longevity_at(1.024), longevity_at(2.048));
}

TEST(ComputeLongevity, RejectsZeroCapacity)
{
    LongevityScenario s;
    s.capacityBits = 0;
    EXPECT_DEATH(computeLongevity(s), "capacityBits");
}

} // namespace
} // namespace ecc
} // namespace reaper
