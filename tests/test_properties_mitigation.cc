/**
 * @file
 * Property-style parameterized tests across the mitigation mechanisms
 * and the online firmware: invariants that must hold for every
 * mechanism and every target interval.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "common/rng.h"
#include "ecc/protected_memory.h"
#include "mitigation/archshield.h"
#include "mitigation/avatar.h"
#include "mitigation/raidr.h"
#include "mitigation/rapid.h"
#include "mitigation/rowmap.h"
#include "reaper/firmware.h"

namespace reaper {
namespace {

constexpr uint64_t kRowBits = 2048ull * 8;
constexpr uint64_t kCapacityBits = 1ull << 31; // 256 MB
constexpr uint64_t kTotalRows = kCapacityBits / kRowBits;

profiling::RetentionProfile
randomProfile(uint64_t seed, size_t cells)
{
    Rng rng(seed);
    std::vector<dram::ChipFailure> v;
    for (size_t i = 0; i < cells; ++i)
        v.push_back({0, rng.uniformInt(kCapacityBits)});
    profiling::RetentionProfile p({1.024, 45.0});
    p.add(v);
    return p;
}

/** Factory for each mechanism under test. */
std::unique_ptr<mitigation::MitigationMechanism>
makeMechanism(const std::string &name)
{
    if (name == "ArchShield") {
        mitigation::ArchShieldConfig cfg;
        cfg.capacityBits = kCapacityBits;
        return std::make_unique<mitigation::ArchShield>(cfg);
    }
    if (name == "RAIDR") {
        mitigation::RaidrConfig cfg;
        cfg.totalRows = kTotalRows;
        return std::make_unique<mitigation::Raidr>(cfg);
    }
    if (name == "RAIDR-bloom") {
        mitigation::RaidrConfig cfg;
        cfg.totalRows = kTotalRows;
        cfg.useBloomFilters = true;
        return std::make_unique<mitigation::Raidr>(cfg);
    }
    if (name == "RowMapOut") {
        mitigation::RowMapConfig cfg;
        cfg.totalRows = kTotalRows;
        cfg.maxMappedFraction = 0.5;
        return std::make_unique<mitigation::RowMapOut>(cfg);
    }
    if (name == "AVATAR") {
        mitigation::AvatarConfig cfg;
        cfg.totalRows = kTotalRows;
        return std::make_unique<mitigation::Avatar>(cfg);
    }
    if (name == "RAPID") {
        mitigation::RapidConfig cfg;
        cfg.totalRows = kTotalRows;
        return std::make_unique<mitigation::Rapid>(cfg);
    }
    ADD_FAILURE() << "unknown mechanism " << name;
    return nullptr;
}

class MechanismProperty
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(MechanismProperty, CoversEveryProfiledCell)
{
    // The fundamental mitigation contract: every cell in the
    // installed profile is covered.
    auto mech = makeMechanism(GetParam());
    profiling::RetentionProfile p = randomProfile(1, 400);
    mech->applyProfile(p);
    for (const auto &cell : p.cells())
        EXPECT_TRUE(mech->covers(cell)) << mech->name();
}

TEST_P(MechanismProperty, ReapplyingReplacesCoverage)
{
    auto mech = makeMechanism(GetParam());
    profiling::RetentionProfile first = randomProfile(2, 200);
    profiling::RetentionProfile second = randomProfile(3, 200);
    mech->applyProfile(first);
    mech->applyProfile(second);
    for (const auto &cell : second.cells())
        EXPECT_TRUE(mech->covers(cell));
}

TEST_P(MechanismProperty, StatsAreConsistent)
{
    auto mech = makeMechanism(GetParam());
    profiling::RetentionProfile p = randomProfile(4, 300);
    mech->applyProfile(p);
    mitigation::MitigationStats s = mech->stats();
    EXPECT_GT(s.protectedCells, 0u);
    EXPECT_GT(s.protectedRows, 0u);
    EXPECT_LE(s.protectedRows, s.protectedCells);
    EXPECT_GE(s.capacityOverhead, 0.0);
    EXPECT_LE(s.capacityOverhead, 1.0);
    EXPECT_GT(s.refreshWorkRelative, 0.0);
}

TEST_P(MechanismProperty, EmptyProfileCoversNothing)
{
    auto mech = makeMechanism(GetParam());
    mech->applyProfile(profiling::RetentionProfile{});
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        dram::ChipFailure f{0, rng.uniformInt(kCapacityBits)};
        // RAIDR-bloom may keep (empty) filters; still nothing inside.
        EXPECT_FALSE(mech->covers(f)) << mech->name();
    }
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, MechanismProperty,
                         ::testing::Values("ArchShield", "RAIDR",
                                           "RAIDR-bloom", "RowMapOut",
                                           "AVATAR", "RAPID"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &ch : n)
                                 if (ch == '-')
                                     ch = '_';
                             return n;
                         });

// ---------------------------------------------------------------
// Firmware safety across target intervals.
// ---------------------------------------------------------------

class FirmwareTargetProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(FirmwareTargetProperty, SafetyHoldsAtEveryTarget)
{
    double target = GetParam();
    dram::ModuleConfig mc;
    mc.numChips = 1;
    mc.chipCapacityBits = 2ull * 1024 * 1024 * 1024; // 256 MB
    mc.seed = 100 + static_cast<uint64_t>(target * 1000);
    mc.envelope = {target + 0.8, 50.0};
    mc.chipVariation = 0.0;
    dram::DramModule module(mc);
    testbed::HostConfig hc;
    hc.useChamber = false;
    testbed::SoftMcHost host(module, hc);

    mitigation::ArchShieldConfig ac;
    ac.capacityBits = module.capacityBits();
    mitigation::ArchShield shield(ac);
    firmware::OnlineReaperConfig cfg;
    cfg.target = {target, 45.0};
    firmware::OnlineReaper reaper(host, shield, cfg);
    reaper.profileOnce();
    auto audit = reaper.auditSafety();
    EXPECT_TRUE(audit.safe)
        << "target " << target << ": " << audit.uncovered << " vs "
        << audit.tolerable;
    // Longer targets must reprofile more often.
    EXPECT_GT(reaper.scheduledReprofileInterval(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Targets, FirmwareTargetProperty,
                         ::testing::Values(0.512, 0.768, 1.024,
                                           1.280),
                         [](const auto &info) {
                             return "t" + std::to_string(static_cast<int>(
                                        info.param * 1000)) + "ms";
                         });

// ---------------------------------------------------------------
// Protected-memory fuzz: random fault injection.
// ---------------------------------------------------------------

class ProtectedMemoryFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ProtectedMemoryFuzz, ScrubOutcomeMatchesFaultCollisions)
{
    // Whatever the random fault placement, the scrub must correct
    // exactly the single-fault words and flag exactly the multi-fault
    // words.
    Rng rng(GetParam());
    const uint64_t words = 400;
    ecc::EccProtectedMemory mem(words * 64);
    for (uint64_t w = 0; w < words; ++w)
        mem.writeWord(w, rng());
    std::map<uint64_t, std::set<uint64_t>> by_word;
    for (int i = 0; i < 120; ++i) {
        uint64_t bit = rng.uniformInt(words * 64);
        mem.injectFailure(bit); // idempotent per bit
        by_word[bit / 64].insert(bit);
    }
    uint64_t singles = 0, doubles = 0, triples_plus = 0;
    for (const auto &[w, bits] : by_word) {
        (void)w;
        if (bits.size() == 1)
            ++singles;
        else if (bits.size() == 2)
            ++doubles;
        else
            ++triples_plus;
    }
    auto report = mem.scrub();
    // SECDED guarantees: singles corrected, doubles detected. Words
    // with >= 3 faults are beyond the code's guarantee and may either
    // be flagged or miscorrected (faithful ECC behaviour).
    EXPECT_GE(report.corrected, singles);
    EXPECT_LE(report.corrected, singles + triples_plus);
    EXPECT_GE(report.uncorrectable, doubles);
    EXPECT_LE(report.uncorrectable, doubles + triples_plus);
    EXPECT_EQ(report.scanned, words);
    EXPECT_EQ(report.corrected + report.uncorrectable + report.clean,
              words);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtectedMemoryFuzz,
                         ::testing::Values(11, 22, 33, 44));

} // namespace
} // namespace reaper
