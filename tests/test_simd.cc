/**
 * @file
 * Tests for the SIMD micro-kernel layer (src/simd/): dispatch-level
 * resolution, CRC32C software/hardware equivalence against the RFC
 * 3720 vectors, bulk varint decode vs the byte-at-a-time reference,
 * and the batched word kernels vs their scalar twins.
 *
 * The equivalence tests sweep every small length and every alignment
 * offset so the vector paths' head/body/tail handling is exercised at
 * each boundary, and run randomized inputs through scalar, SWAR, and
 * (when the CPU has them) vector variants side by side.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "simd/crc32c.h"
#include "simd/dispatch.h"
#include "simd/varint.h"
#include "simd/words.h"

namespace reaper {
namespace simd {
namespace {

// ---------------------------------------------------------------------
// Dispatch resolution
// ---------------------------------------------------------------------

TEST(SimdDispatch, ResolveLevelAutoAndUnset)
{
    EXPECT_EQ(resolveLevel(nullptr, SimdLevel::Vector),
              SimdLevel::Vector);
    EXPECT_EQ(resolveLevel("", SimdLevel::Vector), SimdLevel::Vector);
    EXPECT_EQ(resolveLevel("auto", SimdLevel::Vector),
              SimdLevel::Vector);
    EXPECT_EQ(resolveLevel("auto", SimdLevel::Swar), SimdLevel::Swar);
}

TEST(SimdDispatch, ResolveLevelCapsButNeverRaises)
{
    EXPECT_EQ(resolveLevel("scalar", SimdLevel::Vector),
              SimdLevel::Scalar);
    EXPECT_EQ(resolveLevel("swar", SimdLevel::Vector), SimdLevel::Swar);
    // The cap cannot raise above what the CPU supports.
    EXPECT_EQ(resolveLevel("swar", SimdLevel::Scalar),
              SimdLevel::Scalar);
}

TEST(SimdDispatch, ResolveLevelUnknownValueFallsBackToDetected)
{
    EXPECT_EQ(resolveLevel("avx512-please", SimdLevel::Vector),
              SimdLevel::Vector);
}

TEST(SimdDispatch, ActiveLevelNeverExceedsDetected)
{
    EXPECT_LE(static_cast<int>(activeLevel()),
              static_cast<int>(detectedLevel()));
}

TEST(SimdDispatch, ToStringRoundTrip)
{
    EXPECT_STREQ(toString(SimdLevel::Scalar), "scalar");
    EXPECT_STREQ(toString(SimdLevel::Swar), "swar");
    EXPECT_STREQ(toString(SimdLevel::Vector), "vector");
}

// ---------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------

/** Run one buffer through every available implementation and require
 *  a single answer. */
uint32_t
crcAll(const void *data, size_t len)
{
    uint32_t sw = crc32cSoftware(0, data, len);
    EXPECT_EQ(crc32c(0, data, len), sw);
    if (crc32cHardwareAvailable())
        EXPECT_EQ(crc32cHardware(0, data, len), sw);
    return sw;
}

TEST(SimdCrc32c, Rfc3720Vectors)
{
    // RFC 3720 §B.4 test cases pin the Castagnoli polynomial and the
    // reflected bit order.
    const std::string digits = "123456789";
    EXPECT_EQ(crcAll(digits.data(), digits.size()), 0xE3069283u);

    std::vector<uint8_t> zeros(32, 0x00);
    EXPECT_EQ(crcAll(zeros.data(), zeros.size()), 0x8A9136AAu);

    std::vector<uint8_t> ones(32, 0xFF);
    EXPECT_EQ(crcAll(ones.data(), ones.size()), 0x62A8AB43u);

    std::vector<uint8_t> ascending(32);
    for (size_t i = 0; i < ascending.size(); ++i)
        ascending[i] = static_cast<uint8_t>(i);
    EXPECT_EQ(crcAll(ascending.data(), ascending.size()), 0x46DD794Eu);
}

TEST(SimdCrc32c, EmptyInput)
{
    EXPECT_EQ(crcAll(nullptr, 0), 0u);
    EXPECT_EQ(crc32cSoftware(0x12345678u, nullptr, 0), 0x12345678u);
    if (crc32cHardwareAvailable())
        EXPECT_EQ(crc32cHardware(0x12345678u, nullptr, 0), 0x12345678u);
}

TEST(SimdCrc32c, SoftwareHardwareEquivalenceAllLengthsAndAlignments)
{
    if (!crc32cHardwareAvailable())
        GTEST_SKIP() << "no CRC32C instruction on this host";
    Rng rng(0xC5C32Cull);
    // 8 (alignment) + 256 (max length) bytes of random data, re-rolled
    // per offset so each sweep sees fresh content.
    for (size_t offset = 0; offset < 8; ++offset) {
        std::vector<uint8_t> buf(8 + 256);
        for (uint8_t &b : buf)
            b = static_cast<uint8_t>(rng.uniformInt(256));
        const uint8_t *p = buf.data() + offset;
        for (size_t len = 0; len <= 256; ++len) {
            uint32_t sw = crc32cSoftware(0, p, len);
            uint32_t hw = crc32cHardware(0, p, len);
            ASSERT_EQ(sw, hw)
                << "offset=" << offset << " len=" << len;
        }
    }
}

TEST(SimdCrc32c, EquivalenceAcrossInterleaveThreshold)
{
    if (!crc32cHardwareAvailable())
        GTEST_SKIP() << "no CRC32C instruction on this host";
    // The hardware path switches to 3-way interleaved streams for
    // long inputs; sweep lengths bracketing every multiple of the
    // 3-lane superblock up to 4 superblocks, plus misalignment, so
    // the lane-recombination operators are proven against the
    // software reference.
    Rng rng(0x3AAE5ull);
    std::vector<uint8_t> buf(8 + 4 * 3 * 1024 + 64);
    for (uint8_t &b : buf)
        b = static_cast<uint8_t>(rng.uniformInt(256));
    for (size_t offset : {size_t(0), size_t(3)}) {
        const uint8_t *p = buf.data() + offset;
        for (size_t super = 1; super <= 4; ++super) {
            for (int d = -9; d <= 9; ++d) {
                size_t len =
                    static_cast<size_t>(3 * 1024 * super) +
                    static_cast<size_t>(d);
                uint32_t sw = crc32cSoftware(0, p, len);
                uint32_t hw = crc32cHardware(0, p, len);
                ASSERT_EQ(sw, hw)
                    << "offset=" << offset << " len=" << len;
            }
        }
        // Nonzero seed through the interleaved path.
        uint32_t seed = 0xDEADBEEFu;
        ASSERT_EQ(crc32cSoftware(seed, p, 3 * 1024 + 17),
                  crc32cHardware(seed, p, 3 * 1024 + 17));
    }
}

TEST(SimdCrc32c, IncrementalChainingMatchesOneShot)
{
    Rng rng(99);
    std::vector<uint8_t> buf(300);
    for (uint8_t &b : buf)
        b = static_cast<uint8_t>(rng.uniformInt(256));
    uint32_t oneShot = crc32c(0, buf.data(), buf.size());
    for (size_t split : {size_t(0), size_t(1), size_t(7), size_t(8),
                         size_t(123), size_t(299), size_t(300)}) {
        uint32_t a = crc32c(0, buf.data(), split);
        uint32_t chained =
            crc32c(a, buf.data() + split, buf.size() - split);
        EXPECT_EQ(chained, oneShot) << "split=" << split;
        if (crc32cHardwareAvailable()) {
            uint32_t hwChained = crc32cHardware(
                crc32cSoftware(0, buf.data(), split),
                buf.data() + split, buf.size() - split);
            EXPECT_EQ(hwChained, oneShot)
                << "mixed sw/hw chain, split=" << split;
        }
    }
}

// ---------------------------------------------------------------------
// Varint bulk decode
// ---------------------------------------------------------------------

/** Encode `values` as consecutive varints with `junk` leading bytes
 *  (to shift alignment) and optional trailing garbage. */
std::vector<uint8_t>
encodeStream(const std::vector<uint64_t> &values, size_t junk,
             size_t trailing)
{
    std::vector<uint8_t> buf(junk, 0xAB);
    uint8_t tmp[kMaxVarintBytes];
    for (uint64_t v : values) {
        size_t n = encodeVarint(tmp, v);
        buf.insert(buf.end(), tmp, tmp + n);
    }
    buf.insert(buf.end(), trailing, 0x7F);
    return buf;
}

void
expectDecodeParity(const std::vector<uint8_t> &buf, size_t junk,
                   size_t count, const std::vector<uint64_t> *expect)
{
    const uint8_t *p = buf.data() + junk;
    const uint8_t *end = buf.data() + buf.size();
    std::vector<uint64_t> aScalar(count), aSwar(count), aDisp(count);
    const uint8_t *rScalar =
        decodeVarintsScalar(p, end, aScalar.data(), count);
    const uint8_t *rSwar = decodeVarintsSwar(p, end, aSwar.data(), count);
    const uint8_t *rDisp = decodeVarints(p, end, aDisp.data(), count);
    ASSERT_EQ(rScalar == nullptr, rSwar == nullptr);
    ASSERT_EQ(rScalar == nullptr, rDisp == nullptr);
    if (rScalar == nullptr)
        return;
    EXPECT_EQ(rScalar, rSwar);
    EXPECT_EQ(rScalar, rDisp);
    EXPECT_EQ(aScalar, aSwar);
    EXPECT_EQ(aScalar, aDisp);
    if (expect != nullptr)
        EXPECT_EQ(aScalar, *expect);
}

TEST(SimdVarint, EncodeDecodeRoundTripAllMagnitudes)
{
    std::vector<uint64_t> values;
    for (int bits = 0; bits < 64; ++bits) {
        values.push_back(1ull << bits);
        values.push_back((1ull << bits) - 1);
        values.push_back((1ull << bits) | 0x55);
    }
    values.push_back(std::numeric_limits<uint64_t>::max());
    for (size_t junk = 0; junk < 8; ++junk) {
        std::vector<uint8_t> buf = encodeStream(values, junk, 0);
        expectDecodeParity(buf, junk, values.size(), &values);
    }
}

TEST(SimdVarint, RandomMixedMagnitudeStreams)
{
    Rng rng(0x7A12ull);
    for (int iter = 0; iter < 200; ++iter) {
        size_t count = rng.uniformInt(40);
        std::vector<uint64_t> values(count);
        for (uint64_t &v : values) {
            // Mixed magnitudes: mostly small deltas (1-2 byte varints,
            // the profile-stream distribution), some huge.
            unsigned bits = static_cast<unsigned>(rng.uniformInt(64));
            v = rng.uniformInt(std::numeric_limits<uint64_t>::max()) &
                ((bits == 63) ? ~0ull : ((1ull << (bits + 1)) - 1));
        }
        size_t junk = rng.uniformInt(8);
        size_t trailing = rng.uniformInt(4);
        std::vector<uint8_t> buf = encodeStream(values, junk, trailing);
        expectDecodeParity(buf, junk, count, &values);
    }
}

TEST(SimdVarint, TruncationParity)
{
    std::vector<uint64_t> values{1, 300, 0xDEADBEEFCAFEull, 5, 900000};
    std::vector<uint8_t> full = encodeStream(values, 0, 0);
    // Every proper prefix must fail identically in both decoders.
    for (size_t cut = 0; cut < full.size(); ++cut) {
        std::vector<uint8_t> buf(full.begin(), full.begin() + cut);
        const uint8_t *end = buf.data() + buf.size();
        std::vector<uint64_t> a(values.size()), b(values.size());
        const uint8_t *rs =
            decodeVarintsScalar(buf.data(), end, a.data(), a.size());
        const uint8_t *rw =
            decodeVarintsSwar(buf.data(), end, b.data(), b.size());
        EXPECT_EQ(rs, nullptr) << "cut=" << cut;
        EXPECT_EQ(rw, nullptr) << "cut=" << cut;
    }
}

TEST(SimdVarint, NonCanonicalTenByteEncodingAccepted)
{
    // 10-byte encoding of 1 with redundant high zero groups: the
    // historical decoder discards bits at shift >= 64, so this decodes
    // to 1 in both variants.
    std::vector<uint8_t> buf{0x81, 0x80, 0x80, 0x80, 0x80,
                             0x80, 0x80, 0x80, 0x80, 0x00};
    std::vector<uint64_t> expect{1};
    expectDecodeParity(buf, 0, 1, &expect);

    // The 10th byte's group starts at shift 63: its low bit is kept,
    // the six bits past 2^64 are discarded rather than an error.
    std::vector<uint8_t> high{0x80, 0x80, 0x80, 0x80, 0x80,
                              0x80, 0x80, 0x80, 0x80, 0x7F};
    std::vector<uint64_t> topBit{1ull << 63};
    expectDecodeParity(high, 0, 1, &topBit);
}

TEST(SimdVarint, OverlongEncodingRejectedByBoth)
{
    // A continuation bit still set at shift 64 (11 bytes and beyond)
    // is malformed in both decoders.
    std::vector<uint8_t> buf(11, 0x80);
    buf.push_back(0x00);
    const uint8_t *end = buf.data() + buf.size();
    uint64_t out;
    EXPECT_EQ(decodeVarintsScalar(buf.data(), end, &out, 1), nullptr);
    EXPECT_EQ(decodeVarintsSwar(buf.data(), end, &out, 1), nullptr);
    EXPECT_EQ(decodeVarints(buf.data(), end, &out, 1), nullptr);
}

TEST(SimdVarint, CountZeroConsumesNothing)
{
    std::vector<uint8_t> buf{0x01, 0x02};
    const uint8_t *end = buf.data() + buf.size();
    EXPECT_EQ(decodeVarintsScalar(buf.data(), end, nullptr, 0),
              buf.data());
    EXPECT_EQ(decodeVarintsSwar(buf.data(), end, nullptr, 0),
              buf.data());
}

// ---------------------------------------------------------------------
// Word kernels
// ---------------------------------------------------------------------

TEST(SimdWords, FillWordsAllLengths)
{
    for (size_t n = 0; n <= 130; ++n) {
        std::vector<uint64_t> a(n + 1, 0x1111111111111111ull);
        std::vector<uint64_t> b(n + 1, 0x1111111111111111ull);
        fillWordsScalar(a.data(), n, 0xDEADBEEFull);
        fillWords(b.data(), n, 0xDEADBEEFull);
        EXPECT_EQ(a, b) << "n=" << n;
        // The word past the end must be untouched.
        EXPECT_EQ(a[n], 0x1111111111111111ull);
        if (wordsVectorAvailable()) {
            std::vector<uint64_t> c(n + 1, 0x1111111111111111ull);
            fillWordsVector(c.data(), n, 0xDEADBEEFull);
            EXPECT_EQ(a, c) << "n=" << n;
        }
    }
}

TEST(SimdWords, CompareWordsEquivalenceRandom)
{
    Rng rng(0xC0FFEEull);
    for (int iter = 0; iter < 100; ++iter) {
        size_t n = rng.uniformInt(130);
        std::vector<uint64_t> got(n), expect(n);
        for (size_t i = 0; i < n; ++i) {
            got[i] = rng.uniformInt(4); // few distinct values ->
            expect[i] = rng.uniformInt(4); // frequent mismatches
        }
        std::vector<uint64_t> a, b, c, d;
        size_t na = compareWordsScalar(got.data(), expect.data(), n, a);
        size_t nb = compareWordsSwar(got.data(), expect.data(), n, b);
        size_t nd = compareWords(got.data(), expect.data(), n, d);
        EXPECT_EQ(na, a.size());
        EXPECT_EQ(nb, b.size());
        EXPECT_EQ(nd, d.size());
        EXPECT_EQ(a, b) << "n=" << n;
        EXPECT_EQ(a, d) << "n=" << n;
        if (wordsVectorAvailable()) {
            size_t nc =
                compareWordsVector(got.data(), expect.data(), n, c);
            EXPECT_EQ(nc, c.size());
            EXPECT_EQ(a, c) << "n=" << n;
        }
    }
}

TEST(SimdWords, CompareWordsAppendsToExistingOutput)
{
    std::vector<uint64_t> got{1, 2, 3}, expect{1, 9, 3};
    std::vector<uint64_t> out{777};
    size_t n = compareWords(got.data(), expect.data(), 3, out);
    EXPECT_EQ(n, 1u);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 777u);
    EXPECT_EQ(out[1], 1u);
}

TEST(SimdWords, ScanNotGreaterEquivalenceIncludingSpecials)
{
    Rng rng(0x5CA4ull);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    for (int iter = 0; iter < 100; ++iter) {
        size_t n = rng.uniformInt(130);
        double threshold = 0.5;
        std::vector<double> vals(n);
        for (double &v : vals) {
            switch (rng.uniformInt(6)) {
            case 0: v = nan; break;        // !(nan > t) -> emitted
            case 1: v = inf; break;        // never emitted
            case 2: v = -inf; break;       // always emitted
            case 3: v = threshold; break;  // equal -> emitted
            default:
                v = static_cast<double>(rng.uniformInt(1000)) / 500.0;
            }
        }
        std::vector<uint32_t> a, b;
        scanNotGreaterScalar(vals.data(), n, threshold, a);
        scanNotGreater(vals.data(), n, threshold, b);
        EXPECT_EQ(a, b) << "n=" << n;
        if (wordsVectorAvailable()) {
            std::vector<uint32_t> c;
            scanNotGreaterVector(vals.data(), n, threshold, c);
            EXPECT_EQ(a, c) << "n=" << n;
        }
    }
}

TEST(SimdWords, ScanNotGreaterNanThresholdEmitsEverything)
{
    // !(v > NaN) is true for every v, including NaN itself.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::vector<double> vals{-1.0, 0.0, 1e308, nan};
    std::vector<uint32_t> a, b;
    scanNotGreaterScalar(vals.data(), vals.size(), nan, a);
    scanNotGreater(vals.data(), vals.size(), nan, b);
    std::vector<uint32_t> all{0, 1, 2, 3};
    EXPECT_EQ(a, all);
    EXPECT_EQ(b, all);
    if (wordsVectorAvailable()) {
        std::vector<uint32_t> c;
        scanNotGreaterVector(vals.data(), vals.size(), nan, c);
        EXPECT_EQ(c, all);
    }
}

} // namespace
} // namespace simd
} // namespace reaper
