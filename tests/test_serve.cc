/**
 * @file
 * Tests for the profile-serving subsystem: cache singleflight and
 * eviction, engine determinism across worker counts, bounded-queue
 * backpressure (reject, never deadlock), graceful drain, and the
 * metrics surface. Runs under `ctest -L sanitize` with
 * -DREAPER_SANITIZE=thread.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "campaign/profile_store.h"
#include "common/rng.h"
#include "serve/metrics.h"
#include "serve/profile_cache.h"
#include "serve/query_engine.h"
#include "serve/workload.h"

namespace fs = std::filesystem;

namespace reaper {
namespace serve {
namespace {

constexpr uint64_t kRowBits = 512;
constexpr uint64_t kRows = 1024;

std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("reaper_" + name);
    fs::remove_all(dir);
    return dir.string();
}

profiling::RetentionProfile
randomProfile(uint64_t seed, size_t cells)
{
    Rng rng(seed);
    std::vector<dram::ChipFailure> v;
    v.reserve(cells);
    for (size_t i = 0; i < cells; ++i)
        v.push_back({0, rng.uniformInt(kRows * kRowBits)});
    profiling::RetentionProfile p({1.024, 45.0});
    p.add(v);
    return p;
}

/** A store populated with `n` profiles; returns their keys. */
std::vector<std::string>
populateStore(campaign::ProfileStore &store, size_t n,
              size_t cells = 400)
{
    std::vector<std::string> keys;
    for (size_t i = 0; i < n; ++i) {
        std::string key = campaign::ProfileStore::profileKey(
            "chip-" + std::to_string(i), {1.024, 45.0});
        store.commit(key, randomProfile(1000 + i, cells));
        keys.push_back(key);
    }
    return keys;
}

CacheConfig
testCacheConfig()
{
    CacheConfig cfg;
    cfg.directory.rowBits = kRowBits;
    return cfg;
}

// ---------------- ProfileCache ----------------

TEST(ProfileCache, HitAfterMiss)
{
    campaign::ProfileStore store(scratchDir("cache_hit"));
    auto keys = populateStore(store, 2);
    ProfileCache cache(store, testCacheConfig());

    CacheResult first = cache.get(keys[0]);
    ASSERT_TRUE(first.dir);
    EXPECT_EQ(first.outcome, CacheOutcome::Miss);
    CacheResult second = cache.get(keys[0]);
    ASSERT_TRUE(second.dir);
    EXPECT_EQ(second.outcome, CacheOutcome::Hit);
    EXPECT_EQ(first.dir.get(), second.dir.get());

    CacheCounters c = cache.counters();
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.loads, 1u);
    EXPECT_EQ(c.entries, 1u);
    EXPECT_GT(c.bytes, 0u);
}

TEST(ProfileCache, NegativeCachingForUnknownKeys)
{
    campaign::ProfileStore store(scratchDir("cache_negative"));
    populateStore(store, 1);
    ProfileCache cache(store, testCacheConfig());

    CacheResult first = cache.get("no-such-chip@trefi64.000ms@45.00C");
    EXPECT_FALSE(first.dir);
    EXPECT_EQ(first.outcome, CacheOutcome::NotFound);
    CacheResult second = cache.get("no-such-chip@trefi64.000ms@45.00C");
    EXPECT_FALSE(second.dir);
    EXPECT_EQ(second.outcome, CacheOutcome::NegativeHit);
    // The store was consulted exactly once for the ghost key.
    EXPECT_EQ(cache.counters().loads, 1u);
    EXPECT_EQ(cache.counters().failedLoads, 1u);
}

TEST(ProfileCache, InvalidateDropsNegativeEntryAfterCommit)
{
    campaign::ProfileStore store(scratchDir("cache_invalidate"));
    ProfileCache cache(store, testCacheConfig());
    std::string key = campaign::ProfileStore::profileKey(
        "late-chip", {1.024, 45.0});

    EXPECT_EQ(cache.get(key).outcome, CacheOutcome::NotFound);
    store.commit(key, randomProfile(7, 100));
    // Still negatively cached...
    EXPECT_EQ(cache.get(key).outcome, CacheOutcome::NegativeHit);
    // ...until invalidated.
    cache.invalidate(key);
    CacheResult r = cache.get(key);
    EXPECT_EQ(r.outcome, CacheOutcome::Miss);
    ASSERT_TRUE(r.dir);
    EXPECT_GT(r.dir->weakCellCount(), 0u);
}

TEST(ProfileCache, ByteAccountedEviction)
{
    campaign::ProfileStore store(scratchDir("cache_evict"));
    auto keys = populateStore(store, 8, 2000);
    CacheConfig cfg = testCacheConfig();
    cfg.shards = 1; // single shard so capacity math is exact
    // Fit roughly two compiled directories.
    ProfileCache probe(store, cfg);
    size_t one = probe.get(keys[0]).dir->sizeBytes();
    cfg.capacityBytes = one * 2 + one / 2;
    ProfileCache cache(store, cfg);
    for (const auto &key : keys)
        ASSERT_TRUE(cache.get(key).dir);
    CacheCounters c = cache.counters();
    EXPECT_GT(c.evictions, 0u);
    EXPECT_LE(c.bytes, cfg.capacityBytes);
    EXPECT_LT(c.entries, keys.size());
    // Most recently used key is still hot.
    EXPECT_EQ(cache.get(keys.back()).outcome, CacheOutcome::Hit);
}

TEST(ProfileCache, SingleflightLoadsOnceUnderConcurrentMisses)
{
    campaign::ProfileStore store(scratchDir("cache_singleflight"));
    // A big profile so the load+compile window is wide.
    std::string key = campaign::ProfileStore::profileKey(
        "hot-chip", {1.024, 45.0});
    store.commit(key, randomProfile(99, 60000));
    ProfileCache cache(store, testCacheConfig());

    constexpr int kThreads = 8;
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::shared_ptr<const RefreshDirectory>> dirs(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ready.fetch_add(1);
            while (!go.load())
                std::this_thread::yield();
            dirs[t] = cache.get(key).dir;
        });
    }
    while (ready.load() < kThreads)
        std::this_thread::yield();
    go.store(true);
    for (auto &th : threads)
        th.join();

    // However the threads interleaved, the store was read exactly once
    // and everyone shares the same compiled directory.
    CacheCounters c = cache.counters();
    EXPECT_EQ(c.loads, 1u);
    EXPECT_EQ(c.hits + c.misses, static_cast<uint64_t>(kThreads));
    for (const auto &dir : dirs) {
        ASSERT_TRUE(dir);
        EXPECT_EQ(dir.get(), dirs[0].get());
    }
}

// ---------------- View serving ----------------

TEST(ProfileCache, ViewAnswersMatchCompiledDirectory)
{
    campaign::ProfileStore store(scratchDir("cache_view_agree"));
    auto keys = populateStore(store, 2, 600);
    CacheConfig cfg = testCacheConfig();
    cfg.serveFromViews = true;
    ProfileCache cache(store, cfg);

    // The exact compiled table is the reference answer.
    ProfileCache reference(store, testCacheConfig());
    const RefreshDirectory &dir = *reference.get(keys[0]).dir;

    for (uint64_t row = 0; row < kRows; ++row) {
        ViewAnswer a = cache.isRowWeakView(keys[0], 0, row);
        ASSERT_EQ(a.state, ViewState::Answered) << "row " << row;
        EXPECT_EQ(a.weak, dir.isRowWeak(0, row)) << "row " << row;
    }
    CacheCounters c = cache.counters();
    EXPECT_EQ(c.viewLoads, 1u);
    EXPECT_EQ(c.viewHits, kRows - 1);

    // Unknown keys are negatively cached on the view path too.
    EXPECT_EQ(cache.isRowWeakView("ghost@x", 0, 0).state,
              ViewState::Unknown);
    EXPECT_EQ(cache.isRowWeakView("ghost@x", 0, 0).source,
              CacheOutcome::NegativeHit);
}

TEST(ProfileCache, ViewServingDisabledOrBloomIsUnavailable)
{
    campaign::ProfileStore store(scratchDir("cache_view_gate"));
    auto keys = populateStore(store, 1);

    ProfileCache off(store, testCacheConfig());
    EXPECT_EQ(off.isRowWeakView(keys[0], 0, 0).state,
              ViewState::Unavailable);

    // Bloom-filtered directories give one-sided answers, so the view
    // path must decline rather than diverge from the compiled table.
    CacheConfig cfg = testCacheConfig();
    cfg.serveFromViews = true;
    cfg.directory.useBloomFilters = true;
    ProfileCache bloom(store, cfg);
    EXPECT_EQ(bloom.isRowWeakView(keys[0], 0, 0).state,
              ViewState::Unavailable);
}

// ---------------- QueryEngine ----------------

EngineConfig
engineConfig(unsigned workers, size_t capacity = 4096)
{
    EngineConfig cfg;
    cfg.workers = workers;
    cfg.queueCapacity = capacity;
    cfg.batchSize = 8;
    return cfg;
}

/** Fields of a response that must be worker-count invariant. */
struct Deterministic
{
    uint64_t id;
    ResponseStatus status;
    bool weak;
    uint32_t bin;

    bool
    operator==(const Deterministic &o) const
    {
        return id == o.id && status == o.status && weak == o.weak &&
               bin == o.bin;
    }
};

std::vector<Deterministic>
runStream(campaign::ProfileStore &store,
          const std::vector<std::string> &keys, unsigned workers,
          size_t requests, bool serveFromViews = false)
{
    CacheConfig cacheCfg = testCacheConfig();
    cacheCfg.serveFromViews = serveFromViews;
    ProfileCache cache(store, cacheCfg);
    QueryEngine engine(cache, engineConfig(workers));
    WorkloadConfig wc;
    wc.keys = keys;
    wc.unknownFraction = 0.1;
    wc.rowsPerChip = kRows;
    Workload workload(wc, /*seed=*/77);
    for (size_t i = 0; i < requests; ++i) {
        // Capacity is ample here; every request must be accepted.
        EXPECT_EQ(engine.trySubmit(workload.next()),
                  QueryEngine::Submit::Accepted)
            << "request " << i;
    }
    engine.drain();
    std::vector<Response> responses = engine.takeResponses();
    EXPECT_EQ(responses.size(), requests);
    std::vector<Deterministic> out;
    out.reserve(responses.size());
    for (const auto &r : responses)
        out.push_back({r.id, r.status, r.weak, r.bin});
    std::sort(out.begin(), out.end(),
              [](const Deterministic &a, const Deterministic &b) {
                  return a.id < b.id;
              });
    return out;
}

TEST(QueryEngine, IdenticalResponsesAtAnyWorkerCount)
{
    campaign::ProfileStore store(scratchDir("engine_determinism"));
    auto keys = populateStore(store, 6);
    auto one = runStream(store, keys, 1, 2000);
    auto two = runStream(store, keys, 2, 2000);
    auto eight = runStream(store, keys, 8, 2000);
    // Ids are dense and the answer sets identical.
    ASSERT_EQ(one.size(), 2000u);
    for (size_t i = 0; i < one.size(); ++i)
        ASSERT_EQ(one[i].id, i);
    EXPECT_TRUE(one == two);
    EXPECT_TRUE(one == eight);
}

// Serving from lazy views must be invisible in the answers: the same
// request stream yields bit-identical responses with views on or off,
// at any worker count.
TEST(QueryEngine, ViewServingMatchesCompiledPath)
{
    campaign::ProfileStore store(scratchDir("engine_views"));
    auto keys = populateStore(store, 6);
    auto compiled = runStream(store, keys, 2, 2000, false);
    auto viewsOne = runStream(store, keys, 1, 2000, true);
    auto viewsEight = runStream(store, keys, 8, 2000, true);
    EXPECT_TRUE(compiled == viewsOne);
    EXPECT_TRUE(compiled == viewsEight);
}

TEST(QueryEngine, AnswersMatchDirectoryPointLookups)
{
    campaign::ProfileStore store(scratchDir("engine_answers"));
    auto keys = populateStore(store, 2);
    ProfileCache cache(store, testCacheConfig());
    QueryEngine engine(cache, engineConfig(2));

    Request bin_req{1, QueryKind::RefreshBin, keys[0], 0, 17};
    Request weak_req{2, QueryKind::IsRowWeak, keys[1], 0, 23};
    Request ghost{3, QueryKind::RefreshBin, "ghost@x", 0, 1};
    ASSERT_EQ(engine.trySubmit(bin_req),
              QueryEngine::Submit::Accepted);
    ASSERT_EQ(engine.trySubmit(weak_req),
              QueryEngine::Submit::Accepted);
    ASSERT_EQ(engine.trySubmit(ghost), QueryEngine::Submit::Accepted);
    engine.drain();
    auto responses = engine.takeResponses();
    ASSERT_EQ(responses.size(), 3u);
    std::sort(responses.begin(), responses.end(),
              [](const Response &a, const Response &b) {
                  return a.id < b.id;
              });

    const RefreshDirectory &d0 = *cache.get(keys[0]).dir;
    const RefreshDirectory &d1 = *cache.get(keys[1]).dir;
    EXPECT_EQ(responses[0].status, ResponseStatus::Ok);
    EXPECT_EQ(responses[0].bin, d0.refreshBinFor(0, 17));
    EXPECT_DOUBLE_EQ(responses[0].interval, d0.rowInterval(0, 17));
    EXPECT_EQ(responses[1].status, ResponseStatus::Ok);
    EXPECT_EQ(responses[1].weak, d1.isRowWeak(0, 23));
    EXPECT_EQ(responses[2].status, ResponseStatus::UnknownProfile);
}

TEST(QueryEngine, BoundedQueueRejectsWhenSaturated)
{
    campaign::ProfileStore store(scratchDir("engine_reject"));
    auto keys = populateStore(store, 1);
    ProfileCache cache(store, testCacheConfig());
    Metrics metrics;

    // A sink that blocks the single worker until released, so the
    // queue genuinely fills up.
    std::mutex gate_mtx;
    std::condition_variable gate_cv;
    bool released = false;
    std::atomic<bool> worker_blocked{false};
    auto sink = [&](const Response &) {
        if (!worker_blocked.exchange(true)) {
            std::unique_lock<std::mutex> lock(gate_mtx);
            gate_cv.wait(lock, [&] { return released; });
        }
    };

    EngineConfig cfg = engineConfig(1, /*capacity=*/4);
    cfg.batchSize = 1;
    QueryEngine engine(cache, cfg, &metrics, sink);

    auto makeReq = [&](uint64_t id) {
        return Request{id, QueryKind::RefreshBin, keys[0], 0, id};
    };
    // First request occupies the worker (blocked in the sink).
    ASSERT_EQ(engine.trySubmit(makeReq(0)),
              QueryEngine::Submit::Accepted);
    while (!worker_blocked.load())
        std::this_thread::yield();
    // Now fill the queue to capacity...
    for (uint64_t id = 1; id <= 4; ++id)
        ASSERT_EQ(engine.trySubmit(makeReq(id)),
                  QueryEngine::Submit::Accepted);
    // ...and the next submissions bounce immediately, without blocking.
    EXPECT_EQ(engine.trySubmit(makeReq(5)),
              QueryEngine::Submit::Rejected);
    EXPECT_EQ(engine.trySubmit(makeReq(6)),
              QueryEngine::Submit::Rejected);
    EXPECT_EQ(metrics.snapshot().rejected, 2u);

    {
        std::lock_guard<std::mutex> lock(gate_mtx);
        released = true;
    }
    gate_cv.notify_all();
    engine.drain();
    // Every accepted request was answered; the rejected ones were not.
    EXPECT_EQ(engine.accepted(), 5u);
    EXPECT_EQ(engine.completed(), 5u);
}

TEST(QueryEngine, GracefulDrainLosesNoAcceptedRequest)
{
    campaign::ProfileStore store(scratchDir("engine_drain"));
    auto keys = populateStore(store, 3);
    ProfileCache cache(store, testCacheConfig());
    QueryEngine engine(cache, engineConfig(4));

    uint64_t submitted = 0;
    for (uint64_t id = 0; id < 500; ++id)
        if (engine.trySubmit({id, QueryKind::RefreshBin,
                              keys[id % keys.size()], 0, id % kRows}) ==
            QueryEngine::Submit::Accepted)
            ++submitted;
    engine.drain();
    EXPECT_EQ(engine.completed(), submitted);
    auto responses = engine.takeResponses();
    ASSERT_EQ(responses.size(), submitted);
    // Exactly one response per accepted id.
    std::vector<uint64_t> ids;
    for (const auto &r : responses)
        ids.push_back(r.id);
    std::sort(ids.begin(), ids.end());
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) ==
                ids.end());

    // After drain the engine refuses new work.
    EXPECT_EQ(engine.trySubmit({9999, QueryKind::IsRowWeak, keys[0], 0,
                                0}),
              QueryEngine::Submit::Stopped);
    // Idempotent.
    engine.drain();
}

// ---------------- Metrics ----------------

TEST(Metrics, PercentilesAndJson)
{
    Metrics m;
    for (int i = 0; i < 90; ++i)
        m.recordLatency(1e-6); // 90 fast requests at ~1 µs
    for (int i = 0; i < 10; ++i)
        m.recordLatency(1e-3); // 10 slow at ~1 ms
    m.recordHit();
    m.recordRejected();

    MetricsSnapshot s = m.snapshot();
    EXPECT_EQ(s.completed, 100u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.rejected, 1u);
    // p50 lands in the µs decade, p99 in the ms decade.
    EXPECT_LT(s.p50Us, 10.0);
    EXPECT_GT(s.p99Us, 100.0);
    EXPECT_GE(s.p95Us, s.p50Us);
    EXPECT_GE(s.p99Us, s.p95Us);
    EXPECT_GE(s.maxUs, s.p99Us);

    std::string json = m.json();
    EXPECT_NE(json.find("\"completed\": 100"), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);

    m.reset();
    EXPECT_EQ(m.snapshot().completed, 0u);
    EXPECT_EQ(m.snapshot().p99Us, 0.0);
}

// ---------------- Workload ----------------

TEST(Workload, DeterministicAndZipfSkewed)
{
    WorkloadConfig wc;
    for (int i = 0; i < 16; ++i)
        wc.keys.push_back("chip-" + std::to_string(i));
    wc.zipfExponent = 1.2;
    wc.unknownFraction = 0.05;

    Workload a(wc, 5), b(wc, 5);
    size_t hottest = 0, unknown = 0;
    for (int i = 0; i < 5000; ++i) {
        Request ra = a.next(), rb = b.next();
        ASSERT_EQ(ra.id, rb.id);
        ASSERT_EQ(ra.key, rb.key);
        ASSERT_EQ(ra.row, rb.row);
        ASSERT_EQ(ra.kind, rb.kind);
        hottest += ra.key == wc.keys[0];
        unknown += ra.key.rfind("ghost-", 0) == 0;
    }
    // Rank-0 dominates under zipf(1.2) over 16 keys (~30% of traffic).
    EXPECT_GT(hottest, 1000u);
    // Unknown mix near the configured 5%.
    EXPECT_GT(unknown, 100u);
    EXPECT_LT(unknown, 600u);
}

} // namespace
} // namespace serve
} // namespace reaper
