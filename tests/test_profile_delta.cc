/**
 * @file
 * Tests for REAPER-PROFILE delta records (profiling/profile_delta.h):
 * canonical diff/apply round trips, wire round trips, wrong-base
 * rejection, classification by the sniffing readers (a delta is never
 * a standalone profile), and the corruption story — exhaustive
 * truncation and single-bit flips must all surface as typed errors.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "profiling/profile_delta.h"
#include "profiling/profile_io.h"

namespace reaper {
namespace profiling {
namespace {

using common::ErrorCategory;
using common::Expected;

RetentionProfile
randomProfile(uint64_t seed, size_t cells)
{
    Rng rng(seed);
    std::vector<dram::ChipFailure> v;
    v.reserve(cells);
    for (size_t i = 0; i < cells; ++i)
        v.push_back({static_cast<uint32_t>(rng.uniformInt(4)),
                     rng.uniformInt(1ull << 40)});
    RetentionProfile p(Conditions{1.024, 45.0});
    p.add(v);
    return p;
}

/** Randomly drop and add cells, modelling a VRT reprofiling round. */
RetentionProfile
drift(const RetentionProfile &base, uint64_t seed, double removeFrac,
      size_t addCount)
{
    Rng rng(seed);
    std::vector<dram::ChipFailure> cells;
    for (const dram::ChipFailure &f : base.cells())
        if (rng.uniform() >= removeFrac)
            cells.push_back(f);
    for (size_t i = 0; i < addCount; ++i)
        cells.push_back({static_cast<uint32_t>(rng.uniformInt(4)),
                         rng.uniformInt(1ull << 40)});
    RetentionProfile p(base.conditions());
    p.add(cells);
    return p;
}

TEST(ProfileDelta, DiffApplyRoundTripsRandomDrift)
{
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        RetentionProfile base = randomProfile(seed, 300);
        RetentionProfile target = drift(base, seed * 31, 0.1, 25);
        ProfileDelta delta = diffProfiles(base, target);
        Expected<RetentionProfile> applied =
            applyProfileDelta(base, delta);
        ASSERT_TRUE(applied.hasValue())
            << applied.error().describe();
        EXPECT_EQ(applied.value().cells(), target.cells());
    }
}

TEST(ProfileDelta, DiffOfIdenticalProfilesIsEmpty)
{
    RetentionProfile p = randomProfile(3, 50);
    ProfileDelta delta = diffProfiles(p, p);
    EXPECT_TRUE(delta.empty());
    Expected<RetentionProfile> applied = applyProfileDelta(p, delta);
    ASSERT_TRUE(applied.hasValue());
    EXPECT_EQ(applied.value().cells(), p.cells());
}

TEST(ProfileDelta, WireRoundTripPreservesEveryField)
{
    RetentionProfile base = randomProfile(4, 120);
    RetentionProfile target = drift(base, 99, 0.2, 15);
    ProfileDelta delta = diffProfiles(base, target);
    delta.baseName = "chip-A.profile";
    delta.baseCrc = 0xDEADBEEF;

    std::stringstream os;
    Expected<uint32_t> crc = writeProfileDelta(delta, os);
    ASSERT_TRUE(crc.hasValue()) << crc.error().describe();

    std::stringstream is(os.str());
    Expected<ProfileDelta> loaded = readProfileDelta(is);
    ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
    EXPECT_EQ(loaded.value().baseName, delta.baseName);
    EXPECT_EQ(loaded.value().baseCrc, delta.baseCrc);
    EXPECT_EQ(loaded.value().added, delta.added);
    EXPECT_EQ(loaded.value().removed, delta.removed);
    EXPECT_DOUBLE_EQ(loaded.value().cond.refreshInterval,
                     delta.cond.refreshInterval);
    EXPECT_DOUBLE_EQ(loaded.value().cond.temperature,
                     delta.cond.temperature);
}

TEST(ProfileDelta, ApplyToWrongBaseIsCorruptNotWrong)
{
    RetentionProfile base = randomProfile(5, 100);
    RetentionProfile target = drift(base, 11, 0.3, 10);
    ProfileDelta delta = diffProfiles(base, target);
    ASSERT_FALSE(delta.removed.empty());
    ASSERT_FALSE(delta.added.empty());

    // A base missing a removed cell: the delta names a cell to remove
    // that is not there.
    {
        std::vector<dram::ChipFailure> cells = base.cells();
        cells.erase(std::find(cells.begin(), cells.end(),
                              delta.removed.front()));
        RetentionProfile wrong(base.conditions());
        wrong.add(cells);
        Expected<RetentionProfile> r =
            applyProfileDelta(wrong, delta);
        ASSERT_FALSE(r.hasValue());
        EXPECT_EQ(r.error().category, ErrorCategory::Corrupt);
    }
    // A base that already holds an added cell.
    {
        std::vector<dram::ChipFailure> cells = base.cells();
        cells.push_back(delta.added.front());
        RetentionProfile wrong(base.conditions());
        wrong.add(cells);
        Expected<RetentionProfile> r =
            applyProfileDelta(wrong, delta);
        ASSERT_FALSE(r.hasValue());
        EXPECT_EQ(r.error().category, ErrorCategory::Corrupt);
    }
}

TEST(ProfileDelta, WriterRejectsNonCanonicalDelta)
{
    ProfileDelta delta;
    delta.cond = Conditions{1.024, 45.0};
    delta.added = {{1, 10}, {0, 5}}; // unsorted
    std::stringstream os;
    Expected<uint32_t> r = writeProfileDelta(delta, os);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().category, ErrorCategory::Internal);

    delta.added = {{0, 5}};
    delta.removed = {{0, 5}}; // overlaps added
    std::stringstream os2;
    r = writeProfileDelta(delta, os2);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().category, ErrorCategory::Internal);
}

std::string
deltaBytes(uint64_t seed = 6)
{
    RetentionProfile base = randomProfile(seed, 40);
    RetentionProfile target = drift(base, seed + 1, 0.2, 5);
    ProfileDelta delta = diffProfiles(base, target);
    delta.baseName = "base.profile";
    delta.baseCrc = 0x12345678;
    std::stringstream os;
    EXPECT_TRUE(writeProfileDelta(delta, os).hasValue());
    return os.str();
}

TEST(ProfileDelta, SniffersClassifyDeltaAndRefuseStandaloneReads)
{
    std::string bytes = deltaBytes();
    std::string path = ::testing::TempDir() + "record.d1.profile";
    {
        std::ofstream os(path, std::ios::binary);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }
    Expected<ProfileFormat> fmt = sniffProfileFormat(path);
    ASSERT_TRUE(fmt.hasValue());
    EXPECT_EQ(fmt.value(), ProfileFormat::DeltaV2);

    // Neither the file reader nor the memory source decodes a delta
    // as a standalone profile.
    Expected<RetentionProfile> fromFile = readProfileFile(path);
    ASSERT_FALSE(fromFile.hasValue());
    EXPECT_EQ(fromFile.error().category,
              ErrorCategory::InvalidConfig);
    EXPECT_NE(fromFile.error().message.find("ProfileStore"),
              std::string::npos);

    Expected<RetentionProfile> fromMem =
        readProfile(ProfileSource::fromMemory(bytes));
    ASSERT_FALSE(fromMem.hasValue());
    EXPECT_EQ(fromMem.error().category,
              ErrorCategory::InvalidConfig);

    // recordFileCrc accepts the delta footer.
    Expected<uint32_t> crc = recordFileCrc(path);
    ASSERT_TRUE(crc.hasValue()) << crc.error().describe();
    std::remove(path.c_str());
}

TEST(ProfileDelta, RecordFileCrcMatchesWriterReturnValue)
{
    RetentionProfile base = randomProfile(7, 30);
    ProfileDelta delta = diffProfiles(base, drift(base, 8, 0.1, 3));
    delta.baseName = "b.profile";
    std::string path = ::testing::TempDir() + "crc.d1.profile";
    Expected<uint32_t> written = writeProfileDeltaFile(delta, path);
    ASSERT_TRUE(written.hasValue());
    Expected<uint32_t> read = recordFileCrc(path);
    ASSERT_TRUE(read.hasValue());
    EXPECT_EQ(read.value(), written.value());
    std::remove(path.c_str());

    // And for full v2 records, it returns the footer's file CRC.
    std::string full = ::testing::TempDir() + "crc_full.profile";
    ASSERT_TRUE(writeProfileFile(base, full).hasValue());
    EXPECT_TRUE(recordFileCrc(full).hasValue());
    std::remove(full.c_str());
}

// Every strict prefix of a valid delta record must be rejected with a
// typed error — a torn delta can never apply as a smaller patch.
TEST(ProfileDelta, EveryTruncationIsDetected)
{
    const std::string bytes = deltaBytes(9);
    for (size_t len = 0; len < bytes.size(); ++len) {
        std::stringstream is(bytes.substr(0, len));
        Expected<ProfileDelta> r = readProfileDelta(is);
        ASSERT_FALSE(r.hasValue())
            << "prefix of " << len << " bytes parsed";
        EXPECT_TRUE(r.error().category == ErrorCategory::Corrupt ||
                    r.error().category == ErrorCategory::Parse)
            << "prefix " << len << ": "
            << toString(r.error().category);
        EXPECT_FALSE(r.error().message.empty());
    }
}

// Every single-bit flip anywhere in a delta record is detected: the
// trailing file CRC covers the whole record, so corruption can never
// yield a silently different patch.
TEST(ProfileDelta, EverySingleBitFlipIsDetected)
{
    const std::string bytes = deltaBytes(10);
    for (size_t i = 0; i < bytes.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutated = bytes;
            mutated[i] = static_cast<char>(
                static_cast<uint8_t>(mutated[i]) ^ (1u << bit));
            std::stringstream is(mutated);
            Expected<ProfileDelta> r = readProfileDelta(is);
            EXPECT_FALSE(r.hasValue())
                << "bit " << bit << " of byte " << i
                << " flipped but the delta parsed";
        }
    }
}

} // namespace
} // namespace profiling
} // namespace reaper
