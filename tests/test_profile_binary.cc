/**
 * @file
 * Tests for the REAPER-PROFILE v2 binary format: property-style
 * round trips against the v1 text format, exhaustive truncation and
 * single-bit corruption (a damaged file must always surface as a
 * typed error, never a silently wrong profile), hostile-header
 * resource safety, and the sniffing reader that accepts both formats.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/rng.h"
#include "profiling/profile_binary.h"
#include "profiling/profile_io.h"

namespace reaper {
namespace profiling {
namespace {

using common::ErrorCategory;
using common::Expected;
using common::Status;

RetentionProfile
randomProfile(uint64_t seed, size_t cells, uint32_t chips = 4,
              uint64_t addrSpace = 1ull << 44)
{
    Rng rng(seed);
    std::vector<dram::ChipFailure> v;
    v.reserve(cells);
    for (size_t i = 0; i < cells; ++i)
        v.push_back({static_cast<uint32_t>(rng.uniformInt(chips)),
                     rng.uniformInt(addrSpace)});
    RetentionProfile p(Conditions{1.024, 45.0});
    p.add(v);
    return p;
}

std::string
textOf(const RetentionProfile &p)
{
    std::stringstream ss;
    saveProfile(p, ss);
    return ss.str();
}

std::string
binaryOf(const RetentionProfile &p)
{
    std::stringstream ss;
    Status st = writeProfileBinary(p, ss);
    EXPECT_TRUE(st.hasValue());
    return ss.str();
}

TEST(ProfileBinary, RoundTripPreservesCellsAndConditions)
{
    RetentionProfile original = randomProfile(1, 1000);
    std::stringstream ss(binaryOf(original));
    Expected<RetentionProfile> loaded = readProfileBinary(ss);
    ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
    EXPECT_EQ(loaded.value().cells(), original.cells());
    EXPECT_DOUBLE_EQ(loaded.value().conditions().refreshInterval,
                     original.conditions().refreshInterval);
    EXPECT_DOUBLE_EQ(loaded.value().conditions().temperature,
                     original.conditions().temperature);
}

// Property: v1 -> v2 -> v1 is bit-identical text for random profiles
// of many shapes, including exact block-boundary cell counts.
TEST(ProfileBinary, TextV2TextRoundTripIsBitIdentical)
{
    const size_t sizes[] = {0,    1,    2,    100,  4095,
                            4096, 4097, 8192, 10000};
    for (size_t n : sizes) {
        RetentionProfile original = randomProfile(77 + n, n);
        std::string text1 = textOf(original);

        std::stringstream v1(text1);
        Expected<RetentionProfile> fromText =
            readProfile(ProfileSource::fromStream(v1));
        ASSERT_TRUE(fromText.hasValue());

        std::stringstream v2(binaryOf(fromText.value()));
        Expected<RetentionProfile> fromBinary =
            readProfile(ProfileSource::fromStream(v2));
        ASSERT_TRUE(fromBinary.hasValue())
            << fromBinary.error().describe();

        EXPECT_EQ(textOf(fromBinary.value()), text1)
            << "round trip not bit-identical for " << n << " cells";
    }
}

TEST(ProfileBinary, EmptyProfileRoundTrip)
{
    RetentionProfile original(Conditions{0.512, 50.0});
    std::stringstream ss(binaryOf(original));
    Expected<RetentionProfile> loaded = readProfileBinary(ss);
    ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
    EXPECT_TRUE(loaded.value().empty());
    EXPECT_DOUBLE_EQ(loaded.value().conditions().refreshInterval,
                     0.512);
}

TEST(ProfileBinary, MaxAddressAndChipRoundTrip)
{
    RetentionProfile p(Conditions{1.024, 45.0});
    p.add({{0, 0},
           {0, ~0ull},
           {0xFFFFFFFFu, 0},
           {0xFFFFFFFFu, ~0ull}});
    std::stringstream ss(binaryOf(p));
    Expected<RetentionProfile> loaded = readProfileBinary(ss);
    ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
    EXPECT_EQ(loaded.value().cells(), p.cells());
}

TEST(ProfileBinary, BinaryIsSmallerThanText)
{
    // Weak-cell density of a real chip (~1e5 cells in a 1 Gb array):
    // deltas fit in 2-byte varints where v1 spends ~12 text bytes.
    RetentionProfile p = randomProfile(3, 100000, 1, 1ull << 30);
    EXPECT_LT(binaryOf(p).size() * 3, textOf(p).size())
        << "v2 should be >= 3x smaller than v1";
}

// Every strict prefix of a valid v2 file — which includes truncation
// at the header edge, at every block boundary, and mid-footer — must
// be rejected with a typed error, never parsed as a smaller profile.
TEST(ProfileBinary, EveryTruncationIsDetected)
{
    // Small blocks so the file has several block boundaries.
    RetentionProfile p = randomProfile(5, 37);
    std::stringstream os;
    BinaryProfileWriter writer(os, p.conditions(), p.size(),
                               /*blockCells=*/8);
    for (const dram::ChipFailure &f : p.cells())
        writer.append(f);
    ASSERT_TRUE(writer.finish().hasValue());
    const std::string bytes = os.str();

    for (size_t len = 0; len < bytes.size(); ++len) {
        Expected<RetentionProfile> r = readProfile(
            ProfileSource::fromMemory(bytes.substr(0, len)));
        ASSERT_FALSE(r.hasValue())
            << "prefix of " << len << " bytes parsed successfully";
        EXPECT_TRUE(r.error().category == ErrorCategory::Corrupt ||
                    r.error().category == ErrorCategory::Parse)
            << "unexpected category at prefix " << len << ": "
            << toString(r.error().category);
        EXPECT_FALSE(r.error().message.empty());
    }
}

// Every single-bit flip anywhere in the file must be detected: the
// header, each block (lengths, payload, CRC), and the footer are all
// checksum-covered, so corruption can never yield a wrong profile.
TEST(ProfileBinary, EverySingleBitFlipIsDetected)
{
    RetentionProfile p = randomProfile(9, 21);
    std::stringstream os;
    BinaryProfileWriter writer(os, p.conditions(), p.size(),
                               /*blockCells=*/8);
    for (const dram::ChipFailure &f : p.cells())
        writer.append(f);
    ASSERT_TRUE(writer.finish().hasValue());
    const std::string bytes = os.str();

    for (size_t i = 0; i < bytes.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutated = bytes;
            mutated[i] = static_cast<char>(
                static_cast<uint8_t>(mutated[i]) ^ (1u << bit));
            Expected<RetentionProfile> r = readProfile(
                ProfileSource::fromMemory(mutated));
            if (r.hasValue()) {
                // The only acceptable "success" would be decoding the
                // exact original — and CRC coverage rules even that
                // out, so any success is a detection failure.
                ADD_FAILURE() << "bit " << bit << " of byte " << i
                              << " flipped but the profile parsed";
            }
        }
    }
}

// A corrupt header announcing 10^12 cells must fail fast as Corrupt
// without attempting a ~16 TB up-front reservation.
TEST(ProfileBinary, HostileHeaderCellCountDoesNotPreallocate)
{
    std::stringstream os;
    {
        // Writer emits the (valid, CRC'd) header eagerly; dropping it
        // before finish() leaves a header-only stream that promises
        // 10^12 cells and delivers none.
        BinaryProfileWriter writer(os, Conditions{1.024, 45.0},
                                   1000ull * 1000 * 1000 * 1000);
    }
    std::stringstream is(os.str());
    Expected<RetentionProfile> r = readProfileBinary(is);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().category, ErrorCategory::Corrupt);
}

TEST(ProfileBinary, WriterRejectsCellCountMismatch)
{
    std::stringstream os;
    BinaryProfileWriter writer(os, Conditions{1.024, 45.0}, 5);
    writer.append({0, 1});
    Status st = writer.finish();
    ASSERT_FALSE(st.hasValue());
    EXPECT_EQ(st.error().category, ErrorCategory::Internal);
}

TEST(ProfileBinary, WriterRejectsUnsortedCells)
{
    std::stringstream os;
    BinaryProfileWriter writer(os, Conditions{1.024, 45.0}, 2);
    writer.append({1, 10});
    writer.append({0, 5});
    Status st = writer.finish();
    ASSERT_FALSE(st.hasValue());
    EXPECT_EQ(st.error().category, ErrorCategory::Internal);
}

TEST(ProfileBinary, SniffingReaderAcceptsBothFormats)
{
    RetentionProfile p = randomProfile(11, 64);

    Expected<RetentionProfile> fromText =
        readProfile(ProfileSource::fromMemory(textOf(p)));
    ASSERT_TRUE(fromText.hasValue());
    EXPECT_EQ(fromText.value().cells(), p.cells());

    Expected<RetentionProfile> fromBinary =
        readProfile(ProfileSource::fromMemory(binaryOf(p)));
    ASSERT_TRUE(fromBinary.hasValue());
    EXPECT_EQ(fromBinary.value().cells(), p.cells());
}

TEST(ProfileBinary, WriteProfileHonorsFormatKnob)
{
    RetentionProfile p = randomProfile(13, 8);

    std::stringstream text;
    ASSERT_TRUE(
        writeProfile(p, text, ProfileFormat::TextV1).hasValue());
    EXPECT_EQ(text.str().rfind("REAPER-PROFILE v1", 0), 0u);

    std::stringstream binary;
    ASSERT_TRUE(writeProfile(p, binary).hasValue()); // default = v2
    EXPECT_EQ(static_cast<uint8_t>(binary.str()[0]),
              kBinaryMagicByte);
}

TEST(ProfileBinary, ParseProfileFormatNames)
{
    EXPECT_EQ(parseProfileFormat("v1").value(), ProfileFormat::TextV1);
    EXPECT_EQ(parseProfileFormat("text").value(),
              ProfileFormat::TextV1);
    EXPECT_EQ(parseProfileFormat("v2").value(),
              ProfileFormat::BinaryV2);
    EXPECT_EQ(parseProfileFormat("binary").value(),
              ProfileFormat::BinaryV2);
    Expected<ProfileFormat> bad = parseProfileFormat("v3");
    ASSERT_FALSE(bad.hasValue());
    EXPECT_EQ(bad.error().category, ErrorCategory::InvalidConfig);
    EXPECT_EQ(parseProfileFormat("delta").value(),
              ProfileFormat::DeltaV2);
    EXPECT_STREQ(toString(ProfileFormat::TextV1), "v1");
    EXPECT_STREQ(toString(ProfileFormat::BinaryV2), "v2");
    EXPECT_STREQ(toString(ProfileFormat::DeltaV2), "delta");
}

TEST(ProfileBinary, Crc32cMatchesKnownVector)
{
    // RFC 3720 test vector: crc32c("123456789") = 0xE3069283.
    EXPECT_EQ(crc32c(0, "123456789", 9), 0xE3069283u);
    // Incremental computation composes.
    uint32_t inc = crc32c(0, "1234", 4);
    // crc32c(seed, ...) chains through the running value.
    EXPECT_EQ(crc32c(inc, "56789", 5), 0xE3069283u);
}

TEST(ProfileBinary, ReaderScratchIsCappedAfterOutsizedBlocks)
{
    // A file written with a huge block capacity forces a payload well
    // past the release threshold; the reader must hand that scratch
    // back after each block rather than pin it for its own lifetime.
    const size_t cells = 60'000; // ~2 bytes/cell payload, ~960 KB
                                 // varint scratch at 16 B/cell
    RetentionProfile p = randomProfile(23, cells);
    std::stringstream os;
    BinaryProfileWriter writer(os, p.conditions(), p.size(),
                               /*blockCells=*/static_cast<uint32_t>(cells));
    for (const dram::ChipFailure &f : p.cells())
        writer.append(f);
    ASSERT_TRUE(writer.finish().hasValue());

    std::stringstream is(os.str());
    BinaryProfileReader reader(is);
    ASSERT_TRUE(reader.readHeader().hasValue());
    std::vector<dram::ChipFailure> out;
    while (!reader.done()) {
        Expected<uint64_t> n = reader.readBlock(out);
        ASSERT_TRUE(n.hasValue()) << n.error().describe();
        EXPECT_LE(reader.scratchBytes(), kReaderScratchReleaseBytes);
    }
    ASSERT_TRUE(reader.readFooter().hasValue());
    EXPECT_EQ(out, p.cells());
}

// Regression: the scratch cap must hold on ERROR paths too. A corrupt
// byte mid-way through an outsized block used to return early before
// trimScratch(), stranding the megabyte-scale buffers on a reader the
// caller might keep around (e.g. to surface the error).
TEST(ProfileBinary, ReaderScratchIsCappedAfterCorruptBlock)
{
    const size_t cells = 60'000;
    RetentionProfile p = randomProfile(31, cells);
    std::stringstream os;
    BinaryProfileWriter writer(os, p.conditions(), p.size(),
                               /*blockCells=*/static_cast<uint32_t>(cells));
    for (const dram::ChipFailure &f : p.cells())
        writer.append(f);
    ASSERT_TRUE(writer.finish().hasValue());
    std::string bytes = os.str();

    // Flip a payload byte well inside the single (huge) block.
    size_t victim = kBinaryHeaderBytes + 8 + bytes.size() / 2;
    ASSERT_LT(victim, bytes.size());
    bytes[victim] = static_cast<char>(
        static_cast<uint8_t>(bytes[victim]) ^ 0x40);

    std::stringstream is(bytes);
    BinaryProfileReader reader(is);
    ASSERT_TRUE(reader.readHeader().hasValue());
    std::vector<dram::ChipFailure> out;
    Expected<uint64_t> n = reader.readBlock(out);
    ASSERT_FALSE(n.hasValue());
    EXPECT_EQ(n.error().category, ErrorCategory::Corrupt);
    EXPECT_LE(reader.scratchBytes(), kReaderScratchReleaseBytes)
        << "error path stranded the block scratch";
}

TEST(ProfileBinary, ReaderScratchIsRetainedForNormalBlocks)
{
    // Default-sized blocks stay under the cap, so the scratch is
    // reused across blocks instead of being reallocated per block.
    RetentionProfile p = randomProfile(29, 5'000);
    std::stringstream os;
    ASSERT_TRUE(writeProfileBinary(p, os).hasValue());
    std::stringstream is(os.str());
    BinaryProfileReader reader(is);
    ASSERT_TRUE(reader.readHeader().hasValue());
    std::vector<dram::ChipFailure> out;
    size_t prevScratch = 0;
    while (!reader.done()) {
        ASSERT_TRUE(reader.readBlock(out).hasValue());
        // Under-cap scratch is kept across blocks (it may grow for a
        // larger block, but is never released mid-file).
        EXPECT_GE(reader.scratchBytes(), prevScratch);
        EXPECT_LE(reader.scratchBytes(), kReaderScratchReleaseBytes);
        prevScratch = reader.scratchBytes();
    }
    EXPECT_GT(prevScratch, 0u);
    ASSERT_TRUE(reader.readFooter().hasValue());
    EXPECT_EQ(out, p.cells());
}

TEST(ProfileBinary, StreamingReaderExposesBlockProgress)
{
    RetentionProfile p = randomProfile(17, 20);
    std::stringstream os;
    BinaryProfileWriter writer(os, p.conditions(), p.size(),
                               /*blockCells=*/8);
    for (const dram::ChipFailure &f : p.cells())
        writer.append(f);
    ASSERT_TRUE(writer.finish().hasValue());

    std::stringstream is(os.str());
    BinaryProfileReader reader(is);
    ASSERT_TRUE(reader.readHeader().hasValue());
    EXPECT_EQ(reader.cellCount(), p.size());
    std::vector<dram::ChipFailure> cells;
    std::vector<uint64_t> blockSizes;
    while (!reader.done()) {
        Expected<uint64_t> n = reader.readBlock(cells);
        ASSERT_TRUE(n.hasValue()) << n.error().describe();
        blockSizes.push_back(n.value());
    }
    ASSERT_TRUE(reader.readFooter().hasValue());
    EXPECT_EQ(blockSizes, (std::vector<uint64_t>{8, 8, 4}));
    EXPECT_EQ(cells, p.cells());
}

} // namespace
} // namespace profiling
} // namespace reaper
