/**
 * @file
 * Tests for the retention-test data patterns.
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/data_pattern.h"

namespace reaper {
namespace dram {
namespace {

Geometry
testGeometry()
{
    return Geometry(2, 8, 32);
}

TEST(DataPattern, TwelvePatterns)
{
    EXPECT_EQ(allDataPatterns().size(), 12u);
    std::set<DataPattern> unique(allDataPatterns().begin(),
                                 allDataPatterns().end());
    EXPECT_EQ(unique.size(), 12u);
}

TEST(DataPattern, SixBasePatterns)
{
    EXPECT_EQ(basePatterns().size(), 6u);
}

TEST(DataPattern, InverseIsInvolution)
{
    for (DataPattern p : allDataPatterns())
        EXPECT_EQ(inverseOf(inverseOf(p)), p) << toString(p);
}

TEST(DataPattern, InverseDiffersFromSelf)
{
    for (DataPattern p : allDataPatterns())
        EXPECT_NE(inverseOf(p), p) << toString(p);
}

TEST(DataPattern, NamesAreUnique)
{
    std::set<std::string> names;
    for (DataPattern p : allDataPatterns())
        names.insert(toString(p));
    EXPECT_EQ(names.size(), 12u);
}

TEST(DataPattern, RandomDetection)
{
    EXPECT_TRUE(isRandomPattern(DataPattern::Random));
    EXPECT_TRUE(isRandomPattern(DataPattern::RandomInv));
    EXPECT_FALSE(isRandomPattern(DataPattern::Solid0));
    EXPECT_FALSE(isRandomPattern(DataPattern::Checkerboard));
}

TEST(DataPattern, RandomSharesClass)
{
    EXPECT_EQ(patternClass(DataPattern::Random),
              patternClass(DataPattern::RandomInv));
    EXPECT_NE(patternClass(DataPattern::Solid0),
              patternClass(DataPattern::Solid1));
}

TEST(DataPattern, InverseBitsAreComplementary)
{
    Geometry g = testGeometry();
    for (DataPattern p : allDataPatterns()) {
        for (uint64_t bit = 0; bit < g.capacityBits(); bit += 7) {
            EXPECT_NE(patternBit(p, g, bit, 5),
                      patternBit(inverseOf(p), g, bit, 5))
                << toString(p) << " bit " << bit;
        }
    }
}

TEST(DataPattern, SolidPatterns)
{
    Geometry g = testGeometry();
    for (uint64_t bit = 0; bit < g.capacityBits(); bit += 13) {
        EXPECT_FALSE(patternBit(DataPattern::Solid0, g, bit, 0));
        EXPECT_TRUE(patternBit(DataPattern::Solid1, g, bit, 0));
    }
}

TEST(DataPattern, CheckerboardAlternatesWithRowAndCol)
{
    Geometry g = testGeometry();
    CellCoord c{0, 0, 0, 0};
    bool v00 = patternBit(DataPattern::Checkerboard, g, g.encode(c), 0);
    c.col = 1;
    bool v01 = patternBit(DataPattern::Checkerboard, g, g.encode(c), 0);
    c.col = 0;
    c.row = 1;
    bool v10 = patternBit(DataPattern::Checkerboard, g, g.encode(c), 0);
    EXPECT_NE(v00, v01);
    EXPECT_NE(v00, v10);
}

TEST(DataPattern, RowStripeConstantWithinRow)
{
    Geometry g = testGeometry();
    CellCoord a{0, 3, 0, 0}, b{0, 3, 17, 5};
    EXPECT_EQ(patternBit(DataPattern::RowStripe, g, g.encode(a), 0),
              patternBit(DataPattern::RowStripe, g, g.encode(b), 0));
    CellCoord c{0, 4, 0, 0};
    EXPECT_NE(patternBit(DataPattern::RowStripe, g, g.encode(a), 0),
              patternBit(DataPattern::RowStripe, g, g.encode(c), 0));
}

TEST(DataPattern, ColStripeConstantWithinColumn)
{
    Geometry g = testGeometry();
    CellCoord a{0, 0, 5, 2}, b{1, 7, 5, 6};
    EXPECT_EQ(patternBit(DataPattern::ColStripe, g, g.encode(a), 0),
              patternBit(DataPattern::ColStripe, g, g.encode(b), 0));
}

TEST(DataPattern, WalkPatternsOneBitPerByte)
{
    Geometry g = testGeometry();
    // Walk1: exactly one 1 per byte.
    for (uint32_t col = 0; col < 4; ++col) {
        int ones = 0;
        for (uint32_t bit = 0; bit < 8; ++bit) {
            CellCoord c{0, 0, col, bit};
            ones += patternBit(DataPattern::Walk1, g, g.encode(c), 0);
        }
        EXPECT_EQ(ones, 1) << "col " << col;
    }
}

TEST(DataPattern, RandomDeterministicPerNonce)
{
    Geometry g = testGeometry();
    for (uint64_t bit = 0; bit < 64; ++bit) {
        EXPECT_EQ(patternBit(DataPattern::Random, g, bit, 42),
                  patternBit(DataPattern::Random, g, bit, 42));
    }
}

TEST(DataPattern, RandomChangesWithNonce)
{
    Geometry g = testGeometry();
    int diffs = 0;
    for (uint64_t bit = 0; bit < 256; ++bit) {
        diffs += patternBit(DataPattern::Random, g, bit, 1) !=
                 patternBit(DataPattern::Random, g, bit, 2);
    }
    // ~50% of bits should differ between nonces.
    EXPECT_GT(diffs, 90);
    EXPECT_LT(diffs, 166);
}

TEST(DataPattern, RandomIsBalanced)
{
    Geometry g = testGeometry();
    int ones = 0;
    for (uint64_t bit = 0; bit < g.capacityBits(); ++bit)
        ones += patternBit(DataPattern::Random, g, bit, 9);
    double frac =
        static_cast<double>(ones) / static_cast<double>(g.capacityBits());
    EXPECT_NEAR(frac, 0.5, 0.05);
}

} // namespace
} // namespace dram
} // namespace reaper
