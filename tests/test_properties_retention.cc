/**
 * @file
 * Property-style parameterized tests of the retention model: the
 * invariants behind reach profiling must hold for every vendor,
 * temperature, and refresh interval, not just the calibrated points.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/ks_test.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "dram/device.h"
#include "dram/retention_model.h"

namespace reaper {
namespace dram {
namespace {

// ---------------------------------------------------------------
// Per-vendor, per-temperature invariants.
// ---------------------------------------------------------------

class ModelProperty
    : public ::testing::TestWithParam<std::tuple<Vendor, double>>
{
  protected:
    Vendor vendor() const { return std::get<0>(GetParam()); }
    Celsius temp() const { return std::get<1>(GetParam()); }
    RetentionModel model() const
    {
        return RetentionModel(vendorParams(vendor()));
    }
};

TEST_P(ModelProperty, BerMonotoneInInterval)
{
    RetentionModel m = model();
    double prev = 0.0;
    for (double t = 0.064; t <= 4.096; t *= 2.0) {
        double ber = m.berAt(t, temp());
        EXPECT_GE(ber, prev);
        prev = ber;
    }
}

TEST_P(ModelProperty, BerMonotoneInTemperature)
{
    RetentionModel m = model();
    EXPECT_LT(m.berAt(1.0, temp()), m.berAt(1.0, temp() + 5.0));
}

TEST_P(ModelProperty, ExposureScaleConsistency)
{
    // berAt(t, T) == tailCdf(t * equivalentExposureScale(T)) always.
    RetentionModel m = model();
    for (double t : {0.25, 1.0, 3.0}) {
        double lhs = m.berAt(t, temp());
        double rhs =
            m.tailCdf(t * m.equivalentExposureScale(temp()));
        EXPECT_NEAR(lhs, rhs, lhs * 1e-9 + 1e-30);
    }
}

TEST_P(ModelProperty, TenXPerTenDegreesApprox)
{
    // Eq. 1: failure rate scales ~10x per +10 C for every vendor.
    RetentionModel m = model();
    double ratio = m.berAt(1.0, temp() + 10.0) / m.berAt(1.0, temp());
    EXPECT_GT(ratio, 7.0);
    EXPECT_LT(ratio, 14.0);
}

TEST_P(ModelProperty, FailureProbabilityMonotoneInFactor)
{
    // A larger DPD factor (more favourable pattern) can only lower
    // the failure probability.
    RetentionModel m = model();
    WeakCell c;
    c.mu = 1.0f;
    c.sigmaRel = 0.05f;
    c.dpdSeed = 99;
    double prev = 1.0;
    for (double factor : {1.0, 1.1, 1.2, 1.35}) {
        double p = m.failureProbability(c, 1.1, temp(), factor);
        EXPECT_LE(p, prev + 1e-12);
        prev = p;
    }
}

TEST_P(ModelProperty, DpdFactorsBounded)
{
    RetentionModel m = model();
    WeakCell c;
    c.mu = 1.0f;
    c.sigmaRel = 0.05f;
    c.dpdSeed = 1234;
    c.worstClass = 2;
    for (DataPattern p : allDataPatterns()) {
        for (uint64_t nonce = 1; nonce < 40; ++nonce) {
            double f = m.dpdFactor(c, p, nonce);
            EXPECT_GE(f, 1.0) << toString(p);
            EXPECT_LE(f, m.params().dpdMaxFactor) << toString(p);
        }
    }
}

TEST_P(ModelProperty, VrtRateMonotoneAndCapacityLinear)
{
    RetentionModel m = model();
    uint64_t bits = 1ull << 34;
    double prev = 0.0;
    for (double t = 0.5; t <= 4.0; t += 0.5) {
        double r = m.vrtCumulativeRate(t, bits);
        EXPECT_GE(r, prev);
        prev = r;
        EXPECT_NEAR(m.vrtCumulativeRate(t, bits * 2), 2.0 * r,
                    r * 1e-9);
    }
}

TEST_P(ModelProperty, SampledPopulationMatchesExpectedCount)
{
    RetentionModel m = model();
    Rng rng(hashCombine(static_cast<uint64_t>(vendor()),
                        static_cast<uint64_t>(temp())));
    TestEnvelope env{2.0, temp() + 3.0};
    uint64_t bits = 8ull * 1024 * 1024 * 1024;
    auto cells = m.sampleWeakPopulation(bits, env, rng);
    double expected =
        m.tailCdf(m.envelopeMuCap(env)) * static_cast<double>(bits);
    EXPECT_NEAR(static_cast<double>(cells.size()), expected,
                6.0 * std::sqrt(expected) + 1.0);
}

TEST_P(ModelProperty, SigmaRelPopulationIsLognormalBelowCap)
{
    // Fig. 6b's claim at the model level: relative CDF spreads are
    // lognormal (up to the explicit cap).
    RetentionModel m = model();
    Rng rng(static_cast<uint64_t>(vendor()) + 1);
    std::vector<double> rels;
    for (int i = 0; i < 4000; ++i) {
        WeakCell c;
        m.populateCellStatics(c, rng);
        if (c.sigmaRel < m.params().maxSigmaRel * 0.999)
            rels.push_back(c.sigmaRel);
    }
    ASSERT_GT(rels.size(), 1000u);
    // KS against the *configured* (not fitted) parameters, restricted
    // to the uncapped region via the conditional CDF.
    double mu = m.params().lnSigmaRel;
    double spread = m.params().sigmaRelSpread;
    double cap = m.params().maxSigmaRel;
    double cap_mass = normalCdf(std::log(cap), mu, spread);
    double d = ksStatistic(rels, [&](double x) {
        if (x <= 0)
            return 0.0;
        return normalCdf(std::log(x), mu, spread) / cap_mass;
    });
    EXPECT_LE(d, ksCriticalValue(rels.size(), 0.01))
        << "vendor " << toString(vendor());
}

INSTANTIATE_TEST_SUITE_P(
    VendorsAndTemps, ModelProperty,
    ::testing::Combine(::testing::Values(Vendor::A, Vendor::B,
                                         Vendor::C),
                       ::testing::Values(40.0, 45.0, 50.0)),
    [](const auto &info) {
        return "Vendor" + toString(std::get<0>(info.param)) + "_" +
               std::to_string(static_cast<int>(std::get<1>(info.param)))
               + "C";
    });

// ---------------------------------------------------------------
// Device-level invariants across refresh intervals.
// ---------------------------------------------------------------

class DeviceProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(DeviceProperty, TruthGrowsWithIntervalAndMatchesBer)
{
    double t = GetParam();
    DeviceConfig cfg;
    cfg.capacityBits = 4ull * 1024 * 1024 * 1024; // 512 MB
    cfg.seed = 77;
    cfg.envelope = {2.6, 48.0};
    DramDevice d(cfg);
    auto truth = d.trueFailingSet(t, 45.0, 0.5);
    double expected = d.expectedBer(t, 45.0) *
                      static_cast<double>(cfg.capacityBits);
    EXPECT_NEAR(static_cast<double>(truth.size()), expected,
                6.0 * std::sqrt(expected) + 0.06 * expected + 3.0);
}

TEST_P(DeviceProperty, SingleTrialNeverExceedsTruthPlusNoise)
{
    // One read's failures are (statistically) a subset of the
    // loose-threshold truth at the same conditions.
    double t = GetParam();
    DeviceConfig cfg;
    cfg.capacityBits = 4ull * 1024 * 1024 * 1024;
    cfg.seed = 78;
    cfg.envelope = {2.6, 48.0};
    DramDevice d(cfg);
    auto truth = d.trueFailingSet(t, 45.0, 1e-4);
    d.writePattern(DataPattern::Random);
    d.disableRefresh();
    d.wait(t);
    d.enableRefresh();
    auto fails = d.readAndCompare();
    size_t outside = 0;
    for (uint64_t a : fails)
        outside += !std::binary_search(truth.begin(), truth.end(), a);
    // Only VRT arrivals during the window can fall outside.
    EXPECT_LE(outside, 3u + fails.size() / 100);
}

INSTANTIATE_TEST_SUITE_P(Intervals, DeviceProperty,
                         ::testing::Values(0.512, 1.024, 1.536, 2.048),
                         [](const auto &info) {
                             return "t" + std::to_string(static_cast<int>(
                                        info.param * 1000)) + "ms";
                         });

} // namespace
} // namespace dram
} // namespace reaper
