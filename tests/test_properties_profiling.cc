/**
 * @file
 * Property-style parameterized tests of the profiling trade-off space:
 * the Section 6.1 monotonicity relations must hold across vendors and
 * reach magnitudes.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "profiling/brute_force.h"
#include "profiling/reach.h"

namespace reaper {
namespace profiling {
namespace {

struct Outcome
{
    double coverage;
    double fpr;
    Seconds runtime;
};

Outcome
runReachOn(dram::Vendor vendor, uint64_t seed, Seconds d_refi,
           Celsius d_temp, int iterations)
{
    dram::ModuleConfig mc;
    mc.numChips = 1;
    mc.chipCapacityBits = 2ull * 1024 * 1024 * 1024; // 256 MB
    mc.vendor = vendor;
    mc.seed = seed;
    mc.envelope = {2.4, 52.0};
    mc.chipVariation = 0.0;
    dram::DramModule module(mc);
    testbed::HostConfig hc;
    hc.useChamber = false;
    testbed::SoftMcHost host(module, hc);

    Conditions target{1.024, 45.0};
    auto truth = module.trueFailingSet(target.refreshInterval,
                                       target.temperature);

    ProfilingResult r;
    if (d_refi == 0.0 && d_temp == 0.0) {
        BruteForceConfig cfg;
        cfg.test = target;
        cfg.iterations = iterations;
        r = BruteForceProfiler{}.run(host, cfg);
    } else {
        ReachConfig cfg;
        cfg.target = target;
        cfg.deltaRefreshInterval = d_refi;
        cfg.deltaTemperature = d_temp;
        cfg.iterations = iterations;
        r = ReachProfiler{}.run(host, cfg);
    }
    ProfileMetrics m = scoreProfile(r.profile, truth, r.runtime);
    return {m.coverage, m.falsePositiveRate, m.runtime};
}

class ReachProperty : public ::testing::TestWithParam<dram::Vendor>
{
};

TEST_P(ReachProperty, CoverageAndFprMonotoneInIntervalReach)
{
    dram::Vendor v = GetParam();
    double prev_cov = -1, prev_fpr = -1;
    for (Seconds dr : {0.0, 0.125, 0.25, 0.5}) {
        Outcome o = runReachOn(v, 11, dr, 0.0, 4);
        EXPECT_GE(o.coverage, prev_cov - 0.02)
            << "dr=" << dr; // small statistical slack
        EXPECT_GE(o.fpr, prev_fpr - 0.02) << "dr=" << dr;
        prev_cov = o.coverage;
        prev_fpr = o.fpr;
    }
}

TEST_P(ReachProperty, CoverageAndFprMonotoneInTemperatureReach)
{
    dram::Vendor v = GetParam();
    double prev_cov = -1, prev_fpr = -1;
    for (Celsius dt : {0.0, 2.5, 5.0}) {
        Outcome o = runReachOn(v, 12, 0.0, dt, 4);
        EXPECT_GE(o.coverage, prev_cov - 0.02) << "dt=" << dt;
        EXPECT_GE(o.fpr, prev_fpr - 0.02) << "dt=" << dt;
        prev_cov = o.coverage;
        prev_fpr = o.fpr;
    }
}

TEST_P(ReachProperty, HeadlineHoldsForEveryVendor)
{
    // The Section 6.1.2 operating point is not vendor-B-specific.
    dram::Vendor v = GetParam();
    Outcome reach = runReachOn(v, 13, 0.25, 0.0, 4);
    EXPECT_GT(reach.coverage, 0.98);
    EXPECT_LT(reach.fpr, 0.55);
    Outcome brute = runReachOn(v, 13, 0.0, 0.0, 16);
    EXPECT_GT(brute.runtime / reach.runtime, 1.8);
}

TEST_P(ReachProperty, RuntimeLinearInIterations)
{
    dram::Vendor v = GetParam();
    Outcome two = runReachOn(v, 14, 0.25, 0.0, 2);
    Outcome four = runReachOn(v, 14, 0.25, 0.0, 4);
    EXPECT_NEAR(four.runtime / two.runtime, 2.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Vendors, ReachProperty,
                         ::testing::Values(dram::Vendor::A,
                                           dram::Vendor::B,
                                           dram::Vendor::C),
                         [](const auto &info) {
                             return "Vendor" +
                                    dram::toString(info.param);
                         });

class IterationProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(IterationProperty, BruteForceCoverageMonotoneInIterations)
{
    int iters = GetParam();
    Outcome fewer = runReachOn(dram::Vendor::B, 15, 0.0, 0.0, iters);
    Outcome more =
        runReachOn(dram::Vendor::B, 15, 0.0, 0.0, iters * 2);
    EXPECT_GE(more.coverage, fewer.coverage - 0.01);
    EXPECT_GT(more.runtime, fewer.runtime);
}

INSTANTIATE_TEST_SUITE_P(IterationCounts, IterationProperty,
                         ::testing::Values(1, 2, 4, 8));

} // namespace
} // namespace profiling
} // namespace reaper
