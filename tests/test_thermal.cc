/**
 * @file
 * Tests for the thermal chamber: PID settling, accuracy, DRAM offset.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "thermal/chamber.h"

namespace reaper {
namespace thermal {
namespace {

TEST(PidController, DrivesTowardSetpoint)
{
    PidController pid(PidConfig{});
    // Below setpoint -> positive actuation; above -> negative.
    EXPECT_GT(pid.update(45.0, 40.0, 1.0), 0.0);
    pid.reset();
    EXPECT_LT(pid.update(45.0, 50.0, 1.0), 0.0);
}

TEST(PidController, OutputClamped)
{
    PidConfig cfg;
    cfg.outputMin = -1.0;
    cfg.outputMax = 1.0;
    PidController pid(cfg);
    EXPECT_LE(pid.update(100.0, 0.0, 1.0), 1.0);
    pid.reset();
    EXPECT_GE(pid.update(0.0, 100.0, 1.0), -1.0);
}

TEST(PidController, IntegralRemovesSteadyStateError)
{
    // Simulated plant with constant disturbance: the integral term must
    // eventually cancel it.
    PidConfig cfg;
    cfg.kp = 0.5;
    cfg.ki = 0.1;
    cfg.kd = 0.0;
    PidController pid(cfg);
    double y = 0.0;
    for (int i = 0; i < 5000; ++i) {
        double u = pid.update(1.0, y, 0.1);
        y += 0.1 * (u - 0.2 - 0.5 * y); // disturbance -0.2
    }
    EXPECT_NEAR(y, 1.0, 0.02);
}

TEST(ThermalChamber, SettlesWithinTolerance)
{
    ThermalChamber c(ChamberConfig{});
    c.setSetpoint(45.0);
    Seconds t = c.settle();
    EXPECT_GT(t, 0.0);
    EXPECT_TRUE(c.settled(0.25));
    EXPECT_NEAR(c.ambient(), 45.0, 0.3);
}

TEST(ThermalChamber, HoldsSetpointWithinQuarterDegree)
{
    // Section 4: accuracy of 0.25 degC.
    ThermalChamber c(ChamberConfig{});
    c.setSetpoint(50.0);
    c.settle();
    RunningStats err;
    for (int i = 0; i < 600; ++i) {
        c.step(1.0);
        err.add(std::fabs(c.ambient() - 50.0));
    }
    EXPECT_LT(err.mean(), 0.25);
    EXPECT_LT(err.max(), 0.6);
}

TEST(ThermalChamber, DramHeldAboveAmbient)
{
    // Section 4: DRAM held 15 degC above ambient.
    ChamberConfig cfg;
    ThermalChamber c(cfg);
    c.setSetpoint(45.0);
    c.settle();
    for (int i = 0; i < 120; ++i)
        c.step(1.0);
    EXPECT_NEAR(c.dramTemp() - c.ambient(), cfg.dramOffset, 0.5);
}

TEST(ThermalChamber, RangeLimitsEnforced)
{
    ThermalChamber c(ChamberConfig{});
    EXPECT_EXIT(c.setSetpoint(39.0), ::testing::ExitedWithCode(1),
                "reliable range");
    EXPECT_EXIT(c.setSetpoint(56.0), ::testing::ExitedWithCode(1),
                "reliable range");
}

TEST(ThermalChamber, ReachesBothRangeEnds)
{
    ThermalChamber c(ChamberConfig{});
    c.setSetpoint(40.0);
    c.settle();
    EXPECT_NEAR(c.ambient(), 40.0, 0.3);
    c.setSetpoint(55.0);
    c.settle();
    EXPECT_NEAR(c.ambient(), 55.0, 0.3);
}

TEST(ThermalChamber, StepRejectsNegative)
{
    ThermalChamber c(ChamberConfig{});
    EXPECT_DEATH(c.step(-1.0), "negative");
}

TEST(ThermalChamber, DeterministicForSeed)
{
    ChamberConfig cfg;
    cfg.seed = 99;
    ThermalChamber a(cfg), b(cfg);
    a.setSetpoint(45.0);
    b.setSetpoint(45.0);
    a.step(100.0);
    b.step(100.0);
    EXPECT_DOUBLE_EQ(a.ambient(), b.ambient());
}

} // namespace
} // namespace thermal
} // namespace reaper
