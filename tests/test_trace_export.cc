/**
 * @file
 * Tests for the host command-trace CSV export/import round trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "testbed/trace_export.h"

namespace reaper {
namespace testbed {
namespace {

std::vector<HostCommand>
sampleTrace()
{
    return {
        {CommandKind::SetAmbient, 0.0, 45.0},
        {CommandKind::WritePattern, 12.5, 2.0},
        {CommandKind::DisableRefresh, 13.0, 0.0},
        {CommandKind::Wait, 13.0, 1.024},
        {CommandKind::EnableRefresh, 14.024, 0.0},
        {CommandKind::Restore, 14.024, 0.0},
        {CommandKind::Hammer, 14.1, 131072.0},
        {CommandKind::ReadCompare, 14.5, 0.0},
    };
}

bool
sameTrace(const std::vector<HostCommand> &a,
          const std::vector<HostCommand> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i].kind != b[i].kind ||
            a[i].startTime != b[i].startTime || a[i].param != b[i].param)
            return false;
    return true;
}

TEST(TraceExport, RoundTrip)
{
    std::stringstream ss;
    writeCommandTraceCsv(sampleTrace(), ss);
    std::vector<HostCommand> loaded;
    std::string error;
    ASSERT_TRUE(tryReadCommandTraceCsv(ss, &loaded, &error)) << error;
    EXPECT_TRUE(sameTrace(loaded, sampleTrace()));
}

TEST(TraceExport, RoundTripPreservesFullDoublePrecision)
{
    std::vector<HostCommand> trace = {
        {CommandKind::Wait, 1.0 / 3.0, 0.1 + 0.2},
        {CommandKind::Wait, 1e-300, 12345.678901234567},
    };
    std::stringstream ss;
    writeCommandTraceCsv(trace, ss);
    std::vector<HostCommand> loaded;
    ASSERT_TRUE(tryReadCommandTraceCsv(ss, &loaded));
    EXPECT_TRUE(sameTrace(loaded, trace));
}

TEST(TraceExport, EmptyTraceRoundTrips)
{
    std::stringstream ss;
    writeCommandTraceCsv({}, ss);
    std::vector<HostCommand> loaded = {{CommandKind::Wait, 1.0, 1.0}};
    ASSERT_TRUE(tryReadCommandTraceCsv(ss, &loaded));
    EXPECT_TRUE(loaded.empty());
}

TEST(TraceExport, FileRoundTripFromLiveHost)
{
    dram::ModuleConfig mc;
    mc.chipCapacityBits = 1ull << 24;
    dram::DramModule module(mc);
    HostConfig hc;
    hc.useChamber = false;
    hc.recordTrace = true;
    SoftMcHost host(module, hc);
    host.writeAll(dram::DataPattern::Solid1);
    host.disableRefresh();
    host.wait(0.5);
    host.enableRefresh();
    host.readAndCompareAll();
    ASSERT_FALSE(host.trace().empty());

    std::string path =
        ::testing::TempDir() + "reaper_trace_export_test.csv";
    writeCommandTraceCsvFile(host.trace(), path);
    std::ifstream is(path);
    std::vector<HostCommand> loaded;
    std::string error;
    ASSERT_TRUE(tryReadCommandTraceCsv(is, &loaded, &error)) << error;
    EXPECT_TRUE(sameTrace(loaded, host.trace()));
    std::remove(path.c_str());
}

TEST(TraceExport, KindNamesRoundTrip)
{
    for (CommandKind kind :
         {CommandKind::SetAmbient, CommandKind::WritePattern,
          CommandKind::Restore, CommandKind::DisableRefresh,
          CommandKind::EnableRefresh, CommandKind::Wait,
          CommandKind::ReadCompare, CommandKind::Hammer}) {
        CommandKind parsed;
        ASSERT_TRUE(tryParseCommandKind(commandKindName(kind), &parsed));
        EXPECT_EQ(parsed, kind);
    }
    EXPECT_FALSE(tryParseCommandKind("warp_drive", nullptr));
}

TEST(TraceExport, HammerCommandsRoundTripFromLiveHost)
{
    dram::ModuleConfig mc;
    mc.chipCapacityBits = 1ull << 22;
    dram::DramModule module(mc);
    HostConfig hc;
    hc.useChamber = false;
    hc.recordTrace = true;
    SoftMcHost host(module, hc);
    host.writeAll(dram::DataPattern::RowStripe);
    host.hammer({3, 5, 7}, 4096);
    host.readAndCompareAll();

    std::stringstream ss;
    writeCommandTraceCsv(host.trace(), ss);
    EXPECT_NE(ss.str().find("hammer"), std::string::npos);
    common::Expected<std::vector<HostCommand>> loaded =
        readCommandTraceCsv(ss);
    ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
    EXPECT_TRUE(sameTrace(loaded.value(), host.trace()));
    // The hammer row carries the total activation count as its param.
    bool found = false;
    for (const HostCommand &cmd : loaded.value())
        if (cmd.kind == CommandKind::Hammer) {
            EXPECT_DOUBLE_EQ(cmd.param, 3 * 4096.0);
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST(TraceExport, UnknownOpNameIsATypedParseError)
{
    // Unknown op names must surface as ErrorCategory::Parse with a
    // line-numbered diagnostic, never be skipped silently.
    std::stringstream ss(
        "kind,start_time_s,param\nwait,0,1\nquantum_tunnel,1,0\n");
    common::Expected<std::vector<HostCommand>> parsed =
        readCommandTraceCsv(ss);
    ASSERT_FALSE(parsed.hasValue());
    EXPECT_EQ(parsed.error().category, common::ErrorCategory::Parse);
    EXPECT_NE(parsed.error().message.find("unknown command kind"),
              std::string::npos);
    EXPECT_NE(parsed.error().message.find("line 3"), std::string::npos)
        << parsed.error().message;
    EXPECT_NE(parsed.error().message.find("quantum_tunnel"),
              std::string::npos);
}

TEST(TraceExport, RejectsMalformedInput)
{
    struct Case
    {
        const char *text;
        const char *expect; // substring of the diagnostic
    };
    const Case cases[] = {
        {"", "missing header"},
        {"time,kind,param\n", "bad header"},
        {"kind,start_time_s,param\nwarp_drive,0,0\n",
         "unknown command kind"},
        {"kind,start_time_s,param\nwait,zero,0\n", "bad start time"},
        {"kind,start_time_s,param\nwait,0,xyz\n", "bad param"},
        {"kind,start_time_s,param\nwait,0\n", "expected 3 fields"},
    };
    for (const Case &c : cases) {
        std::stringstream ss(c.text);
        std::vector<HostCommand> out;
        std::string error;
        EXPECT_FALSE(tryReadCommandTraceCsv(ss, &out, &error))
            << c.text;
        EXPECT_NE(error.find(c.expect), std::string::npos)
            << "got '" << error << "' for input: " << c.text;
    }
}

} // namespace
} // namespace testbed
} // namespace reaper
