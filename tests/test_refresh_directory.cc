/**
 * @file
 * Equivalence tests for serve::RefreshDirectory: the compiled lookup
 * structure must answer exactly like a naive scan of the source
 * RetentionProfile::cells() (exact variant), and the Bloom variant
 * must be one-sided — it may over-refresh (faster bin) but never
 * under-refresh (slower bin) relative to the exact table.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "serve/refresh_directory.h"

namespace reaper {
namespace serve {
namespace {

constexpr uint64_t kRowBits = 512;
constexpr uint64_t kRows = 4096;
constexpr uint32_t kChips = 3;

profiling::RetentionProfile
randomProfile(uint64_t seed, size_t cells)
{
    Rng rng(seed);
    std::vector<dram::ChipFailure> v;
    v.reserve(cells);
    for (size_t i = 0; i < cells; ++i)
        v.push_back({static_cast<uint32_t>(rng.uniformInt(kChips)),
                     rng.uniformInt(kRows * kRowBits)});
    profiling::RetentionProfile p({1.024, 45.0});
    p.add(v);
    return p;
}

DirectoryConfig
testConfig(bool bloom = false)
{
    DirectoryConfig cfg;
    cfg.rowBits = kRowBits;
    cfg.useBloomFilters = bloom;
    return cfg;
}

/** Naive reference: scan every cell of every profile. */
bool
naiveRowWeak(const std::vector<profiling::RetentionProfile> &profiles,
             uint32_t chip, uint64_t row)
{
    for (const auto &p : profiles)
        for (const auto &f : p.cells())
            if (f.chip == chip && f.addr / kRowBits == row)
                return true;
    return false;
}

/** Naive reference bin: fastest bin whose profile touches the row. */
uint32_t
naiveBin(const std::vector<profiling::RetentionProfile> &profiles,
         const DirectoryConfig &cfg, uint32_t chip, uint64_t row)
{
    for (size_t i = 0; i < profiles.size(); ++i)
        for (const auto &f : profiles[i].cells())
            if (f.chip == chip && f.addr / kRowBits == row)
                return static_cast<uint32_t>(i);
    return static_cast<uint32_t>(cfg.binIntervals.size() - 1);
}

TEST(RefreshDirectory, ExactMatchesNaiveScanSingleProfile)
{
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        profiling::RetentionProfile p = randomProfile(seed, 600);
        RefreshDirectory dir =
            RefreshDirectory::compile(p, testConfig());
        ASSERT_EQ(dir.weakCellCount(), p.size());
        for (uint32_t chip = 0; chip < kChips; ++chip) {
            for (uint64_t row = 0; row < kRows; row += 3) {
                bool weak = naiveRowWeak({p}, chip, row);
                ASSERT_EQ(dir.isRowWeak(chip, row), weak)
                    << "seed " << seed << " chip " << chip << " row "
                    << row;
                // Single-profile policy: weak rows -> fastest bin.
                uint32_t want = weak ? 0 : dir.defaultBin();
                ASSERT_EQ(dir.refreshBinFor(chip, row), want);
                ASSERT_DOUBLE_EQ(
                    dir.rowInterval(chip, row),
                    dir.config().binIntervals.at(want));
            }
        }
    }
}

TEST(RefreshDirectory, ExactMatchesNaiveScanBinned)
{
    DirectoryConfig cfg = testConfig();
    std::vector<profiling::RetentionProfile> profiles = {
        randomProfile(11, 200), randomProfile(12, 500)};
    ASSERT_EQ(profiles.size(), cfg.binIntervals.size() - 1);
    RefreshDirectory dir =
        RefreshDirectory::compileBinned(profiles, cfg);
    for (uint32_t chip = 0; chip < kChips; ++chip) {
        for (uint64_t row = 0; row < kRows; row += 2) {
            ASSERT_EQ(dir.isRowWeak(chip, row),
                      naiveRowWeak(profiles, chip, row));
            ASSERT_EQ(dir.refreshBinFor(chip, row),
                      naiveBin(profiles, cfg, chip, row))
                << "chip " << chip << " row " << row;
        }
    }
}

TEST(RefreshDirectory, BloomVariantIsOneSided)
{
    DirectoryConfig exact_cfg = testConfig(false);
    DirectoryConfig bloom_cfg = testConfig(true);
    std::vector<profiling::RetentionProfile> profiles = {
        randomProfile(21, 300), randomProfile(22, 700)};
    RefreshDirectory exact =
        RefreshDirectory::compileBinned(profiles, exact_cfg);
    RefreshDirectory bloom =
        RefreshDirectory::compileBinned(profiles, bloom_cfg);
    ASSERT_GT(bloom.bloomStorageBits(), 0u);
    size_t over_refreshed = 0;
    for (uint32_t chip = 0; chip < kChips; ++chip) {
        for (uint64_t row = 0; row < kRows; ++row) {
            // Never a false negative...
            if (exact.isRowWeak(chip, row))
                ASSERT_TRUE(bloom.isRowWeak(chip, row));
            // ...and never a slower bin than the row needs.
            uint32_t eb = exact.refreshBinFor(chip, row);
            uint32_t bb = bloom.refreshBinFor(chip, row);
            ASSERT_LE(bb, eb) << "under-refresh at chip " << chip
                              << " row " << row;
            over_refreshed += bb < eb;
        }
    }
    // False positives exist but stay near the configured rate.
    double fp_rate = static_cast<double>(over_refreshed) /
                     static_cast<double>(kChips * kRows);
    EXPECT_LT(fp_rate, bloom_cfg.bloomFpRate * 20 + 0.01);
}

TEST(RefreshDirectory, WeakCellsInRowMatchesFilter)
{
    profiling::RetentionProfile p = randomProfile(31, 800);
    RefreshDirectory dir = RefreshDirectory::compile(p, testConfig());
    for (uint32_t chip = 0; chip < kChips; ++chip) {
        for (uint64_t row = 0; row < kRows; row += 7) {
            std::vector<dram::ChipFailure> want;
            for (const auto &f : p.cells())
                if (f.chip == chip && f.addr / kRowBits == row)
                    want.push_back(f);
            std::vector<dram::ChipFailure> got =
                dir.weakCellsInRow(chip, row);
            ASSERT_EQ(got, want);
            ASSERT_TRUE(std::is_sorted(got.begin(), got.end()));
        }
    }
}

TEST(RefreshDirectory, EmptyProfileHasNoWeakRows)
{
    profiling::RetentionProfile p({1.024, 45.0});
    RefreshDirectory dir = RefreshDirectory::compile(p, testConfig());
    EXPECT_EQ(dir.weakRowCount(), 0u);
    EXPECT_FALSE(dir.isRowWeak(0, 0));
    EXPECT_EQ(dir.refreshBinFor(0, 0), dir.defaultBin());
    EXPECT_GT(dir.sizeBytes(), 0u);
}

TEST(RefreshDirectory, SizeBytesTracksContents)
{
    profiling::RetentionProfile small = randomProfile(41, 50);
    profiling::RetentionProfile big = randomProfile(42, 5000);
    DirectoryConfig cfg = testConfig();
    EXPECT_LT(RefreshDirectory::compile(small, cfg).sizeBytes(),
              RefreshDirectory::compile(big, cfg).sizeBytes());
}

TEST(RefreshDirectory, ConditionsPreserved)
{
    profiling::RetentionProfile p({2.048, 55.0});
    RefreshDirectory dir = RefreshDirectory::compile(p, testConfig());
    EXPECT_DOUBLE_EQ(dir.conditions().refreshInterval, 2.048);
    EXPECT_DOUBLE_EQ(dir.conditions().temperature, 55.0);
}

} // namespace
} // namespace serve
} // namespace reaper
