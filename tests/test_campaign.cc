/**
 * @file
 * Tests for the campaign orchestration subsystem: journaled resume
 * (bit-identical store contents across interruption and worker
 * counts), fault injection with retry/backoff, and the persistent
 * profile store.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "campaign/campaign.h"
#include "common/rng.h"

namespace fs = std::filesystem;

namespace reaper {
namespace campaign {
namespace {

/** Fresh scratch directory for one test. */
std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("reaper_" + name);
    fs::remove_all(dir);
    return dir.string();
}

/** Every file in a directory, name -> full contents. */
std::map<std::string, std::string>
dirContents(const std::string &dir)
{
    std::map<std::string, std::string> out;
    for (const auto &entry : fs::directory_iterator(dir)) {
        std::ifstream is(entry.path(), std::ios::binary);
        std::ostringstream ss;
        ss << is.rdbuf();
        out[entry.path().filename().string()] = ss.str();
    }
    return out;
}

/** Small 3-chip x 2-round campaign that still finds failing cells. */
CampaignConfig
smallCampaign(const std::string &dir, unsigned threads = 1)
{
    CampaignConfig cfg;
    cfg.dir = dir;
    cfg.name = "test-campaign";
    cfg.baseSeed = 42;
    cfg.chips = makeChipFleet(3, cfg.baseSeed,
                              1ull << 26 /* 8 MB */, {2.4, 52.0});
    RoundSpec brute;
    brute.target = {msToSec(1024.0), 45.0};
    brute.profiler = ProfilerKind::BruteForce;
    brute.iterations = 2;
    RoundSpec reach;
    reach.target = {msToSec(1536.0), 45.0};
    reach.profiler = ProfilerKind::Reach;
    reach.reachDeltaRefresh = 0.250;
    reach.iterations = 2;
    cfg.rounds = {brute, reach};
    cfg.host.useChamber = false; // instant temperature for test speed
    cfg.fleet.threads = threads;
    return cfg;
}

TEST(Campaign, CompletesAndPopulatesStore)
{
    CampaignConfig cfg = smallCampaign(scratchDir("complete"));
    CampaignStats stats = runCampaign(cfg);
    EXPECT_EQ(stats.tasksTotal, 6u);
    EXPECT_EQ(stats.roundsCompleted, 6u);
    EXPECT_EQ(stats.roundsThisRun, 6u);
    EXPECT_EQ(stats.roundsResumed, 0u);
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(stats.faults.total(), 0u);
    EXPECT_TRUE(stats.complete());
    EXPECT_FALSE(stats.interrupted);

    ProfileStore store(cfg.dir + "/store");
    EXPECT_EQ(store.size(), 6u);
    for (size_t c = 0; c < cfg.chips.size(); ++c) {
        for (size_t r = 0; r < cfg.rounds.size(); ++r) {
            common::Expected<profiling::RetentionProfile> loaded =
                store.load(roundKey(cfg, c, r));
            ASSERT_TRUE(loaded.hasValue())
                << loaded.error().describe();
            const profiling::RetentionProfile &p = loaded.value();
            EXPECT_GT(p.size(), 0u);
            EXPECT_DOUBLE_EQ(p.conditions().refreshInterval,
                             cfg.rounds[r].target.refreshInterval);
        }
    }
}

TEST(Campaign, RerunOfCompleteCampaignIsANoOp)
{
    CampaignConfig cfg = smallCampaign(scratchDir("noop"));
    runCampaign(cfg);
    auto before = dirContents(cfg.dir + "/store");
    CampaignStats stats = runCampaign(cfg);
    EXPECT_EQ(stats.roundsThisRun, 0u);
    EXPECT_EQ(stats.roundsResumed, 6u);
    EXPECT_TRUE(stats.complete());
    EXPECT_EQ(dirContents(cfg.dir + "/store"), before);
}

/** Interrupt after k commits, resume, and require byte-identical
 *  store contents vs. the uninterrupted run — at 1 and 8 threads. */
TEST(Campaign, ResumeIsBitIdenticalAcrossInterruptAndThreads)
{
    CampaignConfig ref = smallCampaign(scratchDir("resume_ref"), 1);
    runCampaign(ref);
    auto want = dirContents(ref.dir + "/store");
    ASSERT_GE(want.size(), 7u); // 6 profiles + index

    for (unsigned threads : {1u, 8u}) {
        // Interrupt at 1 thread so the kill point is deterministic
        // (at N threads every task may already be in flight — and
        // in-flight rounds commit, exactly as under a real SIGKILL);
        // the resume leg then runs at the thread count under test.
        CampaignConfig cfg = smallCampaign(
            scratchDir("resume_t" + std::to_string(threads)), 1);
        cfg.interruptAfter = 2;
        CampaignStats killed = runCampaign(cfg);
        EXPECT_TRUE(killed.interrupted);
        EXPECT_EQ(killed.roundsThisRun, 2u);
        EXPECT_LT(killed.roundsCompleted, killed.tasksTotal);

        cfg.interruptAfter = 0;
        cfg.fleet.threads = threads;
        CampaignStats resumed = runCampaign(cfg);
        EXPECT_FALSE(resumed.interrupted);
        EXPECT_TRUE(resumed.complete());
        EXPECT_EQ(resumed.roundsResumed, killed.roundsCompleted);
        EXPECT_EQ(dirContents(cfg.dir + "/store"), want)
            << "store diverged at " << threads << " threads";
    }
}

TEST(Campaign, ResumeSurvivesTornJournalTail)
{
    CampaignConfig ref = smallCampaign(scratchDir("torn_ref"));
    runCampaign(ref);
    auto want = dirContents(ref.dir + "/store");

    CampaignConfig cfg = smallCampaign(scratchDir("torn"));
    cfg.interruptAfter = 3;
    runCampaign(cfg);
    {
        // A kill mid-append leaves a partial final line.
        std::ofstream os(cfg.dir + "/journal.log", std::ios::app);
        os << "done 2 1 17";
    }
    cfg.interruptAfter = 0;
    CampaignStats resumed = runCampaign(cfg);
    EXPECT_TRUE(resumed.complete());
    EXPECT_EQ(dirContents(cfg.dir + "/store"), want);
}

TEST(Campaign, FaultInjectionConvergesToFaultFreeProfiles)
{
    CampaignConfig ref = smallCampaign(scratchDir("faults_ref"));
    runCampaign(ref);
    auto want = dirContents(ref.dir + "/store");

    CampaignConfig cfg = smallCampaign(scratchDir("faults"));
    // A round spans ~120 host commands, so per-command rates compound
    // into a sizable per-attempt abort probability; keep them low
    // enough that 25 attempts cannot plausibly all fail.
    cfg.faults.seed = 7;
    cfg.faults.commandTimeoutRate = 0.002;
    cfg.faults.settleFailureRate = 0.1;
    cfg.faults.readCorruptionRate = 0.01;
    cfg.retry.maxAttempts = 25;
    CampaignStats stats = runCampaign(cfg);

    EXPECT_TRUE(stats.complete());
    EXPECT_GT(stats.faults.total(), 0u) << "fault schedule never fired";
    // Every injected fault aborts exactly one attempt, so the retry
    // counter must match the injected schedule exactly.
    EXPECT_EQ(stats.retries, stats.faults.total());
    EXPECT_EQ(stats.attempts,
              stats.roundsCompleted + stats.faults.total());
    EXPECT_GT(stats.backoffTime, 0.0);
    // Faults are detected-and-retried, never absorbed into results:
    // the store is byte-identical to the fault-free campaign.
    EXPECT_EQ(dirContents(cfg.dir + "/store"), want);

    // The schedule is deterministic: an identical campaign in a fresh
    // directory reproduces the same counters.
    CampaignConfig again = cfg;
    again.dir = scratchDir("faults_again");
    CampaignStats stats2 = runCampaign(again);
    EXPECT_EQ(stats2.faults, stats.faults);
    EXPECT_EQ(stats2.retries, stats.retries);
    EXPECT_EQ(stats2.attempts, stats.attempts);
}

TEST(Campaign, RetriesDisabledPropagatesError)
{
    CampaignConfig cfg = smallCampaign(scratchDir("noretry"));
    cfg.faults.seed = 7;
    cfg.faults.commandTimeoutRate = 0.5;
    cfg.retry.maxAttempts = 1;
    EXPECT_THROW(runCampaign(cfg), CampaignError);
    // No partial/torn state: whatever was committed before the error
    // is loadable, and the resumed (fault-free) campaign completes to
    // the reference contents.
    ProfileStore store(cfg.dir + "/store");
    for (const StoreEntry &e : store.entries()) {
        common::Expected<profiling::RetentionProfile> loaded =
            store.load(e.key);
        EXPECT_TRUE(loaded.hasValue()) << loaded.error().describe();
    }
    cfg.faults = {};
    CampaignStats resumed = runCampaign(cfg);
    EXPECT_TRUE(resumed.complete());
    CampaignConfig ref = smallCampaign(scratchDir("noretry_ref"));
    runCampaign(ref);
    auto want = dirContents(ref.dir + "/store");
    auto got = dirContents(cfg.dir + "/store");
    // The interrupted campaign journaled surviving faults; only the
    // store (the deliverable) must match, and it must bit-match.
    EXPECT_EQ(got, want);
}

TEST(Campaign, MismatchedFingerprintRefusesResume)
{
    CampaignConfig cfg = smallCampaign(scratchDir("fingerprint"));
    cfg.interruptAfter = 1;
    runCampaign(cfg);
    cfg.interruptAfter = 0;
    cfg.baseSeed = 43;
    cfg.chips = makeChipFleet(3, cfg.baseSeed, 1ull << 26,
                              {2.4, 52.0});
    EXPECT_THROW(runCampaign(cfg), CampaignError);
}

TEST(Campaign, ValidatesConfig)
{
    CampaignConfig cfg = smallCampaign(scratchDir("validate"));
    cfg.chips.clear();
    EXPECT_THROW(runCampaign(cfg), CampaignError);

    cfg = smallCampaign(scratchDir("validate"));
    cfg.rounds.clear();
    EXPECT_THROW(runCampaign(cfg), CampaignError);

    cfg = smallCampaign(scratchDir("validate"));
    cfg.chips[1].id = cfg.chips[0].id;
    EXPECT_THROW(runCampaign(cfg), CampaignError);

    cfg = smallCampaign(scratchDir("validate"));
    cfg.chips[0].id = "bad id/with space";
    EXPECT_THROW(runCampaign(cfg), CampaignError);

    cfg = smallCampaign(scratchDir("validate"));
    cfg.retry.maxAttempts = 0;
    EXPECT_THROW(runCampaign(cfg), CampaignError);
}

TEST(Campaign, MakeChipFleetDerivesDistinctSeeds)
{
    auto chips = makeChipFleet(9, 5, 1ull << 26, {2.4, 52.0});
    ASSERT_EQ(chips.size(), 9u);
    for (size_t i = 0; i < chips.size(); ++i) {
        for (size_t j = 0; j < i; ++j) {
            EXPECT_NE(chips[i].id, chips[j].id);
            EXPECT_NE(chips[i].config.seed, chips[j].config.seed);
        }
    }
}

TEST(FaultyHost, ZeroRatesBehaveLikePlainHost)
{
    dram::ModuleConfig mc;
    mc.chipCapacityBits = 1ull << 26;
    mc.seed = 11;
    testbed::HostConfig hc;
    hc.useChamber = false;

    dram::DramModule m1(mc), m2(mc);
    testbed::SoftMcHost plain(m1, hc);
    FaultyHost faulty(m2, hc, {}, 99);
    for (testbed::SoftMcHost *host : {&plain,
                                      static_cast<testbed::SoftMcHost *>(
                                          &faulty)}) {
        host->writeAll(dram::DataPattern::Checkerboard);
        host->disableRefresh();
        host->wait(2.0);
        host->enableRefresh();
    }
    EXPECT_EQ(plain.readAndCompareAll(), faulty.readAndCompareAll());
    EXPECT_DOUBLE_EQ(plain.now(), faulty.now());
    EXPECT_EQ(faulty.counts().total(), 0u);
}

TEST(FaultyHost, CertainFaultFiresAndCounts)
{
    dram::ModuleConfig mc;
    mc.chipCapacityBits = 1ull << 24;
    testbed::HostConfig hc;
    hc.useChamber = false;
    dram::DramModule module(mc);
    FaultConfig faults;
    faults.commandTimeoutRate = 1.0;
    FaultyHost host(module, hc, faults, 1);
    try {
        host.wait(1.0);
        FAIL() << "expected HostFaultError";
    } catch (const HostFaultError &e) {
        EXPECT_EQ(e.kind(), FaultKind::CommandTimeout);
    }
    EXPECT_EQ(host.counts().commandTimeouts, 1u);
}

TEST(FaultyHost, ScheduleIsDeterministicPerSeed)
{
    dram::ModuleConfig mc;
    mc.chipCapacityBits = 1ull << 24;
    testbed::HostConfig hc;
    hc.useChamber = false;
    FaultConfig faults;
    faults.commandTimeoutRate = 0.3;

    auto schedule = [&](uint64_t seed) {
        dram::DramModule module(mc);
        FaultyHost host(module, hc, faults, seed);
        std::vector<int> fired;
        for (int i = 0; i < 50; ++i) {
            try {
                host.wait(0.1);
            } catch (const HostFaultError &) {
                fired.push_back(i);
            }
        }
        return fired;
    };
    EXPECT_EQ(schedule(123), schedule(123));
    EXPECT_NE(schedule(123), schedule(124));
}

TEST(ProfileStore, CommitLoadRoundTrip)
{
    ProfileStore store(scratchDir("store_roundtrip"));
    profiling::RetentionProfile p(
        profiling::Conditions{msToSec(1024.0), 45.0});
    p.add({{0, 5}, {1, 9}, {0, 1ull << 33}});
    std::string key =
        ProfileStore::profileKey("B-007", p.conditions());
    EXPECT_FALSE(store.has(key));
    store.commit(key, p);
    EXPECT_TRUE(store.has(key));

    common::Expected<profiling::RetentionProfile> loaded =
        store.load(key);
    ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
    EXPECT_EQ(loaded.value().cells(), p.cells());

    // A second store over the same directory sees the same contents.
    ProfileStore reopened(store.dir());
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_TRUE(reopened.has(key));
}

TEST(ProfileStore, LoadOrProfileComputesExactlyOnce)
{
    ProfileStore store(scratchDir("store_loadorprofile"));
    profiling::Conditions cond{msToSec(512.0), 45.0};
    std::string key = ProfileStore::profileKey("A-000", cond);
    int computed = 0;
    auto profileFn = [&]() {
        ++computed;
        profiling::RetentionProfile p(cond);
        p.add({{0, 77}});
        return p;
    };
    profiling::RetentionProfile first =
        store.loadOrProfile(key, profileFn);
    profiling::RetentionProfile second =
        store.loadOrProfile(key, profileFn);
    EXPECT_EQ(computed, 1);
    EXPECT_EQ(first.cells(), second.cells());
}

TEST(ProfileStore, RecoversIndexFromDirectoryScan)
{
    std::string dir = scratchDir("store_recover");
    std::string key;
    {
        ProfileStore store(dir);
        profiling::RetentionProfile p(
            profiling::Conditions{msToSec(1024.0), 45.0});
        p.add({{2, 4}});
        key = ProfileStore::profileKey("C-002", p.conditions());
        store.commit(key, p);
    }
    // Simulate a crash between the profile rename and the index write.
    fs::remove(fs::path(dir) / "index.txt");
    ProfileStore recovered(dir);
    EXPECT_TRUE(recovered.has(key));
    common::Expected<profiling::RetentionProfile> loaded =
        recovered.load(key);
    EXPECT_TRUE(loaded.hasValue()) << loaded.error().describe();
    EXPECT_EQ(loaded.value().size(), 1u);
}

/** A store directory holding both v1 text and v2 binary profiles —
 *  e.g. a campaign resumed with a different --profile-format — must
 *  load every profile, and index recovery must sniff each file's
 *  actual format rather than assuming the store's write format. */
TEST(ProfileStore, MixedFormatDirectoryRecoversAndServes)
{
    std::string dir = scratchDir("store_mixed");
    profiling::Conditions cond1{msToSec(1024.0), 45.0};
    profiling::Conditions cond2{msToSec(1536.0), 45.0};
    std::string keyText = ProfileStore::profileKey("M-000", cond1);
    std::string keyBin = ProfileStore::profileKey("M-001", cond2);

    {
        ProfileStore textStore(dir, profiling::ProfileFormat::TextV1);
        profiling::RetentionProfile p(cond1);
        p.add({{0, 11}, {1, 22}});
        textStore.commit(keyText, p);
    }
    {
        ProfileStore binStore(dir); // default format: v2 binary
        EXPECT_TRUE(binStore.has(keyText));
        profiling::RetentionProfile p(cond2);
        p.add({{0, 33}, {2, 44}, {2, 55}});
        binStore.commit(keyBin, p);

        auto formatOf = [&](const std::string &key) {
            for (const StoreEntry &e : binStore.entries())
                if (e.key == key)
                    return e.format;
            ADD_FAILURE() << "missing entry " << key;
            return profiling::ProfileFormat::TextV1;
        };
        EXPECT_EQ(formatOf(keyText), profiling::ProfileFormat::TextV1);
        EXPECT_EQ(formatOf(keyBin), profiling::ProfileFormat::BinaryV2);

        common::Expected<profiling::RetentionProfile> t =
            binStore.load(keyText);
        ASSERT_TRUE(t.hasValue()) << t.error().describe();
        EXPECT_EQ(t.value().size(), 2u);
        common::Expected<profiling::RetentionProfile> b =
            binStore.load(keyBin);
        ASSERT_TRUE(b.hasValue()) << b.error().describe();
        EXPECT_EQ(b.value().size(), 3u);
    }

    // Crash-recovery over the mixed directory: the scan sniffs each
    // file's format and both profiles keep loading.
    fs::remove(fs::path(dir) / "index.txt");
    ProfileStore recovered(dir);
    ASSERT_TRUE(recovered.has(keyText));
    ASSERT_TRUE(recovered.has(keyBin));
    common::Expected<profiling::RetentionProfile> t =
        recovered.load(keyText);
    ASSERT_TRUE(t.hasValue()) << t.error().describe();
    EXPECT_EQ(t.value().size(), 2u);
    common::Expected<profiling::RetentionProfile> b =
        recovered.load(keyBin);
    ASSERT_TRUE(b.hasValue()) << b.error().describe();
    EXPECT_EQ(b.value().size(), 3u);
    for (const StoreEntry &e : recovered.entries()) {
        if (e.key == keyText)
            EXPECT_EQ(e.format, profiling::ProfileFormat::TextV1);
        if (e.key == keyBin)
            EXPECT_EQ(e.format, profiling::ProfileFormat::BinaryV2);
    }
}

TEST(ProfileStore, MissingKeyReportsNotFound)
{
    ProfileStore store(scratchDir("store_missing"));
    common::Expected<profiling::RetentionProfile> loaded =
        store.load("nope@trefi1.000ms@45.00C");
    ASSERT_FALSE(loaded.hasValue());
    EXPECT_EQ(loaded.error().category, common::ErrorCategory::NotFound);
    EXPECT_FALSE(loaded.error().message.empty());
}

namespace {

profiling::RetentionProfile
randomStoreProfile(uint64_t seed, size_t cells,
                   profiling::Conditions cond = {1.024, 45.0})
{
    Rng rng(seed);
    std::vector<dram::ChipFailure> v;
    v.reserve(cells);
    for (size_t i = 0; i < cells; ++i)
        v.push_back({static_cast<uint32_t>(rng.uniformInt(4)),
                     rng.uniformInt(1ull << 40)});
    profiling::RetentionProfile p(cond);
    p.add(v);
    return p;
}

/** Random add/remove drift of a profile (a reprofiling round). */
profiling::RetentionProfile
driftProfile(const profiling::RetentionProfile &base, uint64_t seed)
{
    Rng rng(seed);
    std::vector<dram::ChipFailure> cells;
    for (const dram::ChipFailure &f : base.cells())
        if (rng.uniform() >= 0.15)
            cells.push_back(f);
    size_t adds = 1 + rng.uniformInt(20);
    for (size_t i = 0; i < adds; ++i)
        cells.push_back({static_cast<uint32_t>(rng.uniformInt(4)),
                         rng.uniformInt(1ull << 40)});
    profiling::RetentionProfile p(base.conditions());
    p.add(cells);
    return p;
}

} // namespace

TEST(ProfileStoreDelta, CommitDeltaExtendsChainAndLoadResolves)
{
    ProfileStore store(scratchDir("store_delta_chain"));
    profiling::RetentionProfile p = randomStoreProfile(1, 200);
    std::string key =
        ProfileStore::profileKey("D-000", p.conditions());
    store.commit(key, p);

    for (uint64_t round = 1; round <= 4; ++round) {
        p = driftProfile(p, round);
        store.commitDelta(key, p);
        common::Expected<profiling::RetentionProfile> loaded =
            store.load(key);
        ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
        EXPECT_EQ(loaded.value().cells(), p.cells());
    }
    ASSERT_EQ(store.entries().size(), 1u);
    EXPECT_EQ(store.entries()[0].deltas, 4u);
    EXPECT_EQ(store.entries()[0].cells, p.size());
    // The chain files exist on disk next to the base.
    std::string base = store.entries()[0].file;
    for (uint32_t k = 1; k <= 4; ++k)
        EXPECT_TRUE(fs::exists(
            fs::path(store.dir()) /
            ProfileStore::deltaFileName(base, k)));
}

TEST(ProfileStoreDelta, UnchangedCommitDeltaIsANoOp)
{
    ProfileStore store(scratchDir("store_delta_noop"));
    profiling::RetentionProfile p = randomStoreProfile(2, 50);
    std::string key =
        ProfileStore::profileKey("D-001", p.conditions());
    store.commit(key, p);
    store.commitDelta(key, p); // identical: must not grow the chain
    EXPECT_EQ(store.entries()[0].deltas, 0u);
}

// The core property: resolving and compacting a delta chain yields a
// base file BYTE-IDENTICAL to committing the final profile directly,
// for randomized add/remove sequences of any length.
TEST(ProfileStoreDelta, CompactionIsByteIdenticalToFullCommit)
{
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        std::string chainDir = scratchDir(
            "store_delta_prop_chain" + std::to_string(seed));
        std::string fullDir = scratchDir(
            "store_delta_prop_full" + std::to_string(seed));
        ProfileStore chained(chainDir);
        profiling::RetentionProfile p =
            randomStoreProfile(seed * 7, 150);
        std::string key =
            ProfileStore::profileKey("P-00" + std::to_string(seed),
                                     p.conditions());
        chained.commit(key, p);
        Rng rng(seed);
        size_t rounds = 1 + rng.uniformInt(6);
        for (size_t r = 0; r < rounds; ++r) {
            p = driftProfile(p, seed * 100 + r);
            chained.commitDelta(key, p);
        }
        // openView compacts the chain in place...
        common::Expected<profiling::ProfileView> view =
            chained.openView(key);
        ASSERT_TRUE(view.hasValue()) << view.error().describe();
        EXPECT_EQ(view.value().cellCount(), p.size());
        EXPECT_EQ(chained.entries()[0].deltas, 0u);

        // ...and the compacted base equals a direct commit, byte for
        // byte.
        ProfileStore direct(fullDir);
        direct.commit(key, p);
        std::string file = chained.entries()[0].file;
        std::ifstream a(fs::path(chainDir) / file,
                        std::ios::binary);
        std::ifstream b(fs::path(fullDir) / file, std::ios::binary);
        std::ostringstream sa, sb;
        sa << a.rdbuf();
        sb << b.rdbuf();
        ASSERT_FALSE(sa.str().empty());
        EXPECT_EQ(sa.str(), sb.str())
            << "seed " << seed << ": compacted chain differs from "
            << "direct commit";
        // No leftover delta files after compaction.
        for (const auto &entry : fs::directory_iterator(chainDir))
            EXPECT_EQ(
                entry.path().string().find(".d"), std::string::npos)
                << entry.path();
    }
}

TEST(ProfileStoreDelta, ChainSurvivesReopenAndIndexLoss)
{
    std::string dir = scratchDir("store_delta_recover");
    profiling::RetentionProfile p = randomStoreProfile(3, 120);
    std::string key =
        ProfileStore::profileKey("R-000", p.conditions());
    {
        ProfileStore store(dir);
        store.commit(key, p);
        for (uint64_t r = 1; r <= 3; ++r) {
            p = driftProfile(p, 200 + r);
            store.commitDelta(key, p);
        }
    }
    // Plain reopen: the v3 index row restores the chain.
    {
        ProfileStore store(dir);
        ASSERT_EQ(store.entries().size(), 1u);
        EXPECT_EQ(store.entries()[0].deltas, 3u);
        common::Expected<profiling::RetentionProfile> loaded =
            store.load(key);
        ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
        EXPECT_EQ(loaded.value().cells(), p.cells());
    }
    // Crash between renames: no index at all. The directory scan must
    // rebuild the entry AND re-adopt the whole valid chain.
    fs::remove(fs::path(dir) / "index.txt");
    {
        ProfileStore store(dir);
        ASSERT_EQ(store.entries().size(), 1u);
        EXPECT_EQ(store.entries()[0].deltas, 3u);
        common::Expected<profiling::RetentionProfile> loaded =
            store.load(key);
        ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
        EXPECT_EQ(loaded.value().cells(), p.cells());
    }
}

TEST(ProfileStoreDelta, StaleDeltaFromCrashedCompactionIsRemoved)
{
    std::string dir = scratchDir("store_delta_stale");
    profiling::RetentionProfile p = randomStoreProfile(4, 100);
    std::string key =
        ProfileStore::profileKey("S-000", p.conditions());
    std::string baseFile, staleName, staleBytes;
    {
        ProfileStore store(dir);
        store.commit(key, p);
        profiling::RetentionProfile next = driftProfile(p, 301);
        store.commitDelta(key, next);
        baseFile = store.entries()[0].file;
        staleName = ProfileStore::deltaFileName(baseFile, 1);
        std::ifstream is(fs::path(dir) / staleName,
                         std::ios::binary);
        std::ostringstream ss;
        ss << is.rdbuf();
        staleBytes = ss.str();
        // Compact (via openView), then simulate a crash that renamed
        // the new base but failed to unlink the old link file.
        ASSERT_TRUE(store.openView(key).hasValue());
        p = next;
    }
    {
        std::ofstream os(fs::path(dir) / staleName,
                         std::ios::binary);
        os.write(staleBytes.data(),
                 static_cast<std::streamsize>(staleBytes.size()));
    }
    ProfileStore recovered(dir);
    // The stale link's baseCrc no longer matches the compacted base,
    // so recovery discards it instead of resurrecting old cells.
    EXPECT_EQ(recovered.entries()[0].deltas, 0u);
    EXPECT_FALSE(fs::exists(fs::path(dir) / staleName));
    common::Expected<profiling::RetentionProfile> loaded =
        recovered.load(key);
    ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
    EXPECT_EQ(loaded.value().cells(), p.cells());
}

TEST(ProfileStoreDelta, ChainAutoCompactsAtCap)
{
    ProfileStore store(scratchDir("store_delta_cap"));
    profiling::RetentionProfile p = randomStoreProfile(5, 60);
    std::string key =
        ProfileStore::profileKey("C-000", p.conditions());
    store.commit(key, p);
    for (uint64_t r = 1; r <= ProfileStore::kMaxDeltaChain; ++r) {
        p = driftProfile(p, 400 + r);
        store.commitDelta(key, p);
    }
    // The cap-triggering commit compacted in place.
    EXPECT_EQ(store.entries()[0].deltas, 0u);
    common::Expected<profiling::RetentionProfile> loaded =
        store.load(key);
    ASSERT_TRUE(loaded.hasValue());
    EXPECT_EQ(loaded.value().cells(), p.cells());
}

TEST(ProfileStoreDelta, CommitDeltaOnTextStoreFallsBackToFullCommit)
{
    ProfileStore store(scratchDir("store_delta_text"),
                       profiling::ProfileFormat::TextV1);
    profiling::RetentionProfile p = randomStoreProfile(6, 40);
    std::string key =
        ProfileStore::profileKey("T-000", p.conditions());
    store.commit(key, p);
    p = driftProfile(p, 500);
    store.commitDelta(key, p);
    EXPECT_EQ(store.entries()[0].deltas, 0u);
    common::Expected<profiling::RetentionProfile> loaded =
        store.load(key);
    ASSERT_TRUE(loaded.hasValue());
    EXPECT_EQ(loaded.value().cells(), p.cells());
}

TEST(ProfileStoreDelta, OpenViewAnswersPointLookups)
{
    ProfileStore store(scratchDir("store_openview"));
    profiling::RetentionProfile p = randomStoreProfile(7, 300);
    std::string key =
        ProfileStore::profileKey("V-000", p.conditions());
    store.commit(key, p);
    common::Expected<profiling::ProfileView> view =
        store.openView(key);
    ASSERT_TRUE(view.hasValue()) << view.error().describe();
    for (size_t i = 0; i < p.cells().size(); i += 17)
        EXPECT_TRUE(view.value().contains(p.cells()[i]).value());
    EXPECT_FALSE(store.openView("missing@x").hasValue());
}

TEST(ProfileStoreDelta, OpenViewOnTextProfileIsInvalidConfig)
{
    ProfileStore store(scratchDir("store_openview_text"),
                       profiling::ProfileFormat::TextV1);
    profiling::RetentionProfile p = randomStoreProfile(8, 10);
    std::string key =
        ProfileStore::profileKey("V-001", p.conditions());
    store.commit(key, p);
    common::Expected<profiling::ProfileView> view =
        store.openView(key);
    ASSERT_FALSE(view.hasValue());
    EXPECT_EQ(view.error().category,
              common::ErrorCategory::InvalidConfig);
}

TEST(Campaign, DefaultCampaignDirReadsEnv)
{
    unsetenv("REAPER_CAMPAIGN_DIR");
    EXPECT_EQ(defaultCampaignDir("fallback"), "fallback");
    setenv("REAPER_CAMPAIGN_DIR", "/tmp/somewhere", 1);
    EXPECT_EQ(defaultCampaignDir("fallback"), "/tmp/somewhere");
    unsetenv("REAPER_CAMPAIGN_DIR");
}

} // namespace
} // namespace campaign
} // namespace reaper
