/**
 * @file
 * Tests for the campaign orchestration subsystem: journaled resume
 * (bit-identical store contents across interruption and worker
 * counts), fault injection with retry/backoff, and the persistent
 * profile store.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "campaign/campaign.h"

namespace fs = std::filesystem;

namespace reaper {
namespace campaign {
namespace {

/** Fresh scratch directory for one test. */
std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("reaper_" + name);
    fs::remove_all(dir);
    return dir.string();
}

/** Every file in a directory, name -> full contents. */
std::map<std::string, std::string>
dirContents(const std::string &dir)
{
    std::map<std::string, std::string> out;
    for (const auto &entry : fs::directory_iterator(dir)) {
        std::ifstream is(entry.path(), std::ios::binary);
        std::ostringstream ss;
        ss << is.rdbuf();
        out[entry.path().filename().string()] = ss.str();
    }
    return out;
}

/** Small 3-chip x 2-round campaign that still finds failing cells. */
CampaignConfig
smallCampaign(const std::string &dir, unsigned threads = 1)
{
    CampaignConfig cfg;
    cfg.dir = dir;
    cfg.name = "test-campaign";
    cfg.baseSeed = 42;
    cfg.chips = makeChipFleet(3, cfg.baseSeed,
                              1ull << 26 /* 8 MB */, {2.4, 52.0});
    RoundSpec brute;
    brute.target = {msToSec(1024.0), 45.0};
    brute.profiler = ProfilerKind::BruteForce;
    brute.iterations = 2;
    RoundSpec reach;
    reach.target = {msToSec(1536.0), 45.0};
    reach.profiler = ProfilerKind::Reach;
    reach.reachDeltaRefresh = 0.250;
    reach.iterations = 2;
    cfg.rounds = {brute, reach};
    cfg.host.useChamber = false; // instant temperature for test speed
    cfg.fleet.threads = threads;
    return cfg;
}

TEST(Campaign, CompletesAndPopulatesStore)
{
    CampaignConfig cfg = smallCampaign(scratchDir("complete"));
    CampaignStats stats = runCampaign(cfg);
    EXPECT_EQ(stats.tasksTotal, 6u);
    EXPECT_EQ(stats.roundsCompleted, 6u);
    EXPECT_EQ(stats.roundsThisRun, 6u);
    EXPECT_EQ(stats.roundsResumed, 0u);
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(stats.faults.total(), 0u);
    EXPECT_TRUE(stats.complete());
    EXPECT_FALSE(stats.interrupted);

    ProfileStore store(cfg.dir + "/store");
    EXPECT_EQ(store.size(), 6u);
    for (size_t c = 0; c < cfg.chips.size(); ++c) {
        for (size_t r = 0; r < cfg.rounds.size(); ++r) {
            common::Expected<profiling::RetentionProfile> loaded =
                store.load(roundKey(cfg, c, r));
            ASSERT_TRUE(loaded.hasValue())
                << loaded.error().describe();
            const profiling::RetentionProfile &p = loaded.value();
            EXPECT_GT(p.size(), 0u);
            EXPECT_DOUBLE_EQ(p.conditions().refreshInterval,
                             cfg.rounds[r].target.refreshInterval);
        }
    }
}

TEST(Campaign, RerunOfCompleteCampaignIsANoOp)
{
    CampaignConfig cfg = smallCampaign(scratchDir("noop"));
    runCampaign(cfg);
    auto before = dirContents(cfg.dir + "/store");
    CampaignStats stats = runCampaign(cfg);
    EXPECT_EQ(stats.roundsThisRun, 0u);
    EXPECT_EQ(stats.roundsResumed, 6u);
    EXPECT_TRUE(stats.complete());
    EXPECT_EQ(dirContents(cfg.dir + "/store"), before);
}

/** Interrupt after k commits, resume, and require byte-identical
 *  store contents vs. the uninterrupted run — at 1 and 8 threads. */
TEST(Campaign, ResumeIsBitIdenticalAcrossInterruptAndThreads)
{
    CampaignConfig ref = smallCampaign(scratchDir("resume_ref"), 1);
    runCampaign(ref);
    auto want = dirContents(ref.dir + "/store");
    ASSERT_GE(want.size(), 7u); // 6 profiles + index

    for (unsigned threads : {1u, 8u}) {
        // Interrupt at 1 thread so the kill point is deterministic
        // (at N threads every task may already be in flight — and
        // in-flight rounds commit, exactly as under a real SIGKILL);
        // the resume leg then runs at the thread count under test.
        CampaignConfig cfg = smallCampaign(
            scratchDir("resume_t" + std::to_string(threads)), 1);
        cfg.interruptAfter = 2;
        CampaignStats killed = runCampaign(cfg);
        EXPECT_TRUE(killed.interrupted);
        EXPECT_EQ(killed.roundsThisRun, 2u);
        EXPECT_LT(killed.roundsCompleted, killed.tasksTotal);

        cfg.interruptAfter = 0;
        cfg.fleet.threads = threads;
        CampaignStats resumed = runCampaign(cfg);
        EXPECT_FALSE(resumed.interrupted);
        EXPECT_TRUE(resumed.complete());
        EXPECT_EQ(resumed.roundsResumed, killed.roundsCompleted);
        EXPECT_EQ(dirContents(cfg.dir + "/store"), want)
            << "store diverged at " << threads << " threads";
    }
}

TEST(Campaign, ResumeSurvivesTornJournalTail)
{
    CampaignConfig ref = smallCampaign(scratchDir("torn_ref"));
    runCampaign(ref);
    auto want = dirContents(ref.dir + "/store");

    CampaignConfig cfg = smallCampaign(scratchDir("torn"));
    cfg.interruptAfter = 3;
    runCampaign(cfg);
    {
        // A kill mid-append leaves a partial final line.
        std::ofstream os(cfg.dir + "/journal.log", std::ios::app);
        os << "done 2 1 17";
    }
    cfg.interruptAfter = 0;
    CampaignStats resumed = runCampaign(cfg);
    EXPECT_TRUE(resumed.complete());
    EXPECT_EQ(dirContents(cfg.dir + "/store"), want);
}

TEST(Campaign, FaultInjectionConvergesToFaultFreeProfiles)
{
    CampaignConfig ref = smallCampaign(scratchDir("faults_ref"));
    runCampaign(ref);
    auto want = dirContents(ref.dir + "/store");

    CampaignConfig cfg = smallCampaign(scratchDir("faults"));
    // A round spans ~120 host commands, so per-command rates compound
    // into a sizable per-attempt abort probability; keep them low
    // enough that 25 attempts cannot plausibly all fail.
    cfg.faults.seed = 7;
    cfg.faults.commandTimeoutRate = 0.002;
    cfg.faults.settleFailureRate = 0.1;
    cfg.faults.readCorruptionRate = 0.01;
    cfg.retry.maxAttempts = 25;
    CampaignStats stats = runCampaign(cfg);

    EXPECT_TRUE(stats.complete());
    EXPECT_GT(stats.faults.total(), 0u) << "fault schedule never fired";
    // Every injected fault aborts exactly one attempt, so the retry
    // counter must match the injected schedule exactly.
    EXPECT_EQ(stats.retries, stats.faults.total());
    EXPECT_EQ(stats.attempts,
              stats.roundsCompleted + stats.faults.total());
    EXPECT_GT(stats.backoffTime, 0.0);
    // Faults are detected-and-retried, never absorbed into results:
    // the store is byte-identical to the fault-free campaign.
    EXPECT_EQ(dirContents(cfg.dir + "/store"), want);

    // The schedule is deterministic: an identical campaign in a fresh
    // directory reproduces the same counters.
    CampaignConfig again = cfg;
    again.dir = scratchDir("faults_again");
    CampaignStats stats2 = runCampaign(again);
    EXPECT_EQ(stats2.faults, stats.faults);
    EXPECT_EQ(stats2.retries, stats.retries);
    EXPECT_EQ(stats2.attempts, stats.attempts);
}

TEST(Campaign, RetriesDisabledPropagatesError)
{
    CampaignConfig cfg = smallCampaign(scratchDir("noretry"));
    cfg.faults.seed = 7;
    cfg.faults.commandTimeoutRate = 0.5;
    cfg.retry.maxAttempts = 1;
    EXPECT_THROW(runCampaign(cfg), CampaignError);
    // No partial/torn state: whatever was committed before the error
    // is loadable, and the resumed (fault-free) campaign completes to
    // the reference contents.
    ProfileStore store(cfg.dir + "/store");
    for (const StoreEntry &e : store.entries()) {
        common::Expected<profiling::RetentionProfile> loaded =
            store.load(e.key);
        EXPECT_TRUE(loaded.hasValue()) << loaded.error().describe();
    }
    cfg.faults = {};
    CampaignStats resumed = runCampaign(cfg);
    EXPECT_TRUE(resumed.complete());
    CampaignConfig ref = smallCampaign(scratchDir("noretry_ref"));
    runCampaign(ref);
    auto want = dirContents(ref.dir + "/store");
    auto got = dirContents(cfg.dir + "/store");
    // The interrupted campaign journaled surviving faults; only the
    // store (the deliverable) must match, and it must bit-match.
    EXPECT_EQ(got, want);
}

TEST(Campaign, MismatchedFingerprintRefusesResume)
{
    CampaignConfig cfg = smallCampaign(scratchDir("fingerprint"));
    cfg.interruptAfter = 1;
    runCampaign(cfg);
    cfg.interruptAfter = 0;
    cfg.baseSeed = 43;
    cfg.chips = makeChipFleet(3, cfg.baseSeed, 1ull << 26,
                              {2.4, 52.0});
    EXPECT_THROW(runCampaign(cfg), CampaignError);
}

TEST(Campaign, ValidatesConfig)
{
    CampaignConfig cfg = smallCampaign(scratchDir("validate"));
    cfg.chips.clear();
    EXPECT_THROW(runCampaign(cfg), CampaignError);

    cfg = smallCampaign(scratchDir("validate"));
    cfg.rounds.clear();
    EXPECT_THROW(runCampaign(cfg), CampaignError);

    cfg = smallCampaign(scratchDir("validate"));
    cfg.chips[1].id = cfg.chips[0].id;
    EXPECT_THROW(runCampaign(cfg), CampaignError);

    cfg = smallCampaign(scratchDir("validate"));
    cfg.chips[0].id = "bad id/with space";
    EXPECT_THROW(runCampaign(cfg), CampaignError);

    cfg = smallCampaign(scratchDir("validate"));
    cfg.retry.maxAttempts = 0;
    EXPECT_THROW(runCampaign(cfg), CampaignError);
}

TEST(Campaign, MakeChipFleetDerivesDistinctSeeds)
{
    auto chips = makeChipFleet(9, 5, 1ull << 26, {2.4, 52.0});
    ASSERT_EQ(chips.size(), 9u);
    for (size_t i = 0; i < chips.size(); ++i) {
        for (size_t j = 0; j < i; ++j) {
            EXPECT_NE(chips[i].id, chips[j].id);
            EXPECT_NE(chips[i].config.seed, chips[j].config.seed);
        }
    }
}

TEST(FaultyHost, ZeroRatesBehaveLikePlainHost)
{
    dram::ModuleConfig mc;
    mc.chipCapacityBits = 1ull << 26;
    mc.seed = 11;
    testbed::HostConfig hc;
    hc.useChamber = false;

    dram::DramModule m1(mc), m2(mc);
    testbed::SoftMcHost plain(m1, hc);
    FaultyHost faulty(m2, hc, {}, 99);
    for (testbed::SoftMcHost *host : {&plain,
                                      static_cast<testbed::SoftMcHost *>(
                                          &faulty)}) {
        host->writeAll(dram::DataPattern::Checkerboard);
        host->disableRefresh();
        host->wait(2.0);
        host->enableRefresh();
    }
    EXPECT_EQ(plain.readAndCompareAll(), faulty.readAndCompareAll());
    EXPECT_DOUBLE_EQ(plain.now(), faulty.now());
    EXPECT_EQ(faulty.counts().total(), 0u);
}

TEST(FaultyHost, CertainFaultFiresAndCounts)
{
    dram::ModuleConfig mc;
    mc.chipCapacityBits = 1ull << 24;
    testbed::HostConfig hc;
    hc.useChamber = false;
    dram::DramModule module(mc);
    FaultConfig faults;
    faults.commandTimeoutRate = 1.0;
    FaultyHost host(module, hc, faults, 1);
    try {
        host.wait(1.0);
        FAIL() << "expected HostFaultError";
    } catch (const HostFaultError &e) {
        EXPECT_EQ(e.kind(), FaultKind::CommandTimeout);
    }
    EXPECT_EQ(host.counts().commandTimeouts, 1u);
}

TEST(FaultyHost, ScheduleIsDeterministicPerSeed)
{
    dram::ModuleConfig mc;
    mc.chipCapacityBits = 1ull << 24;
    testbed::HostConfig hc;
    hc.useChamber = false;
    FaultConfig faults;
    faults.commandTimeoutRate = 0.3;

    auto schedule = [&](uint64_t seed) {
        dram::DramModule module(mc);
        FaultyHost host(module, hc, faults, seed);
        std::vector<int> fired;
        for (int i = 0; i < 50; ++i) {
            try {
                host.wait(0.1);
            } catch (const HostFaultError &) {
                fired.push_back(i);
            }
        }
        return fired;
    };
    EXPECT_EQ(schedule(123), schedule(123));
    EXPECT_NE(schedule(123), schedule(124));
}

TEST(ProfileStore, CommitLoadRoundTrip)
{
    ProfileStore store(scratchDir("store_roundtrip"));
    profiling::RetentionProfile p(
        profiling::Conditions{msToSec(1024.0), 45.0});
    p.add({{0, 5}, {1, 9}, {0, 1ull << 33}});
    std::string key =
        ProfileStore::profileKey("B-007", p.conditions());
    EXPECT_FALSE(store.has(key));
    store.commit(key, p);
    EXPECT_TRUE(store.has(key));

    common::Expected<profiling::RetentionProfile> loaded =
        store.load(key);
    ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
    EXPECT_EQ(loaded.value().cells(), p.cells());

    // A second store over the same directory sees the same contents.
    ProfileStore reopened(store.dir());
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_TRUE(reopened.has(key));
}

TEST(ProfileStore, LoadOrProfileComputesExactlyOnce)
{
    ProfileStore store(scratchDir("store_loadorprofile"));
    profiling::Conditions cond{msToSec(512.0), 45.0};
    std::string key = ProfileStore::profileKey("A-000", cond);
    int computed = 0;
    auto profileFn = [&]() {
        ++computed;
        profiling::RetentionProfile p(cond);
        p.add({{0, 77}});
        return p;
    };
    profiling::RetentionProfile first =
        store.loadOrProfile(key, profileFn);
    profiling::RetentionProfile second =
        store.loadOrProfile(key, profileFn);
    EXPECT_EQ(computed, 1);
    EXPECT_EQ(first.cells(), second.cells());
}

TEST(ProfileStore, RecoversIndexFromDirectoryScan)
{
    std::string dir = scratchDir("store_recover");
    std::string key;
    {
        ProfileStore store(dir);
        profiling::RetentionProfile p(
            profiling::Conditions{msToSec(1024.0), 45.0});
        p.add({{2, 4}});
        key = ProfileStore::profileKey("C-002", p.conditions());
        store.commit(key, p);
    }
    // Simulate a crash between the profile rename and the index write.
    fs::remove(fs::path(dir) / "index.txt");
    ProfileStore recovered(dir);
    EXPECT_TRUE(recovered.has(key));
    common::Expected<profiling::RetentionProfile> loaded =
        recovered.load(key);
    EXPECT_TRUE(loaded.hasValue()) << loaded.error().describe();
    EXPECT_EQ(loaded.value().size(), 1u);
}

/** A store directory holding both v1 text and v2 binary profiles —
 *  e.g. a campaign resumed with a different --profile-format — must
 *  load every profile, and index recovery must sniff each file's
 *  actual format rather than assuming the store's write format. */
TEST(ProfileStore, MixedFormatDirectoryRecoversAndServes)
{
    std::string dir = scratchDir("store_mixed");
    profiling::Conditions cond1{msToSec(1024.0), 45.0};
    profiling::Conditions cond2{msToSec(1536.0), 45.0};
    std::string keyText = ProfileStore::profileKey("M-000", cond1);
    std::string keyBin = ProfileStore::profileKey("M-001", cond2);

    {
        ProfileStore textStore(dir, profiling::ProfileFormat::TextV1);
        profiling::RetentionProfile p(cond1);
        p.add({{0, 11}, {1, 22}});
        textStore.commit(keyText, p);
    }
    {
        ProfileStore binStore(dir); // default format: v2 binary
        EXPECT_TRUE(binStore.has(keyText));
        profiling::RetentionProfile p(cond2);
        p.add({{0, 33}, {2, 44}, {2, 55}});
        binStore.commit(keyBin, p);

        auto formatOf = [&](const std::string &key) {
            for (const StoreEntry &e : binStore.entries())
                if (e.key == key)
                    return e.format;
            ADD_FAILURE() << "missing entry " << key;
            return profiling::ProfileFormat::TextV1;
        };
        EXPECT_EQ(formatOf(keyText), profiling::ProfileFormat::TextV1);
        EXPECT_EQ(formatOf(keyBin), profiling::ProfileFormat::BinaryV2);

        common::Expected<profiling::RetentionProfile> t =
            binStore.load(keyText);
        ASSERT_TRUE(t.hasValue()) << t.error().describe();
        EXPECT_EQ(t.value().size(), 2u);
        common::Expected<profiling::RetentionProfile> b =
            binStore.load(keyBin);
        ASSERT_TRUE(b.hasValue()) << b.error().describe();
        EXPECT_EQ(b.value().size(), 3u);
    }

    // Crash-recovery over the mixed directory: the scan sniffs each
    // file's format and both profiles keep loading.
    fs::remove(fs::path(dir) / "index.txt");
    ProfileStore recovered(dir);
    ASSERT_TRUE(recovered.has(keyText));
    ASSERT_TRUE(recovered.has(keyBin));
    common::Expected<profiling::RetentionProfile> t =
        recovered.load(keyText);
    ASSERT_TRUE(t.hasValue()) << t.error().describe();
    EXPECT_EQ(t.value().size(), 2u);
    common::Expected<profiling::RetentionProfile> b =
        recovered.load(keyBin);
    ASSERT_TRUE(b.hasValue()) << b.error().describe();
    EXPECT_EQ(b.value().size(), 3u);
    for (const StoreEntry &e : recovered.entries()) {
        if (e.key == keyText)
            EXPECT_EQ(e.format, profiling::ProfileFormat::TextV1);
        if (e.key == keyBin)
            EXPECT_EQ(e.format, profiling::ProfileFormat::BinaryV2);
    }
}

TEST(ProfileStore, MissingKeyReportsNotFound)
{
    ProfileStore store(scratchDir("store_missing"));
    common::Expected<profiling::RetentionProfile> loaded =
        store.load("nope@trefi1.000ms@45.00C");
    ASSERT_FALSE(loaded.hasValue());
    EXPECT_EQ(loaded.error().category, common::ErrorCategory::NotFound);
    EXPECT_FALSE(loaded.error().message.empty());
}

TEST(Campaign, DefaultCampaignDirReadsEnv)
{
    unsetenv("REAPER_CAMPAIGN_DIR");
    EXPECT_EQ(defaultCampaignDir("fallback"), "fallback");
    setenv("REAPER_CAMPAIGN_DIR", "/tmp/somewhere", 1);
    EXPECT_EQ(defaultCampaignDir("fallback"), "/tmp/somewhere");
    unsetenv("REAPER_CAMPAIGN_DIR");
}

} // namespace
} // namespace campaign
} // namespace reaper
