/**
 * @file
 * Concurrency tests for campaign::ProfileStore: N reader threads
 * hammering load/has/size/entries while a writer commits — the
 * access pattern the serve-layer ProfileCache produces in production.
 * Carries the `sanitize` ctest label; run under
 * -DREAPER_SANITIZE=thread to let TSan check the shared_mutex
 * discipline.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "campaign/profile_store.h"
#include "common/rng.h"

namespace fs = std::filesystem;

namespace reaper {
namespace campaign {
namespace {

std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("reaper_" + name);
    fs::remove_all(dir);
    return dir.string();
}

profiling::RetentionProfile
smallProfile(uint64_t seed)
{
    Rng rng(seed);
    std::vector<dram::ChipFailure> cells;
    // Disjoint per-index address slots keep the 50 cells distinct for
    // every seed (profiles dedup, and the tests assert exact sizes).
    for (uint64_t i = 0; i < 50; ++i)
        cells.push_back({0, i * 4096 + rng.uniformInt(4096)});
    profiling::RetentionProfile p({1.024, 45.0});
    p.add(cells);
    return p;
}

std::string
keyOf(size_t i)
{
    return ProfileStore::profileKey("chip-" + std::to_string(i),
                                    {1.024, 45.0});
}

TEST(ProfileStoreConcurrent, ReadersRaceOneWriter)
{
    ProfileStore store(scratchDir("store_race"));
    constexpr size_t kPreloaded = 8;
    constexpr size_t kCommits = 40;
    for (size_t i = 0; i < kPreloaded; ++i)
        store.commit(keyOf(i), smallProfile(i));

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> reads{0}, found{0};
    constexpr int kReaders = 4;
    std::vector<std::thread> readers;
    for (int t = 0; t < kReaders; ++t) {
        readers.emplace_back([&, t] {
            Rng rng(1000 + t);
            while (!stop.load(std::memory_order_relaxed)) {
                size_t i = rng.uniformInt(kPreloaded + kCommits);
                common::Expected<profiling::RetentionProfile> p =
                    store.load(keyOf(i));
                // A loaded profile is always complete: commits rename
                // atomically, so readers never see a torn file.
                if (p.hasValue())
                    EXPECT_EQ(p.value().size(), 50u);
                else
                    EXPECT_EQ(p.error().category,
                              common::ErrorCategory::NotFound);
                found += p.hasValue();
                store.has(keyOf(i));
                (void)store.size();
                (void)store.entries();
                ++reads;
            }
        });
    }

    // One writer commits fresh keys and overwrites old ones.
    for (size_t i = 0; i < kCommits; ++i) {
        store.commit(keyOf(kPreloaded + i),
                     smallProfile(kPreloaded + i));
        store.commit(keyOf(i % kPreloaded), smallProfile(900 + i));
    }
    stop.store(true);
    for (auto &reader : readers)
        reader.join();

    EXPECT_GT(reads.load(), 0u);
    EXPECT_GT(found.load(), 0u);
    EXPECT_EQ(store.size(), kPreloaded + kCommits);
    // Reopening sees a consistent index.
    ProfileStore reopened(store.dir());
    EXPECT_EQ(reopened.size(), kPreloaded + kCommits);
}

TEST(ProfileStoreConcurrent, ConcurrentLoadOrProfileConverges)
{
    ProfileStore store(scratchDir("store_lop"));
    constexpr int kThreads = 4;
    std::atomic<int> profiled{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (size_t i = 0; i < 6; ++i) {
                profiling::RetentionProfile p = store.loadOrProfile(
                    keyOf(i), [&] {
                        profiled.fetch_add(1);
                        return smallProfile(i);
                    });
                EXPECT_EQ(p.size(), 50u);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    // Racing loadOrProfile calls may each profile (last commit wins),
    // but the store ends consistent and loadable.
    EXPECT_GE(profiled.load(), 6);
    EXPECT_EQ(store.size(), 6u);
    for (size_t i = 0; i < 6; ++i) {
        common::Expected<profiling::RetentionProfile> p =
            store.load(keyOf(i));
        ASSERT_TRUE(p.hasValue()) << p.error().describe();
        EXPECT_EQ(p.value().size(), 50u);
    }
}

} // namespace
} // namespace campaign
} // namespace reaper
