/**
 * @file
 * Property-style parameterized tests of the ECC/UBER machinery over a
 * grid of code strengths, word sizes, and UBER targets.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "ecc/hamming.h"
#include "ecc/uber.h"

namespace reaper {
namespace ecc {
namespace {

class UberProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    EccConfig
    cfg() const
    {
        return {std::get<0>(GetParam()), std::get<1>(GetParam())};
    }
};

TEST_P(UberProperty, UberMonotoneInRber)
{
    double prev = -1.0;
    for (double r : {1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2}) {
        double u = uberForRber(r, cfg());
        EXPECT_GE(u, prev);
        prev = u;
    }
}

TEST_P(UberProperty, SolverInvertsUberAcrossTargets)
{
    for (double target : {1e-12, 1e-15, 1e-17}) {
        double r = tolerableRber(target, cfg());
        if (r <= 1e-19)
            continue; // saturated at the search floor
        EXPECT_NEAR(uberForRber(r, cfg()) / target, 1.0, 1e-3)
            << "target " << target;
    }
}

TEST_P(UberProperty, StricterTargetSmallerBudget)
{
    double consumer = tolerableRber(kConsumerUber, cfg());
    double enterprise = tolerableRber(kEnterpriseUber, cfg());
    EXPECT_LE(enterprise, consumer);
}

TEST_P(UberProperty, TolerableErrorsLinearInCapacity)
{
    uint64_t bits = 1ull << 33;
    double one = tolerableBitErrors(kConsumerUber, cfg(), bits);
    double four = tolerableBitErrors(kConsumerUber, cfg(), bits * 4);
    EXPECT_NEAR(four / one, 4.0, 1e-9);
}

TEST_P(UberProperty, RequiredCoverageConsistent)
{
    double tol = tolerableRber(kConsumerUber, cfg());
    for (double mult : {0.5, 2.0, 50.0}) {
        double rber = tol * mult;
        double cov = minimumRequiredCoverage(rber, kConsumerUber,
                                             cfg());
        if (mult <= 1.0) {
            EXPECT_EQ(cov, 0.0);
        } else {
            // Escaping (1-cov) fraction must fit the budget exactly.
            EXPECT_NEAR((1.0 - cov) * rber, tol, tol * 1e-6);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Codes, UberProperty,
    ::testing::Values(std::make_tuple(0, 64), std::make_tuple(1, 72),
                      std::make_tuple(1, 144), std::make_tuple(2, 80),
                      std::make_tuple(3, 144)),
    [](const auto &info) {
        return "k" + std::to_string(std::get<0>(info.param)) + "_w" +
               std::to_string(std::get<1>(info.param));
    });

// Stronger ECC always tolerates more, at every word size.
TEST(UberOrdering, StrengthMonotone)
{
    for (int w : {72, 144, 288}) {
        double prev = 0.0;
        for (int k = 0; k <= 3; ++k) {
            double r = tolerableRber(kConsumerUber, EccConfig{k, w});
            EXPECT_GT(r, prev) << "k=" << k << " w=" << w;
            prev = r;
        }
    }
}

// Randomized SECDED fuzz: any 1-bit corruption decodes to the
// original; any 2-bit corruption is flagged (never miscorrected
// silently as Ok).
class SecdedFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SecdedFuzz, ExhaustiveSingleAndRandomDouble)
{
    Secded72 codec;
    Rng rng(GetParam());
    for (int trial = 0; trial < 200; ++trial) {
        uint64_t data = rng();
        uint8_t check = codec.encode(data);
        // All 72 single-bit flips.
        for (int bit = 0; bit < 72; ++bit) {
            uint64_t d = data;
            uint8_t c = check;
            if (bit < 64)
                d ^= 1ull << bit;
            else
                c ^= static_cast<uint8_t>(1u << (bit - 64));
            DecodeResult r = codec.decode(d, c);
            ASSERT_EQ(r.status, DecodeStatus::CorrectedSingle);
            ASSERT_EQ(r.data, data);
        }
        // Random double flips.
        int b1 = static_cast<int>(rng.uniformInt(72));
        int b2 = static_cast<int>(rng.uniformInt(72));
        if (b1 == b2)
            continue;
        uint64_t d = data;
        uint8_t c = check;
        for (int bit : {b1, b2}) {
            if (bit < 64)
                d ^= 1ull << bit;
            else
                c ^= static_cast<uint8_t>(1u << (bit - 64));
        }
        DecodeResult r = codec.decode(d, c);
        ASSERT_EQ(r.status, DecodeStatus::DetectedDouble);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SecdedFuzz,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace ecc
} // namespace reaper
