/**
 * @file
 * REAPER-NET wire-protocol tests: round-trip properties for every
 * opcode, plus the hostile-input sweeps the protocol was built for —
 * every-byte truncation, single-bit corruption, and forged length
 * fields (the test_profile_binary.cc discipline applied to socket
 * bytes).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "net/wire.h"
#include "simd/crc32c.h"

using namespace reaper;
using namespace reaper::net;
using common::ErrorCategory;

namespace {

/** Extract exactly one frame from a buffer that must hold it. */
FrameView
mustExtract(const std::vector<uint8_t> &buf,
            const DecodeLimits &limits = {})
{
    FrameView frame;
    auto consumed =
        tryExtractFrame(buf.data(), buf.size(), limits, &frame);
    EXPECT_TRUE(consumed.hasValue())
        << (consumed.hasValue() ? "" : consumed.error().describe());
    EXPECT_EQ(consumed.value(), buf.size());
    return frame;
}

serve::Request
makeRequest(uint64_t id, Rng &rng)
{
    serve::Request req;
    req.id = id;
    req.kind = (rng.uniformInt(2) == 0) ? serve::QueryKind::IsRowWeak
                                        : serve::QueryKind::RefreshBin;
    req.key = "chip-" + std::to_string(rng.uniformInt(1000)) +
              "/cond-45C";
    req.chip = static_cast<uint32_t>(rng.uniformInt(1u << 20));
    req.row = rng.uniformInt(1ull << 40);
    return req;
}

WireResponse
makeResponse(uint64_t id, Rng &rng)
{
    WireResponse resp;
    resp.id = id;
    resp.status = static_cast<WireStatus>(rng.uniformInt(3));
    resp.weak = rng.uniformInt(2) == 1;
    resp.bin = static_cast<uint32_t>(rng.uniformInt(8));
    resp.interval = 0.064 * (1 + rng.uniformInt(4));
    return resp;
}

} // namespace

// ---- Round trips ----------------------------------------------------

TEST(NetWire, HelloRoundTrip)
{
    std::vector<uint8_t> buf;
    encodeHello(buf);
    FrameView frame = mustExtract(buf);
    EXPECT_EQ(frame.opcode, Opcode::Hello);
    EXPECT_EQ(frame.version, kProtocolVersion);
    auto magic = decodeHello(frame);
    ASSERT_TRUE(magic.hasValue());
    EXPECT_EQ(magic.value(), kHelloMagic);
}

TEST(NetWire, HelloAckRoundTrip)
{
    ServerLimits limits;
    limits.maxFrameBytes = 123456;
    limits.maxBatchPerFrame = 777;
    limits.workers = 9;
    std::vector<uint8_t> buf;
    encodeHelloAck(buf, limits);
    auto decoded = decodeHelloAck(mustExtract(buf));
    ASSERT_TRUE(decoded.hasValue());
    EXPECT_EQ(decoded.value().maxFrameBytes, 123456u);
    EXPECT_EQ(decoded.value().maxBatchPerFrame, 777u);
    EXPECT_EQ(decoded.value().workers, 9u);
}

TEST(NetWire, KeyListRoundTrip)
{
    std::vector<std::string> keys = {"demo-chip-0/v1.024_t45",
                                     "demo-chip-1/v1.024_t45", "",
                                     std::string(300, 'k')};
    std::vector<uint8_t> buf;
    encodeKeyList(buf, keys);
    std::vector<std::string> out;
    ASSERT_TRUE(decodeKeyList(mustExtract(buf), {}, out).hasValue());
    EXPECT_EQ(out, keys);
}

TEST(NetWire, EmptyKeyListRoundTrip)
{
    std::vector<uint8_t> buf;
    encodeKeyList(buf, {});
    std::vector<std::string> out;
    ASSERT_TRUE(decodeKeyList(mustExtract(buf), {}, out).hasValue());
    EXPECT_TRUE(out.empty());
}

TEST(NetWire, QueryBatchRoundTripProperty)
{
    Rng rng(7);
    for (int iter = 0; iter < 50; ++iter) {
        const size_t n = 1 + rng.uniformInt(64);
        std::vector<serve::Request> reqs;
        for (size_t i = 0; i < n; ++i)
            reqs.push_back(makeRequest(rng.uniformInt(1ull << 50),
                                       rng));
        std::vector<uint8_t> buf;
        encodeQueryBatch(buf, reqs.data(), reqs.size());
        std::vector<serve::Request> out;
        ASSERT_TRUE(
            decodeQueryBatch(mustExtract(buf), {}, out).hasValue());
        ASSERT_EQ(out.size(), reqs.size());
        for (size_t i = 0; i < n; ++i) {
            EXPECT_EQ(out[i].id, reqs[i].id);
            EXPECT_EQ(out[i].kind, reqs[i].kind);
            EXPECT_EQ(out[i].key, reqs[i].key);
            EXPECT_EQ(out[i].chip, reqs[i].chip);
            EXPECT_EQ(out[i].row, reqs[i].row);
        }
    }
}

TEST(NetWire, ResponseBatchRoundTripProperty)
{
    Rng rng(11);
    for (int iter = 0; iter < 50; ++iter) {
        const size_t n = 1 + rng.uniformInt(64);
        std::vector<WireResponse> resps;
        for (size_t i = 0; i < n; ++i)
            resps.push_back(
                makeResponse(rng.uniformInt(1ull << 50), rng));
        std::vector<uint8_t> buf;
        encodeResponseBatch(buf, resps.data(), resps.size());
        std::vector<WireResponse> out;
        ASSERT_TRUE(
            decodeResponseBatch(mustExtract(buf), {}, out).hasValue());
        ASSERT_EQ(out.size(), resps.size());
        for (size_t i = 0; i < n; ++i) {
            EXPECT_EQ(out[i].id, resps[i].id);
            EXPECT_EQ(out[i].status, resps[i].status);
            EXPECT_EQ(out[i].weak, resps[i].weak);
            EXPECT_EQ(out[i].bin, resps[i].bin);
            EXPECT_EQ(out[i].interval, resps[i].interval);
        }
    }
}

TEST(NetWire, ProtocolErrorRoundTrip)
{
    std::vector<uint8_t> buf;
    encodeProtocolError(buf, "Corrupt: frame CRC mismatch");
    auto msg = decodeProtocolError(mustExtract(buf), {});
    ASSERT_TRUE(msg.hasValue());
    EXPECT_EQ(msg.value(), "Corrupt: frame CRC mismatch");
}

TEST(NetWire, BackToBackFramesExtractIndependently)
{
    std::vector<uint8_t> buf;
    encodeHello(buf);
    const size_t firstLen = buf.size();
    encodeListKeys(buf);
    FrameView frame;
    auto first =
        tryExtractFrame(buf.data(), buf.size(), {}, &frame);
    ASSERT_TRUE(first.hasValue());
    EXPECT_EQ(first.value(), firstLen);
    EXPECT_EQ(frame.opcode, Opcode::Hello);
    auto second = tryExtractFrame(buf.data() + firstLen,
                                  buf.size() - firstLen, {}, &frame);
    ASSERT_TRUE(second.hasValue());
    EXPECT_EQ(second.value(), buf.size() - firstLen);
    EXPECT_EQ(frame.opcode, Opcode::ListKeys);
}

// ---- Truncation sweep -----------------------------------------------

TEST(NetWire, EveryPrefixTruncationIsNeedMoreOrError)
{
    Rng rng(23);
    std::vector<serve::Request> reqs;
    for (size_t i = 0; i < 16; ++i)
        reqs.push_back(makeRequest(i, rng));
    std::vector<uint8_t> buf;
    encodeQueryBatch(buf, reqs.data(), reqs.size());

    // A prefix must never decode as a complete frame: either "need
    // more bytes" (0) or a typed error — both safe, neither is a
    // bogus success.
    for (size_t len = 0; len < buf.size(); ++len) {
        FrameView frame;
        auto consumed =
            tryExtractFrame(buf.data(), len, {}, &frame);
        if (consumed.hasValue())
            EXPECT_EQ(consumed.value(), 0u) << "prefix " << len
                << " decoded as a complete frame";
    }
}

// ---- Corruption sweep -----------------------------------------------

TEST(NetWire, EverySingleBitFlipIsDetected)
{
    Rng rng(31);
    std::vector<serve::Request> reqs;
    for (size_t i = 0; i < 8; ++i)
        reqs.push_back(makeRequest(i, rng));
    std::vector<uint8_t> clean;
    encodeQueryBatch(clean, reqs.data(), reqs.size());

    for (size_t byte = 0; byte < clean.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<uint8_t> bad = clean;
            bad[byte] ^= static_cast<uint8_t>(1u << bit);
            FrameView frame;
            auto consumed = tryExtractFrame(bad.data(), bad.size(),
                                            {}, &frame);
            // Flips in the body or CRC are caught by CRC32C. Flips
            // in the length prefix either trip a clamp (error), look
            // like a longer frame (need-more = 0), or frame a
            // shorter byte range whose CRC then fails. No flip may
            // yield a successful full-size decode.
            if (consumed.hasValue()) {
                EXPECT_NE(consumed.value(), clean.size())
                    << "bit " << bit << " of byte " << byte
                    << " went undetected";
            }
        }
    }
}

// ---- Hostile length fields ------------------------------------------

TEST(NetWire, ForgedFrameLengthIsClampedNotAllocated)
{
    // bodyLen = 0xFFFFFFFF: a 4 GiB body announcement in 8 bytes.
    std::vector<uint8_t> buf = {0xFF, 0xFF, 0xFF, 0xFF,
                                0x05, 0x01, 0x00, 0x00};
    FrameView frame;
    auto consumed =
        tryExtractFrame(buf.data(), buf.size(), {}, &frame);
    ASSERT_FALSE(consumed.hasValue());
    EXPECT_EQ(consumed.error().category, ErrorCategory::Corrupt);
}

TEST(NetWire, ForgedBatchCountIsClampedNotAllocated)
{
    // A syntactically valid frame whose payload announces 10^12
    // queries but carries none: the count/bytes cross-check must
    // reject it before any reserve.
    std::vector<uint8_t> buf;
    FrameWriter writer(buf);
    writer.begin(Opcode::QueryBatch);
    writer.putVarint(1000000000000ull);
    writer.end();
    std::vector<serve::Request> out;
    common::Status st = decodeQueryBatch(mustExtract(buf), {}, out);
    ASSERT_FALSE(st.hasValue());
    EXPECT_EQ(st.error().category, ErrorCategory::Corrupt);
    EXPECT_TRUE(out.empty());
}

TEST(NetWire, ForgedKeyLengthIsClampedNotAllocated)
{
    // One query whose key claims 2^40 bytes.
    std::vector<uint8_t> buf;
    FrameWriter writer(buf);
    writer.begin(Opcode::QueryBatch);
    writer.putVarint(1);           // count
    writer.putVarint(42);          // id
    writer.putU8(0);               // kind
    writer.putVarint(1ull << 40);  // keyLen (forged)
    writer.putU8('x');
    writer.end();
    std::vector<serve::Request> out;
    common::Status st = decodeQueryBatch(mustExtract(buf), {}, out);
    ASSERT_FALSE(st.hasValue());
    EXPECT_EQ(st.error().category, ErrorCategory::Corrupt);
}

TEST(NetWire, OversizedBatchBeyondLimitRejected)
{
    // More real queries than maxBatchPerFrame allows.
    DecodeLimits limits;
    limits.maxBatchPerFrame = 4;
    Rng rng(5);
    std::vector<serve::Request> reqs;
    for (size_t i = 0; i < 8; ++i)
        reqs.push_back(makeRequest(i, rng));
    std::vector<uint8_t> buf;
    encodeQueryBatch(buf, reqs.data(), reqs.size());
    FrameView frame = mustExtract(buf, limits);
    std::vector<serve::Request> out;
    common::Status st = decodeQueryBatch(frame, limits, out);
    ASSERT_FALSE(st.hasValue());
    EXPECT_EQ(st.error().category, ErrorCategory::Corrupt);
}

TEST(NetWire, FrameLargerThanLimitRejected)
{
    DecodeLimits limits;
    limits.maxFrameBytes = 64;
    Rng rng(13);
    std::vector<serve::Request> reqs;
    for (size_t i = 0; i < 32; ++i)
        reqs.push_back(makeRequest(i, rng));
    std::vector<uint8_t> buf;
    encodeQueryBatch(buf, reqs.data(), reqs.size());
    ASSERT_GT(buf.size(), limits.maxFrameBytes);
    FrameView frame;
    auto consumed =
        tryExtractFrame(buf.data(), buf.size(), limits, &frame);
    ASSERT_FALSE(consumed.hasValue());
    EXPECT_EQ(consumed.error().category, ErrorCategory::Corrupt);
}

// ---- Unknown opcode / version ---------------------------------------

TEST(NetWire, UnknownOpcodeIsParseError)
{
    std::vector<uint8_t> buf;
    encodeListKeys(buf);
    // Body starts at offset 4; opcode is its first byte. Recompute
    // the CRC so only the opcode is wrong.
    buf[4] = 99;
    const size_t bodyLen = buf.size() - kFrameOverheadBytes;
    const uint32_t crc =
        simd::crc32c(0, buf.data() + 4, bodyLen);
    std::memcpy(buf.data() + 4 + bodyLen, &crc, 4);
    FrameView frame;
    auto consumed =
        tryExtractFrame(buf.data(), buf.size(), {}, &frame);
    ASSERT_FALSE(consumed.hasValue());
    EXPECT_EQ(consumed.error().category, ErrorCategory::Parse);
}

TEST(NetWire, UnknownVersionIsParseError)
{
    std::vector<uint8_t> buf;
    encodeListKeys(buf);
    buf[5] = 42; // version byte
    const size_t bodyLen = buf.size() - kFrameOverheadBytes;
    const uint32_t crc =
        simd::crc32c(0, buf.data() + 4, bodyLen);
    std::memcpy(buf.data() + 4 + bodyLen, &crc, 4);
    FrameView frame;
    auto consumed =
        tryExtractFrame(buf.data(), buf.size(), {}, &frame);
    ASSERT_FALSE(consumed.hasValue());
    EXPECT_EQ(consumed.error().category, ErrorCategory::Parse);
}

TEST(NetWire, WrongOpcodePayloadDecodersRefuse)
{
    std::vector<uint8_t> buf;
    encodeHello(buf);
    FrameView frame = mustExtract(buf);
    std::vector<serve::Request> out;
    EXPECT_FALSE(decodeQueryBatch(frame, {}, out).hasValue());
    std::vector<WireResponse> resps;
    EXPECT_FALSE(decodeResponseBatch(frame, {}, resps).hasValue());
    EXPECT_FALSE(decodeHelloAck(frame).hasValue());
}

TEST(NetWire, TrailingPayloadBytesRejected)
{
    // A Hello with one extra byte after the magic: valid CRC, valid
    // framing, but the payload decoder must notice the slack.
    std::vector<uint8_t> buf;
    FrameWriter writer(buf);
    writer.begin(Opcode::Hello);
    writer.putU32(kHelloMagic);
    writer.putU8(0xAB);
    writer.end();
    auto magic = decodeHello(mustExtract(buf));
    ASSERT_FALSE(magic.hasValue());
    EXPECT_EQ(magic.error().category, ErrorCategory::Corrupt);
}
