/**
 * @file
 * Device dynamics corner cases: data restore (scrub write-back)
 * semantics, mixed-temperature exposure accounting, and the VRT
 * rate-scale control knob.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/units.h"
#include "dram/device.h"
#include "dram/module.h"

namespace reaper {
namespace dram {
namespace {

DeviceConfig
config(uint64_t seed = 1)
{
    DeviceConfig cfg;
    cfg.capacityBits = 4ull * 1024 * 1024 * 1024; // 512 MB
    cfg.seed = seed;
    cfg.envelope = {2.5, 50.0};
    return cfg;
}

TEST(DeviceDynamics, RestoreResetsExposureKeepsPattern)
{
    DramDevice d(config());
    d.writePattern(DataPattern::Checkerboard);
    d.disableRefresh();
    d.wait(1.5);
    d.enableRefresh();
    ASSERT_GT(d.readAndCompare().size(), 0u);
    d.restoreData();
    EXPECT_EQ(d.exposureEquivalent(), 0.0);
    EXPECT_EQ(d.lastPattern(), DataPattern::Checkerboard);
    EXPECT_TRUE(d.readAndCompare().empty());
}

TEST(DeviceDynamics, RestoreRedrawsStochasticFailures)
{
    // Marginal cells fail in different subsets across restore
    // windows (fresh sense-amp noise draw), while the DPD factors
    // stay fixed (same stored content).
    DramDevice d(config(2));
    d.writePattern(DataPattern::Solid0);
    auto window = [&]() {
        d.disableRefresh();
        d.wait(1.2);
        d.enableRefresh();
        auto fails = d.readAndCompare();
        d.restoreData();
        return std::set<uint64_t>(fails.begin(), fails.end());
    };
    auto a = window();
    auto b = window();
    ASSERT_GT(a.size(), 20u);
    // Large overlap (same pattern, same cells near threshold)...
    size_t common = 0;
    for (uint64_t addr : a)
        common += b.count(addr);
    EXPECT_GT(common, a.size() / 2);
    // ...but not identical: the marginal cells re-rolled.
    EXPECT_TRUE(a != b);
}

TEST(DeviceDynamics, RestoreWithoutWriteIsHarmless)
{
    DramDevice d(config(3));
    d.restoreData(); // warns, no crash
    EXPECT_TRUE(d.readAndCompare().empty());
}

TEST(DeviceDynamics, MixedTemperatureExposureAccumulatesScaled)
{
    DramDevice d(config(4));
    const RetentionModel &m = d.model();
    d.writePattern(DataPattern::Solid0);
    d.disableRefresh();
    d.setTemperature(45.0);
    d.wait(0.5);
    d.setTemperature(50.0);
    d.wait(0.5);
    double expected = 0.5 * m.equivalentExposureScale(45.0) +
                      0.5 * m.equivalentExposureScale(50.0);
    EXPECT_NEAR(d.exposureEquivalent(), expected, 1e-9);
    EXPECT_GT(d.exposureEquivalent(), 1.0); // hotter half counts more
}

TEST(DeviceDynamics, HotterWindowProducesMoreFailuresThanCool)
{
    auto count_failures = [](Celsius temp, uint64_t seed) {
        DramDevice d(config(seed));
        d.setTemperature(temp);
        d.writePattern(DataPattern::Random);
        d.disableRefresh();
        d.wait(1.2);
        return d.readAndCompare().size();
    };
    EXPECT_GT(count_failures(50.0, 5), count_failures(45.0, 5));
}

TEST(DeviceDynamics, VrtRateScaleZeroStopsArrivals)
{
    ModuleConfig mc;
    mc.numChips = 1;
    mc.chipCapacityBits = 4ull * 1024 * 1024 * 1024;
    mc.seed = 6;
    mc.envelope = {2.5, 50.0};
    mc.vrtRateScale = 0.0;
    DramModule m(mc);
    m.wait(hoursToSec(24.0));
    EXPECT_EQ(m.chip(0).activeVrtCount(), 0u);
}

TEST(DeviceDynamics, VrtRateScaleScalesArrivals)
{
    auto actives_with_scale = [](double scale) {
        ModuleConfig mc;
        mc.numChips = 1;
        mc.chipCapacityBits = 4ull * 1024 * 1024 * 1024;
        mc.seed = 7;
        mc.envelope = {2.5, 50.0};
        mc.vrtRateScale = scale;
        DramModule m(mc);
        m.wait(hoursToSec(24.0));
        return m.chip(0).activeVrtCount();
    };
    size_t nominal = actives_with_scale(1.0);
    size_t tripled = actives_with_scale(3.0);
    ASSERT_GT(nominal, 50u);
    EXPECT_NEAR(static_cast<double>(tripled) /
                    static_cast<double>(nominal),
                3.0, 1.0);
}

TEST(DeviceDynamics, ParamOverrideIsHonoured)
{
    ModuleConfig mc;
    mc.numChips = 1;
    mc.chipCapacityBits = 2ull * 1024 * 1024 * 1024;
    mc.seed = 8;
    mc.envelope = {2.0, 48.0};
    mc.hasParamOverride = true;
    mc.paramOverride = vendorParams(Vendor::B);
    mc.paramOverride.berAt1024ms *= 4.0;
    mc.chipVariation = 0.0;
    DramModule m(mc);
    EXPECT_NEAR(m.chip(0).model().params().berAt1024ms,
                vendorParams(Vendor::B).berAt1024ms * 4.0, 1e-12);
    // ~4x the weak population of a nominal chip.
    ModuleConfig nominal = mc;
    nominal.hasParamOverride = false;
    DramModule n(nominal);
    double ratio = static_cast<double>(m.chip(0).weakCellCount()) /
                   static_cast<double>(n.chip(0).weakCellCount());
    EXPECT_NEAR(ratio, 4.0, 0.6);
}

TEST(DeviceDynamics, EnableDisableRefreshBetweenWaitsSegments)
{
    // Exposure only accumulates over disabled-refresh segments.
    DramDevice d(config(9));
    d.writePattern(DataPattern::Solid0);
    d.disableRefresh();
    d.wait(0.6);
    d.enableRefresh();
    d.wait(5.0); // no accumulation
    d.disableRefresh();
    d.wait(0.4);
    d.enableRefresh();
    EXPECT_NEAR(d.exposureEquivalent(), 1.0, 1e-9);
}

} // namespace
} // namespace dram
} // namespace reaper
