/**
 * @file
 * Tests for profiling::ProfileView — the lazy, block-indexed, zero-
 * copy v2 read handle. Covers the laziness contract (point and range
 * queries decode at most one block, memoized), equivalence with the
 * eager reader, and the corruption story: exhaustive truncation and
 * bit-flip sweeps over the index + footer region must surface as
 * typed errors, never as a wrong answer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "profiling/profile_binary.h"
#include "profiling/profile_io.h"
#include "profiling/profile_view.h"

namespace reaper {
namespace profiling {
namespace {

using common::ErrorCategory;
using common::Expected;

RetentionProfile
randomProfile(uint64_t seed, size_t cells, uint32_t chips = 4,
              uint64_t addrSpace = 1ull << 40)
{
    Rng rng(seed);
    std::vector<dram::ChipFailure> v;
    v.reserve(cells);
    for (size_t i = 0; i < cells; ++i)
        v.push_back({static_cast<uint32_t>(rng.uniformInt(chips)),
                     rng.uniformInt(addrSpace)});
    RetentionProfile p(Conditions{1.024, 45.0});
    p.add(v);
    return p;
}

/** Serialize with small blocks so files have many index entries. */
std::string
binaryOf(const RetentionProfile &p, uint32_t blockCells = 8)
{
    std::stringstream os;
    BinaryProfileWriter writer(os, p.conditions(), p.size(),
                               blockCells);
    for (const dram::ChipFailure &f : p.cells())
        writer.append(f);
    EXPECT_TRUE(writer.finish().hasValue());
    return os.str();
}

std::string
writeTemp(const std::string &bytes, const char *name)
{
    std::string path = ::testing::TempDir() + name;
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    EXPECT_TRUE(os.good());
    return path;
}

TEST(ProfileView, OpenExposesHeaderAndIndexShape)
{
    RetentionProfile p = randomProfile(1, 100);
    std::string path = writeTemp(binaryOf(p), "view_shape.profile");
    Expected<ProfileView> view = ProfileView::open(path);
    ASSERT_TRUE(view.hasValue()) << view.error().describe();
    EXPECT_EQ(view.value().cellCount(), 100u);
    EXPECT_EQ(view.value().blockCells(), 8u);
    EXPECT_EQ(view.value().blockCount(), 13u); // ceil(100/8)
    EXPECT_DOUBLE_EQ(view.value().conditions().refreshInterval,
                     1.024);
    EXPECT_EQ(view.value().blocksDecoded(), 0u)
        << "open must not decode any block";
    std::remove(path.c_str());
}

TEST(ProfileView, ContainsAgreesWithEagerReaderAndIsLazy)
{
    RetentionProfile p = randomProfile(2, 500);
    Expected<ProfileView> view =
        ProfileView::fromBuffer(binaryOf(p));
    ASSERT_TRUE(view.hasValue()) << view.error().describe();

    // Every present cell is found, each point lookup decoding at
    // most one new block.
    uint64_t decoded = 0;
    for (const dram::ChipFailure &f : p.cells()) {
        Expected<bool> hit = view.value().contains(f);
        ASSERT_TRUE(hit.hasValue()) << hit.error().describe();
        EXPECT_TRUE(hit.value());
        uint64_t now = view.value().blocksDecoded();
        EXPECT_LE(now, decoded + 1);
        decoded = now;
    }
    // All blocks are memoized by now: re-querying decodes nothing.
    uint64_t afterAll = view.value().blocksDecoded();
    for (const dram::ChipFailure &f : p.cells())
        EXPECT_TRUE(view.value().contains(f).value());
    EXPECT_EQ(view.value().blocksDecoded(), afterAll);

    // Absent cells answer false (decoding at most one block each).
    Rng rng(77);
    for (int i = 0; i < 200; ++i) {
        dram::ChipFailure probe{
            static_cast<uint32_t>(rng.uniformInt(4)),
            rng.uniformInt(1ull << 40)};
        Expected<bool> hit = view.value().contains(probe);
        ASSERT_TRUE(hit.hasValue());
        EXPECT_EQ(hit.value(), p.contains(probe));
    }
}

TEST(ProfileView, RangeQueriesAnswerFromIndexAlone)
{
    RetentionProfile p = randomProfile(3, 400);
    Expected<ProfileView> view =
        ProfileView::fromBuffer(binaryOf(p));
    ASSERT_TRUE(view.hasValue());
    const auto &cells = p.cells();

    // A range spanning several blocks is provably non-empty from the
    // index: zero decodes.
    Expected<bool> wide =
        view.value().anyInRange(cells.front(), cells.back());
    ASSERT_TRUE(wide.hasValue());
    EXPECT_TRUE(wide.value());
    EXPECT_EQ(view.value().blocksDecoded(), 0u);

    // A range beyond every key is empty, also without decoding.
    dram::ChipFailure past{0xFFFFFFFFu, ~0ull};
    if (cells.back() < past) {
        dram::ChipFailure lo{cells.back().chip,
                             cells.back().addr + 1};
        Expected<bool> none = view.value().anyInRange(lo, past);
        ASSERT_TRUE(none.hasValue());
        EXPECT_FALSE(none.value());
        EXPECT_EQ(view.value().blocksDecoded(), 0u);
    }

    // An interior singleton range needs (at most) one decode and
    // agrees with the eager set.
    Expected<bool> one =
        view.value().anyInRange(cells[5], cells[5]);
    ASSERT_TRUE(one.hasValue());
    EXPECT_TRUE(one.value());
    EXPECT_LE(view.value().blocksDecoded(), 1u);
}

TEST(ProfileView, MaterializeMatchesEagerReaderByteForByte)
{
    const size_t sizes[] = {0, 1, 7, 8, 9, 100, 500};
    for (size_t n : sizes) {
        RetentionProfile p = randomProfile(40 + n, n);
        std::string bytes = binaryOf(p);
        Expected<ProfileView> view = ProfileView::fromBuffer(bytes);
        ASSERT_TRUE(view.hasValue()) << view.error().describe();
        Expected<RetentionProfile> mat = view.value().materialize();
        ASSERT_TRUE(mat.hasValue()) << mat.error().describe();
        EXPECT_EQ(mat.value().cells(), p.cells());
        // Re-serializing the materialized profile reproduces the
        // exact input bytes (same deterministic writer).
        EXPECT_EQ(binaryOf(mat.value()), bytes);
    }
}

TEST(ProfileView, OpenReportsIoForMissingFile)
{
    Expected<ProfileView> view =
        ProfileView::open("/nonexistent/view.profile");
    ASSERT_FALSE(view.hasValue());
    EXPECT_EQ(view.error().category, ErrorCategory::Io);
    EXPECT_NE(view.error().message.find("/nonexistent/view.profile"),
              std::string::npos);
}

// Every strict prefix of a valid file must fail to open or fail to
// materialize — laziness must not turn truncation into a silently
// smaller profile. (The index + footer live at the END of the file,
// so every truncation clips them and open() itself must object.)
TEST(ProfileView, EveryTruncationIsDetected)
{
    RetentionProfile p = randomProfile(5, 37);
    const std::string bytes = binaryOf(p);
    for (size_t len = 0; len < bytes.size(); ++len) {
        Expected<ProfileView> view =
            ProfileView::fromBuffer(bytes.substr(0, len));
        if (!view.hasValue()) {
            EXPECT_TRUE(view.error().category ==
                            ErrorCategory::Corrupt ||
                        view.error().category == ErrorCategory::Parse)
                << "prefix " << len << ": "
                << toString(view.error().category);
            continue;
        }
        Expected<RetentionProfile> mat = view.value().materialize();
        ASSERT_FALSE(mat.hasValue())
            << "prefix of " << len << " bytes materialized";
        EXPECT_EQ(mat.error().category, ErrorCategory::Corrupt);
    }
}

// Every single-bit flip in the index section and footer must be
// detected: the index and the footer's fixed fields are CRC-covered
// and fail at open (index corruption may never redirect a query to
// the wrong block); only the footer's whole-file-CRC field itself is
// deferred to materialize(), which verifies it.
TEST(ProfileView, EveryIndexAndFooterBitFlipIsDetectedAtOpen)
{
    RetentionProfile p = randomProfile(6, 37);
    const std::string bytes = binaryOf(p);
    const uint32_t blocks = 5; // ceil(37/8)
    size_t indexStart = bytes.size() - kBinaryFooterBytes -
                        indexSectionBytes(blocks);
    for (size_t i = indexStart; i < bytes.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutated = bytes;
            mutated[i] = static_cast<char>(
                static_cast<uint8_t>(mutated[i]) ^ (1u << bit));
            Expected<ProfileView> view =
                ProfileView::fromBuffer(std::move(mutated));
            if (!view.hasValue())
                continue;
            // Only the footer's trailing fileCrc word may survive an
            // open, and materialize() must then reject it.
            EXPECT_GE(i, bytes.size() - 4)
                << "bit " << bit << " of byte " << i
                << " flipped but the view opened";
            Expected<RetentionProfile> mat =
                view.value().materialize();
            ASSERT_FALSE(mat.hasValue())
                << "bit " << bit << " of byte " << i
                << " flipped but materialize succeeded";
            EXPECT_EQ(mat.error().category, ErrorCategory::Corrupt);
        }
    }
}

// Bit flips in block payloads are caught lazily: open succeeds (the
// damaged block is untouched), the query that lands on it reports
// Corrupt, and no flip anywhere ever yields a wrong answer.
TEST(ProfileView, BlockBitFlipsSurfaceLazilyAsCorrupt)
{
    RetentionProfile p = randomProfile(7, 37);
    const std::string bytes = binaryOf(p);
    size_t blocksEnd = bytes.size() - kBinaryFooterBytes -
                       indexSectionBytes(5);
    for (size_t i = kBinaryHeaderBytes; i < blocksEnd; ++i) {
        std::string mutated = bytes;
        mutated[i] = static_cast<char>(
            static_cast<uint8_t>(mutated[i]) ^ 0x10);
        Expected<ProfileView> view =
            ProfileView::fromBuffer(std::move(mutated));
        if (!view.hasValue())
            continue; // structural damage caught eagerly: fine
        bool sawError = false;
        for (const dram::ChipFailure &f : p.cells()) {
            Expected<bool> hit = view.value().contains(f);
            if (!hit.hasValue()) {
                EXPECT_EQ(hit.error().category,
                          ErrorCategory::Corrupt);
                sawError = true;
                break;
            }
            EXPECT_TRUE(hit.value())
                << "flip at byte " << i << " gave a wrong answer";
        }
        EXPECT_TRUE(sawError)
            << "flip at byte " << i << " was never detected";
        Expected<RetentionProfile> mat = view.value().materialize();
        EXPECT_FALSE(mat.hasValue())
            << "flip at byte " << i << " materialized";
    }
}

TEST(ProfileView, EmptyProfileViewAnswersWithoutDecoding)
{
    RetentionProfile p(Conditions{0.512, 50.0});
    Expected<ProfileView> view =
        ProfileView::fromBuffer(binaryOf(p));
    ASSERT_TRUE(view.hasValue()) << view.error().describe();
    EXPECT_EQ(view.value().blockCount(), 0u);
    EXPECT_FALSE(view.value().contains({0, 0}).value());
    EXPECT_FALSE(
        view.value().anyInRange({0, 0}, {9, 9}).value());
    EXPECT_EQ(view.value().blocksDecoded(), 0u);
    EXPECT_TRUE(view.value().materialize().value().empty());
}

// The streaming reader cross-checks the index against the blocks it
// decodes, so a file whose index disagrees with its (individually
// valid) blocks is rejected on the eager path too.
TEST(ProfileView, ReadProfileFileRoutesThroughViewAndAgrees)
{
    RetentionProfile p = randomProfile(8, 200);
    std::string path =
        writeTemp(binaryOf(p, kDefaultBlockCells), "view_rt.profile");
    Expected<RetentionProfile> loaded = readProfileFile(path);
    ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
    EXPECT_EQ(loaded.value().cells(), p.cells());
    std::remove(path.c_str());
}

} // namespace
} // namespace profiling
} // namespace reaper
