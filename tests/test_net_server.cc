/**
 * @file
 * End-to-end tests for the REAPER-NET daemon (net/server.h) over real
 * loopback sockets: handshake and key advertisement, answer
 * correctness against in-process ground truth, the
 * every-request-gets-a-response guarantee under saturation
 * (backpressure -> Rejected, never a drop), protocol-error teardown,
 * graceful shutdown via the SIGTERM latch, and an N-clients hammer
 * that doubles as the TSan smoke (runs under `ctest -L sanitize`).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <sys/socket.h>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "campaign/profile_store.h"
#include "common/rng.h"
#include "net/client.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "net/socket.h"
#include "serve/profile_cache.h"
#include "serve/workload.h"

namespace fs = std::filesystem;

namespace reaper {
namespace net {
namespace {

constexpr uint64_t kRowBits = 512;
constexpr uint64_t kRows = 1024;

std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("reaper_" + name);
    fs::remove_all(dir);
    return dir.string();
}

profiling::RetentionProfile
randomProfile(uint64_t seed, size_t cells)
{
    Rng rng(seed);
    std::vector<dram::ChipFailure> v;
    v.reserve(cells);
    for (size_t i = 0; i < cells; ++i)
        v.push_back({0, rng.uniformInt(kRows * kRowBits)});
    profiling::RetentionProfile p({1.024, 45.0});
    p.add(v);
    return p;
}

std::vector<std::string>
populateStore(campaign::ProfileStore &store, size_t n,
              size_t cells = 400)
{
    std::vector<std::string> keys;
    for (size_t i = 0; i < n; ++i) {
        std::string key = campaign::ProfileStore::profileKey(
            "chip-" + std::to_string(i), {1.024, 45.0});
        store.commit(key, randomProfile(1000 + i, cells));
        keys.push_back(key);
    }
    return keys;
}

serve::CacheConfig
testCacheConfig()
{
    serve::CacheConfig cfg;
    cfg.directory.rowBits = kRowBits;
    return cfg;
}

/** Store + cache + running server, torn down in reverse order. */
struct Fixture
{
    explicit Fixture(const std::string &name, size_t profiles = 4,
                     serve::EngineConfig engineCfg = {},
                     ServerConfig serverCfg = {})
        : store(scratchDir(name))
    {
        keys = populateStore(store, profiles);
        cache = std::make_unique<serve::ProfileCache>(
            store, testCacheConfig());
        serverCfg.keys = keys;
        server = std::make_unique<Server>(*cache, engineCfg,
                                          serverCfg);
        auto started = server->start();
        EXPECT_TRUE(started.hasValue())
            << (started.hasValue() ? ""
                                   : started.error().describe());
    }

    campaign::ProfileStore store;
    std::vector<std::string> keys;
    std::unique_ptr<serve::ProfileCache> cache;
    std::unique_ptr<Server> server;
};

/** Send `reqs` pipelined and collect exactly one response each. */
std::vector<WireResponse>
queryAll(Client &client, std::vector<serve::Request> reqs)
{
    EXPECT_TRUE(
        client.sendQueries(reqs.data(), reqs.size()).hasValue());
    std::vector<WireResponse> out;
    while (out.size() < reqs.size()) {
        auto st = client.recvResponses(out);
        EXPECT_TRUE(st.hasValue())
            << (st.hasValue() ? "" : st.error().describe());
        if (!st.hasValue())
            break;
    }
    return out;
}

// ---------------- Handshake and keys ----------------

TEST(NetServer, HandshakeAdvertisesLimitsAndKeys)
{
    Fixture fx("net_handshake");
    auto client =
        Client::connect("127.0.0.1", fx.server->port());
    ASSERT_TRUE(client.hasValue())
        << (client.hasValue() ? "" : client.error().describe());
    EXPECT_EQ(client.value().serverLimits().maxFrameBytes,
              kDefaultMaxFrameBytes);
    auto keys = client.value().listKeys();
    ASSERT_TRUE(keys.hasValue());
    EXPECT_EQ(keys.value(), fx.keys);
}

// ---------------- Correctness over the wire ----------------

TEST(NetServer, AnswersMatchInProcessEngine)
{
    Fixture fx("net_correct");

    // Ground truth: answer the same workload with a directly-owned
    // engine over an identical cache.
    serve::WorkloadConfig wc;
    wc.keys = fx.keys;
    wc.rowsPerChip = kRows;
    wc.unknownFraction = 0.25;
    const size_t n = 500;

    serve::Workload workload(wc, 77);
    std::vector<serve::Request> reqs;
    for (size_t i = 0; i < n; ++i)
        reqs.push_back(workload.next());
    std::vector<serve::Request> reqsCopy = reqs;

    campaign::ProfileStore store2(scratchDir("net_correct_truth"));
    populateStore(store2, 4);
    serve::ProfileCache cache2(store2, testCacheConfig());
    std::vector<serve::Response> truth(n);
    {
        std::mutex mu;
        serve::EngineConfig ec;
        serve::QueryEngine engine(
            cache2, ec, nullptr, [&](const serve::Response &r) {
                std::lock_guard<std::mutex> lock(mu);
                truth[r.id] = r;
            });
        size_t offset = 0;
        while (offset < reqsCopy.size()) {
            size_t taken = engine.trySubmitBatch(reqsCopy, offset);
            offset += taken;
            if (taken == 0)
                std::this_thread::yield();
        }
        engine.drain();
    }

    auto client =
        Client::connect("127.0.0.1", fx.server->port());
    ASSERT_TRUE(client.hasValue());
    std::vector<WireResponse> got = queryAll(client.value(), reqs);
    ASSERT_EQ(got.size(), n);
    for (const WireResponse &resp : got) {
        ASSERT_LT(resp.id, n);
        const serve::Response &want = truth[resp.id];
        if (want.status == serve::ResponseStatus::Ok) {
            EXPECT_EQ(resp.status, WireStatus::Ok);
            EXPECT_EQ(resp.weak, want.weak);
            EXPECT_EQ(resp.bin, want.bin);
            EXPECT_EQ(resp.interval, want.interval);
        } else {
            EXPECT_EQ(resp.status, WireStatus::NotFound);
        }
    }
}

// ---------------- Saturation: no request unanswered ----------------

TEST(NetServer, SaturationRejectsButAnswersEverything)
{
    // A queue of 8 with one worker cannot hold a 64-request frame:
    // the daemon must shed the overflow as Rejected — immediately,
    // without blocking — and still answer every single request.
    serve::EngineConfig ec;
    ec.workers = 1;
    ec.queueCapacity = 8;
    Fixture fx("net_saturate", 2, ec);

    LoadgenConfig lg;
    lg.port = fx.server->port();
    lg.connections = 2;
    lg.pipeline = 8;
    lg.batch = 64;
    lg.totalRequests = 20000;
    lg.workload.keys = fx.keys;
    lg.workload.rowsPerChip = kRows;
    auto result = runLoadgen(lg);
    ASSERT_TRUE(result.hasValue())
        << (result.hasValue() ? "" : result.error().describe());
    const LoadgenResult &r = result.value();
    EXPECT_EQ(r.sent, 20000u);
    EXPECT_GT(r.rejected, 0u) << "saturation never tripped "
                                 "backpressure — not saturating";
    EXPECT_EQ(r.ok + r.notFound + r.rejected, r.sent)
        << "some requests were dropped without a response";
    EXPECT_EQ(r.unanswered, 0u);
    EXPECT_EQ(r.protocolErrors, 0u);
    EXPECT_TRUE(r.errors.empty());

    fx.server->stop();
    fx.server->join();
    ServerStats stats = fx.server->stats();
    EXPECT_EQ(stats.responsesOk + stats.responsesNotFound +
                  stats.responsesRejected,
              stats.requests);
}

// ---------------- Protocol errors tear down the conn ----------------

TEST(NetServer, GarbageFrameGetsProtocolErrorThenClose)
{
    Fixture fx("net_garbage");
    auto sock = Socket::connectTcp("127.0.0.1", fx.server->port());
    ASSERT_TRUE(sock.hasValue());

    // A frame whose CRC is wrong: header says 2-byte body, CRC 0.
    const uint8_t bad[] = {0x02, 0x00, 0x00, 0x00, 0x05, 0x01,
                           0x00, 0x00, 0x00, 0x00};
    ASSERT_TRUE(
        writeAll(sock.value().fd(), bad, sizeof(bad)).hasValue());

    // The daemon must answer with a ProtocolError frame, then close.
    std::vector<uint8_t> inbuf;
    for (;;) {
        uint8_t chunk[1024];
        ssize_t n =
            ::recv(sock.value().fd(), chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        inbuf.insert(inbuf.end(), chunk, chunk + n);
    }
    FrameView frame;
    auto consumed =
        tryExtractFrame(inbuf.data(), inbuf.size(), {}, &frame);
    ASSERT_TRUE(consumed.hasValue());
    ASSERT_GT(consumed.value(), 0u);
    EXPECT_EQ(frame.opcode, Opcode::ProtocolError);
    auto msg = decodeProtocolError(frame, {});
    ASSERT_TRUE(msg.hasValue());
    EXPECT_NE(msg.value().find("corrupt"), std::string::npos);

    fx.server->stop();
    fx.server->join();
    EXPECT_EQ(fx.server->stats().protocolErrors, 1u);
}

// ---------------- Graceful shutdown ----------------

TEST(NetServer, SigtermLatchDrainsInFlightWork)
{
    resetShutdownLatch();
    installShutdownHandlers();
    ASSERT_FALSE(shutdownRequested());

    serve::EngineConfig ec;
    ec.workers = 2;
    Fixture fx("net_sigterm", 4, ec);

    auto client =
        Client::connect("127.0.0.1", fx.server->port());
    ASSERT_TRUE(client.hasValue());
    serve::WorkloadConfig wc;
    wc.keys = fx.keys;
    wc.rowsPerChip = kRows;
    serve::Workload workload(wc, 3);
    std::vector<serve::Request> reqs;
    for (size_t i = 0; i < 256; ++i)
        reqs.push_back(workload.next());
    ASSERT_TRUE(client.value()
                    .sendQueries(reqs.data(), reqs.size())
                    .hasValue());

    // Wait until the daemon has actually read the batch — shutdown
    // guarantees every *accepted* request an answer; bytes still in
    // the kernel receive buffer when the listener dies are the
    // client's retry problem.
    while (fx.server->stats().requests < reqs.size())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // The real signal, through the real handler.
    ::raise(SIGTERM);
    waitForShutdown();
    EXPECT_TRUE(shutdownRequested());

    // The daemon's shutdown path: stop() closes the listener, drains
    // the engine, and flushes every in-flight answer before closing.
    fx.server->stop();

    std::vector<WireResponse> got;
    while (got.size() < reqs.size()) {
        auto st = client.value().recvResponses(got);
        ASSERT_TRUE(st.hasValue())
            << (st.hasValue() ? "" : st.error().describe());
    }
    EXPECT_EQ(got.size(), reqs.size());
    fx.server->join();

    // New connections must be refused after shutdown.
    auto late = Client::connect("127.0.0.1", fx.server->port());
    EXPECT_FALSE(late.hasValue());

    resetShutdownLatch();
}

TEST(NetServer, StopIsIdempotentAndJoinable)
{
    Fixture fx("net_stop_idem");
    fx.server->stop();
    fx.server->stop();
    fx.server->join();
    fx.server->join();
}

// ---------------- N clients hammer (TSan smoke) ----------------

TEST(NetServer, ManyClientsManyThreads)
{
    serve::EngineConfig ec;
    ec.workers = 3;
    ec.queueCapacity = 256;
    Fixture fx("net_hammer", 3, ec);

    const unsigned kClients = 4;
    const size_t kPerClient = 2000;
    std::vector<std::thread> threads;
    std::vector<uint64_t> answered(kClients, 0);
    for (unsigned c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            auto client =
                Client::connect("127.0.0.1", fx.server->port());
            ASSERT_TRUE(client.hasValue());
            serve::WorkloadConfig wc;
            wc.keys = fx.keys;
            wc.rowsPerChip = kRows;
            wc.unknownFraction = 0.1;
            serve::Workload workload(wc, 100 + c);
            std::vector<serve::Request> batch;
            std::vector<WireResponse> got;
            size_t sent = 0;
            while (sent < kPerClient) {
                batch.clear();
                for (size_t i = 0;
                     i < 50 && sent + batch.size() < kPerClient; ++i)
                    batch.push_back(workload.next());
                ASSERT_TRUE(
                    client.value()
                        .sendQueries(batch.data(), batch.size())
                        .hasValue());
                sent += batch.size();
                // Interleave sends and receives (pipeline of ~2).
                while (got.size() + 100 < sent) {
                    auto st = client.value().recvResponses(got);
                    ASSERT_TRUE(st.hasValue());
                }
            }
            while (got.size() < kPerClient) {
                auto st = client.value().recvResponses(got);
                ASSERT_TRUE(st.hasValue());
            }
            answered[c] = got.size();
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (unsigned c = 0; c < kClients; ++c)
        EXPECT_EQ(answered[c], kPerClient);

    fx.server->stop();
    fx.server->join();
    ServerStats stats = fx.server->stats();
    EXPECT_EQ(stats.requests, kClients * kPerClient);
    EXPECT_EQ(stats.responsesOk + stats.responsesNotFound +
                  stats.responsesRejected,
              stats.requests);
    EXPECT_EQ(stats.protocolErrors, 0u);
}

} // namespace
} // namespace net
} // namespace reaper
