/**
 * @file
 * Tests for the deterministic RNG and its distribution samplers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace reaper {
namespace {

TEST(SplitMix64, ProducesKnownNonZeroSequence)
{
    uint64_t state = 0;
    uint64_t a = splitmix64(state);
    uint64_t b = splitmix64(state);
    EXPECT_NE(a, 0u);
    EXPECT_NE(a, b);
}

TEST(HashCombine, OrderSensitive)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(HashCombine, NearbyInputsDecorrelate)
{
    // Consecutive inputs should not produce consecutive hashes.
    uint64_t h0 = hashCombine(42, 0);
    uint64_t h1 = hashCombine(42, 1);
    EXPECT_GT(h0 ^ h1, 0xFFFFu);
}

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedDifferentSequence)
{
    Rng a(123), b(124);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == b());
    EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsIndependent)
{
    Rng a(7);
    Rng child = a.fork();
    // Fork consumed one draw; the child stream must differ from the
    // parent's continuation.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == child());
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(1);
    RunningStats s;
    for (int i = 0; i < 100000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        s.add(u);
    }
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Rng, UniformRange)
{
    Rng r(2);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntBoundsAndCoverage)
{
    Rng r(3);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = r.uniformInt(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntOne)
{
    Rng r(4);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.uniformInt(1), 0u);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
        EXPECT_FALSE(r.bernoulli(-0.5));
        EXPECT_TRUE(r.bernoulli(1.5));
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(6);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng r(7);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(r.normal(2.0, 3.0));
    EXPECT_NEAR(s.mean(), 2.0, 0.05);
    EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, LognormalMedian)
{
    Rng r(8);
    std::vector<double> v;
    for (int i = 0; i < 100000; ++i)
        v.push_back(r.lognormal(1.0, 0.5));
    EXPECT_NEAR(percentile(v, 0.5), std::exp(1.0), 0.05);
}

TEST(Rng, ExponentialMean)
{
    Rng r(9);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(r.exponentialMean(4.0));
    EXPECT_NEAR(s.mean(), 4.0, 0.1);
    EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, PoissonSmallMean)
{
    Rng r(10);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(static_cast<double>(r.poisson(2.5)));
    EXPECT_NEAR(s.mean(), 2.5, 0.05);
    EXPECT_NEAR(s.variance(), 2.5, 0.1);
}

TEST(Rng, PoissonLargeMean)
{
    Rng r(11);
    RunningStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(static_cast<double>(r.poisson(500.0)));
    EXPECT_NEAR(s.mean(), 500.0, 2.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(500.0), 1.0);
}

TEST(Rng, PoissonZeroMean)
{
    Rng r(12);
    EXPECT_EQ(r.poisson(0.0), 0u);
    EXPECT_EQ(r.poisson(-1.0), 0u);
}

TEST(Rng, BinomialEdges)
{
    Rng r(13);
    EXPECT_EQ(r.binomial(0, 0.5), 0u);
    EXPECT_EQ(r.binomial(100, 0.0), 0u);
    EXPECT_EQ(r.binomial(100, 1.0), 100u);
}

TEST(Rng, BinomialSmall)
{
    Rng r(14);
    RunningStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(static_cast<double>(r.binomial(20, 0.3)));
    EXPECT_NEAR(s.mean(), 6.0, 0.1);
    EXPECT_NEAR(s.variance(), 20 * 0.3 * 0.7, 0.15);
}

TEST(Rng, BinomialRareEventRegime)
{
    // The weak-cell sampling path: huge n, tiny p.
    Rng r(15);
    RunningStats s;
    const uint64_t n = 1ull << 34;
    const double p = 1e-9;
    for (int i = 0; i < 20000; ++i)
        s.add(static_cast<double>(r.binomial(n, p)));
    double expect = static_cast<double>(n) * p; // ~17.2
    EXPECT_NEAR(s.mean(), expect, 0.3);
}

TEST(Rng, BinomialLargeNormalRegime)
{
    Rng r(16);
    RunningStats s;
    for (int i = 0; i < 20000; ++i)
        s.add(static_cast<double>(r.binomial(1000000, 0.25)));
    EXPECT_NEAR(s.mean(), 250000.0, 150.0);
}

} // namespace
} // namespace reaper
