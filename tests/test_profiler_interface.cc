/**
 * @file
 * Tests for the abstract profiling::Profiler interface and its
 * string-keyed factory: factory-built profilers are bit-identical to
 * directly constructed ones, error reporting is typed (NotFound /
 * InvalidConfig / Fault), and the campaign layer runs rounds through
 * any registered mechanism by name.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>

#include "campaign/campaign.h"
#include "campaign/faulty_host.h"
#include "profiling/brute_force.h"
#include "profiling/ecc_scrub.h"
#include "profiling/profiler.h"
#include "profiling/reach.h"

namespace reaper {
namespace profiling {
namespace {

using common::ErrorCategory;

dram::ModuleConfig
testModule(uint64_t seed = 1)
{
    dram::ModuleConfig cfg;
    cfg.numChips = 1;
    cfg.chipCapacityBits = 1ull << 30; // 128 MB
    cfg.seed = seed;
    cfg.envelope = {2.5, 50.0};
    return cfg;
}

testbed::HostConfig
instantHost()
{
    testbed::HostConfig h;
    h.useChamber = false;
    return h;
}

ProfilerSpec
smallSpec()
{
    ProfilerSpec spec;
    spec.iterations = 2;
    return spec;
}

/** Run one round of `p` on a freshly seeded module. */
ProfilingResult
runOn(const Profiler &p, uint64_t seed,
      Conditions target = {1.024, 45.0})
{
    dram::DramModule m(testModule(seed));
    testbed::SoftMcHost host(m, instantHost());
    common::Expected<ProfilingResult> r = p.profile(host, target);
    EXPECT_TRUE(r.hasValue())
        << p.name() << ": " << r.error().describe();
    return std::move(r).value();
}

TEST(ProfilerFactory, ListsBuiltinsSorted)
{
    std::vector<std::string> names = profilerNames();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    for (const char *builtin : {"brute_force", "ecc_scrub", "reach"})
        EXPECT_NE(std::find(names.begin(), names.end(), builtin),
                  names.end())
            << builtin;
}

TEST(ProfilerFactory, BuiltProfilersReportTheirRegistryName)
{
    for (const char *name : {"brute_force", "reach", "ecc_scrub"}) {
        auto p = makeProfiler(name, smallSpec());
        ASSERT_TRUE(p.hasValue()) << p.error().describe();
        EXPECT_EQ(p.value()->name(), name);
    }
}

TEST(ProfilerFactory, UnknownNameReportsNotFound)
{
    auto p = makeProfiler("quantum_annealer");
    ASSERT_FALSE(p.hasValue());
    EXPECT_EQ(p.error().category, ErrorCategory::NotFound);
    // The diagnostic lists what IS registered.
    EXPECT_NE(p.error().message.find("brute_force"),
              std::string::npos);
}

TEST(ProfilerFactory, DuplicateRegistrationIsRejected)
{
    EXPECT_FALSE(registerProfiler(
        "brute_force", [](const ProfilerSpec &spec) {
            return std::unique_ptr<Profiler>(
                new BruteForceProfiler(spec));
        }));
    // The original stays in place.
    auto p = makeProfiler("brute_force", smallSpec());
    ASSERT_TRUE(p.hasValue());
    EXPECT_EQ(p.value()->name(), "brute_force");
}

TEST(ProfilerFactory, NewMechanismPlugsIn)
{
    // A mechanism the library has never heard of registers and then
    // builds through the same factory path as the built-ins.
    ASSERT_TRUE(registerProfiler(
        "test_only_alias", [](const ProfilerSpec &spec) {
            return std::unique_ptr<Profiler>(
                new BruteForceProfiler(spec));
        }));
    auto names = profilerNames();
    EXPECT_NE(
        std::find(names.begin(), names.end(), "test_only_alias"),
        names.end());
    auto p = makeProfiler("test_only_alias", smallSpec());
    ASSERT_TRUE(p.hasValue()) << p.error().describe();
    EXPECT_EQ(runOn(*p.value(), 7).profile.cells(),
              runOn(BruteForceProfiler(smallSpec()), 7).profile.cells());
}

// The factory is a construction convenience, not a behaviour fork:
// a factory-built profiler and a directly constructed one must
// produce bit-identical profiles on identically seeded modules.
TEST(ProfilerInterface, FactoryMatchesDirectBruteForce)
{
    auto fp = makeProfiler("brute_force", smallSpec());
    ASSERT_TRUE(fp.hasValue());
    ProfilingResult a = runOn(*fp.value(), 11);
    ProfilingResult b = runOn(BruteForceProfiler(smallSpec()), 11);
    EXPECT_EQ(a.profile.cells(), b.profile.cells());
    EXPECT_EQ(a.iterationsRun, b.iterationsRun);
    EXPECT_DOUBLE_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.discoveryCurve, b.discoveryCurve);
}

TEST(ProfilerInterface, FactoryMatchesDirectReach)
{
    ProfilerSpec spec = smallSpec();
    spec.reachDeltaRefresh = 0.250;
    auto fp = makeProfiler("reach", spec);
    ASSERT_TRUE(fp.hasValue());
    ProfilingResult a = runOn(*fp.value(), 12);
    ProfilingResult b = runOn(ReachProfiler(spec), 12);
    EXPECT_EQ(a.profile.cells(), b.profile.cells());
    EXPECT_DOUBLE_EQ(a.runtime, b.runtime);
}

TEST(ProfilerInterface, FactoryMatchesDirectEccScrub)
{
    auto fp = makeProfiler("ecc_scrub", smallSpec());
    ASSERT_TRUE(fp.hasValue());
    ProfilingResult a = runOn(*fp.value(), 13);
    ProfilingResult b = runOn(EccScrubProfiler(smallSpec()), 13);
    EXPECT_EQ(a.profile.cells(), b.profile.cells());
    EXPECT_DOUBLE_EQ(a.runtime, b.runtime);
}

TEST(ProfilerInterface, BadSpecReportsInvalidConfig)
{
    dram::DramModule m(testModule(20));
    testbed::SoftMcHost host(m, instantHost());

    ProfilerSpec zero_iters;
    zero_iters.iterations = 0;
    for (const char *name : {"brute_force", "reach", "ecc_scrub"}) {
        auto p = makeProfiler(name, zero_iters);
        ASSERT_TRUE(p.hasValue());
        auto r = p.value()->profile(host, {1.024, 45.0});
        ASSERT_FALSE(r.hasValue()) << name;
        EXPECT_EQ(r.error().category, ErrorCategory::InvalidConfig)
            << name;
    }

    ProfilerSpec no_patterns;
    no_patterns.patterns.clear();
    for (const char *name : {"brute_force", "reach"}) {
        auto p = makeProfiler(name, no_patterns);
        ASSERT_TRUE(p.hasValue());
        auto r = p.value()->profile(host, {1.024, 45.0});
        ASSERT_FALSE(r.hasValue()) << name;
        EXPECT_EQ(r.error().category, ErrorCategory::InvalidConfig)
            << name;
    }
}

TEST(ProfilerInterface, TransientHostFaultReportsFaultCategory)
{
    dram::DramModule m(testModule(21));
    campaign::FaultConfig faults;
    faults.seed = 5;
    faults.commandTimeoutRate = 1.0; // first command always faults
    campaign::FaultyHost host(m, instantHost(), faults, 0);

    auto p = makeProfiler("brute_force", smallSpec());
    ASSERT_TRUE(p.hasValue());
    auto r = p.value()->profile(host, {1.024, 45.0});
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().category, ErrorCategory::Fault);
    EXPECT_FALSE(r.error().message.empty());
}

TEST(ProfilerInterface, CampaignRoundResolvesByName)
{
    campaign::RoundSpec by_name;
    by_name.profilerName = "ecc_scrub";
    EXPECT_EQ(campaign::resolvedProfilerName(by_name), "ecc_scrub");

    campaign::RoundSpec by_enum;
    by_enum.profiler = campaign::ProfilerKind::BruteForce;
    EXPECT_EQ(campaign::resolvedProfilerName(by_enum), "brute_force");

    // Name and enum spellings of the same mechanism are equivalent —
    // they resolve (and therefore fingerprint) identically.
    campaign::RoundSpec by_name2;
    by_name2.profilerName = "brute_force";
    EXPECT_EQ(campaign::resolvedProfilerName(by_name2),
              campaign::resolvedProfilerName(by_enum));
}

TEST(ProfilerInterface, CampaignRunsNamedProfilerEndToEnd)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::path(::testing::TempDir()) /
                   "reaper_named_profiler_campaign";
    fs::remove_all(dir);

    campaign::CampaignConfig cfg;
    cfg.dir = dir.string();
    cfg.name = "named-profiler";
    cfg.baseSeed = 31;
    cfg.chips = campaign::makeChipFleet(2, cfg.baseSeed, 1ull << 26,
                                        {2.4, 52.0});
    campaign::RoundSpec round;
    round.target = {msToSec(1024.0), 45.0};
    round.profilerName = "ecc_scrub";
    round.iterations = 2;
    cfg.rounds = {round};
    cfg.host.useChamber = false;
    cfg.fleet.threads = 1;

    campaign::CampaignStats stats = campaign::runCampaign(cfg);
    EXPECT_TRUE(stats.complete());

    campaign::ProfileStore store(cfg.dir + "/store");
    EXPECT_EQ(store.size(), cfg.chips.size());
}

TEST(ProfilerInterface, CampaignRejectsUnknownProfilerName)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::path(::testing::TempDir()) /
                   "reaper_unknown_profiler_campaign";
    fs::remove_all(dir);

    campaign::CampaignConfig cfg;
    cfg.dir = dir.string();
    cfg.name = "unknown-profiler";
    cfg.baseSeed = 32;
    cfg.chips = campaign::makeChipFleet(1, cfg.baseSeed, 1ull << 26,
                                        {2.4, 52.0});
    campaign::RoundSpec round;
    round.target = {msToSec(1024.0), 45.0};
    round.profilerName = "does_not_exist";
    cfg.rounds = {round};
    cfg.host.useChamber = false;

    EXPECT_THROW(campaign::runCampaign(cfg),
                 campaign::CampaignError);
}

} // namespace
} // namespace profiling
} // namespace reaper
