/**
 * @file
 * Tests for the row-disturbance (RowHammer) subsystem: geometry
 * adjacency properties (bank/subarray clamping), the deterministic
 * disturbance fault model, the device/host hammer operation, aggressor
 * pattern construction and interference-free wave scheduling, the
 * factory-registered "rowhammer" profiler (binary-search results pinned
 * to the model oracle), and campaign-level bit-identical determinism
 * across worker thread counts and kill/resume.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <set>
#include <sstream>

#include "campaign/campaign.h"
#include "disturb/pattern_builder.h"
#include "disturb/rowhammer_profiler.h"
#include "dram/device.h"
#include "dram/module.h"
#include "testbed/softmc_host.h"

namespace fs = std::filesystem;

namespace reaper {
namespace {

// ---------------------------------------------------------------------
// Geometry adjacency properties
// ---------------------------------------------------------------------

TEST(DisturbGeometry, NeighborsNeverCrossBankOrSubarray)
{
    // 4 banks x 256 rows, 4 subarrays of 64 rows per bank.
    dram::Geometry g(4, 256, 64, 64);
    for (uint64_t row = 0; row < g.totalRows(); ++row) {
        for (int off : {-2, -1, 1, 2}) {
            uint64_t n = 0;
            if (!g.neighborRowIndex(row, off, &n))
                continue;
            EXPECT_EQ(g.bankOfRowIndex(n), g.bankOfRowIndex(row));
            EXPECT_EQ(g.subarrayOf(g.rowInBank(n)),
                      g.subarrayOf(g.rowInBank(row)));
            EXPECT_EQ(int64_t{g.rowInBank(n)} -
                          int64_t{g.rowInBank(row)},
                      off);
        }
    }
}

TEST(DisturbGeometry, EdgeRowsClamp)
{
    dram::Geometry g(2, 128, 64, 64);
    for (uint32_t bank : {0u, 1u}) {
        uint64_t first = g.rowIndex(bank, 0);
        uint64_t last = g.rowIndex(bank, 127);
        EXPECT_FALSE(g.neighborRowIndex(first, -1, nullptr));
        EXPECT_FALSE(g.neighborRowIndex(first, -2, nullptr));
        EXPECT_TRUE(g.neighborRowIndex(first, 1, nullptr));
        EXPECT_FALSE(g.neighborRowIndex(last, 1, nullptr));
        EXPECT_FALSE(g.neighborRowIndex(last, 2, nullptr));
        EXPECT_TRUE(g.neighborRowIndex(last, -1, nullptr));
    }
    // The sense-amplifier stripe between rows 63 and 64 blocks coupling
    // in both directions, at distance 1 and 2.
    uint64_t sa_last = g.rowIndex(0, 63);
    uint64_t sa_first = g.rowIndex(0, 64);
    EXPECT_FALSE(g.neighborRowIndex(sa_last, 1, nullptr));
    EXPECT_FALSE(g.neighborRowIndex(sa_last, 2, nullptr));
    EXPECT_FALSE(g.neighborRowIndex(sa_first, -1, nullptr));
    EXPECT_FALSE(g.neighborRowIndex(sa_first, -2, nullptr));
    uint64_t n = 0;
    ASSERT_TRUE(g.neighborRowIndex(sa_last, -1, &n));
    EXPECT_EQ(n, g.rowIndex(0, 62));
    ASSERT_TRUE(g.neighborRowIndex(sa_first, 1, &n));
    EXPECT_EQ(n, g.rowIndex(0, 65));
}

TEST(DisturbGeometry, SubarrayTallerThanBankClampsToOneTile)
{
    dram::Geometry g(1, 16, 64, 512);
    EXPECT_EQ(g.rowsPerSubarray(), 16u);
    uint64_t n = 0;
    ASSERT_TRUE(g.neighborRowIndex(7, 2, &n));
    EXPECT_EQ(n, 9u);
}

// ---------------------------------------------------------------------
// Disturbance fault model
// ---------------------------------------------------------------------

TEST(DisturbModel, VictimPopulationIsDeterministicPerSeed)
{
    dram::Geometry g = dram::Geometry::forCapacityBits(1ull << 22);
    dram::DisturbParams params;
    dram::DisturbModel a(params, g, 7), b(params, g, 7);
    dram::DisturbModel other(params, g, 8);
    size_t victims = 0;
    bool differs = false;
    for (uint64_t row = 0; row < g.totalRows(); ++row) {
        std::vector<dram::VictimCell> va = a.victimsOfRow(row);
        std::vector<dram::VictimCell> vb = b.victimsOfRow(row);
        ASSERT_EQ(va.size(), vb.size());
        for (size_t i = 0; i < va.size(); ++i) {
            EXPECT_EQ(va[i].addr, vb[i].addr);
            EXPECT_EQ(va[i].threshold, vb[i].threshold);
            EXPECT_EQ(va[i].vulnerableValue, vb[i].vulnerableValue);
            EXPECT_EQ(va[i].favoredClass, vb[i].favoredClass);
            // Thresholds respect the floor; addresses stay in the row.
            EXPECT_GE(va[i].threshold, params.hcFirstFloor);
            EXPECT_GE(va[i].addr, g.rowStartBit(row));
            EXPECT_LT(va[i].addr, g.rowStartBit(row) + g.rowBits());
            EXPECT_LT(va[i].favoredClass, dram::kNumDataPatterns);
            if (i > 0)
                EXPECT_LT(va[i - 1].addr, va[i].addr);
        }
        victims += va.size();
        if (other.victimsOfRow(row).size() != va.size())
            differs = true;
    }
    EXPECT_GT(victims, 0u);
    EXPECT_TRUE(differs) << "seed does not vary the population";
}

TEST(DisturbModel, EffectiveThresholdAndCoupling)
{
    dram::Geometry g(1, 128, 64, 64);
    dram::DisturbParams params;
    dram::DisturbModel m(params, g, 1);

    dram::VictimCell v;
    v.threshold = 10000.0;
    v.favoredClass = static_cast<uint8_t>(
        dram::patternClass(dram::DataPattern::RowStripe));
    EXPECT_DOUBLE_EQ(
        m.effectiveThreshold(
            v, dram::patternClass(dram::DataPattern::RowStripe)),
        10000.0 * params.patternAdvantage);
    EXPECT_DOUBLE_EQ(
        m.effectiveThreshold(
            v, dram::patternClass(dram::DataPattern::Solid0)),
        10000.0);

    EXPECT_DOUBLE_EQ(m.coupling(1), 1.0);
    EXPECT_DOUBLE_EQ(m.coupling(2), params.couplingDist2);
    EXPECT_DOUBLE_EQ(m.coupling(3), 0.0);
    EXPECT_DOUBLE_EQ(m.coupling(0), 0.0);
}

TEST(DisturbModel, PressureRateRespectsAdjacency)
{
    dram::Geometry g(1, 128, 64, 64);
    dram::DisturbParams params;
    dram::DisturbModel m(params, g, 1);

    EXPECT_DOUBLE_EQ(m.pressureRate(10, {9, 11}), 2.0);
    EXPECT_DOUBLE_EQ(m.pressureRate(10, {8, 12}),
                     2.0 * params.couplingDist2);
    EXPECT_DOUBLE_EQ(m.pressureRate(10, {20}), 0.0);
    // Coupling stops at the subarray boundary (rows 63 | 64) and at
    // the bank edge (row 0).
    EXPECT_DOUBLE_EQ(m.pressureRate(63, {64}), 0.0);
    EXPECT_DOUBLE_EQ(m.pressureRate(64, {63}), 0.0);
    EXPECT_DOUBLE_EQ(m.pressureRate(0, {1}), 1.0);
}

TEST(DisturbModel, ValidatesParameters)
{
    dram::Geometry g(1, 64, 64, 64);
    dram::DisturbParams bad;
    bad.patternAdvantage = 0.0;
    EXPECT_DEATH(dram::DisturbModel(bad, g, 1), "patternAdvantage");
    bad = {};
    bad.hcFirstMedian = -1.0;
    EXPECT_DEATH(dram::DisturbModel(bad, g, 1), "hammer-count");
}

// ---------------------------------------------------------------------
// Device-level hammer semantics
// ---------------------------------------------------------------------

dram::DeviceConfig
smallDeviceConfig(uint64_t seed)
{
    dram::DeviceConfig cfg;
    cfg.capacityBits = 1ull << 22; // 8 banks x 32 rows
    cfg.seed = seed;
    return cfg;
}

/** Smallest row with at least one victim cell and both distance-1
 *  neighbors (so a double-sided pattern gets full 2.0 coupling). */
uint64_t
findDoubleSidedVictimRow(const dram::DramDevice &dev)
{
    const dram::Geometry &g = dev.geometry();
    for (uint64_t row = 0; row < g.totalRows(); ++row) {
        if (!g.neighborRowIndex(row, -1, nullptr) ||
            !g.neighborRowIndex(row, 1, nullptr))
            continue;
        if (!dev.disturbModel().victimsOfRow(row).empty())
            return row;
    }
    return ~0ull;
}

TEST(DisturbDevice, NoFlipsBelowTheThresholdFloor)
{
    dram::DramDevice dev(smallDeviceConfig(3));
    uint64_t row = findDoubleSidedVictimRow(dev);
    ASSERT_NE(row, ~0ull);
    uint64_t below = 0, above = 0;
    ASSERT_TRUE(dev.geometry().neighborRowIndex(row, -1, &below));
    ASSERT_TRUE(dev.geometry().neighborRowIndex(row, 1, &above));

    // Double-sided pressure is 2 activations per hammer count, and the
    // lowest possible effective threshold is floor * patternAdvantage:
    // any count strictly below that bound can flip nothing, anywhere.
    const dram::DisturbParams &p = dev.disturbModel().params();
    uint64_t safe = static_cast<uint64_t>(
        p.hcFirstFloor * p.patternAdvantage / 2.0) - 1;
    for (dram::DataPattern dp :
         {dram::DataPattern::Solid0, dram::DataPattern::Solid1}) {
        dev.writePattern(dp);
        dev.hammer({below, above}, safe);
        EXPECT_TRUE(dev.readAndCompare().empty());
    }
}

TEST(DisturbDevice, FlipsMatchTheModelOracle)
{
    dram::DramDevice dev(smallDeviceConfig(3));
    const dram::Geometry &g = dev.geometry();
    uint64_t row = findDoubleSidedVictimRow(dev);
    ASSERT_NE(row, ~0ull);
    uint64_t below = 0, above = 0;
    ASSERT_TRUE(g.neighborRowIndex(row, -1, &below));
    ASSERT_TRUE(g.neighborRowIndex(row, 1, &above));

    // 2^20 per-aggressor activations put 2^21 pressure on the victim
    // row, far beyond any threshold the lognormal can plausibly draw,
    // so exactly the polarity-matched victims must flip.
    size_t flipped_total = 0;
    for (dram::DataPattern dp :
         {dram::DataPattern::Solid0, dram::DataPattern::Solid1}) {
        dev.writePattern(dp);
        dev.hammer({below, above}, 1ull << 20);
        std::vector<uint64_t> flips = dev.readAndCompare();
        EXPECT_TRUE(std::is_sorted(flips.begin(), flips.end()));
        std::vector<uint64_t> in_row;
        for (uint64_t addr : flips)
            if (g.rowIndexOf(addr) == row)
                in_row.push_back(addr);
        std::vector<uint64_t> want;
        for (const dram::VictimCell &v :
             dev.disturbModel().victimsOfRow(row))
            if (dram::patternBit(dp, g, v.addr, dev.writeCount()) ==
                v.vulnerableValue)
                want.push_back(v.addr);
        EXPECT_EQ(in_row, want);
        flipped_total += in_row.size();
    }
    // Solid0 and Solid1 store opposite bits everywhere, so between
    // them every victim cell of the row was polarity-matched once.
    EXPECT_EQ(flipped_total,
              dev.disturbModel().victimsOfRow(row).size());
}

TEST(DisturbDevice, AggressorRowsNeverFlipThemselves)
{
    dram::DramDevice dev(smallDeviceConfig(3));
    const dram::Geometry &g = dev.geometry();
    uint64_t row = findDoubleSidedVictimRow(dev);
    ASSERT_NE(row, ~0ull);
    uint64_t below = 0, above = 0;
    ASSERT_TRUE(g.neighborRowIndex(row, -1, &below));
    ASSERT_TRUE(g.neighborRowIndex(row, 1, &above));

    // Pick the pattern that stores the first victim's vulnerable value.
    dram::VictimCell v = dev.disturbModel().victimsOfRow(row)[0];
    dram::DataPattern dp = v.vulnerableValue
                               ? dram::DataPattern::Solid1
                               : dram::DataPattern::Solid0;

    dev.writePattern(dp);
    dev.hammer({below, above}, 1ull << 20);
    std::vector<uint64_t> flips = dev.readAndCompare();
    EXPECT_TRUE(std::binary_search(flips.begin(), flips.end(), v.addr));

    // Hammering the victim row itself keeps its cells refreshed: the
    // same probe with the victim included flips nothing in that row.
    dev.writePattern(dp);
    dev.hammer({below, row, above}, 1ull << 20);
    flips = dev.readAndCompare();
    for (uint64_t addr : flips)
        EXPECT_NE(g.rowIndexOf(addr), row);
}

TEST(DisturbDevice, WriteAndRestoreClearActivationCounters)
{
    dram::DramDevice dev(smallDeviceConfig(1));
    dev.writePattern(dram::DataPattern::Checkerboard);
    dev.hammer({5}, 100);
    dev.hammer({5, 6}, 50);
    EXPECT_EQ(dev.rowActivations(5), 150u);
    EXPECT_EQ(dev.rowActivations(6), 50u);
    EXPECT_EQ(dev.rowActivations(7), 0u);

    dev.writePattern(dram::DataPattern::Checkerboard);
    EXPECT_EQ(dev.rowActivations(5), 0u);

    dev.hammer({5}, 100);
    dev.restoreData();
    EXPECT_EQ(dev.rowActivations(5), 0u);

    dev.hammer({5}, 0); // zero-count hammer is a no-op
    EXPECT_EQ(dev.rowActivations(5), 0u);
}

TEST(DisturbDevice, ReferenceReadPathMatchesOptimized)
{
    // Mix retention failures (unrefreshed exposure) with disturbance
    // flips and require the reference scan to agree bit-for-bit.
    dram::DeviceConfig cfg = smallDeviceConfig(5);
    cfg.capacityBits = 1ull << 24;
    dram::DramDevice dev(cfg);
    dev.writePattern(dram::DataPattern::RowStripe);
    dev.disableRefresh();
    dev.wait(2.0);
    dev.enableRefresh();
    std::vector<uint64_t> aggs;
    for (uint64_t row = 1; row + 1 < dev.geometry().totalRows();
         row += 7)
        aggs.push_back(row);
    dev.hammer(aggs, 1ull << 18);

    std::vector<uint64_t> ref = dev.readAndCompareReference();
    const std::vector<uint64_t> &opt = dev.readAndCompareInto();
    EXPECT_EQ(opt, ref);
    EXPECT_TRUE(std::is_sorted(ref.begin(), ref.end()));
    EXPECT_EQ(std::adjacent_find(ref.begin(), ref.end()), ref.end());
}

// ---------------------------------------------------------------------
// Host hammer operation
// ---------------------------------------------------------------------

TEST(DisturbHost, HammerCostsActivationTimeAndReachesEveryChip)
{
    dram::ModuleConfig mc;
    mc.chipCapacityBits = 1ull << 22;
    mc.numChips = 2;
    testbed::HostConfig hc;
    hc.useChamber = false;
    hc.recordTrace = true;
    dram::DramModule module(mc);
    testbed::SoftMcHost host(module, hc);

    host.writeAll(dram::DataPattern::Checkerboard);
    Seconds before = host.now();
    host.hammer({1, 3}, 1000);
    EXPECT_NEAR(host.now() - before, 2000 * hc.activationSeconds,
                1e-12);
    ASSERT_FALSE(host.trace().empty());
    EXPECT_EQ(host.trace().back().kind,
              testbed::CommandKind::Hammer);
    EXPECT_DOUBLE_EQ(host.trace().back().param, 2000.0);
    for (uint32_t c = 0; c < module.numChips(); ++c) {
        EXPECT_EQ(module.chip(c).rowActivations(1), 1000u);
        EXPECT_EQ(module.chip(c).rowActivations(3), 1000u);
    }

    // Empty row lists and zero counts are free no-ops.
    size_t commands = host.trace().size();
    host.hammer({}, 1000);
    host.hammer({1}, 0);
    EXPECT_DOUBLE_EQ(host.now(),
                     before + 2000 * hc.activationSeconds);
    EXPECT_EQ(host.trace().size(), commands);
}

// ---------------------------------------------------------------------
// Pattern builder
// ---------------------------------------------------------------------

TEST(PatternBuilder, AggressorSelection)
{
    dram::Geometry g(1, 128, 64, 64);
    disturb::PatternBuilder double_sided(g, 2);
    EXPECT_EQ(double_sided.aggressorsFor(10),
              (std::vector<uint64_t>{9, 11}));
    EXPECT_EQ(double_sided.aggressorsFor(0),
              (std::vector<uint64_t>{1, 2})); // clamped at the edge
    EXPECT_EQ(double_sided.aggressorsFor(63),
              (std::vector<uint64_t>{61, 62})); // subarray end
    EXPECT_EQ(double_sided.aggressorsFor(64),
              (std::vector<uint64_t>{65, 66})); // subarray start

    disturb::PatternBuilder single(g, 1);
    EXPECT_EQ(single.aggressorsFor(10), (std::vector<uint64_t>{9}));
    EXPECT_EQ(single.aggressorsFor(64), (std::vector<uint64_t>{65}));

    disturb::PatternBuilder four(g, 4);
    EXPECT_EQ(four.aggressorsFor(10),
              (std::vector<uint64_t>{8, 9, 11, 12}));
}

TEST(PatternBuilder, IsolatedRowsAreDropped)
{
    // One-row subarrays isolate every row: nothing is profilable.
    dram::Geometry g(1, 8, 64, 1);
    disturb::PatternBuilder b(g, 2);
    EXPECT_TRUE(b.aggressorsFor(3).empty());
    EXPECT_TRUE(b.waves({0, 1, 2, 3}).empty());
}

TEST(PatternBuilder, WavesAreInterferenceFreeAndOrderIndependent)
{
    dram::Geometry g = dram::Geometry::forCapacityBits(1ull << 22);
    disturb::PatternBuilder b(g, 2);
    std::vector<uint64_t> victims(g.totalRows());
    for (uint64_t r = 0; r < g.totalRows(); ++r)
        victims[r] = r;

    std::vector<std::vector<disturb::HammerPattern>> waves =
        b.waves(victims);
    uint32_t stride = b.independentStride();
    std::set<uint64_t> seen;
    for (const std::vector<disturb::HammerPattern> &wave : waves) {
        std::set<uint64_t> agg_rows;
        for (size_t i = 0; i < wave.size(); ++i) {
            EXPECT_TRUE(seen.insert(wave[i].victim).second);
            // Same-bank victims keep at least the independence stride
            // apart (waves are sorted by victim, so adjacent suffices).
            if (i > 0 &&
                g.bankOfRowIndex(wave[i].victim) ==
                    g.bankOfRowIndex(wave[i - 1].victim))
                EXPECT_GE(g.rowInBank(wave[i].victim) -
                              g.rowInBank(wave[i - 1].victim),
                          stride);
            for (uint64_t agg : wave[i].aggressors) {
                // No aggressor row is shared within a wave (counts
                // would otherwise accumulate across victims), and no
                // aggressor's 2-row blast radius reaches another
                // wave member.
                EXPECT_TRUE(agg_rows.insert(agg).second);
                for (const disturb::HammerPattern &other : wave)
                    if (other.victim != wave[i].victim &&
                        g.bankOfRowIndex(agg) ==
                            g.bankOfRowIndex(other.victim))
                        EXPECT_GT(
                            std::llabs(
                                int64_t{g.rowInBank(agg)} -
                                int64_t{g.rowInBank(other.victim)}),
                            2);
            }
        }
    }
    // Every row has adjacency in this geometry, so all are scheduled.
    EXPECT_EQ(seen.size(), g.totalRows());

    // A shuffled, duplicated input yields the identical schedule.
    std::vector<uint64_t> shuffled = victims;
    std::mt19937 gen(1);
    std::shuffle(shuffled.begin(), shuffled.end(), gen);
    shuffled.push_back(victims[0]);
    shuffled.push_back(victims[7]);
    std::vector<std::vector<disturb::HammerPattern>> again =
        b.waves(shuffled);
    ASSERT_EQ(again.size(), waves.size());
    for (size_t w = 0; w < waves.size(); ++w) {
        ASSERT_EQ(again[w].size(), waves[w].size());
        for (size_t i = 0; i < waves[w].size(); ++i) {
            EXPECT_EQ(again[w][i].victim, waves[w][i].victim);
            EXPECT_EQ(again[w][i].aggressors, waves[w][i].aggressors);
        }
    }
}

// ---------------------------------------------------------------------
// RowHammer profiler
// ---------------------------------------------------------------------

TEST(RowHammerProfiler, RegisteredInFactory)
{
    std::vector<std::string> names = profiling::profilerNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "rowhammer"),
              names.end());
    common::Expected<std::unique_ptr<profiling::Profiler>> p =
        profiling::makeProfiler("rowhammer");
    ASSERT_TRUE(p.hasValue()) << p.error().describe();
    EXPECT_EQ(p.value()->name(), "rowhammer");
}

TEST(RowHammerProfiler, RejectsUnusableSpecs)
{
    dram::ModuleConfig mc;
    mc.chipCapacityBits = 1ull << 22;
    dram::DramModule module(mc);
    testbed::HostConfig hc;
    hc.useChamber = false;
    testbed::SoftMcHost host(module, hc);
    profiling::Conditions target{msToSec(1024.0), 45.0};

    auto expectInvalid = [&](const profiling::ProfilerSpec &spec) {
        std::unique_ptr<profiling::Profiler> prof =
            std::move(profiling::makeProfiler("rowhammer", spec)
                          .value());
        common::Expected<profiling::ProfilingResult> res =
            prof->profile(host, target);
        ASSERT_FALSE(res.hasValue());
        EXPECT_EQ(res.error().category,
                  common::ErrorCategory::InvalidConfig);
    };

    profiling::ProfilerSpec spec;
    spec.hammerSides = 0;
    expectInvalid(spec);

    spec = {};
    spec.hammerCountMin = 0;
    expectInvalid(spec);

    spec = {};
    spec.hammerCountMax = 10;
    spec.hammerCountMin = 20;
    expectInvalid(spec);

    spec = {};
    spec.hammerResolution = 0;
    expectInvalid(spec);

    spec = {};
    spec.hammerPatterns.clear();
    expectInvalid(spec);
}

TEST(RowHammerProfiler, MinCountsMatchModelOracle)
{
    dram::ModuleConfig mc;
    mc.chipCapacityBits = 1ull << 22;
    mc.seed = 9;
    dram::DramModule module(mc);
    testbed::HostConfig hc;
    hc.useChamber = false;
    testbed::SoftMcHost host(module, hc);

    profiling::RowHammerProfiler prof;
    profiling::RowHammerConfig cfg;
    cfg.target = {msToSec(1024.0), 45.0};
    cfg.countMin = 512;
    cfg.countMax = 1ull << 19;
    cfg.resolution = 512;
    profiling::RowHammerRunResult result = prof.run(host, cfg);

    EXPECT_GT(result.probeCycles, 0);
    EXPECT_GT(result.base.runtime, 0.0);
    EXPECT_GT(result.base.profile.size(), 0u);
    EXPECT_DOUBLE_EQ(result.base.profile.conditions().refreshInterval,
                     cfg.target.refreshInterval);

    std::map<uint64_t, uint64_t> found;
    uint64_t prev = 0;
    for (const profiling::RowMinCount &rc : result.vulnerableRows) {
        EXPECT_TRUE(found.empty() || rc.row > prev); // sorted, unique
        prev = rc.row;
        found[rc.row] = rc.minCount;
    }

    // Every row's search outcome must agree with the fault-model
    // oracle: vulnerable exactly when some pattern's minimum count is
    // within the bracket, and the estimate within one resolution step.
    const dram::DramDevice &dev = module.chip(0);
    const dram::Geometry &g = dev.geometry();
    disturb::PatternBuilder builder(g, cfg.sides);
    for (uint64_t row = 0; row < g.totalRows(); ++row) {
        std::vector<uint64_t> aggs = builder.aggressorsFor(row);
        uint64_t oracle = 0;
        for (dram::DataPattern p : cfg.patterns) {
            uint64_t m = dev.disturbModel().minHammerCount(row, aggs, p);
            if (m > 0 && (oracle == 0 || m < oracle))
                oracle = m;
        }
        auto it = found.find(row);
        if (oracle == 0 || oracle > cfg.countMax) {
            EXPECT_EQ(it, found.end()) << "row " << row;
        } else {
            ASSERT_NE(it, found.end()) << "row " << row;
            EXPECT_GE(it->second, oracle) << "row " << row;
            EXPECT_LE(it->second,
                      std::max(oracle, cfg.countMin) + cfg.resolution)
                << "row " << row;
        }
    }

    // The round is a pure function of (module, config).
    dram::DramModule module2(mc);
    testbed::SoftMcHost host2(module2, hc);
    profiling::RowHammerRunResult again = prof.run(host2, cfg);
    ASSERT_EQ(again.vulnerableRows.size(),
              result.vulnerableRows.size());
    for (size_t i = 0; i < again.vulnerableRows.size(); ++i) {
        EXPECT_EQ(again.vulnerableRows[i].row,
                  result.vulnerableRows[i].row);
        EXPECT_EQ(again.vulnerableRows[i].minCount,
                  result.vulnerableRows[i].minCount);
    }
    EXPECT_EQ(again.base.profile.cells(),
              result.base.profile.cells());
    EXPECT_EQ(again.probeCycles, result.probeCycles);
}

TEST(RowHammerProfiler, VictimSubsetAndEarlyStop)
{
    dram::ModuleConfig mc;
    mc.chipCapacityBits = 1ull << 22;
    mc.seed = 9;
    dram::DramModule module(mc);
    testbed::HostConfig hc;
    hc.useChamber = false;
    testbed::SoftMcHost host(module, hc);

    profiling::RowHammerProfiler prof;
    profiling::RowHammerConfig cfg;
    cfg.target = {msToSec(1024.0), 45.0};
    cfg.victimRows = {10, 11, 12, 13};
    profiling::RowHammerRunResult result = prof.run(host, cfg);
    for (const profiling::RowMinCount &rc : result.vulnerableRows) {
        EXPECT_GE(rc.row, 10u);
        EXPECT_LE(rc.row, 13u);
    }

    // An observer returning false after the first wave stops the run.
    dram::DramModule module2(mc);
    testbed::SoftMcHost host2(module2, hc);
    int waves_seen = 0;
    cfg.victimRows.clear();
    cfg.onWave = [&](int, const profiling::RetentionProfile &) {
        ++waves_seen;
        return false;
    };
    prof.run(host2, cfg);
    EXPECT_EQ(waves_seen, 1);
}

// ---------------------------------------------------------------------
// Campaign-level determinism (threads and kill/resume)
// ---------------------------------------------------------------------

std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("reaper_" + name);
    fs::remove_all(dir);
    return dir.string();
}

std::map<std::string, std::string>
dirContents(const std::string &dir)
{
    std::map<std::string, std::string> out;
    for (const auto &entry : fs::directory_iterator(dir)) {
        std::ifstream is(entry.path(), std::ios::binary);
        std::ostringstream ss;
        ss << is.rdbuf();
        out[entry.path().filename().string()] = ss.str();
    }
    return out;
}

campaign::CampaignConfig
hammerCampaign(const std::string &dir, unsigned threads)
{
    campaign::CampaignConfig cfg;
    cfg.dir = dir;
    cfg.name = "disturb-campaign";
    cfg.baseSeed = 11;
    cfg.chips = campaign::makeChipFleet(3, cfg.baseSeed,
                                        1ull << 24 /* 2 MB */,
                                        {2.4, 52.0});
    campaign::RoundSpec round;
    round.profilerName = "rowhammer";
    round.target = {msToSec(1024.0), 45.0};
    round.iterations = 1;
    cfg.rounds = {round};
    cfg.host.useChamber = false;
    cfg.fleet.threads = threads;
    return cfg;
}

TEST(DisturbCampaign, StoresAreBitIdenticalAcrossThreadsAndResume)
{
    campaign::CampaignConfig ref = hammerCampaign(
        scratchDir("disturb_ref"), 1);
    campaign::CampaignStats stats = campaign::runCampaign(ref);
    EXPECT_TRUE(stats.complete());
    auto want = dirContents(ref.dir + "/store");
    ASSERT_GE(want.size(), 4u); // 3 profiles + index

    // Every committed profile holds disturbance flips and loads back.
    campaign::ProfileStore store(ref.dir + "/store");
    EXPECT_EQ(store.size(), 3u);
    for (const campaign::StoreEntry &e : store.entries()) {
        common::Expected<profiling::RetentionProfile> loaded =
            store.load(e.key);
        ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
        EXPECT_GT(loaded.value().size(), 0u);
    }

    for (unsigned threads : {1u, 8u}) {
        // Interrupt at 1 thread for a deterministic kill point; the
        // resume leg runs at the thread count under test.
        campaign::CampaignConfig cfg = hammerCampaign(
            scratchDir("disturb_t" + std::to_string(threads)), 1);
        cfg.interruptAfter = 1;
        campaign::CampaignStats killed = campaign::runCampaign(cfg);
        EXPECT_TRUE(killed.interrupted);

        cfg.interruptAfter = 0;
        cfg.fleet.threads = threads;
        campaign::CampaignStats resumed = campaign::runCampaign(cfg);
        EXPECT_TRUE(resumed.complete());
        EXPECT_EQ(dirContents(cfg.dir + "/store"), want)
            << "store diverged at " << threads << " threads";
    }
}

} // namespace
} // namespace reaper
