#include "dram/retention_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/math_util.h"

namespace reaper {
namespace dram {

namespace {

/** Map a 64-bit hash to a uniform double in [0, 1). */
inline double
toUniform(uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/** Number of static (non-random) pattern classes. */
constexpr int kNumStaticClasses = 10;

} // namespace

RetentionModel::RetentionModel(const RetentionParams &params,
                               Celsius reference_temp)
    : params_(params), refTemp_(reference_temp)
{
    if (params_.tailExponent <= 0)
        panic("RetentionModel: tailExponent must be > 0");
    tailK_ = params_.berAt1024ms / std::pow(1.024, params_.tailExponent);
}

double
RetentionModel::tailCdf(Seconds mu) const
{
    if (mu <= 0)
        return 0.0;
    return std::min(1.0, tailK_ * std::pow(mu, params_.tailExponent));
}

Seconds
RetentionModel::inverseTailCdf(double f) const
{
    if (f <= 0)
        return 0.0;
    return std::pow(f / tailK_, 1.0 / params_.tailExponent);
}

double
RetentionModel::berAt(Seconds t, Celsius temp) const
{
    // F(t * exp((k/p) dT)) = K t^p exp(k dT): Eq. 1 temperature scaling.
    return std::min(1.0,
                    tailCdf(t) *
                        std::exp(params_.tempCoeff * (temp - refTemp_)));
}

double
RetentionModel::equivalentExposureScale(Celsius temp) const
{
    return std::exp(params_.tempCoeff / params_.tailExponent *
                    (temp - refTemp_));
}

double
RetentionModel::sigmaNarrowScale(Celsius temp) const
{
    return std::exp(-params_.sigmaTempNarrow * (temp - refTemp_));
}

double
RetentionModel::dpdFactor(const WeakCell &cell, DataPattern p,
                          uint64_t write_nonce) const
{
    const double span = params_.dpdMaxFactor - 1.0;
    int cls = patternClass(p);
    if (isRandomPattern(p)) {
        // Random content redraws the coupling environment every write;
        // the u^bias shape makes near-worst-case draws common enough
        // that random data dominates coverage over many iterations
        // (Observation 3) without guaranteeing any single draw.
        double u = toUniform(hashCombine(cell.dpdSeed, write_nonce));
        return 1.0 + span * std::pow(u, params_.randomBiasExponent);
    }
    if (cls == cell.worstClass)
        return 1.0;
    // Deterministic per-(cell, pattern-class) factor; non-worst static
    // patterns never reach the worst-case retention.
    double u = toUniform(
        hashCombine(cell.dpdSeed, static_cast<uint64_t>(cls) + 0x1000));
    return 1.0 + span * (0.10 + 0.90 * u);
}

double
RetentionModel::worstCaseDpdFactor(const WeakCell &) const
{
    // By construction the worst-case written content achieves factor 1,
    // either via the cell's worst static class or via a sufficiently
    // adversarial random draw.
    return 1.0;
}

double
RetentionModel::failureProbability(const WeakCell &cell, Seconds t_equiv,
                                   Celsius temp, double factor) const
{
    return failureProbabilityNarrowed(cell, t_equiv,
                                      sigmaNarrowScale(temp), factor);
}

double
RetentionModel::failureProbabilityNarrowed(const WeakCell &cell,
                                           Seconds t_equiv,
                                           double sigma_narrow,
                                           double factor) const
{
    double state_factor = cell.vrtState ? cell.vrtFactor : 1.0;
    double mu_eff = static_cast<double>(cell.mu) * factor * state_factor;
    double sigma = static_cast<double>(cell.mu) * cell.sigmaRel *
                   sigma_narrow;
    if (sigma <= 0)
        return t_equiv >= mu_eff ? 1.0 : 0.0;
    return normalCdf((t_equiv - mu_eff) / sigma);
}

double
RetentionModel::worstCaseFailureProbability(const WeakCell &cell, Seconds t,
                                            Celsius temp) const
{
    return failureProbability(cell, t * equivalentExposureScale(temp), temp,
                              1.0);
}

Seconds
RetentionModel::envelopeMuCap(const TestEnvelope &env) const
{
    // Cover +6 sigma of the typical relative CDF spread. Cells with
    // extreme spreads whose mean lies above the cap contribute < 1% of
    // failures at the envelope edge and are deliberately not sampled to
    // keep the sparse population tractable.
    double mean_rel = std::min(
        std::exp(params_.lnSigmaRel +
                 0.5 * params_.sigmaRelSpread * params_.sigmaRelSpread),
        params_.maxSigmaRel);
    return env.maxInterval * (1.0 + 6.0 * mean_rel) *
           equivalentExposureScale(env.maxTemperature);
}

void
RetentionModel::populateCellStatics(WeakCell &cell, Rng &rng) const
{
    double rel = rng.lognormal(params_.lnSigmaRel, params_.sigmaRelSpread);
    cell.sigmaRel =
        static_cast<float>(std::min(rel, params_.maxSigmaRel));
    cell.dpdSeed = static_cast<uint32_t>(rng());
    if (rng.bernoulli(params_.randomOnlyFraction)) {
        cell.worstClass = kRandomOnlyClass;
    } else {
        cell.worstClass = static_cast<uint8_t>(
            rng.uniformInt(kNumStaticClasses));
    }
    cell.togglesVrt = rng.bernoulli(params_.weakVrtFraction);
    if (cell.togglesVrt) {
        double f = rng.lognormal(params_.weakVrtFactorLn,
                                 params_.weakVrtFactorSpread);
        cell.vrtFactor = static_cast<float>(std::max(f, 1.05));
        cell.vrtState = rng.bernoulli(0.5) ? 1 : 0;
    } else {
        cell.vrtFactor = 1.f;
        cell.vrtState = 0;
    }
    cell.nextToggle = 0.0;
}

std::vector<WeakCell>
RetentionModel::sampleWeakPopulation(uint64_t capacity_bits,
                                     const TestEnvelope &env,
                                     Rng &rng) const
{
    Seconds mu_cap = envelopeMuCap(env);
    double frac = tailCdf(mu_cap);
    double expected = static_cast<double>(capacity_bits) * frac;
    uint64_t count = rng.poisson(expected);

    std::vector<WeakCell> cells;
    cells.reserve(count);
    std::unordered_set<uint64_t> used;
    used.reserve(count * 2);
    double inv_p = 1.0 / params_.tailExponent;
    for (uint64_t i = 0; i < count; ++i) {
        WeakCell c;
        uint64_t addr;
        do {
            addr = rng.uniformInt(capacity_bits);
        } while (!used.insert(addr).second);
        c.addr = addr;
        double u;
        do {
            u = rng.uniform();
        } while (u <= 0.0);
        c.mu = static_cast<float>(mu_cap * std::pow(u, inv_p));
        populateCellStatics(c, rng);
        cells.push_back(c);
    }
    std::sort(cells.begin(), cells.end(),
              [](const WeakCell &a, const WeakCell &b) {
                  return a.mu < b.mu;
              });
    return cells;
}

double
RetentionModel::vrtCumulativeRate(Seconds mu, uint64_t capacity_bits) const
{
    if (mu <= 0)
        return 0.0;
    double per_sec_2gb = params_.vrtRateAt1024ms / 3600.0;
    double scale = static_cast<double>(capacity_bits) / kBitsPer2GB;
    double knee = params_.vrtKnee;
    double shape;
    if (mu <= knee) {
        shape = std::pow(mu / 1.024, params_.vrtExponent);
    } else {
        // The measured power law (Fig. 4) is a local fit over
        // 64 ms..4096 ms; extrapolating t^7.9 indefinitely would imply
        // absurd arrival rates, so the tail saturates to ~t^2.
        shape = std::pow(knee / 1.024, params_.vrtExponent) *
                std::pow(mu / knee, 2.0);
    }
    return per_sec_2gb * scale * shape;
}

Seconds
RetentionModel::sampleVrtMu(Seconds mu_cap, Rng &rng) const
{
    double knee = params_.vrtKnee;
    auto shape = [&](double mu) {
        if (mu <= knee)
            return std::pow(mu / knee, params_.vrtExponent);
        return std::pow(mu / knee, 2.0);
    };
    double s_cap = shape(mu_cap);
    double u;
    do {
        u = rng.uniform();
    } while (u <= 0.0);
    double s = u * s_cap;
    if (s <= 1.0)
        return knee * std::pow(s, 1.0 / params_.vrtExponent);
    return knee * std::sqrt(s);
}

WeakCell
RetentionModel::sampleVrtArrival(Seconds mu_cap, Rng &rng) const
{
    WeakCell c;
    c.mu = static_cast<float>(sampleVrtMu(mu_cap, rng));
    populateCellStatics(c, rng);
    // Arrival lifetime is governed by the arrival process itself; the
    // two-state toggling model does not apply on top of it.
    c.togglesVrt = false;
    c.vrtState = 0;
    c.vrtFactor = 1.f;
    return c;
}

} // namespace dram
} // namespace reaper
