/**
 * @file
 * DRAM device geometry and cell addressing.
 *
 * Cells are identified by a flat bit index within a chip; Geometry decodes
 * a flat index into (bank, row, column, bit) coordinates, mirroring the
 * 2-D array organization of Section 2.1 of the paper.
 *
 * Rows within a bank are further grouped into subarrays (fixed-height
 * tiles sharing local sense amplifiers). Subarray edges matter to the
 * disturbance model: wordline coupling does not reach across the sense
 * amplifier stripe, so a row's disturb neighbors are confined to its own
 * bank AND its own subarray.
 */

#ifndef REAPER_DRAM_GEOMETRY_H
#define REAPER_DRAM_GEOMETRY_H

#include <cstdint>

namespace reaper {
namespace dram {

/** Decoded coordinates of a single DRAM cell. */
struct CellCoord
{
    uint32_t bank = 0;
    uint32_t row = 0;
    uint32_t col = 0;  ///< column (byte) within the row
    uint32_t bit = 0;  ///< bit within the column byte

    bool
    operator==(const CellCoord &o) const
    {
        return bank == o.bank && row == o.row && col == o.col &&
               bit == o.bit;
    }
};

/**
 * Physical organization of one DRAM chip: banks x rows x rowBytes bytes.
 * Capacity in bits is banks * rows * rowBytes * 8.
 */
class Geometry
{
  public:
    /**
     * @param banks number of banks (LPDDR4: 8)
     * @param rows rows per bank
     * @param row_bytes bytes per row (LPDDR4: 2 KiB row buffer)
     * @param rows_per_subarray subarray tile height (clamped to rows)
     */
    Geometry(uint32_t banks, uint32_t rows, uint32_t row_bytes,
             uint32_t rows_per_subarray = kDefaultRowsPerSubarray);

    /** Build a geometry for a chip of the given capacity in bits. */
    static Geometry forCapacityBits(uint64_t capacity_bits);

    /** Default subarray tile height (rows sharing sense amplifiers). */
    static constexpr uint32_t kDefaultRowsPerSubarray = 512;

    uint32_t banks() const { return banks_; }
    uint32_t rowsPerBank() const { return rows_; }
    uint32_t rowBytes() const { return rowBytes_; }
    uint64_t rowBits() const { return uint64_t{rowBytes_} * 8; }
    uint64_t capacityBits() const { return capacityBits_; }
    uint64_t totalRows() const { return uint64_t{banks_} * rows_; }
    uint32_t rowsPerSubarray() const { return rowsPerSubarray_; }

    /** Decode a flat bit index into cell coordinates. */
    CellCoord decode(uint64_t flat_bit) const;

    /** Encode cell coordinates back into a flat bit index. */
    uint64_t encode(const CellCoord &c) const;

    /** Flat index of the row containing a flat bit (bank-major). */
    uint64_t rowIndexOf(uint64_t flat_bit) const;

    /** Bank that a flat (bank-major) row index belongs to. */
    uint32_t bankOfRowIndex(uint64_t row_flat) const;

    /** In-bank row number of a flat row index. */
    uint32_t rowInBank(uint64_t row_flat) const;

    /** Flat row index of (bank, in-bank row). */
    uint64_t rowIndex(uint32_t bank, uint32_t row) const;

    /** Subarray number (within its bank) of an in-bank row. */
    uint32_t subarrayOf(uint32_t row) const;

    /** First flat bit of a flat row. */
    uint64_t rowStartBit(uint64_t row_flat) const;

    /**
     * Physically adjacent row at signed `offset` wordlines from
     * `row_flat`, for the disturbance model. Adjacency never crosses a
     * bank boundary or a subarray boundary (the sense-amplifier stripe
     * isolates wordline coupling); rows 0 and rows-1 of each subarray
     * have no neighbors beyond the edge.
     *
     * @return whether a neighbor exists (out untouched otherwise)
     */
    bool neighborRowIndex(uint64_t row_flat, int offset,
                          uint64_t *out) const;

  private:
    uint32_t banks_;
    uint32_t rows_;
    uint32_t rowBytes_;
    uint32_t rowsPerSubarray_;
    uint64_t capacityBits_;
};

} // namespace dram
} // namespace reaper

#endif // REAPER_DRAM_GEOMETRY_H
