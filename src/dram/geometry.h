/**
 * @file
 * DRAM device geometry and cell addressing.
 *
 * Cells are identified by a flat bit index within a chip; Geometry decodes
 * a flat index into (bank, row, column, bit) coordinates, mirroring the
 * 2-D array organization of Section 2.1 of the paper.
 */

#ifndef REAPER_DRAM_GEOMETRY_H
#define REAPER_DRAM_GEOMETRY_H

#include <cstdint>

namespace reaper {
namespace dram {

/** Decoded coordinates of a single DRAM cell. */
struct CellCoord
{
    uint32_t bank = 0;
    uint32_t row = 0;
    uint32_t col = 0;  ///< column (byte) within the row
    uint32_t bit = 0;  ///< bit within the column byte

    bool
    operator==(const CellCoord &o) const
    {
        return bank == o.bank && row == o.row && col == o.col &&
               bit == o.bit;
    }
};

/**
 * Physical organization of one DRAM chip: banks x rows x rowBytes bytes.
 * Capacity in bits is banks * rows * rowBytes * 8.
 */
class Geometry
{
  public:
    /**
     * @param banks number of banks (LPDDR4: 8)
     * @param rows rows per bank
     * @param row_bytes bytes per row (LPDDR4: 2 KiB row buffer)
     */
    Geometry(uint32_t banks, uint32_t rows, uint32_t row_bytes);

    /** Build a geometry for a chip of the given capacity in bits. */
    static Geometry forCapacityBits(uint64_t capacity_bits);

    uint32_t banks() const { return banks_; }
    uint32_t rowsPerBank() const { return rows_; }
    uint32_t rowBytes() const { return rowBytes_; }
    uint64_t rowBits() const { return uint64_t{rowBytes_} * 8; }
    uint64_t capacityBits() const { return capacityBits_; }
    uint64_t totalRows() const { return uint64_t{banks_} * rows_; }

    /** Decode a flat bit index into cell coordinates. */
    CellCoord decode(uint64_t flat_bit) const;

    /** Encode cell coordinates back into a flat bit index. */
    uint64_t encode(const CellCoord &c) const;

    /** Flat index of the row containing a flat bit (bank-major). */
    uint64_t rowIndexOf(uint64_t flat_bit) const;

  private:
    uint32_t banks_;
    uint32_t rows_;
    uint32_t rowBytes_;
    uint64_t capacityBits_;
};

} // namespace dram
} // namespace reaper

#endif // REAPER_DRAM_GEOMETRY_H
