/**
 * @file
 * Per-vendor retention model parameters.
 *
 * The paper characterizes LPDDR4 chips from three anonymized vendors
 * (A, B, C) and reports vendor-specific temperature coefficients (Eq. 1)
 * and VRT failure-accumulation fits (Fig. 4). The constants here are
 * calibrated to the quantitative anchors the paper publishes:
 *
 *  - failure rate scales as exp(k dT) with k = 0.22/0.20/0.26 per degC
 *    for vendors A/B/C (Eq. 1), i.e. roughly 10x per 10 degC;
 *  - a 2 GB device at tREFI = 1024 ms, 45 degC shows ~2464 failures
 *    (Section 6.2.3, vendor B reference);
 *  - the VRT new-failure accumulation rate is ~0.73 cells/hour at
 *    1024 ms and ~1 cell / 20 s at 2048 ms (Fig. 3, Section 6.2.3),
 *    fixing the power-law exponent near 7.9 (Fig. 4);
 *  - per-cell failure-CDF spreads are lognormal with most mass below
 *    200 ms at the characterized conditions (Fig. 6b);
 *  - profiling +250 ms above target yields > 99% coverage at < 50%
 *    false-positive rate (Section 6.1.2), fixing the retention-tail
 *    power-law exponent near 2.8.
 */

#ifndef REAPER_DRAM_VENDOR_MODEL_H
#define REAPER_DRAM_VENDOR_MODEL_H

#include <string>

#include "common/units.h"

namespace reaper {
namespace dram {

/** Anonymized DRAM vendor, as in the paper. */
enum class Vendor { A = 0, B = 1, C = 2 };

constexpr int kNumVendors = 3;

std::string toString(Vendor v);

/** Reference temperature at which model parameters are expressed. */
constexpr Celsius kReferenceTemp = 45.0;

/** Bits in the 2 GB reference device used for per-chip calibration. */
constexpr double kBitsPer2GB = 2.0 * 1024.0 * 1024.0 * 1024.0 * 8.0;

/**
 * All statistical parameters of one vendor's retention behaviour.
 * See RetentionModel for how each parameter enters the model.
 */
struct RetentionParams
{
    /** Tail CDF of retention means at 1024 ms, 45 degC (per bit). */
    double berAt1024ms = 1.434e-7;
    /** Power-law exponent of the retention-time tail CDF. */
    double tailExponent = 2.8;
    /** Failure-rate temperature coefficient k (Eq. 1), per degC. */
    double tempCoeff = 0.20;

    /** Per-cell CDF spread: sigma = mu * LogNormal(lnSigmaRel, spread). */
    double lnSigmaRel = -3.0; // exp(-3.0) ~ 0.05 relative spread
    double sigmaRelSpread = 0.5;
    double maxSigmaRel = 0.20;
    /** Additional CDF narrowing per degC above reference (Fig. 7). */
    double sigmaTempNarrow = 0.012;

    /** Largest DPD retention multiplier for a non-worst-case pattern. */
    double dpdMaxFactor = 1.35;
    /** Fraction of cells whose worst-case pattern is not a static one. */
    double randomOnlyFraction = 0.10;
    /** Bias of the random pattern toward low factors: 1+(max-1)*u^bias. */
    double randomBiasExponent = 2.0;

    /** VRT arrival rate at 1024 ms, 45 degC, per 2 GB, per hour. */
    double vrtRateAt1024ms = 0.73;
    /** VRT accumulation power-law exponent (Fig. 4). */
    double vrtExponent = 7.9;
    /** Interval beyond which the VRT power law saturates to ~t^2. */
    Seconds vrtKnee = 2.2;
    /** Mean active dwell of a VRT arrival before it retreats (hours). */
    double vrtDwellMeanHours = 3.0;

    /** Fraction of weak cells that toggle between two retention states. */
    double weakVrtFraction = 0.02;
    /** Toggle retention multiplier: LogNormal(ln, spread), >= 1. */
    double weakVrtFactorLn = 0.45; // exp(0.45) ~ 1.57
    double weakVrtFactorSpread = 0.25;
    /** Mean dwell in each state for toggling weak cells (hours). */
    double weakVrtDwellMeanHours = 6.0;
};

/** Calibrated parameters for each vendor. */
RetentionParams vendorParams(Vendor v);

/**
 * Statistical parameters of one vendor's row-disturbance (RowHammer)
 * behaviour. The numbers follow the published characterization shape:
 * per-cell minimum hammer counts (HCfirst) are lognormal around a
 * vendor median in the tens of thousands of activations, with a hard
 * floor below which no cell flips; coupling to the distance-2 wordline
 * is roughly an order of magnitude weaker than to the adjacent one; and
 * a victim's worst-case data pattern lowers its threshold (true-cell /
 * anti-cell polarity plus aggressor-row data dependence).
 */
struct DisturbParams
{
    /** Median per-cell minimum hammer count (distance-1 activations). */
    double hcFirstMedian = 65536.0;
    /** Lognormal spread (sigma of ln HCfirst) across victim cells. */
    double hcFirstSpread = 0.30;
    /** No cell flips below this activation count (distribution floor). */
    double hcFirstFloor = 8192.0;
    /** Poisson mean of disturb-vulnerable bits per row. */
    double victimsPerRowMean = 0.25;
    /** Coupling of the distance-2 wordline relative to distance-1. */
    double couplingDist2 = 0.15;
    /** Threshold multiplier when the stored pattern is the victim's
     *  worst case (must be in (0, 1]). */
    double patternAdvantage = 0.65;
};

/** Calibrated disturbance parameters for each vendor. */
DisturbParams vendorDisturbParams(Vendor v);

} // namespace dram
} // namespace reaper

#endif // REAPER_DRAM_VENDOR_MODEL_H
