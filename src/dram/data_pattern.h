/**
 * @file
 * Retention-test data patterns (Section 3.2 of the paper): solids,
 * checkerboards, row/column stripes, walking 1s/0s, random data, and
 * their inverses.
 */

#ifndef REAPER_DRAM_DATA_PATTERN_H
#define REAPER_DRAM_DATA_PATTERN_H

#include <cstdint>
#include <string>
#include <vector>

#include "dram/geometry.h"

namespace reaper {
namespace dram {

/** The data-pattern classes used for retention testing. */
enum class DataPattern : uint8_t
{
    Solid0 = 0,
    Solid1,
    Checkerboard,
    CheckerboardInv,
    RowStripe,
    RowStripeInv,
    ColStripe,
    ColStripeInv,
    Walk0,
    Walk1,
    Random,
    RandomInv,
};

/** Number of distinct pattern classes. */
constexpr int kNumDataPatterns = 12;

/** Human-readable pattern name. */
std::string toString(DataPattern p);

/** True for Random / RandomInv, whose content changes every write. */
bool isRandomPattern(DataPattern p);

/** The inverse pattern of p (Solid0 <-> Solid1, etc.). */
DataPattern inverseOf(DataPattern p);

/**
 * The DPD "class" index of a pattern: a pattern and its inverse stress
 * different cells, so each of the 12 patterns is its own class except
 * that Random/RandomInv share class behaviour (fresh draw per write).
 */
int patternClass(DataPattern p);

/**
 * The standard test set: six base patterns and their inverses
 * (Section 5.3: "six data patterns and their inverses").
 */
const std::vector<DataPattern> &allDataPatterns();

/** The six base patterns without inverses (Section 7.3.1 overhead model). */
const std::vector<DataPattern> &basePatterns();

/**
 * The logical bit value the pattern stores at a cell. For Random
 * patterns the value is a deterministic function of (nonce, flat_bit) so
 * a written pattern can be re-derived at read time.
 */
bool patternBit(DataPattern p, const Geometry &g, uint64_t flat_bit,
                uint64_t nonce);

} // namespace dram
} // namespace reaper

#endif // REAPER_DRAM_DATA_PATTERN_H
