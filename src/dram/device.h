/**
 * @file
 * Functional model of a single DRAM chip for retention testing.
 *
 * The device exposes exactly the host-visible operations a SoftMC-style
 * testing platform provides (write a data pattern, enable/disable
 * refresh, let time pass, read back and compare), plus an oracle
 * interface used ONLY by the evaluation harness to compute ground-truth
 * failing sets for coverage / false-positive metrics. Profilers must not
 * touch the oracle; the testbed::SoftMcHost wrapper enforces that
 * separation.
 *
 * Time is virtual: wait() advances a simulated clock, so a "6-day"
 * characterization (Fig. 3) completes in seconds of wall-clock time.
 *
 * Failure semantics: per (write, cell) the device derives a latent
 * failure time tau = mu_eff + sigma * z from a deterministic hash, where
 * z is standard normal. A cell's stored bit is lost once the accumulated
 * unrefreshed exposure (scaled to the reference temperature) reaches
 * tau. This makes repeated reads consistent and failure monotone in
 * exposure, while the marginal failure probability at exposure t is
 * exactly the paper's per-cell normal CDF (Fig. 6a).
 */

#ifndef REAPER_DRAM_DEVICE_H
#define REAPER_DRAM_DEVICE_H

#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "dram/data_pattern.h"
#include "dram/disturb_model.h"
#include "dram/geometry.h"
#include "dram/retention_model.h"
#include "dram/vendor_model.h"

namespace reaper {
namespace dram {

/** Construction parameters of one simulated chip. */
struct DeviceConfig
{
    /** Chip capacity in bits (default: 2 GB = 16 Gib reference chip). */
    uint64_t capacityBits = 16ull * 1024 * 1024 * 1024;
    Vendor vendor = Vendor::B;
    uint64_t seed = 1;
    /** Conditions the chip must support being tested at. */
    TestEnvelope envelope{};
    /** Initial DRAM temperature. */
    Celsius initialTemp = kReferenceTemp;
    /**
     * Optional parameter override; when set, used instead of
     * vendorParams(vendor) (for chip-to-chip variation).
     */
    bool hasParamOverride = false;
    RetentionParams paramOverride{};
    /**
     * Optional disturbance-parameter override; when set, used instead
     * of vendorDisturbParams(vendor).
     */
    bool hasDisturbOverride = false;
    DisturbParams disturbOverride{};
};

/** One DRAM chip with a sparse stochastic weak-cell population. */
class DramDevice
{
  public:
    explicit DramDevice(const DeviceConfig &config);

    // ---- Host-visible operations (the SoftMC surface) ----

    /** Set the chip temperature (thermal chamber control). */
    void setTemperature(Celsius temp);
    Celsius temperature() const { return temp_; }

    /** Write the whole chip with a data pattern (restores all cells). */
    void writePattern(DataPattern p);

    /**
     * Restore the currently stored data in every cell (the effect of an
     * ECC scrub pass that reads, corrects, and writes back): unrefreshed
     * exposure resets while the stored data pattern stays the same, and
     * the stochastic per-cell failure draw is refreshed for the next
     * exposure window.
     */
    void restoreData();

    void disableRefresh();
    void enableRefresh();
    bool refreshEnabled() const { return refreshEnabled_; }

    /** Advance virtual time by dt seconds. */
    void wait(Seconds dt);

    /**
     * Activate every flat (bank-major) row in `rows` `count` times
     * each, accumulating row-disturbance pressure on their neighbors
     * (see DisturbModel). Counters persist until the stored data is
     * rewritten — writePattern() and restoreData() reset them, refresh
     * does not (a refresh restores charge lost to leakage, but the
     * model folds disturbance into the per-write window to stay
     * deterministic under the host's coarse time stepping). An
     * activated row's own cells are held refreshed by the activations,
     * so aggressor rows never observe disturb flips themselves.
     */
    void hammer(const std::vector<uint64_t> &rows, uint64_t count);

    /**
     * Read the whole chip and compare against the last written pattern.
     * @return flat bit addresses whose stored value was lost (sorted).
     */
    std::vector<uint64_t> readAndCompare();

    /**
     * Allocation-free variant of readAndCompare(): fills and returns a
     * reusable internal scratch buffer. The reference stays valid until
     * the next readAndCompare/readAndCompareInto call on this device.
     * This is the hot path of every characterization round; prefer it
     * in loops (DramModule uses it internally).
     */
    const std::vector<uint64_t> &readAndCompareInto();

    /** Current virtual time in seconds since construction. */
    Seconds now() const { return now_; }

    /** Unrefreshed exposure since the last write, in equivalent seconds
     *  at the reference temperature. */
    Seconds exposureEquivalent() const { return exposureEquiv_; }

    // ---- Oracle interface (evaluation harness only) ----

    const RetentionModel &model() const { return model_; }
    const Geometry &geometry() const { return geometry_; }
    const DeviceConfig &config() const { return config_; }

    /** The disturbance fault model (oracle for tests and benches). */
    const DisturbModel &disturbModel() const { return disturb_; }

    /** Accumulated activations of a flat row since the last write. */
    uint64_t rowActivations(uint64_t row_flat) const;

    /**
     * Ground truth: addresses of all cells whose worst-case-pattern
     * failure probability at (t_refi, temp) is at least pmin, including
     * currently active VRT arrivals. This is "the set of all possible
     * failing cells at the target conditions" of Section 1.
     */
    std::vector<uint64_t> trueFailingSet(Seconds t_refi, Celsius temp,
                                         double pmin = 0.05) const;

    /**
     * Allocation-free variant of trueFailingSet(): fills and returns a
     * reusable internal scratch buffer (invalidated by the next
     * trueFailingSet/trueFailingSetInto call).
     */
    const std::vector<uint64_t> &trueFailingSetInto(
        Seconds t_refi, Celsius temp, double pmin = 0.05) const;

    /**
     * Reference implementation of readAndCompare(): a straight port of
     * the original unoptimized read path (per-cell candidate scan over
     * the AoS weak-cell vector, no structure-of-arrays index, no
     * scratch reuse, no memoized temperature scales). Exists solely so
     * tests can pin the optimized path to it bit-for-bit; not for
     * production use.
     */
    std::vector<uint64_t> readAndCompareReference() const;

    /** Reference implementation of trueFailingSet() (see above). */
    std::vector<uint64_t> trueFailingSetReference(
        Seconds t_refi, Celsius temp, double pmin = 0.05) const;

    /** Expected BER at (t, temp) from the closed-form model. */
    double expectedBer(Seconds t, Celsius temp) const;

    size_t weakCellCount() const { return weak_.size(); }
    size_t activeVrtCount() const { return vrtActive_.size(); }
    uint64_t writeCount() const { return writeNonce_; }
    DataPattern lastPattern() const { return pattern_; }

  private:
    struct VrtActive
    {
        WeakCell cell;
        double expiry; ///< absolute time at which the cell retreats
    };

    /** Advance VRT arrival/expiry and weak-cell toggling to now_. */
    void evolveDynamics(Seconds from, Seconds to);

    /** Latent failure exposure (equivalent s) of a cell for this write. */
    double latentFailureTime(const WeakCell &cell) const;

    /** Append failing addresses from a candidate cell if exposed. */
    void collectIfFailed(const WeakCell &cell,
                         std::vector<uint64_t> &out) const;

    /**
     * Append addresses flipped by accumulated row disturbance. Shared
     * by the optimized and reference read paths so they stay
     * bit-identical.
     */
    void collectDisturbFlips(std::vector<uint64_t> &out) const;

    /** Refresh the memoized temperature-dependent scale factors. */
    void updateTempCaches();

    /** Index of the first weak cell with mu above the candidate bound
     *  for an equivalent exposure t_equiv (SoA upper_bound). */
    size_t candidateEnd(double t_equiv) const;

    DeviceConfig config_;
    RetentionModel model_;
    Geometry geometry_;
    DisturbModel disturb_;
    Rng rng_;

    /**
     * Activation counters of hammered rows since the last write,
     * keyed by flat row. Ordered so flip collection iterates in a
     * deterministic row order regardless of hammer call order.
     */
    std::map<uint64_t, uint64_t> rowActs_;
    mutable std::vector<VictimCell> victimScratch_;

    std::vector<WeakCell> weak_; ///< sorted by mu
    /**
     * Structure-of-arrays mirror of weak_ for the candidate scan:
     * weakMu_[i] == (double)weak_[i].mu (for the cache-friendly
     * upper_bound) and weakReject_[i] == mu - 5 * mu * sigmaRel (the
     * 5-sigma fast-reject threshold), both precomputed with exactly the
     * arithmetic the per-cell scan used, so results are bit-identical.
     */
    std::vector<double> weakMu_;
    std::vector<double> weakReject_;
    /** Reusable result buffers (see readAndCompareInto). */
    std::vector<uint64_t> readScratch_;
    /** Candidate indices surviving the batched fast-reject sweep. */
    std::vector<uint32_t> candScratch_;
    mutable std::vector<uint64_t> oracleScratch_;
    std::vector<VrtActive> vrtActive_;
    /** Toggle-event queue: (time, index into weak_), min-heap. */
    using ToggleEvent = std::pair<double, uint32_t>;
    std::priority_queue<ToggleEvent, std::vector<ToggleEvent>,
                        std::greater<ToggleEvent>>
        toggleQueue_;

    Seconds muCapVrt_;   ///< envelope cap for VRT arrival mus
    double vrtRate_;     ///< total arrival rate (cells/s) within the cap

    // Memoized Arrhenius factors: recomputed only when temp_ changes
    // (setTemperature) instead of per wait()/per cell.
    double expScaleCur_ = 1.0;    ///< equivalentExposureScale(temp_)
    double sigmaNarrowCur_ = 1.0; ///< sigmaNarrowScale(temp_)
    double maxEquivExposure_ = 0; ///< envelope cap on equivalent exposure

    Seconds now_ = 0.0;
    Celsius temp_;
    bool refreshEnabled_ = true;
    bool dataValid_ = false;
    Seconds exposureEquiv_ = 0.0;
    DataPattern pattern_ = DataPattern::Solid0;
    uint64_t writeNonce_ = 0;    ///< identifies the written content
    uint64_t exposureNonce_ = 0; ///< identifies the exposure window
};

} // namespace dram
} // namespace reaper

#endif // REAPER_DRAM_DEVICE_H
