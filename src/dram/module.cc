#include "dram/module.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace reaper {
namespace dram {

DramModule::DramModule(const ModuleConfig &config) : config_(config)
{
    if (config.numChips == 0)
        panic("DramModule: numChips must be > 0");
    Rng seeder(config.seed);
    for (uint32_t i = 0; i < config.numChips; ++i) {
        DeviceConfig dc;
        dc.capacityBits = config.chipCapacityBits;
        dc.vendor = config.vendor;
        dc.seed = seeder();
        dc.envelope = config.envelope;
        dc.initialTemp = config.initialTemp;
        if (config.hasParamOverride || config.chipVariation > 0 ||
            config.vrtRateScale != 1.0) {
            RetentionParams p = config.hasParamOverride
                                    ? config.paramOverride
                                    : vendorParams(config.vendor);
            if (config.chipVariation > 0) {
                p.berAt1024ms *=
                    seeder.lognormal(0.0, config.chipVariation);
                p.vrtRateAt1024ms *=
                    seeder.lognormal(0.0, 2.0 * config.chipVariation);
            }
            p.vrtRateAt1024ms *= config.vrtRateScale;
            dc.hasParamOverride = true;
            dc.paramOverride = p;
        }
        chips_.push_back(std::make_unique<DramDevice>(dc));
    }
}

void
DramModule::setTemperature(Celsius temp)
{
    for (auto &c : chips_)
        c->setTemperature(temp);
}

void
DramModule::writePattern(DataPattern p)
{
    for (auto &c : chips_)
        c->writePattern(p);
}

void
DramModule::restoreData()
{
    for (auto &c : chips_)
        c->restoreData();
}

void
DramModule::disableRefresh()
{
    for (auto &c : chips_)
        c->disableRefresh();
}

void
DramModule::enableRefresh()
{
    for (auto &c : chips_)
        c->enableRefresh();
}

void
DramModule::wait(Seconds dt)
{
    for (auto &c : chips_)
        c->wait(dt);
}

void
DramModule::hammer(const std::vector<uint64_t> &rows, uint64_t count)
{
    for (auto &c : chips_)
        c->hammer(rows, count);
}

std::vector<ChipFailure>
DramModule::readAndCompare()
{
    std::vector<ChipFailure> out;
    for (uint32_t i = 0; i < numChips(); ++i) {
        // The per-chip scratch buffer avoids a vector allocation per
        // chip per round on the characterization hot path.
        for (uint64_t addr : chips_[i]->readAndCompareInto())
            out.push_back({i, addr});
    }
    return out; // per-chip results are sorted; chips visited in order
}

std::vector<ChipFailure>
DramModule::trueFailingSet(Seconds t_refi, Celsius temp, double pmin) const
{
    std::vector<ChipFailure> out;
    for (uint32_t i = 0; i < numChips(); ++i) {
        for (uint64_t addr :
             chips_[i]->trueFailingSetInto(t_refi, temp, pmin))
            out.push_back({i, addr});
    }
    return out;
}

Seconds
DramModule::now() const
{
    return chips_.empty() ? 0.0 : chips_.front()->now();
}

} // namespace dram
} // namespace reaper
