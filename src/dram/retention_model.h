/**
 * @file
 * Statistical retention model of one DRAM chip.
 *
 * The model encodes the paper's experimental observations:
 *
 *  - aggregate retention-time tail: the fraction of cells whose retention
 *    mean is below t follows a power law F(t) = K * t^p at the reference
 *    temperature (Fig. 2's polynomially growing BER);
 *  - temperature: failure rates scale as exp(k dT) (Eq. 1), which in
 *    retention-time space shifts every cell's mean by exp(-(k/p) dT);
 *  - per-cell failure CDF: each cell fails with probability
 *    Phi((t - mu_eff) / sigma_eff) at exposure time t (Fig. 6a), with the
 *    relative spread sigma/mu lognormally distributed (Fig. 6b) and
 *    narrowing at higher temperature (Fig. 7);
 *  - data-pattern dependence: a cell's effective retention mean is its
 *    worst-case mean times a pattern-class factor >= 1; the factor for
 *    random data is redrawn on every write (Section 5.4).
 */

#ifndef REAPER_DRAM_RETENTION_MODEL_H
#define REAPER_DRAM_RETENTION_MODEL_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "dram/data_pattern.h"
#include "dram/vendor_model.h"

namespace reaper {
namespace dram {

/**
 * One cell of the sparse weak-cell population. All static parameters are
 * expressed at the reference temperature and for the cell's worst-case
 * data pattern; dynamic VRT-toggle state lives alongside.
 */
struct WeakCell
{
    uint64_t addr = 0;      ///< flat bit index within the chip
    float mu = 0.f;         ///< retention mean (s) at reference conditions
    float sigmaRel = 0.f;   ///< sigma / mu at reference conditions
    uint32_t dpdSeed = 0;   ///< per-cell deterministic DPD stream
    uint8_t worstClass = 0; ///< pattern class with factor 1.0;
                            ///< kNumDataPatterns means "random-only"
    bool togglesVrt = false; ///< weak-cell two-state VRT toggler
    uint8_t vrtState = 0;    ///< 0 = low-retention state, 1 = high
    float vrtFactor = 1.f;   ///< retention multiplier of the high state
    double nextToggle = 0.0; ///< absolute time (s) of the next toggle
};

/** Marker class index for cells whose worst pattern is not static. */
constexpr uint8_t kRandomOnlyClass = kNumDataPatterns;

/**
 * Conditions the device must be prepared to be tested at. The weak-cell
 * population is sampled once, for the envelope; querying beyond it would
 * under-count failures, so the device rejects such requests.
 */
struct TestEnvelope
{
    Seconds maxInterval = 4.2;   ///< longest refresh interval tested
    Celsius maxTemperature = 58; ///< hottest test temperature
};

/** Closed-form statistical machinery shared by device and oracle. */
class RetentionModel
{
  public:
    RetentionModel(const RetentionParams &params,
                   Celsius reference_temp = kReferenceTemp);

    const RetentionParams &params() const { return params_; }
    Celsius referenceTemp() const { return refTemp_; }

    /** Tail CDF of retention means at the reference temperature. */
    double tailCdf(Seconds mu) const;

    /** Inverse of tailCdf. */
    Seconds inverseTailCdf(double f) const;

    /** Expected bit error rate at exposure t and temperature temp. */
    double berAt(Seconds t, Celsius temp) const;

    /**
     * Multiplier applied to a wall-clock exposure to express it at the
     * reference temperature: exp((k/p) dT). Exposing a cell for t at
     * temp is equivalent to t * equivalentExposureScale(temp) at the
     * reference temperature.
     */
    double equivalentExposureScale(Celsius temp) const;

    /** Extra CDF narrowing factor at temp (Fig. 7), <= 1 above ref. */
    double sigmaNarrowScale(Celsius temp) const;

    /**
     * DPD retention multiplier of a cell for one written pattern.
     * @param cell the cell
     * @param p the written data pattern
     * @param write_nonce unique id of the write (random patterns redraw)
     */
    double dpdFactor(const WeakCell &cell, DataPattern p,
                     uint64_t write_nonce) const;

    /** The smallest factor any single written pattern can achieve. */
    double worstCaseDpdFactor(const WeakCell &cell) const;

    /**
     * Probability that a cell loses its data when exposed without
     * refresh for equivalent time t_equiv (already scaled to reference
     * temperature) under retention multiplier `factor`, with CDF
     * narrowing for the physical temperature.
     */
    double failureProbability(const WeakCell &cell, Seconds t_equiv,
                              Celsius temp, double factor) const;

    /**
     * failureProbability with the temperature's CDF-narrowing factor
     * precomputed by the caller (sigma_narrow = sigmaNarrowScale(temp)).
     * Lets a scan over many cells at one temperature hoist the Arrhenius
     * exponential out of the per-cell loop; numerically identical to
     * failureProbability.
     */
    double failureProbabilityNarrowed(const WeakCell &cell,
                                      Seconds t_equiv,
                                      double sigma_narrow,
                                      double factor) const;

    /** Convenience: worst-case-pattern failure probability at (t, temp). */
    double worstCaseFailureProbability(const WeakCell &cell, Seconds t,
                                       Celsius temp) const;

    /**
     * Sample the weak-cell population of a chip with capacity_bits cells
     * for the given test envelope. Cells are returned sorted by mu.
     */
    std::vector<WeakCell> sampleWeakPopulation(uint64_t capacity_bits,
                                               const TestEnvelope &env,
                                               Rng &rng) const;

    /** Largest reference-temp retention mean covered by the envelope. */
    Seconds envelopeMuCap(const TestEnvelope &env) const;

    /**
     * VRT arrival-rate integral: arrivals per second (per chip of
     * capacity_bits) of newly low-retention cells with retention mean
     * (at reference temperature) at or below mu.
     */
    double vrtCumulativeRate(Seconds mu, uint64_t capacity_bits) const;

    /** Inverse of vrtCumulativeRate's mu-dependence for sampling. */
    Seconds sampleVrtMu(Seconds mu_cap, Rng &rng) const;

    /** Sample one arrival's full cell parameters (addr left to caller). */
    WeakCell sampleVrtArrival(Seconds mu_cap, Rng &rng) const;

    /** Fill in sigmaRel/DPD/toggle fields of a freshly sampled cell. */
    void populateCellStatics(WeakCell &cell, Rng &rng) const;

  private:
    RetentionParams params_;
    Celsius refTemp_;
    double tailK_; ///< K in F(t) = K t^p, derived from berAt1024ms
};

} // namespace dram
} // namespace reaper

#endif // REAPER_DRAM_RETENTION_MODEL_H
