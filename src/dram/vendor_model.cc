#include "dram/vendor_model.h"

#include "common/logging.h"

namespace reaper {
namespace dram {

std::string
toString(Vendor v)
{
    switch (v) {
      case Vendor::A: return "A";
      case Vendor::B: return "B";
      case Vendor::C: return "C";
    }
    return "?";
}

RetentionParams
vendorParams(Vendor v)
{
    RetentionParams p; // defaults are vendor B (the paper's representative)
    switch (v) {
      case Vendor::A:
        p.berAt1024ms = 1.15e-7;
        p.tailExponent = 2.7;
        p.tempCoeff = 0.22;
        p.vrtRateAt1024ms = 0.55;
        p.vrtExponent = 7.5;
        p.dpdMaxFactor = 1.30;
        break;
      case Vendor::B:
        p.berAt1024ms = 1.434e-7;
        p.tailExponent = 2.8;
        p.tempCoeff = 0.20;
        p.vrtRateAt1024ms = 0.73;
        p.vrtExponent = 7.9;
        p.dpdMaxFactor = 1.35;
        break;
      case Vendor::C:
        p.berAt1024ms = 1.80e-7;
        p.tailExponent = 2.9;
        p.tempCoeff = 0.26;
        p.vrtRateAt1024ms = 1.05;
        p.vrtExponent = 8.3;
        p.dpdMaxFactor = 1.40;
        break;
    }
    return p;
}

DisturbParams
vendorDisturbParams(Vendor v)
{
    DisturbParams p; // defaults are vendor B
    switch (v) {
      case Vendor::A:
        p.hcFirstMedian = 88000.0;
        p.hcFirstSpread = 0.25;
        p.victimsPerRowMean = 0.18;
        p.couplingDist2 = 0.12;
        break;
      case Vendor::B:
        p.hcFirstMedian = 65536.0;
        p.hcFirstSpread = 0.30;
        p.victimsPerRowMean = 0.25;
        p.couplingDist2 = 0.15;
        break;
      case Vendor::C:
        p.hcFirstMedian = 48000.0;
        p.hcFirstSpread = 0.35;
        p.victimsPerRowMean = 0.35;
        p.couplingDist2 = 0.20;
        break;
    }
    return p;
}

} // namespace dram
} // namespace reaper
