/**
 * @file
 * A DRAM module: several chips operated in lockstep, with chip-to-chip
 * parameter variation around the vendor's nominal model (the paper
 * emphasizes that reliable operation requires per-chip characterization,
 * Section 6.3).
 */

#ifndef REAPER_DRAM_MODULE_H
#define REAPER_DRAM_MODULE_H

#include <memory>
#include <vector>

#include "dram/device.h"

namespace reaper {
namespace dram {

/** A failing cell identified by chip index and flat bit address. */
struct ChipFailure
{
    uint32_t chip = 0;
    uint64_t addr = 0;

    bool
    operator==(const ChipFailure &o) const
    {
        return chip == o.chip && addr == o.addr;
    }
    bool
    operator<(const ChipFailure &o) const
    {
        return chip != o.chip ? chip < o.chip : addr < o.addr;
    }
};

/** Construction parameters of a module. */
struct ModuleConfig
{
    uint32_t numChips = 1;
    uint64_t chipCapacityBits = 16ull * 1024 * 1024 * 1024; // 2 GB
    Vendor vendor = Vendor::B;
    uint64_t seed = 1;
    TestEnvelope envelope{};
    Celsius initialTemp = kReferenceTemp;
    /**
     * Relative lognormal spread of per-chip BER and VRT-rate parameters
     * around the vendor nominal (0 disables variation).
     */
    double chipVariation = 0.15;
    /**
     * Multiplier on the VRT arrival rate (1 = vendor nominal). Setting
     * 0 disables VRT arrivals entirely - used by characterization
     * benches as a control population to isolate the VRT contribution,
     * and by the VRT ablation study.
     */
    double vrtRateScale = 1.0;
    /**
     * Full parameter override (applied before chip variation and the
     * VRT scale). Used by ablation studies to perturb single model
     * parameters; normal use derives parameters from `vendor`.
     */
    bool hasParamOverride = false;
    RetentionParams paramOverride{};
};

/** N chips tested in lockstep, as on a real DIMM/package. */
class DramModule
{
  public:
    explicit DramModule(const ModuleConfig &config);

    uint32_t numChips() const { return static_cast<uint32_t>(chips_.size()); }
    DramDevice &chip(uint32_t i) { return *chips_.at(i); }
    const DramDevice &chip(uint32_t i) const { return *chips_.at(i); }

    uint64_t
    capacityBits() const
    {
        return config_.chipCapacityBits * numChips();
    }
    const ModuleConfig &config() const { return config_; }

    // Broadcast host operations across all chips.
    void setTemperature(Celsius temp);
    void writePattern(DataPattern p);
    /** Restore stored data in every chip (ECC-scrub write-back). */
    void restoreData();
    void disableRefresh();
    void enableRefresh();
    void wait(Seconds dt);
    /** Hammer the given flat rows `count` times each, on every chip
     *  (chips operate in lockstep, sharing the command bus). */
    void hammer(const std::vector<uint64_t> &rows, uint64_t count);

    /** Read and compare every chip; results sorted by (chip, addr). */
    std::vector<ChipFailure> readAndCompare();

    /** Ground-truth failing set across all chips. */
    std::vector<ChipFailure> trueFailingSet(Seconds t_refi, Celsius temp,
                                            double pmin = 0.05) const;

    /** Virtual time (identical across chips). */
    Seconds now() const;

  private:
    ModuleConfig config_;
    std::vector<std::unique_ptr<DramDevice>> chips_;
};

} // namespace dram
} // namespace reaper

#endif // REAPER_DRAM_MODULE_H
