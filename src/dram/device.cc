#include "dram/device.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "simd/words.h"

namespace reaper {
namespace dram {

namespace {

inline double
toUniform(uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

DramDevice::DramDevice(const DeviceConfig &config)
    : config_(config),
      model_(config.hasParamOverride ? config.paramOverride
                                     : vendorParams(config.vendor)),
      geometry_(Geometry::forCapacityBits(config.capacityBits)),
      disturb_(config.hasDisturbOverride
                   ? config.disturbOverride
                   : vendorDisturbParams(config.vendor),
               geometry_, config.seed),
      rng_(config.seed),
      temp_(config.initialTemp)
{
    weak_ = model_.sampleWeakPopulation(config.capacityBits,
                                        config.envelope, rng_);
    for (uint32_t i = 0; i < weak_.size(); ++i) {
        if (weak_[i].togglesVrt) {
            double dwell = model_.params().weakVrtDwellMeanHours * 3600.0;
            weak_[i].nextToggle = rng_.exponentialMean(dwell);
            toggleQueue_.emplace(weak_[i].nextToggle, i);
        }
    }
    muCapVrt_ = model_.envelopeMuCap(config.envelope);
    vrtRate_ = model_.vrtCumulativeRate(muCapVrt_, config.capacityBits);

    // SoA candidate index: same double arithmetic as the per-cell scan
    // it replaces (see collectIfFailed), so scan results are identical.
    weakMu_.reserve(weak_.size());
    weakReject_.reserve(weak_.size());
    for (const WeakCell &c : weak_) {
        double mu = static_cast<double>(c.mu);
        double sigma = mu * static_cast<double>(c.sigmaRel);
        weakMu_.push_back(mu);
        weakReject_.push_back(mu - 5.0 * sigma);
    }

    maxEquivExposure_ = config_.envelope.maxInterval *
                        model_.equivalentExposureScale(
                            config_.envelope.maxTemperature);
    updateTempCaches();
}

void
DramDevice::updateTempCaches()
{
    expScaleCur_ = model_.equivalentExposureScale(temp_);
    sigmaNarrowCur_ = model_.sigmaNarrowScale(temp_);
}

void
DramDevice::setTemperature(Celsius temp)
{
    temp_ = temp;
    if (temp > config_.envelope.maxTemperature + 1e-9) {
        fatal("DramDevice: temperature %.1f exceeds test envelope max "
              "%.1f; construct the device with a wider envelope",
              temp, config_.envelope.maxTemperature);
    }
    updateTempCaches();
}

void
DramDevice::writePattern(DataPattern p)
{
    pattern_ = p;
    ++writeNonce_;
    ++exposureNonce_;
    dataValid_ = true;
    exposureEquiv_ = 0.0;
    rowActs_.clear(); // rewriting restores disturbed charge everywhere
}

void
DramDevice::restoreData()
{
    if (!dataValid_) {
        warn("DramDevice::restoreData before any write; nothing to "
             "restore");
        return;
    }
    // Same stored content (same writeNonce_, so DPD factors persist),
    // fresh charge and a fresh stochastic draw for the next window.
    ++exposureNonce_;
    exposureEquiv_ = 0.0;
    rowActs_.clear(); // the scrub write-back restores disturbed charge
}

void
DramDevice::hammer(const std::vector<uint64_t> &rows, uint64_t count)
{
    if (count == 0)
        return;
    for (uint64_t row : rows) {
        if (row >= geometry_.totalRows())
            panic("DramDevice::hammer: row %llu out of range (%llu "
                  "rows)",
                  static_cast<unsigned long long>(row),
                  static_cast<unsigned long long>(geometry_.totalRows()));
        rowActs_[row] += count;
    }
}

uint64_t
DramDevice::rowActivations(uint64_t row_flat) const
{
    auto it = rowActs_.find(row_flat);
    return it == rowActs_.end() ? 0 : it->second;
}

void
DramDevice::collectDisturbFlips(std::vector<uint64_t> &out) const
{
    if (rowActs_.empty() || !dataValid_)
        return;
    // Coupling-weighted pressure per victim row, accumulated in sorted
    // aggressor order (std::map) so floating-point sums are identical
    // regardless of the order hammer() calls named the rows.
    std::map<uint64_t, double> pressure;
    for (const auto &[row, acts] : rowActs_) {
        for (int off : {-2, -1, 1, 2}) {
            uint64_t victim;
            if (!geometry_.neighborRowIndex(row, off, &victim))
                continue;
            pressure[victim] +=
                static_cast<double>(acts) *
                disturb_.coupling(static_cast<uint32_t>(
                    off < 0 ? -off : off));
        }
    }
    int cls = patternClass(pattern_);
    for (const auto &[vrow, p] : pressure) {
        // An activated row's own cells are refreshed by the
        // activations; aggressors never flip.
        if (rowActs_.find(vrow) != rowActs_.end())
            continue;
        disturb_.victimsOfRowInto(vrow, victimScratch_);
        for (const VictimCell &v : victimScratch_) {
            if (p < disturb_.effectiveThreshold(v, cls))
                continue;
            if (patternBit(pattern_, geometry_, v.addr, writeNonce_) !=
                v.vulnerableValue)
                continue; // stored discharged: nothing to lose
            out.push_back(v.addr);
        }
    }
}

void
DramDevice::disableRefresh()
{
    refreshEnabled_ = false;
}

void
DramDevice::enableRefresh()
{
    refreshEnabled_ = true;
}

void
DramDevice::wait(Seconds dt)
{
    if (dt < 0)
        panic("DramDevice::wait: negative dt %g", dt);
    evolveDynamics(now_, now_ + dt);
    if (!refreshEnabled_ && dataValid_) {
        exposureEquiv_ += dt * expScaleCur_;
        if (exposureEquiv_ > maxEquivExposure_ * 1.0001) {
            fatal("DramDevice: unrefreshed exposure %.3fs (equivalent) "
                  "exceeds the test envelope (%.3fs); construct the "
                  "device with a wider envelope",
                  exposureEquiv_, maxEquivExposure_);
        }
    }
    now_ += dt;
}

void
DramDevice::evolveDynamics(Seconds from, Seconds to)
{
    // Weak-cell two-state VRT toggling.
    double dwell = model_.params().weakVrtDwellMeanHours * 3600.0;
    while (!toggleQueue_.empty() && toggleQueue_.top().first <= to) {
        auto [when, idx] = toggleQueue_.top();
        toggleQueue_.pop();
        weak_[idx].vrtState ^= 1;
        double next = when + rng_.exponentialMean(dwell);
        weak_[idx].nextToggle = next;
        toggleQueue_.emplace(next, idx);
    }

    // Expire VRT arrivals that retreated during the window.
    std::erase_if(vrtActive_, [to](const VrtActive &a) {
        return a.expiry <= to;
    });

    // New VRT arrivals (Poisson in time).
    double window = to - from;
    if (window <= 0 || vrtRate_ <= 0)
        return;
    uint64_t n = rng_.poisson(vrtRate_ * window);
    double arr_dwell = model_.params().vrtDwellMeanHours * 3600.0;
    for (uint64_t i = 0; i < n; ++i) {
        VrtActive a;
        a.cell = model_.sampleVrtArrival(muCapVrt_, rng_);
        a.cell.addr = rng_.uniformInt(config_.capacityBits);
        double arrive = from + rng_.uniform() * window;
        a.expiry = arrive + rng_.exponentialMean(arr_dwell);
        if (a.expiry > to)
            vrtActive_.push_back(a);
    }
}

double
DramDevice::latentFailureTime(const WeakCell &cell) const
{
    double factor = model_.dpdFactor(cell, pattern_, writeNonce_);
    double state_factor = cell.vrtState ? cell.vrtFactor : 1.0;
    double mu_eff = static_cast<double>(cell.mu) * factor * state_factor;
    double sigma = static_cast<double>(cell.mu) * cell.sigmaRel *
                   sigmaNarrowCur_;
    double u = toUniform(hashCombine(
        hashCombine(cell.dpdSeed, exposureNonce_ * 0x9E3779B97F4A7C15ull),
        cell.addr));
    u = clampTo(u, 1e-12, 1.0 - 1e-12);
    return mu_eff + sigma * normalQuantile(u);
}

void
DramDevice::collectIfFailed(const WeakCell &cell,
                            std::vector<uint64_t> &out) const
{
    // Fast reject: even at the worst-case factor (1.0), a cell more than
    // ~5 sigma above the exposure cannot have failed.
    double sigma = static_cast<double>(cell.mu) * cell.sigmaRel;
    if (static_cast<double>(cell.mu) - 5.0 * sigma > exposureEquiv_)
        return;
    if (exposureEquiv_ >= latentFailureTime(cell))
        out.push_back(cell.addr);
}

size_t
DramDevice::candidateEnd(double t_equiv) const
{
    // Candidate window: mu <= exposure / (1 - 5 * maxSigmaRel), clamped
    // to "everything" if the spread cap makes the bound meaningless.
    double max_rel = model_.params().maxSigmaRel;
    double denom = 1.0 - 5.0 * max_rel;
    if (denom <= 0.05)
        return weakMu_.size();
    double mu_bound = t_equiv / denom;
    return static_cast<size_t>(
        std::upper_bound(weakMu_.begin(), weakMu_.end(), mu_bound) -
        weakMu_.begin());
}

const std::vector<uint64_t> &
DramDevice::readAndCompareInto()
{
    readScratch_.clear();
    if (!dataValid_) {
        warn("DramDevice::readAndCompare before any write; no reference "
             "data to compare against");
        return readScratch_;
    }
    if (exposureEquiv_ <= 0 && rowActs_.empty())
        return readScratch_;

    if (exposureEquiv_ > 0) {
        // Batched SoA fast reject: the dispatched kernel sweeps the
        // flat reject array in 64-byte chunks (AVX2 compare + movemask,
        // scalar under REAPER_SIMD=scalar) and emits only the candidate
        // indices; survivors then take the exact per-cell stochastic
        // path. The predicate is the same `!(reject > exposure)` branch
        // the scalar loop used, so output stays bit-identical to
        // readAndCompareReference().
        size_t end = candidateEnd(exposureEquiv_);
        candScratch_.clear();
        simd::scanNotGreater(weakReject_.data(), end, exposureEquiv_,
                             candScratch_);
        for (uint32_t i : candScratch_) {
            const WeakCell &cell = weak_[i];
            if (exposureEquiv_ >= latentFailureTime(cell))
                readScratch_.push_back(cell.addr);
        }
        for (const auto &a : vrtActive_)
            collectIfFailed(a.cell, readScratch_);
    }
    collectDisturbFlips(readScratch_);

    std::sort(readScratch_.begin(), readScratch_.end());
    readScratch_.erase(
        std::unique(readScratch_.begin(), readScratch_.end()),
        readScratch_.end());
    return readScratch_;
}

std::vector<uint64_t>
DramDevice::readAndCompare()
{
    return readAndCompareInto();
}

const std::vector<uint64_t> &
DramDevice::trueFailingSetInto(Seconds t_refi, Celsius temp,
                               double pmin) const
{
    oracleScratch_.clear();
    double t_equiv = t_refi * model_.equivalentExposureScale(temp);
    double narrow = model_.sigmaNarrowScale(temp);

    size_t end = candidateEnd(t_equiv);
    for (size_t i = 0; i < end; ++i) {
        const WeakCell &cell = weak_[i];
        if (model_.failureProbabilityNarrowed(cell, t_equiv, narrow,
                                              1.0) >= pmin)
            oracleScratch_.push_back(cell.addr);
    }
    for (const auto &a : vrtActive_) {
        if (model_.failureProbabilityNarrowed(a.cell, t_equiv, narrow,
                                              1.0) >= pmin)
            oracleScratch_.push_back(a.cell.addr);
    }

    std::sort(oracleScratch_.begin(), oracleScratch_.end());
    oracleScratch_.erase(
        std::unique(oracleScratch_.begin(), oracleScratch_.end()),
        oracleScratch_.end());
    return oracleScratch_;
}

std::vector<uint64_t>
DramDevice::trueFailingSet(Seconds t_refi, Celsius temp, double pmin) const
{
    return trueFailingSetInto(t_refi, temp, pmin);
}

std::vector<uint64_t>
DramDevice::readAndCompareReference() const
{
    std::vector<uint64_t> out;
    if (!dataValid_ || (exposureEquiv_ <= 0 && rowActs_.empty()))
        return out;

    if (exposureEquiv_ > 0) {
        double max_rel = model_.params().maxSigmaRel;
        double denom = 1.0 - 5.0 * max_rel;
        double mu_bound = denom > 0.05
                              ? exposureEquiv_ / denom
                              : std::numeric_limits<double>::infinity();

        auto end = std::upper_bound(
            weak_.begin(), weak_.end(), mu_bound,
            [](double bound, const WeakCell &c) {
                return bound < static_cast<double>(c.mu);
            });
        for (auto it = weak_.begin(); it != end; ++it)
            collectIfFailed(*it, out);
        for (const auto &a : vrtActive_)
            collectIfFailed(a.cell, out);
    }
    collectDisturbFlips(out);

    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::vector<uint64_t>
DramDevice::trueFailingSetReference(Seconds t_refi, Celsius temp,
                                    double pmin) const
{
    std::vector<uint64_t> out;
    double t_equiv = t_refi * model_.equivalentExposureScale(temp);
    double max_rel = model_.params().maxSigmaRel;
    double denom = 1.0 - 5.0 * max_rel;
    double mu_bound = denom > 0.05
                          ? t_equiv / denom
                          : std::numeric_limits<double>::infinity();

    auto consider = [&](const WeakCell &c) {
        if (model_.failureProbability(c, t_equiv, temp, 1.0) >= pmin)
            out.push_back(c.addr);
    };
    auto end = std::upper_bound(
        weak_.begin(), weak_.end(), mu_bound,
        [](double bound, const WeakCell &c) {
            return bound < static_cast<double>(c.mu);
        });
    for (auto it = weak_.begin(); it != end; ++it)
        consider(*it);
    for (const auto &a : vrtActive_)
        consider(a.cell);

    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

double
DramDevice::expectedBer(Seconds t, Celsius temp) const
{
    return model_.berAt(t, temp);
}

} // namespace dram
} // namespace reaper
