#include "dram/geometry.h"

#include "common/logging.h"

namespace reaper {
namespace dram {

Geometry::Geometry(uint32_t banks, uint32_t rows, uint32_t row_bytes)
    : banks_(banks), rows_(rows), rowBytes_(row_bytes)
{
    if (banks == 0 || rows == 0 || row_bytes == 0)
        panic("Geometry: all dimensions must be nonzero (%u, %u, %u)",
              banks, rows, row_bytes);
    capacityBits_ = uint64_t{banks_} * rows_ * rowBytes_ * 8;
}

Geometry
Geometry::forCapacityBits(uint64_t capacity_bits)
{
    // LPDDR4 organization: 8 banks, 2 KiB rows; scale row count.
    constexpr uint32_t banks = 8;
    constexpr uint32_t row_bytes = 2048;
    uint64_t row_bits = uint64_t{row_bytes} * 8;
    uint64_t rows = capacity_bits / (banks * row_bits);
    if (rows == 0 || rows * banks * row_bits != capacity_bits)
        panic("Geometry::forCapacityBits: capacity %llu is not a multiple "
              "of %llu bits (8 banks x 2KiB rows)",
              static_cast<unsigned long long>(capacity_bits),
              static_cast<unsigned long long>(banks * row_bits));
    if (rows > 0xFFFFFFFFull)
        panic("Geometry::forCapacityBits: too many rows");
    return Geometry(banks, static_cast<uint32_t>(rows), row_bytes);
}

CellCoord
Geometry::decode(uint64_t flat_bit) const
{
    if (flat_bit >= capacityBits_)
        panic("Geometry::decode: flat bit %llu out of range",
              static_cast<unsigned long long>(flat_bit));
    CellCoord c;
    uint64_t row_bits = rowBits();
    uint64_t bit_in_row = flat_bit % row_bits;
    uint64_t row_flat = flat_bit / row_bits;
    c.bit = static_cast<uint32_t>(bit_in_row % 8);
    c.col = static_cast<uint32_t>(bit_in_row / 8);
    c.row = static_cast<uint32_t>(row_flat % rows_);
    c.bank = static_cast<uint32_t>(row_flat / rows_);
    return c;
}

uint64_t
Geometry::encode(const CellCoord &c) const
{
    uint64_t row_flat = uint64_t{c.bank} * rows_ + c.row;
    return row_flat * rowBits() + uint64_t{c.col} * 8 + c.bit;
}

uint64_t
Geometry::rowIndexOf(uint64_t flat_bit) const
{
    return flat_bit / rowBits();
}

} // namespace dram
} // namespace reaper
