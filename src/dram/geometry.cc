#include "dram/geometry.h"

#include "common/logging.h"

namespace reaper {
namespace dram {

Geometry::Geometry(uint32_t banks, uint32_t rows, uint32_t row_bytes,
                   uint32_t rows_per_subarray)
    : banks_(banks),
      rows_(rows),
      rowBytes_(row_bytes),
      rowsPerSubarray_(rows_per_subarray)
{
    if (banks == 0 || rows == 0 || row_bytes == 0)
        panic("Geometry: all dimensions must be nonzero (%u, %u, %u)",
              banks, rows, row_bytes);
    if (rows_per_subarray == 0)
        panic("Geometry: rowsPerSubarray must be nonzero");
    if (rowsPerSubarray_ > rows_)
        rowsPerSubarray_ = rows_; // one subarray spans the whole bank
    capacityBits_ = uint64_t{banks_} * rows_ * rowBytes_ * 8;
}

Geometry
Geometry::forCapacityBits(uint64_t capacity_bits)
{
    // LPDDR4 organization: 8 banks, 2 KiB rows; scale row count.
    constexpr uint32_t banks = 8;
    constexpr uint32_t row_bytes = 2048;
    uint64_t row_bits = uint64_t{row_bytes} * 8;
    uint64_t rows = capacity_bits / (banks * row_bits);
    if (rows == 0 || rows * banks * row_bits != capacity_bits)
        panic("Geometry::forCapacityBits: capacity %llu is not a multiple "
              "of %llu bits (8 banks x 2KiB rows)",
              static_cast<unsigned long long>(capacity_bits),
              static_cast<unsigned long long>(banks * row_bits));
    if (rows > 0xFFFFFFFFull)
        panic("Geometry::forCapacityBits: too many rows");
    return Geometry(banks, static_cast<uint32_t>(rows), row_bytes);
}

CellCoord
Geometry::decode(uint64_t flat_bit) const
{
    if (flat_bit >= capacityBits_)
        panic("Geometry::decode: flat bit %llu out of range",
              static_cast<unsigned long long>(flat_bit));
    CellCoord c;
    uint64_t row_bits = rowBits();
    uint64_t bit_in_row = flat_bit % row_bits;
    uint64_t row_flat = flat_bit / row_bits;
    c.bit = static_cast<uint32_t>(bit_in_row % 8);
    c.col = static_cast<uint32_t>(bit_in_row / 8);
    c.row = static_cast<uint32_t>(row_flat % rows_);
    c.bank = static_cast<uint32_t>(row_flat / rows_);
    return c;
}

uint64_t
Geometry::encode(const CellCoord &c) const
{
    uint64_t row_flat = uint64_t{c.bank} * rows_ + c.row;
    return row_flat * rowBits() + uint64_t{c.col} * 8 + c.bit;
}

uint64_t
Geometry::rowIndexOf(uint64_t flat_bit) const
{
    return flat_bit / rowBits();
}

uint32_t
Geometry::bankOfRowIndex(uint64_t row_flat) const
{
    if (row_flat >= totalRows())
        panic("Geometry::bankOfRowIndex: row %llu out of range",
              static_cast<unsigned long long>(row_flat));
    return static_cast<uint32_t>(row_flat / rows_);
}

uint32_t
Geometry::rowInBank(uint64_t row_flat) const
{
    if (row_flat >= totalRows())
        panic("Geometry::rowInBank: row %llu out of range",
              static_cast<unsigned long long>(row_flat));
    return static_cast<uint32_t>(row_flat % rows_);
}

uint64_t
Geometry::rowIndex(uint32_t bank, uint32_t row) const
{
    if (bank >= banks_ || row >= rows_)
        panic("Geometry::rowIndex: (%u, %u) out of range", bank, row);
    return uint64_t{bank} * rows_ + row;
}

uint32_t
Geometry::subarrayOf(uint32_t row) const
{
    if (row >= rows_)
        panic("Geometry::subarrayOf: row %u out of range", row);
    return row / rowsPerSubarray_;
}

uint64_t
Geometry::rowStartBit(uint64_t row_flat) const
{
    if (row_flat >= totalRows())
        panic("Geometry::rowStartBit: row %llu out of range",
              static_cast<unsigned long long>(row_flat));
    return row_flat * rowBits();
}

bool
Geometry::neighborRowIndex(uint64_t row_flat, int offset,
                           uint64_t *out) const
{
    if (row_flat >= totalRows())
        panic("Geometry::neighborRowIndex: row %llu out of range",
              static_cast<unsigned long long>(row_flat));
    uint32_t row = static_cast<uint32_t>(row_flat % rows_);
    int64_t neighbor = int64_t{row} + offset;
    if (neighbor < 0 || neighbor >= int64_t{rows_})
        return false; // clamped at the bank edge
    uint32_t nrow = static_cast<uint32_t>(neighbor);
    if (subarrayOf(nrow) != subarrayOf(row))
        return false; // coupling stops at the sense-amplifier stripe
    if (out)
        *out = row_flat - row + nrow; // same bank by construction
    return true;
}

} // namespace dram
} // namespace reaper
