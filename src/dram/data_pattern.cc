#include "dram/data_pattern.h"

#include "common/logging.h"
#include "common/rng.h"

namespace reaper {
namespace dram {

std::string
toString(DataPattern p)
{
    switch (p) {
      case DataPattern::Solid0: return "solid0";
      case DataPattern::Solid1: return "solid1";
      case DataPattern::Checkerboard: return "checker";
      case DataPattern::CheckerboardInv: return "checker_inv";
      case DataPattern::RowStripe: return "rowstripe";
      case DataPattern::RowStripeInv: return "rowstripe_inv";
      case DataPattern::ColStripe: return "colstripe";
      case DataPattern::ColStripeInv: return "colstripe_inv";
      case DataPattern::Walk0: return "walk0";
      case DataPattern::Walk1: return "walk1";
      case DataPattern::Random: return "random";
      case DataPattern::RandomInv: return "random_inv";
    }
    return "unknown";
}

bool
isRandomPattern(DataPattern p)
{
    return p == DataPattern::Random || p == DataPattern::RandomInv;
}

DataPattern
inverseOf(DataPattern p)
{
    switch (p) {
      case DataPattern::Solid0: return DataPattern::Solid1;
      case DataPattern::Solid1: return DataPattern::Solid0;
      case DataPattern::Checkerboard: return DataPattern::CheckerboardInv;
      case DataPattern::CheckerboardInv: return DataPattern::Checkerboard;
      case DataPattern::RowStripe: return DataPattern::RowStripeInv;
      case DataPattern::RowStripeInv: return DataPattern::RowStripe;
      case DataPattern::ColStripe: return DataPattern::ColStripeInv;
      case DataPattern::ColStripeInv: return DataPattern::ColStripe;
      case DataPattern::Walk0: return DataPattern::Walk1;
      case DataPattern::Walk1: return DataPattern::Walk0;
      case DataPattern::Random: return DataPattern::RandomInv;
      case DataPattern::RandomInv: return DataPattern::Random;
    }
    panic("inverseOf: bad pattern");
}

int
patternClass(DataPattern p)
{
    if (isRandomPattern(p))
        return static_cast<int>(DataPattern::Random);
    return static_cast<int>(p);
}

const std::vector<DataPattern> &
allDataPatterns()
{
    static const std::vector<DataPattern> all = {
        DataPattern::Solid0,       DataPattern::Solid1,
        DataPattern::Checkerboard, DataPattern::CheckerboardInv,
        DataPattern::RowStripe,    DataPattern::RowStripeInv,
        DataPattern::ColStripe,    DataPattern::ColStripeInv,
        DataPattern::Walk0,        DataPattern::Walk1,
        DataPattern::Random,       DataPattern::RandomInv,
    };
    return all;
}

const std::vector<DataPattern> &
basePatterns()
{
    static const std::vector<DataPattern> base = {
        DataPattern::Solid0,    DataPattern::Checkerboard,
        DataPattern::RowStripe, DataPattern::ColStripe,
        DataPattern::Walk0,     DataPattern::Random,
    };
    return base;
}

bool
patternBit(DataPattern p, const Geometry &g, uint64_t flat_bit,
           uint64_t nonce)
{
    CellCoord c = g.decode(flat_bit);
    switch (p) {
      case DataPattern::Solid0:
        return false;
      case DataPattern::Solid1:
        return true;
      case DataPattern::Checkerboard:
        return ((c.row + c.col) & 1) != 0;
      case DataPattern::CheckerboardInv:
        return ((c.row + c.col) & 1) == 0;
      case DataPattern::RowStripe:
        return (c.row & 1) != 0;
      case DataPattern::RowStripeInv:
        return (c.row & 1) == 0;
      case DataPattern::ColStripe:
        return (c.col & 1) != 0;
      case DataPattern::ColStripeInv:
        return (c.col & 1) == 0;
      case DataPattern::Walk0:
        // A walking 0 through a background of 1s: one 0 per byte,
        // position advancing with the column index.
        return (c.bit != (c.col & 7));
      case DataPattern::Walk1:
        return (c.bit == (c.col & 7));
      case DataPattern::Random:
        return (hashCombine(nonce, flat_bit) & 1) != 0;
      case DataPattern::RandomInv:
        return (hashCombine(nonce, flat_bit) & 1) == 0;
    }
    panic("patternBit: bad pattern");
}

} // namespace dram
} // namespace reaper
