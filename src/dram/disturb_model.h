/**
 * @file
 * Row-disturbance (RowHammer) fault model.
 *
 * Repeatedly activating a DRAM row electrically disturbs the cells of
 * physically adjacent rows; a cell whose accumulated disturbance
 * "pressure" exceeds its per-cell minimum hammer count (HCfirst) loses
 * its stored value. The model is deterministic: each row's vulnerable
 * cells, their thresholds, their charged-state polarity, and the data
 * pattern that stresses them worst are a pure function of (seed, row),
 * so repeated probes of the same chip observe the same flips — the same
 * reproducibility contract the retention model keeps.
 *
 * Disturbance pressure on a victim row is the coupling-weighted sum of
 * neighbor-row activation counts:
 *
 *     pressure(v) = sum over d in {+-1, +-2} of acts(v + d) * c(|d|)
 *
 * with c(1) = 1 and c(2) = DisturbParams::couplingDist2, and adjacency
 * resolved by Geometry::neighborRowIndex (never across a bank or a
 * subarray boundary). A vulnerable cell flips when pressure reaches its
 * effective threshold AND the stored bit equals the cell's chargeable
 * polarity (a discharged cell has nothing to lose); the threshold drops
 * by DisturbParams::patternAdvantage when the stored pattern class is
 * the cell's worst case (DPD, Section 3.2 analog for disturbance).
 */

#ifndef REAPER_DRAM_DISTURB_MODEL_H
#define REAPER_DRAM_DISTURB_MODEL_H

#include <cstdint>
#include <vector>

#include "dram/data_pattern.h"
#include "dram/geometry.h"
#include "dram/vendor_model.h"

namespace reaper {
namespace dram {

/** One disturb-vulnerable cell of a victim row. */
struct VictimCell
{
    uint64_t addr = 0;        ///< flat bit address within the chip
    double threshold = 0.0;   ///< HCfirst in distance-1 activations
    bool vulnerableValue = 1; ///< stored value that can be lost
    uint8_t favoredClass = 0; ///< pattern class that lowers threshold
};

/** Deterministic per-chip disturbance fault model. */
class DisturbModel
{
  public:
    DisturbModel(const DisturbParams &params, const Geometry &geometry,
                 uint64_t seed);

    const DisturbParams &params() const { return params_; }

    /**
     * The vulnerable cells of one flat (bank-major) row, sorted by
     * address. Pure function of (seed, row): regenerating is cheap
     * (rows average well under one victim), so nothing is cached.
     */
    std::vector<VictimCell> victimsOfRow(uint64_t row_flat) const;

    /** Allocation-free variant of victimsOfRow (clears out first). */
    void victimsOfRowInto(uint64_t row_flat,
                          std::vector<VictimCell> &out) const;

    /** Coupling weight at neighbor distance 1 or 2 (0 otherwise). */
    double coupling(uint32_t distance) const;

    /**
     * Effective threshold of a victim under a stored pattern class:
     * the worst-case class gets the patternAdvantage discount.
     */
    double effectiveThreshold(const VictimCell &v,
                              int pattern_class) const;

    /**
     * Coupling-weighted pressure one activation of every row in
     * `aggressors` exerts on `victim_row` (aggressors that are not
     * valid distance-1/2 neighbors contribute nothing).
     */
    double pressureRate(uint64_t victim_row,
                        const std::vector<uint64_t> &aggressors) const;

    /**
     * Oracle: the minimum per-aggressor hammer count at which hammering
     * `aggressors` flips any cell of `victim_row` while the chip stores
     * pattern `p` (written with `nonce`). Only cells whose stored bit
     * equals their vulnerable polarity can flip. 0 when no count can
     * flip the row (no flippable cells, or no aggressor couples in).
     * Used by tests and benches to validate profiler search results.
     */
    uint64_t minHammerCount(uint64_t victim_row,
                            const std::vector<uint64_t> &aggressors,
                            DataPattern p, uint64_t nonce = 0) const;

  private:
    DisturbParams params_;
    Geometry geometry_;
    uint64_t seed_;
};

} // namespace dram
} // namespace reaper

#endif // REAPER_DRAM_DISTURB_MODEL_H
