#include "dram/disturb_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace reaper {
namespace dram {

namespace {

/** Salt separating per-row victim streams from every other consumer of
 *  the chip seed (retention sampling, VRT arrivals, ...). */
constexpr uint64_t kVictimStreamSalt = 0xD157B0'F11B5ull;

} // namespace

DisturbModel::DisturbModel(const DisturbParams &params,
                           const Geometry &geometry, uint64_t seed)
    : params_(params), geometry_(geometry), seed_(seed)
{
    if (params_.hcFirstMedian <= 0 || params_.hcFirstFloor < 0)
        panic("DisturbModel: hammer-count parameters must be positive");
    if (params_.patternAdvantage <= 0 || params_.patternAdvantage > 1.0)
        panic("DisturbModel: patternAdvantage must be in (0, 1]");
    if (params_.couplingDist2 < 0 || params_.couplingDist2 > 1.0)
        panic("DisturbModel: couplingDist2 must be in [0, 1]");
}

void
DisturbModel::victimsOfRowInto(uint64_t row_flat,
                               std::vector<VictimCell> &out) const
{
    out.clear();
    if (row_flat >= geometry_.totalRows())
        panic("DisturbModel::victimsOfRow: row %llu out of range",
              static_cast<unsigned long long>(row_flat));
    // One independent stream per row: the population is a pure function
    // of (seed, row), never of probe order.
    Rng rng(hashCombine(hashCombine(seed_, kVictimStreamSalt),
                        row_flat));
    uint64_t n = rng.poisson(params_.victimsPerRowMean);
    if (n == 0)
        return;
    uint64_t row_start = geometry_.rowStartBit(row_flat);
    uint64_t row_bits = geometry_.rowBits();
    out.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
        VictimCell v;
        v.addr = row_start + rng.uniformInt(row_bits);
        v.threshold =
            std::max(params_.hcFirstFloor,
                     params_.hcFirstMedian *
                         std::exp(params_.hcFirstSpread * rng.normal()));
        v.vulnerableValue = rng.bernoulli(0.5);
        v.favoredClass = static_cast<uint8_t>(
            rng.uniformInt(static_cast<uint64_t>(kNumDataPatterns)));
        out.push_back(v);
    }
    std::sort(out.begin(), out.end(),
              [](const VictimCell &a, const VictimCell &b) {
                  return a.addr < b.addr;
              });
}

std::vector<VictimCell>
DisturbModel::victimsOfRow(uint64_t row_flat) const
{
    std::vector<VictimCell> out;
    victimsOfRowInto(row_flat, out);
    return out;
}

double
DisturbModel::coupling(uint32_t distance) const
{
    switch (distance) {
      case 1: return 1.0;
      case 2: return params_.couplingDist2;
      default: return 0.0;
    }
}

double
DisturbModel::effectiveThreshold(const VictimCell &v,
                                 int pattern_class) const
{
    double thr = v.threshold;
    if (pattern_class == static_cast<int>(v.favoredClass))
        thr *= params_.patternAdvantage;
    return thr;
}

double
DisturbModel::pressureRate(uint64_t victim_row,
                           const std::vector<uint64_t> &aggressors) const
{
    double rate = 0.0;
    for (uint64_t agg : aggressors) {
        // Resolve adjacency from the victim's side so bank/subarray
        // clamping matches exactly what flip collection computes.
        for (int off : {-2, -1, 1, 2}) {
            uint64_t neighbor;
            if (geometry_.neighborRowIndex(victim_row, off, &neighbor) &&
                neighbor == agg)
                rate += coupling(static_cast<uint32_t>(
                    off < 0 ? -off : off));
        }
    }
    return rate;
}

uint64_t
DisturbModel::minHammerCount(uint64_t victim_row,
                             const std::vector<uint64_t> &aggressors,
                             DataPattern p, uint64_t nonce) const
{
    double rate = pressureRate(victim_row, aggressors);
    if (rate <= 0)
        return 0;
    int cls = patternClass(p);
    std::vector<VictimCell> victims = victimsOfRow(victim_row);
    double best = 0.0;
    for (const VictimCell &v : victims) {
        if (patternBit(p, geometry_, v.addr, nonce) != v.vulnerableValue)
            continue; // stored discharged: nothing to lose
        double thr = effectiveThreshold(v, cls);
        if (best == 0.0 || thr < best)
            best = thr;
    }
    if (best == 0.0)
        return 0;
    return static_cast<uint64_t>(std::ceil(best / rate));
}

} // namespace dram
} // namespace reaper
