/**
 * @file
 * Host-side DRAM testing interface, modeled after the SoftMC platform
 * the paper's infrastructure builds on (Section 4).
 *
 * SoftMcHost is the ONLY surface profilers may use: it exposes write /
 * refresh-control / wait / read-and-compare plus thermal-chamber control,
 * and it accounts the virtual time every operation costs (full-module
 * reads and writes cost 62.5 ms per GB each, matching the paper's
 * empirical 0.125 s per 2 GB figure scaled by capacity). A command trace
 * records every host operation, standing in for the logic-analyzer
 * verification of the command bus described in Section 4.
 */

#ifndef REAPER_TESTBED_SOFTMC_HOST_H
#define REAPER_TESTBED_SOFTMC_HOST_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/units.h"
#include "dram/data_pattern.h"
#include "dram/module.h"
#include "thermal/chamber.h"

namespace reaper {
namespace testbed {

/**
 * A transient host-infrastructure failure: the command was rejected or
 * its data discarded before it took effect, and retrying the operation
 * (or the surrounding round) is expected to succeed. Thrown by host
 * shims that model flaky links/chambers (campaign::FaultyHost derives
 * its HostFaultError from this); profilers translate it into
 * ErrorCategory::Fault so orchestrators can dispatch on it without
 * knowing the concrete shim.
 */
class TransientHostError : public std::runtime_error
{
  public:
    explicit TransientHostError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Kinds of host commands recorded in the trace. */
enum class CommandKind : uint8_t
{
    SetAmbient,
    WritePattern,
    Restore,
    DisableRefresh,
    EnableRefresh,
    Wait,
    ReadCompare,
    Hammer,
};

/** One entry of the host command trace. */
struct HostCommand
{
    CommandKind kind;
    Seconds startTime; ///< virtual time at which the command was issued
    double param;      ///< temperature, pattern id, or wait length
};

/** Host configuration. */
struct HostConfig
{
    /** Full-module read or write cost, seconds per GB (each way). */
    double rwSecondsPerGB = 0.0625;
    /** Cost of one row activation (ACT + PRE, ~tRC for LPDDR4). */
    Seconds activationSeconds = 50e-9;
    /** Model the thermal chamber (realistic settle times and jitter);
     *  when false, temperature changes apply instantly. */
    bool useChamber = true;
    thermal::ChamberConfig chamber{};
    /** Record the host command trace. */
    bool recordTrace = false;
};

/**
 * The host controller of one DRAM module under test.
 *
 * The command-issuing operations are virtual so that shims can
 * interpose on the host/DRAM boundary (the campaign subsystem's
 * fault-injection host derives from this class and injects transient
 * failures before delegating here).
 */
class SoftMcHost
{
  public:
    /** The module is borrowed; it must outlive the host. */
    SoftMcHost(dram::DramModule &module, const HostConfig &cfg = {});
    virtual ~SoftMcHost() = default;

    /**
     * Command the chamber to a new ambient setpoint and wait until the
     * temperature settles (instant when the chamber model is disabled).
     */
    virtual void setAmbient(Celsius ambient);
    Celsius ambient() const { return ambient_; }

    /** Write the whole module with a pattern (costs write time). */
    virtual void writeAll(dram::DataPattern p);

    /**
     * Scrub write-back: restore the stored data in place (costs one
     * full-module write). Models an ECC scrubber correcting and
     * rewriting every word.
     */
    virtual void restoreAll();

    virtual void disableRefresh();
    virtual void enableRefresh();

    /** Let the retention window elapse. */
    virtual void wait(Seconds t);

    /**
     * Issue an aggressor access pattern: activate every flat row in
     * `rows` `count` times each (interleaved, as the row-level access
     * scheduler of a disturbance profiler would), accumulating
     * disturbance on neighboring rows. Costs activation time
     * (rows * count * activationSeconds); the trace records the total
     * activation count as the command param.
     */
    virtual void hammer(const std::vector<uint64_t> &rows,
                        uint64_t count);

    /** Read the whole module and compare (costs read time). */
    virtual std::vector<dram::ChipFailure> readAndCompareAll();

    /** Virtual time since host construction. */
    Seconds now() const { return module_.now(); }

    /** Total time spent transferring data (reads + writes). */
    Seconds ioTime() const { return ioTime_; }

    dram::DramModule &module() { return module_; }
    const dram::DramModule &module() const { return module_; }

    const std::vector<HostCommand> &trace() const { return trace_; }
    void clearTrace() { trace_.clear(); }

    /** Per-GB read/write cost in effect. */
    double rwSecondsPerGB() const { return cfg_.rwSecondsPerGB; }

    /** One full-module write (or read) cost for this module's size. */
    Seconds fullModuleIoTime() const;

  private:
    /** Advance virtual time, stepping the chamber alongside. */
    void advance(Seconds dt);

    void record(CommandKind kind, double param);

    dram::DramModule &module_;
    HostConfig cfg_;
    thermal::ThermalChamber chamber_;
    Celsius ambient_;
    Seconds ioTime_ = 0.0;
    std::vector<HostCommand> trace_;
};

} // namespace testbed
} // namespace reaper

#endif // REAPER_TESTBED_SOFTMC_HOST_H
