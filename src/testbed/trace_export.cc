#include "testbed/trace_export.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace reaper {
namespace testbed {

namespace {

struct KindName
{
    CommandKind kind;
    const char *name;
};

constexpr KindName kKindNames[] = {
    {CommandKind::SetAmbient, "set_ambient"},
    {CommandKind::WritePattern, "write_pattern"},
    {CommandKind::Restore, "restore"},
    {CommandKind::DisableRefresh, "disable_refresh"},
    {CommandKind::EnableRefresh, "enable_refresh"},
    {CommandKind::Wait, "wait"},
    {CommandKind::ReadCompare, "read_compare"},
    {CommandKind::Hammer, "hammer"},
};

constexpr const char *kHeader = "kind,start_time_s,param";

common::Error
parseError(const std::string &msg)
{
    return common::Error::parse(msg);
}

/** Full-precision double so the CSV round-trips bit-exactly. */
void
putDouble(std::ostream &os, double v)
{
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    os.write(buf, res.ptr - buf);
}

bool
parseDouble(const std::string &field, double *out)
{
    const char *first = field.data();
    const char *last = first + field.size();
    auto res = std::from_chars(first, last, *out);
    return res.ec == std::errc() && res.ptr == last;
}

} // namespace

std::string
commandKindName(CommandKind kind)
{
    for (const KindName &kn : kKindNames)
        if (kn.kind == kind)
            return kn.name;
    panic("commandKindName: unknown CommandKind %d",
          static_cast<int>(kind));
}

bool
tryParseCommandKind(const std::string &name, CommandKind *out)
{
    for (const KindName &kn : kKindNames) {
        if (name == kn.name) {
            if (out)
                *out = kn.kind;
            return true;
        }
    }
    return false;
}

void
writeCommandTraceCsv(const std::vector<HostCommand> &trace,
                     std::ostream &os)
{
    os << kHeader << "\n";
    for (const HostCommand &cmd : trace) {
        os << commandKindName(cmd.kind) << ",";
        putDouble(os, cmd.startTime);
        os << ",";
        putDouble(os, cmd.param);
        os << "\n";
    }
}

void
writeCommandTraceCsvFile(const std::vector<HostCommand> &trace,
                         const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("writeCommandTraceCsvFile: cannot open '%s' for writing",
              path.c_str());
    writeCommandTraceCsv(trace, os);
    os.flush();
    if (!os)
        fatal("writeCommandTraceCsvFile: write to '%s' failed",
              path.c_str());
}

common::Expected<std::vector<HostCommand>>
readCommandTraceCsv(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line))
        return parseError("empty trace (missing header)");
    if (line != kHeader)
        return parseError("bad header '" + line + "'");

    std::vector<HostCommand> trace;
    size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::string where = "line " + std::to_string(lineno);
        size_t c1 = line.find(',');
        size_t c2 = c1 == std::string::npos ? std::string::npos
                                            : line.find(',', c1 + 1);
        if (c2 == std::string::npos)
            return parseError(where + ": expected 3 fields");
        HostCommand cmd;
        if (!tryParseCommandKind(line.substr(0, c1), &cmd.kind))
            return parseError(where + ": unknown command kind '" +
                              line.substr(0, c1) + "'");
        if (!parseDouble(line.substr(c1 + 1, c2 - c1 - 1),
                         &cmd.startTime))
            return parseError(where + ": bad start time");
        if (!parseDouble(line.substr(c2 + 1), &cmd.param))
            return parseError(where + ": bad param");
        trace.push_back(cmd);
    }
    return trace;
}

bool
tryReadCommandTraceCsv(std::istream &is, std::vector<HostCommand> *out,
                       std::string *error)
{
    if (!out)
        panic("tryReadCommandTraceCsv: out must not be null");
    common::Expected<std::vector<HostCommand>> parsed =
        readCommandTraceCsv(is);
    if (!parsed) {
        if (error)
            *error = parsed.error().message;
        return false;
    }
    *out = std::move(parsed).value();
    return true;
}

} // namespace testbed
} // namespace reaper
