/**
 * @file
 * Host command-trace export/import (CSV).
 *
 * One row per HostCommand: `kind,start_time_s,param`. Campaign
 * debugging dumps and the journaling layer share this single format so
 * a trace captured on one host can be diffed or replayed against
 * another. The kind column uses the stable command names below (not
 * enum ordinals), keeping dumps readable and forward-compatible.
 */

#ifndef REAPER_TESTBED_TRACE_EXPORT_H
#define REAPER_TESTBED_TRACE_EXPORT_H

#include <iosfwd>
#include <string>
#include <vector>

#include "common/expected.h"
#include "testbed/softmc_host.h"

namespace reaper {
namespace testbed {

/** Stable name of a command kind ("write_pattern", "wait", ...). */
std::string commandKindName(CommandKind kind);

/**
 * Parse a command-kind name back to the enum.
 * @return whether the name is known (out untouched otherwise)
 */
bool tryParseCommandKind(const std::string &name, CommandKind *out);

/** Write a trace as CSV with a header row. */
void writeCommandTraceCsv(const std::vector<HostCommand> &trace,
                          std::ostream &os);

/** Write a trace CSV to a file path; fatal() on I/O failure. */
void writeCommandTraceCsvFile(const std::vector<HostCommand> &trace,
                              const std::string &path);

/**
 * Parse a trace CSV (as produced by writeCommandTraceCsv). Malformed
 * input — a bad header, a short row, an unparseable number, or an op
 * name this build does not know — returns ErrorCategory::Parse with a
 * line-numbered diagnostic; unknown op names are a hard error, never
 * silently skipped, so a trace replayed against an older build fails
 * loudly instead of dropping commands.
 */
common::Expected<std::vector<HostCommand>>
readCommandTraceCsv(std::istream &is);

/**
 * Bool-returning wrapper around readCommandTraceCsv for callers that
 * thread a string diagnostic instead of a typed error.
 * @param is input stream
 * @param out parsed trace (valid only when true is returned)
 * @param error filled with a diagnostic on failure (may be null)
 * @return whether parsing succeeded
 */
bool tryReadCommandTraceCsv(std::istream &is,
                            std::vector<HostCommand> *out,
                            std::string *error = nullptr);

} // namespace testbed
} // namespace reaper

#endif // REAPER_TESTBED_TRACE_EXPORT_H
