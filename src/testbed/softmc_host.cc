#include "testbed/softmc_host.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/obs.h"

namespace reaper {
namespace testbed {

SoftMcHost::SoftMcHost(dram::DramModule &module, const HostConfig &cfg)
    : module_(module),
      cfg_(cfg),
      chamber_(cfg.chamber),
      ambient_(cfg.chamber.roomTemp)
{
    if (!cfg_.useChamber) {
        ambient_ = module_.config().initialTemp;
    }
}

void
SoftMcHost::record(CommandKind kind, double param)
{
    if (cfg_.recordTrace)
        trace_.push_back({kind, now(), param});
}

void
SoftMcHost::setAmbient(Celsius ambient)
{
    REAPER_OBS_SPAN(opSpan, "testbed.set_ambient");
    REAPER_OBS_COUNT("testbed.commands");
    REAPER_OBS_COUNT("testbed.set_ambient");
    record(CommandKind::SetAmbient, ambient);
    ambient_ = ambient;
    if (!cfg_.useChamber) {
        module_.setTemperature(ambient);
        return;
    }
    chamber_.setSetpoint(ambient);
    // Step chamber and module together until the chamber settles.
    Seconds elapsed = 0.0;
    Seconds in_band = 0.0;
    const Seconds timeout = 3600.0;
    while (elapsed < timeout) {
        chamber_.step(1.0);
        module_.setTemperature(chamber_.ambient());
        module_.wait(1.0);
        elapsed += 1.0;
        if (chamber_.settled(0.25)) {
            in_band += 1.0;
            if (in_band >= 10.0)
                return;
        } else {
            in_band = 0.0;
        }
    }
    fatal("SoftMcHost: chamber failed to settle to %.2f degC", ambient);
}

void
SoftMcHost::advance(Seconds dt)
{
    if (dt < 0)
        panic("SoftMcHost::advance: negative dt %g", dt);
    if (!cfg_.useChamber) {
        module_.wait(dt);
        return;
    }
    while (dt > 0) {
        // Fine-grained steps near setpoint transitions; coarser once
        // the chamber is settled (it only jitters within the band).
        Seconds chunk = chamber_.settled(0.3) ? std::min(dt, 30.0)
                                              : std::min(dt, 1.0);
        chamber_.step(chunk);
        module_.setTemperature(chamber_.ambient());
        module_.wait(chunk);
        dt -= chunk;
    }
}

Seconds
SoftMcHost::fullModuleIoTime() const
{
    double gb = static_cast<double>(module_.capacityBits()) / 8.0 /
                static_cast<double>(kGiB);
    return cfg_.rwSecondsPerGB * gb;
}

void
SoftMcHost::writeAll(dram::DataPattern p)
{
    REAPER_OBS_SPAN(opSpan, "testbed.write_all");
    REAPER_OBS_COUNT("testbed.commands");
    REAPER_OBS_COUNT("testbed.write_all");
    record(CommandKind::WritePattern, static_cast<double>(p));
    Seconds t = fullModuleIoTime();
    advance(t);
    ioTime_ += t;
    module_.writePattern(p);
}

void
SoftMcHost::restoreAll()
{
    REAPER_OBS_SPAN(opSpan, "testbed.restore_all");
    REAPER_OBS_COUNT("testbed.commands");
    record(CommandKind::Restore, 0);
    Seconds t = fullModuleIoTime();
    advance(t);
    ioTime_ += t;
    module_.restoreData();
}

void
SoftMcHost::disableRefresh()
{
    REAPER_OBS_COUNT("testbed.commands");
    record(CommandKind::DisableRefresh, 0);
    module_.disableRefresh();
}

void
SoftMcHost::enableRefresh()
{
    REAPER_OBS_COUNT("testbed.commands");
    record(CommandKind::EnableRefresh, 0);
    module_.enableRefresh();
}

void
SoftMcHost::wait(Seconds t)
{
    REAPER_OBS_SPAN(opSpan, "testbed.wait");
    REAPER_OBS_COUNT("testbed.commands");
    record(CommandKind::Wait, t);
    advance(t);
}

void
SoftMcHost::hammer(const std::vector<uint64_t> &rows, uint64_t count)
{
    REAPER_OBS_SPAN(opSpan, "testbed.hammer");
    REAPER_OBS_COUNT("testbed.commands");
    REAPER_OBS_COUNT("testbed.hammer");
    if (rows.empty() || count == 0)
        return;
    double total =
        static_cast<double>(rows.size()) * static_cast<double>(count);
    REAPER_OBS_COUNT_N("testbed.activations",
                       static_cast<uint64_t>(total));
    record(CommandKind::Hammer, total);
    advance(total * cfg_.activationSeconds);
    module_.hammer(rows, count);
}

std::vector<dram::ChipFailure>
SoftMcHost::readAndCompareAll()
{
    REAPER_OBS_SPAN(opSpan, "testbed.read_compare");
    REAPER_OBS_COUNT("testbed.commands");
    REAPER_OBS_COUNT("testbed.read_compare");
    record(CommandKind::ReadCompare, 0);
    Seconds t = fullModuleIoTime();
    advance(t);
    ioTime_ += t;
    return module_.readAndCompare();
}

} // namespace testbed
} // namespace reaper
