#include "simd/crc32c.h"

#include <cstring>

#include "common/logging.h"
#include "simd/dispatch.h"

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define REAPER_CRC32C_X86 1
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#define REAPER_CRC32C_ARM 1
#endif

namespace reaper {
namespace simd {

namespace {

struct Crc32cTables
{
    uint32_t t[4][256];

    Crc32cTables()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
            t[0][i] = c;
        }
        for (uint32_t i = 0; i < 256; ++i)
            for (int j = 1; j < 4; ++j)
                t[j][i] = t[0][t[j - 1][i] & 0xFF] ^
                          (t[j - 1][i] >> 8);
    }
};

inline uint32_t
loadLe32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
}

#if defined(REAPER_CRC32C_X86) || defined(REAPER_CRC32C_ARM)

// --- 3-way interleave support -------------------------------------
//
// A single crc32 instruction stream is latency-bound: each 8-byte
// step waits ~3 cycles on the previous one (~5-6 GB/s at 2 GHz).
// Running three independent streams over adjacent kCrcLeaf-byte
// lanes fills those stalls and nearly triples throughput. The lane
// CRCs recombine because the CRC register update is GF(2)-linear in
// both state and data: crc(A||B||C) = M2L*crcA ^ ML*crc0(B) ^
// crc0(C), where ML is the 32x32 bit-matrix advancing a CRC state
// over kCrcLeaf zero bytes (zlib's crc32_combine construction,
// specialized to a fixed length so each operator is built once).

constexpr size_t kCrcLeaf = 1024;

/** m * vec over GF(2): rows are images of the unit bit vectors. */
inline uint32_t
gf2Times(const uint32_t m[32], uint32_t vec)
{
    uint32_t r = 0;
    for (int i = 0; vec != 0; ++i, vec >>= 1)
        if (vec & 1)
            r ^= m[i];
    return r;
}

inline void
gf2Square(uint32_t out[32], const uint32_t m[32])
{
    for (int i = 0; i < 32; ++i)
        out[i] = gf2Times(m, m[i]);
}

struct CrcShiftOps
{
    uint32_t shiftLeaf[32];  ///< advance by kCrcLeaf zero bytes
    uint32_t shift2Leaf[32]; ///< advance by 2 * kCrcLeaf zero bytes

    CrcShiftOps()
    {
        // One zero BIT on the reflected register, as a matrix.
        uint32_t m[32];
        for (int i = 0; i < 32; ++i) {
            uint32_t v = 1u << i;
            m[i] = (v & 1) ? (v >> 1) ^ 0x82F63B78u : v >> 1;
        }
        // Square to one zero byte (2^3 bits), then to kCrcLeaf bytes.
        uint32_t tmp[32];
        uint32_t *a = m, *b = tmp;
        int squarings = 3;
        for (size_t leaf = kCrcLeaf; leaf > 1; leaf >>= 1)
            ++squarings;
        static_assert((kCrcLeaf & (kCrcLeaf - 1)) == 0,
                      "kCrcLeaf must be a power of two");
        for (int s = 0; s < squarings; ++s) {
            gf2Square(b, a);
            uint32_t *t = a;
            a = b;
            b = t;
        }
        for (int i = 0; i < 32; ++i)
            shiftLeaf[i] = a[i];
        gf2Square(shift2Leaf, shiftLeaf);
    }
};

inline const CrcShiftOps &
crcShiftOps()
{
    static const CrcShiftOps ops;
    return ops;
}

#endif // REAPER_CRC32C_X86 || REAPER_CRC32C_ARM

} // namespace

uint32_t
crc32cSoftware(uint32_t crc, const void *data, size_t len)
{
    static const Crc32cTables tables;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    crc = ~crc;
    while (len >= 4) {
        crc ^= loadLe32(p);
        crc = tables.t[3][crc & 0xFF] ^
              tables.t[2][(crc >> 8) & 0xFF] ^
              tables.t[1][(crc >> 16) & 0xFF] ^
              tables.t[0][crc >> 24];
        p += 4;
        len -= 4;
    }
    while (len--)
        crc = tables.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

bool
crc32cHardwareAvailable()
{
#if defined(REAPER_CRC32C_X86)
    return cpuHasCrc32c();
#elif defined(REAPER_CRC32C_ARM)
    return true;
#else
    return false;
#endif
}

#if defined(REAPER_CRC32C_X86)

__attribute__((target("sse4.2"))) uint32_t
crc32cHardware(uint32_t crc, const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    crc = ~crc;
    // Head: reach 8-byte alignment so the wide loop loads aligned.
    while (len > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
        crc = _mm_crc32_u8(crc, *p++);
        --len;
    }
#if defined(__x86_64__)
    // Bulk: three interleaved instruction streams over adjacent
    // lanes hide the crc32 instruction's latency; the lane results
    // recombine through the precomputed zero-byte shift operators.
    while (len >= 3 * kCrcLeaf) {
        const CrcShiftOps &ops = crcShiftOps();
        uint64_t a = crc, b = 0, c = 0;
        const uint8_t *pa = p;
        const uint8_t *pb = p + kCrcLeaf;
        const uint8_t *pc = p + 2 * kCrcLeaf;
        for (size_t i = 0; i < kCrcLeaf; i += 8) {
            uint64_t wa, wb, wc;
            std::memcpy(&wa, pa + i, 8);
            std::memcpy(&wb, pb + i, 8);
            std::memcpy(&wc, pc + i, 8);
            a = _mm_crc32_u64(a, wa);
            b = _mm_crc32_u64(b, wb);
            c = _mm_crc32_u64(c, wc);
        }
        crc = gf2Times(ops.shift2Leaf, static_cast<uint32_t>(a)) ^
              gf2Times(ops.shiftLeaf, static_cast<uint32_t>(b)) ^
              static_cast<uint32_t>(c);
        p += 3 * kCrcLeaf;
        len -= 3 * kCrcLeaf;
    }
    uint64_t crc64 = crc;
    while (len >= 8) {
        uint64_t word;
        std::memcpy(&word, p, 8);
        crc64 = _mm_crc32_u64(crc64, word);
        p += 8;
        len -= 8;
    }
    crc = static_cast<uint32_t>(crc64);
#endif
    while (len >= 4) {
        uint32_t word;
        std::memcpy(&word, p, 4);
        crc = _mm_crc32_u32(crc, word);
        p += 4;
        len -= 4;
    }
    while (len--)
        crc = _mm_crc32_u8(crc, *p++);
    return ~crc;
}

#elif defined(REAPER_CRC32C_ARM)

uint32_t
crc32cHardware(uint32_t crc, const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    crc = ~crc;
    while (len > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
        crc = __crc32cb(crc, *p++);
        --len;
    }
    // Same 3-way latency-hiding interleave as the x86 path.
    while (len >= 3 * kCrcLeaf) {
        const CrcShiftOps &ops = crcShiftOps();
        uint32_t a = crc, b = 0, c = 0;
        const uint8_t *pa = p;
        const uint8_t *pb = p + kCrcLeaf;
        const uint8_t *pc = p + 2 * kCrcLeaf;
        for (size_t i = 0; i < kCrcLeaf; i += 8) {
            uint64_t wa, wb, wc;
            std::memcpy(&wa, pa + i, 8);
            std::memcpy(&wb, pb + i, 8);
            std::memcpy(&wc, pc + i, 8);
            a = __crc32cd(a, wa);
            b = __crc32cd(b, wb);
            c = __crc32cd(c, wc);
        }
        crc = gf2Times(ops.shift2Leaf, a) ^
              gf2Times(ops.shiftLeaf, b) ^ c;
        p += 3 * kCrcLeaf;
        len -= 3 * kCrcLeaf;
    }
    while (len >= 8) {
        uint64_t word;
        std::memcpy(&word, p, 8);
        crc = __crc32cd(crc, word);
        p += 8;
        len -= 8;
    }
    while (len--)
        crc = __crc32cb(crc, *p++);
    return ~crc;
}

#else

uint32_t
crc32cHardware(uint32_t crc, const void *data, size_t len)
{
    (void)crc;
    (void)data;
    (void)len;
    panic("crc32cHardware: no hardware CRC32C on this target");
}

#endif

uint32_t
crc32c(uint32_t crc, const void *data, size_t len)
{
    using Fn = uint32_t (*)(uint32_t, const void *, size_t);
    static const Fn fn = (activeLevel() >= SimdLevel::Vector &&
                          crc32cHardwareAvailable())
                             ? &crc32cHardware
                             : &crc32cSoftware;
    return fn(crc, data, len);
}

} // namespace simd
} // namespace reaper
