#include "simd/crc32c.h"

#include <cstring>

#include "common/logging.h"
#include "simd/dispatch.h"

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define REAPER_CRC32C_X86 1
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#define REAPER_CRC32C_ARM 1
#endif

namespace reaper {
namespace simd {

namespace {

struct Crc32cTables
{
    uint32_t t[4][256];

    Crc32cTables()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
            t[0][i] = c;
        }
        for (uint32_t i = 0; i < 256; ++i)
            for (int j = 1; j < 4; ++j)
                t[j][i] = t[0][t[j - 1][i] & 0xFF] ^
                          (t[j - 1][i] >> 8);
    }
};

inline uint32_t
loadLe32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
}

} // namespace

uint32_t
crc32cSoftware(uint32_t crc, const void *data, size_t len)
{
    static const Crc32cTables tables;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    crc = ~crc;
    while (len >= 4) {
        crc ^= loadLe32(p);
        crc = tables.t[3][crc & 0xFF] ^
              tables.t[2][(crc >> 8) & 0xFF] ^
              tables.t[1][(crc >> 16) & 0xFF] ^
              tables.t[0][crc >> 24];
        p += 4;
        len -= 4;
    }
    while (len--)
        crc = tables.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

bool
crc32cHardwareAvailable()
{
#if defined(REAPER_CRC32C_X86)
    return cpuHasCrc32c();
#elif defined(REAPER_CRC32C_ARM)
    return true;
#else
    return false;
#endif
}

#if defined(REAPER_CRC32C_X86)

__attribute__((target("sse4.2"))) uint32_t
crc32cHardware(uint32_t crc, const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    crc = ~crc;
    // Head: reach 8-byte alignment so the wide loop loads aligned.
    while (len > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
        crc = _mm_crc32_u8(crc, *p++);
        --len;
    }
#if defined(__x86_64__)
    uint64_t crc64 = crc;
    while (len >= 8) {
        uint64_t word;
        std::memcpy(&word, p, 8);
        crc64 = _mm_crc32_u64(crc64, word);
        p += 8;
        len -= 8;
    }
    crc = static_cast<uint32_t>(crc64);
#endif
    while (len >= 4) {
        uint32_t word;
        std::memcpy(&word, p, 4);
        crc = _mm_crc32_u32(crc, word);
        p += 4;
        len -= 4;
    }
    while (len--)
        crc = _mm_crc32_u8(crc, *p++);
    return ~crc;
}

#elif defined(REAPER_CRC32C_ARM)

uint32_t
crc32cHardware(uint32_t crc, const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    crc = ~crc;
    while (len > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
        crc = __crc32cb(crc, *p++);
        --len;
    }
    while (len >= 8) {
        uint64_t word;
        std::memcpy(&word, p, 8);
        crc = __crc32cd(crc, word);
        p += 8;
        len -= 8;
    }
    while (len--)
        crc = __crc32cb(crc, *p++);
    return ~crc;
}

#else

uint32_t
crc32cHardware(uint32_t crc, const void *data, size_t len)
{
    (void)crc;
    (void)data;
    (void)len;
    panic("crc32cHardware: no hardware CRC32C on this target");
}

#endif

uint32_t
crc32c(uint32_t crc, const void *data, size_t len)
{
    using Fn = uint32_t (*)(uint32_t, const void *, size_t);
    static const Fn fn = (activeLevel() >= SimdLevel::Vector &&
                          crc32cHardwareAvailable())
                             ? &crc32cHardware
                             : &crc32cSoftware;
    return fn(crc, data, len);
}

} // namespace simd
} // namespace reaper
