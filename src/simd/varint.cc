#include "simd/varint.h"

#include <cstring>

#include "simd/dispatch.h"

namespace reaper {
namespace simd {

namespace {

/** Decode one varint byte-at-a-time (the historical v2 semantics:
 *  bits at shift >= 64 are discarded, a continuation reaching shift
 *  64 is malformed). */
inline const uint8_t *
decodeOneScalar(const uint8_t *p, const uint8_t *end, uint64_t *out)
{
    uint64_t v = 0;
    unsigned shift = 0;
    while (p != end && shift < 64) {
        uint8_t byte = *p++;
        v |= static_cast<uint64_t>(byte & 0x7F) << shift;
        if (!(byte & 0x80)) {
            *out = v;
            return p;
        }
        shift += 7;
    }
    return nullptr;
}

constexpr uint64_t kContMask = 0x8080808080808080ull;

} // namespace

const uint8_t *
decodeVarintsScalar(const uint8_t *p, const uint8_t *end, uint64_t *out,
                    size_t count)
{
    for (size_t i = 0; i < count; ++i) {
        p = decodeOneScalar(p, end, out + i);
        if (p == nullptr)
            return nullptr;
    }
    return p;
}

namespace {

/** Branchless compaction of up to eight little-endian 7-bit groups
 *  (continuation bits already stripped) into one value. */
inline uint64_t
compact7(uint64_t x)
{
    x = (x & 0x007F007F007F007Full) |
        ((x & 0x7F007F007F007F00ull) >> 1);
    x = (x & 0x00003FFF00003FFFull) |
        ((x & 0x3FFF00003FFF0000ull) >> 2);
    x = (x & 0x000000000FFFFFFFull) |
        ((x & 0x0FFFFFFF00000000ull) >> 4);
    return x;
}

} // namespace

const uint8_t *
decodeVarintsSwar(const uint8_t *p, const uint8_t *end, uint64_t *out,
                  size_t count)
{
    size_t i = 0;
    while (i < count && end - p >= 8) {
        // One load decodes every varint that terminates inside the
        // window — with 1-3 byte deltas that's typically 3-8 varints
        // per 8-byte load, each a ctz + shift + branchless 7-bit
        // compaction instead of a byte-at-a-time dependent loop.
        uint64_t window;
        std::memcpy(&window, p, 8);
        uint64_t terminators = ~window & kContMask;
        if (terminators == 0) {
            // Varint longer than the window: take the exact slow path
            // (also yields the historical >10-byte malformed error).
            p = decodeOneScalar(p, end, out + i++);
            if (p == nullptr)
                return nullptr;
            continue;
        }
        unsigned consumed = 0;
        do {
            unsigned tpos = static_cast<unsigned>(
                                __builtin_ctzll(terminators)) >>
                            3;
            uint64_t chunk = (window >> (8 * consumed)) &
                             (~0ull >> (56 - 8 * (tpos - consumed)));
            out[i++] = compact7(chunk & ~kContMask);
            consumed = tpos + 1;
            terminators &= terminators - 1;
        } while (terminators != 0 && i < count);
        p += consumed;
    }
    // Tail (fewer than 8 bytes left, or count satisfied).
    return decodeVarintsScalar(p, end, out + i, count - i);
}

const uint8_t *
decodeVarints(const uint8_t *p, const uint8_t *end, uint64_t *out,
              size_t count)
{
    using Fn = const uint8_t *(*)(const uint8_t *, const uint8_t *,
                                  uint64_t *, size_t);
    static const Fn fn = activeLevel() >= SimdLevel::Swar
                             ? &decodeVarintsSwar
                             : &decodeVarintsScalar;
    return fn(p, end, out, count);
}

} // namespace simd
} // namespace reaper
