/**
 * @file
 * CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected) with runtime
 * hardware dispatch.
 *
 * The dispatched crc32c() picks the SSE4.2 `crc32` instruction path
 * (8 bytes per instruction; inputs of 3 KiB and up run three
 * interleaved instruction streams recombined through precomputed
 * GF(2) shift operators, hiding the instruction's ~3-cycle latency)
 * or the ARMv8 CRC extension when the CPU has it and REAPER_SIMD
 * allows it, and otherwise the slicing-by-4 software implementation
 * that has always backed the v2 profile format. Both paths share the
 * same seeding convention: pass 0 for a fresh stream, or a previous
 * return value to continue one
 * (crc32c(crc32c(0, a, la), b, lb) == crc32c(0, a+b, la+lb)).
 *
 * The RFC 3720 "123456789" -> 0xE3069283 vector pins the polynomial;
 * tests/test_simd.cc additionally proves software/hardware equivalence
 * at every length 0..256 and alignment offset 0..7.
 */

#ifndef REAPER_SIMD_CRC32C_H
#define REAPER_SIMD_CRC32C_H

#include <cstddef>
#include <cstdint>

namespace reaper {
namespace simd {

/** Dispatched CRC32C (see file comment for the seeding convention). */
uint32_t crc32c(uint32_t crc, const void *data, size_t len);

/** Slicing-by-4 software reference (the scalar twin). */
uint32_t crc32cSoftware(uint32_t crc, const void *data, size_t len);

/** Whether crc32cHardware() may be called on this CPU. */
bool crc32cHardwareAvailable();

/**
 * Hardware-instruction path. Callers must check
 * crc32cHardwareAvailable() first; the dispatched crc32c() does.
 */
uint32_t crc32cHardware(uint32_t crc, const void *data, size_t len);

} // namespace simd
} // namespace reaper

#endif // REAPER_SIMD_CRC32C_H
