#include "simd/words.h"

#include "simd/dispatch.h"

#if defined(__x86_64__)
#include <immintrin.h>
#define REAPER_WORDS_AVX2 1
#endif

namespace reaper {
namespace simd {

// ---- fillWords ----

void
fillWordsScalar(uint64_t *dst, size_t n, uint64_t value)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = value;
}

#if defined(REAPER_WORDS_AVX2)

__attribute__((target("avx2"))) void
fillWordsVector(uint64_t *dst, size_t n, uint64_t value)
{
    __m256i v = _mm256_set1_epi64x(static_cast<long long>(value));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) { // 64-byte chunk: two 256-bit stores
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), v);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i + 4),
                            v);
    }
    for (; i < n; ++i)
        dst[i] = value;
}

#else

void
fillWordsVector(uint64_t *dst, size_t n, uint64_t value)
{
    fillWordsScalar(dst, n, value);
}

#endif

void
fillWords(uint64_t *dst, size_t n, uint64_t value)
{
    using Fn = void (*)(uint64_t *, size_t, uint64_t);
    static const Fn fn =
        (activeLevel() >= SimdLevel::Vector && wordsVectorAvailable())
            ? &fillWordsVector
            : &fillWordsScalar;
    fn(dst, n, value);
}

// ---- compareWords ----

size_t
compareWordsScalar(const uint64_t *got, const uint64_t *expect,
                   size_t n, std::vector<uint64_t> &out)
{
    size_t before = out.size();
    for (size_t i = 0; i < n; ++i)
        if (got[i] != expect[i])
            out.push_back(i);
    return out.size() - before;
}

size_t
compareWordsSwar(const uint64_t *got, const uint64_t *expect, size_t n,
                 std::vector<uint64_t> &out)
{
    size_t before = out.size();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // Branchless per-chunk mismatch mask: one bit per word. The
        // common all-match case costs 8 XORs and one branch.
        unsigned mask = 0;
        for (unsigned k = 0; k < 8; ++k)
            mask |= (got[i + k] != expect[i + k] ? 1u : 0u) << k;
        while (mask != 0) {
            unsigned k = static_cast<unsigned>(__builtin_ctz(mask));
            out.push_back(i + k);
            mask &= mask - 1;
        }
    }
    for (; i < n; ++i)
        if (got[i] != expect[i])
            out.push_back(i);
    return out.size() - before;
}

#if defined(REAPER_WORDS_AVX2)

__attribute__((target("avx2"))) size_t
compareWordsVector(const uint64_t *got, const uint64_t *expect,
                   size_t n, std::vector<uint64_t> &out)
{
    size_t before = out.size();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i g0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(got + i));
        __m256i g1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(got + i + 4));
        __m256i e0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(expect + i));
        __m256i e1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(expect + i + 4));
        unsigned eq0 = static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(g0, e0))));
        unsigned eq1 = static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(g1, e1))));
        unsigned mask = (~eq0 & 0xFu) | ((~eq1 & 0xFu) << 4);
        while (mask != 0) {
            unsigned k = static_cast<unsigned>(__builtin_ctz(mask));
            out.push_back(i + k);
            mask &= mask - 1;
        }
    }
    for (; i < n; ++i)
        if (got[i] != expect[i])
            out.push_back(i);
    return out.size() - before;
}

#else

size_t
compareWordsVector(const uint64_t *got, const uint64_t *expect,
                   size_t n, std::vector<uint64_t> &out)
{
    return compareWordsSwar(got, expect, n, out);
}

#endif

size_t
compareWords(const uint64_t *got, const uint64_t *expect, size_t n,
             std::vector<uint64_t> &out)
{
    using Fn = size_t (*)(const uint64_t *, const uint64_t *, size_t,
                          std::vector<uint64_t> &);
    static const Fn fn =
        (activeLevel() >= SimdLevel::Vector && wordsVectorAvailable())
            ? &compareWordsVector
        : activeLevel() >= SimdLevel::Swar ? &compareWordsSwar
                                           : &compareWordsScalar;
    return fn(got, expect, n, out);
}

// ---- scanNotGreater ----

void
scanNotGreaterScalar(const double *vals, size_t n, double threshold,
                     std::vector<uint32_t> &out)
{
    for (size_t i = 0; i < n; ++i)
        if (!(vals[i] > threshold))
            out.push_back(static_cast<uint32_t>(i));
}

#if defined(REAPER_WORDS_AVX2)

__attribute__((target("avx2"))) void
scanNotGreaterVector(const double *vals, size_t n, double threshold,
                     std::vector<uint32_t> &out)
{
    __m256d t = _mm256_set1_pd(threshold);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256d v0 = _mm256_loadu_pd(vals + i);
        __m256d v1 = _mm256_loadu_pd(vals + i + 4);
        // NGT_UQ: !(v > t), true for unordered — exactly the scalar
        // branch's fall-through set, NaNs included.
        unsigned m0 = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_cmp_pd(v0, t, _CMP_NGT_UQ)));
        unsigned m1 = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_cmp_pd(v1, t, _CMP_NGT_UQ)));
        unsigned mask = (m0 & 0xFu) | ((m1 & 0xFu) << 4);
        while (mask != 0) {
            unsigned k = static_cast<unsigned>(__builtin_ctz(mask));
            out.push_back(static_cast<uint32_t>(i + k));
            mask &= mask - 1;
        }
    }
    for (; i < n; ++i)
        if (!(vals[i] > threshold))
            out.push_back(static_cast<uint32_t>(i));
}

#else

void
scanNotGreaterVector(const double *vals, size_t n, double threshold,
                     std::vector<uint32_t> &out)
{
    scanNotGreaterScalar(vals, n, threshold, out);
}

#endif

void
scanNotGreater(const double *vals, size_t n, double threshold,
               std::vector<uint32_t> &out)
{
    using Fn = void (*)(const double *, size_t, double,
                        std::vector<uint32_t> &);
    static const Fn fn =
        (activeLevel() >= SimdLevel::Vector && wordsVectorAvailable())
            ? &scanNotGreaterVector
            : &scanNotGreaterScalar;
    fn(vals, n, threshold, out);
}

bool
wordsVectorAvailable()
{
#if defined(REAPER_WORDS_AVX2)
    return cpuHasAvx2();
#else
    return false;
#endif
}

} // namespace simd
} // namespace reaper
