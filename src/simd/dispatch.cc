#include "simd/dispatch.h"

#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace reaper {
namespace simd {

const char *
toString(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return "scalar";
    case SimdLevel::Swar:
        return "swar";
    case SimdLevel::Vector:
        return "vector";
    }
    return "?";
}

bool
cpuHasCrc32c()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("sse4.2");
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
    // Baked in at compile time via -march; no runtime probe needed.
    return true;
#else
    return false;
#endif
}

bool
cpuHasAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    // __builtin_cpu_supports includes the XGETBV check, so this is
    // false when the OS has not enabled YMM state saving.
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

SimdLevel
detectedLevel()
{
    // SWAR kernels are plain uint64_t arithmetic: always available.
    if (cpuHasCrc32c() || cpuHasAvx2())
        return SimdLevel::Vector;
    return SimdLevel::Swar;
}

SimdLevel
resolveLevel(const char *env, SimdLevel detected)
{
    if (env == nullptr || *env == '\0' ||
        std::strcmp(env, "auto") == 0)
        return detected;
    if (std::strcmp(env, "scalar") == 0)
        return SimdLevel::Scalar;
    if (std::strcmp(env, "swar") == 0)
        return detected < SimdLevel::Swar ? detected : SimdLevel::Swar;
    warn("REAPER_SIMD: unknown value '%s' (expected scalar|swar|auto); "
         "using auto",
         env);
    return detected;
}

SimdLevel
activeLevel()
{
    static const SimdLevel level =
        resolveLevel(std::getenv("REAPER_SIMD"), detectedLevel());
    return level;
}

} // namespace simd
} // namespace reaper
