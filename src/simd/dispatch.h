/**
 * @file
 * Runtime CPU dispatch for the SIMD micro-kernel layer (src/simd/).
 *
 * Every kernel in this module ships as a family: a scalar reference
 * twin (the original byte/word-at-a-time loop, kept bit-identical
 * forever as the equivalence oracle), a portable SWAR variant where it
 * helps, and a hardware path (SSE4.2 CRC32C, AVX2 compare/movemask)
 * where the CPU supports it. The dispatched entry points resolve a
 * function pointer exactly once (thread-safe static init) from
 *
 *   min(detected CPU capability, REAPER_SIMD cap)
 *
 * where REAPER_SIMD is:
 *   scalar  force the reference twins everywhere (debugging, perf
 *           forensics, sanitizer forensics)
 *   swar    allow portable batched kernels but no ISA-specific code
 *   auto    best available (default; unset means auto)
 *
 * Capability detection is cpuid-based on x86 (via the compiler's
 * __builtin_cpu_supports, which performs the CPUID/XGETBV dance
 * correctly, including the OS-enabled YMM-state check AVX2 needs).
 * Non-x86 hosts report Swar and run the portable kernels.
 *
 * See DESIGN.md §12 for the kernel-addition and equivalence-proof
 * policy.
 */

#ifndef REAPER_SIMD_DISPATCH_H
#define REAPER_SIMD_DISPATCH_H

#include <cstdint>

namespace reaper {
namespace simd {

/** Dispatch tier, ordered: higher levels include the lower ones. */
enum class SimdLevel : uint8_t
{
    Scalar = 0, ///< reference twins only
    Swar = 1,   ///< portable 64-bit batched kernels
    Vector = 2, ///< ISA-specific kernels (SSE4.2 CRC32C, AVX2)
};

const char *toString(SimdLevel level);

/** Best level the CPU supports, ignoring REAPER_SIMD. */
SimdLevel detectedLevel();

/**
 * The level kernels actually dispatch on: detectedLevel() capped by
 * REAPER_SIMD. Resolved once on first use; changing the environment
 * afterwards has no effect (kernels cache their function pointers).
 */
SimdLevel activeLevel();

/**
 * Pure resolution rule (exposed for tests): cap `detected` by the
 * REAPER_SIMD value `env` (nullptr/""/"auto" = no cap; unknown values
 * are ignored with a warning).
 */
SimdLevel resolveLevel(const char *env, SimdLevel detected);

/** CPU capability probes (ignore REAPER_SIMD). */
bool cpuHasCrc32c();
bool cpuHasAvx2();

} // namespace simd
} // namespace reaper

#endif // REAPER_SIMD_DISPATCH_H
