/**
 * @file
 * Bulk LEB128 varint codec.
 *
 * The v2 profile format stores every cell as exactly two varints, so
 * block decode reduces to "decode N varints from this byte range" —
 * which the SWAR path does a 64-bit window at a time: load 8 bytes,
 * find the varint's terminator byte from the continuation-bit mask
 * with one ctz, and extract the payload bits without a per-byte
 * branch. Delta-encoded cell streams are overwhelmingly 1–2 byte
 * varints, where this replaces 2–4 dependent branches per varint with
 * straight-line arithmetic.
 *
 * Byte-exact contract (both variants, property-tested against each
 * other in tests/test_simd.cc):
 *
 *  - decode exactly `count` varints starting at `p`, never reading at
 *    or past `end`;
 *  - accept what the historical scalar decoder accepted, including
 *    non-canonical up-to-10-byte encodings whose bits past 2^64 are
 *    discarded;
 *  - return nullptr on truncation or on a continuation byte at shift
 *    64 (the caller maps this to ErrorCategory::Corrupt);
 *  - on success return the first byte after the last varint.
 */

#ifndef REAPER_SIMD_VARINT_H
#define REAPER_SIMD_VARINT_H

#include <cstddef>
#include <cstdint>

namespace reaper {
namespace simd {

/** Dispatched bulk decode (scalar twin under REAPER_SIMD=scalar). */
const uint8_t *decodeVarints(const uint8_t *p, const uint8_t *end,
                             uint64_t *out, size_t count);

/** Byte-at-a-time reference decoder (the scalar twin). */
const uint8_t *decodeVarintsScalar(const uint8_t *p, const uint8_t *end,
                                   uint64_t *out, size_t count);

/** SWAR 64-bit-window decoder. */
const uint8_t *decodeVarintsSwar(const uint8_t *p, const uint8_t *end,
                                 uint64_t *out, size_t count);

/** Max encoded size of one varint (10 bytes covers any uint64_t). */
constexpr size_t kMaxVarintBytes = 10;

/**
 * Encode one varint at `dst` (which must have kMaxVarintBytes of
 * room); returns the number of bytes written. Pointer-based so
 * encoders can fill a preallocated block payload with no per-byte
 * container overhead.
 */
inline size_t
encodeVarint(uint8_t *dst, uint64_t v)
{
    size_t n = 0;
    while (v >= 0x80) {
        dst[n++] = static_cast<uint8_t>(v) | 0x80;
        v >>= 7;
    }
    dst[n++] = static_cast<uint8_t>(v);
    return n;
}

} // namespace simd
} // namespace reaper

#endif // REAPER_SIMD_VARINT_H
