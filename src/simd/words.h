/**
 * @file
 * Batched word kernels for the DRAM pattern write / read-compare
 * sweeps: fill a word buffer with a pattern, compare two word buffers
 * emitting mismatch indices, and scan a double array against a
 * threshold emitting candidate indices.
 *
 * All three process 64-byte chunks — 8 uint64 words or 8 doubles —
 * per iteration on the vector path (AVX2 compare + movemask), with a
 * portable SWAR/unrolled fallback and a plain scalar twin. Output is
 * bit-identical across variants by construction: indices are emitted
 * in ascending order and the compare predicates are exact (integer
 * equality; IEEE `!(v > t)`, so NaN handling matches the scalar
 * branch it replaces).
 *
 * scanNotGreater() is the hot kernel of DramDevice::readAndCompareInto:
 * the candidate fast-reject scan over the SoA weakReject_ array, whose
 * survivors then take the exact per-cell stochastic path. fillWords()/
 * compareWords() serve dense buffer producers/checkers (BloomFilter
 * reset today; the dense row-buffer workloads on the roadmap next).
 */

#ifndef REAPER_SIMD_WORDS_H
#define REAPER_SIMD_WORDS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace reaper {
namespace simd {

/** dst[0..n) = value. */
void fillWords(uint64_t *dst, size_t n, uint64_t value);
void fillWordsScalar(uint64_t *dst, size_t n, uint64_t value);
void fillWordsVector(uint64_t *dst, size_t n, uint64_t value);

/**
 * Append to `out` the ascending indices i where got[i] != expect[i].
 * Returns the number of mismatches appended.
 */
size_t compareWords(const uint64_t *got, const uint64_t *expect,
                    size_t n, std::vector<uint64_t> &out);
size_t compareWordsScalar(const uint64_t *got, const uint64_t *expect,
                          size_t n, std::vector<uint64_t> &out);
size_t compareWordsSwar(const uint64_t *got, const uint64_t *expect,
                        size_t n, std::vector<uint64_t> &out);
size_t compareWordsVector(const uint64_t *got, const uint64_t *expect,
                          size_t n, std::vector<uint64_t> &out);

/**
 * Append to `out` the ascending indices i where !(vals[i] > threshold)
 * — the exact negation of the scalar fast-reject branch, so NaN values
 * are emitted just as the branch would fall through.
 */
void scanNotGreater(const double *vals, size_t n, double threshold,
                    std::vector<uint32_t> &out);
void scanNotGreaterScalar(const double *vals, size_t n, double threshold,
                          std::vector<uint32_t> &out);
void scanNotGreaterVector(const double *vals, size_t n, double threshold,
                          std::vector<uint32_t> &out);

/** Whether the *Vector variants may be called on this CPU. */
bool wordsVectorAvailable();

} // namespace simd
} // namespace reaper

#endif // REAPER_SIMD_WORDS_H
