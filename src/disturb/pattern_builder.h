/**
 * @file
 * Aggressor access-pattern construction for disturbance profiling,
 * after zenhammer's PatternBuilder: given victim rows, derive the
 * aggressor rows of single-/double-/N-sided hammer patterns, and
 * schedule many victims into interference-free "waves" so one probe
 * cycle (write, hammer, read) measures a whole batch of rows at once.
 *
 * All row identifiers are flat (bank-major) row indices as used by
 * dram::Geometry and the testbed hammer op. Aggressor selection
 * respects physical adjacency: it never reaches across a bank or a
 * subarray boundary, and rows at subarray edges simply get fewer
 * aggressors (a victim with no reachable aggressor is unprofilable and
 * is dropped from schedules).
 */

#ifndef REAPER_DISTURB_PATTERN_BUILDER_H
#define REAPER_DISTURB_PATTERN_BUILDER_H

#include <cstdint>
#include <vector>

#include "dram/geometry.h"

namespace reaper {
namespace disturb {

/** One victim row with its aggressor set. */
struct HammerPattern
{
    uint64_t victim = 0;             ///< flat row under measurement
    std::vector<uint64_t> aggressors; ///< flat rows to activate
};

/** Builds aggressor patterns and interference-free schedules. */
class PatternBuilder
{
  public:
    /**
     * @param geometry chip geometry (copied; cheap value type)
     * @param sides aggressor count per victim: 1 = single-sided,
     *        2 = double-sided, N picks the N nearest wordlines
     *        alternating below/above the victim
     */
    explicit PatternBuilder(const dram::Geometry &geometry,
                            int sides = 2);

    int sides() const { return sides_; }

    /**
     * Aggressor rows of one victim: the nearest valid neighbors in
     * offset order -1, +1, -2, +2, ... until `sides` rows are found or
     * adjacency runs out (bank/subarray edges). Sorted ascending.
     */
    std::vector<uint64_t> aggressorsFor(uint64_t victim_row) const;

    /**
     * Minimum same-bank row distance between two victims hammered in
     * the same probe cycle such that neither victim's aggressor set
     * disturbs the other (aggressor offset reach + the 2-row coupling
     * blast radius).
     */
    uint32_t independentStride() const;

    /**
     * Partition victims into waves safe to hammer in one probe cycle:
     * within a wave, same-bank victims are at least independentStride()
     * rows apart (different banks never interact). Victims with no
     * reachable aggressor are dropped. Wave membership is a pure
     * function of the victim row (round-robin by in-bank row modulo
     * the stride), so schedules are deterministic for any input order;
     * each wave lists patterns sorted by victim row.
     */
    std::vector<std::vector<HammerPattern>>
    waves(const std::vector<uint64_t> &victims) const;

  private:
    dram::Geometry geometry_;
    int sides_;
};

} // namespace disturb
} // namespace reaper

#endif // REAPER_DISTURB_PATTERN_BUILDER_H
