#include "disturb/rowhammer_profiler.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"
#include "obs/obs.h"

namespace reaper {
namespace profiling {

namespace {

/** Binary-search state of one victim row within a wave. */
struct Search
{
    const disturb::HammerPattern *pattern = nullptr;
    uint64_t lo = 0; ///< highest count not observed to flip
    uint64_t hi = 0; ///< lowest count observed to flip
    bool resolved = false;
};

} // namespace

RowHammerProfiler::RowHammerProfiler(const ProfilerSpec &spec)
    : spec_(spec)
{
}

common::Expected<ProfilingResult>
RowHammerProfiler::profile(testbed::SoftMcHost &host,
                           const Conditions &target) const
{
    if (spec_.hammerSides < 1)
        return common::Error::invalidConfig(
            "rowhammer: hammerSides must be >= 1");
    if (spec_.hammerCountMin < 1 ||
        spec_.hammerCountMax < spec_.hammerCountMin)
        return common::Error::invalidConfig(
            "rowhammer: need 1 <= hammerCountMin <= hammerCountMax");
    if (spec_.hammerResolution < 1)
        return common::Error::invalidConfig(
            "rowhammer: hammerResolution must be >= 1");
    if (spec_.hammerPatterns.empty())
        return common::Error::invalidConfig(
            "rowhammer: need at least one hammer pattern");

    RowHammerConfig cfg;
    cfg.target = target;
    cfg.sides = spec_.hammerSides;
    cfg.countMax = spec_.hammerCountMax;
    cfg.countMin = spec_.hammerCountMin;
    cfg.resolution = spec_.hammerResolution;
    cfg.patterns = spec_.hammerPatterns;
    cfg.setTemperature = spec_.setTemperature;
    cfg.onWave = spec_.onIteration;
    try {
        return run(host, cfg).base;
    } catch (const testbed::TransientHostError &e) {
        return common::Error::fault(e.what());
    }
}

RowHammerRunResult
RowHammerProfiler::run(testbed::SoftMcHost &host,
                       const RowHammerConfig &cfg) const
{
    if (cfg.sides < 1)
        panic("RowHammerProfiler: sides must be >= 1");
    if (cfg.countMin < 1 || cfg.countMax < cfg.countMin)
        panic("RowHammerProfiler: bad count bracket [%llu, %llu]",
              static_cast<unsigned long long>(cfg.countMin),
              static_cast<unsigned long long>(cfg.countMax));
    if (cfg.resolution < 1)
        panic("RowHammerProfiler: resolution must be >= 1");
    if (cfg.patterns.empty())
        panic("RowHammerProfiler: need at least one hammer pattern");

    REAPER_OBS_SPAN(roundSpan, "profiling.rowhammer.round");

    dram::Geometry geometry = dram::Geometry::forCapacityBits(
        host.module().config().chipCapacityBits);
    std::vector<uint64_t> victims = cfg.victimRows;
    if (victims.empty()) {
        victims.resize(geometry.totalRows());
        for (uint64_t r = 0; r < geometry.totalRows(); ++r)
            victims[r] = r;
    }
    disturb::PatternBuilder builder(geometry, cfg.sides);
    std::vector<std::vector<disturb::HammerPattern>> waves =
        builder.waves(victims);

    if (cfg.setTemperature)
        host.setAmbient(cfg.target.temperature);

    RowHammerRunResult result;
    result.base.profile.setConditions(cfg.target);
    Seconds start = host.now();
    // row -> smallest flipping count over every pattern probed
    std::map<uint64_t, uint64_t> min_counts;
    bool stopped = false;

    // One probe cycle: rewrite the pattern (resetting activation
    // counters), hammer every listed search at `count(s)`, one
    // full-module read; returns the set of flat rows with a flip.
    std::vector<uint64_t> agg_scratch;
    auto probe = [&](dram::DataPattern dp,
                     const std::vector<std::pair<Search *, uint64_t>>
                         &counts) -> std::set<uint64_t> {
        REAPER_OBS_SPAN(probeSpan, "profiling.rowhammer.probe");
        host.writeAll(dp);
        // Group searches by probe count so each distinct count is one
        // hammer command (the batch is interference-free by wave
        // construction, so counters never mix between victims).
        std::map<uint64_t, std::vector<Search *>> by_count;
        for (const auto &[search, count] : counts)
            by_count[count].push_back(search);
        for (const auto &[count, searches] : by_count) {
            agg_scratch.clear();
            for (const Search *s : searches)
                agg_scratch.insert(agg_scratch.end(),
                                   s->pattern->aggressors.begin(),
                                   s->pattern->aggressors.end());
            host.hammer(agg_scratch, count);
        }
        std::vector<dram::ChipFailure> failures =
            host.readAndCompareAll();
        result.base.profile.add(failures);
        ++result.probeCycles;
        REAPER_OBS_COUNT("profiling.rowhammer.probes");
        std::set<uint64_t> flipped;
        for (const dram::ChipFailure &f : failures)
            flipped.insert(geometry.rowIndexOf(f.addr));
        return flipped;
    };

    int wave_index = 0;
    for (dram::DataPattern dp : cfg.patterns) {
        if (stopped)
            break;
        for (const std::vector<disturb::HammerPattern> &wave : waves) {
            if (stopped)
                break;
            REAPER_OBS_SPAN(waveSpan, "profiling.rowhammer.wave");

            // Elimination probe at the bracket maximum: rows that do
            // not flip at countMax are invulnerable under this pattern
            // and drop out of the search immediately.
            std::vector<Search> searches(wave.size());
            std::vector<std::pair<Search *, uint64_t>> batch;
            for (size_t i = 0; i < wave.size(); ++i) {
                searches[i].pattern = &wave[i];
                searches[i].lo = cfg.countMin;
                searches[i].hi = cfg.countMax;
                batch.emplace_back(&searches[i], cfg.countMax);
            }
            std::set<uint64_t> flipped = probe(dp, batch);
            for (Search &s : searches)
                if (!flipped.count(s.pattern->victim))
                    s.resolved = true; // invulnerable at countMax

            // Batched binary search: every unresolved row probes its
            // own bracket midpoint each cycle.
            for (;;) {
                batch.clear();
                for (Search &s : searches) {
                    if (s.resolved)
                        continue;
                    if (s.hi - s.lo <= cfg.resolution) {
                        s.resolved = true;
                        uint64_t row = s.pattern->victim;
                        auto it = min_counts.find(row);
                        if (it == min_counts.end() || s.hi < it->second)
                            min_counts[row] = s.hi;
                        continue;
                    }
                    batch.emplace_back(&s, s.lo + (s.hi - s.lo) / 2);
                }
                if (batch.empty())
                    break;
                flipped = probe(dp, batch);
                for (const auto &[search, count] : batch) {
                    if (flipped.count(search->pattern->victim))
                        search->hi = count;
                    else
                        search->lo = count;
                }
            }

            result.base.discoveryCurve.push_back(
                result.base.profile.size());
            ++wave_index;
            if (cfg.onWave &&
                !cfg.onWave(wave_index - 1, result.base.profile)) {
                stopped = true;
                break;
            }
        }
    }

    result.base.runtime = host.now() - start;
    result.base.iterationsRun = result.probeCycles;
    result.vulnerableRows.reserve(min_counts.size());
    for (const auto &[row, count] : min_counts)
        result.vulnerableRows.push_back({row, count});
    REAPER_OBS_COUNT_N("profiling.rowhammer.vulnerable_rows",
                       result.vulnerableRows.size());
    REAPER_OBS_COUNT_N("profiling.cells_found",
                       result.base.profile.size());
    return result;
}

void
ensureRowHammerRegistered()
{
    static const bool registered = [] {
        registerProfiler("rowhammer", [](const ProfilerSpec &spec) {
            return std::unique_ptr<Profiler>(
                new RowHammerProfiler(spec));
        });
        return true;
    }();
    (void)registered;
}

} // namespace profiling
} // namespace reaper
