#include "disturb/row_scout.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/logging.h"

namespace reaper {
namespace disturb {

RowScout::RowScout(const dram::Geometry &geometry,
                   const RowScoutOptions &options)
    : geometry_(geometry), options_(options)
{
    if (options_.binWidth <= 0)
        panic("RowScout: binWidth must be positive");
    if (options_.minGroupSize < 1)
        panic("RowScout: minGroupSize must be >= 1");
}

std::vector<ScoutedRow>
RowScout::rowRetentionTimes(
    const std::vector<profiling::RetentionProfile> &profiles) const
{
    // Smallest failing interval per (chip, flat row).
    std::map<std::pair<uint32_t, uint64_t>, Seconds> best;
    for (const profiling::RetentionProfile &profile : profiles) {
        Seconds interval = profile.conditions().refreshInterval;
        for (const dram::ChipFailure &f : profile.cells()) {
            auto key = std::make_pair(f.chip,
                                      geometry_.rowIndexOf(f.addr));
            auto it = best.find(key);
            if (it == best.end() || interval < it->second)
                best[key] = interval;
        }
    }
    std::vector<ScoutedRow> rows;
    rows.reserve(best.size());
    for (const auto &[key, interval] : best)
        rows.push_back({key.first, key.second, interval});
    return rows; // map iteration order == (chip, row) sorted
}

std::vector<RowGroup>
RowScout::scout(
    const std::vector<profiling::RetentionProfile> &profiles) const
{
    std::vector<ScoutedRow> rows = rowRetentionTimes(profiles);

    // Partition key: retention bin, plus (chip, bank) when groups must
    // not span banks. int64 bins are exact for any positive binWidth.
    struct Key
    {
        int64_t bin;
        uint32_t chip;
        uint32_t bank;
        bool operator<(const Key &o) const
        {
            if (bin != o.bin)
                return bin < o.bin;
            if (chip != o.chip)
                return chip < o.chip;
            return bank < o.bank;
        }
    };
    bool same_bank = options_.requireSameBank || options_.maxRowSpan > 0;
    std::map<Key, std::vector<ScoutedRow>> buckets;
    for (const ScoutedRow &r : rows) {
        Key k;
        k.bin = static_cast<int64_t>(r.retentionTime /
                                     options_.binWidth);
        k.chip = same_bank ? r.chip : 0;
        k.bank = same_bank
                     ? geometry_.bankOfRowIndex(r.rowFlat)
                     : 0;
        buckets[k].push_back(r);
    }

    std::vector<RowGroup> groups;
    for (auto &[key, members] : buckets) {
        std::sort(members.begin(), members.end());
        Seconds bin_start =
            static_cast<double>(key.bin) * options_.binWidth;
        if (options_.maxRowSpan == 0) {
            if (members.size() >= options_.minGroupSize)
                groups.push_back({bin_start, std::move(members)});
            continue;
        }
        // Greedy span split: walk rows in order, closing the group
        // whenever the next row would stretch it past maxRowSpan.
        size_t begin = 0;
        for (size_t i = 1; i <= members.size(); ++i) {
            bool close =
                i == members.size() ||
                geometry_.rowInBank(members[i].rowFlat) -
                        geometry_.rowInBank(members[begin].rowFlat) >
                    options_.maxRowSpan;
            if (!close)
                continue;
            if (i - begin >= options_.minGroupSize)
                groups.push_back(
                    {bin_start,
                     {members.begin() +
                          static_cast<ptrdiff_t>(begin),
                      members.begin() + static_cast<ptrdiff_t>(i)}});
            begin = i;
        }
    }
    // Buckets iterate in key order already; keep it explicit for the
    // span-split case where one bucket may emit several groups.
    std::stable_sort(groups.begin(), groups.end(),
                     [](const RowGroup &a, const RowGroup &b) {
                         if (a.binStart != b.binStart)
                             return a.binStart < b.binStart;
                         return a.rows.front() < b.rows.front();
                     });
    return groups;
}

} // namespace disturb
} // namespace reaper
