#include "disturb/pattern_builder.h"

#include <algorithm>

#include "common/logging.h"

namespace reaper {
namespace disturb {

PatternBuilder::PatternBuilder(const dram::Geometry &geometry, int sides)
    : geometry_(geometry), sides_(sides)
{
    if (sides < 1)
        panic("PatternBuilder: sides must be >= 1 (got %d)", sides);
}

std::vector<uint64_t>
PatternBuilder::aggressorsFor(uint64_t victim_row) const
{
    std::vector<uint64_t> aggs;
    aggs.reserve(static_cast<size_t>(sides_));
    // Nearest-first, below before above: -1, +1, -2, +2, ...
    for (int dist = 1; static_cast<int>(aggs.size()) < sides_; ++dist) {
        uint64_t row;
        bool any = false;
        if (geometry_.neighborRowIndex(victim_row, -dist, &row)) {
            aggs.push_back(row);
            any = true;
        }
        if (static_cast<int>(aggs.size()) < sides_ &&
            geometry_.neighborRowIndex(victim_row, dist, &row)) {
            aggs.push_back(row);
            any = true;
        }
        if (!any)
            break; // both directions clamped: adjacency exhausted
    }
    std::sort(aggs.begin(), aggs.end());
    return aggs;
}

uint32_t
PatternBuilder::independentStride() const
{
    // Aggressors sit within ceil(sides/2) rows of their victim and
    // couple 2 rows further. Keeping victims 2 * maxOffset + 3 apart
    // guarantees (a) no aggressor's blast reaches another victim and
    // (b) no two victims share an aggressor row (which would otherwise
    // accumulate both hammer counts).
    uint32_t max_offset = static_cast<uint32_t>((sides_ + 1) / 2);
    return 2 * max_offset + 3;
}

std::vector<std::vector<HammerPattern>>
PatternBuilder::waves(const std::vector<uint64_t> &victims) const
{
    uint32_t stride = independentStride();
    std::vector<std::vector<HammerPattern>> out(stride);
    std::vector<uint64_t> sorted = victims;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()),
                 sorted.end());
    for (uint64_t v : sorted) {
        HammerPattern p;
        p.victim = v;
        p.aggressors = aggressorsFor(v);
        if (p.aggressors.empty())
            continue; // no adjacency: unprofilable row
        // Same-bank victims in a wave share an in-bank residue class,
        // so they are >= stride rows apart; cross-bank rows never
        // interact.
        uint32_t wave = geometry_.rowInBank(v) % stride;
        out[wave].push_back(std::move(p));
    }
    out.erase(std::remove_if(out.begin(), out.end(),
                             [](const std::vector<HammerPattern> &w) {
                                 return w.empty();
                             }),
              out.end());
    return out;
}

} // namespace disturb
} // namespace reaper
