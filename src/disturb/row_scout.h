/**
 * @file
 * Retention-matched row grouping, after U-TRR's RowScout.
 *
 * TRR-aware attacks and refresh-mitigation studies need "canary" rows:
 * sets of rows whose weakest cells have closely matched retention
 * times, so a missed refresh manifests identically across the set.
 * RowScout mines exactly that out of data the campaign pipeline already
 * produces: given RetentionProfiles collected at increasing refresh
 * intervals, the retention time of a row is estimated as the smallest
 * profiled interval at which the row shows a failing cell, and rows in
 * the same estimate bin form a group (optionally constrained to a
 * single bank, or to a bounded row span so the group fits one
 * subarray neighborhood).
 *
 * Everything is deterministic and order-independent: output groups are
 * sorted by (retention bin, chip, bank, first row), rows within a group
 * by (chip, row).
 */

#ifndef REAPER_DISTURB_ROW_SCOUT_H
#define REAPER_DISTURB_ROW_SCOUT_H

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "dram/geometry.h"
#include "profiling/profile.h"

namespace reaper {
namespace disturb {

/** Grouping options. */
struct RowScoutOptions
{
    /** Retention-estimate bin width; rows match when their estimates
     *  fall in the same bin. */
    Seconds binWidth = 0.128;
    /** Smallest group worth reporting. */
    size_t minGroupSize = 2;
    /** Restrict groups to rows of a single (chip, bank). */
    bool requireSameBank = false;
    /** Max in-bank row distance between a group's first and last row
     *  (0 = unbounded). Implies requireSameBank for the split. */
    uint32_t maxRowSpan = 0;
};

/** One row with its estimated retention time. */
struct ScoutedRow
{
    uint32_t chip = 0;
    uint64_t rowFlat = 0;       ///< flat (bank-major) row index
    Seconds retentionTime = 0;  ///< smallest failing profiled interval

    bool
    operator<(const ScoutedRow &o) const
    {
        return chip != o.chip ? chip < o.chip : rowFlat < o.rowFlat;
    }
};

/** A set of retention-matched rows. */
struct RowGroup
{
    Seconds binStart = 0; ///< inclusive lower edge of the match bin
    std::vector<ScoutedRow> rows;
};

/** Groups rows with matched retention times out of profile data. */
class RowScout
{
  public:
    explicit RowScout(const dram::Geometry &geometry,
                      const RowScoutOptions &options = {});

    /**
     * Estimate per-row retention times from profiles and group matched
     * rows. Profiles may arrive in any order; only their conditions'
     * refreshInterval and cell sets matter. Rows failing in no profile
     * are unknown and never grouped.
     */
    std::vector<RowGroup>
    scout(const std::vector<profiling::RetentionProfile> &profiles) const;

    /**
     * The per-row retention estimates themselves (sorted by chip,
     * row): the smallest profiled interval at which the row fails.
     */
    std::vector<ScoutedRow> rowRetentionTimes(
        const std::vector<profiling::RetentionProfile> &profiles) const;

  private:
    dram::Geometry geometry_;
    RowScoutOptions options_;
};

} // namespace disturb
} // namespace reaper

#endif // REAPER_DISTURB_ROW_SCOUT_H
