/**
 * @file
 * Row-disturbance (RowHammer) vulnerability profiler.
 *
 * Finds, for every row of the module under test, the minimum hammer
 * count at which disturbance flips a bit (HCfirst), by binary-searching
 * the activation count through the host's hammer op. Rows are probed in
 * interference-free waves (disturb::PatternBuilder), so one probe cycle
 * — write pattern, hammer every unresolved victim's aggressors at its
 * bracket midpoint, one full-module read — advances the search of a
 * whole batch of rows at once. Probes run with refresh enabled: no
 * retention exposure accrues, so every read-compare mismatch is a
 * disturbance flip.
 *
 * The profiler registers in the string-keyed factory as "rowhammer" and
 * emits a RetentionProfile-compatible cell set (the union of every cell
 * observed to flip at any probed count, i.e. the cells vulnerable at or
 * below the search maximum), so campaign stores, the v2 binary format,
 * the refresh directory, and REAPER-NET serving all work unchanged.
 * Like every profiler it is deterministic: the result is a pure
 * function of the module and the spec, with no internal randomness.
 */

#ifndef REAPER_DISTURB_ROWHAMMER_PROFILER_H
#define REAPER_DISTURB_ROWHAMMER_PROFILER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "disturb/pattern_builder.h"
#include "profiling/profile.h"
#include "profiling/profiler.h"
#include "testbed/softmc_host.h"

namespace reaper {
namespace profiling {

/** Configuration of one disturbance-profiling round. */
struct RowHammerConfig
{
    /** Conditions stamped on the emitted profile (and the chamber
     *  setpoint when setTemperature is on). */
    Conditions target{};
    /** Aggressor sidedness (see disturb::PatternBuilder). */
    int sides = 2;
    /** Hammer-count search bracket: probe at most countMax and assume
     *  counts below countMin flip nothing. */
    uint64_t countMax = 131072;
    uint64_t countMin = 1024;
    /** Stop once a row's bracket is at most this wide. */
    uint64_t resolution = 2048;
    /** Data patterns hammered per row (DPD for disturbance). */
    std::vector<dram::DataPattern> patterns = {
        dram::DataPattern::RowStripe, dram::DataPattern::RowStripeInv};
    /** Command the chamber to the target temperature first. */
    bool setTemperature = true;
    /** Flat rows to probe; empty probes every row of the module. */
    std::vector<uint64_t> victimRows;
    /** Optional per-wave observer; returning false stops early. */
    std::function<bool(int, const RetentionProfile &)> onWave;
};

/** Per-row search outcome: the minimum flipping hammer count found. */
struct RowMinCount
{
    uint64_t row = 0;      ///< flat (bank-major) row index
    uint64_t minCount = 0; ///< smallest count observed to flip the row
};

/** Result of one disturbance round, beyond the profile itself. */
struct RowHammerRunResult
{
    ProfilingResult base;
    /** Vulnerable rows with their HCfirst estimates, sorted by row;
     *  rows that survived countMax on every pattern are absent. */
    std::vector<RowMinCount> vulnerableRows;
    /** Probe cycles issued (write + hammer batch + read each). */
    int probeCycles = 0;
};

/** Factory name "rowhammer": minimum-hammer-count profiler. */
class RowHammerProfiler : public Profiler
{
  public:
    RowHammerProfiler() = default;
    /** Configure from a mechanism-agnostic spec (factory path). */
    explicit RowHammerProfiler(const ProfilerSpec &spec);

    std::string name() const override { return "rowhammer"; }

    common::Expected<ProfilingResult>
    profile(testbed::SoftMcHost &host,
            const Conditions &target) const override;

    /** Run one round with full control and the per-row result. */
    RowHammerRunResult run(testbed::SoftMcHost &host,
                           const RowHammerConfig &cfg) const;

  private:
    ProfilerSpec spec_;
};

/**
 * Idempotently register "rowhammer" in the profiler factory. Including
 * this header (directly or via reaper/reaper.h) is enough: the inline
 * variable below runs the registration during static initialization of
 * every including translation unit, which also keeps the linker from
 * dropping this library's objects from static-archive links.
 */
void ensureRowHammerRegistered();

namespace detail {
[[maybe_unused]] inline const bool kRowHammerRegistered =
    (ensureRowHammerRegistered(), true);
} // namespace detail

} // namespace profiling
} // namespace reaper

#endif // REAPER_DISTURB_ROWHAMMER_PROFILER_H
