/**
 * @file
 * Closed-loop query workload generator for the serving benchmarks.
 *
 * Real profile traffic is skewed: a few hot chips (the modules behind
 * the busiest channels) absorb most refresh-decision lookups, with a
 * long tail of cold ones — the classic zipfian shape. The generator
 * produces a deterministic request stream (same seed -> same stream,
 * independent of consumer threading) with configurable:
 *
 *  - zipf exponent over the known profile keys (0 = uniform),
 *  - fraction of queries aimed at keys absent from the store
 *    (exercises the negative cache),
 *  - IsRowWeak vs RefreshBin mix, and
 *  - row range per chip.
 */

#ifndef REAPER_SERVE_WORKLOAD_H
#define REAPER_SERVE_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "serve/query_engine.h"

namespace reaper {
namespace serve {

/** Shape of the generated query stream. */
struct WorkloadConfig
{
    /** Known profile keys, hottest first (zipf rank order). */
    std::vector<std::string> keys;
    /** Zipf exponent s: P(rank r) ~ 1/r^s. 0 = uniform. */
    double zipfExponent = 0.99;
    /** Fraction of queries against keys not in the store. */
    double unknownFraction = 0.0;
    /** Rows per chip (queried uniformly). */
    uint64_t rowsPerChip = 1ull << 15;
    /** Fraction of queries that are RefreshBin (rest IsRowWeak). */
    double binFraction = 0.5;
};

/** Deterministic zipfian request stream. */
class Workload
{
  public:
    Workload(WorkloadConfig cfg, uint64_t seed);

    /** The next request; ids are sequential from 0. */
    Request next();

    /** Requests generated so far (== next id). */
    uint64_t generated() const { return next_id_; }

    const WorkloadConfig &config() const { return cfg_; }

  private:
    size_t sampleRank();

    WorkloadConfig cfg_;
    Rng rng_;
    uint64_t next_id_ = 0;
    /** Cumulative zipf weights over key ranks. */
    std::vector<double> cdf_;
};

} // namespace serve
} // namespace reaper

#endif // REAPER_SERVE_WORKLOAD_H
