#include "serve/refresh_directory.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace reaper {
namespace serve {

namespace {

void
validate(const DirectoryConfig &cfg)
{
    if (cfg.binIntervals.size() < 2)
        panic("RefreshDirectory: need at least two bins "
              "(fast + default)");
    if (!std::is_sorted(cfg.binIntervals.begin(),
                        cfg.binIntervals.end()))
        panic("RefreshDirectory: binIntervals must be sorted "
              "fastest-first");
    if (cfg.rowBits == 0)
        panic("RefreshDirectory: rowBits must be > 0");
}

} // namespace

uint64_t
RefreshDirectory::rowKeyOf(uint32_t chip, uint64_t row)
{
    // Same packing as mitigation::Raidr::rowKey so exact-table results
    // match RAIDR's binning decisions bit for bit.
    return (static_cast<uint64_t>(chip) << 48) ^ row;
}

void
RefreshDirectory::buildFrom(
    std::vector<std::pair<uint64_t, uint32_t>> rows)
{
    // Sort by key; on duplicates keep the fastest (lowest) bin.
    std::sort(rows.begin(), rows.end());
    row_keys_.reserve(rows.size());
    row_bins_.reserve(rows.size());
    for (const auto &[key, bin] : rows) {
        if (!row_keys_.empty() && row_keys_.back() == key) {
            row_bins_.back() = std::min(row_bins_.back(), bin);
            continue;
        }
        row_keys_.push_back(key);
        row_bins_.push_back(bin);
    }

    if (!cfg_.useBloomFilters)
        return;
    size_t expected = std::max<size_t>(row_keys_.size(), 64);
    for (size_t i = 0; i + 1 < cfg_.binIntervals.size(); ++i)
        filters_.push_back(mitigation::BloomFilter::forCapacity(
            expected, cfg_.bloomFpRate, cfg_.bloomSeed + i));
    for (size_t i = 0; i < row_keys_.size(); ++i)
        filters_.at(row_bins_[i]).insert(row_keys_[i]);
    // The exact table stays resident as the cell index's row summary;
    // hot-path queries go through the filters.
}

RefreshDirectory
RefreshDirectory::compile(const profiling::RetentionProfile &profile,
                          const DirectoryConfig &cfg)
{
    validate(cfg);
    RefreshDirectory dir;
    dir.cfg_ = cfg;
    dir.cond_ = profile.conditions();
    dir.cells_ = profile.cells();

    std::vector<std::pair<uint64_t, uint32_t>> rows;
    rows.reserve(dir.cells_.size());
    for (const auto &f : dir.cells_)
        rows.emplace_back(rowKeyOf(f.chip, f.addr / cfg.rowBits), 0u);
    dir.buildFrom(std::move(rows));
    return dir;
}

common::Expected<RefreshDirectory>
RefreshDirectory::compileView(const profiling::ProfileView &view,
                              const DirectoryConfig &cfg)
{
    validate(cfg);
    RefreshDirectory dir;
    dir.cfg_ = cfg;
    dir.cond_ = view.conditions();
    // cellCount is cross-checked against the CRC-covered index at
    // open, so reserving it is safe (no hostile-header preallocation).
    dir.cells_.reserve(view.cellCount());
    common::Status walked = view.forEachBlock(
        [&](const dram::ChipFailure *cells, size_t n) {
            dir.cells_.insert(dir.cells_.end(), cells, cells + n);
        });
    if (!walked)
        return walked.error();
    std::vector<std::pair<uint64_t, uint32_t>> rows;
    rows.reserve(dir.cells_.size());
    for (const auto &f : dir.cells_)
        rows.emplace_back(rowKeyOf(f.chip, f.addr / cfg.rowBits), 0u);
    dir.buildFrom(std::move(rows));
    return dir;
}

RefreshDirectory
RefreshDirectory::compileBinned(
    const std::vector<profiling::RetentionProfile> &profiles,
    const DirectoryConfig &cfg)
{
    validate(cfg);
    if (profiles.size() != cfg.binIntervals.size() - 1)
        panic("RefreshDirectory::compileBinned: expected %zu profiles, "
              "got %zu",
              cfg.binIntervals.size() - 1, profiles.size());
    RefreshDirectory dir;
    dir.cfg_ = cfg;
    if (!profiles.empty())
        dir.cond_ = profiles.back().conditions();

    profiling::RetentionProfile merged;
    std::vector<std::pair<uint64_t, uint32_t>> rows;
    for (size_t i = 0; i < profiles.size(); ++i) {
        merged.merge(profiles[i]);
        for (const auto &f : profiles[i].cells())
            rows.emplace_back(rowKeyOf(f.chip, f.addr / cfg.rowBits),
                              static_cast<uint32_t>(i));
    }
    dir.cells_ = merged.cells();
    dir.buildFrom(std::move(rows));
    return dir;
}

bool
RefreshDirectory::isRowWeak(uint32_t chip, uint64_t row) const
{
    uint64_t key = rowKeyOf(chip, row);
    if (cfg_.useBloomFilters) {
        for (const auto &filter : filters_)
            if (filter.mayContain(key))
                return true;
        return false;
    }
    return std::binary_search(row_keys_.begin(), row_keys_.end(), key);
}

uint32_t
RefreshDirectory::refreshBinFor(uint32_t chip, uint64_t row) const
{
    uint64_t key = rowKeyOf(chip, row);
    if (cfg_.useBloomFilters) {
        // Fastest-first probe: a false positive in filter i claims the
        // row for bin i, i.e. only ever *speeds up* its refresh.
        for (uint32_t i = 0; i < filters_.size(); ++i)
            if (filters_[i].mayContain(key))
                return i;
        return defaultBin();
    }
    auto it =
        std::lower_bound(row_keys_.begin(), row_keys_.end(), key);
    if (it == row_keys_.end() || *it != key)
        return defaultBin();
    return row_bins_[static_cast<size_t>(it - row_keys_.begin())];
}

Seconds
RefreshDirectory::rowInterval(uint32_t chip, uint64_t row) const
{
    return cfg_.binIntervals.at(refreshBinFor(chip, row));
}

std::vector<dram::ChipFailure>
RefreshDirectory::weakCellsInRow(uint32_t chip, uint64_t row) const
{
    dram::ChipFailure lo{chip, row * cfg_.rowBits};
    dram::ChipFailure hi{chip, (row + 1) * cfg_.rowBits};
    auto first = std::lower_bound(cells_.begin(), cells_.end(), lo);
    auto last = std::lower_bound(first, cells_.end(), hi);
    return {first, last};
}

uint32_t
RefreshDirectory::defaultBin() const
{
    return static_cast<uint32_t>(cfg_.binIntervals.size() - 1);
}

size_t
RefreshDirectory::sizeBytes() const
{
    size_t bytes = sizeof(*this);
    bytes += row_keys_.capacity() * sizeof(uint64_t);
    bytes += row_bins_.capacity() * sizeof(uint32_t);
    bytes += cells_.capacity() * sizeof(dram::ChipFailure);
    bytes += bloomStorageBits() / 8;
    return bytes;
}

size_t
RefreshDirectory::bloomStorageBits() const
{
    size_t bits = 0;
    for (const auto &filter : filters_)
        bits += filter.sizeBits();
    return bits;
}

} // namespace serve
} // namespace reaper
