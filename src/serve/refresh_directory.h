/**
 * @file
 * Immutable, query-optimized compilation of a retention profile.
 *
 * A RetentionProfile is the *collection* format: a flat sorted list of
 * failing cells, ideal for merging rounds and scoring coverage, and
 * terrible for the mitigation hot path, where every refresh decision
 * is a "which bin is this row in?" lookup (RAIDR keeps exactly this
 * structure in controller SRAM). A RefreshDirectory compiles a profile
 * once into:
 *
 *  - a sorted weak-row index with a RAIDR-style refresh-bin assignment
 *    per row (O(log w) binary-search lookups, w = weak rows), and
 *  - optionally one Bloom filter per non-default bin, reusing
 *    mitigation::BloomFilter (O(k) lookups in a few KB). Filter false
 *    positives only ever move a row to a *faster* bin — the directory
 *    never under-refreshes relative to the exact table — so the Bloom
 *    variant is safe by the same argument as RAIDR's hardware.
 *
 * The compiled directory is immutable: concurrent readers need no
 * synchronization, which is what lets serve::ProfileCache hand one
 * shared instance to every QueryEngine worker.
 */

#ifndef REAPER_SERVE_REFRESH_DIRECTORY_H
#define REAPER_SERVE_REFRESH_DIRECTORY_H

#include <cstdint>
#include <vector>

#include "common/expected.h"
#include "common/units.h"
#include "mitigation/bloom.h"
#include "profiling/profile.h"
#include "profiling/profile_view.h"

namespace reaper {
namespace serve {

/** Compilation parameters of a RefreshDirectory. */
struct DirectoryConfig
{
    /**
     * Bin refresh intervals, fastest first; the last bin is the
     * default for rows with no profiled failures (same convention as
     * mitigation::RaidrConfig).
     */
    std::vector<Seconds> binIntervals = {0.064, 0.256, 1.024};
    /** Bits per row (cell address -> row number). */
    uint64_t rowBits = 2048ull * 8;
    /** Compile per-bin Bloom filters instead of the exact row table. */
    bool useBloomFilters = false;
    double bloomFpRate = 1e-3;
    /** Hash-family seed for the per-bin filters. */
    uint64_t bloomSeed = 0xD12EC7032Full;
};

/** Immutable compiled lookup structure over one profile's weak rows. */
class RefreshDirectory
{
  public:
    /**
     * Compile a single profile conservatively: every row containing a
     * profiled failing cell goes to the fastest bin (bin 0), all other
     * rows to the default bin. Matches Raidr::applyProfile.
     */
    static RefreshDirectory compile(
        const profiling::RetentionProfile &profile,
        const DirectoryConfig &cfg = {});

    /**
     * Compile straight from a lazy profiling::ProfileView, streaming
     * cells block by block instead of materializing an intermediate
     * RetentionProfile (one fewer full copy of the cell list on the
     * cold path). The result is identical to
     * compile(view.materialize(), cfg). Errors: Corrupt (a damaged
     * block aborted the walk).
     */
    static common::Expected<RefreshDirectory> compileView(
        const profiling::ProfileView &view,
        const DirectoryConfig &cfg = {});

    /**
     * Full multi-interval binning: profiles[i] holds the failing cells
     * at binIntervals[i+1]; each weak row lands in the fastest bin it
     * needs. profiles.size() must equal binIntervals.size() - 1
     * (matches Raidr::applyBinnedProfiles).
     */
    static RefreshDirectory compileBinned(
        const std::vector<profiling::RetentionProfile> &profiles,
        const DirectoryConfig &cfg = {});

    /**
     * Whether the row holds any profiled failing cell. One-sided under
     * Bloom filters: may report a clean row weak (extra refreshes),
     * never a weak row clean.
     */
    bool isRowWeak(uint32_t chip, uint64_t row) const;

    /**
     * Refresh-bin index of a row (0 = fastest; binIntervals.size()-1 =
     * default). Under Bloom filters the answer is never slower than
     * the exact table's (one-sided: no under-refresh).
     */
    uint32_t refreshBinFor(uint32_t chip, uint64_t row) const;

    /** Refresh interval applied to a row: binIntervals[refreshBinFor]. */
    Seconds rowInterval(uint32_t chip, uint64_t row) const;

    /**
     * The profiled failing cells within one row, sorted by address
     * (exact in both variants; the cell index is always kept).
     */
    std::vector<dram::ChipFailure> weakCellsInRow(uint32_t chip,
                                                  uint64_t row) const;

    /** Index of the default (slowest) bin. */
    uint32_t defaultBin() const;

    size_t weakRowCount() const { return row_keys_.size(); }
    size_t weakCellCount() const { return cells_.size(); }

    /** Conditions the source profile was collected at. */
    const profiling::Conditions &conditions() const { return cond_; }

    const DirectoryConfig &config() const { return cfg_; }

    /**
     * Resident size of the compiled structure in bytes (used by
     * ProfileCache for byte-accounted eviction).
     */
    size_t sizeBytes() const;

    /** Total Bloom-filter storage in bits (0 in the exact variant). */
    size_t bloomStorageBits() const;

  private:
    RefreshDirectory() = default;

    static uint64_t rowKeyOf(uint32_t chip, uint64_t row);
    void buildFrom(std::vector<std::pair<uint64_t, uint32_t>> rows);

    DirectoryConfig cfg_;
    profiling::Conditions cond_;
    /** Sorted row keys of weak rows; parallel to row_bins_. */
    std::vector<uint64_t> row_keys_;
    std::vector<uint32_t> row_bins_;
    /** Sorted unique failing cells (per-row weak-cell index). */
    std::vector<dram::ChipFailure> cells_;
    /** One filter per non-default bin (Bloom variant only). */
    std::vector<mitigation::BloomFilter> filters_;
};

} // namespace serve
} // namespace reaper

#endif // REAPER_SERVE_REFRESH_DIRECTORY_H
