/**
 * @file
 * Serving observability: lock-cheap counters and fixed-bucket latency
 * histograms for the profile query path.
 *
 * Every QueryEngine worker records into the same Metrics instance from
 * its hot loop, so recording must be cheap and contention-free:
 * counters are relaxed atomics, and the latency histogram has a fixed
 * geometric bucket layout (no allocation, one relaxed fetch_add per
 * sample). Percentiles are computed on demand from a snapshot of the
 * bucket counts; with 8 buckets per decade the p50/p95/p99 estimates
 * carry ~15% bucket-boundary error, which is plenty for dashboards and
 * regression gates.
 *
 * json() emits the whole snapshot as a single JSON object — the schema
 * served by bench_serve/serve_daemon and documented in DESIGN.md §9.
 */

#ifndef REAPER_SERVE_METRICS_H
#define REAPER_SERVE_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace reaper {
namespace serve {

/** Point-in-time copy of every metric (plain integers, consistent
 *  enough for reporting). */
struct MetricsSnapshot
{
    uint64_t completed = 0;   ///< responses produced
    uint64_t hits = 0;        ///< served from a cached directory
    uint64_t misses = 0;      ///< required a store load + compile
    uint64_t negativeHits = 0;///< served from the negative cache
    uint64_t unknown = 0;     ///< key absent from the store
    uint64_t rejected = 0;    ///< bounced by queue backpressure
    double p50Us = 0.0;       ///< request latency percentiles (µs)
    double p95Us = 0.0;
    double p99Us = 0.0;
    double maxUs = 0.0;       ///< upper edge of the highest hit bucket
};

/** Shared, thread-safe serving metrics. */
class Metrics
{
  public:
    /** Geometric latency buckets: [100 ns, 10 s), 8 per decade. */
    static constexpr size_t kBuckets = 65;

    Metrics() = default;

    void recordHit() { hits_.fetch_add(1, kRelaxed); }
    void recordMiss() { misses_.fetch_add(1, kRelaxed); }
    void recordNegativeHit() { negative_.fetch_add(1, kRelaxed); }
    void recordUnknown() { unknown_.fetch_add(1, kRelaxed); }
    void recordRejected() { rejected_.fetch_add(1, kRelaxed); }

    /** Record one completed request and its latency. */
    void recordLatency(double seconds);

    /** Latency at quantile q in [0, 1], in microseconds (bucket upper
     *  edge; 0 when nothing was recorded). */
    double latencyPercentileUs(double q) const;

    MetricsSnapshot snapshot() const;

    /** The snapshot as a compact JSON object (one line). */
    std::string json() const;

    void reset();

  private:
    static constexpr std::memory_order kRelaxed =
        std::memory_order_relaxed;

    /** Bucket index of a latency sample. */
    static size_t bucketOf(double seconds);
    /** Upper edge of bucket i, in seconds. */
    static double bucketHi(size_t i);

    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> negative_{0};
    std::atomic<uint64_t> unknown_{0};
    std::atomic<uint64_t> rejected_{0};
    std::array<std::atomic<uint64_t>, kBuckets> latency_{};
};

} // namespace serve
} // namespace reaper

#endif // REAPER_SERVE_METRICS_H
