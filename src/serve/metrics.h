/**
 * @file
 * Serving observability: lock-cheap counters and fixed-bucket latency
 * histograms for the profile query path.
 *
 * Metrics is now a thin shim over the obs metric primitives (its
 * counter/histogram layout was generalized into obs::Counter and
 * obs::Histogram): same public API, same JSON schema, but backed by a
 * *private* obs::MetricRegistry so every Metrics instance is an
 * isolated metric set — two engines in one process (or one test
 * binary) never share counts. The registry() accessor exposes the
 * backing registry for Prometheus export.
 *
 * Every QueryEngine worker records into the same Metrics instance from
 * its hot loop, so recording must stay cheap and contention-free:
 * counters are relaxed atomics, and the latency histogram has a fixed
 * geometric bucket layout (no allocation, one relaxed fetch_add per
 * sample). With 8 buckets per decade the p50/p95/p99 estimates carry
 * ~15% bucket-boundary error, which is plenty for dashboards and
 * regression gates.
 *
 * json() emits the whole snapshot as a single JSON object — the schema
 * served by bench_serve/serve_daemon and documented in DESIGN.md §9.
 */

#ifndef REAPER_SERVE_METRICS_H
#define REAPER_SERVE_METRICS_H

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace reaper {
namespace serve {

/** Point-in-time copy of every metric (plain integers, consistent
 *  enough for reporting). */
struct MetricsSnapshot
{
    uint64_t completed = 0;   ///< responses produced
    uint64_t hits = 0;        ///< served from a cached directory
    uint64_t misses = 0;      ///< required a store load + compile
    uint64_t negativeHits = 0;///< served from the negative cache
    uint64_t unknown = 0;     ///< key absent from the store
    uint64_t rejected = 0;    ///< bounced by queue backpressure
    double p50Us = 0.0;       ///< request latency percentiles (µs)
    double p95Us = 0.0;
    double p99Us = 0.0;
    double maxUs = 0.0;       ///< upper edge of the highest hit bucket
};

/** Shared, thread-safe serving metrics. */
class Metrics
{
  public:
    /** Geometric latency buckets: [100 ns, 10 s), 8 per decade. */
    static constexpr size_t kBuckets = obs::Histogram::kBuckets;

    Metrics();

    void recordHit() { hits_.add(); }
    void recordMiss() { misses_.add(); }
    void recordNegativeHit() { negative_.add(); }
    void recordUnknown() { unknown_.add(); }
    void recordRejected() { rejected_.add(); }

    /** Record one completed request and its latency. */
    void recordLatency(double seconds)
    {
        completed_.add();
        latency_.record(seconds);
    }

    /** Latency at quantile q in [0, 1], in microseconds (bucket upper
     *  edge; 0 when nothing was recorded). */
    double latencyPercentileUs(double q) const
    {
        return latency_.percentile(q) * 1e6;
    }

    MetricsSnapshot snapshot() const;

    /** The snapshot as a compact JSON object (one line). */
    std::string json() const;

    void reset() { registry_.resetAll(); }

    /** The backing registry (e.g. for Prometheus text export). */
    obs::MetricRegistry &registry() { return registry_; }
    const obs::MetricRegistry &registry() const { return registry_; }

  private:
    /** Private registry: each Metrics is an isolated metric set. */
    obs::MetricRegistry registry_;
    obs::Counter &completed_;
    obs::Counter &hits_;
    obs::Counter &misses_;
    obs::Counter &negative_;
    obs::Counter &unknown_;
    obs::Counter &rejected_;
    obs::Histogram &latency_;
};

} // namespace serve
} // namespace reaper

#endif // REAPER_SERVE_METRICS_H
