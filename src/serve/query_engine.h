/**
 * @file
 * Metered profile-query request engine.
 *
 * The serving boundary of the system: producers submit point lookups
 * ("is row r of chip c weak?", "which refresh bin?") against profile
 * keys, and a fixed pool of workers answers them through the
 * ProfileCache. The engine enforces the disciplines a memory-
 * controller-facing service needs:
 *
 *  - **Bounded queue + explicit backpressure.** trySubmit never blocks
 *    the producer: a full queue returns Submit::Rejected immediately
 *    (counted in Metrics), so overload degrades by shedding, not by
 *    deadlocking the caller.
 *  - **Batch dequeue.** Workers drain up to batchSize requests per
 *    wakeup, amortizing the queue lock the same way the fleet engine
 *    chunks its task counter.
 *  - **Deterministic results.** A response depends only on its request
 *    and the store contents, and is keyed by the request id — the set
 *    of responses is identical at any worker count (tests/
 *    test_serve.cc runs the same stream at 1, 2, and 8 workers).
 *  - **Graceful drain.** drain() stops accepting, lets the workers
 *    finish every accepted request, and joins them: accepted requests
 *    are never dropped.
 *
 * Responses are delivered through a user sink (called concurrently
 * from workers) or, by default, collected internally and handed out by
 * takeResponses() after drain().
 */

#ifndef REAPER_SERVE_QUERY_ENGINE_H
#define REAPER_SERVE_QUERY_ENGINE_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/units.h"
#include "serve/metrics.h"
#include "serve/profile_cache.h"

namespace reaper {
namespace serve {

/** What a request asks of the directory. */
enum class QueryKind
{
    IsRowWeak,  ///< any profiled failing cell in the row?
    RefreshBin, ///< RAIDR bin index + interval for the row
};

/** One profile lookup. */
struct Request
{
    uint64_t id = 0;       ///< caller-chosen correlation id
    QueryKind kind = QueryKind::RefreshBin;
    std::string key;       ///< profile key (ProfileStore::profileKey)
    uint32_t chip = 0;
    uint64_t row = 0;
};

/** Terminal status of a request. */
enum class ResponseStatus
{
    Ok,             ///< answered from a compiled directory
    UnknownProfile, ///< no profile stored under the key
};

/** The answer to one request, keyed by the request id. */
struct Response
{
    uint64_t id = 0;
    ResponseStatus status = ResponseStatus::Ok;
    bool weak = false;     ///< IsRowWeak answer (also filled for bins)
    uint32_t bin = 0;      ///< RefreshBin answer
    Seconds interval = 0;  ///< binIntervals[bin]
    /** How the cache served it (Hit/Miss/...); informational only —
     *  not deterministic across worker counts. */
    CacheOutcome source = CacheOutcome::NotFound;
};

/** Engine shape. */
struct EngineConfig
{
    unsigned workers = 4;
    size_t queueCapacity = 4096;
    /** Max requests a worker takes per queue lock acquisition. */
    size_t batchSize = 32;
};

/** Multi-worker request engine over a ProfileCache. */
class QueryEngine
{
  public:
    using ResponseSink = std::function<void(const Response &)>;

    /** Outcome of a submission attempt. */
    enum class Submit
    {
        Accepted,
        Rejected, ///< queue full (backpressure) — retry later
        Stopped,  ///< engine is draining/stopped
    };

    /**
     * Start the worker pool. `sink`, when given, is invoked from
     * worker threads (must be thread-safe); otherwise responses are
     * collected for takeResponses(). `metrics` may be shared across
     * engines; null disables metering.
     */
    QueryEngine(ProfileCache &cache, EngineConfig cfg,
                Metrics *metrics = nullptr,
                ResponseSink sink = nullptr);

    /** Drains and joins the workers. */
    ~QueryEngine();

    QueryEngine(const QueryEngine &) = delete;
    QueryEngine &operator=(const QueryEngine &) = delete;

    /**
     * Enqueue a request without ever blocking: full queue -> Rejected,
     * draining engine -> Stopped. Accepted requests are guaranteed a
     * response (even across drain()).
     */
    Submit trySubmit(Request req);

    /**
     * Enqueue a batch under one lock acquisition (the producer-side
     * mirror of batch dequeue). Accepts a prefix of `reqs` up to the
     * free queue capacity and returns its length; the caller retries
     * the rest after backpressure clears. Returns 0 when stopped (a
     * rejected remainder is also counted once in Metrics).
     */
    size_t trySubmitBatch(std::vector<Request> &reqs, size_t offset);

    /**
     * Stop accepting, process everything already accepted, and join
     * the workers. Idempotent.
     */
    void drain();

    /**
     * The internally collected responses (only when no sink was
     * given), cleared on return. Call after drain() for the complete
     * set.
     */
    std::vector<Response> takeResponses();

    /** Requests accepted so far. */
    uint64_t accepted() const;
    /** Requests answered so far. */
    uint64_t completed() const;

    const EngineConfig &config() const { return cfg_; }

  private:
    struct Timed
    {
        Request req;
        std::chrono::steady_clock::time_point enqueued;
    };

    void workerLoop();
    Response answer(const Request &req);
    void deliver(const Response &resp, double latency_s,
                 CacheOutcome source);

    ProfileCache &cache_;
    EngineConfig cfg_;
    Metrics *metrics_;
    ResponseSink sink_;

    mutable std::mutex mtx_;
    std::condition_variable queue_cv_;
    std::deque<Timed> queue_;
    bool accepting_ = true;
    uint64_t accepted_ = 0;
    std::atomic<uint64_t> completed_{0};
    std::vector<Response> collected_;
    std::vector<std::thread> workers_;
};

} // namespace serve
} // namespace reaper

#endif // REAPER_SERVE_QUERY_ENGINE_H
