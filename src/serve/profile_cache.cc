#include "serve/profile_cache.h"

#include <algorithm>
#include <functional>

namespace reaper {
namespace serve {

namespace {

size_t
roundUpPow2(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/**
 * Nominal accounted size of a retained ProfileView: the mapping is
 * file-backed (reclaimable under memory pressure), so charging the
 * file size would evict everything for bytes that are not resident.
 * Only the decoded-block memo truly occupies memory, and point
 * lookups keep that to a handful of blocks.
 */
constexpr size_t kViewEntryBytes = 4096;

} // namespace

ProfileCache::ProfileCache(const campaign::ProfileStore &store,
                           CacheConfig cfg)
    : store_(store),
      cfg_(cfg),
      hits_(registry_.counter("cache.hits")),
      misses_(registry_.counter("cache.misses")),
      negativeHits_(registry_.counter("cache.negative_hits")),
      loads_(registry_.counter("cache.loads")),
      failedLoads_(registry_.counter("cache.failed_loads")),
      viewHits_(registry_.counter("cache.view_hits")),
      viewLoads_(registry_.counter("cache.view_loads")),
      evictions_(registry_.counter("cache.evictions")),
      bytes_(registry_.gauge("cache.bytes")),
      entries_(registry_.gauge("cache.entries"))
{
    size_t n = roundUpPow2(std::max<size_t>(cfg_.shards, 1));
    cfg_.shards = n;
    shardCapacity_ = std::max<size_t>(cfg_.capacityBytes / n, 1);
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ProfileCache::Shard &
ProfileCache::shardFor(const std::string &key)
{
    size_t h = std::hash<std::string>{}(key);
    return *shards_[h & (shards_.size() - 1)];
}

CacheResult
ProfileCache::loadAndCompile(
    const std::string &key,
    std::shared_ptr<const profiling::ProfileView> *viewOut)
{
    common::Expected<profiling::ProfileView> opened =
        store_.openView(key);
    if (opened) {
        auto view = std::make_shared<const profiling::ProfileView>(
            std::move(opened).value());
        common::Expected<RefreshDirectory> compiled =
            RefreshDirectory::compileView(*view, cfg_.directory);
        if (compiled) {
            if (viewOut && cfg_.serveFromViews)
                *viewOut = view;
            return {std::make_shared<const RefreshDirectory>(
                        std::move(compiled).value()),
                    CacheOutcome::Miss};
        }
    } else if (opened.error().category ==
               common::ErrorCategory::NotFound) {
        return {nullptr, CacheOutcome::NotFound};
    }
    // v1 text base (no block index), or a view that would not open or
    // decode: the eager sniffing reader is the robust path.
    common::Expected<profiling::RetentionProfile> profile =
        store_.load(key);
    if (!profile)
        return {nullptr, CacheOutcome::NotFound};
    auto dir = std::make_shared<const RefreshDirectory>(
        RefreshDirectory::compile(profile.value(), cfg_.directory));
    return {std::move(dir), CacheOutcome::Miss};
}

void
ProfileCache::insertLocked(
    Shard &shard, const std::string &key,
    std::shared_ptr<const RefreshDirectory> dir,
    std::shared_ptr<const profiling::ProfileView> view, bool negative)
{
    auto old = shard.map.find(key);
    if (old != shard.map.end()) {
        // Replacement (e.g. a compile upgrading a view-only entry):
        // keep the old view rather than dropping its decoded blocks.
        if (!view && !negative)
            view = old->second.view;
        shard.bytes -= old->second.bytes;
        bytes_.add(-static_cast<int64_t>(old->second.bytes));
        entries_.add(-1);
        shard.lru.erase(old->second.lruPos);
        shard.map.erase(old);
    }
    size_t bytes = key.size();
    if (negative)
        bytes += cfg_.negativeEntryBytes;
    if (dir)
        bytes += dir->sizeBytes();
    if (view)
        bytes += kViewEntryBytes;
    shard.lru.push_front(key);
    Entry entry{std::move(dir), std::move(view), negative, bytes,
                shard.lru.begin()};
    shard.map[key] = std::move(entry);
    shard.bytes += bytes;
    bytes_.add(static_cast<int64_t>(bytes));
    entries_.add(1);

    // Evict LRU entries until we fit; never the one just inserted
    // (an oversized directory stays resident alone rather than
    // thrashing — readers still need it).
    while (shard.bytes > shardCapacity_ && shard.lru.size() > 1) {
        const std::string &victim = shard.lru.back();
        auto it = shard.map.find(victim);
        shard.bytes -= it->second.bytes;
        bytes_.add(-static_cast<int64_t>(it->second.bytes));
        entries_.add(-1);
        evictions_.add();
        shard.map.erase(it);
        shard.lru.pop_back();
    }
}

CacheResult
ProfileCache::get(const std::string &key)
{
    Shard &shard = shardFor(key);
    std::unique_lock<std::mutex> lock(shard.mtx);

    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru,
                         it->second.lruPos);
        if (it->second.dir) {
            hits_.add();
            return {it->second.dir, CacheOutcome::Hit};
        }
        if (it->second.negative) {
            negativeHits_.add();
            return {nullptr, CacheOutcome::NegativeHit};
        }
        // View-only entry: get() promised a compiled directory, so
        // fall through to the load path (which keeps the view).
    }

    misses_.add();
    auto in = shard.inflight.find(key);
    if (in != shard.inflight.end()) {
        // Singleflight: ride the load already in progress.
        std::shared_ptr<Inflight> flight = in->second;
        flight->done.wait(lock, [&] { return flight->finished; });
        return flight->result;
    }

    auto flight = std::make_shared<Inflight>();
    shard.inflight.emplace(key, flight);
    lock.unlock();

    std::shared_ptr<const profiling::ProfileView> view;
    CacheResult result = loadAndCompile(key, &view);

    lock.lock();
    loads_.add();
    if (result.dir)
        insertLocked(shard, key, result.dir, std::move(view), false);
    else {
        failedLoads_.add();
        if (cfg_.negativeCache)
            insertLocked(shard, key, nullptr, nullptr, true);
    }
    flight->result = result;
    flight->finished = true;
    shard.inflight.erase(key);
    flight->done.notify_all();
    return result;
}

ViewAnswer
ProfileCache::isRowWeakView(const std::string &key, uint32_t chip,
                            uint64_t row)
{
    // Bloom directories give one-sided answers; the exact view answer
    // would diverge, so the view path declines and get() decides.
    if (!cfg_.serveFromViews || cfg_.directory.useBloomFilters)
        return {ViewState::Unavailable, false, CacheOutcome::NotFound};

    Shard &shard = shardFor(key);
    std::shared_ptr<const profiling::ProfileView> view;
    CacheOutcome source = CacheOutcome::Hit;
    {
        std::lock_guard<std::mutex> lock(shard.mtx);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            shard.lru.splice(shard.lru.begin(), shard.lru,
                             it->second.lruPos);
            if (it->second.negative) {
                negativeHits_.add();
                return {ViewState::Unknown, false,
                        CacheOutcome::NegativeHit};
            }
            view = it->second.view;
            if (!view && it->second.dir) {
                // Compiled-but-viewless entry (e.g. a v1 text base):
                // the exact table answers just as well.
                hits_.add();
                return {ViewState::Answered,
                        it->second.dir->isRowWeak(chip, row),
                        CacheOutcome::Hit};
            }
        }
        if (view)
            viewHits_.add();
    }

    if (!view) {
        // Cold key: open a lazy view — mmap + index parse, no decode,
        // no compile. Opens are cheap, so no singleflight here; a
        // racing opener just discards its view for the winner's.
        common::Expected<profiling::ProfileView> opened =
            store_.openView(key);
        if (!opened) {
            if (opened.error().category ==
                common::ErrorCategory::NotFound) {
                std::lock_guard<std::mutex> lock(shard.mtx);
                failedLoads_.add();
                if (cfg_.negativeCache &&
                    shard.map.find(key) == shard.map.end())
                    insertLocked(shard, key, nullptr, nullptr, true);
                return {ViewState::Unknown, false,
                        CacheOutcome::NotFound};
            }
            // v1 text base or unreadable file: let get() handle it.
            return {ViewState::Unavailable, false,
                    CacheOutcome::NotFound};
        }
        view = std::make_shared<const profiling::ProfileView>(
            std::move(opened).value());
        viewLoads_.add();
        source = CacheOutcome::Miss;
        std::lock_guard<std::mutex> lock(shard.mtx);
        auto it = shard.map.find(key);
        if (it != shard.map.end() && it->second.view)
            view = it->second.view; // lost the race: use the winner's
        else
            insertLocked(shard, key,
                         it != shard.map.end() ? it->second.dir
                                               : nullptr,
                         view, false);
    }

    uint64_t rowBits = cfg_.directory.rowBits;
    dram::ChipFailure lo{chip, row * rowBits};
    dram::ChipFailure hi{chip, (row + 1) * rowBits - 1};
    common::Expected<bool> any = view->anyInRange(lo, hi);
    if (!any) // damaged block: the eager path re-reads and reports
        return {ViewState::Unavailable, false, source};
    return {ViewState::Answered, any.value(), source};
}

void
ProfileCache::invalidate(const std::string &key)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mtx);
    auto it = shard.map.find(key);
    if (it == shard.map.end())
        return;
    shard.bytes -= it->second.bytes;
    bytes_.add(-static_cast<int64_t>(it->second.bytes));
    entries_.add(-1);
    shard.lru.erase(it->second.lruPos);
    shard.map.erase(it);
}

CacheCounters
ProfileCache::counters() const
{
    CacheCounters total;
    total.hits = hits_.value();
    total.misses = misses_.value();
    total.negativeHits = negativeHits_.value();
    total.loads = loads_.value();
    total.failedLoads = failedLoads_.value();
    total.viewHits = viewHits_.value();
    total.viewLoads = viewLoads_.value();
    total.evictions = evictions_.value();
    total.bytes = static_cast<uint64_t>(bytes_.value());
    total.entries = static_cast<uint64_t>(entries_.value());
    return total;
}

} // namespace serve
} // namespace reaper
