#include "serve/profile_cache.h"

#include <algorithm>
#include <functional>

namespace reaper {
namespace serve {

namespace {

size_t
roundUpPow2(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

ProfileCache::ProfileCache(const campaign::ProfileStore &store,
                           CacheConfig cfg)
    : store_(store),
      cfg_(cfg),
      hits_(registry_.counter("cache.hits")),
      misses_(registry_.counter("cache.misses")),
      negativeHits_(registry_.counter("cache.negative_hits")),
      loads_(registry_.counter("cache.loads")),
      failedLoads_(registry_.counter("cache.failed_loads")),
      evictions_(registry_.counter("cache.evictions")),
      bytes_(registry_.gauge("cache.bytes")),
      entries_(registry_.gauge("cache.entries"))
{
    size_t n = roundUpPow2(std::max<size_t>(cfg_.shards, 1));
    cfg_.shards = n;
    shardCapacity_ = std::max<size_t>(cfg_.capacityBytes / n, 1);
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ProfileCache::Shard &
ProfileCache::shardFor(const std::string &key)
{
    size_t h = std::hash<std::string>{}(key);
    return *shards_[h & (shards_.size() - 1)];
}

CacheResult
ProfileCache::loadAndCompile(const std::string &key)
{
    common::Expected<profiling::RetentionProfile> profile =
        store_.load(key);
    if (!profile)
        return {nullptr, CacheOutcome::NotFound};
    auto dir = std::make_shared<const RefreshDirectory>(
        RefreshDirectory::compile(profile.value(), cfg_.directory));
    return {std::move(dir), CacheOutcome::Miss};
}

void
ProfileCache::insertLocked(Shard &shard, const std::string &key,
                           std::shared_ptr<const RefreshDirectory> dir)
{
    size_t bytes = key.size() +
                   (dir ? dir->sizeBytes() : cfg_.negativeEntryBytes);
    shard.lru.push_front(key);
    Entry entry{std::move(dir), bytes, shard.lru.begin()};
    shard.map[key] = std::move(entry);
    shard.bytes += bytes;
    bytes_.add(static_cast<int64_t>(bytes));
    entries_.add(1);

    // Evict LRU entries until we fit; never the one just inserted
    // (an oversized directory stays resident alone rather than
    // thrashing — readers still need it).
    while (shard.bytes > shardCapacity_ && shard.lru.size() > 1) {
        const std::string &victim = shard.lru.back();
        auto it = shard.map.find(victim);
        shard.bytes -= it->second.bytes;
        bytes_.add(-static_cast<int64_t>(it->second.bytes));
        entries_.add(-1);
        evictions_.add();
        shard.map.erase(it);
        shard.lru.pop_back();
    }
}

CacheResult
ProfileCache::get(const std::string &key)
{
    Shard &shard = shardFor(key);
    std::unique_lock<std::mutex> lock(shard.mtx);

    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru,
                         it->second.lruPos);
        if (it->second.dir) {
            hits_.add();
            return {it->second.dir, CacheOutcome::Hit};
        }
        negativeHits_.add();
        return {nullptr, CacheOutcome::NegativeHit};
    }

    misses_.add();
    auto in = shard.inflight.find(key);
    if (in != shard.inflight.end()) {
        // Singleflight: ride the load already in progress.
        std::shared_ptr<Inflight> flight = in->second;
        flight->done.wait(lock, [&] { return flight->finished; });
        return flight->result;
    }

    auto flight = std::make_shared<Inflight>();
    shard.inflight.emplace(key, flight);
    lock.unlock();

    CacheResult result = loadAndCompile(key);

    lock.lock();
    loads_.add();
    if (result.dir)
        insertLocked(shard, key, result.dir);
    else {
        failedLoads_.add();
        if (cfg_.negativeCache)
            insertLocked(shard, key, nullptr);
    }
    flight->result = result;
    flight->finished = true;
    shard.inflight.erase(key);
    flight->done.notify_all();
    return result;
}

void
ProfileCache::invalidate(const std::string &key)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mtx);
    auto it = shard.map.find(key);
    if (it == shard.map.end())
        return;
    shard.bytes -= it->second.bytes;
    bytes_.add(-static_cast<int64_t>(it->second.bytes));
    entries_.add(-1);
    shard.lru.erase(it->second.lruPos);
    shard.map.erase(it);
}

CacheCounters
ProfileCache::counters() const
{
    CacheCounters total;
    total.hits = hits_.value();
    total.misses = misses_.value();
    total.negativeHits = negativeHits_.value();
    total.loads = loads_.value();
    total.failedLoads = failedLoads_.value();
    total.evictions = evictions_.value();
    total.bytes = static_cast<uint64_t>(bytes_.value());
    total.entries = static_cast<uint64_t>(entries_.value());
    return total;
}

} // namespace serve
} // namespace reaper
