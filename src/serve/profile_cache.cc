#include "serve/profile_cache.h"

#include <algorithm>
#include <functional>

namespace reaper {
namespace serve {

namespace {

size_t
roundUpPow2(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

ProfileCache::ProfileCache(const campaign::ProfileStore &store,
                           CacheConfig cfg)
    : store_(store), cfg_(cfg)
{
    size_t n = roundUpPow2(std::max<size_t>(cfg_.shards, 1));
    cfg_.shards = n;
    shardCapacity_ = std::max<size_t>(cfg_.capacityBytes / n, 1);
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ProfileCache::Shard &
ProfileCache::shardFor(const std::string &key)
{
    size_t h = std::hash<std::string>{}(key);
    return *shards_[h & (shards_.size() - 1)];
}

CacheResult
ProfileCache::loadAndCompile(const std::string &key)
{
    profiling::RetentionProfile profile;
    std::string error;
    if (!store_.tryLoad(key, &profile, &error))
        return {nullptr, CacheOutcome::NotFound};
    auto dir = std::make_shared<const RefreshDirectory>(
        RefreshDirectory::compile(profile, cfg_.directory));
    return {std::move(dir), CacheOutcome::Miss};
}

void
ProfileCache::insertLocked(Shard &shard, const std::string &key,
                           std::shared_ptr<const RefreshDirectory> dir)
{
    size_t bytes = key.size() +
                   (dir ? dir->sizeBytes() : cfg_.negativeEntryBytes);
    shard.lru.push_front(key);
    Entry entry{std::move(dir), bytes, shard.lru.begin()};
    shard.map[key] = std::move(entry);
    shard.bytes += bytes;

    // Evict LRU entries until we fit; never the one just inserted
    // (an oversized directory stays resident alone rather than
    // thrashing — readers still need it).
    while (shard.bytes > shardCapacity_ && shard.lru.size() > 1) {
        const std::string &victim = shard.lru.back();
        auto it = shard.map.find(victim);
        shard.bytes -= it->second.bytes;
        shard.counters.evictions++;
        shard.map.erase(it);
        shard.lru.pop_back();
    }
}

CacheResult
ProfileCache::get(const std::string &key)
{
    Shard &shard = shardFor(key);
    std::unique_lock<std::mutex> lock(shard.mtx);

    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru,
                         it->second.lruPos);
        if (it->second.dir) {
            shard.counters.hits++;
            return {it->second.dir, CacheOutcome::Hit};
        }
        shard.counters.negativeHits++;
        return {nullptr, CacheOutcome::NegativeHit};
    }

    shard.counters.misses++;
    auto in = shard.inflight.find(key);
    if (in != shard.inflight.end()) {
        // Singleflight: ride the load already in progress.
        std::shared_ptr<Inflight> flight = in->second;
        flight->done.wait(lock, [&] { return flight->finished; });
        return flight->result;
    }

    auto flight = std::make_shared<Inflight>();
    shard.inflight.emplace(key, flight);
    lock.unlock();

    CacheResult result = loadAndCompile(key);

    lock.lock();
    shard.counters.loads++;
    if (result.dir)
        insertLocked(shard, key, result.dir);
    else {
        shard.counters.failedLoads++;
        if (cfg_.negativeCache)
            insertLocked(shard, key, nullptr);
    }
    flight->result = result;
    flight->finished = true;
    shard.inflight.erase(key);
    flight->done.notify_all();
    return result;
}

void
ProfileCache::invalidate(const std::string &key)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mtx);
    auto it = shard.map.find(key);
    if (it == shard.map.end())
        return;
    shard.bytes -= it->second.bytes;
    shard.lru.erase(it->second.lruPos);
    shard.map.erase(it);
}

CacheCounters
ProfileCache::counters() const
{
    CacheCounters total;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mtx);
        total.hits += shard->counters.hits;
        total.misses += shard->counters.misses;
        total.negativeHits += shard->counters.negativeHits;
        total.loads += shard->counters.loads;
        total.failedLoads += shard->counters.failedLoads;
        total.evictions += shard->counters.evictions;
        total.bytes += shard->bytes;
        total.entries += shard->map.size();
    }
    return total;
}

} // namespace serve
} // namespace reaper
