#include "serve/query_engine.h"

#include <algorithm>

#include "obs/obs.h"

namespace reaper {
namespace serve {

QueryEngine::QueryEngine(ProfileCache &cache, EngineConfig cfg,
                         Metrics *metrics, ResponseSink sink)
    : cache_(cache), cfg_(cfg), metrics_(metrics),
      sink_(std::move(sink))
{
    cfg_.workers = std::max(1u, cfg_.workers);
    cfg_.queueCapacity = std::max<size_t>(1, cfg_.queueCapacity);
    cfg_.batchSize = std::max<size_t>(1, cfg_.batchSize);
    workers_.reserve(cfg_.workers);
    for (unsigned i = 0; i < cfg_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

QueryEngine::~QueryEngine()
{
    drain();
}

QueryEngine::Submit
QueryEngine::trySubmit(Request req)
{
    auto now = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(mtx_);
        if (!accepting_)
            return Submit::Stopped;
        if (queue_.size() >= cfg_.queueCapacity) {
            if (metrics_)
                metrics_->recordRejected();
            return Submit::Rejected;
        }
        queue_.push_back({std::move(req), now});
        ++accepted_;
    }
    queue_cv_.notify_one();
    return Submit::Accepted;
}

size_t
QueryEngine::trySubmitBatch(std::vector<Request> &reqs, size_t offset)
{
    if (offset >= reqs.size())
        return 0;
    auto now = std::chrono::steady_clock::now();
    size_t taken = 0;
    {
        std::lock_guard<std::mutex> lock(mtx_);
        if (!accepting_)
            return 0;
        size_t free = cfg_.queueCapacity > queue_.size()
                          ? cfg_.queueCapacity - queue_.size()
                          : 0;
        taken = std::min(free, reqs.size() - offset);
        for (size_t i = 0; i < taken; ++i)
            queue_.push_back({std::move(reqs[offset + i]), now});
        accepted_ += taken;
        if (taken < reqs.size() - offset && metrics_)
            metrics_->recordRejected();
    }
    if (taken > 0)
        queue_cv_.notify_all();
    return taken;
}

void
QueryEngine::drain()
{
    {
        std::lock_guard<std::mutex> lock(mtx_);
        if (!accepting_ && workers_.empty())
            return;
        accepting_ = false;
    }
    queue_cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
    workers_.clear();
}

std::vector<Response>
QueryEngine::takeResponses()
{
    std::lock_guard<std::mutex> lock(mtx_);
    std::vector<Response> out = std::move(collected_);
    collected_.clear();
    return out;
}

uint64_t
QueryEngine::accepted() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return accepted_;
}

uint64_t
QueryEngine::completed() const
{
    return completed_.load(std::memory_order_relaxed);
}

Response
QueryEngine::answer(const Request &req)
{
    Response resp;
    resp.id = req.id;
    // View-first: a point lookup through the lazy ProfileView decodes
    // at most one block instead of loading + compiling the whole
    // profile, so a cold miss no longer scales with profile size. The
    // answers are bit-identical to the compiled exact table: weak →
    // bin 0, clean → default bin, exactly RefreshDirectory::compile's
    // assignment — so determinism across worker counts is preserved.
    // (isRowWeakView declines under Bloom directories, whose
    // one-sided answers would diverge.)
    if (cache_.config().serveFromViews) {
        ViewAnswer va =
            cache_.isRowWeakView(req.key, req.chip, req.row);
        if (va.state == ViewState::Unknown) {
            resp.source = va.source;
            resp.status = ResponseStatus::UnknownProfile;
            return resp;
        }
        if (va.state == ViewState::Answered) {
            resp.source = va.source;
            resp.status = ResponseStatus::Ok;
            resp.weak = va.weak;
            if (req.kind == QueryKind::RefreshBin) {
                const std::vector<Seconds> &bins =
                    cache_.config().directory.binIntervals;
                resp.bin = va.weak
                               ? 0
                               : static_cast<uint32_t>(bins.size() - 1);
                resp.interval = bins.at(resp.bin);
            }
            return resp;
        }
        // Unavailable: fall through to the compiled-directory path.
    }
    CacheResult cached = cache_.get(req.key);
    resp.source = cached.outcome;
    if (!cached.dir) {
        resp.status = ResponseStatus::UnknownProfile;
        return resp;
    }
    const RefreshDirectory &dir = *cached.dir;
    resp.status = ResponseStatus::Ok;
    resp.weak = dir.isRowWeak(req.chip, req.row);
    if (req.kind == QueryKind::RefreshBin) {
        resp.bin = dir.refreshBinFor(req.chip, req.row);
        resp.interval = dir.config().binIntervals.at(resp.bin);
    }
    return resp;
}

void
QueryEngine::deliver(const Response &resp, double latency_s,
                     CacheOutcome source)
{
    if (metrics_) {
        switch (source) {
        case CacheOutcome::Hit:
            metrics_->recordHit();
            break;
        case CacheOutcome::Miss:
            metrics_->recordMiss();
            break;
        case CacheOutcome::NegativeHit:
            metrics_->recordNegativeHit();
            break;
        case CacheOutcome::NotFound:
            metrics_->recordUnknown();
            break;
        }
        metrics_->recordLatency(latency_s);
    }
    if (sink_) {
        sink_(resp);
    } else {
        std::lock_guard<std::mutex> lock(mtx_);
        collected_.push_back(resp);
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
}

void
QueryEngine::workerLoop()
{
    std::vector<Timed> batch;
    batch.reserve(cfg_.batchSize);
    for (;;) {
        batch.clear();
        {
            std::unique_lock<std::mutex> lock(mtx_);
            queue_cv_.wait(lock, [this] {
                return !queue_.empty() || !accepting_;
            });
            if (queue_.empty() && !accepting_)
                return;
            size_t take = std::min(cfg_.batchSize, queue_.size());
            for (size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
        }
        REAPER_OBS_SPAN(batchSpan, "serve.batch");
        REAPER_OBS_COUNT_N("serve.requests", batch.size());
        for (const Timed &t : batch) {
            Response resp = answer(t.req);
            double latency =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t.enqueued)
                    .count();
            deliver(resp, latency, resp.source);
        }
    }
}

} // namespace serve
} // namespace reaper
