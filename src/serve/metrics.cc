#include "serve/metrics.h"

#include <cmath>
#include <sstream>
#include <vector>

namespace reaper {
namespace serve {

namespace {

constexpr double kFloorSeconds = 100e-9; // lower edge of bucket 0
constexpr double kBucketsPerDecade = 8.0;

} // namespace

size_t
Metrics::bucketOf(double seconds)
{
    if (seconds <= kFloorSeconds)
        return 0;
    double decades = std::log10(seconds / kFloorSeconds);
    auto i = static_cast<size_t>(decades * kBucketsPerDecade);
    return std::min(i, kBuckets - 1);
}

double
Metrics::bucketHi(size_t i)
{
    return kFloorSeconds *
           std::pow(10.0, static_cast<double>(i + 1) /
                              kBucketsPerDecade);
}

void
Metrics::recordLatency(double seconds)
{
    completed_.fetch_add(1, kRelaxed);
    latency_[bucketOf(seconds)].fetch_add(1, kRelaxed);
}

double
Metrics::latencyPercentileUs(double q) const
{
    uint64_t total = 0;
    std::array<uint64_t, kBuckets> counts;
    for (size_t i = 0; i < kBuckets; ++i) {
        counts[i] = latency_[i].load(kRelaxed);
        total += counts[i];
    }
    if (total == 0)
        return 0.0;
    auto rank = static_cast<uint64_t>(q * static_cast<double>(total));
    if (rank >= total)
        rank = total - 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        seen += counts[i];
        if (seen > rank)
            return bucketHi(i) * 1e6;
    }
    return bucketHi(kBuckets - 1) * 1e6;
}

MetricsSnapshot
Metrics::snapshot() const
{
    MetricsSnapshot s;
    s.completed = completed_.load(kRelaxed);
    s.hits = hits_.load(kRelaxed);
    s.misses = misses_.load(kRelaxed);
    s.negativeHits = negative_.load(kRelaxed);
    s.unknown = unknown_.load(kRelaxed);
    s.rejected = rejected_.load(kRelaxed);
    s.p50Us = latencyPercentileUs(0.50);
    s.p95Us = latencyPercentileUs(0.95);
    s.p99Us = latencyPercentileUs(0.99);
    for (size_t i = kBuckets; i-- > 0;) {
        if (latency_[i].load(kRelaxed) > 0) {
            s.maxUs = bucketHi(i) * 1e6;
            break;
        }
    }
    return s;
}

std::string
Metrics::json() const
{
    MetricsSnapshot s = snapshot();
    std::ostringstream os;
    os << "{\"completed\": " << s.completed
       << ", \"hits\": " << s.hits << ", \"misses\": " << s.misses
       << ", \"negative_hits\": " << s.negativeHits
       << ", \"unknown\": " << s.unknown
       << ", \"rejected\": " << s.rejected
       << ", \"latency_us\": {\"p50\": " << s.p50Us
       << ", \"p95\": " << s.p95Us << ", \"p99\": " << s.p99Us
       << ", \"max\": " << s.maxUs << "}}";
    return os.str();
}

void
Metrics::reset()
{
    completed_.store(0, kRelaxed);
    hits_.store(0, kRelaxed);
    misses_.store(0, kRelaxed);
    negative_.store(0, kRelaxed);
    unknown_.store(0, kRelaxed);
    rejected_.store(0, kRelaxed);
    for (auto &bucket : latency_)
        bucket.store(0, kRelaxed);
}

} // namespace serve
} // namespace reaper
