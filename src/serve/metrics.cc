#include "serve/metrics.h"

#include <sstream>

namespace reaper {
namespace serve {

Metrics::Metrics()
    : completed_(registry_.counter("serve.completed")),
      hits_(registry_.counter("serve.hits")),
      misses_(registry_.counter("serve.misses")),
      negative_(registry_.counter("serve.negative_hits")),
      unknown_(registry_.counter("serve.unknown")),
      rejected_(registry_.counter("serve.rejected")),
      latency_(registry_.histogram("serve.latency_seconds"))
{
}

MetricsSnapshot
Metrics::snapshot() const
{
    MetricsSnapshot s;
    s.completed = completed_.value();
    s.hits = hits_.value();
    s.misses = misses_.value();
    s.negativeHits = negative_.value();
    s.unknown = unknown_.value();
    s.rejected = rejected_.value();
    obs::HistogramSnapshot lat = latency_.snapshot();
    s.p50Us = lat.percentile(0.50) * 1e6;
    s.p95Us = lat.percentile(0.95) * 1e6;
    s.p99Us = lat.percentile(0.99) * 1e6;
    s.maxUs = lat.maxEdge() * 1e6;
    return s;
}

std::string
Metrics::json() const
{
    MetricsSnapshot s = snapshot();
    std::ostringstream os;
    os << "{\"completed\": " << s.completed
       << ", \"hits\": " << s.hits << ", \"misses\": " << s.misses
       << ", \"negative_hits\": " << s.negativeHits
       << ", \"unknown\": " << s.unknown
       << ", \"rejected\": " << s.rejected
       << ", \"latency_us\": {\"p50\": " << s.p50Us
       << ", \"p95\": " << s.p95Us << ", \"p99\": " << s.p99Us
       << ", \"max\": " << s.maxUs << "}}";
    return os.str();
}

} // namespace serve
} // namespace reaper
