#include "serve/workload.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace reaper {
namespace serve {

Workload::Workload(WorkloadConfig cfg, uint64_t seed)
    : cfg_(std::move(cfg)), rng_(seed)
{
    if (cfg_.keys.empty())
        panic("serve::Workload: need at least one known key");
    cdf_.reserve(cfg_.keys.size());
    double sum = 0.0;
    for (size_t r = 0; r < cfg_.keys.size(); ++r) {
        sum += 1.0 /
               std::pow(static_cast<double>(r + 1), cfg_.zipfExponent);
        cdf_.push_back(sum);
    }
}

size_t
Workload::sampleRank()
{
    double u = rng_.uniform() * cdf_.back();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return std::min(static_cast<size_t>(it - cdf_.begin()),
                    cfg_.keys.size() - 1);
}

Request
Workload::next()
{
    Request req;
    req.id = next_id_++;
    bool unknown = rng_.uniform() < cfg_.unknownFraction;
    if (unknown) {
        // A key shaped like a real one but never committed: exercises
        // the negative-cache path deterministically.
        req.key = "ghost-" + std::to_string(rng_.uniformInt(1u << 16)) +
                  "@trefi64.000ms@45.00C";
    } else {
        req.key = cfg_.keys[sampleRank()];
    }
    req.kind = rng_.uniform() < cfg_.binFraction
                   ? QueryKind::RefreshBin
                   : QueryKind::IsRowWeak;
    req.chip = 0;
    req.row = rng_.uniformInt(std::max<uint64_t>(cfg_.rowsPerChip, 1));
    return req;
}

} // namespace serve
} // namespace reaper
