/**
 * @file
 * Sharded, byte-accounted LRU cache of compiled RefreshDirectory
 * objects over a campaign::ProfileStore.
 *
 * The serving hot path must not touch the filesystem: loading a
 * profile file and compiling it into a directory costs milliseconds,
 * while a cached lookup costs nanoseconds. The cache sits between the
 * QueryEngine and the store with three properties:
 *
 *  - **Sharding.** Keys hash to one of N independent shards (each its
 *    own mutex + LRU list), so concurrent workers rarely contend on
 *    the same lock.
 *  - **Singleflight loading.** Concurrent misses on one key share a
 *    single store load + compile: the first requester loads while the
 *    rest wait on the in-flight slot's condition variable. K parallel
 *    cold gets on a key perform exactly one ProfileStore::load
 *    (verified by tests/test_serve.cc).
 *  - **Negative caching.** A key absent from the store is remembered
 *    (with a small byte charge), so repeated lookups of unknown chips
 *    do not hammer the store index. Committing a new profile requires
 *    invalidate() to drop the negative entry.
 *  - **View serving (opt-in).** With CacheConfig::serveFromViews, a
 *    point lookup on a cold key goes through isRowWeakView(): the
 *    cache opens a lazy profiling::ProfileView (mmap + index parse —
 *    no full decode, no compile) and answers the row query from at
 *    most one decoded block, so cold-miss latency stops scaling with
 *    profile size. Views ride the same LRU entries as directories;
 *    opens are cheap enough that cold view lookups skip the
 *    singleflight machinery (racing openers discard the losing view).
 *
 * Eviction is byte-accounted: each shard holds capacityBytes/shards
 * and evicts least-recently-used entries when an insert overflows it.
 * Evicted directories stay alive for any reader still holding the
 * shared_ptr — eviction only drops the cache's reference. A view
 * entry is charged a small nominal size: its mapping is file-backed
 * and reclaimable, only the decoded-block memo is truly resident.
 */

#ifndef REAPER_SERVE_PROFILE_CACHE_H
#define REAPER_SERVE_PROFILE_CACHE_H

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "campaign/profile_store.h"
#include "obs/metrics.h"
#include "serve/refresh_directory.h"

namespace reaper {
namespace serve {

/** Cache shape and compilation parameters. */
struct CacheConfig
{
    /** Shard count (rounded up to a power of two, min 1). */
    size_t shards = 8;
    /** Total capacity across shards, in accounted bytes. */
    size_t capacityBytes = 64ull * 1024 * 1024;
    /** How directories are compiled from stored profiles. */
    DirectoryConfig directory;
    /** Remember keys that are absent from the store. */
    bool negativeCache = true;
    /** Accounted size of one negative entry. */
    size_t negativeEntryBytes = 256;
    /**
     * Serve point lookups from lazy ProfileViews (isRowWeakView)
     * instead of requiring a compiled directory. Off by default:
     * existing callers keep byte-identical behavior. Ignored (view
     * lookups report Unavailable) when directory.useBloomFilters is
     * set, because Bloom answers are one-sided and would diverge from
     * the exact view answers.
     */
    bool serveFromViews = false;
};

/** How a get() was served. */
enum class CacheOutcome
{
    Hit,         ///< compiled directory already cached
    Miss,        ///< loaded from the store (or waited on that load)
    NegativeHit, ///< known-absent key served from the negative cache
    NotFound,    ///< key absent; this lookup consulted the store
};

/** Result of one cache lookup. */
struct CacheResult
{
    /** The compiled directory; null for NegativeHit/NotFound. */
    std::shared_ptr<const RefreshDirectory> dir;
    CacheOutcome outcome = CacheOutcome::NotFound;
};

/** How a view-served point lookup resolved. */
enum class ViewState
{
    Answered,    ///< `weak` is the exact answer
    Unknown,     ///< key absent from the store
    Unavailable, ///< no view possible (views off, Bloom directories,
                 ///< v1 text base, corrupt block) — use get()
};

/** Result of one isRowWeakView() lookup. */
struct ViewAnswer
{
    ViewState state = ViewState::Unavailable;
    bool weak = false;
    /** How it was served (view/dir hit, cold open, negative). */
    CacheOutcome source = CacheOutcome::NotFound;
};

/**
 * Cache statistics snapshot. Counts live in cache-level relaxed
 * atomics (a private obs::MetricRegistry), not per-shard fields:
 * counters() is a pure lock-free snapshot instead of the old
 * lock-every-shard aggregation, which both stalled the serving path
 * and could double-count a request that raced shard mutation.
 */
struct CacheCounters
{
    uint64_t hits = 0;
    uint64_t misses = 0;       ///< get()s that could not be served hot
    uint64_t negativeHits = 0;
    uint64_t loads = 0;        ///< actual store load + compile runs
    uint64_t failedLoads = 0;  ///< loads that found no/corrupt profile
    uint64_t viewHits = 0;     ///< point lookups served from a view
    uint64_t viewLoads = 0;    ///< lazy view opens (cold point lookups)
    uint64_t evictions = 0;
    uint64_t bytes = 0;        ///< currently accounted bytes
    uint64_t entries = 0;      ///< resident positive + negative entries
};

/** Sharded singleflight LRU over a ProfileStore. */
class ProfileCache
{
  public:
    /** The store must outlive the cache. */
    ProfileCache(const campaign::ProfileStore &store, CacheConfig cfg);

    /**
     * Look up (loading and compiling on miss) the directory for a
     * profile key. Thread-safe; concurrent misses on one key share one
     * load. Never throws on unknown keys — they yield NotFound (and a
     * negative entry when enabled).
     */
    CacheResult get(const std::string &key);

    /**
     * Point lookup through a lazy view: is any profiled failing cell
     * in row `row` of chip `chip`? On a cold key this opens a
     * ProfileView (mmap + index parse) instead of loading and
     * compiling the whole profile, and the query itself decodes at
     * most one block. Returns Unavailable whenever the view path
     * cannot give the exact answer (serveFromViews off, Bloom
     * directories, v1 text base, corrupt block) — the caller then
     * falls back to get(). Thread-safe.
     */
    ViewAnswer isRowWeakView(const std::string &key, uint32_t chip,
                             uint64_t row);

    /**
     * Drop any entry (positive or negative) for a key, e.g. after a
     * new profile was committed to the store.
     */
    void invalidate(const std::string &key);

    /** Pure statistics snapshot (relaxed loads, no shard locks). */
    CacheCounters counters() const;

    size_t shardCount() const { return shards_.size(); }
    const CacheConfig &config() const { return cfg_; }

    /** The backing registry (e.g. for Prometheus text export). */
    const obs::MetricRegistry &registry() const { return registry_; }

  private:
    struct Entry
    {
        /** Compiled directory (may be null for view-only entries). */
        std::shared_ptr<const RefreshDirectory> dir;
        /** Lazy view for point lookups (serveFromViews only). */
        std::shared_ptr<const profiling::ProfileView> view;
        /** Key known absent from the store (dir and view are null). */
        bool negative = false;
        size_t bytes = 0;
        std::list<std::string>::iterator lruPos;
    };

    /** Singleflight slot for one in-flight load. */
    struct Inflight
    {
        std::condition_variable done;
        bool finished = false;
        CacheResult result;
    };

    struct Shard
    {
        mutable std::mutex mtx;
        std::unordered_map<std::string, Entry> map;
        /** Front = most recently used. */
        std::list<std::string> lru;
        std::unordered_map<std::string, std::shared_ptr<Inflight>>
            inflight;
        size_t bytes = 0;
    };

    Shard &shardFor(const std::string &key);
    /**
     * Insert (or replace) under the shard lock, evicting LRU entries
     * to fit. A replacement keeps the old entry's view when the new
     * one has none, so a compile upgrade never drops a view.
     */
    void insertLocked(Shard &shard, const std::string &key,
                      std::shared_ptr<const RefreshDirectory> dir,
                      std::shared_ptr<const profiling::ProfileView> view,
                      bool negative);
    /**
     * Load + compile (no locks held). Prefers the store's lazy view
     * (openView + compileView — one fewer full cell-list copy) and
     * falls back to the eager load for v1 text bases; with
     * serveFromViews the opened view is returned through `viewOut`
     * for retention alongside the directory.
     */
    CacheResult loadAndCompile(
        const std::string &key,
        std::shared_ptr<const profiling::ProfileView> *viewOut);

    const campaign::ProfileStore &store_;
    CacheConfig cfg_;
    size_t shardCapacity_;
    std::vector<std::unique_ptr<Shard>> shards_;

    /** Private registry: per-cache counts, isolated per instance. */
    obs::MetricRegistry registry_;
    obs::Counter &hits_;
    obs::Counter &misses_;
    obs::Counter &negativeHits_;
    obs::Counter &loads_;
    obs::Counter &failedLoads_;
    obs::Counter &viewHits_;
    obs::Counter &viewLoads_;
    obs::Counter &evictions_;
    obs::Gauge &bytes_;
    obs::Gauge &entries_;
};

} // namespace serve
} // namespace reaper

#endif // REAPER_SERVE_PROFILE_CACHE_H
