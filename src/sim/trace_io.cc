#include "sim/trace_io.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace reaper {
namespace sim {

namespace {
bool
fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return false;
}
} // namespace

void
saveTrace(const Trace &trace, std::ostream &os)
{
    os << "# trace: " << trace.name << "\n";
    os << std::hex;
    for (const TraceEntry &e : trace.entries) {
        os << std::dec << e.bubbles << (e.isWrite ? " W " : " R ")
           << "0x" << std::hex << e.addr << "\n";
    }
    os << std::dec;
}

void
saveTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("saveTraceFile: cannot open '%s' for writing",
              path.c_str());
    saveTrace(trace, os);
    if (!os)
        fatal("saveTraceFile: write to '%s' failed", path.c_str());
}

bool
tryLoadTrace(std::istream &is, Trace *out, std::string *error)
{
    if (!out)
        panic("tryLoadTrace: out must not be null");
    Trace trace;
    std::string line;
    size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        // Strip comments and blank lines; the name rides on the first
        // "# trace:" comment if present.
        if (line.empty())
            continue;
        if (line[0] == '#') {
            const std::string tag = "# trace:";
            if (line.rfind(tag, 0) == 0 && trace.name.empty()) {
                size_t start =
                    line.find_first_not_of(' ', tag.size());
                if (start != std::string::npos)
                    trace.name = line.substr(start);
            }
            continue;
        }
        std::istringstream ls(line);
        TraceEntry e;
        std::string op, addr;
        uint64_t bubbles;
        if (!(ls >> bubbles >> op >> addr))
            return fail(error, "line " + std::to_string(lineno) +
                                   ": expected '<bubbles> R|W <addr>'");
        if (bubbles > 0xFFFFFFFFull)
            return fail(error, "line " + std::to_string(lineno) +
                                   ": bubble count out of range");
        e.bubbles = static_cast<uint32_t>(bubbles);
        if (op == "R" || op == "r") {
            e.isWrite = false;
        } else if (op == "W" || op == "w") {
            e.isWrite = true;
        } else {
            return fail(error, "line " + std::to_string(lineno) +
                                   ": bad op '" + op + "'");
        }
        try {
            e.addr = std::stoull(addr, nullptr, 0);
        } catch (const std::exception &) {
            return fail(error, "line " + std::to_string(lineno) +
                                   ": bad address '" + addr + "'");
        }
        trace.entries.push_back(e);
    }
    *out = std::move(trace);
    return true;
}

Trace
loadTrace(std::istream &is)
{
    Trace trace;
    std::string error;
    if (!tryLoadTrace(is, &trace, &error))
        fatal("loadTrace: %s", error.c_str());
    return trace;
}

Trace
loadTraceFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("loadTraceFile: cannot open '%s'", path.c_str());
    Trace trace;
    std::string error;
    if (!tryLoadTrace(is, &trace, &error))
        fatal("loadTraceFile: '%s': %s", path.c_str(), error.c_str());
    return trace;
}

} // namespace sim
} // namespace reaper
