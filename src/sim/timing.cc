#include "sim/timing.h"

#include "common/logging.h"

namespace reaper {
namespace sim {

TimingParams
lpddr4_3200(unsigned chip_gbit)
{
    TimingParams t; // defaults are the 16 Gb part
    switch (chip_gbit) {
      case 8:
        t.tRFCab = 448; // 280 ns
        break;
      case 16:
        t.tRFCab = 608; // 380 ns
        break;
      case 32:
        t.tRFCab = 880; // 550 ns
        break;
      case 64:
        t.tRFCab = 1600; // 1000 ns
        break;
      default:
        fatal("lpddr4_3200: unsupported chip density %u Gb "
              "(supported: 8, 16, 32, 64)",
              chip_gbit);
    }
    t.tRFCpb = t.tRFCab * 55 / 100; // JEDEC: per-bank ~55% of all-bank
    return t;
}

} // namespace sim
} // namespace reaper
