/**
 * @file
 * Trace format for the trace-driven cores (Ramulator-style): each entry
 * is a number of non-memory "bubble" instructions followed by one
 * memory access that reaches the cache hierarchy.
 */

#ifndef REAPER_SIM_TRACE_H
#define REAPER_SIM_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace reaper {
namespace sim {

/** One trace record. */
struct TraceEntry
{
    uint32_t bubbles = 0; ///< non-memory instructions before the access
    uint64_t addr = 0;    ///< physical byte address
    bool isWrite = false;
};

/** A named instruction/memory trace. */
struct Trace
{
    std::string name;
    std::vector<TraceEntry> entries;

    /** Total instructions represented (bubbles + memory ops). */
    uint64_t instructionCount() const;

    /** Memory accesses per kilo-instruction. */
    double apki() const;
};

} // namespace sim
} // namespace reaper

#endif // REAPER_SIM_TRACE_H
