/**
 * @file
 * Trace serialization in a Ramulator-style text format, so externally
 * collected traces can drive the simulator and generated synthetic
 * traces can be inspected or reused:
 *
 *   # trace: <name>
 *   <bubbles> R|W <hex address>
 */

#ifndef REAPER_SIM_TRACE_IO_H
#define REAPER_SIM_TRACE_IO_H

#include <iosfwd>
#include <string>

#include "sim/trace.h"

namespace reaper {
namespace sim {

/** Serialize a trace. */
void saveTrace(const Trace &trace, std::ostream &os);

/** Save to a file path; fatal() on I/O failure. */
void saveTraceFile(const Trace &trace, const std::string &path);

/**
 * Parse a serialized trace.
 * @return whether parsing succeeded (error diagnostic optional)
 */
bool tryLoadTrace(std::istream &is, Trace *out,
                  std::string *error = nullptr);

/** Load from a stream; fatal() on malformed input. */
Trace loadTrace(std::istream &is);

/** Load from a file path; fatal() on I/O or parse failure. */
Trace loadTraceFile(const std::string &path);

} // namespace sim
} // namespace reaper

#endif // REAPER_SIM_TRACE_IO_H
