/**
 * @file
 * Set-associative last-level cache with LRU replacement and write-back
 * write-allocate policy (Table 2: 8 MB, 16-way, 64 B lines).
 */

#ifndef REAPER_SIM_CACHE_H
#define REAPER_SIM_CACHE_H

#include <cstdint>
#include <vector>

#include "sim/timing.h"

namespace reaper {
namespace sim {

/** Cache configuration. */
struct CacheConfig
{
    uint64_t sizeBytes = 8ull * 1024 * 1024;
    uint32_t ways = 16;
    uint32_t lineBytes = 64;
    Cycle hitLatency = 12; ///< controller cycles (~30 CPU cycles)
};

/** Result of one cache access. */
struct CacheAccess
{
    bool hit = false;
    bool writeback = false;    ///< a dirty victim must be written back
    uint64_t writebackAddr = 0;
};

/** Cache statistics. */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t writebacks = 0;

    double
    missRate() const
    {
        uint64_t total = hits + misses;
        return total ? static_cast<double>(misses) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** LRU set-associative cache model (tags only; no data payload). */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Access one line. On a miss the line is allocated (write misses
     * allocate without fetching: the whole line is overwritten).
     * @return hit/miss plus any dirty victim writeback.
     */
    CacheAccess access(uint64_t addr, bool is_write);

    /** Whether the line is currently cached (no LRU side effects). */
    bool probe(uint64_t addr) const;

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return cfg_; }
    uint64_t numSets() const { return sets_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        uint64_t tag = 0;
        uint64_t lruStamp = 0;
    };

    uint64_t setOf(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;

    CacheConfig cfg_;
    uint64_t sets_;
    std::vector<Line> lines_; ///< sets_ x ways, row-major
    uint64_t stamp_ = 0;
    CacheStats stats_;
};

} // namespace sim
} // namespace reaper

#endif // REAPER_SIM_CACHE_H
