#include "sim/memctrl.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace reaper {
namespace sim {

MemoryController::MemoryController(const MemCtrlConfig &cfg)
    : cfg_(cfg), banks_(cfg.banks)
{
    if (cfg.banks == 0)
        panic("MemoryController: banks must be > 0");
    if (cfg.writeDrainLow >= cfg.writeDrainHigh)
        panic("MemoryController: writeDrainLow must be < writeDrainHigh");
    if (cfg.refreshWindowScale < 0)
        panic("MemoryController: negative refreshWindowScale");
    if (cfg.refreshWindowScale > 0) {
        double refi = static_cast<double>(cfg.timing.tREFI) *
                      cfg.refreshWindowScale;
        if (cfg.refreshGranularity == RefreshGranularity::PerBank) {
            // One bank per command: commands come banks-times as
            // often, each covering 1/banks of the rows.
            refi /= static_cast<double>(cfg.banks);
        }
        effectiveRefi_ = static_cast<Cycle>(std::llround(refi));
        refreshDue_ = effectiveRefi_;
    } else {
        effectiveRefi_ = 0; // no refresh
    }
}

bool
MemoryController::enqueue(const MemRequest &req, const DramAddr &dram)
{
    auto &queue = req.isWrite ? writeQueue_ : readQueue_;
    if (queue.size() >= cfg_.queueCapacity)
        return false;
    Entry e{req, dram};
    e.req.arrival = now_;
    queue.push_back(std::move(e));
    if (req.isWrite && req.onComplete) {
        // Writes are posted: ack the producer immediately.
        req.onComplete();
    }
    return true;
}

bool
MemoryController::hasPendingWork() const
{
    return !readQueue_.empty() || !writeQueue_.empty() ||
           !inflight_.empty();
}

bool
MemoryController::canActivate(const Bank &b) const
{
    if (now_ < b.nextAct || now_ < nextActChannel_)
        return false;
    if (actWindow_.size() >= 4 &&
        now_ < actWindow_.front() + cfg_.timing.tFAW)
        return false;
    return true;
}

void
MemoryController::issueActivate(Bank &b, uint64_t row)
{
    b.open = true;
    b.openRow = row;
    b.nextRead = std::max(b.nextRead, now_ + cfg_.timing.tRCD);
    b.nextWrite = std::max(b.nextWrite, now_ + cfg_.timing.tRCD);
    b.nextPre = std::max(b.nextPre, now_ + cfg_.timing.tRAS);
    b.nextAct = now_ + cfg_.timing.tRC;
    nextActChannel_ = now_ + cfg_.timing.tRRD;
    actWindow_.push_back(now_);
    while (actWindow_.size() > 4)
        actWindow_.pop_front();
    ++stats_.commands.act;
    commandIssued_ = true;
}

void
MemoryController::issuePrecharge(Bank &b)
{
    b.open = false;
    b.nextAct = std::max(b.nextAct, now_ + cfg_.timing.tRP);
    ++stats_.commands.pre;
    commandIssued_ = true;
}

void
MemoryController::maybeStartPerBankRefresh()
{
    if (now_ < refreshDue_ && pendingRefreshBank_ < 0)
        return;
    if (pendingRefreshBank_ < 0) {
        pendingRefreshBank_ = static_cast<int>(refreshBankRr_);
        refreshBankRr_ = (refreshBankRr_ + 1) % cfg_.banks;
    }
    Bank &b = banks_[static_cast<size_t>(pendingRefreshBank_)];
    if (b.open) {
        if (!commandIssued_ && now_ >= b.nextPre)
            issuePrecharge(b);
        return;
    }
    if (now_ < b.nextAct || commandIssued_)
        return; // still precharging (or busy from a prior refresh)
    b.nextAct = now_ + cfg_.timing.tRFCpb;
    refreshDue_ += effectiveRefi_;
    pendingRefreshBank_ = -1;
    ++stats_.commands.refpb;
    commandIssued_ = true;
}

void
MemoryController::maybeStartRefresh()
{
    if (effectiveRefi_ == 0)
        return;
    if (cfg_.refreshGranularity == RefreshGranularity::PerBank) {
        maybeStartPerBankRefresh();
        return;
    }
    if (now_ < refreshEndsAt_) {
        ++stats_.refreshStallCycles;
        return;
    }
    if (now_ < refreshDue_)
        return;
    refreshPending_ = true;

    // Close open banks as soon as their tRAS allows, then refresh.
    bool all_closed = true;
    for (Bank &b : banks_) {
        if (b.open) {
            all_closed = false;
            if (!commandIssued_ && now_ >= b.nextPre) {
                issuePrecharge(b);
                all_closed = std::all_of(
                    banks_.begin(), banks_.end(),
                    [](const Bank &x) { return !x.open; });
            }
            break;
        }
    }
    if (!all_closed)
        return;
    // All banks precharged: wait for tRP to elapse on the last PRE,
    // expressed through nextAct; the refresh occupies tRFCab.
    Cycle start = now_;
    for (const Bank &b : banks_)
        start = std::max(start, b.nextAct);
    if (start > now_)
        return; // banks still precharging
    if (commandIssued_)
        return;
    refreshEndsAt_ = now_ + cfg_.timing.tRFCab;
    for (Bank &b : banks_)
        b.nextAct = refreshEndsAt_;
    refreshDue_ += effectiveRefi_;
    refreshPending_ = false;
    ++stats_.commands.refab;
    commandIssued_ = true;
}

bool
MemoryController::serviceQueue(std::deque<Entry> &queue, bool is_write)
{
    if (queue.empty() || commandIssued_)
        return false;
    // While a refresh is waiting for banks to close, hold all request
    // traffic so tRAS/tRTP windows drain and the refresh can start.
    if (refreshPending_)
        return false;

    // FR-FCFS scans the whole queue for ready row hits; plain FCFS
    // only ever considers the oldest request.
    size_t scan_limit = cfg_.scheduler == SchedulerPolicy::Fcfs
                            ? std::min<size_t>(1, queue.size())
                            : queue.size();

    auto try_cas = [&](size_t idx) -> bool {
        Entry &e = queue[idx];
        if (static_cast<int>(e.dram.bank) == pendingRefreshBank_)
            return false; // bank draining for a per-bank refresh
        Bank &b = banks_[e.dram.bank];
        if (!b.open || b.openRow != e.dram.row)
            return false;
        Cycle ready = is_write ? b.nextWrite : b.nextRead;
        if (now_ < ready || now_ < busFreeAt_)
            return false;
        if (!is_write && now_ < readTurnaroundAt_)
            return false;

        const TimingParams &t = cfg_.timing;
        busFreeAt_ = now_ + t.tBURST;
        if (is_write) {
            ++stats_.commands.wr;
            ++stats_.writesServed;
            readTurnaroundAt_ = std::max(
                readTurnaroundAt_, now_ + t.tWL + t.tBURST + t.tWTR);
            b.nextPre = std::max(b.nextPre,
                                 now_ + t.tWL + t.tBURST + t.tWR);
        } else {
            ++stats_.commands.rd;
            ++stats_.readsServed;
            b.nextPre = std::max(b.nextPre, now_ + t.tRTP);
            Cycle done = now_ + t.tRL + t.tBURST;
            stats_.readLatencySum += done - e.req.arrival;
            inflight_.emplace(done, e.req);
        }
        b.nextRead = std::max(b.nextRead, now_ + t.tCCD);
        b.nextWrite = std::max(b.nextWrite, now_ + t.tCCD);

        if (cfg_.rowPolicy == RowPolicy::Closed) {
            // Approximate auto-precharge: close the row once the
            // access completes (timing is folded into nextAct).
            b.open = false;
            b.nextAct = std::max(b.nextAct, b.nextPre + t.tRP);
            ++stats_.commands.pre;
        }
        queue.erase(queue.begin() + static_cast<long>(idx));
        commandIssued_ = true;
        return true;
    };

    // Pass 1: oldest-first ready row hit.
    for (size_t i = 0; i < scan_limit; ++i) {
        if (try_cas(i))
            return true;
    }

    // Pass 2: progress the oldest request whose bank needs ACT/PRE.
    for (size_t i = 0; i < scan_limit; ++i) {
        Entry &e = queue[i];
        if (static_cast<int>(e.dram.bank) == pendingRefreshBank_)
            continue; // bank draining for a per-bank refresh
        Bank &b = banks_[e.dram.bank];
        if (b.open && b.openRow != e.dram.row) {
            // Row conflict: precharge when allowed (row hits to this
            // bank were already served in pass 1).
            if (now_ >= b.nextPre) {
                issuePrecharge(b);
                return true;
            }
            continue;
        }
        if (!b.open && canActivate(b)) {
            issueActivate(b, e.dram.row);
            return true;
        }
    }
    return false;
}

void
MemoryController::completeReads()
{
    while (!inflight_.empty() && inflight_.front().first <= now_) {
        MemRequest req = std::move(inflight_.front().second);
        inflight_.pop();
        if (req.onComplete)
            req.onComplete();
    }
}

void
MemoryController::tick()
{
    commandIssued_ = false;
    completeReads();
    maybeStartRefresh();

    if (!drainingWrites_ && writeQueue_.size() >= cfg_.writeDrainHigh)
        drainingWrites_ = true;
    if (drainingWrites_ && writeQueue_.size() <= cfg_.writeDrainLow)
        drainingWrites_ = false;
    // Opportunistic write drain when there is nothing else to do.
    bool drain = drainingWrites_ || readQueue_.empty();

    if (drain) {
        if (!serviceQueue(writeQueue_, true))
            serviceQueue(readQueue_, false);
    } else {
        if (!serviceQueue(readQueue_, false))
            serviceQueue(writeQueue_, true);
    }
    ++now_;
}

} // namespace sim
} // namespace reaper
