#include "sim/trace.h"

namespace reaper {
namespace sim {

uint64_t
Trace::instructionCount() const
{
    uint64_t total = 0;
    for (const TraceEntry &e : entries)
        total += uint64_t{e.bubbles} + 1;
    return total;
}

double
Trace::apki() const
{
    uint64_t insts = instructionCount();
    if (insts == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(entries.size()) /
           static_cast<double>(insts);
}

} // namespace sim
} // namespace reaper
