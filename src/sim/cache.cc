#include "sim/cache.h"

#include "common/logging.h"

namespace reaper {
namespace sim {

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    if (cfg.lineBytes == 0 || cfg.ways == 0)
        panic("Cache: lineBytes and ways must be > 0");
    uint64_t lines = cfg.sizeBytes / cfg.lineBytes;
    if (lines == 0 || lines % cfg.ways != 0)
        panic("Cache: size must be a multiple of ways * lineBytes");
    sets_ = lines / cfg.ways;
    lines_.resize(lines);
}

uint64_t
Cache::setOf(uint64_t addr) const
{
    return (addr / cfg_.lineBytes) % sets_;
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return (addr / cfg_.lineBytes) / sets_;
}

bool
Cache::probe(uint64_t addr) const
{
    uint64_t set = setOf(addr);
    uint64_t tag = tagOf(addr);
    for (uint32_t w = 0; w < cfg_.ways; ++w) {
        const Line &l = lines_[set * cfg_.ways + w];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

CacheAccess
Cache::access(uint64_t addr, bool is_write)
{
    CacheAccess result;
    uint64_t set = setOf(addr);
    uint64_t tag = tagOf(addr);
    for (uint32_t w = 0; w < cfg_.ways; ++w) {
        Line &l = lines_[set * cfg_.ways + w];
        if (l.valid && l.tag == tag) {
            result.hit = true;
            l.lruStamp = ++stamp_;
            l.dirty = l.dirty || is_write;
            ++stats_.hits;
            return result;
        }
    }
    ++stats_.misses;
    // Victim: first invalid way, otherwise least-recently used.
    Line *victim = nullptr;
    for (uint32_t w = 0; w < cfg_.ways; ++w) {
        Line &l = lines_[set * cfg_.ways + w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (!victim || l.lruStamp < victim->lruStamp)
            victim = &l;
    }
    // Allocate over the LRU (or an invalid) way.
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.writebackAddr =
            (victim->tag * sets_ + set) * cfg_.lineBytes;
        ++stats_.writebacks;
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lruStamp = ++stamp_;
    return result;
}

} // namespace sim
} // namespace reaper
