/**
 * @file
 * LPDDR4 timing parameters for the cycle-level memory-system model.
 *
 * All values are in memory-controller clock cycles (LPDDR4-3200:
 * tCK = 0.625 ns, 1600 MHz command clock). tRFCab scales with chip
 * density, which is what makes refresh overhead grow with capacity
 * (Section 7.3 of the paper evaluates 8-64 Gb chips).
 */

#ifndef REAPER_SIM_TIMING_H
#define REAPER_SIM_TIMING_H

#include <cstdint>

#include "common/units.h"

namespace reaper {
namespace sim {

/** Memory-controller clock cycle count. */
using Cycle = uint64_t;

/** DRAM timing constraints in controller cycles. */
struct TimingParams
{
    double tCKns = 0.625; ///< controller clock period (ns)

    Cycle tRCD = 29;  ///< ACT -> RD/WR
    Cycle tRP = 34;   ///< PRE -> ACT
    Cycle tRAS = 68;  ///< ACT -> PRE
    Cycle tRC = 102;  ///< ACT -> ACT (same bank)
    Cycle tRL = 28;   ///< read latency (RD -> first data)
    Cycle tWL = 14;   ///< write latency
    Cycle tBURST = 8; ///< data burst occupancy (BL16, DDR)
    Cycle tCCD = 8;   ///< CAS -> CAS
    Cycle tRRD = 16;  ///< ACT -> ACT (different banks)
    Cycle tFAW = 64;  ///< four-activate window
    Cycle tWR = 29;   ///< write recovery (end of write -> PRE)
    Cycle tWTR = 16;  ///< write -> read turnaround
    Cycle tRTP = 12;  ///< read -> PRE
    Cycle tRFCab = 608; ///< all-bank refresh cycle time (density-dep.)
    Cycle tRFCpb = 336; ///< per-bank refresh cycle time (~55% of ab)
    Cycle tREFI = 12500; ///< refresh command interval at the default
                         ///< 64 ms window (64 ms / 8192 commands)

    /** Convert controller cycles to seconds. */
    Seconds cyclesToSec(Cycle c) const { return c * tCKns * 1e-9; }
    /** Convert seconds to controller cycles (rounded down). */
    Cycle secToCycles(Seconds s) const
    {
        return static_cast<Cycle>(s / (tCKns * 1e-9));
    }
};

/**
 * LPDDR4-3200 timings for a chip of the given density.
 * tRFCab values follow the JEDEC density scaling trend (280 ns at
 * 8 Gb) extended to the hypothetical larger densities the paper
 * evaluates (Section 7.3: 8 Gb to 64 Gb chips).
 */
TimingParams lpddr4_3200(unsigned chip_gbit);

} // namespace sim
} // namespace reaper

#endif // REAPER_SIM_TIMING_H
