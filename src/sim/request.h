/**
 * @file
 * Memory request type shared by cores, the LLC, and the memory
 * controller.
 */

#ifndef REAPER_SIM_REQUEST_H
#define REAPER_SIM_REQUEST_H

#include <cstdint>
#include <functional>

#include "sim/timing.h"

namespace reaper {
namespace sim {

/** A physical-address memory request (one cache line). */
struct MemRequest
{
    uint64_t addr = 0;    ///< physical byte address (line aligned)
    bool isWrite = false;
    int coreId = -1;
    Cycle arrival = 0;    ///< cycle the request entered the controller
    /** Completion callback (read data returned / write accepted). */
    std::function<void()> onComplete;
};

/** Decoded DRAM coordinates of a request within one channel. */
struct DramAddr
{
    uint32_t channel = 0;
    uint32_t bank = 0;
    uint64_t row = 0;
    uint32_t col = 0;
};

} // namespace sim
} // namespace reaper

#endif // REAPER_SIM_REQUEST_H
