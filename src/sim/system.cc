#include "sim/system.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"

namespace reaper {
namespace sim {

void
SystemConfig::setDram(unsigned chip_gbit, Seconds refresh_interval)
{
    ctrl.timing = lpddr4_3200(chip_gbit);
    ctrl.refreshWindowScale =
        refresh_interval > 0 ? refresh_interval / kJedecRefreshInterval
                             : 0.0;
    uint64_t chip_bits = gibitToBits(chip_gbit);
    ctrl.rowsPerBank =
        chip_bits / (uint64_t{ctrl.banks} * ctrl.rowBytes * 8);
}

double
SystemStats::ipcSum() const
{
    double sum = 0;
    for (double v : coreIpc)
        sum += v;
    return sum;
}

System::System(const SystemConfig &cfg, std::vector<Trace> traces)
    : cfg_(cfg), traces_(std::move(traces)), llc_(cfg.llc)
{
    if (traces_.empty())
        panic("System: need at least one trace");
    if (cfg.channels == 0)
        panic("System: need at least one channel");
    for (size_t i = 0; i < traces_.size(); ++i) {
        CoreConfig cc = cfg.core;
        cc.id = static_cast<int>(i);
        cores_.push_back(std::make_unique<Core>(cc, traces_[i]));
    }
    for (uint32_t c = 0; c < cfg.channels; ++c)
        channels_.push_back(std::make_unique<MemoryController>(cfg.ctrl));
}

DramAddr
System::decode(uint64_t addr) const
{
    uint64_t line = addr / cfg_.llc.lineBytes;
    DramAddr d;
    d.channel = static_cast<uint32_t>(line % cfg_.channels);
    uint64_t in_channel = line / cfg_.channels;
    uint64_t lines_per_row = cfg_.ctrl.rowBytes / cfg_.llc.lineBytes;
    d.col = static_cast<uint32_t>(in_channel % lines_per_row);
    uint64_t row_flat = in_channel / lines_per_row;
    d.bank = static_cast<uint32_t>(row_flat % cfg_.ctrl.banks);
    d.row = (row_flat / cfg_.ctrl.banks) % cfg_.ctrl.rowsPerBank;
    return d;
}

bool
System::sendToDram(const MemRequest &req)
{
    DramAddr d = decode(req.addr);
    return channels_[d.channel]->enqueue(req, d);
}

bool
System::sendFromCore(const MemRequest &req)
{
    bool cached = llc_.probe(req.addr);
    if (cached) {
        llc_.access(req.addr, req.isWrite);
        if (!req.isWrite && req.onComplete) {
            hitQueue_.emplace(now_ + cfg_.llc.hitLatency,
                              req.onComplete);
        }
        return true;
    }
    if (!req.isWrite) {
        // Read miss: the fill must reach DRAM before we commit the
        // allocation, so a full queue stalls the core without side
        // effects.
        if (!sendToDram(req))
            return false;
    }
    // Allocate (write misses overwrite the whole line: no fetch).
    CacheAccess result = llc_.access(req.addr, req.isWrite);
    if (result.writeback) {
        MemRequest wb;
        wb.addr = result.writebackAddr;
        wb.isWrite = true;
        wb.coreId = req.coreId;
        wbBuffer_.push_back(wb);
    }
    return true;
}

void
System::tick()
{
    // Complete LLC hits whose latency elapsed.
    while (!hitQueue_.empty() && hitQueue_.front().first <= now_) {
        hitQueue_.front().second();
        hitQueue_.pop();
    }

    // Drain buffered writebacks into their channels.
    while (!wbBuffer_.empty()) {
        if (!sendToDram(wbBuffer_.front()))
            break;
        wbBuffer_.pop_front();
    }

    SendFn send = [this](const MemRequest &req) {
        return sendFromCore(req);
    };
    for (auto &core : cores_)
        core->tick(send);
    for (auto &ch : channels_)
        ch->tick();
    ++now_;
}

void
System::run(Cycle mem_cycles)
{
    for (Cycle i = 0; i < mem_cycles; ++i)
        tick();
}

SystemStats
System::stats() const
{
    SystemStats s;
    for (const auto &core : cores_) {
        s.coreIpc.push_back(core->ipc());
        s.coreInsts.push_back(core->retiredInstructions());
    }
    s.memCycles = now_;
    s.simulatedSeconds = cfg_.ctrl.timing.cyclesToSec(now_);
    s.llc = llc_.stats();
    for (const auto &ch : channels_) {
        const MemCtrlStats &c = ch->stats();
        s.channels.commands.act += c.commands.act;
        s.channels.commands.pre += c.commands.pre;
        s.channels.commands.rd += c.commands.rd;
        s.channels.commands.wr += c.commands.wr;
        s.channels.commands.refab += c.commands.refab;
        s.channels.commands.refpb += c.commands.refpb;
        s.channels.readsServed += c.readsServed;
        s.channels.writesServed += c.writesServed;
        s.channels.refreshStallCycles += c.refreshStallCycles;
        s.channels.readLatencySum += c.readLatencySum;
    }
    s.avgReadLatency =
        s.channels.readsServed
            ? static_cast<double>(s.channels.readLatencySum) /
                  static_cast<double>(s.channels.readsServed)
            : 0.0;
    return s;
}

} // namespace sim
} // namespace reaper
