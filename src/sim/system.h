/**
 * @file
 * Full-system wiring: N trace-driven cores share an LLC backed by
 * multiple DRAM channels (Table 2: 4 cores, 8 MB LLC, LPDDR4-3200 with
 * 4 channels), plus the simulation run loop and statistics.
 */

#ifndef REAPER_SIM_SYSTEM_H
#define REAPER_SIM_SYSTEM_H

#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "sim/cache.h"
#include "sim/core.h"
#include "sim/memctrl.h"
#include "sim/trace.h"

namespace reaper {
namespace sim {

/** Whole-system configuration. */
struct SystemConfig
{
    CoreConfig core{};     ///< per-core parameters (id is overwritten)
    CacheConfig llc{};
    MemCtrlConfig ctrl{};  ///< per-channel controller parameters
    uint32_t channels = 4;

    /** Convenience: configure DRAM timing/refresh for a chip density
     *  and target refresh interval (0 = no refresh). */
    void setDram(unsigned chip_gbit, Seconds refresh_interval);
};

/** Aggregated end-of-run statistics. */
struct SystemStats
{
    std::vector<double> coreIpc;      ///< per-core IPC (CPU clock)
    std::vector<uint64_t> coreInsts;
    uint64_t memCycles = 0;
    Seconds simulatedSeconds = 0;
    CacheStats llc;
    MemCtrlStats channels;            ///< summed over channels
    double avgReadLatency = 0;        ///< controller cycles

    /** Sum of per-core IPCs (throughput metric). */
    double ipcSum() const;
};

/** The simulated multicore system. */
class System
{
  public:
    /**
     * @param cfg system configuration
     * @param traces one trace per core (the system runs
     *        traces.size() cores); traces are copied in
     */
    System(const SystemConfig &cfg, std::vector<Trace> traces);

    /** Run for a fixed number of memory-controller cycles. */
    void run(Cycle mem_cycles);

    /** Advance a single controller cycle. */
    void tick();

    SystemStats stats() const;

    uint32_t numCores() const { return static_cast<uint32_t>(
        cores_.size()); }

  private:
    /** Route one core request through the LLC (returns false to
     *  stall the core). */
    bool sendFromCore(const MemRequest &req);
    /** Decode a physical address into channel/bank/row/col. */
    DramAddr decode(uint64_t addr) const;
    /** Enqueue a line request to its DRAM channel. */
    bool sendToDram(const MemRequest &req);

    SystemConfig cfg_;
    std::vector<Trace> traces_;
    std::vector<std::unique_ptr<Core>> cores_;
    Cache llc_;
    std::vector<std::unique_ptr<MemoryController>> channels_;

    /** Pending LLC-hit completions: (cycle, callback). */
    std::queue<std::pair<Cycle, std::function<void()>>> hitQueue_;
    /** Dirty-victim writebacks waiting for channel queue space. */
    std::deque<MemRequest> wbBuffer_;
    Cycle now_ = 0;
};

} // namespace sim
} // namespace reaper

#endif // REAPER_SIM_SYSTEM_H
