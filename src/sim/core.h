/**
 * @file
 * Trace-driven out-of-order core model (Table 2: 4 GHz, 3-wide issue,
 * 128-entry instruction window, 8 MSHRs per core).
 *
 * The model mirrors Ramulator's simple OOO core: non-memory
 * instructions retire immediately once issued; loads occupy a window
 * slot until their data returns; stores are posted. The core runs at a
 * configurable multiple of the memory-controller clock (4 GHz vs
 * 1.6 GHz -> 2.5 CPU cycles per controller cycle).
 */

#ifndef REAPER_SIM_CORE_H
#define REAPER_SIM_CORE_H

#include <functional>
#include <vector>

#include "sim/request.h"
#include "sim/trace.h"

namespace reaper {
namespace sim {

/** Core configuration. */
struct CoreConfig
{
    int id = 0;
    uint32_t windowSize = 128;
    uint32_t issueWidth = 3;
    uint32_t mshrs = 8;
    /** CPU cycles per memory-controller cycle (4 GHz / 1.6 GHz). */
    double cpuPerMemCycle = 2.5;
};

/**
 * Function the core uses to send a memory access into the memory
 * hierarchy. Returns false if the hierarchy cannot accept it this
 * cycle (queue full); the core stalls and retries.
 */
using SendFn = std::function<bool(const MemRequest &)>;

/** One trace-driven core. */
class Core
{
  public:
    /**
     * @param cfg core parameters
     * @param trace the access trace (borrowed; must outlive the core)
     * @param loop restart the trace at the end (fixed-duration runs)
     */
    Core(const CoreConfig &cfg, const Trace &trace, bool loop = true);

    /** Advance one memory-controller cycle. */
    void tick(const SendFn &send);

    uint64_t retiredInstructions() const { return retired_; }
    uint64_t cpuCycles() const { return cpuCycles_; }
    /** Instructions per CPU cycle so far. */
    double ipc() const;
    /** Whether a non-looping core has consumed its whole trace. */
    bool traceDone() const;
    uint32_t outstandingReads() const { return outstandingReads_; }
    int id() const { return cfg_.id; }

  private:
    /** One CPU cycle: retire then issue. */
    void cpuCycle(const SendFn &send);

    bool windowFull() const { return windowLoad_ == cfg_.windowSize; }
    void windowInsert(bool ready);
    /** Retire up to issueWidth ready entries from the window head. */
    void windowRetire();

    CoreConfig cfg_;
    const Trace &trace_;
    bool loop_;

    // Circular instruction window. ready_[i] marks completion; load
    // callbacks flip their slot to ready when data returns.
    std::vector<char> ready_;
    uint32_t windowHead_ = 0; ///< oldest entry
    uint32_t windowTail_ = 0; ///< next insertion point
    uint32_t windowLoad_ = 0;

    size_t tracePos_ = 0;
    uint32_t bubblesLeft_ = 0;
    bool entryPending_ = false; ///< current entry's mem op not yet sent

    uint32_t outstandingReads_ = 0;
    uint64_t retired_ = 0;
    uint64_t cpuCycles_ = 0;
    double cpuCredit_ = 0.0;
    bool done_ = false;
};

} // namespace sim
} // namespace reaper

#endif // REAPER_SIM_CORE_H
