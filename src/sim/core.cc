#include "sim/core.h"

#include "common/logging.h"

namespace reaper {
namespace sim {

Core::Core(const CoreConfig &cfg, const Trace &trace, bool loop)
    : cfg_(cfg), trace_(trace), loop_(loop), ready_(cfg.windowSize, 0)
{
    if (cfg.windowSize == 0 || cfg.issueWidth == 0)
        panic("Core: windowSize and issueWidth must be > 0");
    if (cfg.cpuPerMemCycle <= 0)
        panic("Core: cpuPerMemCycle must be > 0");
    if (trace_.entries.empty()) {
        done_ = true;
    } else {
        bubblesLeft_ = trace_.entries.front().bubbles;
    }
}

double
Core::ipc() const
{
    return cpuCycles_ ? static_cast<double>(retired_) /
                            static_cast<double>(cpuCycles_)
                      : 0.0;
}

bool
Core::traceDone() const
{
    return done_ && windowLoad_ == 0;
}

void
Core::windowInsert(bool ready)
{
    ready_[windowTail_] = ready ? 1 : 0;
    windowTail_ = (windowTail_ + 1) % cfg_.windowSize;
    ++windowLoad_;
}

void
Core::windowRetire()
{
    uint32_t retired_now = 0;
    while (windowLoad_ > 0 && retired_now < cfg_.issueWidth &&
           ready_[windowHead_]) {
        windowHead_ = (windowHead_ + 1) % cfg_.windowSize;
        --windowLoad_;
        ++retired_;
        ++retired_now;
    }
}

void
Core::cpuCycle(const SendFn &send)
{
    ++cpuCycles_;
    windowRetire();

    uint32_t issued = 0;
    while (issued < cfg_.issueWidth && !done_) {
        if (bubblesLeft_ > 0) {
            if (windowFull())
                break;
            windowInsert(true);
            --bubblesLeft_;
            ++issued;
            continue;
        }

        const TraceEntry &e = trace_.entries[tracePos_];
        if (e.isWrite) {
            MemRequest req;
            req.addr = e.addr;
            req.isWrite = true;
            req.coreId = cfg_.id;
            if (!send(req))
                break; // write queue full: stall this cycle
            ++retired_; // stores are posted and retire immediately
        } else {
            if (windowFull() || outstandingReads_ >= cfg_.mshrs)
                break;
            uint32_t slot = windowTail_;
            MemRequest req;
            req.addr = e.addr;
            req.isWrite = false;
            req.coreId = cfg_.id;
            req.onComplete = [this, slot]() {
                ready_[slot] = 1;
                --outstandingReads_;
            };
            if (!send(req))
                break;
            windowInsert(false);
            ++outstandingReads_;
        }
        ++issued;

        // Advance to the next trace record.
        ++tracePos_;
        if (tracePos_ >= trace_.entries.size()) {
            if (loop_) {
                tracePos_ = 0;
            } else {
                done_ = true;
                break;
            }
        }
        bubblesLeft_ = trace_.entries[tracePos_].bubbles;
    }
}

void
Core::tick(const SendFn &send)
{
    cpuCredit_ += cfg_.cpuPerMemCycle;
    while (cpuCredit_ >= 1.0) {
        cpuCredit_ -= 1.0;
        cpuCycle(send);
    }
}

} // namespace sim
} // namespace reaper
