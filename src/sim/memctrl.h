/**
 * @file
 * Cycle-level DRAM memory controller for one channel: FR-FCFS
 * scheduling, bank timing state machines, write draining, and refresh
 * (the component whose overhead the whole paper is about).
 *
 * Modeled after the controller configuration of Table 2: 64-entry
 * read/write queues, FR-FCFS [Rixner et al.], open- or closed-row
 * policy, all-bank refresh every tREFI with banks blocked for tRFCab.
 */

#ifndef REAPER_SIM_MEMCTRL_H
#define REAPER_SIM_MEMCTRL_H

#include <deque>
#include <queue>
#include <vector>

#include "sim/request.h"
#include "sim/timing.h"

namespace reaper {
namespace sim {

/** Row-buffer management policy. */
enum class RowPolicy
{
    Open,   ///< leave rows open (single-core, Table 2)
    Closed, ///< auto-precharge after each access (multi-core)
};

/** Request scheduling policy. */
enum class SchedulerPolicy
{
    FrFcfs, ///< first-ready row hits before oldest (Table 2)
    Fcfs,   ///< strictly oldest-first (ablation baseline)
};

/** Refresh command granularity. */
enum class RefreshGranularity
{
    AllBank, ///< REFab: all banks blocked for tRFCab (Table 2)
    PerBank, ///< REFpb: banks refreshed round-robin, one at a time
};

/** Controller configuration. */
struct MemCtrlConfig
{
    TimingParams timing{};
    uint32_t banks = 8;
    uint64_t rowsPerBank = 32768;
    uint32_t rowBytes = 2048;
    size_t queueCapacity = 64;
    size_t writeDrainHigh = 48; ///< start draining writes
    size_t writeDrainLow = 16;  ///< stop draining writes
    RowPolicy rowPolicy = RowPolicy::Open;
    SchedulerPolicy scheduler = SchedulerPolicy::FrFcfs;
    RefreshGranularity refreshGranularity = RefreshGranularity::AllBank;
    /**
     * Refresh interval as a multiple of the default 64 ms window
     * (e.g. 16.0 for a 1024 ms target). 0 disables refresh entirely
     * (the paper's "no refresh" upper bound).
     */
    double refreshWindowScale = 1.0;
};

/** DRAM command counts for the power model. */
struct CommandCounts
{
    uint64_t act = 0;
    uint64_t pre = 0;
    uint64_t rd = 0;
    uint64_t wr = 0;
    uint64_t refab = 0;
    uint64_t refpb = 0;
};

/** Controller statistics. */
struct MemCtrlStats
{
    CommandCounts commands;
    uint64_t readsServed = 0;
    uint64_t writesServed = 0;
    uint64_t refreshStallCycles = 0; ///< cycles all banks blocked by REF
    uint64_t readLatencySum = 0;     ///< sum of read queueing+service

    /** CAS commands that reused an already-open row. */
    uint64_t rowHits() const
    {
        uint64_t cas = commands.rd + commands.wr;
        return cas > commands.act ? cas - commands.act : 0;
    }
    /** Row-hit fraction of all column accesses. */
    double rowHitRate() const
    {
        uint64_t cas = commands.rd + commands.wr;
        return cas ? static_cast<double>(rowHits()) /
                         static_cast<double>(cas)
                   : 0.0;
    }
};

/** One-channel FR-FCFS memory controller. */
class MemoryController
{
  public:
    explicit MemoryController(const MemCtrlConfig &cfg);

    /**
     * Enqueue a request (address must be pre-decoded into `dram`
     * coordinates by the caller). Returns false when the queue is
     * full; the caller must retry later.
     */
    bool enqueue(const MemRequest &req, const DramAddr &dram);

    /** Advance one controller cycle. */
    void tick();

    Cycle now() const { return now_; }
    size_t readQueueSize() const { return readQueue_.size(); }
    size_t writeQueueSize() const { return writeQueue_.size(); }
    bool hasPendingWork() const;
    const MemCtrlStats &stats() const { return stats_; }
    const MemCtrlConfig &config() const { return cfg_; }

  private:
    struct Entry
    {
        MemRequest req;
        DramAddr dram;
    };

    struct Bank
    {
        bool open = false;
        uint64_t openRow = 0;
        Cycle nextAct = 0;
        Cycle nextRead = 0;
        Cycle nextWrite = 0;
        Cycle nextPre = 0;
    };

    /** Whether the bank can accept an ACT this cycle (incl. channel
     *  tRRD/tFAW constraints). */
    bool canActivate(const Bank &b) const;
    /** Issue one command for the given queue; true if issued. */
    bool serviceQueue(std::deque<Entry> &queue, bool is_write);
    void issueActivate(Bank &b, uint64_t row);
    void issuePrecharge(Bank &b);
    void maybeStartRefresh();
    void maybeStartPerBankRefresh();
    void completeReads();

    MemCtrlConfig cfg_;
    Cycle now_ = 0;
    std::vector<Bank> banks_;
    std::deque<Entry> readQueue_;
    std::deque<Entry> writeQueue_;
    bool drainingWrites_ = false;
    bool commandIssued_ = false; ///< one command per cycle

    // Channel-level constraints.
    Cycle nextActChannel_ = 0;
    std::deque<Cycle> actWindow_; ///< timestamps of last ACTs (tFAW)
    Cycle busFreeAt_ = 0;
    Cycle readTurnaroundAt_ = 0;  ///< earliest RD after a WR (tWTR)

    // Refresh.
    Cycle refreshDue_ = 0;
    bool refreshPending_ = false;     ///< all-bank refresh waiting
    int pendingRefreshBank_ = -1;     ///< per-bank refresh waiting
    uint32_t refreshBankRr_ = 0;      ///< per-bank round-robin cursor
    Cycle refreshEndsAt_ = 0;
    Cycle effectiveRefi_ = 0; ///< scaled command interval; 0 = disabled

    // In-flight read completions: (cycle, entry index) FIFO.
    std::queue<std::pair<Cycle, MemRequest>> inflight_;

    MemCtrlStats stats_;
};

} // namespace sim
} // namespace reaper

#endif // REAPER_SIM_MEMCTRL_H
