/**
 * @file
 * Over-the-wire load driver for the REAPER-NET daemon.
 *
 * Drives the zipfian serve::Workload over N real TCP connections
 * (one thread per connection, closed loop) with configurable
 * pipelining: each connection keeps up to `pipeline` QueryBatch
 * frames of `batch` requests in flight, so the daemon's coalescing
 * and backpressure paths are exercised rather than a single
 * request/response ping-pong.
 *
 * Measured quantities are end-to-end over the wire: QPS is responses
 * received (Ok + NotFound + Rejected — every submitted request is
 * answered) divided by wall time across all connections, and latency
 * is the batch round trip (send of a QueryBatch frame to receipt of
 * its last response) recorded into a shared obs::Histogram for
 * p50/p95/p99.
 *
 * Shared by the examples/serve_loadgen CLI and the bench_serve
 * over-the-wire sweep — one driver, two front ends.
 */

#ifndef REAPER_NET_LOADGEN_H
#define REAPER_NET_LOADGEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"
#include "serve/workload.h"

namespace reaper {
namespace net {

/** Shape of one load-generation run. */
struct LoadgenConfig
{
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /** Concurrent TCP connections (one driver thread each). */
    unsigned connections = 1;
    /** QueryBatch frames in flight per connection. */
    unsigned pipeline = 4;
    /** Requests per QueryBatch frame. */
    size_t batch = 64;
    /** Total requests across all connections. */
    uint64_t totalRequests = 100000;
    /**
     * Workload shape. When `workload.keys` is empty the driver asks
     * the daemon via ListKeys, so a bare CLI invocation needs no
     * out-of-band key configuration.
     */
    serve::WorkloadConfig workload;
    uint64_t seed = 42;
    DecodeLimits limits;
};

/** Aggregate outcome of a run. */
struct LoadgenResult
{
    double seconds = 0;
    /** Responses received per second, over all connections. */
    double qps = 0;
    uint64_t sent = 0;
    uint64_t ok = 0;
    uint64_t notFound = 0;
    uint64_t rejected = 0;
    /** sent - (ok + notFound + rejected): 0 on a clean run. */
    uint64_t unanswered = 0;
    uint64_t protocolErrors = 0;
    /** Batch round-trip percentiles, microseconds. */
    double p50Us = 0;
    double p95Us = 0;
    double p99Us = 0;
    /** First few connection-level error messages (empty = clean). */
    std::vector<std::string> errors;

    bool clean() const
    {
        return errors.empty() && protocolErrors == 0 &&
               unanswered == 0;
    }
};

/**
 * Run one closed-loop load generation against a live daemon.
 * Connection-level failures are reported inside the result, not as an
 * Expected error — a partially failed run still carries its counts.
 * Returns an error only when no connection could be established.
 */
common::Expected<LoadgenResult> runLoadgen(const LoadgenConfig &cfg);

} // namespace net
} // namespace reaper

#endif // REAPER_NET_LOADGEN_H
