#include "net/wire.h"

#include <cstring>

#include "simd/crc32c.h"
#include "simd/varint.h"

namespace reaper {
namespace net {

namespace {

using common::Error;
using common::Expected;
using common::Status;
using common::okStatus;

void
putLe32(std::vector<uint8_t> &buf, uint32_t v)
{
    buf.push_back(static_cast<uint8_t>(v));
    buf.push_back(static_cast<uint8_t>(v >> 8));
    buf.push_back(static_cast<uint8_t>(v >> 16));
    buf.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t
getLe32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
}

uint64_t
getLe64(const uint8_t *p)
{
    return static_cast<uint64_t>(getLe32(p)) |
           static_cast<uint64_t>(getLe32(p + 4)) << 32;
}

/** Cursor over an untrusted payload; every read is bounds-checked and
 *  failure is sticky (the caller checks ok() once per field group). */
struct PayloadReader
{
    const uint8_t *p;
    const uint8_t *end;

    PayloadReader(const FrameView &frame)
        : p(frame.payload), end(frame.payload + frame.payloadLen)
    {
    }

    size_t remaining() const
    {
        return static_cast<size_t>(end - p);
    }

    bool varint(uint64_t *v)
    {
        // One varint through the shared (dispatched) bulk decoder.
        const uint8_t *next = simd::decodeVarints(p, end, v, 1);
        if (next == nullptr)
            return false;
        p = next;
        return true;
    }

    bool u8(uint8_t *v)
    {
        if (remaining() < 1)
            return false;
        *v = *p++;
        return true;
    }

    bool u32(uint32_t *v)
    {
        if (remaining() < 4)
            return false;
        *v = getLe32(p);
        p += 4;
        return true;
    }

    bool u64(uint64_t *v)
    {
        if (remaining() < 8)
            return false;
        *v = getLe64(p);
        p += 8;
        return true;
    }

    bool bytes(std::string *out, size_t len)
    {
        if (remaining() < len)
            return false;
        out->assign(reinterpret_cast<const char *>(p), len);
        p += len;
        return true;
    }
};

Error
corrupt(const char *what)
{
    return Error::corrupt(std::string("net frame: ") + what);
}

/** Per-batch element floor in encoded bytes, used to clamp a hostile
 *  count against the bytes actually present before any reserve. */
constexpr size_t kMinQueryBytes = 5;    // id+kind+keyLen+chip+row
constexpr size_t kMinResponseBytes = 12; // id+status+weak+bin+interval
constexpr size_t kMinKeyEntryBytes = 1; // varint len (empty key)

} // namespace

const char *
toString(Opcode op)
{
    switch (op) {
    case Opcode::Hello:
        return "Hello";
    case Opcode::HelloAck:
        return "HelloAck";
    case Opcode::ListKeys:
        return "ListKeys";
    case Opcode::KeyList:
        return "KeyList";
    case Opcode::QueryBatch:
        return "QueryBatch";
    case Opcode::ResponseBatch:
        return "ResponseBatch";
    case Opcode::ProtocolError:
        return "ProtocolError";
    }
    return "?";
}

const char *
toString(WireStatus s)
{
    switch (s) {
    case WireStatus::Ok:
        return "Ok";
    case WireStatus::NotFound:
        return "NotFound";
    case WireStatus::Rejected:
        return "Rejected";
    }
    return "?";
}

Expected<size_t>
tryExtractFrame(const uint8_t *data, size_t avail,
                const DecodeLimits &limits, FrameView *out)
{
    if (limits.maxFrameBytes < kMinBodyBytes)
        return Error::invalidConfig(
            "net: maxFrameBytes smaller than the minimum body");
    if (avail < 4)
        return size_t{0};
    const size_t bodyLen = getLe32(data);
    if (bodyLen < kMinBodyBytes)
        return corrupt("body length below opcode+version minimum");
    if (bodyLen > limits.maxFrameBytes)
        return corrupt("body length exceeds the frame clamp");
    if (avail < 4 + bodyLen + 4)
        return size_t{0};
    const uint8_t *body = data + 4;
    const uint32_t stored = getLe32(body + bodyLen);
    const uint32_t actual = simd::crc32c(0, body, bodyLen);
    if (stored != actual)
        return corrupt("body CRC32C mismatch");
    const uint8_t op = body[0];
    const uint8_t version = body[1];
    if (version != kProtocolVersion)
        return Error::parse("net frame: unsupported protocol version " +
                            std::to_string(version));
    if (op < static_cast<uint8_t>(Opcode::Hello) ||
        op > static_cast<uint8_t>(Opcode::ProtocolError))
        return Error::parse("net frame: unknown opcode " +
                            std::to_string(op));
    out->opcode = static_cast<Opcode>(op);
    out->version = version;
    out->payload = body + 2;
    out->payloadLen = bodyLen - 2;
    return 4 + bodyLen + 4;
}

void
FrameWriter::begin(Opcode op)
{
    frameStart_ = buf_.size();
    open_ = true;
    putLe32(buf_, 0); // length prefix, patched by end()
    buf_.push_back(static_cast<uint8_t>(op));
    buf_.push_back(kProtocolVersion);
}

void
FrameWriter::putU8(uint8_t v)
{
    buf_.push_back(v);
}

void
FrameWriter::putU32(uint32_t v)
{
    putLe32(buf_, v);
}

void
FrameWriter::putU64(uint64_t v)
{
    putLe32(buf_, static_cast<uint32_t>(v));
    putLe32(buf_, static_cast<uint32_t>(v >> 32));
}

void
FrameWriter::putVarint(uint64_t v)
{
    uint8_t tmp[simd::kMaxVarintBytes];
    size_t n = simd::encodeVarint(tmp, v);
    buf_.insert(buf_.end(), tmp, tmp + n);
}

void
FrameWriter::putBytes(const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + len);
}

void
FrameWriter::putString(const std::string &s)
{
    putVarint(s.size());
    putBytes(s.data(), s.size());
}

void
FrameWriter::end()
{
    if (!open_)
        return;
    open_ = false;
    const size_t bodyLen = buf_.size() - frameStart_ - 4;
    uint8_t *len = buf_.data() + frameStart_;
    len[0] = static_cast<uint8_t>(bodyLen);
    len[1] = static_cast<uint8_t>(bodyLen >> 8);
    len[2] = static_cast<uint8_t>(bodyLen >> 16);
    len[3] = static_cast<uint8_t>(bodyLen >> 24);
    const uint32_t crc =
        simd::crc32c(0, buf_.data() + frameStart_ + 4, bodyLen);
    putLe32(buf_, crc);
}

void
encodeHello(std::vector<uint8_t> &buf)
{
    FrameWriter w(buf);
    w.begin(Opcode::Hello);
    w.putU32(kHelloMagic);
    w.end();
}

void
encodeHelloAck(std::vector<uint8_t> &buf, const ServerLimits &limits)
{
    FrameWriter w(buf);
    w.begin(Opcode::HelloAck);
    w.putVarint(limits.maxFrameBytes);
    w.putVarint(limits.maxBatchPerFrame);
    w.putVarint(limits.workers);
    w.end();
}

void
encodeListKeys(std::vector<uint8_t> &buf)
{
    FrameWriter w(buf);
    w.begin(Opcode::ListKeys);
    w.end();
}

void
encodeKeyList(std::vector<uint8_t> &buf,
              const std::vector<std::string> &keys)
{
    FrameWriter w(buf);
    w.begin(Opcode::KeyList);
    w.putVarint(keys.size());
    for (const std::string &key : keys)
        w.putString(key);
    w.end();
}

void
encodeQueryBatch(std::vector<uint8_t> &buf, const serve::Request *reqs,
                 size_t n)
{
    FrameWriter w(buf);
    w.begin(Opcode::QueryBatch);
    w.putVarint(n);
    for (size_t i = 0; i < n; ++i) {
        const serve::Request &r = reqs[i];
        w.putVarint(r.id);
        w.putU8(static_cast<uint8_t>(r.kind));
        w.putString(r.key);
        w.putVarint(r.chip);
        w.putVarint(r.row);
    }
    w.end();
}

void
encodeResponseBatch(std::vector<uint8_t> &buf,
                    const WireResponse *resps, size_t n)
{
    FrameWriter w(buf);
    w.begin(Opcode::ResponseBatch);
    w.putVarint(n);
    for (size_t i = 0; i < n; ++i) {
        const WireResponse &r = resps[i];
        w.putVarint(r.id);
        w.putU8(static_cast<uint8_t>(r.status));
        w.putU8(r.weak ? 1 : 0);
        w.putVarint(r.bin);
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(r.interval));
        std::memcpy(&bits, &r.interval, sizeof(bits));
        w.putU64(bits);
    }
    w.end();
}

void
encodeProtocolError(std::vector<uint8_t> &buf,
                    const std::string &message)
{
    FrameWriter w(buf);
    w.begin(Opcode::ProtocolError);
    w.putString(message);
    w.end();
}

namespace {

Status
requireOpcode(const FrameView &frame, Opcode want)
{
    if (frame.opcode != want)
        return Error::parse(std::string("net: expected ") +
                            toString(want) + " frame, got " +
                            toString(frame.opcode));
    return okStatus();
}

/**
 * Clamp an announced element count against the decoder limit and the
 * bytes actually present (`minBytes` per element): a forged count can
 * neither oversize a reserve nor pass the loop's bounds checks.
 */
Expected<size_t>
clampCount(uint64_t announced, size_t maxBatch, size_t minBytes,
           size_t remaining, const char *what)
{
    if (announced > maxBatch)
        return Error::corrupt("net frame: " + std::string(what) +
                              " count " + std::to_string(announced) +
                              " exceeds the per-frame clamp " +
                              std::to_string(maxBatch));
    if (announced * minBytes > remaining)
        return corrupt("announced count larger than the payload holds");
    return static_cast<size_t>(announced);
}

} // namespace

Expected<uint32_t>
decodeHello(const FrameView &frame)
{
    if (Status s = requireOpcode(frame, Opcode::Hello); !s)
        return s.error();
    PayloadReader r(frame);
    uint32_t magic = 0;
    if (!r.u32(&magic))
        return corrupt("truncated Hello payload");
    if (r.remaining() != 0)
        return corrupt("trailing bytes after Hello payload");
    return magic;
}

Expected<ServerLimits>
decodeHelloAck(const FrameView &frame)
{
    if (Status s = requireOpcode(frame, Opcode::HelloAck); !s)
        return s.error();
    PayloadReader r(frame);
    ServerLimits limits;
    if (!r.varint(&limits.maxFrameBytes) ||
        !r.varint(&limits.maxBatchPerFrame) ||
        !r.varint(&limits.workers))
        return corrupt("truncated HelloAck payload");
    if (r.remaining() != 0)
        return corrupt("trailing bytes after HelloAck payload");
    return limits;
}

Status
decodeKeyList(const FrameView &frame, const DecodeLimits &limits,
              std::vector<std::string> &out)
{
    if (Status s = requireOpcode(frame, Opcode::KeyList); !s)
        return s;
    PayloadReader r(frame);
    uint64_t announced = 0;
    if (!r.varint(&announced))
        return corrupt("truncated KeyList count");
    Expected<size_t> count =
        clampCount(announced, limits.maxBatchPerFrame,
                   kMinKeyEntryBytes, r.remaining(), "KeyList");
    if (!count)
        return count.error();
    out.reserve(out.size() + count.value());
    for (size_t i = 0; i < count.value(); ++i) {
        uint64_t len = 0;
        if (!r.varint(&len))
            return corrupt("truncated KeyList entry length");
        if (len > limits.maxKeyBytes)
            return corrupt("KeyList key length exceeds the clamp");
        std::string key;
        if (!r.bytes(&key, static_cast<size_t>(len)))
            return corrupt("truncated KeyList key bytes");
        out.push_back(std::move(key));
    }
    if (r.remaining() != 0)
        return corrupt("trailing bytes after KeyList payload");
    return okStatus();
}

Status
decodeQueryBatch(const FrameView &frame, const DecodeLimits &limits,
                 std::vector<serve::Request> &out)
{
    if (Status s = requireOpcode(frame, Opcode::QueryBatch); !s)
        return s;
    PayloadReader r(frame);
    uint64_t announced = 0;
    if (!r.varint(&announced))
        return corrupt("truncated QueryBatch count");
    Expected<size_t> count =
        clampCount(announced, limits.maxBatchPerFrame, kMinQueryBytes,
                   r.remaining(), "QueryBatch");
    if (!count)
        return count.error();
    out.reserve(out.size() + count.value());
    for (size_t i = 0; i < count.value(); ++i) {
        serve::Request req;
        uint8_t kind = 0;
        uint64_t keyLen = 0, chip = 0;
        if (!r.varint(&req.id) || !r.u8(&kind) || !r.varint(&keyLen))
            return corrupt("truncated QueryBatch request");
        if (kind > static_cast<uint8_t>(serve::QueryKind::RefreshBin))
            return corrupt("QueryBatch request kind out of range");
        if (keyLen > limits.maxKeyBytes)
            return corrupt("QueryBatch key length exceeds the clamp");
        if (!r.bytes(&req.key, static_cast<size_t>(keyLen)) ||
            !r.varint(&chip) || !r.varint(&req.row))
            return corrupt("truncated QueryBatch request fields");
        if (chip > UINT32_MAX)
            return corrupt("QueryBatch chip out of range");
        req.kind = static_cast<serve::QueryKind>(kind);
        req.chip = static_cast<uint32_t>(chip);
        out.push_back(std::move(req));
    }
    if (r.remaining() != 0)
        return corrupt("trailing bytes after QueryBatch payload");
    return okStatus();
}

Status
decodeResponseBatch(const FrameView &frame, const DecodeLimits &limits,
                    std::vector<WireResponse> &out)
{
    if (Status s = requireOpcode(frame, Opcode::ResponseBatch); !s)
        return s;
    PayloadReader r(frame);
    uint64_t announced = 0;
    if (!r.varint(&announced))
        return corrupt("truncated ResponseBatch count");
    Expected<size_t> count =
        clampCount(announced, limits.maxBatchPerFrame,
                   kMinResponseBytes, r.remaining(), "ResponseBatch");
    if (!count)
        return count.error();
    out.reserve(out.size() + count.value());
    for (size_t i = 0; i < count.value(); ++i) {
        WireResponse resp;
        uint8_t status = 0, weak = 0;
        uint64_t bin = 0, bits = 0;
        if (!r.varint(&resp.id) || !r.u8(&status) || !r.u8(&weak) ||
            !r.varint(&bin) || !r.u64(&bits))
            return corrupt("truncated ResponseBatch response");
        if (status > static_cast<uint8_t>(WireStatus::Rejected))
            return corrupt("ResponseBatch status out of range");
        if (bin > UINT32_MAX)
            return corrupt("ResponseBatch bin out of range");
        resp.status = static_cast<WireStatus>(status);
        resp.weak = weak != 0;
        resp.bin = static_cast<uint32_t>(bin);
        std::memcpy(&resp.interval, &bits, sizeof(resp.interval));
        out.push_back(resp);
    }
    if (r.remaining() != 0)
        return corrupt("trailing bytes after ResponseBatch payload");
    return okStatus();
}

Expected<std::string>
decodeProtocolError(const FrameView &frame, const DecodeLimits &limits)
{
    if (Status s = requireOpcode(frame, Opcode::ProtocolError); !s)
        return s.error();
    PayloadReader r(frame);
    uint64_t len = 0;
    if (!r.varint(&len))
        return corrupt("truncated ProtocolError length");
    if (len > limits.maxFrameBytes)
        return corrupt("ProtocolError length exceeds the clamp");
    std::string msg;
    if (!r.bytes(&msg, static_cast<size_t>(len)))
        return corrupt("truncated ProtocolError message");
    return msg;
}

} // namespace net
} // namespace reaper
