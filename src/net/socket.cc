#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace reaper {
namespace net {

namespace {

using common::Error;
using common::Expected;
using common::Status;
using common::okStatus;

Error
ioError(const std::string &what)
{
    return Error::io(what + ": " + std::strerror(errno));
}

Expected<sockaddr_in>
resolve(const std::string &host, uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    const std::string &ip = host == "localhost" ? "127.0.0.1" : host;
    if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1)
        return Error::invalidConfig(
            "net: host must be an IPv4 dotted quad or 'localhost', "
            "got '" + host + "'");
    return addr;
}

} // namespace

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Status
Socket::setNonBlocking(bool on)
{
    int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0)
        return ioError("fcntl(F_GETFL)");
    if (on)
        flags |= O_NONBLOCK;
    else
        flags &= ~O_NONBLOCK;
    if (::fcntl(fd_, F_SETFL, flags) < 0)
        return ioError("fcntl(F_SETFL)");
    return okStatus();
}

Status
Socket::setNoDelay(bool on)
{
    int v = on ? 1 : 0;
    if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)) < 0)
        return ioError("setsockopt(TCP_NODELAY)");
    return okStatus();
}

Expected<uint16_t>
Socket::localPort() const
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&addr), &len) <
        0)
        return ioError("getsockname");
    return ntohs(addr.sin_port);
}

Expected<Socket>
Socket::listenTcp(const std::string &host, uint16_t port, int backlog)
{
    Expected<sockaddr_in> addr = resolve(host, port);
    if (!addr)
        return addr.error();
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        return ioError("socket");
    int one = 1;
    if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one)) < 0)
        return ioError("setsockopt(SO_REUSEADDR)");
    if (::bind(sock.fd(),
               reinterpret_cast<const sockaddr *>(&addr.value()),
               sizeof(addr.value())) < 0)
        return ioError("bind " + host + ":" + std::to_string(port));
    if (::listen(sock.fd(), backlog) < 0)
        return ioError("listen");
    return sock;
}

Expected<Socket>
Socket::connectTcp(const std::string &host, uint16_t port)
{
    Expected<sockaddr_in> addr = resolve(host, port);
    if (!addr)
        return addr.error();
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        return ioError("socket");
    for (;;) {
        if (::connect(sock.fd(),
                      reinterpret_cast<const sockaddr *>(&addr.value()),
                      sizeof(addr.value())) == 0)
            return sock;
        if (errno == EINTR)
            continue;
        return ioError("connect " + host + ":" +
                       std::to_string(port));
    }
}

Expected<std::pair<Socket, Socket>>
makeWakePipe()
{
    int fds[2];
    if (::pipe(fds) < 0)
        return ioError("pipe");
    Socket rd(fds[0]), wr(fds[1]);
    if (Status s = rd.setNonBlocking(true); !s)
        return s.error();
    if (Status s = wr.setNonBlocking(true); !s)
        return s.error();
    return std::make_pair(std::move(rd), std::move(wr));
}

Status
writeAll(int fd, const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ioError("write");
        }
        p += n;
        len -= static_cast<size_t>(n);
    }
    return okStatus();
}

} // namespace net
} // namespace reaper
