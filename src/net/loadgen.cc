#include "net/loadgen.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "net/client.h"
#include "obs/metrics.h"

namespace reaper {
namespace net {

namespace {

using common::Error;
using common::Expected;
using common::Status;

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Per-connection tally merged into the result at the end. */
struct ConnTally
{
    uint64_t sent = 0;
    uint64_t ok = 0;
    uint64_t notFound = 0;
    uint64_t rejected = 0;
    uint64_t protocolErrors = 0;
    std::string error;
};

/** One in-flight QueryBatch frame. */
struct InFlight
{
    double sendTime = 0;
    size_t remaining = 0;
};

void
driveConnection(const LoadgenConfig &cfg, unsigned connIdx,
                uint64_t target, obs::Histogram &hist,
                ConnTally &tally)
{
    auto client = Client::connect(cfg.host, cfg.port, cfg.limits);
    if (!client) {
        tally.error = client.error().describe();
        return;
    }
    // Distinct deterministic stream per connection.
    serve::Workload workload(cfg.workload,
                             cfg.seed + 1000003ull * connIdx);

    std::vector<serve::Request> batchBuf;
    std::vector<WireResponse> respBuf;
    std::unordered_map<uint64_t, InFlight> inFlight;
    uint64_t nextBatchId = 1;
    uint64_t sent = 0;

    while (sent < target || !inFlight.empty()) {
        while (inFlight.size() < cfg.pipeline && sent < target) {
            const size_t count = static_cast<size_t>(
                std::min<uint64_t>(cfg.batch, target - sent));
            batchBuf.clear();
            for (size_t i = 0; i < count; ++i) {
                serve::Request req = workload.next();
                // All requests of a frame share a correlation id;
                // the batch is done when `count` answers carry it.
                req.id = nextBatchId;
                batchBuf.push_back(std::move(req));
            }
            const double sendTime = nowSeconds();
            if (Status s = client.value().sendQueries(
                    batchBuf.data(), batchBuf.size());
                !s) {
                tally.error = s.error().describe();
                return;
            }
            inFlight.emplace(nextBatchId,
                             InFlight{sendTime, count});
            ++nextBatchId;
            sent += count;
            tally.sent += count;
        }
        if (inFlight.empty())
            break;

        respBuf.clear();
        if (Status s = client.value().recvResponses(respBuf); !s) {
            if (s.error().category ==
                common::ErrorCategory::Parse)
                ++tally.protocolErrors;
            tally.error = s.error().describe();
            return;
        }
        const double recvTime = nowSeconds();
        for (const WireResponse &resp : respBuf) {
            switch (resp.status) {
            case WireStatus::Ok:
                ++tally.ok;
                break;
            case WireStatus::NotFound:
                ++tally.notFound;
                break;
            case WireStatus::Rejected:
                ++tally.rejected;
                break;
            }
            auto it = inFlight.find(resp.id);
            if (it == inFlight.end())
                continue; // duplicate/unknown id: counted above
            if (--it->second.remaining == 0) {
                hist.record(recvTime - it->second.sendTime);
                inFlight.erase(it);
            }
        }
    }
}

} // namespace

Expected<LoadgenResult>
runLoadgen(const LoadgenConfig &cfg)
{
    if (cfg.connections == 0 || cfg.batch == 0 ||
        cfg.pipeline == 0)
        return Error::invalidConfig(
            "loadgen: connections, pipeline, and batch must be > 0");

    LoadgenConfig run = cfg;
    if (run.workload.keys.empty()) {
        auto probe = Client::connect(run.host, run.port, run.limits);
        if (!probe)
            return probe.error();
        auto keys = probe.value().listKeys();
        if (!keys)
            return keys.error();
        if (keys.value().empty())
            return Error::invalidConfig(
                "loadgen: daemon advertises no profile keys and no "
                "workload keys were given");
        run.workload.keys = std::move(keys.value());
    }

    // Split the request budget across connections (first ones take
    // the remainder).
    const uint64_t base = run.totalRequests / run.connections;
    const uint64_t extra = run.totalRequests % run.connections;

    obs::Histogram hist;
    std::vector<ConnTally> tallies(run.connections);
    std::vector<std::thread> threads;
    threads.reserve(run.connections);

    const double start = nowSeconds();
    for (unsigned c = 0; c < run.connections; ++c) {
        const uint64_t target = base + (c < extra ? 1 : 0);
        threads.emplace_back([&run, c, target, &hist, &tallies] {
            driveConnection(run, c, target, hist, tallies[c]);
        });
    }
    for (std::thread &t : threads)
        t.join();
    const double elapsed = nowSeconds() - start;

    LoadgenResult result;
    result.seconds = elapsed;
    for (const ConnTally &tally : tallies) {
        result.sent += tally.sent;
        result.ok += tally.ok;
        result.notFound += tally.notFound;
        result.rejected += tally.rejected;
        result.protocolErrors += tally.protocolErrors;
        if (!tally.error.empty() && result.errors.size() < 8)
            result.errors.push_back(tally.error);
    }
    const uint64_t answered =
        result.ok + result.notFound + result.rejected;
    result.unanswered =
        result.sent > answered ? result.sent - answered : 0;
    result.qps = elapsed > 0
                     ? static_cast<double>(answered) / elapsed
                     : 0;
    result.p50Us = hist.percentile(0.50) * 1e6;
    result.p95Us = hist.percentile(0.95) * 1e6;
    result.p99Us = hist.percentile(0.99) * 1e6;
    return result;
}

} // namespace net
} // namespace reaper
