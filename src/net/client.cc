#include "net/client.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>

namespace reaper {
namespace net {

namespace {

using common::Error;
using common::Expected;
using common::Status;
using common::okStatus;

constexpr size_t kReadChunkBytes = 64 * 1024;

} // namespace

Expected<Client>
Client::connect(const std::string &host, uint16_t port,
                DecodeLimits limits)
{
    auto sock = Socket::connectTcp(host, port);
    if (!sock)
        return sock.error();
    Client client;
    client.sock_ = std::move(sock.value());
    client.limits_ = limits;
    if (Status s = client.sock_.setNoDelay(true); !s)
        return s.error();

    client.sendBuf_.clear();
    encodeHello(client.sendBuf_);
    if (Status s = writeAll(client.sock_.fd(),
                            client.sendBuf_.data(),
                            client.sendBuf_.size());
        !s)
        return s.error();
    auto frame = client.recvFrame();
    if (!frame)
        return frame.error();
    if (frame.value().opcode == Opcode::ProtocolError) {
        auto msg =
            decodeProtocolError(frame.value(), client.limits_);
        return Error::parse(
            "net: daemon rejected handshake: " +
            (msg ? msg.value() : msg.error().describe()));
    }
    if (frame.value().opcode != Opcode::HelloAck)
        return Error::parse(std::string("net: expected HelloAck, "
                                        "got ") +
                            toString(frame.value().opcode));
    auto limitsAck = decodeHelloAck(frame.value());
    if (!limitsAck)
        return limitsAck.error();
    client.serverLimits_ = limitsAck.value();
    return client;
}

Expected<std::vector<std::string>>
Client::listKeys()
{
    sendBuf_.clear();
    encodeListKeys(sendBuf_);
    if (Status s = writeAll(sock_.fd(), sendBuf_.data(),
                            sendBuf_.size());
        !s)
        return s.error();
    auto frame = recvFrame();
    if (!frame)
        return frame.error();
    if (frame.value().opcode == Opcode::ProtocolError) {
        auto msg = decodeProtocolError(frame.value(), limits_);
        return Error::parse(
            "net: daemon reported: " +
            (msg ? msg.value() : msg.error().describe()));
    }
    if (frame.value().opcode != Opcode::KeyList)
        return Error::parse(std::string("net: expected KeyList, "
                                        "got ") +
                            toString(frame.value().opcode));
    std::vector<std::string> keys;
    if (Status s = decodeKeyList(frame.value(), limits_, keys); !s)
        return s.error();
    return keys;
}

Status
Client::sendQueries(const serve::Request *reqs, size_t n)
{
    sendBuf_.clear();
    encodeQueryBatch(sendBuf_, reqs, n);
    return writeAll(sock_.fd(), sendBuf_.data(), sendBuf_.size());
}

Status
Client::recvResponses(std::vector<WireResponse> &out)
{
    auto frame = recvFrame();
    if (!frame)
        return frame.error();
    if (frame.value().opcode == Opcode::ProtocolError) {
        auto msg = decodeProtocolError(frame.value(), limits_);
        return Error::parse(
            "net: daemon reported: " +
            (msg ? msg.value() : msg.error().describe()));
    }
    if (frame.value().opcode != Opcode::ResponseBatch)
        return Error::parse(
            std::string("net: expected ResponseBatch, got ") +
            toString(frame.value().opcode));
    return decodeResponseBatch(frame.value(), limits_, out);
}

Expected<FrameView>
Client::recvFrame()
{
    for (;;) {
        FrameView frame;
        auto consumed =
            tryExtractFrame(inbuf_.data() + inStart_,
                            inbuf_.size() - inStart_, limits_,
                            &frame);
        if (!consumed)
            return consumed.error();
        if (consumed.value() > 0) {
            // The FrameView aliases inbuf_; it stays valid until the
            // next recvFrame() mutates the buffer.
            inStart_ += consumed.value();
            return frame;
        }
        if (inStart_ == inbuf_.size()) {
            inbuf_.clear();
            inStart_ = 0;
        } else if (inStart_ > kReadChunkBytes) {
            inbuf_.erase(inbuf_.begin(),
                         inbuf_.begin() +
                             static_cast<ptrdiff_t>(inStart_));
            inStart_ = 0;
        }
        const size_t old = inbuf_.size();
        inbuf_.resize(old + kReadChunkBytes);
        ssize_t n = ::recv(sock_.fd(), inbuf_.data() + old,
                           kReadChunkBytes, 0);
        if (n < 0) {
            inbuf_.resize(old);
            if (errno == EINTR)
                continue;
            return Error::io(std::string("net: recv: ") +
                             std::strerror(errno));
        }
        if (n == 0) {
            inbuf_.resize(old);
            return Error::io(
                "net: connection closed by the daemon mid-frame");
        }
        inbuf_.resize(old + static_cast<size_t>(n));
    }
}

} // namespace net
} // namespace reaper
