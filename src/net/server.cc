#include "net/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <mutex>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/obs.h"

namespace reaper {
namespace net {

namespace {

using common::Error;
using common::Status;
using common::okStatus;

constexpr size_t kReadChunkBytes = 64 * 1024;
/** Compact a buffer once its consumed prefix crosses this. */
constexpr size_t kCompactThresholdBytes = 64 * 1024;

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

Server::Server(serve::ProfileCache &cache,
               serve::EngineConfig engineCfg, ServerConfig cfg,
               serve::Metrics *metrics)
    : cache_(cache), engineCfg_(engineCfg), cfg_(std::move(cfg)),
      metrics_(metrics)
{
}

Server::~Server()
{
    stop();
    join();
}

Status
Server::start()
{
    if (started_)
        return Error::invalidConfig("net: server already started");
    auto listener =
        Socket::listenTcp(cfg_.host, cfg_.port, cfg_.backlog);
    if (!listener)
        return listener.error();
    listener_ = std::move(listener.value());
    if (Status s = listener_.setNonBlocking(true); !s)
        return s;
    auto port = listener_.localPort();
    if (!port)
        return port.error();
    port_ = port.value();
    auto wake = makeWakePipe();
    if (!wake)
        return wake.error();
    wakeRead_ = std::move(wake.value().first);
    wakeWrite_ = std::move(wake.value().second);
    engine_ = std::make_unique<serve::QueryEngine>(
        cache_, engineCfg_, metrics_,
        [this](const serve::Response &resp) {
            onEngineResponse(resp);
        });
    started_ = true;
    io_ = std::thread([this] { ioLoop(); });
    return okStatus();
}

void
Server::stop()
{
    if (!started_)
        return;
    if (!stopRequested_.exchange(true)) {
        const uint8_t byte = 0;
        [[maybe_unused]] ssize_t n =
            ::write(wakeWrite_.fd(), &byte, 1);
    }
}

void
Server::join()
{
    if (io_.joinable())
        io_.join();
}

ServerStats
Server::stats() const
{
    ServerStats s;
    s.connectionsAccepted = connectionsAccepted_.load();
    s.connectionsClosed = connectionsClosed_.load();
    s.framesIn = framesIn_.load();
    s.framesOut = framesOut_.load();
    s.bytesIn = bytesIn_.load();
    s.bytesOut = bytesOut_.load();
    s.requests = requests_.load();
    s.responsesOk = responsesOk_.load();
    s.responsesNotFound = responsesNotFound_.load();
    s.responsesRejected = responsesRejected_.load();
    s.responsesOrphaned = responsesOrphaned_.load();
    s.protocolErrors = protocolErrors_.load();
    return s;
}

uint64_t
Server::completed() const
{
    return engine_ ? engine_->completed() : 0;
}

void
Server::ioLoop()
{
    std::vector<pollfd> fds;
    std::vector<Conn *> polled;
    std::vector<uint64_t> toClose;
    while (!stopRequested_.load(std::memory_order_relaxed)) {
        flushPending();

        fds.clear();
        polled.clear();
        fds.push_back({wakeRead_.fd(), POLLIN, 0});
        size_t connCount;
        {
            std::lock_guard<std::mutex> lock(mu_);
            connCount = conns_.size();
        }
        const bool acceptSlot = connCount < cfg_.maxConnections;
        fds.push_back({acceptSlot ? listener_.fd() : -1, POLLIN, 0});
        {
            std::lock_guard<std::mutex> lock(mu_);
            for (auto &entry : conns_) {
                Conn &conn = *entry.second;
                const size_t queued =
                    conn.outbuf.size() - conn.outStart;
                conn.readPaused = queued > cfg_.outbufSoftCapBytes;
                short events = 0;
                if (!conn.closing && !conn.readPaused)
                    events |= POLLIN;
                if (queued > 0)
                    events |= POLLOUT;
                fds.push_back({conn.sock.fd(), events, 0});
                polled.push_back(&conn);
            }
        }

        int ready = ::poll(fds.data(),
                           static_cast<nfds_t>(fds.size()), 100);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break; // unrecoverable poll failure: shut down
        }

        if (fds[0].revents & POLLIN) {
            uint8_t drainBuf[256];
            while (::read(wakeRead_.fd(), drainBuf,
                          sizeof(drainBuf)) > 0) {
            }
        }
        if (acceptSlot && (fds[1].revents & POLLIN))
            acceptReady();

        toClose.clear();
        for (size_t i = 0; i < polled.size(); ++i) {
            Conn &conn = *polled[i];
            const short revents = fds[i + 2].revents;
            if (revents == 0)
                continue;
            bool alive = true;
            if (revents & (POLLERR | POLLNVAL))
                alive = false;
            if (alive && (revents & (POLLIN | POLLHUP)))
                alive = readReady(conn);
            if (alive && (revents & POLLOUT))
                alive = writeReady(conn);
            if (alive && conn.closing &&
                conn.outStart == conn.outbuf.size())
                alive = false; // error frame flushed: done
            if (!alive)
                toClose.push_back(conn.id);
        }
        for (uint64_t id : toClose)
            closeConn(id);
    }
    shutdownSequence();
}

void
Server::acceptReady()
{
    for (;;) {
        int fd = ::accept(listener_.fd(), nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN or transient failure: retry next wake
        }
        Socket sock(fd);
        if (!sock.setNonBlocking(true) || !sock.setNoDelay(true))
            continue; // drop the connection, keep accepting
        auto conn = std::make_unique<Conn>();
        conn->sock = std::move(sock);
        connectionsAccepted_.fetch_add(1, std::memory_order_relaxed);
        REAPER_OBS_COUNT("net.connections_accepted");
        {
            std::lock_guard<std::mutex> lock(mu_);
            conn->id = nextConnId_++;
            conns_.emplace(conn->id, std::move(conn));
            if (conns_.size() >= cfg_.maxConnections)
                return;
        }
    }
}

bool
Server::readReady(Conn &conn)
{
    // Read everything available (bounded per wakeup so one firehose
    // connection cannot starve the rest), then decode frame-by-frame.
    size_t budget = 4 * kReadChunkBytes;
    bool sawEof = false;
    while (budget > 0) {
        const size_t old = conn.inbuf.size();
        conn.inbuf.resize(old + kReadChunkBytes);
        ssize_t n = ::recv(conn.sock.fd(), conn.inbuf.data() + old,
                           kReadChunkBytes, 0);
        if (n < 0) {
            conn.inbuf.resize(old);
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            return false;
        }
        if (n == 0) {
            conn.inbuf.resize(old);
            sawEof = true;
            break;
        }
        conn.inbuf.resize(old + static_cast<size_t>(n));
        bytesIn_.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
        budget -= std::min(budget, static_cast<size_t>(n));
        if (static_cast<size_t>(n) < kReadChunkBytes)
            break;
    }

    while (!conn.closing) {
        FrameView frame;
        auto consumed = tryExtractFrame(
            conn.inbuf.data() + conn.inStart,
            conn.inbuf.size() - conn.inStart, cfg_.limits, &frame);
        if (!consumed) {
            protocolError(conn, consumed.error().describe());
            break;
        }
        if (consumed.value() == 0)
            break;
        framesIn_.fetch_add(1, std::memory_order_relaxed);
        REAPER_OBS_COUNT("net.frames_in");
        conn.inStart += consumed.value();
        if (!handleFrame(conn, frame))
            break;
    }
    if (conn.inStart == conn.inbuf.size()) {
        conn.inbuf.clear();
        conn.inStart = 0;
    } else if (conn.inStart > kCompactThresholdBytes) {
        conn.inbuf.erase(conn.inbuf.begin(),
                         conn.inbuf.begin() +
                             static_cast<ptrdiff_t>(conn.inStart));
        conn.inStart = 0;
    }
    // A peer that half-closed after sending requests still gets its
    // in-flight answers only if it keeps the read side open; a full
    // EOF means nobody is listening — close (in-flight answers are
    // counted orphaned by the sink).
    return !sawEof;
}

bool
Server::handleFrame(Conn &conn, const FrameView &frame)
{
    switch (frame.opcode) {
    case Opcode::Hello: {
        auto magic = decodeHello(frame);
        if (!magic || magic.value() != kHelloMagic) {
            protocolError(conn, !magic ? magic.error().describe()
                                       : "net: Hello magic mismatch");
            return false;
        }
        ServerLimits limits;
        limits.maxFrameBytes = cfg_.limits.maxFrameBytes;
        limits.maxBatchPerFrame = cfg_.limits.maxBatchPerFrame;
        limits.workers = engineCfg_.workers;
        encodeHelloAck(conn.outbuf, limits);
        framesOut_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    case Opcode::ListKeys:
        encodeKeyList(conn.outbuf, cfg_.keys);
        framesOut_.fetch_add(1, std::memory_order_relaxed);
        return true;
    case Opcode::QueryBatch:
        submitQueries(conn, frame);
        return !conn.closing;
    case Opcode::HelloAck:
    case Opcode::KeyList:
    case Opcode::ResponseBatch:
    case Opcode::ProtocolError:
        protocolError(conn,
                      std::string("net: unexpected ") +
                          toString(frame.opcode) +
                          " frame from a client");
        return false;
    }
    return false;
}

void
Server::submitQueries(Conn &conn, const FrameView &frame)
{
    decodeScratch_.clear();
    Status decoded =
        decodeQueryBatch(frame, cfg_.limits, decodeScratch_);
    if (!decoded) {
        protocolError(conn, decoded.error().describe());
        return;
    }
    const size_t n = decodeScratch_.size();
    if (n == 0)
        return;
    requests_.fetch_add(n, std::memory_order_relaxed);
    REAPER_OBS_COUNT_N("net.requests", n);

    // Remap client correlation ids to process-unique internal ids and
    // register the origin of each before submission — a worker may
    // answer the instant the queue holds the request.
    submitScratch_.clear();
    submitScratch_.reserve(n);
    clientIds_.clear();
    clientIds_.reserve(n);
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (serve::Request &req : decodeScratch_) {
            const uint64_t internal = nextInternalId_++;
            idMap_.emplace(internal, Origin{conn.id, req.id});
            clientIds_.push_back(req.id);
            req.id = internal;
            submitScratch_.push_back(std::move(req));
        }
    }

    // One non-blocking submission attempt: the engine takes the
    // prefix its bounded queue can hold, the rest are answered
    // Rejected right now. The IO loop never waits on the engine.
    const size_t taken = engine_->trySubmitBatch(submitScratch_, 0);
    if (taken < n) {
        std::lock_guard<std::mutex> lock(mu_);
        for (size_t i = taken; i < n; ++i) {
            idMap_.erase(submitScratch_[i].id);
            WireResponse resp;
            resp.id = clientIds_[i];
            resp.status = WireStatus::Rejected;
            conn.pending.push_back(resp);
        }
        responsesRejected_.fetch_add(n - taken,
                                     std::memory_order_relaxed);
        REAPER_OBS_COUNT_N("net.responses_rejected", n - taken);
    }
}

void
Server::onEngineResponse(const serve::Response &resp)
{
    bool wake = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = idMap_.find(resp.id);
        if (it == idMap_.end()) {
            responsesOrphaned_.fetch_add(1,
                                         std::memory_order_relaxed);
            return;
        }
        const Origin origin = it->second;
        idMap_.erase(it);
        auto cit = conns_.find(origin.connId);
        if (cit == conns_.end() || cit->second->closing) {
            responsesOrphaned_.fetch_add(1,
                                         std::memory_order_relaxed);
            return;
        }
        Conn &conn = *cit->second;
        WireResponse wireResp;
        wireResp.id = origin.clientId;
        if (resp.status == serve::ResponseStatus::Ok) {
            wireResp.status = WireStatus::Ok;
            responsesOk_.fetch_add(1, std::memory_order_relaxed);
        } else {
            wireResp.status = WireStatus::NotFound;
            responsesNotFound_.fetch_add(1,
                                         std::memory_order_relaxed);
        }
        wireResp.weak = resp.weak;
        wireResp.bin = resp.bin;
        wireResp.interval = resp.interval;
        wake = conn.pending.empty();
        conn.pending.push_back(wireResp);
    }
    if (wake) {
        const uint8_t byte = 0;
        [[maybe_unused]] ssize_t n =
            ::write(wakeWrite_.fd(), &byte, 1);
    }
}

void
Server::flushPending()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &entry : conns_) {
        Conn &conn = *entry.second;
        if (conn.pending.empty())
            continue;
        const size_t chunk = cfg_.limits.maxBatchPerFrame;
        for (size_t off = 0; off < conn.pending.size();
             off += chunk) {
            const size_t count =
                std::min(chunk, conn.pending.size() - off);
            encodeResponseBatch(conn.outbuf,
                                conn.pending.data() + off, count);
            framesOut_.fetch_add(1, std::memory_order_relaxed);
        }
        conn.pending.clear();
    }
}

bool
Server::writeReady(Conn &conn)
{
    while (conn.outStart < conn.outbuf.size()) {
        ssize_t n = ::send(conn.sock.fd(),
                           conn.outbuf.data() + conn.outStart,
                           conn.outbuf.size() - conn.outStart,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            return false;
        }
        conn.outStart += static_cast<size_t>(n);
        bytesOut_.fetch_add(static_cast<uint64_t>(n),
                            std::memory_order_relaxed);
    }
    if (conn.outStart == conn.outbuf.size()) {
        conn.outbuf.clear();
        conn.outStart = 0;
    } else if (conn.outStart > kCompactThresholdBytes) {
        conn.outbuf.erase(conn.outbuf.begin(),
                          conn.outbuf.begin() +
                              static_cast<ptrdiff_t>(conn.outStart));
        conn.outStart = 0;
    }
    return true;
}

void
Server::closeConn(uint64_t connId)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(connId);
    if (it == conns_.end())
        return;
    conns_.erase(it); // Socket destructor closes the fd
    connectionsClosed_.fetch_add(1, std::memory_order_relaxed);
    REAPER_OBS_COUNT("net.connections_closed");
}

void
Server::protocolError(Conn &conn, const std::string &message)
{
    protocolErrors_.fetch_add(1, std::memory_order_relaxed);
    REAPER_OBS_COUNT("net.protocol_errors");
    std::lock_guard<std::mutex> lock(mu_);
    if (conn.closing)
        return;
    // Flush any answers queued before the violation, then the
    // terminal diagnostic; the conn closes once the outbuf drains.
    if (!conn.pending.empty()) {
        encodeResponseBatch(conn.outbuf, conn.pending.data(),
                            conn.pending.size());
        framesOut_.fetch_add(1, std::memory_order_relaxed);
        conn.pending.clear();
    }
    encodeProtocolError(conn.outbuf, message);
    framesOut_.fetch_add(1, std::memory_order_relaxed);
    conn.closing = true;
}

void
Server::shutdownSequence()
{
    // 1. Acceptor stop: no new connections, no new reads.
    listener_.close();
    // 2. Drain: every accepted request is answered; the sinks park
    //    the answers in per-connection pending lists.
    engine_->drain();
    // 3. Flush: encode the drained answers and push them out, bounded
    //    by the configured timeout.
    flushPending();
    const double deadline =
        nowSeconds() + cfg_.drainFlushTimeoutMs / 1000.0;
    std::vector<pollfd> fds;
    std::vector<Conn *> polled;
    std::vector<uint64_t> toClose;
    for (;;) {
        fds.clear();
        polled.clear();
        {
            std::lock_guard<std::mutex> lock(mu_);
            for (auto &entry : conns_) {
                Conn &conn = *entry.second;
                if (conn.outStart == conn.outbuf.size())
                    continue;
                fds.push_back({conn.sock.fd(), POLLOUT, 0});
                polled.push_back(&conn);
            }
        }
        if (fds.empty())
            break;
        const double remaining = deadline - nowSeconds();
        if (remaining <= 0)
            break;
        int timeout = static_cast<int>(
            std::min(remaining * 1000.0, 100.0));
        int ready = ::poll(fds.data(),
                           static_cast<nfds_t>(fds.size()),
                           std::max(timeout, 1));
        if (ready < 0 && errno != EINTR)
            break;
        toClose.clear();
        for (size_t i = 0; i < polled.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            if ((fds[i].revents & (POLLERR | POLLNVAL | POLLHUP)) ||
                !writeReady(*polled[i]))
                toClose.push_back(polled[i]->id);
        }
        for (uint64_t id : toClose)
            closeConn(id);
    }
    // 4. Close everything that remains.
    std::lock_guard<std::mutex> lock(mu_);
    connectionsClosed_.fetch_add(conns_.size(),
                                 std::memory_order_relaxed);
    conns_.clear();
}

// ---- Process-wide shutdown latch ------------------------------------

namespace {

std::atomic<bool> g_shutdownRequested{false};
int g_shutdownPipe[2] = {-1, -1};
std::once_flag g_shutdownPipeOnce;

void
ensureShutdownPipe()
{
    std::call_once(g_shutdownPipeOnce, [] {
        if (::pipe(g_shutdownPipe) == 0) {
            // Nonblocking write end: a signal storm must never block
            // inside the handler.
            int flags = ::fcntl(g_shutdownPipe[1], F_GETFL, 0);
            ::fcntl(g_shutdownPipe[1], F_SETFL, flags | O_NONBLOCK);
        }
    });
}

extern "C" void
reaperNetShutdownHandler(int)
{
    // Async-signal-safe: one lock-free store and one write(2).
    g_shutdownRequested.store(true, std::memory_order_relaxed);
    if (g_shutdownPipe[1] >= 0) {
        const uint8_t byte = 0;
        [[maybe_unused]] ssize_t n =
            ::write(g_shutdownPipe[1], &byte, 1);
    }
}

} // namespace

void
installShutdownHandlers()
{
    ensureShutdownPipe();
    struct sigaction sa{};
    sa.sa_handler = reaperNetShutdownHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

bool
shutdownRequested()
{
    return g_shutdownRequested.load(std::memory_order_relaxed);
}

void
requestShutdown()
{
    ensureShutdownPipe();
    g_shutdownRequested.store(true, std::memory_order_relaxed);
    if (g_shutdownPipe[1] >= 0) {
        const uint8_t byte = 0;
        [[maybe_unused]] ssize_t n =
            ::write(g_shutdownPipe[1], &byte, 1);
    }
}

void
waitForShutdown()
{
    ensureShutdownPipe();
    while (!shutdownRequested()) {
        pollfd pfd{g_shutdownPipe[0], POLLIN, 0};
        ::poll(&pfd, 1, 200);
    }
}

void
resetShutdownLatch()
{
    ensureShutdownPipe();
    g_shutdownRequested.store(false, std::memory_order_relaxed);
    uint8_t drainBuf[64];
    int flags = ::fcntl(g_shutdownPipe[0], F_GETFL, 0);
    ::fcntl(g_shutdownPipe[0], F_SETFL, flags | O_NONBLOCK);
    while (::read(g_shutdownPipe[0], drainBuf, sizeof(drainBuf)) > 0) {
    }
    ::fcntl(g_shutdownPipe[0], F_SETFL, flags);
}

} // namespace net
} // namespace reaper
