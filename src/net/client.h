/**
 * @file
 * Blocking REAPER-NET client: one TCP connection speaking the wire
 * protocol of net/wire.h.
 *
 * The client is deliberately synchronous — the concurrency story for
 * load generation is many connections on a few threads (see
 * net/loadgen.h), not an async client. Pipelining happens above this
 * layer: sendQueries() may be called repeatedly before
 * recvResponses(), and responses come back in whatever batches the
 * daemon coalesced.
 *
 * The client applies the same DecodeLimits clamps to server frames
 * that the daemon applies to client frames: neither side of the
 * protocol trusts the other's length fields.
 */

#ifndef REAPER_NET_CLIENT_H
#define REAPER_NET_CLIENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "serve/query_engine.h"

namespace reaper {
namespace net {

/** One blocking protocol connection. Move-only. */
class Client
{
  public:
    Client() = default;

    Client(Client &&) = default;
    Client &operator=(Client &&) = default;
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connect and complete the Hello/HelloAck handshake. The returned
     * client is ready for listKeys()/sendQueries().
     */
    static common::Expected<Client>
    connect(const std::string &host, uint16_t port,
            DecodeLimits limits = {});

    /** Limits the daemon announced in HelloAck. */
    const ServerLimits &serverLimits() const { return serverLimits_; }

    /** Fetch the daemon's advertised profile keys. */
    common::Expected<std::vector<std::string>> listKeys();

    /** Encode and send one QueryBatch frame (blocking write). */
    common::Status sendQueries(const serve::Request *reqs, size_t n);

    /**
     * Block for the next ResponseBatch frame and append its responses
     * to `out`. A ProtocolError frame (terminal) surfaces as a Parse
     * error carrying the daemon's message.
     */
    common::Status recvResponses(std::vector<WireResponse> &out);

    bool connected() const { return sock_.valid(); }
    void close() { sock_.close(); }

  private:
    /** Block until one complete frame is available. */
    common::Expected<FrameView> recvFrame();

    Socket sock_;
    DecodeLimits limits_;
    ServerLimits serverLimits_;
    std::vector<uint8_t> inbuf_;
    size_t inStart_ = 0;
    std::vector<uint8_t> sendBuf_;
};

} // namespace net
} // namespace reaper

#endif // REAPER_NET_CLIENT_H
