/**
 * @file
 * Thin RAII layer over POSIX TCP sockets for the serving tier.
 *
 * Deliberately minimal: an owning fd wrapper plus the four operations
 * the daemon and its clients need (listen, accept, connect, and the
 * option twiddles). Everything fallible returns common::Expected with
 * errno folded into the message, so callers dispatch on
 * ErrorCategory::Io / Fault like every other subsystem instead of
 * inspecting errno themselves.
 *
 * Address handling is IPv4: hosts are dotted quads ("0.0.0.0" binds
 * all interfaces), with "localhost" accepted as an alias for
 * 127.0.0.1. Port 0 asks the kernel for an ephemeral port; localPort()
 * reports what was actually bound — how tests and the bench run a
 * daemon without a port collision.
 */

#ifndef REAPER_NET_SOCKET_H
#define REAPER_NET_SOCKET_H

#include <cstdint>
#include <string>
#include <utility>

#include "common/expected.h"

namespace reaper {
namespace net {

/** Move-only owning TCP socket (or any pollable fd). */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;
    Socket(Socket &&other) noexcept : fd_(other.release()) {}
    Socket &operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.release();
        }
        return *this;
    }

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Give up ownership without closing. */
    int release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

    void close();

    common::Status setNonBlocking(bool on);
    /** Disable Nagle: the protocol already batches, so frames should
     *  hit the wire immediately. */
    common::Status setNoDelay(bool on);

    /** The locally bound port (after listenTcp/connectTcp). */
    common::Expected<uint16_t> localPort() const;

    /**
     * Bind `host:port` (port 0 = ephemeral) and listen. SO_REUSEADDR
     * is set so a restarted daemon does not trip over TIME_WAIT.
     */
    static common::Expected<Socket>
    listenTcp(const std::string &host, uint16_t port, int backlog);

    /** Blocking connect to `host:port`. */
    static common::Expected<Socket>
    connectTcp(const std::string &host, uint16_t port);

  private:
    int fd_ = -1;
};

/** A pipe pair for waking a poll loop from other threads (read end
 *  first, write end second); both ends are nonblocking. */
common::Expected<std::pair<Socket, Socket>> makeWakePipe();

/** Write all `len` bytes to a blocking fd (retrying short writes and
 *  EINTR). Errors are Io. */
common::Status writeAll(int fd, const void *data, size_t len);

} // namespace net
} // namespace reaper

#endif // REAPER_NET_SOCKET_H
