/**
 * @file
 * The TCP serving daemon: a poll-based event loop in front of the
 * in-process serve::QueryEngine.
 *
 * One acceptor/IO thread owns every socket: it accepts connections,
 * reads frames into per-connection buffers, decodes QueryBatch frames
 * (under the hostile-input clamps of net/wire.h), and batch-enqueues
 * the decoded requests into the engine's bounded MPMC queue via
 * trySubmitBatch — one lock acquisition per frame, mirroring the
 * engine's own batch dequeue. Nothing in the loop ever blocks:
 *
 *  - **Backpressure is protocol-visible.** Whatever prefix of a batch
 *    the engine's bounded queue cannot take is answered immediately
 *    with status Rejected. Under overload the daemon sheds load one
 *    response at a time; it never blocks the loop, never buffers
 *    unboundedly, and never drops a request without telling the
 *    client.
 *  - **Responses flow back through the engine sink.** Worker threads
 *    deliver each answer into the owning connection's pending list
 *    (id-remapped back to the client's correlation id) and wake the
 *    loop through a self-pipe; the loop coalesces pending answers
 *    into ResponseBatch frames on the next iteration.
 *  - **Flow control per connection.** A connection whose output
 *    buffer exceeds the soft cap stops being read (its requests stay
 *    in the kernel receive buffer and eventually push back on the
 *    client's TCP window) until the client drains responses.
 *
 * Graceful shutdown (stop(), or the process-wide SIGINT/SIGTERM latch
 * below): the listener closes, reading stops, the engine drains every
 * accepted request, the resulting responses are flushed to each
 * connection (bounded by drainFlushTimeoutMs), and only then do the
 * sockets close. Accepted requests are never dropped by shutdown.
 */

#ifndef REAPER_NET_SERVER_H
#define REAPER_NET_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "serve/metrics.h"
#include "serve/profile_cache.h"
#include "serve/query_engine.h"

namespace reaper {
namespace net {

/** Daemon shape. */
struct ServerConfig
{
    std::string host = "127.0.0.1";
    /** 0 = ephemeral; read the bound port back via Server::port(). */
    uint16_t port = 0;
    int backlog = 128;
    size_t maxConnections = 256;
    /** Decoder clamps for untrusted client frames. */
    DecodeLimits limits;
    /** Stop reading a connection whose unsent output exceeds this. */
    size_t outbufSoftCapBytes = 4u << 20;
    /** Shutdown: max time to flush drained responses to sockets. */
    int drainFlushTimeoutMs = 5000;
    /** Profile keys advertised to ListKeys clients. */
    std::vector<std::string> keys;
};

/** Monotonic daemon counters (relaxed snapshot). */
struct ServerStats
{
    uint64_t connectionsAccepted = 0;
    uint64_t connectionsClosed = 0;
    uint64_t framesIn = 0;
    uint64_t framesOut = 0;
    uint64_t bytesIn = 0;
    uint64_t bytesOut = 0;
    uint64_t requests = 0;      ///< decoded from QueryBatch frames
    uint64_t responsesOk = 0;
    uint64_t responsesNotFound = 0;
    uint64_t responsesRejected = 0; ///< backpressure sheds
    uint64_t responsesOrphaned = 0; ///< connection gone before answer
    uint64_t protocolErrors = 0;    ///< bad frames from clients
};

/**
 * TCP daemon over a ProfileCache. Owns its QueryEngine (constructed
 * in start() so the engine sink can target the server) and one IO
 * thread. The cache — and the store beneath it — must outlive the
 * server.
 */
class Server
{
  public:
    Server(serve::ProfileCache &cache, serve::EngineConfig engineCfg,
           ServerConfig cfg, serve::Metrics *metrics = nullptr);
    /** stop() + join(). */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, start the engine and the IO thread. */
    common::Status start();

    /** The bound port (valid after start()). */
    uint16_t port() const { return port_; }

    /** Request graceful shutdown (thread-safe, idempotent, returns
     *  immediately — join() waits for the drain to finish). */
    void stop();

    /** Wait for the IO thread to finish the shutdown sequence. */
    void join();

    ServerStats stats() const;

    /** Requests the engine has answered (incl. NotFound; excludes
     *  Rejected, which never enter the engine). */
    uint64_t completed() const;

    const ServerConfig &config() const { return cfg_; }

  private:
    struct Conn
    {
        uint64_t id = 0;
        Socket sock;
        std::vector<uint8_t> inbuf;
        size_t inStart = 0;
        std::vector<uint8_t> outbuf;
        size_t outStart = 0;
        /** Engine answers awaiting encode (guarded by mu_). */
        std::vector<WireResponse> pending;
        bool readPaused = false;
        /** Flush outbuf, then close (protocol error path). */
        bool closing = false;
    };

    /** Where a submitted request came from (guarded by mu_). */
    struct Origin
    {
        uint64_t connId = 0;
        uint64_t clientId = 0;
    };

    void ioLoop();
    void acceptReady();
    /** Read + decode + submit; false when the conn must close now. */
    bool readReady(Conn &conn);
    bool handleFrame(Conn &conn, const FrameView &frame);
    void submitQueries(Conn &conn, const FrameView &frame);
    /** Engine sink: runs on worker threads. */
    void onEngineResponse(const serve::Response &resp);
    /** Move pending answers into outbufs as ResponseBatch frames. */
    void flushPending();
    /** Nonblocking write of conn.outbuf; false when the conn died. */
    bool writeReady(Conn &conn);
    void closeConn(uint64_t connId);
    void protocolError(Conn &conn, const std::string &message);
    void shutdownSequence();

    serve::ProfileCache &cache_;
    serve::EngineConfig engineCfg_;
    ServerConfig cfg_;
    serve::Metrics *metrics_;
    std::unique_ptr<serve::QueryEngine> engine_;

    Socket listener_;
    Socket wakeRead_, wakeWrite_;
    uint16_t port_ = 0;
    std::thread io_;
    std::atomic<bool> stopRequested_{false};
    bool started_ = false;

    /** Guards conns_ membership, Conn::pending, closing, and idMap_.
     *  Socket buffers are IO-thread-only. */
    mutable std::mutex mu_;
    std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
    std::unordered_map<uint64_t, Origin> idMap_;
    uint64_t nextConnId_ = 1;
    uint64_t nextInternalId_ = 1;

    // Stats (relaxed atomics; snapshot via stats()).
    std::atomic<uint64_t> connectionsAccepted_{0};
    std::atomic<uint64_t> connectionsClosed_{0};
    std::atomic<uint64_t> framesIn_{0};
    std::atomic<uint64_t> framesOut_{0};
    std::atomic<uint64_t> bytesIn_{0};
    std::atomic<uint64_t> bytesOut_{0};
    std::atomic<uint64_t> requests_{0};
    std::atomic<uint64_t> responsesOk_{0};
    std::atomic<uint64_t> responsesNotFound_{0};
    std::atomic<uint64_t> responsesRejected_{0};
    std::atomic<uint64_t> responsesOrphaned_{0};
    std::atomic<uint64_t> protocolErrors_{0};

    /** Scratch for decoded batches (IO thread only). */
    std::vector<serve::Request> decodeScratch_;
    std::vector<serve::Request> submitScratch_;
    /** Client correlation ids parallel to submitScratch_. */
    std::vector<uint64_t> clientIds_;
};

// ---- Process-wide shutdown latch ------------------------------------
//
// SIGINT/SIGTERM cannot safely call into Server, so the handlers set
// an async-signal-safe latch (atomic flag + self-pipe write) that the
// daemon's main thread waits on before calling Server::stop(). The
// programmatic requestShutdown() is the same latch without the signal,
// so tests exercise the identical wakeup path.

/** Route SIGINT and SIGTERM to the latch. */
void installShutdownHandlers();

/** Whether the latch has fired (signal or requestShutdown()). */
bool shutdownRequested();

/** Fire the latch programmatically. */
void requestShutdown();

/** Block until the latch fires. */
void waitForShutdown();

/** Re-arm the latch (tests only; not signal-safe). */
void resetShutdownLatch();

} // namespace net
} // namespace reaper

#endif // REAPER_NET_SERVER_H
