/**
 * @file
 * REAPER-NET v1: the binary query wire protocol.
 *
 * The serving tier's process boundary. A connection carries a stream
 * of self-delimiting frames in either direction; every frame is
 * independently verifiable, so a broken peer (or a flipped bit on the
 * path) surfaces as a typed error instead of a desynchronized stream —
 * the same discipline the v2 profile format applies to disk bytes
 * (profiling/profile_binary.h) applied to socket bytes.
 *
 * Frame layout (all fixed-width integers little-endian; see DESIGN.md
 * §13):
 *
 *   u32 bodyLen | body | u32 CRC32C(body)
 *   body := u8 opcode | u8 version (= 1) | payload
 *
 * Payload integers are LEB128 varints (shared with the profile codec:
 * simd::encodeVarint / simd::decodeVarints, so the hot decode path
 * rides the same SWAR kernel), strings are varint length + raw bytes,
 * and the one floating-point field (refresh interval seconds) is the
 * raw IEEE-754 bit pattern as a fixed u64.
 *
 * Every decoder treats its input as hostile: frame and batch lengths
 * are clamped before any allocation (a forged u32/varint cannot make
 * the daemon reserve terabytes — the network mirror of the v1/v2
 * profile-header `cells.reserve` clamp), truncated or overrunning
 * payloads and checksum mismatches return ErrorCategory::Corrupt, and
 * unknown opcodes or versions return ErrorCategory::Parse. Limits the
 * caller chooses (DecodeLimits) are InvalidConfig when nonsensical.
 *
 * Opcodes:
 *   Hello / HelloAck          version + limits handshake (optional —
 *                             every frame already self-describes)
 *   ListKeys / KeyList        the store's profile keys, so a client
 *                             can build a workload without out-of-band
 *                             configuration
 *   QueryBatch                N point lookups (client-chosen ids)
 *   ResponseBatch             N answers, keyed by those ids; statuses
 *                             Ok / NotFound / Rejected (backpressure)
 *   ProtocolError             terminal server diagnostic before close
 *
 * Responses may arrive out of order and regrouped across batches; the
 * id is the only correlation. Backpressure is first-class: a daemon
 * whose queue is full answers Rejected immediately rather than
 * blocking the event loop or silently dropping — every submitted
 * request gets exactly one response.
 */

#ifndef REAPER_NET_WIRE_H
#define REAPER_NET_WIRE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.h"
#include "serve/query_engine.h"

namespace reaper {
namespace net {

/** Protocol version carried in every frame body. */
constexpr uint8_t kProtocolVersion = 1;

/** Hello payload magic ("RPN1"): catches a peer that frames correctly
 *  but speaks a different protocol entirely. */
constexpr uint32_t kHelloMagic = 0x314E5052;

/** Bytes around the body: u32 length prefix + u32 CRC32C trailer. */
constexpr size_t kFrameOverheadBytes = 8;

/** Smallest possible body: opcode + version, no payload. */
constexpr size_t kMinBodyBytes = 2;

/** Default decoder clamps (see DecodeLimits). */
constexpr size_t kDefaultMaxFrameBytes = 1u << 20;
constexpr size_t kDefaultMaxBatchPerFrame = 8192;
constexpr size_t kDefaultMaxKeyBytes = 4096;

/** Frame kinds. Values are wire-stable; add new ones at the end. */
enum class Opcode : uint8_t
{
    Hello = 1,         ///< c->s: u32 magic
    HelloAck = 2,      ///< s->c: varint maxFrame, maxBatch, workers
    ListKeys = 3,      ///< c->s: empty
    KeyList = 4,       ///< s->c: varint count, count x string
    QueryBatch = 5,    ///< c->s: varint count, count x request
    ResponseBatch = 6, ///< s->c: varint count, count x response
    ProtocolError = 7, ///< s->c: string diagnostic, then close
};

const char *toString(Opcode op);

/** Terminal status of one request, on the wire. */
enum class WireStatus : uint8_t
{
    Ok = 0,       ///< answered from a compiled directory
    NotFound = 1, ///< no profile stored under the key
    Rejected = 2, ///< shed by queue backpressure — safe to retry
};

const char *toString(WireStatus s);

/** One decoded answer (the wire mirror of serve::Response plus the
 *  Rejected backpressure status, which never reaches the engine). */
struct WireResponse
{
    uint64_t id = 0;
    WireStatus status = WireStatus::Ok;
    bool weak = false;
    uint32_t bin = 0;
    double interval = 0.0; ///< binIntervals[bin], seconds
};

/** Limits a HelloAck advertises. */
struct ServerLimits
{
    uint64_t maxFrameBytes = kDefaultMaxFrameBytes;
    uint64_t maxBatchPerFrame = kDefaultMaxBatchPerFrame;
    uint64_t workers = 0;
};

/**
 * Decoder clamps applied to untrusted input. A hostile length field
 * can never cause an allocation past these: batch/key counts are
 * additionally cross-checked against the bytes actually present
 * before any reserve.
 */
struct DecodeLimits
{
    size_t maxFrameBytes = kDefaultMaxFrameBytes;
    size_t maxBatchPerFrame = kDefaultMaxBatchPerFrame;
    size_t maxKeyBytes = kDefaultMaxKeyBytes;
};

/** A parsed frame: points into the caller's receive buffer, valid
 *  only until that buffer moves. */
struct FrameView
{
    Opcode opcode = Opcode::Hello;
    uint8_t version = 0;
    const uint8_t *payload = nullptr;
    size_t payloadLen = 0;
};

/**
 * Try to extract one frame from `data[0..avail)`.
 *
 * Returns the number of bytes consumed (header + body + trailer) with
 * `*out` filled, or 0 when the buffer does not yet hold a complete
 * frame (read more and retry). Errors are terminal for the
 * connection: Corrupt (clamped length, CRC mismatch, short body) or
 * Parse (unknown version/opcode).
 */
common::Expected<size_t> tryExtractFrame(const uint8_t *data,
                                         size_t avail,
                                         const DecodeLimits &limits,
                                         FrameView *out);

/**
 * Append-only frame builder over a caller-owned byte buffer (the
 * connection's output buffer): begin(opcode), put*()s, end() — end()
 * patches the length prefix and appends the CRC32C trailer. Multiple
 * frames may be built back-to-back into one buffer.
 */
class FrameWriter
{
  public:
    explicit FrameWriter(std::vector<uint8_t> &buf) : buf_(buf) {}

    void begin(Opcode op);
    void putU8(uint8_t v);
    void putU32(uint32_t v);
    void putU64(uint64_t v);
    void putVarint(uint64_t v);
    void putBytes(const void *data, size_t len);
    /** varint length + raw bytes. */
    void putString(const std::string &s);
    /** Patch the length prefix and append the CRC32C trailer. */
    void end();

  private:
    std::vector<uint8_t> &buf_;
    size_t frameStart_ = 0; ///< offset of the length prefix
    bool open_ = false;
};

// ---- Whole-frame encoders -------------------------------------------

void encodeHello(std::vector<uint8_t> &buf);
void encodeHelloAck(std::vector<uint8_t> &buf,
                    const ServerLimits &limits);
void encodeListKeys(std::vector<uint8_t> &buf);
void encodeKeyList(std::vector<uint8_t> &buf,
                   const std::vector<std::string> &keys);
/** Encode `reqs[offset..offset+n)` as one QueryBatch frame. */
void encodeQueryBatch(std::vector<uint8_t> &buf,
                      const serve::Request *reqs, size_t n);
void encodeResponseBatch(std::vector<uint8_t> &buf,
                         const WireResponse *resps, size_t n);
void encodeProtocolError(std::vector<uint8_t> &buf,
                         const std::string &message);

// ---- Payload decoders (frame must carry the matching opcode) --------

/** Returns the Hello magic (caller checks against kHelloMagic). */
common::Expected<uint32_t> decodeHello(const FrameView &frame);
common::Expected<ServerLimits> decodeHelloAck(const FrameView &frame);
common::Status decodeKeyList(const FrameView &frame,
                             const DecodeLimits &limits,
                             std::vector<std::string> &out);
/** Appends decoded requests to `out` (ids are the client's). */
common::Status decodeQueryBatch(const FrameView &frame,
                                const DecodeLimits &limits,
                                std::vector<serve::Request> &out);
common::Status decodeResponseBatch(const FrameView &frame,
                                   const DecodeLimits &limits,
                                   std::vector<WireResponse> &out);
common::Expected<std::string>
decodeProtocolError(const FrameView &frame, const DecodeLimits &limits);

} // namespace net
} // namespace reaper

#endif // REAPER_NET_WIRE_H
