#include "mitigation/rapid.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"

namespace reaper {
namespace mitigation {

Rapid::Rapid(const RapidConfig &cfg) : cfg_(cfg)
{
    if (cfg.totalRows == 0 || cfg.rowBits == 0)
        panic("Rapid: totalRows and rowBits must be > 0");
    if (cfg.profiledIntervals.empty())
        panic("Rapid: need at least one profiled interval");
    if (!std::is_sorted(cfg.profiledIntervals.begin(),
                        cfg.profiledIntervals.end()))
        panic("Rapid: profiledIntervals must be ascending");
}

uint64_t
Rapid::rowKey(const dram::ChipFailure &f) const
{
    return (static_cast<uint64_t>(f.chip) << 48) ^
           (f.addr / cfg_.rowBits);
}

void
Rapid::applyProfile(const profiling::RetentionProfile &p)
{
    rowClass_.clear();
    current_ = Allocation{};
    protectedCells_ = p.size();
    uint32_t worst =
        static_cast<uint32_t>(cfg_.profiledIntervals.size());
    for (const auto &f : p.cells())
        rowClass_[rowKey(f)] = worst;
}

void
Rapid::applyRankedProfiles(
    const std::vector<profiling::RetentionProfile> &profiles)
{
    if (profiles.size() != cfg_.profiledIntervals.size())
        panic("Rapid::applyRankedProfiles: expected %zu profiles, got "
              "%zu",
              cfg_.profiledIntervals.size(), profiles.size());
    rowClass_.clear();
    current_ = Allocation{};
    protectedCells_ = 0;
    size_t n = profiles.size();
    // profiles[i] = failures at profiledIntervals[i] (ascending).
    // Class = n - i for the SMALLEST failing interval i, so walk from
    // the longest interval down and let shorter intervals overwrite.
    for (size_t i = n; i-- > 0;) {
        protectedCells_ += profiles[i].size();
        uint32_t cls = static_cast<uint32_t>(n - i);
        for (const auto &f : profiles[i].cells())
            rowClass_[rowKey(f)] = cls;
    }
}

std::vector<uint64_t>
Rapid::classCensus() const
{
    std::vector<uint64_t> census(cfg_.profiledIntervals.size() + 1, 0);
    for (const auto &[key, cls] : rowClass_) {
        (void)key;
        census.at(cls) += 1;
    }
    uint64_t failing = rowClass_.size();
    census[0] = cfg_.totalRows >= failing ? cfg_.totalRows - failing
                                          : 0;
    return census;
}

Rapid::Allocation
Rapid::plan(uint64_t rows_needed) const
{
    Allocation a;
    a.feasible = rows_needed <= cfg_.totalRows;
    if (!a.feasible)
        return a;
    std::vector<uint64_t> census = classCensus();
    a.rowsPerClass.assign(census.size(), 0);
    uint64_t remaining = rows_needed;
    size_t worst_used = 0;
    for (size_t cls = 0; cls < census.size() && remaining > 0; ++cls) {
        uint64_t take = std::min(remaining, census[cls]);
        a.rowsPerClass[cls] = take;
        remaining -= take;
        if (take > 0)
            worst_used = cls;
    }
    a.rowsAllocated = rows_needed;
    // Safe interval: clean rows support the longest profiled
    // interval; class c rows are only proven at the next-shorter
    // profiled interval; rows failing at the shortest profiled
    // interval force the JEDEC default.
    size_t n = cfg_.profiledIntervals.size();
    if (worst_used == 0) {
        a.refreshInterval = cfg_.profiledIntervals.back();
    } else if (worst_used < n) {
        a.refreshInterval =
            cfg_.profiledIntervals[n - worst_used - 1];
    } else {
        a.refreshInterval = kJedecRefreshInterval;
    }
    return a;
}

Rapid::Allocation
Rapid::allocate(uint64_t rows_needed)
{
    current_ = plan(rows_needed);
    return current_;
}

Seconds
Rapid::refreshIntervalFor(uint64_t rows_needed) const
{
    Allocation a = plan(rows_needed);
    return a.feasible ? a.refreshInterval : 0.0;
}

bool
Rapid::covers(const dram::ChipFailure &f) const
{
    auto it = rowClass_.find(rowKey(f));
    if (it == rowClass_.end())
        return false; // unknown cell: not a profiled failure
    if (current_.rowsPerClass.empty())
        return true; // nothing allocated: failing rows hold no data
    uint32_t cls = it->second;
    // Covered when the allocation never reached this row's class.
    return current_.rowsPerClass.at(cls) == 0;
}

MitigationStats
Rapid::stats() const
{
    MitigationStats s;
    s.protectedCells = protectedCells_;
    s.protectedRows = rowClass_.size();
    s.capacityOverhead = 0.0; // placement, not reservation
    Seconds interval = current_.feasible && current_.rowsAllocated > 0
                           ? current_.refreshInterval
                           : cfg_.profiledIntervals.back();
    s.refreshWorkRelative = kJedecRefreshInterval / interval;
    return s;
}

} // namespace mitigation
} // namespace reaper
