/**
 * @file
 * RAPID-like retention-aware placement (Venkatesan et al., HPCA'06;
 * discussed in Section 3.1 of the paper).
 *
 * RAPID is a software approach: allocate data to the rows with the
 * longest retention first, and choose the refresh interval supported
 * by the worst row actually allocated — so a partially filled memory
 * can refresh far more slowly than its weakest unused rows would
 * demand. REAPER supplies the per-interval failing-row profiles that
 * rank rows into retention classes.
 */

#ifndef REAPER_MITIGATION_RAPID_H
#define REAPER_MITIGATION_RAPID_H

#include <unordered_map>
#include <vector>

#include "mitigation/mitigation.h"

namespace reaper {
namespace mitigation {

/** RAPID configuration. */
struct RapidConfig
{
    uint64_t totalRows = 0;
    uint64_t rowBits = 2048ull * 8;
    /**
     * Refresh intervals the chip was profiled at, ascending. Rows
     * failing at intervals[i] (but not at intervals[i-1]) have
     * retention class i; clean rows have the best class and support
     * intervals.back().
     */
    std::vector<Seconds> profiledIntervals = {0.256, 1.024};
};

/** Retention-ranked allocation with interval selection. */
class Rapid : public MitigationMechanism
{
  public:
    explicit Rapid(const RapidConfig &cfg);

    std::string name() const override { return "RAPID"; }

    /**
     * Single-profile shortcut: rows failing at the profile's
     * conditions get the worst retention class; all others are clean.
     */
    void applyProfile(const profiling::RetentionProfile &p) override;

    /**
     * Full ranking: profiles[i] holds the failing cells at
     * cfg.profiledIntervals[i]; must match that vector's size. Rows
     * are classed by the smallest interval at which they fail.
     */
    void applyRankedProfiles(
        const std::vector<profiling::RetentionProfile> &profiles);

    /** Result of an allocation request. */
    struct Allocation
    {
        uint64_t rowsAllocated = 0;
        /** Rows taken from each retention class, best class first
         *  (index 0 = clean rows). */
        std::vector<uint64_t> rowsPerClass;
        /** Longest refresh interval safe for every allocated row. */
        Seconds refreshInterval = 0;
        bool feasible = false; ///< rows_needed <= totalRows
    };

    /**
     * Allocate best-retention-first (the RAPID policy) and return the
     * refresh interval the allocation supports. The allocation is
     * remembered for covers()/stats().
     */
    Allocation allocate(uint64_t rows_needed);

    /** The interval an allocation of the given size would support,
     *  without committing it. */
    Seconds refreshIntervalFor(uint64_t rows_needed) const;

    /**
     * A failing cell is covered when its row is left unallocated by
     * the current allocation (data is simply never placed there).
     * With no allocation committed, all profiled rows are covered.
     */
    bool covers(const dram::ChipFailure &f) const override;

    MitigationStats stats() const override;

    /** Rows in each retention class (clean first). */
    std::vector<uint64_t> classCensus() const;

  private:
    uint64_t rowKey(const dram::ChipFailure &f) const;
    Allocation plan(uint64_t rows_needed) const;

    RapidConfig cfg_;
    /** Known-failing rows: rowKey -> retention class (1 = fails only
     *  at the longest profiled interval, ..., N = fails at the
     *  shortest). Class 0 (clean) is implicit. */
    std::unordered_map<uint64_t, uint32_t> rowClass_;
    size_t protectedCells_ = 0;
    Allocation current_;
};

} // namespace mitigation
} // namespace reaper

#endif // REAPER_MITIGATION_RAPID_H
