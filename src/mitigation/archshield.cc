#include "mitigation/archshield.h"

#include <unordered_set>

#include "common/logging.h"

namespace reaper {
namespace mitigation {

namespace {
/** Row size of the LPDDR4 organization (2 KiB rows). */
constexpr uint64_t kRowBits = 2048ull * 8;
} // namespace

ArchShield::ArchShield(const ArchShieldConfig &cfg) : cfg_(cfg)
{
    if (cfg.wordBits == 0 || cfg.entryBits == 0)
        panic("ArchShield: word and entry sizes must be nonzero");
}

uint64_t
ArchShield::wordKey(const dram::ChipFailure &f, uint32_t word_bits)
{
    return (static_cast<uint64_t>(f.chip) << 48) ^ (f.addr / word_bits);
}

uint64_t
ArchShield::faultMapCapacityEntries() const
{
    double budget_bits =
        static_cast<double>(cfg_.capacityBits) * cfg_.faultMapFraction;
    return static_cast<uint64_t>(budget_bits /
                                 static_cast<double>(cfg_.entryBits));
}

void
ArchShield::applyProfile(const profiling::RetentionProfile &p)
{
    words_.clear();
    overflowed_ = false;
    protectedCells_ = 0;
    std::unordered_set<uint64_t> rows;
    uint64_t capacity = faultMapCapacityEntries();
    for (const auto &f : p.cells()) {
        words_.insert(wordKey(f, cfg_.wordBits));
        if (words_.size() > capacity) {
            // The profile (true failures plus false positives) no longer
            // fits the reserved FaultMap; the system must fall back to a
            // shorter refresh interval or a stronger mechanism. This is
            // exactly the false-positive cost of Section 6.1.2.
            overflowed_ = true;
            warn("ArchShield: FaultMap overflow (%zu words > %llu "
                 "entries)",
                 words_.size(),
                 static_cast<unsigned long long>(capacity));
            break;
        }
        ++protectedCells_;
        rows.insert((static_cast<uint64_t>(f.chip) << 48) ^
                    (f.addr / kRowBits));
    }
    protectedRows_ = rows.size();
}

bool
ArchShield::covers(const dram::ChipFailure &f) const
{
    return words_.count(wordKey(f, cfg_.wordBits)) != 0;
}

MitigationStats
ArchShield::stats() const
{
    MitigationStats s;
    s.protectedCells = protectedCells_;
    s.protectedRows = protectedRows_;
    s.capacityOverhead = cfg_.faultMapFraction;
    s.refreshWorkRelative = 1.0; // ArchShield does not add refreshes
    return s;
}

} // namespace mitigation
} // namespace reaper
