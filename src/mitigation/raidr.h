/**
 * @file
 * RAIDR-like multi-rate refresh mitigation (Section 7.1.2).
 *
 * RAIDR groups DRAM rows into bins by the retention time of each row's
 * weakest cell and refreshes each bin at a different rate. REAPER
 * enables RAIDR by re-binning rows from each fresh profile: any row
 * containing a profiled failing cell is demoted to a faster refresh
 * bin. The refresh-work statistic quantifies the refresh reduction
 * relative to refreshing every row at the default 64 ms interval.
 */

#ifndef REAPER_MITIGATION_RAIDR_H
#define REAPER_MITIGATION_RAIDR_H

#include <unordered_map>
#include <vector>

#include "mitigation/bloom.h"
#include "mitigation/mitigation.h"

namespace reaper {
namespace mitigation {

/** One refresh-rate bin. */
struct RefreshBin
{
    Seconds interval;  ///< refresh interval of rows in this bin
    uint64_t rowCount; ///< rows currently assigned
};

/** RAIDR configuration. */
struct RaidrConfig
{
    /** Total rows across the protected module. */
    uint64_t totalRows = 0;
    /**
     * Bin refresh intervals, fastest first; rows with profiled failures
     * at bin i's interval but none at bin i-1's go into bin i-1... more
     * precisely each row goes into the fastest bin whose interval is
     * safe for it. The last bin is the default for failure-free rows.
     */
    std::vector<Seconds> binIntervals = {0.064, 0.256, 1.024};
    /** Bits per row (for cell-to-row mapping). */
    uint64_t rowBits = 2048ull * 8;
    /**
     * Store bins in Bloom filters, as the RAIDR hardware does (a few
     * KB of controller SRAM instead of an exact table). False
     * positives are safe: a misclassified row is refreshed faster
     * than necessary, costing a little extra refresh work.
     */
    bool useBloomFilters = false;
    double bloomFpRate = 1e-3;
    /** Expected rows per bin filter (sizes the filters). */
    size_t bloomExpectedRows = 4096;
};

/**
 * Multi-rate refresh binning. Profiles are applied per target interval:
 * applyProfile assigns any row containing a profiled cell to the
 * fastest bin (conservative single-profile policy), while
 * applyBinnedProfiles performs full multi-interval binning from one
 * profile per bin interval.
 */
class Raidr : public MitigationMechanism
{
  public:
    explicit Raidr(const RaidrConfig &cfg);

    std::string name() const override { return "RAIDR"; }

    void applyProfile(const profiling::RetentionProfile &p) override;

    /**
     * Full binning: profiles[i] holds the failing cells at
     * binIntervals[i+1] (cells that must be refreshed faster than bin
     * i+1 allows, i.e. belong in bin i or faster). profiles.size()
     * must equal binIntervals.size() - 1.
     */
    void applyBinnedProfiles(
        const std::vector<profiling::RetentionProfile> &profiles);

    bool covers(const dram::ChipFailure &f) const override;
    MitigationStats stats() const override;

    /** Current bin assignment summary. */
    std::vector<RefreshBin> bins() const;

    /** Refresh operations per second relative to all-rows at 64 ms. */
    double refreshWorkRelative() const;

    /** The refresh interval applied to a given row (by row key). */
    Seconds rowInterval(uint32_t chip, uint64_t row) const;

    /** Total Bloom-filter storage in bits (0 without filters). */
    size_t bloomStorageBits() const;

  private:
    uint64_t rowKey(uint32_t chip, uint64_t row) const;
    uint64_t rowOfCell(const dram::ChipFailure &f) const;

    void rebuildFilters();

    RaidrConfig cfg_;
    /** Rows demoted from the default bin: rowKey -> bin index. */
    std::unordered_map<uint64_t, uint32_t> demoted_;
    /** One filter per non-default bin (when useBloomFilters). */
    std::vector<BloomFilter> filters_;
    size_t protectedCells_ = 0;
};

} // namespace mitigation
} // namespace reaper

#endif // REAPER_MITIGATION_RAIDR_H
