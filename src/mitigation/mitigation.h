/**
 * @file
 * Retention failure mitigation interface.
 *
 * REAPER (Section 7.1) is a profiling mechanism that *enables* a family
 * of previously proposed mitigation mechanisms. A mitigation mechanism
 * consumes a retention failure profile and guarantees correct operation
 * at the extended refresh interval for all profiled cells; its overhead
 * (capacity, refresh work, or remapping state) grows with the number of
 * profiled cells — which is why false positives matter.
 */

#ifndef REAPER_MITIGATION_MITIGATION_H
#define REAPER_MITIGATION_MITIGATION_H

#include <cstdint>
#include <string>

#include "profiling/profile.h"

namespace reaper {
namespace mitigation {

/** Summary of a mitigation mechanism's state after applying a profile. */
struct MitigationStats
{
    size_t protectedCells = 0;   ///< cells the mechanism handles
    size_t protectedRows = 0;    ///< distinct rows affected
    double capacityOverhead = 0; ///< fraction of DRAM consumed
    double refreshWorkRelative = 1.0; ///< refresh ops vs all-rows-default
};

/** Common interface of retention failure mitigation mechanisms. */
class MitigationMechanism
{
  public:
    virtual ~MitigationMechanism() = default;

    /** Mechanism name for reports. */
    virtual std::string name() const = 0;

    /**
     * Install a new failure profile (e.g. after a REAPER round).
     * Replaces any previously installed profile.
     */
    virtual void applyProfile(const profiling::RetentionProfile &p) = 0;

    /**
     * Whether the mechanism protects this cell at the extended refresh
     * interval (remapped, rebinned to a faster refresh rate, or mapped
     * out of the address space).
     */
    virtual bool covers(const dram::ChipFailure &f) const = 0;

    /** Current overhead statistics. */
    virtual MitigationStats stats() const = 0;
};

} // namespace mitigation
} // namespace reaper

#endif // REAPER_MITIGATION_MITIGATION_H
