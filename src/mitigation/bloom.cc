#include "mitigation/bloom.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "simd/words.h"

namespace reaper {
namespace mitigation {

BloomFilter::BloomFilter(size_t bits, int hashes, uint64_t seed)
    : bits_((std::max<size_t>(bits, 64) + 63) / 64 * 64),
      hashes_(hashes),
      seed_(seed),
      words_(bits_ / 64, 0)
{
    if (hashes < 1)
        panic("BloomFilter: need at least one hash function");
}

BloomFilter
BloomFilter::forCapacity(size_t expected_elements, double fp_rate,
                         uint64_t seed)
{
    if (expected_elements == 0)
        expected_elements = 1;
    if (fp_rate <= 0.0 || fp_rate >= 1.0)
        panic("BloomFilter: fp_rate must be in (0,1), got %g", fp_rate);
    double n = static_cast<double>(expected_elements);
    double ln2 = std::log(2.0);
    double m = -n * std::log(fp_rate) / (ln2 * ln2);
    int k = std::max(1, static_cast<int>(std::lround(m / n * ln2)));
    return BloomFilter(static_cast<size_t>(std::ceil(m)), k, seed);
}

uint64_t
BloomFilter::hashOf(uint64_t key, int i) const
{
    // Kirsch-Mitzenmacher double hashing: h_i = h1 + i * h2.
    uint64_t h1 = hashCombine(seed_, key);
    uint64_t h2 = hashCombine(seed_ ^ 0x9E3779B97F4A7C15ull, key) | 1;
    return h1 + static_cast<uint64_t>(i) * h2;
}

void
BloomFilter::insert(uint64_t key)
{
    for (int i = 0; i < hashes_; ++i) {
        uint64_t bit = hashOf(key, i) % bits_;
        words_[bit / 64] |= 1ull << (bit % 64);
    }
    ++inserted_;
}

bool
BloomFilter::mayContain(uint64_t key) const
{
    for (int i = 0; i < hashes_; ++i) {
        uint64_t bit = hashOf(key, i) % bits_;
        if (!((words_[bit / 64] >> (bit % 64)) & 1))
            return false;
    }
    return true;
}

void
BloomFilter::clear()
{
    // Directory recompiles clear multi-megabit filters; use the
    // batched word-fill kernel rather than a scalar std::fill.
    simd::fillWords(words_.data(), words_.size(), 0);
    inserted_ = 0;
}

double
BloomFilter::expectedFpRate() const
{
    double k = static_cast<double>(hashes_);
    double n = static_cast<double>(inserted_);
    double m = static_cast<double>(bits_);
    return std::pow(1.0 - std::exp(-k * n / m), k);
}

double
BloomFilter::fillRatio() const
{
    size_t set = 0;
    for (uint64_t w : words_)
        set += static_cast<size_t>(__builtin_popcountll(w));
    return static_cast<double>(set) / static_cast<double>(bits_);
}

} // namespace mitigation
} // namespace reaper
