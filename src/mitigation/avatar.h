/**
 * @file
 * AVATAR-style VRT-aware multirate refresh (Qureshi et al., DSN'15;
 * the paper's Section 3.2 comparator).
 *
 * AVATAR starts from a one-time profile: rows with known failures are
 * refreshed at the fast (default) rate and all other rows at the
 * extended rate. At runtime, a periodic ECC scrub watches for
 * corrected errors in slow rows — each one is a VRT cell (or a
 * profiling escape) announcing itself — and permanently *upgrades*
 * its row to the fast rate. The paper's critique (which our extension
 * bench quantifies) is that this passive loop only sees failures under
 * the currently stored data, so it cannot bound coverage against
 * data-pattern changes the way active reach profiling can.
 */

#ifndef REAPER_MITIGATION_AVATAR_H
#define REAPER_MITIGATION_AVATAR_H

#include <unordered_set>

#include "mitigation/mitigation.h"

namespace reaper {
namespace mitigation {

/** AVATAR configuration. */
struct AvatarConfig
{
    uint64_t totalRows = 0;
    uint64_t rowBits = 2048ull * 8;
    /** Extended refresh interval for non-upgraded rows. */
    Seconds slowInterval = 1.024;
    /** Default interval for upgraded (failing) rows. */
    Seconds fastInterval = kJedecRefreshInterval;
};

/** Row-upgrade multirate refresh. */
class Avatar : public MitigationMechanism
{
  public:
    explicit Avatar(const AvatarConfig &cfg);

    std::string name() const override { return "AVATAR"; }

    /**
     * Install the initial (one-time) profile: rows containing
     * profiled cells start upgraded. Runtime upgrades accumulate on
     * top until the next applyProfile.
     */
    void applyProfile(const profiling::RetentionProfile &p) override;

    /**
     * Runtime path: the ECC scrubber corrected an error at this cell;
     * upgrade its row. Returns true if the row was newly upgraded.
     */
    bool observeScrubCorrection(const dram::ChipFailure &f);

    /** Whether this row refreshes at the fast rate. */
    bool covers(const dram::ChipFailure &f) const override;

    Seconds rowInterval(uint32_t chip, uint64_t row) const;

    size_t upgradedRows() const { return upgraded_.size(); }
    /** Rows upgraded at runtime (vs the initial profile). */
    size_t runtimeUpgrades() const { return runtimeUpgrades_; }

    double refreshWorkRelative() const;
    MitigationStats stats() const override;

  private:
    uint64_t rowKeyOf(const dram::ChipFailure &f) const;

    AvatarConfig cfg_;
    std::unordered_set<uint64_t> upgraded_;
    size_t initialRows_ = 0;
    size_t runtimeUpgrades_ = 0;
    size_t protectedCells_ = 0;
};

} // namespace mitigation
} // namespace reaper

#endif // REAPER_MITIGATION_AVATAR_H
