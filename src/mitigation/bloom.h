/**
 * @file
 * Bloom filter, as used by RAIDR [Liu et al., ISCA'12] to store its
 * refresh-rate bins in a few kilobytes of controller SRAM. False
 * positives are safe by construction: a row wrongly believed to be in
 * a faster-refresh bin is merely refreshed more often than needed.
 */

#ifndef REAPER_MITIGATION_BLOOM_H
#define REAPER_MITIGATION_BLOOM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace reaper {
namespace mitigation {

/** Standard k-hash Bloom filter over 64-bit keys. */
class BloomFilter
{
  public:
    /**
     * @param bits filter size in bits (rounded up to a word multiple)
     * @param hashes number of hash functions (k)
     * @param seed hash-family seed
     */
    BloomFilter(size_t bits, int hashes, uint64_t seed = 0);

    /**
     * Size a filter for an expected number of elements and a target
     * false-positive rate, using the standard optimal formulas
     * m = -n ln(p) / (ln 2)^2 and k = (m/n) ln 2.
     */
    static BloomFilter forCapacity(size_t expected_elements,
                                   double fp_rate, uint64_t seed = 0);

    void insert(uint64_t key);

    /** No false negatives; false positives at the configured rate. */
    bool mayContain(uint64_t key) const;

    void clear();

    size_t sizeBits() const { return bits_; }
    int numHashes() const { return hashes_; }
    size_t insertedCount() const { return inserted_; }

    /** Predicted false-positive rate at the current load:
     *  (1 - e^(-k n / m))^k. */
    double expectedFpRate() const;

    /** Fraction of filter bits set. */
    double fillRatio() const;

  private:
    uint64_t hashOf(uint64_t key, int i) const;

    size_t bits_;
    int hashes_;
    uint64_t seed_;
    std::vector<uint64_t> words_;
    size_t inserted_ = 0;
};

} // namespace mitigation
} // namespace reaper

#endif // REAPER_MITIGATION_BLOOM_H
