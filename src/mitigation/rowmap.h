/**
 * @file
 * Row map-out mitigation: the simple scheme sketched in Section 1 of
 * the paper, where the memory controller removes addresses containing
 * failing cells from the system address space entirely. Zero runtime
 * overhead per access, but capacity overhead grows with every profiled
 * cell's row — the mechanism most intolerant to false positives.
 */

#ifndef REAPER_MITIGATION_ROWMAP_H
#define REAPER_MITIGATION_ROWMAP_H

#include <unordered_set>

#include "mitigation/mitigation.h"

namespace reaper {
namespace mitigation {

/** Row map-out configuration. */
struct RowMapConfig
{
    uint64_t totalRows = 0;
    uint64_t rowBits = 2048ull * 8;
    /**
     * Fraction of rows that may be mapped out before the configuration
     * is considered failed (capacity loss becomes unacceptable).
     */
    double maxMappedFraction = 0.01;
};

/** Map rows containing failing cells out of the address space. */
class RowMapOut : public MitigationMechanism
{
  public:
    explicit RowMapOut(const RowMapConfig &cfg);

    std::string name() const override { return "RowMapOut"; }

    void applyProfile(const profiling::RetentionProfile &p) override;
    bool covers(const dram::ChipFailure &f) const override;
    MitigationStats stats() const override;

    size_t mappedRows() const { return rows_.size(); }
    /** Whether the mapped-row budget was exceeded. */
    bool budgetExceeded() const { return exceeded_; }
    /** Fraction of capacity lost to mapped-out rows. */
    double capacityLoss() const;

  private:
    RowMapConfig cfg_;
    std::unordered_set<uint64_t> rows_;
    size_t protectedCells_ = 0;
    bool exceeded_ = false;
};

} // namespace mitigation
} // namespace reaper

#endif // REAPER_MITIGATION_ROWMAP_H
