#include "mitigation/raidr.h"

#include <algorithm>

#include "common/logging.h"

namespace reaper {
namespace mitigation {

Raidr::Raidr(const RaidrConfig &cfg) : cfg_(cfg)
{
    if (cfg.totalRows == 0)
        panic("Raidr: totalRows must be > 0");
    if (cfg.binIntervals.size() < 2)
        panic("Raidr: need at least two bins (fast + default)");
    if (!std::is_sorted(cfg.binIntervals.begin(), cfg.binIntervals.end()))
        panic("Raidr: binIntervals must be sorted fastest-first");
    if (cfg.rowBits == 0)
        panic("Raidr: rowBits must be > 0");
}

uint64_t
Raidr::rowKey(uint32_t chip, uint64_t row) const
{
    return (static_cast<uint64_t>(chip) << 48) ^ row;
}

uint64_t
Raidr::rowOfCell(const dram::ChipFailure &f) const
{
    return f.addr / cfg_.rowBits;
}

void
Raidr::rebuildFilters()
{
    filters_.clear();
    if (!cfg_.useBloomFilters)
        return;
    for (size_t i = 0; i + 1 < cfg_.binIntervals.size(); ++i) {
        filters_.push_back(BloomFilter::forCapacity(
            cfg_.bloomExpectedRows, cfg_.bloomFpRate,
            0xB100Full + i));
    }
    for (const auto &[key, bin] : demoted_)
        filters_.at(bin).insert(key);
}

void
Raidr::applyProfile(const profiling::RetentionProfile &p)
{
    demoted_.clear();
    protectedCells_ = p.size();
    // Conservative single-profile policy: every row containing a cell
    // that fails at the operating (last-bin) interval is refreshed at
    // the fastest rate.
    for (const auto &f : p.cells())
        demoted_[rowKey(f.chip, rowOfCell(f))] = 0;
    rebuildFilters();
}

void
Raidr::applyBinnedProfiles(
    const std::vector<profiling::RetentionProfile> &profiles)
{
    if (profiles.size() != cfg_.binIntervals.size() - 1)
        panic("Raidr::applyBinnedProfiles: expected %zu profiles, got %zu",
              cfg_.binIntervals.size() - 1, profiles.size());
    demoted_.clear();
    protectedCells_ = 0;
    // profiles[i] = failures at binIntervals[i+1]; walk from the
    // longest interval down so rows end in the fastest bin they need.
    for (size_t i = profiles.size(); i-- > 0;) {
        protectedCells_ += profiles[i].size();
        for (const auto &f : profiles[i].cells())
            demoted_[rowKey(f.chip, rowOfCell(f))] =
                static_cast<uint32_t>(i);
    }
    rebuildFilters();
}

bool
Raidr::covers(const dram::ChipFailure &f) const
{
    uint64_t key = rowKey(f.chip, rowOfCell(f));
    if (cfg_.useBloomFilters) {
        for (const BloomFilter &filter : filters_) {
            if (filter.mayContain(key))
                return true;
        }
        return false;
    }
    return demoted_.count(key) != 0;
}

std::vector<RefreshBin>
Raidr::bins() const
{
    std::vector<RefreshBin> out;
    out.reserve(cfg_.binIntervals.size());
    for (Seconds t : cfg_.binIntervals)
        out.push_back({t, 0});
    uint64_t default_bin = cfg_.binIntervals.size() - 1;
    for (const auto &[key, bin] : demoted_) {
        (void)key;
        out.at(bin).rowCount += 1;
    }
    uint64_t demoted_total = demoted_.size();
    out[default_bin].rowCount =
        cfg_.totalRows >= demoted_total ? cfg_.totalRows - demoted_total
                                        : 0;
    return out;
}

double
Raidr::refreshWorkRelative() const
{
    // Refresh operations per second if every row were refreshed at the
    // JEDEC default.
    double base = static_cast<double>(cfg_.totalRows) /
                  kJedecRefreshInterval;
    double actual = 0.0;
    std::vector<RefreshBin> all = bins();
    for (const RefreshBin &b : all)
        actual += static_cast<double>(b.rowCount) / b.interval;
    if (cfg_.useBloomFilters && !filters_.empty()) {
        // Bloom false positives pull default-bin rows into the
        // fastest bin; charge the expected extra refresh work.
        double default_rows =
            static_cast<double>(all.back().rowCount);
        double fp = filters_.front().expectedFpRate();
        actual += default_rows * fp *
                  (1.0 / cfg_.binIntervals.front() -
                   1.0 / cfg_.binIntervals.back());
    }
    return actual / base;
}

Seconds
Raidr::rowInterval(uint32_t chip, uint64_t row) const
{
    uint64_t key = rowKey(chip, row);
    if (cfg_.useBloomFilters) {
        // Fastest bin whose filter claims the row; false positives
        // only ever demote toward faster (safe) refresh.
        for (size_t i = 0; i < filters_.size(); ++i) {
            if (filters_[i].mayContain(key))
                return cfg_.binIntervals.at(i);
        }
        return cfg_.binIntervals.back();
    }
    auto it = demoted_.find(key);
    if (it == demoted_.end())
        return cfg_.binIntervals.back();
    return cfg_.binIntervals.at(it->second);
}

size_t
Raidr::bloomStorageBits() const
{
    size_t bits = 0;
    for (const BloomFilter &filter : filters_)
        bits += filter.sizeBits();
    return bits;
}

MitigationStats
Raidr::stats() const
{
    MitigationStats s;
    s.protectedCells = protectedCells_;
    s.protectedRows = demoted_.size();
    s.capacityOverhead = 0.0; // bins live in a small bloom/bitvector
    s.refreshWorkRelative = refreshWorkRelative();
    return s;
}

} // namespace mitigation
} // namespace reaper
