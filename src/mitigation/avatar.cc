#include "mitigation/avatar.h"

#include "common/logging.h"

namespace reaper {
namespace mitigation {

Avatar::Avatar(const AvatarConfig &cfg) : cfg_(cfg)
{
    if (cfg.totalRows == 0 || cfg.rowBits == 0)
        panic("Avatar: totalRows and rowBits must be > 0");
    if (cfg.fastInterval >= cfg.slowInterval)
        panic("Avatar: fastInterval must be shorter than slowInterval");
}

uint64_t
Avatar::rowKeyOf(const dram::ChipFailure &f) const
{
    return (static_cast<uint64_t>(f.chip) << 48) ^
           (f.addr / cfg_.rowBits);
}

void
Avatar::applyProfile(const profiling::RetentionProfile &p)
{
    upgraded_.clear();
    runtimeUpgrades_ = 0;
    protectedCells_ = p.size();
    for (const auto &f : p.cells())
        upgraded_.insert(rowKeyOf(f));
    initialRows_ = upgraded_.size();
}

bool
Avatar::observeScrubCorrection(const dram::ChipFailure &f)
{
    bool fresh = upgraded_.insert(rowKeyOf(f)).second;
    if (fresh)
        ++runtimeUpgrades_;
    return fresh;
}

bool
Avatar::covers(const dram::ChipFailure &f) const
{
    return upgraded_.count(rowKeyOf(f)) != 0;
}

Seconds
Avatar::rowInterval(uint32_t chip, uint64_t row) const
{
    uint64_t key = (static_cast<uint64_t>(chip) << 48) ^ row;
    return upgraded_.count(key) ? cfg_.fastInterval
                                : cfg_.slowInterval;
}

double
Avatar::refreshWorkRelative() const
{
    double base = static_cast<double>(cfg_.totalRows) /
                  kJedecRefreshInterval;
    double fast_rows = static_cast<double>(upgraded_.size());
    double slow_rows =
        static_cast<double>(cfg_.totalRows) - fast_rows;
    double actual = fast_rows / cfg_.fastInterval +
                    slow_rows / cfg_.slowInterval;
    return actual / base;
}

MitigationStats
Avatar::stats() const
{
    MitigationStats s;
    s.protectedCells = protectedCells_ + runtimeUpgrades_;
    s.protectedRows = upgraded_.size();
    s.capacityOverhead = 0.0;
    s.refreshWorkRelative = refreshWorkRelative();
    return s;
}

} // namespace mitigation
} // namespace reaper
