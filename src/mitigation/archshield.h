/**
 * @file
 * ArchShield-like mitigation (Section 7.1.1).
 *
 * ArchShield reserves a segment of DRAM (the FaultMap, ~4% of capacity)
 * that stores the addresses of known-faulty words and replicates their
 * contents. The memory controller checks accesses against the FaultMap
 * and redirects faulty words to their replicas. Here we model the
 * FaultMap as a word-granularity remap table with a fixed capacity
 * budget; REAPER periodically refills it from a fresh profile.
 */

#ifndef REAPER_MITIGATION_ARCHSHIELD_H
#define REAPER_MITIGATION_ARCHSHIELD_H

#include <unordered_set>

#include "mitigation/mitigation.h"

namespace reaper {
namespace mitigation {

/** ArchShield configuration. */
struct ArchShieldConfig
{
    /** Total DRAM capacity in bits (for overhead accounting). */
    uint64_t capacityBits = 16ull * 1024 * 1024 * 1024;
    /** Fraction of DRAM reserved for the FaultMap (paper: 4%). */
    double faultMapFraction = 0.04;
    /** Word size at which faulty cells are replicated (bits). */
    uint32_t wordBits = 64;
    /** FaultMap entry size in bits (address + replica + metadata). */
    uint32_t entryBits = 160;
};

/** Word-granularity remapping with a bounded FaultMap. */
class ArchShield : public MitigationMechanism
{
  public:
    explicit ArchShield(const ArchShieldConfig &cfg);

    std::string name() const override { return "ArchShield"; }

    void applyProfile(const profiling::RetentionProfile &p) override;
    bool covers(const dram::ChipFailure &f) const override;
    MitigationStats stats() const override;

    /** Maximum number of faulty words the FaultMap can hold. */
    uint64_t faultMapCapacityEntries() const;
    /** Number of remapped words currently installed. */
    size_t installedEntries() const { return words_.size(); }
    /** Whether the last applyProfile overflowed the FaultMap. */
    bool overflowed() const { return overflowed_; }

  private:
    /** Key of a faulty word: (chip, word index). */
    static uint64_t wordKey(const dram::ChipFailure &f, uint32_t word_bits);

    ArchShieldConfig cfg_;
    std::unordered_set<uint64_t> words_;
    size_t protectedCells_ = 0;
    size_t protectedRows_ = 0;
    bool overflowed_ = false;
};

} // namespace mitigation
} // namespace reaper

#endif // REAPER_MITIGATION_ARCHSHIELD_H
