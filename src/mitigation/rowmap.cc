#include "mitigation/rowmap.h"

#include "common/logging.h"

namespace reaper {
namespace mitigation {

namespace {

uint64_t
rowKeyOf(const dram::ChipFailure &f, uint64_t row_bits)
{
    return (static_cast<uint64_t>(f.chip) << 48) ^ (f.addr / row_bits);
}

} // namespace

RowMapOut::RowMapOut(const RowMapConfig &cfg) : cfg_(cfg)
{
    if (cfg.totalRows == 0 || cfg.rowBits == 0)
        panic("RowMapOut: totalRows and rowBits must be > 0");
}

void
RowMapOut::applyProfile(const profiling::RetentionProfile &p)
{
    rows_.clear();
    exceeded_ = false;
    protectedCells_ = p.size();
    for (const auto &f : p.cells())
        rows_.insert(rowKeyOf(f, cfg_.rowBits));
    double frac = static_cast<double>(rows_.size()) /
                  static_cast<double>(cfg_.totalRows);
    if (frac > cfg_.maxMappedFraction) {
        exceeded_ = true;
        warn("RowMapOut: %.3f%% of rows mapped out exceeds the %.3f%% "
             "budget",
             frac * 100.0, cfg_.maxMappedFraction * 100.0);
    }
}

bool
RowMapOut::covers(const dram::ChipFailure &f) const
{
    return rows_.count(rowKeyOf(f, cfg_.rowBits)) != 0;
}

double
RowMapOut::capacityLoss() const
{
    return static_cast<double>(rows_.size()) /
           static_cast<double>(cfg_.totalRows);
}

MitigationStats
RowMapOut::stats() const
{
    MitigationStats s;
    s.protectedCells = protectedCells_;
    s.protectedRows = rows_.size();
    s.capacityOverhead = capacityLoss();
    s.refreshWorkRelative = 1.0 - capacityLoss();
    return s;
}

} // namespace mitigation
} // namespace reaper
