/**
 * @file
 * ASCII table and data-series printers used by the benchmark harnesses to
 * emit the rows/series of the paper's tables and figures.
 */

#ifndef REAPER_COMMON_TABLE_H
#define REAPER_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace reaper {

/**
 * Column-aligned text table. Usage:
 *   TablePrinter t({"tREFI", "BER"});
 *   t.addRow({"64ms", "1.2e-10"});
 *   t.print(std::cout);
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);

    /** Render with a header separator and 2-space column padding. */
    void print(std::ostream &os) const;

    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with %.*g-style compact precision. */
std::string fmtG(double v, int precision = 4);

/** Format a double as fixed-precision. */
std::string fmtF(double v, int precision = 2);

/** Format a fraction as a percentage string ("12.3%"). */
std::string fmtPct(double fraction, int precision = 1);

/** Format seconds with an auto unit (ns/us/ms/s/min/h/days). */
std::string fmtTime(double seconds);

/** Print a "# <title>" banner used to delimit figure output sections. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace reaper

#endif // REAPER_COMMON_TABLE_H
