#include "common/math_util.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace reaper {

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x * M_SQRT1_2);
}

double
normalCdf(double x, double mu, double sigma)
{
    if (sigma <= 0.0)
        return x >= mu ? 1.0 : 0.0;
    return normalCdf((x - mu) / sigma);
}

double
normalQuantile(double p)
{
    if (p <= 0.0 || p >= 1.0)
        panic("normalQuantile: p must be in (0,1), got %g", p);

    // Acklam's rational approximation.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double p_low = 0.02425;
    double x;
    if (p < p_low) {
        double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        double q = p - 0.5;
        double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
             1.0);
    } else {
        double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Halley refinement step using the exact CDF.
    double e = normalCdf(x) - p;
    double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
    x = x - u / (1.0 + 0.5 * x * u);
    return x;
}

double
logFactorial(uint64_t n)
{
    return std::lgamma(static_cast<double>(n) + 1.0);
}

double
logChoose(uint64_t n, uint64_t k)
{
    if (k > n)
        return -INFINITY;
    return logFactorial(n) - logFactorial(k) - logFactorial(n - k);
}

double
binomialPmf(uint64_t w, uint64_t n, double r)
{
    if (n > w)
        return 0.0;
    if (r <= 0.0)
        return n == 0 ? 1.0 : 0.0;
    if (r >= 1.0)
        return n == w ? 1.0 : 0.0;
    double logp = logChoose(w, n) + static_cast<double>(n) * std::log(r) +
                  static_cast<double>(w - n) * std::log1p(-r);
    return std::exp(logp);
}

double
binomialTailAbove(uint64_t w, uint64_t k, double r)
{
    if (r <= 0.0)
        return 0.0;
    if (r >= 1.0)
        return k < w ? 1.0 : 0.0;
    // In the rare-error regime (w*r << 1) the series converges within a
    // few terms; sum from the small side for accuracy.
    double sum = 0.0;
    for (uint64_t n = k + 1; n <= w; ++n) {
        double term = binomialPmf(w, n, r);
        sum += term;
        // Terms decay geometrically once n > w*r; stop when negligible.
        if (term < sum * 1e-18 && n > static_cast<uint64_t>(
                static_cast<double>(w) * r) + 2)
            break;
    }
    return std::min(sum, 1.0);
}

double
clampTo(double x, double lo, double hi)
{
    return std::min(std::max(x, lo), hi);
}

} // namespace reaper
