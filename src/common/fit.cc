#include "common/fit.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/stats.h"

namespace reaper {

LinearFit
linearFit(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size())
        panic("linearFit: size mismatch (%zu vs %zu)", x.size(), y.size());
    if (x.size() < 2)
        panic("linearFit: need at least 2 points, got %zu", x.size());

    double n = static_cast<double>(x.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
    }
    double denom = n * sxx - sx * sx;
    LinearFit fit;
    if (denom == 0.0) {
        fit.intercept = sy / n;
        return fit;
    }
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    double mean_y = sy / n;
    double ss_tot = 0, ss_res = 0;
    for (size_t i = 0; i < x.size(); ++i) {
        double pred = fit.intercept + fit.slope * x[i];
        ss_res += (y[i] - pred) * (y[i] - pred);
        ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
    }
    fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

double
PowerLawFit::eval(double x) const
{
    return a * std::pow(x, b);
}

PowerLawFit
powerLawFit(const std::vector<double> &x, const std::vector<double> &y)
{
    std::vector<double> lx, ly;
    lx.reserve(x.size());
    ly.reserve(y.size());
    for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
        if (x[i] > 0 && y[i] > 0) {
            lx.push_back(std::log(x[i]));
            ly.push_back(std::log(y[i]));
        }
    }
    if (lx.size() < 2)
        panic("powerLawFit: need >= 2 positive points, got %zu", lx.size());
    LinearFit lin = linearFit(lx, ly);
    PowerLawFit fit;
    fit.a = std::exp(lin.intercept);
    fit.b = lin.slope;
    fit.r2 = lin.r2;
    return fit;
}

double
ExponentialFit::eval(double x) const
{
    return a * std::exp(b * x);
}

ExponentialFit
exponentialFit(const std::vector<double> &x, const std::vector<double> &y)
{
    std::vector<double> xs, ly;
    for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
        if (y[i] > 0) {
            xs.push_back(x[i]);
            ly.push_back(std::log(y[i]));
        }
    }
    if (xs.size() < 2)
        panic("exponentialFit: need >= 2 positive-y points, got %zu",
              xs.size());
    LinearFit lin = linearFit(xs, ly);
    ExponentialFit fit;
    fit.a = std::exp(lin.intercept);
    fit.b = lin.slope;
    fit.r2 = lin.r2;
    return fit;
}

NormalCdfFit
normalCdfFit(const std::vector<double> &x, const std::vector<double> &p,
             int trials)
{
    if (trials < 1)
        panic("normalCdfFit: trials must be >= 1");
    double clamp_lo = 1.0 / (2.0 * trials);
    double clamp_hi = 1.0 - clamp_lo;

    // Saturated observations (p = 0 or 1) carry no slope information
    // and, clamped, would flatten the regression; fit on the interior
    // (transition-region) points when there are enough of them.
    std::vector<double> xs, probits;
    for (size_t i = 0; i < x.size() && i < p.size(); ++i) {
        if (p[i] > clamp_lo && p[i] < clamp_hi) {
            xs.push_back(x[i]);
            probits.push_back(normalQuantile(p[i]));
        }
    }
    if (xs.size() < 3) {
        // Too few interior points: fall back to clamped saturation.
        xs.clear();
        probits.clear();
        for (size_t i = 0; i < x.size() && i < p.size(); ++i) {
            double pi = clampTo(p[i], clamp_lo, clamp_hi);
            xs.push_back(x[i]);
            probits.push_back(normalQuantile(pi));
        }
    }
    NormalCdfFit fit;
    if (xs.size() < 2)
        return fit;
    LinearFit lin = linearFit(xs, probits);
    if (lin.slope <= 0)
        return fit; // CDF must be increasing; degenerate data
    fit.sigma = 1.0 / lin.slope;
    fit.mu = -lin.intercept * fit.sigma;
    fit.valid = true;
    return fit;
}

double
LognormalFit::median() const
{
    return std::exp(muLog);
}

LognormalFit
lognormalFit(const std::vector<double> &samples)
{
    RunningStats rs;
    for (double s : samples) {
        if (s > 0)
            rs.add(std::log(s));
    }
    LognormalFit fit;
    fit.muLog = rs.mean();
    fit.sigmaLog = rs.stddev();
    return fit;
}

} // namespace reaper
