/**
 * @file
 * Unit conventions and conversion helpers used throughout the library.
 *
 * All times are carried as double seconds, temperatures as double degrees
 * Celsius, capacities as uint64_t bits/bytes. The helpers below make call
 * sites self-documenting (e.g. msToSec(64.0)).
 */

#ifndef REAPER_COMMON_UNITS_H
#define REAPER_COMMON_UNITS_H

#include <cstdint>

namespace reaper {

/** Time in seconds. */
using Seconds = double;
/** Temperature in degrees Celsius. */
using Celsius = double;

constexpr Seconds msToSec(double ms) { return ms / 1e3; }
constexpr Seconds usToSec(double us) { return us / 1e6; }
constexpr Seconds nsToSec(double ns) { return ns / 1e9; }
constexpr double secToMs(Seconds s) { return s * 1e3; }
constexpr double secToHours(Seconds s) { return s / 3600.0; }
constexpr double secToDays(Seconds s) { return s / 86400.0; }
constexpr Seconds hoursToSec(double h) { return h * 3600.0; }
constexpr Seconds daysToSec(double d) { return d * 86400.0; }
constexpr Seconds minutesToSec(double m) { return m * 60.0; }

constexpr uint64_t kKiB = 1024ull;
constexpr uint64_t kMiB = 1024ull * kKiB;
constexpr uint64_t kGiB = 1024ull * kMiB;

/** Capacity in bits for a chip denoted in Gib (e.g. 8Gb chip -> 8). */
constexpr uint64_t gibitToBits(uint64_t gibit) { return gibit * kGiB; }

/** Bytes to bits. */
constexpr uint64_t bytesToBits(uint64_t bytes) { return bytes * 8ull; }

/** JEDEC default refresh interval (tREFW in this paper's terminology). */
constexpr Seconds kJedecRefreshInterval = msToSec(64.0);

/** JEDEC refresh command count per refresh window. */
constexpr int kRefreshCommandsPerWindow = 8192;

} // namespace reaper

#endif // REAPER_COMMON_UNITS_H
