#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>

namespace reaper {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << "\n";
    };

    print_row(header_);
    size_t total = 0;
    for (size_t w : widths)
        total += w;
    total += 2 * (widths.size() - 1);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

std::string
fmtG(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    return buf;
}

std::string
fmtF(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtPct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
fmtTime(double seconds)
{
    char buf[64];
    double s = std::fabs(seconds);
    if (s < 1e-6)
        std::snprintf(buf, sizeof(buf), "%.1fns", seconds * 1e9);
    else if (s < 1e-3)
        std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
    else if (s < 1.0)
        std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
    else if (s < 120.0)
        std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
    else if (s < 7200.0)
        std::snprintf(buf, sizeof(buf), "%.2fmin", seconds / 60.0);
    else if (s < 2.0 * 86400.0)
        std::snprintf(buf, sizeof(buf), "%.2fh", seconds / 3600.0);
    else
        std::snprintf(buf, sizeof(buf), "%.2fdays", seconds / 86400.0);
    return buf;
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n=== " << title << " ===\n";
}

} // namespace reaper
