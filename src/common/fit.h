/**
 * @file
 * Curve fitting used by the characterization benches: ordinary least
 * squares, power-law fits (y = a * x^b, as in the paper's Fig. 4), probit
 * regression for per-cell normal failure CDFs (Fig. 6), and lognormal
 * moment fits (Fig. 6b).
 */

#ifndef REAPER_COMMON_FIT_H
#define REAPER_COMMON_FIT_H

#include <vector>

namespace reaper {

/** Result of a simple linear regression y = intercept + slope * x. */
struct LinearFit
{
    double intercept = 0.0;
    double slope = 0.0;
    double r2 = 0.0; ///< coefficient of determination
};

/** Ordinary least squares over paired samples; needs >= 2 points. */
LinearFit linearFit(const std::vector<double> &x,
                    const std::vector<double> &y);

/** Power-law fit y = a * x^b (log-log least squares; x, y must be > 0). */
struct PowerLawFit
{
    double a = 0.0;
    double b = 0.0;
    double r2 = 0.0;

    double eval(double x) const;
};

PowerLawFit powerLawFit(const std::vector<double> &x,
                        const std::vector<double> &y);

/** Exponential fit y = a * exp(b * x) (semi-log least squares; y > 0). */
struct ExponentialFit
{
    double a = 0.0;
    double b = 0.0;
    double r2 = 0.0;

    double eval(double x) const;
};

ExponentialFit exponentialFit(const std::vector<double> &x,
                              const std::vector<double> &y);

/**
 * Fit a normal CDF to observed (x, probability) pairs by probit
 * regression: probit(p) = (x - mu) / sigma. Probabilities at exactly 0/1
 * are clamped inward using the trial count (p -> 1/(2*trials)).
 */
struct NormalCdfFit
{
    double mu = 0.0;
    double sigma = 0.0;
    bool valid = false;
};

NormalCdfFit normalCdfFit(const std::vector<double> &x,
                          const std::vector<double> &p, int trials);

/** Lognormal parameter estimate (mean/stddev of ln x) from samples > 0. */
struct LognormalFit
{
    double muLog = 0.0;
    double sigmaLog = 0.0;

    double median() const;
};

LognormalFit lognormalFit(const std::vector<double> &samples);

} // namespace reaper

#endif // REAPER_COMMON_FIT_H
