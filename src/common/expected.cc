#include "common/expected.h"

namespace reaper {
namespace common {

const char *
toString(ErrorCategory c)
{
    switch (c) {
      case ErrorCategory::Io: return "io";
      case ErrorCategory::Parse: return "parse";
      case ErrorCategory::NotFound: return "not_found";
      case ErrorCategory::Corrupt: return "corrupt";
      case ErrorCategory::Fault: return "fault";
      case ErrorCategory::InvalidConfig: return "invalid_config";
      case ErrorCategory::Internal: return "internal";
    }
    return "unknown";
}

} // namespace common
} // namespace reaper
