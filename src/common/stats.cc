#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace reaper {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    double na = static_cast<double>(n_);
    double nb = static_cast<double>(other.n_);
    double delta = other.mean_ - mean_;
    double n_total = na + nb;
    mean_ += delta * nb / n_total;
    m2_ += other.m2_ + delta * delta * na * nb / n_total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> values, double q)
{
    if (values.empty())
        return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    std::sort(values.begin(), values.end());
    double pos = q * static_cast<double>(values.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, values.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

BoxStats
BoxStats::fromSamples(const std::vector<double> &samples)
{
    BoxStats b;
    if (samples.empty())
        return b;
    b.n = samples.size();
    b.lo = percentile(samples, 0.0);
    b.q1 = percentile(samples, 0.25);
    b.median = percentile(samples, 0.5);
    b.q3 = percentile(samples, 0.75);
    b.hi = percentile(samples, 1.0);
    RunningStats rs;
    for (double s : samples)
        rs.add(s);
    b.mean = rs.mean();
    return b;
}

Histogram::Histogram(double lo, double hi, size_t bins, bool logarithmic)
    : lo_(lo), hi_(hi), log_(logarithmic), counts_(bins, 0)
{
    if (bins == 0)
        panic("Histogram: bins must be > 0");
    if (hi <= lo)
        panic("Histogram: hi (%g) must exceed lo (%g)", hi, lo);
    if (log_ && lo <= 0.0)
        panic("Histogram: logarithmic bins require lo > 0 (got %g)", lo);
}

void
Histogram::add(double x, uint64_t weight)
{
    double pos;
    if (log_) {
        double xl = std::max(x, lo_);
        pos = (std::log(xl) - std::log(lo_)) /
              (std::log(hi_) - std::log(lo_));
    } else {
        pos = (x - lo_) / (hi_ - lo_);
    }
    double scaled = pos * static_cast<double>(counts_.size());
    long idx = static_cast<long>(std::floor(scaled));
    idx = std::max(0l, std::min(idx, static_cast<long>(counts_.size()) - 1));
    counts_[static_cast<size_t>(idx)] += weight;
    total_ += weight;
}

double
Histogram::binLo(size_t i) const
{
    double f = static_cast<double>(i) / static_cast<double>(counts_.size());
    if (log_)
        return lo_ * std::pow(hi_ / lo_, f);
    return lo_ + (hi_ - lo_) * f;
}

double
Histogram::binCenter(size_t i) const
{
    if (log_)
        return std::sqrt(binLo(i) * binHi(i));
    return 0.5 * (binLo(i) + binHi(i));
}

double
Histogram::binFraction(size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) /
           static_cast<double>(total_);
}

} // namespace reaper
