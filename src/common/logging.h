/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: fatal() for user/configuration errors that
 * make continuing impossible, panic() for internal invariant violations,
 * warn()/inform() for non-fatal status messages.
 */

#ifndef REAPER_COMMON_LOGGING_H
#define REAPER_COMMON_LOGGING_H

#include <cstdarg>
#include <string>

namespace reaper {

/** Verbosity levels for status messages. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the global log verbosity. Messages above this level are dropped. */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/**
 * Report an unrecoverable user-facing error (bad configuration, invalid
 * arguments) and exit with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation (a bug in this library) and
 * abort(), so a core dump / debugger can capture state.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about suspicious but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informative progress/status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, va_list args);

} // namespace reaper

#endif // REAPER_COMMON_LOGGING_H
