#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace reaper {

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
hashCombine(uint64_t a, uint64_t b)
{
    // Mix both words through SplitMix64 so nearby inputs decorrelate.
    uint64_t state = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
    return splitmix64(state);
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    // xoshiro must not be seeded with all zeros; SplitMix64 of any seed
    // cannot produce four zero words, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x9E3779B97F4A7C15ull;
}

uint64_t
Rng::operator()()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

double
Rng::uniform()
{
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    if (n == 0)
        panic("uniformInt: n must be > 0");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - n) % n;
    for (;;) {
        uint64_t r = (*this)();
        if (r >= threshold)
            return r % n;
    }
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu_log, double sigma_log)
{
    return std::exp(normal(mu_log, sigma_log));
}

double
Rng::exponentialMean(double mean)
{
    if (mean <= 0.0)
        panic("exponentialMean: mean must be > 0 (got %g)", mean);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

uint64_t
Rng::poisson(double mean)
{
    if (mean <= 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth inversion in log space to avoid underflow.
        double l = std::exp(-mean);
        uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > l);
        return k - 1;
    }
    // Normal approximation with continuity correction; adequate for the
    // large-population sampling (weak-cell counts) this is used for.
    double x = normal(mean, std::sqrt(mean));
    return x < 0.5 ? 0 : static_cast<uint64_t>(std::llround(x));
}

uint64_t
Rng::binomial(uint64_t n, double p)
{
    if (n == 0 || p <= 0.0)
        return 0;
    if (p >= 1.0)
        return n;
    double np = static_cast<double>(n) * p;
    if (np < 30.0 && n < 100000) {
        if (np < 10.0 && static_cast<double>(n) * (1 - p) > 30.0) {
            // Poisson limit is cheap and accurate in the rare-event regime
            // that dominates our use (weak cells out of billions of bits).
            uint64_t k = poisson(np);
            return std::min(k, n);
        }
        uint64_t count = 0;
        for (uint64_t i = 0; i < n; ++i)
            count += bernoulli(p) ? 1 : 0;
        return count;
    }
    double mean = np;
    double sd = std::sqrt(np * (1.0 - p));
    double x = normal(mean, sd);
    if (x < 0.0)
        return 0;
    if (x > static_cast<double>(n))
        return n;
    return static_cast<uint64_t>(std::llround(x));
}

} // namespace reaper
