/**
 * @file
 * Expected<T, E>: the library's unified recoverable-error return type.
 *
 * Three PRs of growth left the error-returning surfaces inconsistent —
 * bool-plus-out-parameter (tryLoadProfile), exceptions (CampaignError),
 * and fatal() aborts coexisted. Expected is the convergence point: a
 * tagged union of a value and a typed error that makes the failure path
 * explicit in the signature, costs nothing on the happy path (no
 * exceptions, no allocation beyond the payload), and composes through
 * monadic map/andThen/orElse instead of nested if(!ok) ladders.
 *
 * Conventions:
 *  - Recoverable failures (missing file, parse error, transient host
 *    fault) return Expected; the caller decides whether to retry,
 *    degrade, or surface the error.
 *  - Invariant violations still panic() and unusable configurations
 *    still fatal(): those are not errors a caller can act on.
 *  - E defaults to common::Error, a category + message pair whose
 *    categories are shared across subsystems so orchestration code can
 *    dispatch on *kind* of failure (e.g. campaign retries
 *    ErrorCategory::Fault but aborts on ErrorCategory::Corrupt).
 */

#ifndef REAPER_COMMON_EXPECTED_H
#define REAPER_COMMON_EXPECTED_H

#include <string>
#include <type_traits>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace reaper {
namespace common {

/** Cross-subsystem failure kinds. Dispatch on these, not on message
 *  text. */
enum class ErrorCategory
{
    Io,            ///< open/read/write/rename failed
    Parse,         ///< malformed input (bad header, truncated list)
    NotFound,      ///< the requested key/file/profiler does not exist
    Corrupt,       ///< stored state exists but fails validation
    Fault,         ///< transient infrastructure fault (retryable)
    InvalidConfig, ///< caller-supplied configuration is unusable
    Internal,      ///< unexpected library-internal failure
};

const char *toString(ErrorCategory c);

/** The default error payload: a category plus a human-readable
 *  diagnostic. */
struct Error
{
    ErrorCategory category = ErrorCategory::Internal;
    std::string message;

    Error() = default;
    Error(ErrorCategory c, std::string msg)
        : category(c), message(std::move(msg))
    {
    }

    static Error io(std::string msg)
    {
        return {ErrorCategory::Io, std::move(msg)};
    }
    static Error parse(std::string msg)
    {
        return {ErrorCategory::Parse, std::move(msg)};
    }
    static Error notFound(std::string msg)
    {
        return {ErrorCategory::NotFound, std::move(msg)};
    }
    static Error corrupt(std::string msg)
    {
        return {ErrorCategory::Corrupt, std::move(msg)};
    }
    static Error fault(std::string msg)
    {
        return {ErrorCategory::Fault, std::move(msg)};
    }
    static Error invalidConfig(std::string msg)
    {
        return {ErrorCategory::InvalidConfig, std::move(msg)};
    }
    static Error internal(std::string msg)
    {
        return {ErrorCategory::Internal, std::move(msg)};
    }

    /** "category: message", for logs and wrapped exceptions. */
    std::string describe() const
    {
        return std::string(toString(category)) + ": " + message;
    }
};

/** Unit type for Expected<Unit>: an operation with no result value. */
struct Unit
{
    bool operator==(const Unit &) const { return true; }
};

/** Wrapper distinguishing an error-typed payload from a value-typed
 *  one when T and E could convert into each other. */
template <typename E> struct Unexpected
{
    E error;
};

template <typename E>
Unexpected<std::decay_t<E>>
makeUnexpected(E &&e)
{
    return {std::forward<E>(e)};
}

/**
 * Tagged union of a success value T and an error E.
 *
 * Construction is implicit from either side (use makeUnexpected when T
 * and E are inter-convertible). Accessors panic() on wrong-side access
 * — an Expected must be checked before it is unwrapped.
 */
template <typename T, typename E = Error> class Expected
{
    static_assert(!std::is_same_v<T, E>,
                  "Expected<T, E> needs distinguishable types");

  public:
    using value_type = T;
    using error_type = E;

    Expected(T value) : state_(std::in_place_index<0>, std::move(value))
    {
    }
    Expected(E error) : state_(std::in_place_index<1>, std::move(error))
    {
    }
    Expected(Unexpected<E> u)
        : state_(std::in_place_index<1>, std::move(u.error))
    {
    }

    bool hasValue() const { return state_.index() == 0; }
    explicit operator bool() const { return hasValue(); }

    T &value() &
    {
        requireValue();
        return std::get<0>(state_);
    }
    const T &value() const &
    {
        requireValue();
        return std::get<0>(state_);
    }
    T &&value() &&
    {
        requireValue();
        return std::get<0>(std::move(state_));
    }

    T valueOr(T fallback) const &
    {
        return hasValue() ? std::get<0>(state_) : std::move(fallback);
    }
    T valueOr(T fallback) &&
    {
        return hasValue() ? std::get<0>(std::move(state_))
                          : std::move(fallback);
    }

    E &error()
    {
        requireError();
        return std::get<1>(state_);
    }
    const E &error() const
    {
        requireError();
        return std::get<1>(state_);
    }

    /**
     * Apply f to the value (f: T -> U), passing any error through
     * unchanged: the composition backbone for parse/convert chains.
     */
    template <typename F> auto map(F &&f) const & -> Expected<
        std::decay_t<std::invoke_result_t<F, const T &>>, E>
    {
        if (hasValue())
            return {std::forward<F>(f)(std::get<0>(state_))};
        return {std::get<1>(state_)};
    }
    template <typename F>
    auto map(F &&f) && -> Expected<
        std::decay_t<std::invoke_result_t<F, T &&>>, E>
    {
        if (hasValue())
            return {std::forward<F>(f)(std::get<0>(std::move(state_)))};
        return {std::get<1>(std::move(state_))};
    }

    /** Chain a fallible step: f returns Expected<U, E> itself. */
    template <typename F>
    auto andThen(F &&f) const & -> std::invoke_result_t<F, const T &>
    {
        if (hasValue())
            return std::forward<F>(f)(std::get<0>(state_));
        return {std::get<1>(state_)};
    }
    template <typename F>
    auto andThen(F &&f) && -> std::invoke_result_t<F, T &&>
    {
        if (hasValue())
            return std::forward<F>(f)(std::get<0>(std::move(state_)));
        return {std::get<1>(std::move(state_))};
    }

    /**
     * Recover from an error: f (E -> Expected<T, E>) runs only on the
     * error side; a value passes through untouched.
     */
    template <typename F>
    Expected orElse(F &&f) const &
    {
        if (hasValue())
            return *this;
        return std::forward<F>(f)(std::get<1>(state_));
    }
    template <typename F>
    Expected orElse(F &&f) &&
    {
        if (hasValue())
            return std::move(*this);
        return std::forward<F>(f)(std::get<1>(std::move(state_)));
    }

  private:
    void requireValue() const
    {
        if (!hasValue())
            panic("Expected: value() called on an error result");
    }
    void requireError() const
    {
        if (hasValue())
            panic("Expected: error() called on a value result");
    }

    std::variant<T, E> state_;
};

/** An operation that succeeds with no payload. */
using Status = Expected<Unit, Error>;

/** The canonical success Status. */
inline Status
okStatus()
{
    return Status(Unit{});
}

} // namespace common
} // namespace reaper

#endif // REAPER_COMMON_EXPECTED_H
