/**
 * @file
 * Kolmogorov-Smirnov goodness-of-fit testing, used by the
 * characterization benches to back the paper's distributional claims
 * (per-cell failure CDFs are normal, their spreads lognormal)
 * quantitatively rather than by eyeball.
 */

#ifndef REAPER_COMMON_KS_TEST_H
#define REAPER_COMMON_KS_TEST_H

#include <functional>
#include <vector>

namespace reaper {

/**
 * One-sample KS statistic: sup_x |F_emp(x) - F(x)| for the empirical
 * CDF of `samples` against the reference CDF `cdf`. Needs at least
 * one sample (fatal otherwise).
 */
double ksStatistic(std::vector<double> samples,
                   const std::function<double(double)> &cdf);

/**
 * Approximate critical value c(alpha)/sqrt(n) of the one-sample KS
 * test for alpha in {0.10, 0.05, 0.01} (asymptotic form; good for
 * n >= ~35).
 */
double ksCriticalValue(size_t n, double alpha);

/** Result of a distribution test. */
struct KsResult
{
    double statistic = 0.0;
    double critical = 0.0;
    bool accepted = false; ///< statistic <= critical

    double margin() const { return critical - statistic; }
};

/** Test samples against Normal(mu, sigma). */
KsResult ksTestNormal(const std::vector<double> &samples, double mu,
                      double sigma, double alpha = 0.05);

/** Test positive samples against LogNormal(mu_log, sigma_log). */
KsResult ksTestLognormal(const std::vector<double> &samples,
                         double mu_log, double sigma_log,
                         double alpha = 0.05);

} // namespace reaper

#endif // REAPER_COMMON_KS_TEST_H
