/**
 * @file
 * Numerical helpers: normal CDF/quantile, log-space combinatorics, and
 * binomial tail probabilities used by the ECC reliability model.
 */

#ifndef REAPER_COMMON_MATH_UTIL_H
#define REAPER_COMMON_MATH_UTIL_H

#include <cstdint>

namespace reaper {

/** Standard normal cumulative distribution function Phi(x). */
double normalCdf(double x);

/** Normal CDF with mean mu and standard deviation sigma (sigma > 0). */
double normalCdf(double x, double mu, double sigma);

/**
 * Inverse standard normal CDF (probit). Uses the Acklam rational
 * approximation refined with one Halley step; |error| < 1e-9 over (0, 1).
 */
double normalQuantile(double p);

/** log(n!) via lgamma. */
double logFactorial(uint64_t n);

/** log of the binomial coefficient C(n, k). */
double logChoose(uint64_t n, uint64_t k);

/**
 * Probability of exactly n failures among w independent trials with
 * per-trial probability r, computed in log space: C(w,n) r^n (1-r)^(w-n).
 */
double binomialPmf(uint64_t w, uint64_t n, double r);

/**
 * Upper-tail binomial probability P[X > k] for X ~ Binomial(w, r),
 * i.e. the probability of an uncorrectable error in a w-bit ECC word
 * with k-bit correction capability. Accurate for the very small
 * probabilities (1e-15..1e-25) the UBER model needs.
 */
double binomialTailAbove(uint64_t w, uint64_t k, double r);

/** Clamp x to [lo, hi]. */
double clampTo(double x, double lo, double hi);

/**
 * Solve f(x) = target for a monotonically increasing f on [lo, hi] by
 * bisection; returns the midpoint after converging to rtol relative
 * interval width (or 200 iterations).
 */
template <typename F>
double
bisectIncreasing(F f, double target, double lo, double hi,
                 double rtol = 1e-12)
{
    for (int i = 0; i < 200 && (hi - lo) > rtol * (1.0 + hi); ++i) {
        double mid = 0.5 * (lo + hi);
        if (f(mid) < target)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace reaper

#endif // REAPER_COMMON_MATH_UTIL_H
