/**
 * @file
 * Minimal parallel-for helper for embarrassingly parallel evaluation
 * sweeps (independent simulator runs in the end-to-end benches).
 */

#ifndef REAPER_COMMON_PARALLEL_H
#define REAPER_COMMON_PARALLEL_H

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace reaper {

/**
 * Run fn(i) for i in [0, count) across up to `threads` worker threads
 * (0 = hardware concurrency). fn must be safe to call concurrently for
 * distinct i. Blocks until all iterations finish.
 */
template <typename Fn>
void
parallelFor(size_t count, Fn fn, unsigned threads = 0)
{
    if (count == 0)
        return;
    unsigned hw = std::thread::hardware_concurrency();
    unsigned n = threads ? threads : (hw ? hw : 4);
    n = static_cast<unsigned>(
        std::min<size_t>(n, count));
    if (n <= 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t) {
        pool.emplace_back([&]() {
            for (;;) {
                size_t i = next.fetch_add(1);
                if (i >= count)
                    return;
                fn(i);
            }
        });
    }
    for (auto &th : pool)
        th.join();
}

} // namespace reaper

#endif // REAPER_COMMON_PARALLEL_H
