/**
 * @file
 * Minimal parallel-for helper for embarrassingly parallel evaluation
 * sweeps (independent simulator runs in the end-to-end benches).
 *
 * Worker exceptions do not escape the worker threads (which would call
 * std::terminate): the first exception thrown by any fn(i) is captured,
 * remaining iterations are abandoned, and the exception is rethrown on
 * the calling thread after all workers join. For richer scheduling
 * (chunking, per-task seeds, ordered result collection) see
 * eval/fleet.h, which builds on the same dispatch loop.
 */

#ifndef REAPER_COMMON_PARALLEL_H
#define REAPER_COMMON_PARALLEL_H

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace reaper {

/**
 * Run fn(i) for i in [0, count) across up to `threads` worker threads
 * (0 = hardware concurrency). fn must be safe to call concurrently for
 * distinct i. Blocks until all iterations finish; rethrows the first
 * worker exception (later iterations may be skipped once one throws).
 */
template <typename Fn>
void
parallelFor(size_t count, Fn fn, unsigned threads = 0)
{
    if (count == 0)
        return;
    unsigned hw = std::thread::hardware_concurrency();
    unsigned n = threads ? threads : (hw ? hw : 4);
    n = static_cast<unsigned>(
        std::min<size_t>(n, count));
    if (n <= 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mtx;
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t) {
        pool.emplace_back([&]() {
            for (;;) {
                if (failed.load(std::memory_order_relaxed))
                    return;
                size_t i = next.fetch_add(1);
                if (i >= count)
                    return;
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mtx);
                    if (!first_error)
                        first_error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        });
    }
    for (auto &th : pool)
        th.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace reaper

#endif // REAPER_COMMON_PARALLEL_H
