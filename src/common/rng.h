/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The library never uses std::random_device or global state: every
 * stochastic component takes an explicit Rng (or seed) so experiments are
 * reproducible bit-for-bit. The core generator is xoshiro256**, seeded via
 * SplitMix64, which is fast and has excellent statistical quality for
 * simulation workloads.
 */

#ifndef REAPER_COMMON_RNG_H
#define REAPER_COMMON_RNG_H

#include <cstdint>
#include <limits>

namespace reaper {

/** SplitMix64 step; used for seeding and for stable hashing. */
uint64_t splitmix64(uint64_t &state);

/**
 * Stable 64-bit hash combiner for deriving per-object seeds (e.g. a
 * per-cell, per-pattern deterministic value). Not cryptographic.
 */
uint64_t hashCombine(uint64_t a, uint64_t b);

/**
 * xoshiro256** pseudo-random generator with a library of distribution
 * samplers. Satisfies the UniformRandomBitGenerator concept.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<uint64_t>::max();
    }

    /** Next raw 64-bit value. */
    uint64_t operator()();

    /** Fork an independent stream (for per-component RNGs). */
    Rng fork();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Bernoulli trial with probability p (clamped to [0, 1]). */
    bool bernoulli(double p);

    /** Standard normal via Box-Muller (cached spare). */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Lognormal: exp(Normal(mu_log, sigma_log)). */
    double lognormal(double mu_log, double sigma_log);

    /** Exponential with given mean (= 1/rate). Requires mean > 0. */
    double exponentialMean(double mean);

    /**
     * Poisson sample with given mean. Uses inversion for small means and
     * the PTRS transformed-rejection method for large means.
     */
    uint64_t poisson(double mean);

    /**
     * Binomial(n, p) sample. Exact inversion for small n*p; normal
     * approximation with continuity correction for large n*p where the
     * relative error is negligible for our population sizes.
     */
    uint64_t binomial(uint64_t n, double p);

  private:
    uint64_t s_[4];
    double spare_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace reaper

#endif // REAPER_COMMON_RNG_H
