/**
 * @file
 * Descriptive statistics: streaming moments (Welford), percentiles,
 * box-plot summaries, and histograms (linear and logarithmic binning).
 */

#ifndef REAPER_COMMON_STATS_H
#define REAPER_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace reaper {

/** Streaming mean/variance/min/max accumulator (Welford's algorithm). */
class RunningStats
{
  public:
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Sample variance (n-1 denominator); 0 for n < 2. */
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Linear-interpolated percentile of a sample (q in [0, 1]).
 * The input vector is copied and sorted; empty input returns 0.
 */
double percentile(std::vector<double> values, double q);

/** Five-number box-plot summary plus the mean (as in the paper's Fig 13). */
struct BoxStats
{
    double lo = 0.0;  ///< minimum (lower whisker)
    double q1 = 0.0;  ///< 25th percentile
    double median = 0.0;
    double q3 = 0.0;  ///< 75th percentile
    double hi = 0.0;  ///< maximum (upper whisker)
    double mean = 0.0;
    size_t n = 0;

    static BoxStats fromSamples(const std::vector<double> &samples);
};

/** Fixed-bin histogram over [lo, hi); out-of-range samples clamp to ends. */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower edge of the first bin
     * @param hi exclusive upper edge of the last bin (must be > lo)
     * @param bins number of bins (must be > 0)
     * @param logarithmic if true, bin edges are geometric (lo must be > 0)
     */
    Histogram(double lo, double hi, size_t bins, bool logarithmic = false);

    void add(double x, uint64_t weight = 1);

    size_t numBins() const { return counts_.size(); }
    uint64_t binCount(size_t i) const { return counts_.at(i); }
    uint64_t totalCount() const { return total_; }
    /** Lower edge of bin i. */
    double binLo(size_t i) const;
    /** Upper edge of bin i. */
    double binHi(size_t i) const { return binLo(i + 1); }
    /** Geometric/arithmetic center of bin i. */
    double binCenter(size_t i) const;
    /** Fraction of all samples in bin i (0 if empty histogram). */
    double binFraction(size_t i) const;

  private:
    double lo_;
    double hi_;
    bool log_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace reaper

#endif // REAPER_COMMON_STATS_H
