#include "common/ks_test.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace reaper {

double
ksStatistic(std::vector<double> samples,
            const std::function<double(double)> &cdf)
{
    if (samples.empty())
        panic("ksStatistic: need at least one sample");
    std::sort(samples.begin(), samples.end());
    double n = static_cast<double>(samples.size());
    double d = 0.0;
    for (size_t i = 0; i < samples.size(); ++i) {
        double f = cdf(samples[i]);
        double lo = static_cast<double>(i) / n;
        double hi = static_cast<double>(i + 1) / n;
        d = std::max(d, std::max(std::fabs(f - lo),
                                 std::fabs(hi - f)));
    }
    return d;
}

double
ksCriticalValue(size_t n, double alpha)
{
    if (n == 0)
        panic("ksCriticalValue: n must be > 0");
    double c;
    if (alpha <= 0.01 + 1e-12) {
        c = 1.628;
    } else if (alpha <= 0.05 + 1e-12) {
        c = 1.358;
    } else {
        c = 1.224; // alpha = 0.10
    }
    return c / std::sqrt(static_cast<double>(n));
}

KsResult
ksTestNormal(const std::vector<double> &samples, double mu,
             double sigma, double alpha)
{
    KsResult r;
    r.statistic = ksStatistic(samples, [&](double x) {
        return normalCdf(x, mu, sigma);
    });
    r.critical = ksCriticalValue(samples.size(), alpha);
    r.accepted = r.statistic <= r.critical;
    return r;
}

KsResult
ksTestLognormal(const std::vector<double> &samples, double mu_log,
                double sigma_log, double alpha)
{
    KsResult r;
    r.statistic = ksStatistic(samples, [&](double x) {
        if (x <= 0)
            return 0.0;
        return normalCdf(std::log(x), mu_log, sigma_log);
    });
    r.critical = ksCriticalValue(samples.size(), alpha);
    r.accepted = r.statistic <= r.critical;
    return r;
}

} // namespace reaper
