/**
 * @file
 * Fleet execution engine for chip-characterization sweeps.
 *
 * The paper's entire evaluation is a fleet sweep: hundreds of chips x
 * many (pattern, tREFI, temperature) rounds, where every chip is fully
 * independent (Sections 4-5). runFleet() batches such independent tasks
 * across worker threads the way SoftMC-style infrastructures batch
 * across modules, with three guarantees the plain parallelFor lacks:
 *
 *  1. **Ordered result collection.** Task i's return value lands at
 *     index i of the result vector regardless of which worker ran it or
 *     when it finished, so downstream reductions (tables, aggregate
 *     stats) see results in task order.
 *  2. **Determinism across thread counts.** Tasks receive no shared
 *     mutable state from the engine; combined with per-task seed
 *     derivation (fleetSeed), a fleet produces bit-identical results at
 *     1, 2, or N threads (verified by tests/test_fleet.cc).
 *  3. **Exception propagation.** The first exception thrown by any task
 *     is captured, the fleet drains, and the exception is rethrown on
 *     the calling thread.
 *
 * The worker count resolves, in order: explicit FleetOptions::threads,
 * the REAPER_BENCH_THREADS environment variable, then hardware
 * concurrency. Tasks are handed out in contiguous chunks to bound
 * scheduling overhead when n is large (e.g. one job per simulator run in
 * the end-to-end sweep).
 */

#ifndef REAPER_EVAL_FLEET_H
#define REAPER_EVAL_FLEET_H

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "obs/obs.h"

namespace reaper {
namespace eval {

/** Scheduling knobs of one runFleet call. */
struct FleetOptions
{
    /** Worker threads; 0 = REAPER_BENCH_THREADS, else hardware. */
    unsigned threads = 0;
    /** Tasks handed to a worker at a time; 0 = automatic. */
    size_t chunk = 0;
};

/**
 * Default fleet worker count: REAPER_BENCH_THREADS if set to a positive
 * integer, otherwise std::thread::hardware_concurrency() (min 1).
 */
unsigned fleetThreads();

/**
 * Derive the seed of task `task` from a fleet-level base seed. Stable
 * across thread counts and platforms; adjacent tasks get decorrelated
 * streams. Use this instead of seed+task arithmetic so per-chip
 * populations do not alias when a bench also offsets seeds itself.
 */
inline uint64_t
fleetSeed(uint64_t base, uint64_t task)
{
    return hashCombine(base, 0x9E3779B97F4A7C15ull + task);
}

namespace detail {

/** Chunk size balancing dispatch overhead against load balance. */
inline size_t
fleetChunk(size_t count, unsigned threads, size_t requested)
{
    if (requested > 0)
        return requested;
    // ~8 chunks per worker keeps the tail short while amortizing the
    // atomic fetch over several tasks.
    size_t target = static_cast<size_t>(threads) * 8;
    return std::max<size_t>(1, count / std::max<size_t>(target, 1));
}

} // namespace detail

/**
 * Run fn(i) for i in [0, n) across the fleet workers and return the
 * results in task order: out[i] == fn(i). fn must be invocable
 * concurrently for distinct i and its result type R must be movable.
 * Rethrows the first task exception after all workers drain (results
 * are discarded in that case; tasks not yet started are skipped).
 */
template <typename Fn,
          typename R = std::invoke_result_t<Fn &, size_t>>
std::vector<R>
runFleet(size_t n, Fn fn, FleetOptions opt = {})
{
    static_assert(!std::is_void_v<R>,
                  "runFleet tasks must return a value; use parallelFor "
                  "for side-effect-only loops");
    std::vector<std::optional<R>> slots(n);
    if (n == 0)
        return {};

    REAPER_OBS_SPAN(fleetSpan, "fleet.run");
    REAPER_OBS_COUNT("fleet.runs");
    REAPER_OBS_COUNT_N("fleet.tasks", n);

    unsigned workers = opt.threads ? opt.threads : fleetThreads();
    workers = static_cast<unsigned>(std::min<size_t>(workers, n));
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            slots[i].emplace(fn(i));
    } else {
        const size_t chunk = detail::fleetChunk(n, workers, opt.chunk);
        std::atomic<size_t> next{0};
        std::atomic<bool> failed{false};
        std::exception_ptr first_error;
        std::mutex error_mtx;
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t) {
            pool.emplace_back([&]() {
                for (;;) {
                    if (failed.load(std::memory_order_relaxed))
                        return;
                    size_t lo = next.fetch_add(chunk);
                    if (lo >= n)
                        return;
                    size_t hi = std::min(n, lo + chunk);
                    REAPER_OBS_COUNT("fleet.chunks");
#ifndef REAPER_OBS_COMPILE_OUT
                    // Per-worker busy time (task execution only, not
                    // dispatch waits), accumulated fleet-wide.
                    uint64_t busy_start =
                        ::reaper::obs::countersOn()
                            ? ::reaper::obs::Tracer::nowNs()
                            : 0;
#endif
                    try {
                        REAPER_OBS_SPAN(chunkSpan, "fleet.chunk");
                        for (size_t i = lo; i < hi; ++i)
                            slots[i].emplace(fn(i));
                    } catch (...) {
                        std::lock_guard<std::mutex> lock(error_mtx);
                        if (!first_error)
                            first_error = std::current_exception();
                        failed.store(true, std::memory_order_relaxed);
                        return;
                    }
#ifndef REAPER_OBS_COMPILE_OUT
                    if (busy_start != 0)
                        REAPER_OBS_COUNT_N(
                            "fleet.busy_ns",
                            ::reaper::obs::Tracer::nowNs() -
                                busy_start);
#endif
                }
            });
        }
        for (auto &th : pool)
            th.join();
        if (first_error)
            std::rethrow_exception(first_error);
    }

    std::vector<R> out;
    out.reserve(n);
    for (auto &slot : slots)
        out.push_back(std::move(*slot));
    return out;
}

} // namespace eval
} // namespace reaper

#endif // REAPER_EVAL_FLEET_H
