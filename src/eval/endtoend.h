/**
 * @file
 * End-to-end evaluation harness (Section 7.3.2, Fig. 13): simulate the
 * multiprogrammed workload mixes at each refresh interval, convert to
 * weighted speedup against the 64 ms baseline, apply each profiler's
 * online-profiling overhead (Eq. 8), and evaluate DRAM power with the
 * command-level power model.
 */

#ifndef REAPER_EVAL_ENDTOEND_H
#define REAPER_EVAL_ENDTOEND_H

#include <array>
#include <string>
#include <vector>

#include "common/stats.h"
#include "eval/overhead.h"
#include "power/drampower.h"
#include "sim/system.h"
#include "workload/synthetic.h"

namespace reaper {
namespace eval {

/** Sweep configuration. */
struct EndToEndConfig
{
    /** Extended refresh intervals to evaluate (the 64 ms baseline is
     *  always run). */
    std::vector<Seconds> refreshIntervals = {0.128, 0.256, 0.512,
                                             1.024, 1.280, 1.536};
    /** Also evaluate the no-refresh upper bound. */
    bool includeNoRefresh = true;
    std::vector<unsigned> chipGbits = {8, 64};
    int numMixes = 20;
    size_t accessesPerCore = 100000;
    sim::Cycle runCycles = 1500000;
    uint64_t seed = 1;
    unsigned threads = 0; ///< 0 = hardware concurrency
    /**
     * Profiler kinds evaluated at each sweep point, by name (see
     * profilerKindByName). Result arrays always span all kinds;
     * deselected kinds simply stay empty.
     */
    std::vector<std::string> profilers = {"brute_force", "reaper",
                                          "ideal"};
    /** Profiling-overhead scenario (interval/chip fields overwritten
     *  per sweep point). */
    OverheadConfig overhead{};
    /** Base system configuration (DRAM fields overwritten). */
    sim::SystemConfig system{};
};

/** Index profiler kinds in result arrays. */
constexpr int kNumProfilerKinds = 3;
int profilerIndex(ProfilerKind k);

/** Results for one (chip size, refresh interval) sweep point. */
struct SweepPoint
{
    unsigned chipGbit = 0;
    /** Evaluated refresh interval; <= 0 encodes "no refresh". */
    Seconds interval = 0;
    bool noRefresh = false;

    /** Per-mix relative performance improvement over the 64 ms
     *  baseline, per profiler kind. */
    std::array<std::vector<double>, kNumProfilerKinds> perfImprovement;
    /** Per-mix relative DRAM power reduction vs the baseline. */
    std::array<std::vector<double>, kNumProfilerKinds> powerReduction;
    /** Profiling overhead details per kind. */
    std::array<OverheadResult, kNumProfilerKinds> overhead;

    BoxStats perfBox(ProfilerKind k) const;
    BoxStats powerBox(ProfilerKind k) const;
};

/** The Fig. 13 evaluator. */
class EndToEndEvaluator
{
  public:
    explicit EndToEndEvaluator(const EndToEndConfig &cfg);

    /** Run the full sweep (parallelized across simulator runs). */
    std::vector<SweepPoint> run();

    /** The workload mixes in use. */
    const std::vector<workload::WorkloadMix> &mixes() const
    {
        return mixes_;
    }

  private:
    struct RunStats
    {
        std::vector<double> coreIpc;
        sim::CommandCounts counts;
        Seconds simSeconds = 0;
    };

    /** Simulate one mix at one configuration. */
    RunStats simulateMix(const std::vector<sim::Trace> &traces,
                         unsigned chip_gbit, Seconds interval) const;

    EndToEndConfig cfg_;
    std::vector<workload::WorkloadMix> mixes_;
    /** cfg_.profilers resolved to kinds (validated at construction). */
    std::vector<ProfilerKind> kinds_;
};

} // namespace eval
} // namespace reaper

#endif // REAPER_EVAL_ENDTOEND_H
