#include "eval/fleet.h"

#include <cstdlib>
#include <string>

#include "common/logging.h"

namespace reaper {
namespace eval {

unsigned
fleetThreads()
{
    if (const char *env = std::getenv("REAPER_BENCH_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        if (env[0] != '\0')
            warn("REAPER_BENCH_THREADS='%s' is not a positive integer; "
                 "falling back to hardware concurrency",
                 env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace eval
} // namespace reaper
