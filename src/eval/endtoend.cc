#include "eval/endtoend.h"

#include <cmath>
#include <map>
#include <tuple>
#include <set>

#include "common/logging.h"
#include "eval/fleet.h"

namespace reaper {
namespace eval {

int
profilerIndex(ProfilerKind k)
{
    return static_cast<int>(k);
}

BoxStats
SweepPoint::perfBox(ProfilerKind k) const
{
    return BoxStats::fromSamples(
        perfImprovement[static_cast<size_t>(profilerIndex(k))]);
}

BoxStats
SweepPoint::powerBox(ProfilerKind k) const
{
    return BoxStats::fromSamples(
        powerReduction[static_cast<size_t>(profilerIndex(k))]);
}

EndToEndEvaluator::EndToEndEvaluator(const EndToEndConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.numMixes < 1)
        panic("EndToEndEvaluator: numMixes must be >= 1");
    if (cfg_.profilers.empty())
        panic("EndToEndEvaluator: profilers must not be empty");
    for (const std::string &name : cfg_.profilers) {
        common::Expected<ProfilerKind> kind = profilerKindByName(name);
        if (!kind)
            panic("EndToEndEvaluator: %s",
                  kind.error().describe().c_str());
        kinds_.push_back(kind.value());
    }
    mixes_ = workload::makeMixes(cfg_.numMixes, cfg_.seed);
}

EndToEndEvaluator::RunStats
EndToEndEvaluator::simulateMix(const std::vector<sim::Trace> &traces,
                               unsigned chip_gbit,
                               Seconds interval) const
{
    sim::SystemConfig sys = cfg_.system;
    sys.setDram(chip_gbit, interval);
    sim::System system(sys, traces);
    system.run(cfg_.runCycles);
    sim::SystemStats stats = system.stats();
    RunStats r;
    r.coreIpc = stats.coreIpc;
    r.counts = stats.channels.commands;
    r.simSeconds = stats.simulatedSeconds;
    return r;
}

std::vector<SweepPoint>
EndToEndEvaluator::run()
{
    // Pre-generate traces for every mix and the set of distinct
    // benchmarks (for IPC_alone divisors).
    std::vector<std::vector<sim::Trace>> mix_traces;
    for (const auto &mix : mixes_) {
        mix_traces.push_back(workload::tracesForMix(
            mix, cfg_.accessesPerCore, cfg_.seed));
    }
    std::set<int> bench_set;
    for (const auto &mix : mixes_)
        bench_set.insert(mix.benchmarks.begin(), mix.benchmarks.end());
    std::vector<int> benchmarks(bench_set.begin(), bench_set.end());

    // All evaluated intervals: baseline first, then the sweep, then
    // (optionally) no refresh, per chip size.
    std::vector<Seconds> intervals;
    intervals.push_back(kJedecRefreshInterval);
    for (Seconds t : cfg_.refreshIntervals) {
        if (t != kJedecRefreshInterval)
            intervals.push_back(t);
    }
    if (cfg_.includeNoRefresh)
        intervals.push_back(0.0); // 0 encodes "no refresh"

    struct Job
    {
        unsigned chip;
        size_t intervalIdx;
        int mix;   ///< mix index, or -1 for an "alone" run
        int bench; ///< benchmark index for alone runs
    };
    std::vector<Job> jobs;
    for (unsigned chip : cfg_.chipGbits) {
        // Alone runs: only at the 64 ms baseline (fixed divisors).
        for (int b : benchmarks)
            jobs.push_back({chip, 0, -1, b});
        for (size_t ti = 0; ti < intervals.size(); ++ti) {
            for (int m = 0; m < static_cast<int>(mixes_.size()); ++m)
                jobs.push_back({chip, ti, m, -1});
        }
    }

    // Run the jobs as one fleet; results come back in job order, so
    // the index maps below are filled deterministically regardless of
    // the worker count.
    FleetOptions fleet_opt;
    fleet_opt.threads = cfg_.threads;
    auto job_results = runFleet(
        jobs.size(),
        [&](size_t i) {
            const Job &job = jobs[i];
            if (job.mix < 0) {
                const auto &spec =
                    workload::specBenchmarks().at(
                        static_cast<size_t>(job.bench));
                std::vector<sim::Trace> alone = {workload::generateTrace(
                    spec, cfg_.accessesPerCore,
                    hashCombine(cfg_.seed, 0), 1ull << 32)};
                return simulateMix(alone, job.chip,
                                   kJedecRefreshInterval);
            }
            return simulateMix(
                mix_traces[static_cast<size_t>(job.mix)], job.chip,
                intervals[job.intervalIdx]);
        },
        fleet_opt);

    // Results keyed by (chip, interval index, mix) and alone IPCs
    // keyed by (chip, benchmark).
    std::map<std::tuple<unsigned, size_t, int>, RunStats> mix_runs;
    std::map<std::pair<unsigned, int>, double> alone_ipc;
    for (size_t i = 0; i < jobs.size(); ++i) {
        const Job &job = jobs[i];
        if (job.mix < 0)
            alone_ipc[{job.chip, job.bench}] =
                job_results[i].coreIpc.at(0);
        else
            mix_runs[{job.chip, job.intervalIdx, job.mix}] =
                std::move(job_results[i]);
    }

    // Assemble sweep points.
    std::vector<SweepPoint> points;
    for (unsigned chip : cfg_.chipGbits) {
        power::DramPowerModel power_model(power::EnergyParams::lpddr4(),
                                          chip, cfg_.overhead.numChips,
                                          cfg_.system.channels);

        // Per-mix baseline weighted speedup and power.
        std::vector<double> base_ws(mixes_.size());
        std::vector<double> base_power(mixes_.size());
        for (size_t m = 0; m < mixes_.size(); ++m) {
            const RunStats &r =
                mix_runs.at({chip, 0, static_cast<int>(m)});
            std::vector<double> alone;
            for (int b : mixes_[m].benchmarks)
                alone.push_back(alone_ipc.at({chip, b}));
            base_ws[m] = workload::weightedSpeedup(r.coreIpc, alone);
            base_power[m] =
                power_model.fromCounts(r.counts, r.simSeconds).total();
        }

        for (size_t ti = 1; ti < intervals.size(); ++ti) {
            SweepPoint pt;
            pt.chipGbit = chip;
            pt.noRefresh = intervals[ti] <= 0;
            pt.interval = pt.noRefresh ? 0.0 : intervals[ti];

            OverheadConfig ocfg = cfg_.overhead;
            ocfg.chipGbit = chip;
            ocfg.targetRefreshInterval =
                pt.noRefresh ? 0.0 : pt.interval;
            for (ProfilerKind kind : kinds_) {
                size_t ki =
                    static_cast<size_t>(profilerIndex(kind));
                if (pt.noRefresh) {
                    // "No refresh" is the profiling-free upper bound:
                    // only the ideal column is meaningful.
                    pt.overhead[ki] = OverheadResult{};
                    continue;
                }
                pt.overhead[ki] = computeOverhead(ocfg, kind);
            }

            for (size_t m = 0; m < mixes_.size(); ++m) {
                const RunStats &r =
                    mix_runs.at({chip, ti, static_cast<int>(m)});
                std::vector<double> alone;
                for (int b : mixes_[m].benchmarks)
                    alone.push_back(alone_ipc.at({chip, b}));
                double ws =
                    workload::weightedSpeedup(r.coreIpc, alone);
                double ideal_gain = ws / base_ws[m] - 1.0;
                double p_total =
                    power_model.fromCounts(r.counts, r.simSeconds)
                        .total();

                for (ProfilerKind kind : kinds_) {
                    size_t ki =
                        static_cast<size_t>(profilerIndex(kind));
                    if (pt.noRefresh &&
                        kind != ProfilerKind::Ideal)
                        continue;
                    double ov = pt.overhead[ki].overheadFraction;
                    // Eq. 8 applied to the throughput ratio.
                    double perf =
                        (1.0 + ideal_gain) * (1.0 - ov) - 1.0;
                    pt.perfImprovement[ki].push_back(perf);

                    double p_prof = 0.0;
                    if (!pt.noRefresh &&
                        kind != ProfilerKind::Ideal &&
                        pt.overhead[ki].reprofileInterval > 0 &&
                        std::isfinite(
                            pt.overhead[ki].reprofileInterval)) {
                        double round_energy =
                            power_model.profilingRoundEnergy(
                                ocfg.iterations, ocfg.numPatterns);
                        if (kind == ProfilerKind::Reaper)
                            round_energy /= ocfg.reaperSpeedup;
                        p_prof =
                            round_energy /
                            pt.overhead[ki].reprofileInterval;
                    }
                    pt.powerReduction[ki].push_back(
                        1.0 - (p_total + p_prof) / base_power[m]);
                }
            }
            points.push_back(std::move(pt));
        }
    }
    return points;
}

} // namespace eval
} // namespace reaper
