#include "eval/overhead.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "dram/retention_model.h"

namespace reaper {
namespace eval {

const char *
toString(ProfilerKind k)
{
    switch (k) {
      case ProfilerKind::BruteForce: return "brute-force";
      case ProfilerKind::Reaper: return "REAPER";
      case ProfilerKind::Ideal: return "ideal";
    }
    return "?";
}

common::Expected<ProfilerKind>
profilerKindByName(const std::string &name)
{
    // Accept both display names (toString) and the mechanism-registry
    // spellings used by profiling::makeProfiler / CLI flags.
    if (name == "brute_force" || name == "brute-force")
        return ProfilerKind::BruteForce;
    if (name == "reaper" || name == "REAPER" || name == "reach")
        return ProfilerKind::Reaper;
    if (name == "ideal")
        return ProfilerKind::Ideal;
    return common::Error::notFound(
        "unknown profiler kind '" + name +
        "' (known: brute_force, reaper, ideal)");
}

uint64_t
moduleCapacityBits(const OverheadConfig &cfg)
{
    return gibitToBits(cfg.chipGbit) * cfg.numChips;
}

namespace {

/** Eq. 9 round time for the brute-force profiler. */
Seconds
bruteForceRoundTime(const OverheadConfig &cfg)
{
    profiling::RuntimeModelInputs in;
    in.profilingRefreshInterval = cfg.targetRefreshInterval;
    in.numDataPatterns = cfg.numPatterns;
    in.iterations = cfg.iterations;
    in.moduleGB = static_cast<double>(moduleCapacityBits(cfg)) / 8.0 /
                  static_cast<double>(kGiB);
    return profiling::profilingRoundTime(in);
}

Seconds
roundTimeFor(const OverheadConfig &cfg, ProfilerKind kind)
{
    switch (kind) {
      case ProfilerKind::Ideal:
        return 0.0;
      case ProfilerKind::BruteForce:
        return bruteForceRoundTime(cfg);
      case ProfilerKind::Reaper:
        return bruteForceRoundTime(cfg) / cfg.reaperSpeedup;
    }
    panic("roundTimeFor: bad profiler kind");
}

} // namespace

OverheadResult
computeOverhead(const OverheadConfig &cfg, ProfilerKind kind)
{
    OverheadResult r;
    r.roundTime = roundTimeFor(cfg, kind);

    dram::RetentionModel model{dram::vendorParams(cfg.vendor)};
    uint64_t capacity = moduleCapacityBits(cfg);

    ecc::LongevityScenario scenario;
    scenario.capacityBits = capacity;
    scenario.eccStrength = cfg.eccStrength;
    scenario.targetUber = cfg.targetUber;
    scenario.berAtTarget =
        model.berAt(cfg.targetRefreshInterval, cfg.temperature);
    scenario.profilingCoverage = cfg.coverage;
    scenario.accumulationPerHour =
        model.vrtCumulativeRate(cfg.targetRefreshInterval, capacity) *
        3600.0 *
        std::exp(model.params().tempCoeff *
                 (cfg.temperature - model.referenceTemp()));
    ecc::LongevityResult longevity = ecc::computeLongevity(scenario);

    r.longevity = longevity.longevity;
    r.tolerableFailures = longevity.tolerableFailures;
    r.accumulationPerHour = scenario.accumulationPerHour;

    if (kind == ProfilerKind::Ideal) {
        // Prior works assume offline profiling suffices: no runtime
        // cost is charged (Section 7.3.2's comparison point).
        r.reprofileInterval = r.longevity;
        r.overheadFraction = 0.0;
        return r;
    }

    if (cfg.longevityGuardband < 1.0)
        panic("computeOverhead: guardband must be >= 1");
    r.reprofileInterval = r.longevity / cfg.longevityGuardband;
    if (!(r.reprofileInterval > 0) ||
        std::isinf(r.reprofileInterval)) {
        r.overheadFraction =
            r.reprofileInterval > 0 ? 0.0 : 1.0;
        return r;
    }
    // Fig. 11 semantics: the fraction of total system time spent
    // profiling with one round every reprofileInterval.
    r.overheadFraction = clampTo(
        r.roundTime / std::max(r.reprofileInterval, r.roundTime), 0.0,
        1.0);
    return r;
}

double
overheadForInterval(const OverheadConfig &cfg, ProfilerKind kind,
                    Seconds reprofile_interval)
{
    if (reprofile_interval <= 0)
        panic("overheadForInterval: interval must be > 0");
    Seconds round = roundTimeFor(cfg, kind);
    return clampTo(round / reprofile_interval, 0.0, 1.0);
}

double
applyOverhead(double ideal_metric, double overhead_fraction)
{
    return ideal_metric * (1.0 - clampTo(overhead_fraction, 0.0, 1.0));
}

} // namespace eval
} // namespace reaper
