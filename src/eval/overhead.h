/**
 * @file
 * Online-profiling overhead model (Section 7.3, Eqs. 8-9).
 *
 * Ties together the runtime model (Eq. 9), the ECC tolerable-failure
 * budget (Table 1), the VRT accumulation rate (Fig. 4) and the profile
 * longevity model (Eq. 7) to compute, for each profiler kind, how
 * often reprofiling must run and what fraction of system time it
 * consumes. Applying Eq. 8 (IPC_real = IPC_ideal * (1 - overhead))
 * yields the end-to-end results of Figs. 11-13.
 */

#ifndef REAPER_EVAL_OVERHEAD_H
#define REAPER_EVAL_OVERHEAD_H

#include <string>

#include "common/expected.h"
#include "common/units.h"
#include "dram/vendor_model.h"
#include "ecc/longevity.h"
#include "ecc/uber.h"
#include "profiling/runtime_model.h"

namespace reaper {
namespace eval {

/** The three profiling mechanisms compared in Section 7.3.2. */
enum class ProfilerKind
{
    BruteForce, ///< online Algorithm 1 at the target conditions
    Reaper,     ///< reach profiling (brute-force runtime / speedup)
    Ideal,      ///< zero-overhead offline profiling (prior works)
};

const char *toString(ProfilerKind k);

/**
 * Resolve an analytic profiler kind from its toString() name
 * ("brute_force", "reaper", "ideal"). Unknown names return
 * ErrorCategory::NotFound. This keys the end-to-end sweep's
 * EndToEndConfig::profilers list, mirroring the mechanism-name
 * dispatch of profiling::makeProfiler on the analytic side.
 */
common::Expected<ProfilerKind>
profilerKindByName(const std::string &name);

/** System scenario for the overhead computation. */
struct OverheadConfig
{
    Seconds targetRefreshInterval = 1.024;
    Celsius temperature = dram::kReferenceTemp;
    unsigned chipGbit = 8;
    unsigned numChips = 32; ///< Fig. 11: modules of 32 chips
    int iterations = 16;
    int numPatterns = 6;
    /** Reach-profiling runtime advantage (Section 6.1.2: 2.5x). */
    double reaperSpeedup = 2.5;
    ecc::EccConfig eccStrength = ecc::EccConfig::secded();
    double targetUber = ecc::kConsumerUber;
    /** Profiling coverage assumed when scheduling reprofiles
     *  (Fig. 13 assumes full coverage per round). */
    double coverage = 1.0;
    /**
     * Reprofile at longevity / guardband. The paper does not publish
     * its exact reprofiling schedule; the guardband is the explicit
     * engineering-margin knob (see DESIGN.md) calibrated so the
     * qualitative Fig. 13 result holds.
     */
    double longevityGuardband = 4.0;
    dram::Vendor vendor = dram::Vendor::B;
};

/** Overhead computation results. */
struct OverheadResult
{
    Seconds roundTime = 0;          ///< one profiling round (Eq. 9)
    Seconds longevity = 0;          ///< Eq. 7
    Seconds reprofileInterval = 0;  ///< longevity / guardband
    double overheadFraction = 0;    ///< share of time spent profiling
    double accumulationPerHour = 0; ///< VRT rate A for this capacity
    double tolerableFailures = 0;   ///< ECC budget N
};

/** Module capacity in bits for a config. */
uint64_t moduleCapacityBits(const OverheadConfig &cfg);

/** Compute overhead for one profiler kind. */
OverheadResult computeOverhead(const OverheadConfig &cfg,
                               ProfilerKind kind);

/**
 * Fraction of system time spent profiling for an explicitly chosen
 * reprofiling interval (the Fig. 11 sweep).
 */
double overheadForInterval(const OverheadConfig &cfg, ProfilerKind kind,
                           Seconds reprofile_interval);

/** Eq. 8: apply profiling overhead to an ideal performance metric. */
double applyOverhead(double ideal_metric, double overhead_fraction);

} // namespace eval
} // namespace reaper

#endif // REAPER_EVAL_OVERHEAD_H
