/**
 * @file
 * SECDED-protected memory with fault injection.
 *
 * Connects the ECC codec to the retention-failure world: data words
 * are stored with their SECDED check bits, retention failures are
 * injected as stuck bit flips at flat bit addresses (the same
 * addresses profiles carry), and reads decode through the codec. A
 * scrubber pass corrects and rewrites correctable words — the
 * mechanism the AVATAR-style profiler and the Section 6.2 analysis
 * ("failures escaping the profile must fit the ECC budget") rely on.
 */

#ifndef REAPER_ECC_PROTECTED_MEMORY_H
#define REAPER_ECC_PROTECTED_MEMORY_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ecc/hamming.h"

namespace reaper {
namespace ecc {

/** Sparse SECDED(72,64)-protected word store with fault injection. */
class EccProtectedMemory
{
  public:
    /** @param capacity_bits addressable data bits (64 per word). */
    explicit EccProtectedMemory(uint64_t capacity_bits);

    uint64_t capacityBits() const { return capacityBits_; }
    uint64_t numWords() const { return capacityBits_ / 64; }

    /** Write (and encode) one 64-bit data word. */
    void writeWord(uint64_t word_index, uint64_t value);

    /** Result of a decoded read. */
    struct ReadResult
    {
        uint64_t value = 0;
        DecodeStatus status = DecodeStatus::Ok;
    };

    /** Read (and decode) one word; unwritten words read as zero. */
    ReadResult readWord(uint64_t word_index) const;

    /**
     * Inject a retention failure: the stored bit at the flat DATA bit
     * address flips and stays flipped until the word is rewritten or
     * scrubbed.
     */
    void injectFailure(uint64_t flat_bit_addr);
    void injectFailures(const std::vector<uint64_t> &flat_bit_addrs);

    /** Currently corrupted (injected, not yet repaired) bits. */
    size_t activeFaults() const { return flipped_.size(); }

    /** Outcome of one scrub pass over all written words. */
    struct ScrubReport
    {
        uint64_t scanned = 0;
        uint64_t clean = 0;
        uint64_t corrected = 0;     ///< single-bit errors repaired
        uint64_t uncorrectable = 0; ///< double-bit errors detected
    };

    /**
     * Scrub: read every written word, write back corrected data for
     * single-bit errors (clearing their injected faults), and report
     * uncorrectable words (their faults remain).
     */
    ScrubReport scrub();

  private:
    struct StoredWord
    {
        uint64_t data = 0;
        uint8_t check = 0;
    };

    /** Apply injected flips to a stored word's data bits. */
    uint64_t corruptedData(uint64_t word_index,
                           const StoredWord &w) const;

    uint64_t capacityBits_;
    Secded72 codec_;
    std::unordered_map<uint64_t, StoredWord> words_;
    /** Injected (active) bit faults, as flat data-bit addresses. */
    std::unordered_set<uint64_t> flipped_;
};

} // namespace ecc
} // namespace reaper

#endif // REAPER_ECC_PROTECTED_MEMORY_H
