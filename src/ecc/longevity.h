/**
 * @file
 * Profile longevity model (Section 6.2.3, Eq. 7).
 *
 * Given the maximum tolerable number of retention failures N (from the
 * UBER model), the number of failures C missed by profiling due to
 * imperfect coverage, and the steady-state new-failure accumulation rate
 * A (cells/hour, from the VRT characterization of Section 5.3), the time
 * before reprofiling becomes necessary is T = (N - C) / A.
 */

#ifndef REAPER_ECC_LONGEVITY_H
#define REAPER_ECC_LONGEVITY_H

#include <cstdint>

#include "common/units.h"
#include "ecc/uber.h"

namespace reaper {
namespace ecc {

/** Inputs of the longevity computation. */
struct LongevityInputs
{
    double tolerableFailures = 0; ///< N: max tolerable failing cells
    double missedFailures = 0;    ///< C: failures escaping the profile
    double accumulationPerHour = 0; ///< A: new failures per hour
};

/**
 * Eq. 7: T = (N - C) / A, in seconds. Returns +infinity when no new
 * failures accumulate, and 0 when the profile is already insufficient
 * (C >= N).
 */
Seconds profileLongevity(const LongevityInputs &in);

/** Everything needed to evaluate longevity for a concrete system. */
struct LongevityScenario
{
    uint64_t capacityBits = 0;   ///< protected DRAM capacity
    EccConfig eccStrength = EccConfig::secded();
    double targetUber = kConsumerUber;
    double berAtTarget = 0;      ///< RBER at the target refresh interval
    double profilingCoverage = 0.99; ///< fraction of failures found
    double accumulationPerHour = 0;  ///< VRT accumulation (cells/hour)
};

/** Derived longevity results for a scenario. */
struct LongevityResult
{
    double tolerableFailures = 0; ///< N
    double expectedFailures = 0;  ///< failing cells at target conditions
    double missedFailures = 0;    ///< C = (1 - coverage) * expected
    Seconds longevity = 0;        ///< T
};

/** Compute Eq. 7 end to end from a system scenario. */
LongevityResult computeLongevity(const LongevityScenario &s);

} // namespace ecc
} // namespace reaper

#endif // REAPER_ECC_LONGEVITY_H
